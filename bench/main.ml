(* Benchmark harness.

   Default run (no arguments): regenerate every table and figure of the
   paper's evaluation at full scale, then run the Bechamel micro/meso
   benchmarks (one Test.make per figure/table at reduced scale, plus kernel
   benchmarks of the supporting data structures).

   The figure suites fan out over a domain pool (--jobs N, default
   Domain.recommended_domain_count); results are ordered and identical to a
   sequential run. A [figs] or [all] run also writes BENCH_solver.json — the
   full report plus the solver's propagation counters, machine-readable for
   CI trend tracking.

   The [cache] selection is the snapshot-cache smoke test: it clears the
   cache directory, computes the full report cold, recomputes it warm (a
   second process-fresh cache over the same directory), asserts the warm
   run hit the disk for every shared first pass and produced identical
   tables, and writes BENCH_cache.json with both wall-clocks.

   The [query] selection measures demand-query throughput over a decoded
   snapshot: one pass with cold lazy indexes, one warm, written to
   BENCH_query.json.

   The [serve] selection is the query-serving load harness: a socket
   server over a snapshot cache, driven by N concurrent clients (1, 2, 4,
   8 by default) each streaming a seeded zipf mix of queries interleaved
   with [load key] hot-swaps between two snapshots. Every answer is
   checked byte-identical to a sequential simulation over the same
   engines, the per-run counters (served/errors/loads — deterministic for
   the fixed scripts) land in BENCH_serve.json next to qps and client-side
   latency percentiles, and --check-against diffs the deterministic
   fields against the committed baseline.

   The [incr] selection is the compositional/incremental smoke test: a
   cold compositional solve checked byte-identical to the monolithic one,
   a warm re-solve of the unchanged program from cached summaries, and a
   warm re-solve after a one-method monotone edit — gated to re-derive
   less than 25% of what the cold solve of the edited program derives.
   The deterministic counters land in BENCH_incr.json; --check-against
   diffs them leniently (fields absent from the committed baseline are
   skipped with a note, so the baseline can trail the bench).

   The [lint] selection times every lint rule over two solved synthetic
   benchmarks and writes the per-rule wall-clocks and finding counts to
   BENCH_lint.json.

   The [solver] selection (also folded into [figs]/[all]) measures
   intra-solve scaling: the same solve sharded across --shards K domains on
   the cyclic benchmarks, with a built-in assertion that every sharded
   solution is byte-identical to the sequential one. The scaling rows land
   in BENCH_solver.json under "solver_scaling" with a speedup_vs_1 column.

   Usage:
     main.exe [fig1|fig4|fig5|fig6|fig7|figs|ablation|cache|query|serve|demand|incr|lint|solver|micro|all]
              [--scale S] [--budget N] [--jobs N] [--shards K1,K2,...]
              [--clients N1,N2,...] [--cache-dir DIR] [--check-against FILE]
*)

module Flavors = Ipa_core.Flavors
module Experiments = Ipa_harness.Experiments

let usage () =
  prerr_endline
    "usage: main.exe [fig1|fig4|fig5|fig6|fig7|figs|ablation|cache|query|serve|demand|incr|lint|solver|micro|all] [--scale S] [--budget N] [--jobs N] [--shards K1,K2,...] [--clients N1,N2,...] [--cache-dir DIR] [--check-against FILE]";
  exit 2

type selection =
  | Fig1
  | Fig4
  | Fig of Flavors.spec
  | Figs
  | Ablation
  | Cache_smoke
  | Query_bench
  | Serve_bench
  | Demand_bench
  | Incr_bench
  | Lint_bench
  | Solver_scaling
  | Micro
  | All

let parse_args () =
  let selection = ref All in
  let cfg = ref Ipa_harness.Config.default in
  let cache_dir = ref "_ipa_cache" in
  let check_against = ref None in
  let shards_list = ref [ 1; 2; 4; 8 ] in
  let clients_list = ref [ 1; 2; 4; 8 ] in
  let rec go = function
    | [] -> ()
    | "fig1" :: rest ->
      selection := Fig1;
      go rest
    | "fig4" :: rest ->
      selection := Fig4;
      go rest
    | "fig5" :: rest ->
      selection := Fig (Flavors.Object_sens { depth = 2; heap = 1 });
      go rest
    | "fig6" :: rest ->
      selection := Fig (Flavors.Type_sens { depth = 2; heap = 1 });
      go rest
    | "fig7" :: rest ->
      selection := Fig (Flavors.Call_site { depth = 2; heap = 1 });
      go rest
    | "figs" :: rest ->
      selection := Figs;
      go rest
    | "ablation" :: rest ->
      selection := Ablation;
      go rest
    | "cache" :: rest ->
      selection := Cache_smoke;
      go rest
    | "--cache-dir" :: v :: rest ->
      cache_dir := v;
      go rest
    | "--check-against" :: v :: rest ->
      check_against := Some v;
      go rest
    | "query" :: rest ->
      selection := Query_bench;
      go rest
    | "serve" :: rest ->
      selection := Serve_bench;
      go rest
    | "demand" :: rest ->
      selection := Demand_bench;
      go rest
    | "incr" :: rest ->
      selection := Incr_bench;
      go rest
    | "--clients" :: v :: rest ->
      let ns = List.map int_of_string_opt (String.split_on_char ',' v) in
      if ns <> [] && List.for_all (function Some n -> n >= 1 | None -> false) ns then
        clients_list := List.filter_map Fun.id ns
      else usage ();
      go rest
    | "lint" :: rest ->
      selection := Lint_bench;
      go rest
    | "solver" :: rest ->
      selection := Solver_scaling;
      go rest
    | "--shards" :: v :: rest ->
      let ks = List.map int_of_string_opt (String.split_on_char ',' v) in
      if ks <> [] && List.for_all (function Some k -> k >= 1 | None -> false) ks then
        shards_list := List.filter_map Fun.id ks
      else usage ();
      go rest
    | "micro" :: rest ->
      selection := Micro;
      go rest
    | "all" :: rest ->
      selection := All;
      go rest
    | "--scale" :: v :: rest ->
      (match float_of_string_opt v with
      | Some s when s > 0.0 -> cfg := { !cfg with scale = s }
      | _ -> usage ());
      go rest
    | "--budget" :: v :: rest ->
      (match int_of_string_opt v with
      | Some b when b >= 0 -> cfg := { !cfg with budget = b }
      | _ -> usage ());
      go rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some j when j >= 1 -> cfg := { !cfg with jobs = j }
      | _ -> usage ());
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  (!selection, !cfg, !cache_dir, !check_against, !shards_list, !clients_list)

(* ---------- intra-solve scaling: the sharded solver curve ---------- *)

(* The tentpole measurement: the same solve at 1, 2, 4, ... worklist shards
   on the benchmarks whose copy graphs are cyclic enough to stress the
   partitioner (jython, bloat, xalan) under the two context-sensitive
   flavors with the heaviest propagation. Every K > 1 run is asserted
   byte-identical to the sequential solve — zeroing only the K-dependent
   counters — before its wall-clock is trusted. *)

type scaling_row = {
  shards : int;
  speedup_vs_1 : float;
  run : Experiments.run;
}

let scaling_specs () =
  List.filter_map Ipa_synthetic.Dacapo.find [ "jython"; "bloat"; "xalan" ]

let scaling_flavors =
  [ Flavors.Object_sens { depth = 2; heap = 1 }; Flavors.Call_site { depth = 2; heap = 1 } ]

let canonical_bytes program (s : Ipa_core.Solution.t) =
  let module Snapshot = Ipa_core.Snapshot in
  Snapshot.encode
    {
      Snapshot.key = "scaling";
      program_digest = Snapshot.digest_program program;
      label = "scaling";
      seconds = 0.0;
      solution = { s with counters = Ipa_core.Solution.zero_counters };
      metrics = None;
    }

let compute_scaling (cfg : Ipa_harness.Config.t) shards_list =
  (* The baseline always runs, whether or not 1 is in the requested list. *)
  let ks = List.sort_uniq compare (1 :: shards_list) in
  List.concat_map
    (fun (spec : Ipa_synthetic.Dacapo.spec) ->
      let program = Ipa_synthetic.Dacapo.build ~scale:cfg.scale spec in
      List.concat_map
        (fun flavor ->
          let solve shards : Ipa_core.Analysis.result =
            let config =
              Ipa_core.Solver.plain program ~budget:cfg.budget ~shards
                (Flavors.strategy program flavor)
            in
            Ipa_core.Analysis.run_config program ~label:(Flavors.to_string flavor) config
          in
          let base = solve 1 in
          let base_bytes = canonical_bytes program base.solution in
          List.map
            (fun k ->
              let r = if k = 1 then base else solve k in
              if
                k > 1
                && (r.solution.derivations <> base.solution.derivations
                   || not (String.equal (canonical_bytes program r.solution) base_bytes))
              then begin
                prerr_endline
                  (Printf.sprintf
                     "scaling FAILED: %s %s at %d shard(s) differs from the sequential solve"
                     spec.name (Flavors.to_string flavor) k);
                exit 1
              end;
              {
                shards = k;
                speedup_vs_1 = (if r.seconds > 0.0 then base.seconds /. r.seconds else 0.0);
                run = Experiments.of_result spec.name r;
              })
            ks)
        scaling_flavors)
    (scaling_specs ())

let print_scaling rows =
  print_endline "== Intra-solve scaling: one solve sharded across domains ==";
  Printf.printf "cores available to this process: %d\n" (Domain.recommended_domain_count ());
  let row (s : scaling_row) =
    let r = s.run in
    let dps = if r.seconds > 0.0 then float_of_int r.derivations /. r.seconds else 0.0 in
    [
      r.bench;
      r.analysis;
      string_of_int s.shards;
      (if r.timed_out then Ipa_harness.Config.timeout_label else Printf.sprintf "%.2f" r.seconds);
      Printf.sprintf "%.2fx" s.speedup_vs_1;
      Printf.sprintf "%.0f" dps;
      Printf.sprintf "%.0f" (dps /. float_of_int s.shards);
      string_of_int r.counters.sync_rounds;
      string_of_int r.counters.deltas_exchanged;
    ]
  in
  Ipa_support.Ascii_table.print
    ~header:
      [
        "benchmark"; "analysis"; "shards"; "time(s)"; "speedup"; "derivs/s"; "derivs/s/shard";
        "sync rounds"; "deltas";
      ]
    (List.map row rows);
  print_endline
    "(identity gate: every sharded row above was checked byte-identical to its shards=1 row)";
  print_newline ()

(* One JSON object per line so the --check-against scan can match a row by
   its (bench, analysis, shards) prefix and compare the rest textually. *)
let scaling_row_json (s : scaling_row) =
  let r = s.run in
  let c = r.counters in
  Printf.sprintf
    {|    {"bench": "%s", "analysis": "%s", "shards": %d, "seconds": %.6f, "speedup_vs_1": %.3f, "derivations": %d, "timed_out": %b, "sync_rounds": %d, "deltas_exchanged": %d, "cross_shard_edges": %d, "batch_objs": %d, "cycles_collapsed": %d, "repropagations_avoided": %d}|}
    r.bench r.analysis s.shards r.seconds s.speedup_vs_1 r.derivations r.timed_out c.sync_rounds
    c.deltas_exchanged c.cross_shard_edges c.batch_objs c.cycles_collapsed
    c.repropagations_avoided

(* ---------- BENCH_solver.json ---------- *)

let json_path = "BENCH_solver.json"

let run_json (r : Experiments.run) =
  let c = r.counters in
  Printf.sprintf
    {|    {"bench": "%s", "analysis": "%s", "seconds": %.6f, "derivations": %d, "timed_out": %b,
     "counters": {"edges_added": %d, "edges_deduped": %d, "batches": %d, "batch_objs": %d, "max_batch": %d, "set_promotions": %d, "cycles_collapsed": %d, "nodes_merged": %d, "repropagations_avoided": %d, "shards": %d, "sync_rounds": %d, "deltas_exchanged": %d, "cross_shard_edges": %d}}|}
    r.bench r.analysis r.seconds r.derivations r.timed_out c.edges_added c.edges_deduped c.batches
    c.batch_objs c.max_batch c.set_promotions c.cycles_collapsed c.nodes_merged
    c.repropagations_avoided c.shards c.sync_rounds c.deltas_exchanged c.cross_shard_edges

let write_json ?(scaling = []) (cfg : Ipa_harness.Config.t) (report : Experiments.report) =
  let runs =
    report.fig1 @ report.fig5 @ report.fig6 @ report.fig7 @ report.taint
  in
  let totals =
    List.fold_left
      (fun acc (r : Experiments.run) ->
        let c = r.counters in
        {
          Ipa_core.Solution.edges_added = acc.Ipa_core.Solution.edges_added + c.edges_added;
          edges_deduped = acc.edges_deduped + c.edges_deduped;
          batches = acc.batches + c.batches;
          batch_objs = acc.batch_objs + c.batch_objs;
          max_batch = max acc.max_batch c.max_batch;
          set_promotions = acc.set_promotions + c.set_promotions;
          cycles_collapsed = acc.cycles_collapsed + c.cycles_collapsed;
          nodes_merged = acc.nodes_merged + c.nodes_merged;
          repropagations_avoided = acc.repropagations_avoided + c.repropagations_avoided;
          shards = max acc.shards c.shards;
          sync_rounds = acc.sync_rounds + c.sync_rounds;
          deltas_exchanged = acc.deltas_exchanged + c.deltas_exchanged;
          cross_shard_edges = acc.cross_shard_edges + c.cross_shard_edges;
          sccs_summarized = acc.sccs_summarized + c.sccs_summarized;
          summaries_reused = acc.summaries_reused + c.summaries_reused;
          sccs_resolved = acc.sccs_resolved + c.sccs_resolved;
        })
      Ipa_core.Solution.zero_counters runs
  in
  let total_derivations =
    List.fold_left (fun acc (r : Experiments.run) -> acc + r.derivations) 0 runs
  in
  let total_seconds =
    List.fold_left (fun acc (r : Experiments.run) -> acc +. r.seconds) 0.0 runs
  in
  let derivations_per_second =
    if total_seconds > 0.0 then float_of_int total_derivations /. total_seconds else 0.0
  in
  let section name rs =
    Printf.sprintf "  \"%s\": [\n%s\n  ]" name (String.concat ",\n" (List.map run_json rs))
  in
  let scaling_section =
    if scaling = [] then []
    else
      [
        Printf.sprintf "  \"solver_scaling\": [\n%s\n  ]"
          (String.concat ",\n" (List.map scaling_row_json scaling));
      ]
  in
  let body =
    String.concat ",\n"
      ([
         Printf.sprintf "  \"scale\": %g" cfg.scale;
         Printf.sprintf "  \"budget\": %d" cfg.budget;
         Printf.sprintf "  \"jobs\": %d" cfg.jobs;
         Printf.sprintf "  \"cores\": %d" (Domain.recommended_domain_count ());
         section "fig1" report.fig1;
         section "fig5" report.fig5;
         section "fig6" report.fig6;
         section "fig7" report.fig7;
         section "taint" report.taint;
       ]
      @ scaling_section
      @ [
          Printf.sprintf
            "  \"totals\": {\"runs\": %d, \"derivations\": %d, \"edges_added\": %d, \
             \"edges_deduped\": %d, \"batches\": %d, \"batch_objs\": %d, \"max_batch\": %d, \
             \"set_promotions\": %d, \"cycles_collapsed\": %d, \"nodes_merged\": %d, \
             \"repropagations_avoided\": %d, \"sync_rounds\": %d, \"deltas_exchanged\": %d, \
             \"derivations_per_second\": %.1f}"
            (List.length runs) total_derivations totals.edges_added totals.edges_deduped
            totals.batches totals.batch_objs totals.max_batch totals.set_promotions
            totals.cycles_collapsed totals.nodes_merged totals.repropagations_avoided
            totals.sync_rounds totals.deltas_exchanged derivations_per_second;
        ])
  in
  Out_channel.with_open_text json_path (fun oc ->
      Out_channel.output_string oc ("{\n" ^ body ^ "\n}\n"));
  Printf.printf "wrote %s (%d runs)\n%!" json_path (List.length runs);
  (* The cross-PR perf-trajectory summary. *)
  Printf.printf
    "summary: %d derivations in %.2fs solver time (%.0f derivations/s), %d batch objs, %d \
     repropagations avoided (%d cycles collapsed, %d nodes merged)\n%!"
    total_derivations total_seconds derivations_per_second totals.batch_objs
    totals.repropagations_avoided totals.cycles_collapsed totals.nodes_merged

(* ---------- regression gate against a committed BENCH_solver.json ---------- *)

(* The committed report is our own output, so a string scan of the totals
   object is dependable: find the "totals" key, then read the integer after
   the field name. *)
let find_substring haystack needle from =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then None
    else if String.sub haystack i nl = needle then Some i
    else go (i + 1)
  in
  go from

let scan_total ~file ~contents field =
  let fail msg =
    prerr_endline (Printf.sprintf "bench check FAILED: %s: %s" file msg);
    exit 1
  in
  match find_substring contents "\"totals\"" 0 with
  | None -> fail "no totals object"
  | Some totals_at -> (
    match find_substring contents (Printf.sprintf "\"%s\":" field) totals_at with
    | None -> fail (Printf.sprintf "no %S field in totals" field)
    | Some at ->
      let i = ref (at + String.length field + 3) in
      let len = String.length contents in
      while !i < len && contents.[!i] = ' ' do
        incr i
      done;
      let start = !i in
      while !i < len && contents.[!i] >= '0' && contents.[!i] <= '9' do
        incr i
      done;
      if !i = start then fail (Printf.sprintf "field %S is not an integer" field)
      else int_of_string (String.sub contents start (!i - start)))

(* Tolerance bands: derivations are deterministic and semantic, so any
   growth at all is a real precision/semantics change; batch_objs is the
   propagation volume this PR exists to shrink, so a modest slack absorbs
   scheduling noise while still catching a regressed worklist or collapse. *)
let derivations_tolerance = 0.001
let batch_objs_tolerance = 0.10

let check_against ~file (report : Experiments.report) =
  let contents =
    match In_channel.with_open_text file In_channel.input_all with
    | s -> s
    | exception Sys_error msg ->
      prerr_endline ("bench check FAILED: cannot read baseline: " ^ msg);
      exit 1
  in
  let runs = report.fig1 @ report.fig5 @ report.fig6 @ report.fig7 @ report.taint in
  let fresh_derivations =
    List.fold_left (fun acc (r : Experiments.run) -> acc + r.derivations) 0 runs
  in
  let fresh_batch_objs =
    List.fold_left (fun acc (r : Experiments.run) -> acc + r.counters.batch_objs) 0 runs
  in
  let base_derivations = scan_total ~file ~contents "derivations" in
  let base_batch_objs = scan_total ~file ~contents "batch_objs" in
  let check name fresh base tolerance =
    let limit = int_of_float (ceil (float_of_int base *. (1.0 +. tolerance))) in
    Printf.printf "bench check: %s fresh %d vs committed %d (limit %d)\n%!" name fresh base limit;
    if fresh > limit then begin
      prerr_endline
        (Printf.sprintf "bench check FAILED: %s regressed beyond %.1f%%: %d > %d (committed %d)"
           name (100.0 *. tolerance) fresh limit base);
      exit 1
    end
  in
  check "derivations" fresh_derivations base_derivations derivations_tolerance;
  check "batch_objs" fresh_batch_objs base_batch_objs batch_objs_tolerance;
  print_endline "bench check OK: totals within tolerance of committed baseline"

(* Scaling rows carry wall-clock, which legitimately drifts between
   machines and runs; every other field is a deterministic counter. The
   comparison strips the timing fields from both sides and demands the rest
   match exactly — counter drift at any shard count is a solver change. *)
let strip_scaling_timing line =
  let strip field line =
    match find_substring line (Printf.sprintf "\"%s\":" field) 0 with
    | None -> line
    | Some at ->
      let len = String.length line in
      let j = ref at in
      while !j < len && line.[!j] <> ',' && line.[!j] <> '}' do
        incr j
      done;
      let stop = if !j < len && line.[!j] = ',' then !j + 1 else !j in
      let stop = if stop < len && line.[stop] = ' ' then stop + 1 else stop in
      String.sub line 0 at ^ String.sub line stop (len - stop)
  in
  strip "seconds" (strip "speedup_vs_1" line)

let check_scaling_against ~file rows =
  let contents =
    match In_channel.with_open_text file In_channel.input_all with
    | s -> s
    | exception Sys_error msg ->
      prerr_endline ("bench check FAILED: cannot read baseline: " ^ msg);
      exit 1
  in
  match find_substring contents "\"solver_scaling\"" 0 with
  | None ->
    print_endline
      "bench check: baseline has no solver_scaling section (pre-sharding baseline); skipping"
  | Some section_at ->
    let missing = ref 0 in
    List.iter
      (fun (s : scaling_row) ->
        let key =
          Printf.sprintf {|{"bench": "%s", "analysis": "%s", "shards": %d,|} s.run.bench
            s.run.analysis s.shards
        in
        match find_substring contents key section_at with
        | None -> incr missing
        | Some at ->
          let line_end =
            match String.index_from_opt contents at '\n' with
            | Some i -> i
            | None -> String.length contents
          in
          let committed = String.trim (String.sub contents at (line_end - at)) in
          let committed =
            let n = String.length committed in
            if n > 0 && committed.[n - 1] = ',' then String.sub committed 0 (n - 1)
            else committed
          in
          let fresh = String.trim (scaling_row_json s) in
          if strip_scaling_timing fresh <> strip_scaling_timing committed then begin
            prerr_endline
              (Printf.sprintf
                 "bench check FAILED: solver_scaling counters drifted for %s %s at %d shard(s)\n\
                 \  committed: %s\n\
                 \  fresh:     %s"
                 s.run.bench s.run.analysis s.shards
                 (strip_scaling_timing committed) (strip_scaling_timing fresh));
            exit 1
          end)
      rows;
    if !missing > 0 then
      Printf.printf
        "bench check: %d scaling row(s) absent from baseline (new configuration); skipped\n%!"
        !missing;
    print_endline "bench check OK: solver_scaling counters match the committed baseline"

let run_figs ?baseline ~shards_list cfg =
  let report = Experiments.compute_report cfg in
  Experiments.print_report cfg report;
  let scaling = compute_scaling cfg shards_list in
  print_scaling scaling;
  write_json ~scaling cfg report;
  match baseline with
  | None -> ()
  | Some file ->
    check_against ~file report;
    check_scaling_against ~file scaling

(* ---------- BENCH_cache.json: cold vs warm differential ---------- *)

let cache_json_path = "BENCH_cache.json"

(* Everything but the timing columns must be bit-identical across runs. *)
let strip_run (r : Experiments.run) = { r with seconds = 0.0 }

let reports_equal (a : Experiments.report) (b : Experiments.report) =
  let runs rs = List.map strip_run rs in
  runs a.fig1 = runs b.fig1
  && a.fig4 = b.fig4
  && runs a.fig5 = runs b.fig5
  && runs a.fig6 = runs b.fig6
  && runs a.fig7 = runs b.fig7
  && runs a.taint = runs b.taint

let stats_json (s : Ipa_harness.Cache.stats) =
  Printf.sprintf
    {|{"mem_hits": %d, "disk_hits": %d, "misses": %d, "stale": %d, "writes": %d, "write_conflicts": %d, "disk_errors": %d, "evictions": %d, "resident_bytes": %d}|}
    s.mem_hits s.disk_hits s.misses s.stale s.writes s.write_conflicts s.disk_errors s.evictions
    s.resident_bytes

let run_cache_smoke (cfg : Ipa_harness.Config.t) ~dir =
  let removed = Ipa_harness.Cache.clear ~dir () in
  if removed > 0 then Printf.printf "cleared %d stale snapshot(s) from %s\n%!" removed dir;
  let timed_report cache =
    Ipa_support.Timer.time (fun () -> Experiments.compute_report { cfg with cache })
  in
  let cold_cache = Ipa_harness.Cache.create ~dir () in
  let cold_report, cold_seconds = timed_report cold_cache in
  let cold = Ipa_harness.Cache.stats cold_cache in
  Printf.printf "cold run  %.2fs  %s\n%!" cold_seconds (Ipa_harness.Cache.stats_line cold_cache);
  (* A fresh cache over the same directory: the in-memory layer is empty, so
     every shared first pass must come back as a disk hit. *)
  let warm_cache = Ipa_harness.Cache.create ~dir () in
  let warm_report, warm_seconds = timed_report warm_cache in
  let warm = Ipa_harness.Cache.stats warm_cache in
  Printf.printf "warm run  %.2fs  %s\n%!" warm_seconds (Ipa_harness.Cache.stats_line warm_cache);
  let identical = reports_equal cold_report warm_report in
  let body =
    String.concat ",\n"
      [
        Printf.sprintf "  \"scale\": %g" cfg.scale;
        Printf.sprintf "  \"budget\": %d" cfg.budget;
        Printf.sprintf "  \"jobs\": %d" cfg.jobs;
        Printf.sprintf "  \"cold\": {\"seconds\": %.6f, \"stats\": %s}" cold_seconds
          (stats_json cold);
        Printf.sprintf "  \"warm\": {\"seconds\": %.6f, \"stats\": %s}" warm_seconds
          (stats_json warm);
        Printf.sprintf "  \"identical_tables\": %b" identical;
      ]
  in
  Out_channel.with_open_text cache_json_path (fun oc ->
      Out_channel.output_string oc ("{\n" ^ body ^ "\n}\n"));
  Printf.printf "wrote %s\n%!" cache_json_path;
  let fail msg =
    prerr_endline ("cache smoke FAILED: " ^ msg);
    exit 1
  in
  if not identical then fail "warm tables differ from cold tables";
  if warm.disk_hits = 0 then fail "warm run never hit the disk cache";
  if warm.misses > 0 then
    fail (Printf.sprintf "warm run re-solved %d shared first pass(es)" warm.misses);
  print_endline "cache smoke OK: warm run reused every shared first pass, tables identical"

(* ---------- BENCH_query.json: cold vs warm query-index throughput ---------- *)

let query_json_path = "BENCH_query.json"

(* A deterministic query mix covering every form, built from the program's
   own entity tables (capped per category so the mix size scales gently). *)
let query_mix program =
  let module P = Ipa_ir.Program in
  let cap = 250 in
  let take n of_i = List.init (min n cap) of_i in
  let var v = P.var_full_name program v in
  let heap h = P.heap_full_name program h in
  let meth m = P.meth_full_name program m in
  let invo i = (P.invo_info program i).invo_name in
  let n_vars = P.n_vars program and n_heaps = P.n_heaps program in
  let n_meths = P.n_meths program and n_invos = P.n_invos program in
  let instance_fields =
    List.filter
      (fun f -> not (P.field_info program f).is_static_field)
      (List.init (P.n_fields program) Fun.id)
  in
  List.concat
    [
      take n_vars (fun v -> Ipa_query.Query.Pts (var v));
      take n_heaps (fun h -> Ipa_query.Query.Pointed_by (heap h));
      take (max 0 (n_vars - 1)) (fun v -> Ipa_query.Query.Alias (var v, var (v + 1)));
      take n_invos (fun i -> Ipa_query.Query.Callees (invo i));
      take n_meths (fun m -> Ipa_query.Query.Callers (meth m));
      take (max 0 (n_meths - 7)) (fun m -> Ipa_query.Query.Reach (meth m, meth (m + 7)));
      (match instance_fields with
      | [] -> []
      | fields ->
        let fields = Array.of_list fields in
        take n_heaps (fun h ->
            Ipa_query.Query.Fieldpts
              (heap h, P.field_full_name program fields.(h mod Array.length fields))));
      [ Ipa_query.Query.Taint None; Ipa_query.Query.Stats ];
    ]

let run_query_bench (cfg : Ipa_harness.Config.t) =
  let spec = List.hd Ipa_synthetic.Dacapo.all in
  let program = Ipa_synthetic.Dacapo.build ~scale:cfg.scale spec in
  let result = Ipa_core.Analysis.run_plain ~budget:cfg.budget program Flavors.Insensitive in
  let module Snapshot = Ipa_core.Snapshot in
  let bytes =
    Snapshot.encode
      {
        Snapshot.key = "bench-query";
        program_digest = Snapshot.digest_program program;
        label = result.label;
        seconds = result.seconds;
        solution = result.solution;
        metrics = None;
      }
  in
  let queries = query_mix program in
  let n_queries = List.length queries in
  Printf.printf "query bench: %s at scale %g, %s: %d queries\n%!" spec.name cfg.scale result.label
    n_queries;
  (* Cold: a freshly decoded solution, so the first pass over the mix pays
     every lazy index build. Warm: the same engine again, indexes hot. *)
  let engine =
    match Snapshot.decode ~program bytes with
    | Error e -> failwith (Snapshot.error_to_string e)
    | Ok snap -> Ipa_query.Engine.create snap.solution
  in
  let time_round () =
    Ipa_support.Timer.time (fun () ->
        List.iter (fun q -> ignore (Ipa_query.Engine.eval engine q)) queries)
  in
  let (), cold_seconds = time_round () in
  let (), warm_seconds = time_round () in
  let qps secs = if secs > 0.0 then float_of_int n_queries /. secs else 0.0 in
  Printf.printf "cold  %.4fs  (%.0f queries/s)\n%!" cold_seconds (qps cold_seconds);
  Printf.printf "warm  %.4fs  (%.0f queries/s)\n%!" warm_seconds (qps warm_seconds);
  let body =
    String.concat ",\n"
      [
        Printf.sprintf "  \"scale\": %g" cfg.scale;
        Printf.sprintf "  \"budget\": %d" cfg.budget;
        Printf.sprintf "  \"bench\": \"%s\"" spec.name;
        Printf.sprintf "  \"analysis\": \"%s\"" result.label;
        Printf.sprintf "  \"n_queries\": %d" n_queries;
        Printf.sprintf "  \"cold\": {\"seconds\": %.6f, \"qps\": %.1f}" cold_seconds
          (qps cold_seconds);
        Printf.sprintf "  \"warm\": {\"seconds\": %.6f, \"qps\": %.1f}" warm_seconds
          (qps warm_seconds);
        Printf.sprintf "  \"warm_speedup\": %.2f"
          (if warm_seconds > 0.0 then cold_seconds /. warm_seconds else 0.0);
      ]
  in
  Out_channel.with_open_text query_json_path (fun oc ->
      Out_channel.output_string oc ("{\n" ^ body ^ "\n}\n"));
  Printf.printf "wrote %s\n%!" query_json_path

(* ---------- BENCH_serve.json: concurrent socket-serving load harness ---------- *)

let serve_json_path = "BENCH_serve.json"

(* Client c's request stream: a seeded zipf mix over the query corpus
   (hot queries dominate, the tail is long), interleaved with [load key]
   hot-swaps between the two snapshots every [swap_every] requests. The
   streams are fully deterministic — fixed seeds, no wall-clock input —
   so served/errors/loads are reproducible counters a drift gate can
   compare across machines. *)
let serve_swap_every = 40

let serve_requests_per_client = 320

(* Integer-weight zipf sampler: weight of rank r is ~1/r. *)
let zipf_pick rng cum total =
  let r = Ipa_support.Splitmix.int rng total in
  let n = Array.length cum in
  let rec bisect lo hi = (* first index with cum.(i) > r *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cum.(mid) > r then bisect lo mid else bisect (mid + 1) hi
  in
  bisect 0 (n - 1)

let client_script ~corpus ~keys c =
  let rng = Ipa_support.Splitmix.create (0xC0FFEE + (c * 7919)) in
  let n = Array.length corpus in
  let cum = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + (1_000_000 / (i + 1));
    cum.(i) <- !total
  done;
  List.init serve_requests_per_client (fun i ->
      if i > 0 && i mod serve_swap_every = 0 then
        (* alternate snapshots, staggered per client so swaps interleave *)
        Printf.sprintf "load key %s" keys.((((i / serve_swap_every) + c) mod Array.length keys))
      else corpus.(zipf_pick rng cum !total))

(* The expected byte-exact transcript of one client's session, replayed
   sequentially over private engines (mirroring the server's per-session
   views: a swap changes only this client's answers). *)
let expected_transcript ~program ~engines ~labels ~keys script =
  let current = ref 0 in
  List.map
    (fun line ->
      match Ipa_query.Query.tokens line with
      | Ok [ "load"; "key"; key ] ->
        let i = ref 0 in
        Array.iteri (fun j k -> if k = key then i := j) keys;
        current := !i;
        Printf.sprintf "load key %s: ok (%s)" (Ipa_query.Query.quote key) labels.(!current)
      | _ -> (
        match Ipa_query.Query.parse line with
        | Error e -> Ipa_query.Engine.render_error ~json:false ~q:line e
        | Ok q ->
          ignore program;
          Ipa_query.Engine.render_text q (Ipa_query.Engine.eval engines.(!current) q)))
    script

(* One lockstep client: write a request, read the answer, check it against
   the expected transcript, record the round-trip. Returns the latencies
   (us) or the first mismatch. *)
let run_client ~path ~script ~expected =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  let rec connect tries =
    match Unix.connect sock (Unix.ADDR_UNIX path) with
    | () -> true
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
      Unix.sleepf 0.02;
      connect (tries - 1)
    | exception Unix.Unix_error _ -> false
  in
  if not (connect 250) then Error "cannot connect"
  else begin
    let ic = Unix.in_channel_of_descr sock and oc = Unix.out_channel_of_descr sock in
    let latencies = ref [] in
    let mismatch = ref None in
    (try
       List.iter2
         (fun line want ->
           if !mismatch = None then begin
             let t0 = Ipa_support.Timer.now () in
             output_string oc line;
             output_char oc '\n';
             flush oc;
             let got = input_line ic in
             latencies := int_of_float ((Ipa_support.Timer.now () -. t0) *. 1e6) :: !latencies;
             if got <> want then
               mismatch := Some (Printf.sprintf "sent %S\n  want %S\n  got  %S" line want got)
           end)
         script expected;
       output_string oc "quit\n";
       flush oc
     with End_of_file | Sys_error _ -> mismatch := Some "server closed the connection early");
    match !mismatch with Some m -> Error m | None -> Ok !latencies
  end

let percentile_us sorted q =
  let n = Array.length sorted in
  if n = 0 then 0 else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

type serve_row = {
  clients : int;
  row_served : int;
  row_errors : int;
  row_loads : int;
  row_evictions : int;
  row_seconds : float;
  row_qps : float;
  row_p50_us : int;
  row_p99_us : int;
}

let serve_row_json r =
  Printf.sprintf
    {|    {"clients": %d, "served": %d, "errors": %d, "loads": %d, "evictions": %d, "seconds": %.6f, "qps": %.1f, "p50_us": %d, "p99_us": %d}|}
    r.clients r.row_served r.row_errors r.row_loads r.row_evictions r.row_seconds r.row_qps
    r.row_p50_us r.row_p99_us

(* Timing and schedule-dependent fields (wall-clock, qps, percentiles,
   evictions — the victim schedule depends on session interleaving) are
   stripped from both sides; the rest (served/errors/loads for the fixed
   scripts) must match the committed baseline exactly. *)
let strip_serve_timing line =
  let strip field line =
    match find_substring line (Printf.sprintf "\"%s\":" field) 0 with
    | None -> line
    | Some at ->
      let len = String.length line in
      let j = ref at in
      while !j < len && line.[!j] <> ',' && line.[!j] <> '}' do
        incr j
      done;
      let stop = if !j < len && line.[!j] = ',' then !j + 1 else !j in
      let stop = if stop < len && line.[stop] = ' ' then stop + 1 else stop in
      String.sub line 0 at ^ String.sub line stop (len - stop)
  in
  List.fold_left (fun l f -> strip f l) line [ "seconds"; "qps"; "p50_us"; "p99_us"; "evictions" ]

let check_serve_against ~file rows =
  let contents =
    match In_channel.with_open_text file In_channel.input_all with
    | s -> s
    | exception Sys_error msg ->
      prerr_endline ("bench check FAILED: cannot read baseline: " ^ msg);
      exit 1
  in
  match find_substring contents "\"rows\"" 0 with
  | None ->
    prerr_endline "bench check FAILED: baseline has no rows section";
    exit 1
  | Some section_at ->
    let missing = ref 0 in
    List.iter
      (fun r ->
        let key = Printf.sprintf {|{"clients": %d,|} r.clients in
        match find_substring contents key section_at with
        | None -> incr missing
        | Some at ->
          let line_end =
            match String.index_from_opt contents at '\n' with
            | Some i -> i
            | None -> String.length contents
          in
          let committed = String.trim (String.sub contents at (line_end - at)) in
          let committed =
            let n = String.length committed in
            if n > 0 && committed.[n - 1] = ',' then String.sub committed 0 (n - 1)
            else committed
          in
          let fresh = String.trim (serve_row_json r) in
          if strip_serve_timing fresh <> strip_serve_timing committed then begin
            prerr_endline
              (Printf.sprintf
                 "bench check FAILED: serve counters drifted at %d client(s)\n\
                 \  committed: %s\n\
                 \  fresh:     %s"
                 r.clients (strip_serve_timing committed) (strip_serve_timing fresh));
            exit 1
          end)
      rows;
    if !missing > 0 then
      Printf.printf
        "bench check: %d serve row(s) absent from baseline (new client count); skipped\n%!"
        !missing;
    print_endline "bench check OK: serve counters match the committed baseline"

let run_serve_bench (cfg : Ipa_harness.Config.t) ~clients_list ~baseline =
  let module Snapshot = Ipa_core.Snapshot in
  let spec = List.hd Ipa_synthetic.Dacapo.all in
  let program = Ipa_synthetic.Dacapo.build ~scale:cfg.scale spec in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ipa-serve-bench-%d" (Unix.getpid ()))
  in
  let fail msg =
    prerr_endline ("serve bench FAILED: " ^ msg);
    exit 1
  in
  (* Two snapshots of the same program — the base pass and a
     context-sensitive solve — published to a shared cache directory so
     the server can hot-load either by cache key. *)
  let solve_cache = Ipa_harness.Cache.create ~dir () in
  let program_digest = Snapshot.digest_program program in
  let configs =
    [
      ("insens", Ipa_core.Solver.plain program ~budget:cfg.budget (Flavors.strategy program Flavors.Insensitive));
      ( "2objH",
        Ipa_core.Solver.plain program ~budget:cfg.budget
          (Flavors.strategy program (Flavors.Object_sens { depth = 2; heap = 1 })) );
    ]
  in
  let solved =
    List.map
      (fun (label, config) ->
        ignore (Ipa_harness.Cache.solve solve_cache program ~label config);
        let key = Snapshot.config_key ~program_digest config in
        match Ipa_harness.Cache.find_bytes solve_cache ~key with
        | None -> fail (Printf.sprintf "snapshot %s not in cache after solve" label)
        | Some bytes -> (
          match Snapshot.decode ~program ~expect_key:key bytes with
          | Error e -> fail (Snapshot.error_to_string e)
          | Ok snap -> (key, label, String.length bytes, snap)))
      configs
  in
  let keys = Array.of_list (List.map (fun (k, _, _, _) -> k) solved) in
  let labels = Array.of_list (List.map (fun (_, l, _, _) -> l) solved) in
  let sizes = List.map (fun (_, _, s, _) -> s) solved in
  (* A budget below the working set: holding both snapshots resident is
     impossible, so the swap traffic exercises eviction + disk re-loads on
     the serving path (evictions are schedule-dependent under concurrency,
     so the drift gate ignores that column). *)
  let mem_budget = List.fold_left max 0 sizes + (List.fold_left min max_int sizes / 2) in
  let engines =
    Array.of_list
      (List.map
         (fun (_, _, _, (snap : Snapshot.t)) ->
           let e = Ipa_query.Engine.create snap.solution in
           Ipa_query.Engine.warm e;
           e)
         solved)
  in
  let corpus =
    Array.of_list (List.map Ipa_query.Query.to_string (query_mix program))
  in
  Printf.printf
    "serve bench: %s at scale %g; snapshots %s (%s bytes); corpus %d queries; %d requests/client\n%!"
    spec.name cfg.scale
    (String.concat ", " (Array.to_list labels))
    (String.concat ", " (List.map string_of_int sizes))
    (Array.length corpus) serve_requests_per_client;
  let max_clients = List.fold_left max 1 clients_list in
  let scripts = Array.init max_clients (fun c -> client_script ~corpus ~keys c) in
  let expected =
    Array.map (fun s -> expected_transcript ~program ~engines ~labels ~keys s) scripts
  in
  let jobs = max 2 (List.fold_left max cfg.jobs clients_list) in
  let rows =
    List.map
      (fun n ->
        (* A fresh server (and counters) per client count: the row's
           served/errors/loads depend only on the fixed scripts. *)
        let serve_cache = Ipa_harness.Cache.create ~dir ~mem_budget () in
        let path = Filename.concat dir (Printf.sprintf "serve-%d.sock" n) in
        let _, _, _, (snap0 : Snapshot.t) = List.hd solved in
        Ipa_support.Domain_pool.with_pool ~jobs (fun pool ->
            let server =
              Ipa_query.Server.create ~cache:serve_cache ~pool ~json:false ~timings:false
                ~program ~label:labels.(0) snap0.solution
            in
            let server_domain =
              Domain.spawn (fun () -> Ipa_query.Server.serve_socket server ~path)
            in
            let t0 = Ipa_support.Timer.now () in
            let client_domains =
              List.init n (fun c ->
                  Domain.spawn (fun () ->
                      run_client ~path ~script:scripts.(c) ~expected:expected.(c)))
            in
            let results = List.map Domain.join client_domains in
            let seconds = Ipa_support.Timer.now () -. t0 in
            Ipa_query.Server.request_stop server;
            (match Domain.join server_domain with
            | Ok () -> ()
            | Error msg -> fail ("server: " ^ msg));
            let latencies =
              List.concat_map
                (function
                  | Ok ls -> ls
                  | Error msg -> fail (Printf.sprintf "client answer drift (%d clients): %s" n msg))
                results
            in
            let sorted = Array.of_list latencies in
            Array.sort compare sorted;
            let stats = Ipa_harness.Cache.stats serve_cache in
            let row =
              {
                clients = n;
                row_served = Ipa_query.Server.served server;
                row_errors = Ipa_query.Server.errors server;
                row_loads = Ipa_query.Server.loads server;
                row_evictions = stats.evictions;
                row_seconds = seconds;
                row_qps =
                  (if seconds > 0.0 then float_of_int (List.length latencies) /. seconds else 0.0);
                row_p50_us = percentile_us sorted 0.50;
                row_p99_us = percentile_us sorted 0.99;
              }
            in
            Printf.printf
              "%d client(s): %d served (%d errors), %d loads, %d evictions, %.3fs, %.0f qps, p50 %dus, p99 %dus\n%!"
              n row.row_served row.row_errors row.row_loads row.row_evictions row.row_seconds
              row.row_qps row.row_p50_us row.row_p99_us;
            row))
      clients_list
  in
  let expected_served = List.map (fun n -> n * serve_requests_per_client) clients_list in
  List.iter2
    (fun row want ->
      if row.row_served <> want then
        fail
          (Printf.sprintf "%d client(s): served %d, expected %d" row.clients row.row_served want))
    rows expected_served;
  let body =
    String.concat ",\n"
      [
        Printf.sprintf "  \"scale\": %g" cfg.scale;
        Printf.sprintf "  \"budget\": %d" cfg.budget;
        Printf.sprintf "  \"bench\": \"%s\"" spec.name;
        Printf.sprintf "  \"snapshots\": [%s]"
          (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%S") labels)));
        Printf.sprintf "  \"mem_budget\": %d" mem_budget;
        Printf.sprintf "  \"requests_per_client\": %d" serve_requests_per_client;
        Printf.sprintf "  \"rows\": [\n%s\n  ]"
          (String.concat ",\n" (List.map serve_row_json rows));
        "  \"identical_answers\": true";
      ]
  in
  Out_channel.with_open_text serve_json_path (fun oc ->
      Out_channel.output_string oc ("{\n" ^ body ^ "\n}\n"));
  Printf.printf "wrote %s\n%!" serve_json_path;
  (match baseline with
  | None -> ()
  | Some file -> check_serve_against ~file rows);
  print_endline
    "serve bench OK: every answer byte-identical to the sequential simulation, served counts exact"

(* ---------- BENCH_demand.json: slice-vs-full demand solving ---------- *)

let demand_json_path = "BENCH_demand.json"

(* The demand corpus: the eligible forms whose slices are meant to be
   small — pts (the acceptance form), alias, callees and fieldpts.
   pointed-by is demand-eligible but its root set is every variable (the
   slice degenerates to the whole program), so it would only restate the
   full solve; it is covered by the agreement tests, not the cost story. *)
let demand_mix program =
  let module P = Ipa_ir.Program in
  let take cap n of_i = List.init (min n cap) of_i in
  let var v = P.var_full_name program v in
  let n_vars = P.n_vars program in
  let instance_fields =
    List.filter
      (fun f -> not (P.field_info program f).is_static_field)
      (List.init (P.n_fields program) Fun.id)
  in
  List.concat
    [
      take 32 n_vars (fun v -> Ipa_query.Query.Pts (var v));
      take 8
        (max 0 (n_vars - 1))
        (fun v -> Ipa_query.Query.Alias (var v, var (v + 1)));
      take 8 (P.n_invos program) (fun i ->
          Ipa_query.Query.Callees (P.invo_info program i).invo_name);
      (match instance_fields with
      | [] -> []
      | fields ->
        let fields = Array.of_list fields in
        take 8 (P.n_heaps program) (fun h ->
            Ipa_query.Query.Fieldpts
              ( P.heap_full_name program h,
                P.field_full_name program fields.(h mod Array.length fields) )));
    ]

let check_demand_against ~file fields =
  let fail msg =
    prerr_endline (Printf.sprintf "bench check FAILED: %s: %s" file msg);
    exit 1
  in
  let contents =
    match In_channel.with_open_text file In_channel.input_all with
    | s -> s
    | exception Sys_error msg -> fail ("cannot read baseline: " ^ msg)
  in
  let scan name =
    match find_substring contents (Printf.sprintf "\"%s\":" name) 0 with
    | None -> fail (Printf.sprintf "no %S field" name)
    | Some at ->
      let i = ref (at + String.length name + 3) in
      let len = String.length contents in
      while !i < len && contents.[!i] = ' ' do
        incr i
      done;
      let start = !i in
      while !i < len && contents.[!i] >= '0' && contents.[!i] <= '9' do
        incr i
      done;
      if !i = start then fail (Printf.sprintf "field %S is not an integer" name)
      else int_of_string (String.sub contents start (!i - start))
  in
  List.iter
    (fun (name, fresh) ->
      let committed = scan name in
      if fresh <> committed then
        fail
          (Printf.sprintf "%s drifted: fresh %d vs committed %d" name fresh committed)
      else Printf.printf "bench check: %s %d == committed\n%!" name fresh)
    fields;
  print_endline "bench check OK: demand counters match the committed baseline"

let run_demand_bench (cfg : Ipa_harness.Config.t) ~baseline =
  let module Solution = Ipa_core.Solution in
  let flavor = Flavors.Object_sens { depth = 2; heap = 1 } in
  let spec = List.hd Ipa_synthetic.Dacapo.all in
  let program = Ipa_synthetic.Dacapo.build ~scale:cfg.scale spec in
  (* Ground truth: the unbudgeted full solve. *)
  let full = Ipa_core.Analysis.run_plain ~budget:0 program flavor in
  let full_engine = Ipa_query.Engine.create full.solution in
  let full_derivations = full.solution.Solution.derivations in
  (* The motivating scenario: the same solve under a budget it blows. *)
  let truncated_budget = max 1 (full_derivations / 10) in
  let truncated = Ipa_core.Analysis.run_plain ~budget:truncated_budget program flavor in
  if truncated.solution.Solution.outcome <> Solution.Budget_exceeded then
    failwith "demand bench: truncated solve unexpectedly completed";
  let truncated_engine = Ipa_query.Engine.create truncated.solution in
  let queries = demand_mix program in
  let n_queries = List.length queries in
  Printf.printf "demand bench: %s at scale %g, %s: %d queries\n%!" spec.name cfg.scale
    full.label n_queries;
  let demand =
    Ipa_query.Demand.create ~program ~label:full.label
      (Ipa_core.Solver.plain program (Flavors.strategy program flavor))
  in
  let render q r = Ipa_query.Engine.render_text q r in
  (* Cold pass: every query slices and solves (memo hits only when two
     queries share a root set). Each answer is checked byte-identical to
     the full solve's; the truncated solve's divergence count is what
     demand mode repairs. The cost gate is per query — the most expensive
     single slice solve must stay materially below one full solve. *)
  let divergent = ref 0 in
  let max_slice_derivations = ref 0 in
  let (), cold_seconds =
    Ipa_support.Timer.time (fun () ->
        List.iter
          (fun q ->
            let before = (Ipa_query.Demand.stats demand).Ipa_query.Demand.slice_derivations in
            let served =
              match Ipa_query.Demand.eval demand q with
              | Some s -> s
              | None -> failwith "demand bench: corpus query not demand-eligible"
            in
            let after = (Ipa_query.Demand.stats demand).Ipa_query.Demand.slice_derivations in
            max_slice_derivations := max !max_slice_derivations (after - before);
            let expected = render q (Ipa_query.Engine.eval full_engine q) in
            let got = render q served.Ipa_query.Demand.result in
            if got <> expected then
              failwith
                (Printf.sprintf "demand bench: answer mismatch\n  full:   %s\n  demand: %s"
                   expected got);
            if render q (Ipa_query.Engine.eval truncated_engine q) <> expected then
              incr divergent)
          queries)
  in
  let cold = Ipa_query.Demand.stats demand in
  (* Warm pass: every repeat must hit the slice memo. *)
  let (), warm_seconds =
    Ipa_support.Timer.time (fun () ->
        List.iter (fun q -> ignore (Ipa_query.Demand.eval demand q)) queries)
  in
  let warm = Ipa_query.Demand.stats demand in
  let warm_hits = warm.Ipa_query.Demand.slice_hits - cold.Ipa_query.Demand.slice_hits in
  if warm_hits <> n_queries then
    failwith
      (Printf.sprintf "demand bench: expected %d warm slice hits, got %d" n_queries warm_hits);
  if !max_slice_derivations >= full_derivations then
    failwith
      (Printf.sprintf
         "demand bench: worst slice solve (%d derivations) not below the full solve (%d) — slicing saved nothing"
         !max_slice_derivations full_derivations);
  let ratio = float_of_int !max_slice_derivations /. float_of_int full_derivations in
  Printf.printf
    "full solve: %d derivations; truncated (budget %d): %d divergent answers of %d\n%!"
    full_derivations truncated_budget !divergent n_queries;
  Printf.printf
    "demand cold: %.4fs, %d queries, %d slice nodes total, worst slice %d derivations (%.3fx full)\n%!"
    cold_seconds cold.Ipa_query.Demand.demand_queries cold.Ipa_query.Demand.slice_nodes
    !max_slice_derivations ratio;
  Printf.printf "demand warm: %.4fs, %d memo hits\n%!" warm_seconds warm_hits;
  let fields =
    [
      ("n_queries", n_queries);
      ("full_derivations", full_derivations);
      ("truncated_budget", truncated_budget);
      ("truncated_derivations", truncated.solution.Solution.derivations);
      ("divergent_truncated_answers", !divergent);
      ("demand_slice_nodes", cold.Ipa_query.Demand.slice_nodes);
      ("demand_derivations", cold.Ipa_query.Demand.slice_derivations);
      ("demand_max_slice_derivations", !max_slice_derivations);
      ("demand_warm_hits", warm_hits);
    ]
  in
  let body =
    String.concat ",\n"
      (List.concat
         [
           [
             Printf.sprintf "  \"scale\": %g" cfg.scale;
             Printf.sprintf "  \"bench\": \"%s\"" spec.name;
             Printf.sprintf "  \"analysis\": \"%s\"" full.label;
           ];
           List.map (fun (k, v) -> Printf.sprintf "  \"%s\": %d" k v) fields;
           [
             Printf.sprintf "  \"answers_identical\": true";
             Printf.sprintf "  \"derivations_ratio\": %.4f" ratio;
             Printf.sprintf "  \"demand_cold_seconds\": %.6f" cold_seconds;
             Printf.sprintf "  \"demand_warm_seconds\": %.6f" warm_seconds;
           ];
         ])
  in
  Out_channel.with_open_text demand_json_path (fun oc ->
      Out_channel.output_string oc ("{\n" ^ body ^ "\n}\n"));
  Printf.printf "wrote %s\n%!" demand_json_path;
  (match baseline with
  | None -> ()
  | Some file -> check_demand_against ~file fields);
  print_endline
    "demand bench OK: every demand answer byte-identical to the unbudgeted full solve"

(* ---------- BENCH_incr.json: compositional + incremental re-analysis ---------- *)

let incr_json_path = "BENCH_incr.json"

(* Lenient variant of the baseline diff: a field the committed file does
   not carry is skipped with a note instead of failing, so the committed
   baseline can trail a bench that grows new counters. A field both sides
   carry must still match exactly. *)
let check_incr_against ~file fields =
  let fail msg =
    prerr_endline (Printf.sprintf "bench check FAILED: %s: %s" file msg);
    exit 1
  in
  let contents =
    match In_channel.with_open_text file In_channel.input_all with
    | s -> s
    | exception Sys_error msg -> fail ("cannot read baseline: " ^ msg)
  in
  let scan name =
    match find_substring contents (Printf.sprintf "\"%s\":" name) 0 with
    | None -> None
    | Some at ->
      let i = ref (at + String.length name + 3) in
      let len = String.length contents in
      while !i < len && contents.[!i] = ' ' do
        incr i
      done;
      let start = !i in
      while !i < len && contents.[!i] >= '0' && contents.[!i] <= '9' do
        incr i
      done;
      if !i = start then fail (Printf.sprintf "field %S is not an integer" name)
      else Some (int_of_string (String.sub contents start (!i - start)))
  in
  let checked = ref 0 in
  List.iter
    (fun (name, fresh) ->
      match scan name with
      | None -> Printf.printf "bench check: %s absent from baseline, skipped\n%!" name
      | Some committed ->
        if fresh <> committed then
          fail
            (Printf.sprintf "%s drifted: fresh %d vs committed %d" name fresh committed)
        else begin
          incr checked;
          Printf.printf "bench check: %s %d == committed\n%!" name fresh
        end)
    fields;
  if !checked = 0 then fail "no field matched the committed baseline";
  print_endline "bench check OK: incremental counters match the committed baseline"

let run_incr_bench (cfg : Ipa_harness.Config.t) ~baseline =
  let module Solution = Ipa_core.Solution in
  let module Analysis = Ipa_core.Analysis in
  let module Edits = Ipa_synthetic.Edits in
  let flavor = Flavors.Insensitive in
  let spec = List.hd Ipa_synthetic.Dacapo.all in
  let program = Ipa_synthetic.Dacapo.build ~scale:cfg.scale spec in
  (* Summaries go through an in-memory store: the bench measures reuse
     accounting and re-derivation cost, not disk traffic. *)
  let tbl = Hashtbl.create 64 in
  let store =
    {
      Ipa_core.Compositional_solver.find_bytes = (fun key -> Hashtbl.find_opt tbl key);
      put_bytes =
        (fun key bytes -> if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key bytes);
    }
  in
  (* A warm solution differs from a cold one only in the phase accounting:
     seeding re-asserts the baseline facts without counting them, so the
     derivation count and propagation counters describe the incremental
     work, not the fixpoint. Identity is judged on everything else. *)
  let canonical_warm program (s : Solution.t) =
    canonical_bytes program { s with Solution.derivations = 0 }
  in
  (* 1. Cold compositional solve == monolithic solve, byte for byte
     (modulo the compositional counters the monolithic solve cannot
     carry — canonical_bytes zeroes all counters). *)
  let mono = Analysis.run_plain ~budget:0 program flavor in
  let cold, cold_report = Analysis.run_compositional ~store ~budget:0 program flavor in
  if
    cold.solution.Solution.derivations <> mono.solution.Solution.derivations
    || not
         (String.equal
            (canonical_bytes program cold.solution)
            (canonical_bytes program mono.solution))
  then failwith "incr bench: compositional solve differs from the monolithic solve";
  Printf.printf "incr bench: %s at scale %g, %s: %d derivations, %d component(s)\n%!"
    spec.name cfg.scale mono.label mono.solution.Solution.derivations
    cold_report.Ipa_core.Compositional_solver.n_sccs;
  (* 2. Warm re-solve of the unchanged program: every summary hits the
     store, nothing is dirty, and the seeded solve re-derives nothing. *)
  let same, same_report =
    Analysis.run_incremental ~store program ~base_program:program
      ~base_solution:cold.solution flavor
  in
  if not same_report.Ipa_core.Compositional_solver.incremental then
    failwith "incr bench: unchanged-program re-solve fell back to a cold solve";
  if not (String.equal (canonical_warm program same.solution) (canonical_warm program cold.solution))
  then failwith "incr bench: unchanged-program re-solve differs from the cold solve";
  Printf.printf "incr warm (unchanged): %d derivations, %d summaries reused, %d dirty\n%!"
    same.solution.Solution.derivations
    same_report.Ipa_core.Compositional_solver.summaries_reused
    (List.length same_report.Ipa_core.Compositional_solver.dirty_sccs);
  (* 3. One-method monotone edit: warm re-solve from the baseline vs a
     cold solve of the edited program. The gate is the acceptance bar —
     the warm solve must re-derive under a quarter of the cold solve. *)
  let edits = Edits.pick ~kinds:Edits.monotone_kinds ~seed:42 ~n:1 program in
  (match edits with
  | [ e ] -> Printf.printf "incr edit: %s\n%!" (Edits.describe program e)
  | _ -> failwith "incr bench: expected exactly one edit");
  let edited = Edits.apply_all program edits in
  let edited_cold = Analysis.run_plain ~budget:0 edited flavor in
  let warm, warm_report =
    Analysis.run_incremental ~store edited ~base_program:program
      ~base_solution:cold.solution flavor
  in
  (match warm_report.Ipa_core.Compositional_solver.fallback with
  | None -> ()
  | Some reason -> failwith ("incr bench: edited re-solve fell back cold: " ^ reason));
  if not (String.equal (canonical_warm edited warm.solution) (canonical_warm edited edited_cold.solution))
  then failwith "incr bench: edited warm re-solve differs from the cold solve";
  let cold_derivations = edited_cold.solution.Solution.derivations in
  let warm_derivations = warm.solution.Solution.derivations in
  if warm_derivations * 4 >= cold_derivations then
    failwith
      (Printf.sprintf
         "incr bench: warm re-solve derived %d of %d — not under the 25%% gate"
         warm_derivations cold_derivations);
  let ratio = float_of_int warm_derivations /. float_of_int cold_derivations in
  Printf.printf
    "incr warm (1 edit): %d derivations vs %d cold (%.3fx), %d reused, %d re-solved of %d\n%!"
    warm_derivations cold_derivations ratio
    warm_report.Ipa_core.Compositional_solver.summaries_reused
    warm_report.Ipa_core.Compositional_solver.sccs_resolved
    warm_report.Ipa_core.Compositional_solver.n_sccs;
  let fields =
    [
      ("n_sccs", cold_report.Ipa_core.Compositional_solver.n_sccs);
      ("cold_derivations", mono.solution.Solution.derivations);
      ("cold_summarized", cold_report.Ipa_core.Compositional_solver.sccs_summarized);
      ("warm_same_derivations", same.solution.Solution.derivations);
      ("warm_same_reused", same_report.Ipa_core.Compositional_solver.summaries_reused);
      ("edit_dirty_sccs", List.length warm_report.Ipa_core.Compositional_solver.dirty_sccs);
      ("edit_reused", warm_report.Ipa_core.Compositional_solver.summaries_reused);
      ("edit_resolved", warm_report.Ipa_core.Compositional_solver.sccs_resolved);
      ("edit_cold_derivations", cold_derivations);
      ("edit_warm_derivations", warm_derivations);
    ]
  in
  let body =
    String.concat ",\n"
      (List.concat
         [
           [
             Printf.sprintf "  \"scale\": %g" cfg.scale;
             Printf.sprintf "  \"bench\": \"%s\"" spec.name;
             Printf.sprintf "  \"analysis\": \"%s\"" mono.label;
           ];
           List.map (fun (k, v) -> Printf.sprintf "  \"%s\": %d" k v) fields;
           [
             Printf.sprintf "  \"answers_identical\": true";
             Printf.sprintf "  \"derivations_ratio\": %.4f" ratio;
             Printf.sprintf "  \"cold_seconds\": %.6f" cold.seconds;
             Printf.sprintf "  \"warm_seconds\": %.6f" warm.seconds;
           ];
         ])
  in
  Out_channel.with_open_text incr_json_path (fun oc ->
      Out_channel.output_string oc ("{\n" ^ body ^ "\n}\n"));
  Printf.printf "wrote %s\n%!" incr_json_path;
  (match baseline with
  | None -> ()
  | Some file -> check_incr_against ~file fields);
  print_endline
    "incr bench OK: warm re-solves byte-identical to cold, edit re-derivation under the 25% gate"

(* ---------- BENCH_lint.json: per-rule lint timings ---------- *)

let lint_json_path = "BENCH_lint.json"

let run_lint_bench (cfg : Ipa_harness.Config.t) =
  let module J = Ipa_support.Json in
  let specs =
    match Ipa_synthetic.Dacapo.all with
    | a :: b :: _ -> [ a; b ]
    | specs -> specs
  in
  let bench_entry (spec : Ipa_synthetic.Dacapo.spec) =
    let program = Ipa_synthetic.Dacapo.build ~scale:cfg.scale spec in
    let result = Ipa_core.Analysis.run_plain ~budget:cfg.budget program Flavors.Insensitive in
    let ctx = Ipa_lint.Lint.make_ctx ~solution:result.solution program in
    let findings, timings = Ipa_lint.Lint.run ctx in
    let lint_seconds =
      List.fold_left (fun a (t : Ipa_lint.Lint.timing) -> a +. t.seconds) 0. timings
    in
    Printf.printf "lint bench: %s at scale %g: %d finding(s)  (solve %.3fs, lint %.3fs)\n%!"
      spec.name cfg.scale (List.length findings) result.seconds lint_seconds;
    let id_width =
      List.fold_left
        (fun acc (t : Ipa_lint.Lint.timing) -> max acc (String.length t.rule_id))
        10 timings
    in
    List.iter
      (fun (t : Ipa_lint.Lint.timing) ->
        Printf.printf "  %-*s %8.4fs  %6d finding(s)\n%!" id_width t.rule_id t.seconds
          t.n_findings)
      timings;
    J.Obj
      [
        ("bench", J.Str spec.name);
        ("analysis", J.Str result.label);
        ("solve_seconds", J.Float result.seconds);
        ("lint_seconds", J.Float lint_seconds);
        ("n_findings", J.Int (List.length findings));
        ( "rules",
          J.List
            (List.map
               (fun (t : Ipa_lint.Lint.timing) ->
                 J.Obj
                   [
                     ("rule", J.Str t.rule_id);
                     ("seconds", J.Float t.seconds);
                     ("n_findings", J.Int t.n_findings);
                   ])
               timings) );
      ]
  in
  let doc =
    J.Obj
      [
        ("scale", J.Float cfg.scale);
        ("budget", J.Int cfg.budget);
        ("benches", J.List (List.map bench_entry specs));
      ]
  in
  Out_channel.with_open_text lint_json_path (fun oc ->
      Out_channel.output_string oc (J.to_string ~pretty:true doc ^ "\n"));
  Printf.printf "wrote %s\n%!" lint_json_path

(* ---------- Bechamel micro-benchmarks ---------- *)

let kernel_tests () =
  let open Bechamel in
  let intset_add =
    Test.make ~name:"int_set/add-mem-1k"
      (Staged.stage (fun () ->
           let s = Ipa_support.Int_set.create () in
           for i = 0 to 999 do
             ignore (Ipa_support.Int_set.add s (i * 7919))
           done;
           for i = 0 to 999 do
             ignore (Ipa_support.Int_set.mem s (i * 7919))
           done))
  in
  let intset_small =
    (* stays within the inline sorted-array representation *)
    Test.make ~name:"int_set/small-add-mem-6"
      (Staged.stage (fun () ->
           let s = Ipa_support.Int_set.create () in
           for i = 0 to 5 do
             ignore (Ipa_support.Int_set.add s (i * 7919))
           done;
           for i = 0 to 5 do
             ignore (Ipa_support.Int_set.mem s (i * 7919))
           done))
  in
  let interner =
    Test.make ~name:"interner/intern-1k"
      (Staged.stage (fun () ->
           let t = Ipa_support.Interner.create ~dummy:[||] () in
           for i = 0 to 999 do
             ignore (Ipa_support.Interner.intern t [| i; i + 1 |])
           done))
  in
  let pair_tbl =
    Test.make ~name:"pair_tbl/intern-1k"
      (Staged.stage (fun () ->
           let t = Ipa_support.Pair_tbl.create () in
           for i = 0 to 999 do
             ignore (Ipa_support.Pair_tbl.intern t i (i * 3))
           done))
  in
  let datalog_tc =
    (* Transitive closure of a 200-node chain: exercises the semi-naive
       engine's join machinery. *)
    Test.make ~name:"datalog/trans-closure-200"
      (Staged.stage (fun () ->
           let edge = Ipa_datalog.Relation.create ~name:"edge" ~arity:2 in
           let path = Ipa_datalog.Relation.create ~name:"path" ~arity:2 in
           for i = 0 to 198 do
             ignore (Ipa_datalog.Relation.add edge [| i; i + 1 |])
           done;
           let v i = Ipa_datalog.Rule.Var i in
           let base =
             Ipa_datalog.Rule.make ~n_vars:2 ~heads:[ (path, [| v 0; v 1 |]) ]
               ~body:[ (edge, [| v 0; v 1 |]) ] ()
           in
           let step =
             Ipa_datalog.Rule.make ~n_vars:3 ~heads:[ (path, [| v 0; v 2 |]) ]
               ~body:[ (edge, [| v 0; v 1 |]); (path, [| v 1; v 2 |]) ] ()
           in
           ignore (Ipa_datalog.Engine.fixpoint [ base; step ])))
  in
  let solver_small =
    let program = Ipa_synthetic.Dacapo.build ~scale:0.05 (List.hd Ipa_synthetic.Dacapo.all) in
    Test.make ~name:"solver/antlr-5pct-2objH"
      (Staged.stage (fun () ->
           ignore
             (Ipa_core.Analysis.run_plain program (Flavors.Object_sens { depth = 2; heap = 1 }))))
  in
  [ intset_add; intset_small; interner; pair_tbl; datalog_tc; solver_small ]

(* One Test.make per reproduced table/figure, at reduced scale so a
   Bechamel run stays tractable. Sequential (jobs = 1): Bechamel measures
   the iteration itself, and a pool inside the measured region would report
   wall-clock of a loaded machine. *)
let figure_tests () =
  let open Bechamel in
  let cfg =
    {
      Ipa_harness.Config.scale = 0.05;
      budget = 2_000_000;
      jobs = 1;
      (* memory-only: within one measured iteration the first pass is still
         deduplicated, but nothing escapes to disk *)
      cache = Ipa_harness.Cache.create ();
    }
  in
  let silent f =
    (* compute, discard printing *)
    fun () -> ignore (f ())
  in
  [
    Test.make ~name:"fig1/insens-vs-2objH"
      (Staged.stage (silent (fun () -> Experiments.Fig1.compute cfg)));
    Test.make ~name:"fig4/refinement-selection"
      (Staged.stage (silent (fun () -> Experiments.Fig4.compute cfg)));
    Test.make ~name:"fig5/2objH-introspective"
      (Staged.stage
         (silent (fun () ->
              Experiments.Figs567.compute cfg
                (Flavors.Object_sens { depth = 2; heap = 1 }))));
    Test.make ~name:"fig6/2typeH-introspective"
      (Staged.stage
         (silent (fun () ->
              Experiments.Figs567.compute cfg
                (Flavors.Type_sens { depth = 2; heap = 1 }))));
    Test.make ~name:"fig7/2callH-introspective"
      (Staged.stage
         (silent (fun () ->
              Experiments.Figs567.compute cfg
                (Flavors.Call_site { depth = 2; heap = 1 }))));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  print_endline "== Bechamel micro-benchmarks (ns per run, OLS estimate) ==";
  let tests = kernel_tests () @ figure_tests () in
  let instances = Instance.[ monotonic_clock ] in
  let benchmark_cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ~kde:None ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all benchmark_cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      let name_width =
        Hashtbl.fold (fun name _ acc -> max acc (String.length name)) analyzed 28
      in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-*s %12.1f ns/run\n%!" name_width name est
          | Some ests ->
            Printf.printf "  %-*s %s\n%!" name_width name
              (String.concat ", " (List.map (Printf.sprintf "%.1f") ests))
          | None -> Printf.printf "  %-*s (no estimate)\n%!" name_width name)
        analyzed)
    tests

let () =
  let selection, cfg, cache_dir, baseline, shards_list, clients_list = parse_args () in
  (match selection with
  | Fig1 -> Experiments.Fig1.print cfg
  | Fig4 -> Experiments.Fig4.print cfg
  | Fig flavor -> Experiments.Figs567.print cfg flavor
  | Figs -> run_figs ?baseline ~shards_list cfg
  | All ->
    run_figs ?baseline ~shards_list cfg;
    Ipa_harness.Ablation.print_all cfg
  | Ablation -> Ipa_harness.Ablation.print_all cfg
  | Cache_smoke -> run_cache_smoke cfg ~dir:cache_dir
  | Query_bench -> run_query_bench cfg
  | Serve_bench -> run_serve_bench cfg ~clients_list ~baseline
  | Demand_bench -> run_demand_bench cfg ~baseline
  | Incr_bench -> run_incr_bench cfg ~baseline
  | Lint_bench -> run_lint_bench cfg
  | Solver_scaling ->
    let rows = compute_scaling cfg shards_list in
    print_scaling rows;
    (match baseline with None -> () | Some file -> check_scaling_against ~file rows)
  | Micro -> ());
  match selection with Micro | All -> run_bechamel () | _ -> ()
