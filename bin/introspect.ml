(* introspect — command-line front door to the introspective points-to
   analysis library.

   Subcommands:
     check        parse and well-formedness-check a .jir file
     analyze      run a (possibly introspective) points-to analysis
     solve        run an analysis and save/load the solution as a snapshot
     cache        inspect or clear the on-disk snapshot cache
     metrics      print the paper's six cost metrics over a program
     gen          emit a synthetic DaCapo-like benchmark as .jir text
     query        answer points-to queries over a solution, batch-style
     serve        persistent query session with snapshot hot-loading
     experiments  regenerate the paper's tables and figures *)

module Program = Ipa_ir.Program
module Flavors = Ipa_core.Flavors
module Heuristics = Ipa_core.Heuristics
open Cmdliner

let load_program path =
  match Ipa_frontend.Jir.parse_file path with
  | Ok p -> Ok p
  | Error e -> Error (Ipa_frontend.Jir.error_to_string e)

(* ---------- common arguments ---------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input .jir program.")

let flavor_arg =
  let parse s =
    match Flavors.of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg (Printf.sprintf "unknown analysis %S (try insens, 2objH, 2callH, 2typeH, 2hybH)" s))
  in
  let print ppf f = Format.pp_print_string ppf (Flavors.to_string f) in
  Arg.conv (parse, print)

let analysis_arg =
  Arg.(
    value
    & opt flavor_arg (Flavors.Object_sens { depth = 2; heap = 1 })
    & info [ "a"; "analysis" ] ~docv:"ANALYSIS"
        ~doc:"Context-sensitivity flavor: insens, 1callH, 2callH, 1objH, 2objH, 2typeH, 2hybH, ...")

let heuristic_arg =
  let parse s =
    match String.uppercase_ascii s with
    | "A" -> Ok (Some Heuristics.default_a)
    | "B" -> Ok (Some Heuristics.default_b)
    | "NONE" -> Ok None
    | _ -> Error (`Msg "expected A, B or none")
  in
  let print ppf = function
    | Some h -> Format.pp_print_string ppf (Heuristics.name h)
    | None -> Format.pp_print_string ppf "none"
  in
  Arg.(
    value
    & opt (conv (parse, print)) None
    & info [ "i"; "introspective" ] ~docv:"HEURISTIC"
        ~doc:"Run introspectively with the paper's Heuristic A or B.")

let budget_arg =
  Arg.(
    value
    & opt int 0
    & info [ "budget" ] ~docv:"N"
        ~doc:"Derivation budget (deterministic timeout); 0 means unlimited.")

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Worklist shards (domains) within each solve. Results are byte-identical at any \
           shard count; only wall-clock varies. Default 1 (sequential).")

let scale_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "scale" ] ~docv:"S" ~doc:"Benchmark size multiplier (default 1.0).")

(* ---------- check ---------- *)

let check_cmd =
  let run path =
    match load_program path with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok p ->
      Printf.printf "%s: ok (%d classes, %d methods, %d variables, %d allocation sites)\n" path
        (Program.n_classes p) (Program.n_meths p) (Program.n_vars p) (Program.n_heaps p);
      0
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and validate a .jir program.")
    Term.(const run $ file_arg)

(* ---------- analyze ---------- *)

let print_result ~verbose p (r : Ipa_core.Analysis.result) =
  let st = Ipa_core.Solution.stats r.solution in
  Printf.printf "analysis      %s\n" r.label;
  Printf.printf "time          %.3fs%s\n" r.seconds (if r.timed_out then "  (budget exceeded)" else "");
  Printf.printf "derivations   %d\n" r.solution.derivations;
  Printf.printf "var-points-to %d tuples   field-points-to %d   call edges %d   contexts %d\n"
    st.vpt_tuples st.fpt_tuples st.cg_edges st.n_contexts;
  if not r.timed_out then begin
    let prec = Ipa_core.Precision.compute r.solution in
    Printf.printf
      "precision     poly-vcalls %d   reachable methods %d   may-fail casts %d\n"
      prec.poly_vcalls prec.reachable_methods prec.may_fail_casts
  end;
  if verbose then begin
    let vpt = Ipa_core.Solution.collapsed_var_pts r.solution in
    Array.iteri
      (fun v set ->
        if Ipa_support.Int_set.cardinal set > 0 then
          Printf.printf "%s -> {%s}\n" (Program.var_full_name p v)
            (String.concat ", "
               (List.map (Program.heap_full_name p) (Ipa_support.Int_set.to_sorted_list set))))
      vpt
  end

let analyze_cmd =
  let run path flavor heuristic budget shards verbose =
    match load_program path with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok p ->
      (match heuristic with
      | None -> print_result ~verbose p (Ipa_core.Analysis.run_plain ~budget ~shards p flavor)
      | Some h ->
        let ir = Ipa_core.Analysis.run_introspective ~budget ~shards p flavor h in
        Printf.printf "first pass    %s  %.3fs  (%d derivations)\n" ir.base.label ir.base.seconds
          ir.base.solution.derivations;
        Printf.printf "selection     %d/%d sites and %d/%d objects kept context-insensitive\n"
          ir.selection.sites_skipped ir.selection.sites_total ir.selection.objects_skipped
          ir.selection.objects_total;
        print_result ~verbose p ir.second);
      0
  in
  let verbose_arg =
    Arg.(value & flag & info [ "points-to" ] ~doc:"Print the collapsed var-points-to relation.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run a points-to analysis on a .jir program.")
    Term.(const run $ file_arg $ analysis_arg $ heuristic_arg $ budget_arg $ shards_arg $ verbose_arg)

(* ---------- client-analysis commands ---------- *)

(* Run the configured analysis and hand its solution to a report printer.
   [to_stderr] moves the analysis banner off stdout so machine-readable
   reports (--json) stay parseable. *)
let with_solution ?(to_stderr = false) path flavor heuristic budget shards k =
  match load_program path with
  | Error msg ->
    prerr_endline msg;
    1
  | Ok p ->
    let result =
      match heuristic with
      | None -> Ipa_core.Analysis.run_plain ~budget ~shards p flavor
      | Some h -> (Ipa_core.Analysis.run_introspective ~budget ~shards p flavor h).second
    in
    if result.timed_out then begin
      Printf.eprintf "%s exceeded its derivation budget; results are partial\n" result.label;
      k p result.solution;
      1
    end
    else begin
      Printf.fprintf
        (if to_stderr then stderr else stdout)
        "analysis: %s (%.3fs)\n\n" result.label result.seconds;
      k p result.solution;
      0
    end

let client_cmd name ~doc k =
  let run path flavor heuristic budget shards =
    with_solution path flavor heuristic budget shards k
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ file_arg $ analysis_arg $ heuristic_arg $ budget_arg $ shards_arg)

let client_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit one JSON object per finding (the lint jsonl format) instead of text.")

let devirt_cmd =
  let run path flavor heuristic budget shards json =
    with_solution ~to_stderr:json path flavor heuristic budget shards (fun _ s ->
        let summary = Ipa_clients.Devirtualize.summarize s in
        (* Threshold 2 = every polymorphic site, as the old report showed. *)
        let ds =
          List.sort_uniq Ipa_ir.Diagnostic.compare
            (Ipa_lint.Semantic.megamorphic_call ~threshold:2 s)
        in
        if json then print_string (Ipa_lint.Report.jsonl ds)
        else begin
          Printf.printf "monomorphic %d   polymorphic %d   unreachable %d\n\n" summary.monomorphic
            summary.polymorphic summary.unreachable;
          print_string (Ipa_lint.Report.human ds)
        end)
  in
  Cmd.v
    (Cmd.info "devirt" ~doc:"Report devirtualizable and polymorphic call sites.")
    Term.(
      const run $ file_arg $ analysis_arg $ heuristic_arg $ budget_arg $ shards_arg
      $ client_json_arg)

let casts_cmd =
  let run path flavor heuristic budget shards json =
    with_solution ~to_stderr:json path flavor heuristic budget shards (fun _ s ->
        let ds =
          List.sort_uniq Ipa_ir.Diagnostic.compare (Ipa_lint.Semantic.may_fail_cast s)
        in
        if json then print_string (Ipa_lint.Report.jsonl ds)
        else begin
          Printf.printf "casts that may fail: %d\n\n" (List.length ds);
          print_string (Ipa_lint.Report.human ds)
        end)
  in
  Cmd.v
    (Cmd.info "casts" ~doc:"Report casts that may fail under the analysis.")
    Term.(
      const run $ file_arg $ analysis_arg $ heuristic_arg $ budget_arg $ shards_arg
      $ client_json_arg)

let exceptions_cmd =
  client_cmd "exceptions" ~doc:"Report uncaught exceptions and handler contents." (fun _ s ->
      Ipa_clients.Exception_report.print s)

let hotspots_cmd =
  client_cmd "hotspots"
    ~doc:"Show the methods and allocation sites dominating the analysis cost." (fun _ s ->
      Ipa_core.Diagnostics.print s)

let callgraph_cmd =
  let run path flavor heuristic budget shards output =
    with_solution path flavor heuristic budget shards (fun _ s ->
        match output with
        | Some out ->
          Ipa_clients.Callgraph_export.write_dot s ~path:out;
          Printf.printf "wrote %s (%d edges)\n" out
            (List.length (Ipa_clients.Callgraph_export.to_edges s))
        | None -> print_string (Ipa_clients.Callgraph_export.to_dot s))
  in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"DOT file.")
  in
  Cmd.v
    (Cmd.info "callgraph" ~doc:"Export the collapsed call graph as Graphviz DOT.")
    Term.(const run $ file_arg $ analysis_arg $ heuristic_arg $ budget_arg $ shards_arg $ output_arg)

let taint_cmd =
  let run path flavor heuristic budget shards spec_path =
    let spec =
      match spec_path with
      | None -> Ok Ipa_clients.Taint.default_spec
      | Some sp -> Ipa_clients.Taint.spec_of_file sp
    in
    match spec with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok spec ->
      with_solution path flavor heuristic budget shards (fun p s ->
          (match Ipa_core.Solution.self_check s with
          | [] -> Printf.printf "self-check: ok\n"
          | errs ->
            Printf.printf "self-check: %d violation(s)\n" (List.length errs);
            List.iter print_endline errs);
          let res = Ipa_clients.Taint.analyze ~spec s in
          Printf.printf "tainted sinks: %d   (taint seeds: %d)\n\n" (List.length res.findings)
            res.n_seeds;
          if res.findings <> [] then begin
            Ipa_support.Ascii_table.print
              ~aligns:Ipa_support.Ascii_table.[ Left; Left; Right; Left ]
              ~header:[ "sink call site"; "in method"; "arg"; "resolved sink" ]
              (List.map
                 (fun (f : Ipa_clients.Taint.finding) ->
                   let ii = Program.invo_info p f.invo in
                   [
                     ii.invo_name;
                     Program.meth_full_name p ii.invo_owner;
                     string_of_int f.arg;
                     Program.meth_full_name p f.sink;
                   ])
                 res.findings);
            match res.vfg with
            | None -> ()
            | Some vfg ->
              List.iter
                (fun (f : Ipa_clients.Taint.finding) ->
                  match f.path with
                  | [] -> ()
                  | path ->
                    Printf.printf "\n%s arg %d:\n  %s\n"
                      (Program.invo_info p f.invo).invo_name f.arg
                      (String.concat " -> "
                         (List.map (Ipa_core.Value_flow.node_to_string vfg) path)))
                res.findings
          end)
  in
  let spec_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "Taint specification: one directive per line ($(b,source PAT), \
             $(b,source-class PAT), $(b,sink PAT), $(b,sanitizer PAT)); # comments. \
             Defaults to the built-in mkSecret/consume/scrub spec.")
  in
  Cmd.v
    (Cmd.info "taint"
       ~doc:"Report source-to-sink taint flows over the solution's value-flow graph.")
    Term.(const run $ file_arg $ analysis_arg $ heuristic_arg $ budget_arg $ shards_arg $ spec_arg)

let compare_cmd =
  let run path coarse fine budget =
    match load_program path with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok p ->
      let a = Ipa_core.Analysis.run_plain ~budget p coarse in
      let b = Ipa_core.Analysis.run_plain ~budget p fine in
      if a.timed_out || b.timed_out then begin
        prerr_endline "an analysis exceeded its budget; diff would be misleading";
        1
      end
      else begin
        Printf.printf "%s (%.3fs)  vs  %s (%.3fs)\n\n" a.label a.seconds b.label b.seconds;
        Ipa_clients.Compare.print a.solution b.solution;
        0
      end
  in
  let coarse_arg =
    Arg.(
      value
      & opt flavor_arg Flavors.Insensitive
      & info [ "from" ] ~docv:"ANALYSIS" ~doc:"Coarse analysis (default insens).")
  in
  let fine_arg =
    Arg.(
      value
      & opt flavor_arg (Flavors.Object_sens { depth = 2; heap = 1 })
      & info [ "to" ] ~docv:"ANALYSIS" ~doc:"Fine analysis (default 2objH).")
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Diff the precision of two analyses, site by site.")
    Term.(const run $ file_arg $ coarse_arg $ fine_arg $ budget_arg)

let dump_cmd =
  let run path flavor heuristic budget shards full output =
    with_solution path flavor heuristic budget shards (fun _ s ->
        match output with
        | Some out ->
          Ipa_clients.Facts_dump.write ~full s ~path:out;
          Printf.printf "wrote %s\n" out
        | None ->
          List.iter print_endline
            (if full then Ipa_clients.Facts_dump.full_lines s
             else Ipa_clients.Facts_dump.collapsed_lines s))
  in
  let full_arg =
    Arg.(value & flag & info [ "full" ] ~doc:"Dump the context-sensitive relations.")
  in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Dump the computed relations as diffable text facts.")
    Term.(
      const run $ file_arg $ analysis_arg $ heuristic_arg $ budget_arg $ shards_arg $ full_arg
      $ output_arg)

(* ---------- metrics ---------- *)

let metrics_cmd =
  let run path top =
    match load_program path with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok p ->
      let base = Ipa_core.Analysis.run_plain p Flavors.Insensitive in
      let m = Ipa_core.Introspection.compute base.solution in
      let show name values describe =
        let ranked =
          List.filter
            (fun (v, _) -> v > 0)
            (List.sort (fun a b -> compare b a)
               (Array.to_list (Array.mapi (fun i v -> (v, i)) values)))
        in
        Printf.printf "-- %s (top %d of %d non-zero) --\n" name top (List.length ranked);
        List.iteri
          (fun rank (v, i) -> if rank < top then Printf.printf "%8d  %s\n" v (describe i))
          ranked
      in
      let meth = Program.meth_full_name p in
      let heap = Program.heap_full_name p in
      let invo i = (Program.invo_info p i).invo_name in
      show "argument in-flow (metric 1)" m.in_flow invo;
      show "method total points-to volume (metric 2)" m.meth_total_volume meth;
      show "object max field points-to (metric 3)" m.obj_max_field heap;
      show "method max var-field points-to (metric 4)" m.meth_max_var_field meth;
      show "pointed-by-vars (metric 5)" m.pointed_by_vars heap;
      show "pointed-by-objs (metric 6)" m.pointed_by_objs heap;
      0
  in
  let top_arg = Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc:"Entries per metric.") in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Print the six introspection cost metrics of the paper (§3).")
    Term.(const run $ file_arg $ top_arg)

(* ---------- gen ---------- *)

let gen_cmd =
  let run name scale output edits seed kinds_str =
    match Ipa_synthetic.Dacapo.find name with
    | None ->
      Printf.eprintf "unknown benchmark %S; available: %s\n" name
        (String.concat ", "
           (List.map (fun (s : Ipa_synthetic.Dacapo.spec) -> s.name) Ipa_synthetic.Dacapo.all));
      1
    | Some spec -> (
      let spec = match seed with None -> spec | Some s -> { spec with seed = s } in
      let kinds =
        match kinds_str with
        | "all" -> Ok Ipa_synthetic.Edits.all_kinds
        | "monotone" -> Ok Ipa_synthetic.Edits.monotone_kinds
        | s -> (
          match Ipa_synthetic.Edits.kind_of_name s with
          | Some k -> Ok [ k ]
          | None ->
            Error
              (Printf.sprintf
                 "unknown edit kind %S (expected all, monotone, add-alloc, add-call, or \
                  rewrite-body)"
                 s))
      in
      match kinds with
      | Error msg ->
        prerr_endline msg;
        1
      | Ok kinds ->
        let p = Ipa_synthetic.Dacapo.build ~scale spec in
        let p =
          if edits <= 0 then p
          else begin
            (* The picker is seeded by the same value that seeded generation,
               so one --seed pins the whole edited program. Descriptions go
               to stderr: stdout may be the program text itself. *)
            let picked = Ipa_synthetic.Edits.pick ~kinds ~seed:spec.seed ~n:edits p in
            List.iter
              (fun e -> Printf.eprintf "edit: %s\n" (Ipa_synthetic.Edits.describe p e))
              picked;
            Ipa_synthetic.Edits.apply_all p picked
          end
        in
        let text = Ipa_ir.Pretty.program p in
        (match output with
        | Some path ->
          Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text);
          Printf.printf "wrote %s (%d classes, %d methods)\n" path (Program.n_classes p)
            (Program.n_meths p)
        | None -> print_string text);
        0)
  in
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCH" ~doc:"Benchmark name (antlr, bloat, ..., xalan).")
  in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let edit_arg =
    Arg.(
      value
      & opt int 0
      & info [ "edit" ] ~docv:"N"
          ~doc:
            "Apply $(docv) seeded random edits after generation (for the incremental-analysis \
             harness); the chosen deltas are described on stderr.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Override the benchmark's generation seed; also seeds the $(b,--edit) delta picker, \
             so equal seeds yield byte-identical edited programs.")
  in
  let edit_kinds_arg =
    Arg.(
      value
      & opt string "all"
      & info [ "edit-kinds" ] ~docv:"KINDS"
          ~doc:
            "Restrict $(b,--edit) deltas: $(b,all), $(b,monotone) (extensions only — what the \
             warm incremental path accepts), or a single kind ($(b,add-alloc), $(b,add-call), \
             $(b,rewrite-body)).")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic DaCapo-like benchmark as .jir text.")
    Term.(const run $ name_arg $ scale_arg $ output_arg $ edit_arg $ seed_arg $ edit_kinds_arg)

let export_dl_cmd =
  let run path output =
    match load_program path with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok p ->
      let text = Ipa_clients.Dl_export.script p in
      (match output with
      | Some out ->
        Out_channel.with_open_text out (fun oc -> Out_channel.output_string oc text);
        Printf.printf "wrote %s\n" out
      | None -> print_string text);
      0
  in
  let output_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "export-dl"
       ~doc:"Export the program and the context-insensitive analysis as a runnable .dl file.")
    Term.(const run $ file_arg $ output_arg)

(* ---------- datalog ---------- *)

let datalog_cmd =
  let run path budget =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg ->
      prerr_endline msg;
      1
    | src -> (
      match Ipa_datalog.Dl.parse src with
      | Error msg ->
        Printf.eprintf "%s: %s\n" path msg;
        1
      | Ok program -> (
        match Ipa_datalog.Dl.run_to_string ~budget program with
        | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          1
        | Ok out ->
          print_string out;
          0))
  in
  let dl_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Datalog program (.dl).")
  in
  Cmd.v
    (Cmd.info "datalog"
       ~doc:"Evaluate a standalone Datalog program on the analysis engine.")
    Term.(const run $ dl_file $ budget_arg)

(* ---------- solve: snapshot save/load ---------- *)

module Snapshot = Ipa_core.Snapshot

let solve_cmd =
  let print_report (r : Ipa_core.Compositional_solver.report) =
    Printf.printf "components    %d (%d summarized, %d reused from cache, %d (re-)solved)\n"
      r.n_sccs r.sccs_summarized r.summaries_reused r.sccs_resolved;
    match r.fallback with
    | Some reason -> Printf.printf "fallback      cold compositional solve (%s)\n" reason
    | None ->
      if r.incremental then
        Printf.printf "dirty sccs    [%s]\n"
          (String.concat "; " (List.map string_of_int r.dirty_sccs))
  in
  let run path flavor heuristic budget shards save load compositional edit_from cache_dir jobs =
    match load with
    | Some snap_path -> (
      (* Load a previously saved snapshot instead of solving. *)
      match load_program path with
      | Error msg ->
        prerr_endline msg;
        1
      | Ok p -> (
        match In_channel.with_open_bin snap_path In_channel.input_all with
        | exception Sys_error msg ->
          prerr_endline msg;
          1
        | bytes -> (
          match Snapshot.decode ~program:p bytes with
          | Error e ->
            Printf.eprintf "%s: %s\n" snap_path (Snapshot.error_to_string e);
            1
          | Ok snap ->
            let r =
              {
                Ipa_core.Analysis.label = snap.label;
                solution = snap.solution;
                seconds = snap.seconds;
                timed_out = snap.solution.outcome = Budget_exceeded;
              }
            in
            Printf.printf "loaded %s (solved in %.3fs when saved)\n" snap_path snap.seconds;
            print_result ~verbose:false p r;
            (match Ipa_core.Solution.self_check snap.solution with
            | [] ->
              Printf.printf "self-check    ok\n";
              0
            | errs ->
              Printf.printf "self-check    %d violation(s)\n" (List.length errs);
              List.iter print_endline errs;
              1))))
    | None when compositional || edit_from <> None -> (
      match load_program path with
      | Error msg ->
        prerr_endline msg;
        1
      | Ok p when heuristic <> None ->
        ignore p;
        prerr_endline
          "--compositional and --edit-from run a single-pass analysis; drop --heuristic";
        1
      | Ok p -> (
        let store =
          Option.map
            (fun d -> Ipa_harness.Cache.summary_store (Ipa_harness.Cache.create ~dir:d ()))
            cache_dir
        in
        let solved =
          match edit_from with
          | None -> Ok (p, Ipa_core.Analysis.run_compositional ?store ~jobs ~budget p flavor)
          | Some base_path -> (
            (* [path] is the edited program, [base_path] the baseline it
               (presumably) extends; the baseline is solved cold here, then
               the edited program warm-starts from it. Parsed ids are
               file-order artifacts, so the edited program is first
               realigned onto the baseline's ids by entity name; an
               unalignable delta simply fails the monotonicity check and
               solves cold. *)
            match load_program base_path with
            | Error msg -> Error msg
            | Ok base_program ->
              let p =
                match Ipa_core.Summary.align ~old_p:base_program ~new_p:p with
                | Some aligned -> aligned
                | None -> p
              in
              let base, base_report =
                Ipa_core.Analysis.run_compositional ?store ~jobs base_program flavor
              in
              Printf.printf "baseline      %s  %.3fs  (%d derivations, %d sccs summarized)\n"
                base.label base.seconds base.solution.derivations
                base_report.sccs_summarized;
              Ok
                ( p,
                  Ipa_core.Analysis.run_incremental ?store ~jobs p ~base_program
                    ~base_solution:base.solution flavor ))
        in
        match solved with
        | Error msg ->
          prerr_endline msg;
          1
        | Ok (p, (result, report)) ->
          print_result ~verbose:false p result;
          print_report report;
          (match save with
          | None -> ()
          | Some out ->
            let program_digest = Snapshot.digest_program p in
            let config = Ipa_core.Solver.plain p (Ipa_core.Flavors.strategy p flavor) in
            let key = Snapshot.config_key ~program_digest config in
            let snap =
              {
                Snapshot.key;
                program_digest;
                label = result.label;
                seconds = result.seconds;
                solution = result.solution;
                metrics = Some (Ipa_core.Introspection.compute result.solution);
              }
            in
            let bytes = Snapshot.encode snap in
            Out_channel.with_open_bin out (fun oc -> Out_channel.output_string oc bytes);
            Printf.printf "saved         %s (%d bytes, key %s)\n" out (String.length bytes) key);
          0))
    | None -> (
      match load_program path with
      | Error msg ->
        prerr_endline msg;
        1
      | Ok p ->
        let result, key =
          let program_digest = Snapshot.digest_program p in
          match heuristic with
          | None ->
            let flavor_strategy = Ipa_core.Flavors.strategy p flavor in
            let config = Ipa_core.Solver.plain p ~budget ~shards flavor_strategy in
            ( Ipa_core.Analysis.run_config p ~label:(Flavors.to_string flavor) config,
              Snapshot.config_key ~program_digest config )
          | Some h ->
            let ir = Ipa_core.Analysis.run_introspective ~budget ~shards p flavor h in
            Printf.printf "first pass    %s  %.3fs  (%d derivations)\n" ir.base.label
              ir.base.seconds ir.base.solution.derivations;
            ( ir.second,
              Snapshot.config_key ~program_digest
                (Ipa_core.Analysis.second_pass_config ~budget ~shards p flavor ir.refine) )
        in
        print_result ~verbose:false p result;
        (match save with
        | None -> ()
        | Some out ->
          let snap =
            {
              Snapshot.key;
              program_digest = Snapshot.digest_program p;
              label = result.label;
              seconds = result.seconds;
              solution = result.solution;
              metrics = Some (Ipa_core.Introspection.compute result.solution);
            }
          in
          let bytes = Snapshot.encode snap in
          Out_channel.with_open_bin out (fun oc -> Out_channel.output_string oc bytes);
          Printf.printf "saved         %s (%d bytes, key %s)\n" out (String.length bytes) key);
        0)
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-solution" ] ~docv:"FILE"
          ~doc:"Write the solved analysis (tables, counters, metrics) as a snapshot file.")
  in
  let load_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "load-solution" ] ~docv:"FILE"
          ~doc:
            "Load a snapshot saved with $(b,--save-solution) instead of solving; the program \
             must be the same one the snapshot was computed from.")
  in
  let compositional_arg =
    Arg.(
      value
      & flag
      & info [ "compositional" ]
          ~doc:
            "Solve per call-graph SCC with content-addressed boundary summaries. The solution \
             is byte-identical to the monolithic solve; the summary counters are reported.")
  in
  let edit_from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "edit-from" ] ~docv:"BASE.jir"
          ~doc:
            "Incremental mode: treat $(i,FILE) as an edited version of $(docv), solve the \
             baseline, and re-solve the edit warm from its fixpoint — only digest-changed \
             components and their consequences are re-derived.")
  in
  let solve_cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Content-addressed cache for SCC summaries (with $(b,--compositional) or \
             $(b,--edit-from)); unchanged components are reused across runs.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Domains for parallel summary extraction (default 1, sequential).")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Run an analysis and save the solution as a snapshot, or reload a saved one.")
    Term.(
      const run $ file_arg $ analysis_arg $ heuristic_arg $ budget_arg $ shards_arg $ save_arg
      $ load_arg $ compositional_arg $ edit_from_arg $ solve_cache_dir_arg $ jobs_arg)

(* ---------- cache maintenance ---------- *)

let cache_dir_arg =
  Arg.(
    value
    & opt string (Ipa_harness.Cache.default_dir ())
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Snapshot cache directory (default: \\$XDG_CACHE_HOME/ipa or ~/.cache/ipa).")

let cache_stats_cmd =
  let run dir =
    let entries = Ipa_harness.Cache.entries ~dir in
    if entries = [] then Printf.printf "%s: no cached entries\n" dir
    else begin
      Printf.printf "%s: %d cached entr%s\n" dir (List.length entries)
        (if List.length entries = 1 then "y" else "ies");
      let rows =
        List.map
          (fun (e : Ipa_harness.Cache.disk_entry) ->
            [
              e.entry_file;
              (match e.entry_kind with
              | Some k -> Ipa_harness.Cache.kind_name k
              | None -> "invalid");
              string_of_int e.entry_bytes;
              e.entry_describe;
              (match e.entry_seconds with Some s -> Printf.sprintf "%.3f" s | None -> "-");
            ])
          entries
      in
      Ipa_support.Ascii_table.print
        ~header:[ "entry"; "kind"; "bytes"; "label"; "solve(s)" ]
        rows;
      (* Per-kind rollup: entry counts and resident (on-disk) bytes. *)
      let bucket kind =
        List.fold_left
          (fun (n, bytes) (e : Ipa_harness.Cache.disk_entry) ->
            if e.entry_kind = kind then (n + 1, bytes + e.entry_bytes) else (n, bytes))
          (0, 0) entries
      in
      let kinds =
        [
          Some Ipa_harness.Cache.Snapshot_entry;
          Some Ipa_harness.Cache.Demand_entry;
          Some Ipa_harness.Cache.Summary_entry;
          None;
        ]
      in
      List.iter
        (fun kind ->
          let n, bytes = bucket kind in
          if n > 0 then
            Printf.printf "%s: %d entr%s, %d bytes\n"
              (match kind with
              | Some k -> Ipa_harness.Cache.kind_name k
              | None -> "invalid")
              n
              (if n = 1 then "y" else "ies")
              bytes)
        kinds;
      let total =
        List.fold_left
          (fun acc (e : Ipa_harness.Cache.disk_entry) -> acc + e.entry_bytes)
          0 entries
      in
      Printf.printf "total %d bytes\n" total
    end;
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"List the cached entries: analysis snapshots, demand slices, and SCC summaries.")
    Term.(const run $ cache_dir_arg)

let cache_kind_arg =
  let kind_conv =
    let parse s =
      match s with
      | "snapshot" -> Ok Ipa_harness.Cache.Snapshot_entry
      | "demand-slice-v1" -> Ok Ipa_harness.Cache.Demand_entry
      | "summary-v1" -> Ok Ipa_harness.Cache.Summary_entry
      | _ ->
        Error
          (`Msg
            (Printf.sprintf "unknown cache entry kind %S (expected %s)" s
               "snapshot, demand-slice-v1, or summary-v1"))
    in
    Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Ipa_harness.Cache.kind_name k))
  in
  Arg.(
    value
    & opt (some kind_conv) None
    & info [ "kind" ] ~docv:"KIND"
        ~doc:
          "Only remove entries of this kind: $(b,snapshot), $(b,demand-slice-v1), or \
           $(b,summary-v1). Default: every kind.")

let cache_clear_cmd =
  let run dir kind =
    let n = Ipa_harness.Cache.clear ?kind ~dir () in
    (match kind with
    | None -> Printf.printf "removed %d cached entr%s from %s\n" n (if n = 1 then "y" else "ies") dir
    | Some k ->
      Printf.printf "removed %d %s entr%s from %s\n" n (Ipa_harness.Cache.kind_name k)
        (if n = 1 then "y" else "ies")
        dir);
    0
  in
  Cmd.v
    (Cmd.info "clear" ~doc:"Remove cached entries, optionally filtered by kind.")
    Term.(const run $ cache_dir_arg $ cache_kind_arg)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect or clear the on-disk analysis snapshot cache.")
    [ cache_stats_cmd; cache_clear_cmd ]

(* ---------- query / serve ---------- *)

(* The initial solution of a query session: a saved snapshot when
   --load-solution is given, otherwise a solve of the configured analysis
   (through the snapshot cache when the server has one). *)
let obtain_solution ?cache path flavor heuristic budget shards load =
  match load_program path with
  | Error msg -> Error msg
  | Ok p -> (
    match load with
    | Some snap_path -> (
      match In_channel.with_open_bin snap_path In_channel.input_all with
      | exception Sys_error msg -> Error msg
      | bytes -> (
        match Snapshot.decode ~program:p bytes with
        | Error e -> Error (Printf.sprintf "%s: %s" snap_path (Snapshot.error_to_string e))
        | Ok snap -> Ok (p, snap.label, snap.solution)))
    | None -> (
      match cache with
      | None ->
        let r =
          match heuristic with
          | None -> Ipa_core.Analysis.run_plain ~budget ~shards p flavor
          | Some h -> (Ipa_core.Analysis.run_introspective ~budget ~shards p flavor h).second
        in
        Ok (p, r.label, r.solution)
      | Some cache -> (
        match heuristic with
        | None ->
          let config = Ipa_core.Solver.plain p ~budget ~shards (Flavors.strategy p flavor) in
          let r, _ = Ipa_harness.Cache.solve cache p ~label:(Flavors.to_string flavor) config in
          Ok (p, r.label, r.solution)
        | Some h ->
          let base, metrics = Ipa_harness.Cache.base_pass cache ~budget p in
          let refine = Heuristics.select base.solution metrics h in
          let label = Flavors.to_string flavor ^ "-" ^ Heuristics.name h in
          let config = Ipa_core.Analysis.second_pass_config ~budget ~shards p flavor refine in
          let r, _ = Ipa_harness.Cache.solve cache p ~label config in
          Ok (p, r.label, r.solution))))

let load_solution_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "load-solution" ] ~docv:"FILE"
        ~doc:"Answer queries over a snapshot saved with $(b,solve --save-solution) instead of solving.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object per answer line.")

let timings_arg =
  Arg.(value & flag & info [ "timings" ] ~doc:"Append per-query evaluation latency to each answer.")

let demand_mode_arg =
  let mode_conv =
    Arg.enum
      [
        ("off", Ipa_query.Server.Demand_off);
        ("auto", Ipa_query.Server.Demand_auto);
        ("on", Ipa_query.Server.Demand_on);
      ]
  in
  Arg.(
    value
    & opt ~vopt:Ipa_query.Server.Demand_auto mode_conv Ipa_query.Server.Demand_off
    & info [ "demand" ] ~docv:"MODE"
        ~doc:
          "Demand-driven solving: answer eligible queries (pts, pointed-by, alias, callees, \
           callers, reach, fieldpts) from a backward constraint slice solved without budget, \
           instead of the loaded solution. $(b,auto) (the bare-flag default) slices only when \
           the loaded solution was budget-truncated; $(b,on) always slices; $(b,off) (default) \
           never. Sessions can switch with the $(b,demand on|off|auto) command.")

(* The demand evaluator always slices the *plain* flavor configuration at
   budget 0 — exact answers are the point; introspective refinement is a
   precision trade the slice does not reproduce. *)
let make_demand ?cache ~warm p flavor mode =
  if mode = Ipa_query.Server.Demand_off then None
  else
    let config = Ipa_core.Solver.plain p (Flavors.strategy p flavor) in
    Some
      (Ipa_query.Demand.create ?cache ~warm ~program:p ~label:(Flavors.to_string flavor)
         config)

let query_cmd =
  let run path flavor heuristic budget shards load queries json timings demand_mode timeout =
    match
      match timeout with
      | Some s when s <= 0.0 -> Error "query: --timeout must be > 0"
      | _ -> obtain_solution path flavor heuristic budget shards load
    with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok (p, label, sol) ->
      let demand = make_demand ~warm:false p flavor demand_mode in
      let server =
        Ipa_query.Server.create ?demand ~demand_mode ?query_timeout:timeout ~json ~timings
          ~program:p ~label sol
      in
      let session ic = ignore (Ipa_query.Server.session server ic stdout) in
      (match queries with
      | None -> session stdin
      | Some f -> In_channel.with_open_text f session);
      Printf.eprintf "query: %d answered (%d errors)\n" (Ipa_query.Server.served server)
        (Ipa_query.Server.errors server);
      if Ipa_query.Server.errors server = 0 then 0 else 1
  in
  let queries_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "queries" ] ~docv:"FILE" ~doc:"Query script, one query per line (default: stdin).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Per-query wall-clock guard: an evaluation running longer than SECS is abandoned \
             and answered with a structured $(b,timeout) error record. Batch (sequential) \
             query mode only.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Answer points-to queries (pts, alias, callees, reach, taint, ...) over a solution.")
    Term.(
      const run $ file_arg $ analysis_arg $ heuristic_arg $ budget_arg $ shards_arg
      $ load_solution_arg $ queries_arg $ json_arg $ timings_arg $ demand_mode_arg
      $ timeout_arg)

let serve_cmd =
  let run path flavor heuristic budget shards load cache_dir mem_budget jobs json timings socket
      log_path read_timeout max_line max_queries demand_mode =
    let ( let* ) r k =
      match r with
      | Error msg ->
        Printf.eprintf "serve: %s\n" msg;
        1
      | Ok v -> k v
    in
    let* mem_budget =
      match mem_budget with
      | None -> Ok None
      | Some s -> Result.map Option.some (Ipa_harness.Cache.parse_budget s)
    in
    let cache = Option.map (fun dir -> Ipa_harness.Cache.create ~dir ?mem_budget ()) cache_dir in
    let* () =
      if mem_budget <> None && cache = None then
        Error "--mem-budget requires --cache-dir (it bounds the snapshot cache)"
      else Ok ()
    in
    let* p, label, sol = obtain_solution ?cache path flavor heuristic budget shards load in
    let limits =
      {
        Ipa_query.Server.max_line;
        max_queries;
        idle_timeout = (if read_timeout > 0.0 then Some read_timeout else None);
      }
    in
    let with_log k =
      match log_path with
      | None -> k None
      | Some f -> Out_channel.with_open_text f (fun oc -> k (Some oc))
    in
    with_log @@ fun log ->
    let serve pool =
      let demand = make_demand ?cache ~warm:(pool <> None) p flavor demand_mode in
      let server =
        Ipa_query.Server.create ?cache ?pool ?log ?demand ~demand_mode ~limits ~json ~timings
          ~program:p ~label sol
      in
      let t0 = Ipa_support.Timer.now () in
      let status =
        match socket with
        | Some sock_path -> (
          match Ipa_query.Server.serve_socket server ~path:sock_path with
          | Ok () -> 0
          | Error msg ->
            Printf.eprintf "serve: %s\n" msg;
            1)
        | None ->
          ignore (Ipa_query.Server.session server stdin stdout);
          0
      in
      Printf.eprintf "serve: %d served (%d errors), %d loads, %.3fs\n"
        (Ipa_query.Server.served server) (Ipa_query.Server.errors server)
        (Ipa_query.Server.loads server)
        (Ipa_support.Timer.now () -. t0);
      prerr_endline (Ipa_query.Server.metrics_line server);
      (match cache with Some c -> prerr_endline (Ipa_harness.Cache.stats_line c) | None -> ());
      status
    in
    if jobs <= 1 then serve None
    else Ipa_support.Domain_pool.with_pool ~jobs (fun pool -> serve (Some pool))
  in
  let serve_cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Snapshot cache: the initial solve is cached under DIR and $(b,load key <key>) \
             serves snapshots from it.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for batched query evaluation. Answers are identical at any job \
             count; only latency varies.")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve connections on a Unix-domain socket instead of stdin/stdout. With \
             $(b,--jobs) > 1, connections are served concurrently.")
  in
  let mem_budget_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mem-budget" ] ~docv:"BYTES"
          ~doc:
            "Bound the bytes of snapshots held in memory (suffixes k/m/g); least-recently-used \
             unpinned snapshots are evicted to disk. Requires $(b,--cache-dir).")
  in
  let log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE" ~doc:"Append one JSONL record per request to FILE.")
  in
  let read_timeout_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "read-timeout" ] ~docv:"SECONDS"
          ~doc:"Close a socket session idle longer than SECONDS (0 disables; the default).")
  in
  let max_line_arg =
    Arg.(
      value
      & opt int Ipa_query.Server.default_limits.max_line
      & info [ "max-line" ] ~docv:"BYTES"
          ~doc:"Longest accepted input line; an over-limit line answers an error record.")
  in
  let max_queries_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-queries" ] ~docv:"N"
          ~doc:"Close a session after N queries/loads with a structured error reply.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a persistent query session: answers queries line by line, hot-loads snapshots \
          with $(b,load path/key), reports $(b,metrics), ends at $(b,quit) or end of input.")
    Term.(
      const run $ file_arg $ analysis_arg $ heuristic_arg $ budget_arg $ shards_arg
      $ load_solution_arg $ serve_cache_dir_arg $ mem_budget_arg $ jobs_arg $ json_arg
      $ timings_arg $ socket_arg $ log_arg $ read_timeout_arg $ max_line_arg $ max_queries_arg
      $ demand_mode_arg)

(* ---------- lint ---------- *)

let lint_cmd =
  let run path flavor heuristic budget shards rules_spec no_solve format output baseline_path
      update_baseline jobs mega taint_spec_path =
    let ( let* ) r k =
      match r with
      | Error msg ->
        Printf.eprintf "lint: %s\n" msg;
        1
      | Ok v -> k v
    in
    let* rules = Ipa_lint.Lint.select_rules rules_spec in
    let* taint_spec =
      match taint_spec_path with
      | None -> Ok None
      | Some sp -> Result.map Option.some (Ipa_clients.Taint.spec_of_file sp)
    in
    let* p = load_program path in
    let solution =
      if no_solve then None
      else begin
        let r =
          match heuristic with
          | None -> Ipa_core.Analysis.run_plain ~budget ~shards p flavor
          | Some h -> (Ipa_core.Analysis.run_introspective ~budget ~shards p flavor h).second
        in
        if r.timed_out then
          Printf.eprintf
            "lint: %s exceeded its derivation budget; solution-backed findings are partial\n"
            r.label
        else Printf.eprintf "lint: analysis %s (%.3fs)\n" r.label r.seconds;
        Some r.solution
      end
    in
    let ctx = Ipa_lint.Lint.make_ctx ?solution ?taint_spec ~megamorphic_threshold:mega p in
    let findings, timings = Ipa_lint.Lint.run ~jobs ~rules ctx in
    if update_baseline then begin
      match baseline_path with
      | None ->
        prerr_endline "lint: --update-baseline requires --baseline FILE";
        1
      | Some bp ->
        Ipa_lint.Baseline.save bp findings;
        Printf.eprintf "lint: wrote %s (%d finding(s))\n" bp (List.length findings);
        0
    end
    else begin
      let* baseline =
        match baseline_path with
        | None -> Ok None
        | Some bp -> Result.map Option.some (Ipa_lint.Baseline.load bp)
      in
      let fresh =
        match baseline with None -> findings | Some b -> Ipa_lint.Baseline.filter_new b findings
      in
      let text = Ipa_lint.Report.render ~rules format fresh in
      (match output with
      | None -> print_string text
      | Some out ->
        Out_channel.with_open_text out (fun oc -> Out_channel.output_string oc text);
        Printf.eprintf "lint: wrote %s\n" out);
      let rule_time =
        List.fold_left (fun a (t : Ipa_lint.Lint.timing) -> a +. t.seconds) 0. timings
      in
      Printf.eprintf "lint: %d finding(s)%s from %d rule(s) in %.3fs\n" (List.length findings)
        (match baseline with
        | None -> ""
        | Some _ -> Printf.sprintf ", %d new" (List.length fresh))
        (List.length rules) rule_time;
      if fresh = [] then 0 else 1
    end
  in
  let rules_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated rule ids and family selectors ($(b,all), $(b,syntactic), \
             $(b,semantic)); a trailing $(b,-) excludes a rule, e.g. $(b,all,IPA-P006-). \
             Default: every rule.")
  in
  let no_solve_arg =
    Arg.(
      value & flag
      & info [ "no-solve" ]
          ~doc:"Skip the points-to analysis: run only the syntactic rule family.")
  in
  let format_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("human", Ipa_lint.Report.Human);
               ("jsonl", Ipa_lint.Report.Jsonl);
               ("sarif", Ipa_lint.Report.Sarif);
             ])
          Ipa_lint.Report.Human
      & info [ "format" ] ~docv:"FMT" ~doc:"Report format: $(b,human), $(b,jsonl), or $(b,sarif).")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the report to FILE instead of stdout.")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Baseline file of accepted findings: only findings not in it are reported, and the \
             exit status is nonzero only for those new findings.")
  in
  let update_baseline_arg =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:"Rewrite the $(b,--baseline) file to accept the current findings, then exit 0.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for rule evaluation. The report is byte-identical at any job \
             count; only timings vary.")
  in
  let mega_arg =
    Arg.(
      value
      & opt int 3
      & info [ "megamorphic" ] ~docv:"K"
          ~doc:"Target count at which IPA-P004 flags a virtual call (default 3).")
  in
  let taint_spec_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "taint-spec" ] ~docv:"FILE"
          ~doc:"Taint specification for IPA-P005 (defaults to the built-in spec).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the diagnostics suite: syntactic rules plus solution-backed rules grounded in a \
          points-to analysis.")
    Term.(
      const run $ file_arg $ analysis_arg $ heuristic_arg $ budget_arg $ shards_arg $ rules_arg
      $ no_solve_arg $ format_arg $ output_arg $ baseline_arg $ update_baseline_arg $ jobs_arg
      $ mega_arg $ taint_spec_arg)

(* ---------- experiments ---------- *)

let experiments_cmd =
  let run figure scale budget jobs cache_dir =
    let cache =
      match cache_dir with
      | None -> Ipa_harness.Cache.create ()
      | Some dir -> Ipa_harness.Cache.create ~dir ()
    in
    let cfg = { Ipa_harness.Config.scale; budget; jobs = max 1 jobs; cache } in
    match figure with
    | Some n when not (List.mem n [ 1; 4; 5; 6; 7 ]) ->
      Printf.eprintf "no figure %d (have 1, 4, 5, 6, 7)\n" n;
      1
    | _ ->
      (match figure with
      | None -> Ipa_harness.Experiments.print_all cfg
      | Some 1 -> Ipa_harness.Experiments.Fig1.print cfg
      | Some 4 -> Ipa_harness.Experiments.Fig4.print cfg
      | Some 5 ->
        Ipa_harness.Experiments.Figs567.print cfg (Flavors.Object_sens { depth = 2; heap = 1 })
      | Some 6 ->
        Ipa_harness.Experiments.Figs567.print cfg (Flavors.Type_sens { depth = 2; heap = 1 })
      | Some 7 ->
        Ipa_harness.Experiments.Figs567.print cfg (Flavors.Call_site { depth = 2; heap = 1 })
      | Some _ -> assert false);
      print_endline (Ipa_harness.Cache.stats_line cache);
      0
  in
  let figure_arg =
    Arg.(value & opt (some int) None & info [ "figure" ] ~docv:"N" ~doc:"Figure number (1, 4-7).")
  in
  let budget_arg' =
    Arg.(
      value
      & opt int Ipa_harness.Config.default.budget
      & info [ "budget" ] ~docv:"N" ~doc:"Derivation budget per run.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int Ipa_harness.Config.default.jobs
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for independent analyses (default: the machine's recommended domain \
             count). Results are identical at any job count; only timings vary.")
  in
  let exp_cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist and reuse the shared context-insensitive first passes under DIR. Without \
             it the cache is in-memory only (still deduplicates within the run).")
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const run $ figure_arg $ scale_arg $ budget_arg' $ jobs_arg $ exp_cache_dir_arg)

let () =
  let info =
    Cmd.info "introspect" ~version:"1.0.0"
      ~doc:"Introspective context-sensitive points-to analysis (PLDI 2014 reproduction)."
  in
  let group =
    Cmd.group info
          [
            check_cmd;
            lint_cmd;
            analyze_cmd;
            solve_cmd;
            cache_cmd;
            metrics_cmd;
            gen_cmd;
            query_cmd;
            serve_cmd;
            experiments_cmd;
            devirt_cmd;
            casts_cmd;
            taint_cmd;
            exceptions_cmd;
            hotspots_cmd;
            callgraph_cmd;
            compare_cmd;
            dump_cmd;
            datalog_cmd;
            export_dl_cmd;
          ]
  in
  (* Every failure path prints a message to stderr and exits nonzero: no
     subcommand lets an exception escape as a backtrace. *)
  exit
    (try Cmd.eval' group with
    | e ->
      Printf.eprintf "introspect: %s\n" (Printexc.to_string e);
      1)
