(* Taint-tracking client: context-sensitivity as a security precision win.

   The program is the synthetic [taint_pipes] motif: clients share one
   handler-box allocation site, each registers its own handler and delivers
   a payload to the handler it reads back; exactly one payload is a secret.
   A context-insensitive analysis conflates the handlers, so the secret
   appears to reach every client's sink; 2objH separates the boxes per
   client and only the genuinely hot sink stays tainted — the introspective
   variant keeps that precision at bounded cost.

   Run with: dune exec examples/taint_tracking.exe *)

module Taint = Ipa_clients.Taint
module Solution = Ipa_core.Solution

let report (r : Ipa_core.Analysis.result) =
  (* Every example run doubles as a soundness check of the solution. *)
  Solution.self_check_exn r.solution;
  let res = Taint.analyze r.solution in
  Printf.printf "--- %s (%.3fs) ---\n" r.label r.seconds;
  Printf.printf "tainted sinks: %d (from %d taint seeds)\n" (List.length res.findings)
    res.n_seeds;
  (match (res.findings, res.vfg) with
  | { path = _ :: _ as path; _ } :: _, Some vfg ->
    Printf.printf "witness: %s\n"
      (String.concat " -> " (List.map (Ipa_core.Value_flow.node_to_string vfg) path))
  | _ -> ());
  print_newline ();
  List.length res.findings

let () =
  let w = Ipa_synthetic.World.create ~seed:7 in
  Ipa_synthetic.Motifs.taint_pipes ~sanitized:2 w ~n:6;
  let p = Ipa_synthetic.World.finish w in
  let insens = report (Ipa_core.Analysis.run_plain p Ipa_core.Flavors.Insensitive) in
  let obj2 =
    report (Ipa_core.Analysis.run_plain p (Ipa_core.Flavors.Object_sens { depth = 2; heap = 1 }))
  in
  let intro =
    Ipa_core.Analysis.run_introspective p
      (Ipa_core.Flavors.Object_sens { depth = 2; heap = 1 })
      Ipa_core.Heuristics.default_a
  in
  let intro_n = report intro.second in
  Printf.printf "insens reports %d, 2objH %d, introspective-A %d:\n" insens obj2 intro_n;
  Printf.printf "context-sensitivity eliminates the %d spurious taint reports.\n" (insens - obj2)
