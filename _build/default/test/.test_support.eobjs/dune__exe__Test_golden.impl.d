test/test_golden.ml: Alcotest Hashtbl Ipa_core Ipa_synthetic List Option Printf
