test/test_support.ml: Alcotest Array Fun Int Ipa_support List QCheck2 QCheck_alcotest Set String
