test/test_harness.ml: Alcotest Ipa_core Ipa_harness List
