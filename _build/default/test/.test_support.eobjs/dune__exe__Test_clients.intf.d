test/test_clients.mli:
