test/test_introspection.mli:
