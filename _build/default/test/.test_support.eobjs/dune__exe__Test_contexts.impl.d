test/test_contexts.ml: Alcotest Array Hashtbl Ipa_core Ipa_ir Ipa_support Ipa_testlib List Option
