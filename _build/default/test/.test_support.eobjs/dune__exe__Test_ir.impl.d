test/test_ir.ml: Alcotest Array Ipa_frontend Ipa_ir Ipa_testlib List Option String
