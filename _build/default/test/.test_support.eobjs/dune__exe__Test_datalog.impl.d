test/test_datalog.ml: Alcotest Array Ipa_datalog List QCheck2 QCheck_alcotest Result String
