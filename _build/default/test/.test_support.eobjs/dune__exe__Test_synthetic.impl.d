test/test_synthetic.ml: Alcotest Ipa_core Ipa_ir Ipa_synthetic List Option
