test/test_frontend.ml: Alcotest Array Ipa_core Ipa_frontend Ipa_ir Ipa_synthetic Ipa_testlib List Option Printf String
