test/test_properties.ml: Alcotest Array Bytes Hashtbl Ipa_clients Ipa_core Ipa_datalog Ipa_frontend Ipa_ir Ipa_support Ipa_synthetic Ipa_testlib List Option Printf QCheck2 QCheck_alcotest String
