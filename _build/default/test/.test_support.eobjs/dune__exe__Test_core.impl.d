test/test_core.ml: Alcotest Array Fun Ipa_core Ipa_ir Ipa_support Ipa_synthetic Ipa_testlib List Option Printf
