test/test_contexts.mli:
