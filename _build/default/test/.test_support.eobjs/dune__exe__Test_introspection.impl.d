test/test_introspection.ml: Alcotest Array Hashtbl Ipa_core Ipa_ir Ipa_support Ipa_synthetic Ipa_testlib List Option Printf String
