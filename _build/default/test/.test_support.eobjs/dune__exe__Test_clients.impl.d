test/test_clients.ml: Alcotest Array Filename Hashtbl In_channel Ipa_clients Ipa_core Ipa_datalog Ipa_ir Ipa_support Ipa_synthetic Ipa_testlib List Option Result String Sys
