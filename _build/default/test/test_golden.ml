(* Golden regression tests: exact, deterministic result counts on generated
   benchmarks at a fixed scale. Derivation counts, relation sizes, and every
   precision metric are fully deterministic (no wall-clock dependence), so
   any change here is a semantic change to the solver, the motifs, or the
   metrics — which must be deliberate. Update the table when one is. *)

module F = Ipa_core.Flavors

let check = Alcotest.check

type gold = {
  bench : string;
  flavor : F.spec;
  derivations : int;
  vpt : int;
  poly : int;
  reach : int;
  casts : int;
  uncaught : int;
  cg : int;
}

let insens = F.Insensitive
let obj2 = F.Object_sens { depth = 2; heap = 1 }
let call2 = F.Call_site { depth = 2; heap = 1 }
let type2 = F.Type_sens { depth = 2; heap = 1 }

let table =
  [
    (* bench, flavor, derivations, vpt, poly, reach, casts, uncaught, cg *)
    ("chart", insens, 4606, 3630, 26, 277, 13, 2, 496);
    ("chart", obj2, 7307, 6437, 2, 250, 0, 2, 345);
    ("chart", call2, 15648, 14695, 2, 250, 0, 2, 345);
    ("chart", type2, 4295, 3470, 2, 250, 2, 2, 345);
    ("hsqldb", insens, 22382, 20200, 17, 496, 7, 1, 932);
    ("hsqldb", obj2, 190982, 188463, 1, 481, 0, 1, 873);
    ("hsqldb", call2, 365979, 363051, 1, 481, 0, 1, 873);
    ("hsqldb", type2, 22259, 20136, 1, 481, 0, 1, 873);
  ]
  |> List.map (fun (bench, flavor, derivations, vpt, poly, reach, casts, uncaught, cg) ->
         { bench; flavor; derivations; vpt; poly; reach; casts; uncaught; cg })

let test_golden () =
  let programs = Hashtbl.create 4 in
  List.iter
    (fun g ->
      let p =
        match Hashtbl.find_opt programs g.bench with
        | Some p -> p
        | None ->
          let p =
            Ipa_synthetic.Dacapo.build ~scale:0.1
              (Option.get (Ipa_synthetic.Dacapo.find g.bench))
          in
          Hashtbl.add programs g.bench p;
          p
      in
      let r = Ipa_core.Analysis.run_plain p g.flavor in
      let prec = Ipa_core.Precision.compute r.solution in
      let st = Ipa_core.Solution.stats r.solution in
      let label what = Printf.sprintf "%s/%s %s" g.bench (F.to_string g.flavor) what in
      check Alcotest.int (label "derivations") g.derivations r.solution.derivations;
      check Alcotest.int (label "vpt") g.vpt st.vpt_tuples;
      check Alcotest.int (label "poly") g.poly prec.poly_vcalls;
      check Alcotest.int (label "reach") g.reach prec.reachable_methods;
      check Alcotest.int (label "casts") g.casts prec.may_fail_casts;
      check Alcotest.int (label "uncaught") g.uncaught prec.uncaught_exceptions;
      check Alcotest.int (label "cg") g.cg prec.call_edges)
    table

let () =
  Alcotest.run "golden"
    [ ("counts", [ Alcotest.test_case "frozen benchmark results" `Quick test_golden ]) ]
