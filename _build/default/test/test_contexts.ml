(* Context-shape tests: for a crafted program, assert the exact context and
   heap-context element sequences each flavor produces — the semantics of
   the paper's Record/Merge constructors, observed end to end through the
   solver. Also covers mixed-flavor configurations (§3's "some methods with
   object-sensitivity, others with call-site-sensitivity"). *)

module P = Ipa_ir.Program
module Ctx = Ipa_core.Ctx
module Flavors = Ipa_core.Flavors
module Analysis = Ipa_core.Analysis
module Solution = Ipa_core.Solution
module Int_set = Ipa_support.Int_set

let check = Alcotest.check

(* main allocates two workers (sites W1, W2) and calls work() on each; work
   calls helper() on this and allocates a result. *)
let src = {|
class Object { }
class Result { }
class Worker {
  method work/0 () {
    var r, t;
    r = new Result;
    t = this.helper();
    return r;
  }
  method helper/0 () { return this; }
}
class Main {
  static method main/0 () {
    var w1, w2, r1, r2;
    w1 = new Worker;
    w2 = new Worker;
    r1 = w1.work();
    r2 = w2.work();
  }
}
entry Main::main/0;
|}

let parse = Ipa_testlib.parse_exn

(* decoded contexts of each reachable instance of [meth_name] *)
let contexts_of (r : Analysis.result) meth_name =
  let p = r.solution.program in
  let out = ref [] in
  Solution.iter_reachable r.solution (fun ~meth ~ctx ->
      if (P.meth_info p meth).meth_name = meth_name then
        out :=
          Array.to_list
            (Array.map (Ctx.Elem.to_string p) (Ctx.elems r.solution.ctxs ctx))
          :: !out);
  List.sort compare !out

(* decoded heap contexts of every object allocated at sites of class [cls] *)
let hctxs_of (r : Analysis.result) cls_name =
  let p = r.solution.program in
  let seen = ref [] in
  Solution.iter_var_pts r.solution (fun ~var:_ ~ctx:_ ~heap ~hctx ->
      if P.class_name p (P.heap_info p heap).heap_class = cls_name then begin
        let decoded =
          ( P.heap_full_name p heap,
            Array.to_list (Array.map (Ctx.Elem.to_string p) (Ctx.elems r.solution.ctxs hctx)) )
        in
        if not (List.mem decoded !seen) then seen := decoded :: !seen
      end);
  List.sort compare !seen

let w1 = "Main::main/new Worker#0"
let w2 = "Main::main/new Worker#1"
let site1 = "Main::main/call work#0"
let site2 = "Main::main/call work#1"
let helper_site = "Worker::work/call helper#0"

let ctxs = Alcotest.(list (list string))

let test_insens_contexts () =
  let r = Analysis.run_plain (parse src) Flavors.Insensitive in
  check ctxs "work has the empty context" [ [] ] (contexts_of r "work");
  check ctxs "helper too" [ [] ] (contexts_of r "helper")

let test_2objH_contexts () =
  let r = Analysis.run_plain (parse src) (Flavors.Object_sens { depth = 2; heap = 1 }) in
  (* work's context is its receiver's allocation site (depth 2 has nothing
     more to add: the workers are allocated in the empty context) *)
  check ctxs "work per receiver" [ [ w1 ]; [ w2 ] ] (contexts_of r "work");
  (* helper is called on this, so its context is the same receiver *)
  check ctxs "helper inherits receiver" [ [ w1 ]; [ w2 ] ] (contexts_of r "helper");
  (* the Result allocation gets a 1-deep heap context: the allocating
     method's context's first element *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.list Alcotest.string)))
    "result heap contexts"
    [ ("Worker::work/new Result#0", [ w1 ]); ("Worker::work/new Result#0", [ w2 ]) ]
    (hctxs_of r "Result")

let test_2callH_contexts () =
  let r = Analysis.run_plain (parse src) (Flavors.Call_site { depth = 2; heap = 1 }) in
  (* work: one context per call site; helper: its (single) call site plus
     the work call site — depth-2 chains *)
  check ctxs "work per site" [ [ site1 ]; [ site2 ] ] (contexts_of r "work");
  check ctxs "helper chains"
    [ [ helper_site; site1 ]; [ helper_site; site2 ] ]
    (contexts_of r "helper")

let test_2typeH_contexts () =
  let r = Analysis.run_plain (parse src) (Flavors.Type_sens { depth = 2; heap = 1 }) in
  (* both workers are allocated in Main, so their type context element is the
     class Main — the two receivers collapse *)
  check ctxs "work collapses to the allocating class" [ [ "Main" ] ] (contexts_of r "work");
  check ctxs "helper likewise" [ [ "Main" ] ] (contexts_of r "helper")

let test_1objH_contexts () =
  let r = Analysis.run_plain (parse src) (Flavors.Object_sens { depth = 1; heap = 1 }) in
  check ctxs "depth 1 still separates receivers" [ [ w1 ]; [ w2 ] ] (contexts_of r "work")

let test_mixed_flavors () =
  (* default = 2callH everywhere, but the two work() call sites are refined
     with 2objH: work runs under object contexts while helper (not refined)
     falls back to call-site merging on top of them. *)
  let p = parse src in
  let work =
    Option.get (P.find_meth p ~class_name:"Worker" ~name:"work" ~arity:0)
  in
  let skip_sites = Int_set.create () in
  let skip_objects = Int_set.create () in
  (* refine everything except: nothing — but we want ONLY the work sites
     refined, so skip every other candidate pair *)
  let base = Analysis.run_plain p Flavors.Insensitive in
  Hashtbl.iter
    (fun invo targets ->
      Int_set.iter
        (fun m ->
          if m <> work then
            ignore (Int_set.add skip_sites (Ipa_core.Refine.pack_site ~invo ~meth:m)))
        targets)
    (Solution.call_targets base.solution);
  for h = 0 to P.n_heaps p - 1 do
    ignore (Int_set.add skip_objects h)
  done;
  let r =
    Analysis.run_mixed p
      ~default:(Flavors.Call_site { depth = 2; heap = 1 })
      ~refined:(Flavors.Object_sens { depth = 2; heap = 1 })
      ~refine:(Ipa_core.Refine.All_except { skip_objects; skip_sites })
  in
  check Alcotest.string "label" "2callH+2objH" r.label;
  (* work was merged object-sensitively *)
  check ctxs "work object contexts" [ [ w1 ]; [ w2 ] ] (contexts_of r "work");
  (* helper used the default call-site merge on top of the object context *)
  check ctxs "helper mixes site onto object context"
    [ [ helper_site; w1 ]; [ helper_site; w2 ] ]
    (contexts_of r "helper")

let test_hybrid_contexts () =
  (* a static wrapper between main and the virtual call: hybrid pushes the
     static call site AND keeps object elements for virtual dispatch *)
  let src = {|
class Object { }
class Worker {
  method work/0 () { var t; t = this.helper(); return this; }
  method helper/0 () { return this; }
}
class Main {
  static method go/1 (w) { var r; r = w.work(); return r; }
  static method main/0 () {
    var w1, r1;
    w1 = new Worker;
    r1 = Main::go(w1);
  }
}
entry Main::main/0;
|} in
  let r = Analysis.run_plain (parse src) (Flavors.Hybrid { depth = 2; heap = 1 }) in
  (* go's context is its (static) call site pushed onto main's empty ctx *)
  check ctxs "static wrapper gets its site" [ [ "Main::main/scall go#0" ] ] (contexts_of r "go");
  (* work is a virtual call: object-sensitive merge on the receiver *)
  check ctxs "virtual merge is object-based" [ [ "Main::main/new Worker#0" ] ]
    (contexts_of r "work")

let test_mixed_none_is_default () =
  (* run_mixed with empty refine sets must equal the plain default flavor *)
  let p = parse src in
  let mixed =
    Analysis.run_mixed p
      ~default:(Flavors.Call_site { depth = 2; heap = 1 })
      ~refined:(Flavors.Object_sens { depth = 2; heap = 1 })
      ~refine:Ipa_core.Refine.None_
  in
  let plain = Analysis.run_plain p (Flavors.Call_site { depth = 2; heap = 1 }) in
  check (Alcotest.list Alcotest.string) "mixed/none = default plain"
    (Ipa_testlib.canon_native plain.solution)
    (Ipa_testlib.canon_native mixed.solution)

let () =
  Alcotest.run "contexts"
    [
      ( "shapes",
        [
          Alcotest.test_case "insens" `Quick test_insens_contexts;
          Alcotest.test_case "2objH" `Quick test_2objH_contexts;
          Alcotest.test_case "2callH" `Quick test_2callH_contexts;
          Alcotest.test_case "2typeH" `Quick test_2typeH_contexts;
          Alcotest.test_case "1objH" `Quick test_1objH_contexts;
          Alcotest.test_case "mixed flavors" `Quick test_mixed_flavors;
          Alcotest.test_case "hybrid" `Quick test_hybrid_contexts;
          Alcotest.test_case "mixed none = default" `Quick test_mixed_none_is_default;
        ] );
    ]
