(* Tests for the exception analysis: throw/catch routing, chain ordering,
   inter-procedural propagation, the uncaught-exceptions metric, and
   context-sensitivity of exceptional flow. *)

module P = Ipa_ir.Program
module Analysis = Ipa_core.Analysis
module Solution = Ipa_core.Solution
module Precision = Ipa_core.Precision
module Flavors = Ipa_core.Flavors
module Int_set = Ipa_support.Int_set

let check = Alcotest.check
let parse = Ipa_testlib.parse_exn
let insens = Flavors.Insensitive
let obj2 = Flavors.Object_sens { depth = 2; heap = 1 }

let pts_of (r : Analysis.result) meth_name var_name =
  let p = r.solution.program in
  let vpt = Solution.collapsed_var_pts r.solution in
  let found = ref [] in
  Array.iteri
    (fun v set ->
      let vi = P.var_info p v in
      let mi = P.meth_info p vi.var_owner in
      if mi.meth_name = meth_name && vi.var_name = var_name then
        found := List.map (P.heap_full_name p) (Int_set.to_sorted_list set))
    vpt;
  !found

let header = {|
class Object { }
class Exn extends Object { }
class IoExn extends Exn { }
class NetExn extends IoExn { }
class MathExn extends Exn { }
|}

let run_src body = Analysis.run_plain (parse (header ^ body)) insens

let test_local_catch () =
  let r =
    run_src
      {|
class Main {
  static method main/0 () {
    var e, caught;
    catch (IoExn) caught;
    e = new IoExn;
    throw e;
  }
}
entry Main::main/0;
|}
  in
  check (Alcotest.list Alcotest.string) "caught locally" [ "Main::main/new IoExn#0" ]
    (pts_of r "main" "caught");
  check Alcotest.int "nothing escapes" 0 (Precision.compute r.solution).uncaught_exceptions

let test_chain_ordering () =
  let r =
    run_src
      {|
class Main {
  static method main/0 () {
    var io, net, math, c_net, c_io, c_any;
    catch (NetExn) c_net;
    catch (IoExn) c_io;
    catch (Exn) c_any;
    io = new IoExn;
    net = new NetExn;
    math = new MathExn;
    throw io;
    throw net;
    throw math;
  }
}
entry Main::main/0;
|}
  in
  (* NetExn goes to the first clause only; IoExn skips it and lands on the
     second; MathExn falls through to the Exn clause. *)
  check (Alcotest.list Alcotest.string) "first clause" [ "Main::main/new NetExn#1" ]
    (pts_of r "main" "c_net");
  check (Alcotest.list Alcotest.string) "second clause" [ "Main::main/new IoExn#0" ]
    (pts_of r "main" "c_io");
  check (Alcotest.list Alcotest.string) "fallthrough" [ "Main::main/new MathExn#2" ]
    (pts_of r "main" "c_any");
  check Alcotest.int "all caught" 0 (Precision.compute r.solution).uncaught_exceptions

let test_propagation_to_caller () =
  let r =
    run_src
      {|
class Worker {
  method work/0 () {
    var e;
    e = new IoExn;
    throw e;
    return this;
  }
}
class Main {
  static method main/0 () {
    var w, r, caught;
    catch (Exn) caught;
    w = new Worker;
    r = w.work();
  }
}
entry Main::main/0;
|}
  in
  check (Alcotest.list Alcotest.string) "escapes callee, caught in caller"
    [ "Worker::work/new IoExn#0" ]
    (pts_of r "main" "caught");
  check Alcotest.int "none uncaught" 0 (Precision.compute r.solution).uncaught_exceptions

let test_partial_catch_in_callee () =
  let r =
    run_src
      {|
class Worker {
  method work/0 () {
    var io, math, mine;
    catch (MathExn) mine;
    io = new IoExn;
    math = new MathExn;
    throw io;
    throw math;
    return this;
  }
}
class Main {
  static method main/0 () {
    var w, r, caught;
    catch (IoExn) caught;
    w = new Worker;
    r = w.work();
  }
}
entry Main::main/0;
|}
  in
  check (Alcotest.list Alcotest.string) "callee keeps its own"
    [ "Worker::work/new MathExn#1" ]
    (pts_of r "work" "mine");
  check (Alcotest.list Alcotest.string) "caller gets the rest"
    [ "Worker::work/new IoExn#0" ]
    (pts_of r "main" "caught")

let test_uncaught_reaches_entry () =
  let r =
    run_src
      {|
class Main {
  static method boom/0 () {
    var e;
    e = new NetExn;
    throw e;
  }
  static method main/0 () {
    var io, c;
    catch (MathExn) c;
    Main::boom();
  }
}
entry Main::main/0;
|}
  in
  check Alcotest.int "one uncaught site" 1 (Precision.compute r.solution).uncaught_exceptions;
  (* the escape is visible on the entry's exception node *)
  let escaped = ref [] in
  Solution.iter_exc_pts r.solution (fun ~meth ~ctx:_ ~heap ~hctx:_ ->
      if (P.meth_info r.solution.program meth).meth_name = "main" then
        escaped := P.heap_full_name r.solution.program heap :: !escaped);
  check (Alcotest.list Alcotest.string) "escaped object" [ "Main::boom/new NetExn#0" ] !escaped

let test_exception_context_sensitivity () =
  (* Two handler objects run jobs that throw distinct exceptions through a
     shared runner method. Insensitively both handlers see both exceptions;
     object-sensitively each sees its own. *)
  let src =
    header
    ^ {|
class Job extends Object {
  field payload;
  method fire/0 () {
    var e;
    e = this.Job::payload;
    throw e;
    return this;
  }
}
class Main {
  static method run/1 (j) { var r, got; catch (Exn) got; r = j.fire(); return got; }
  static method main/0 () {
    var j1, j2, e1, e2, g1, g2;
    j1 = new Job;
    j2 = new Job;
    e1 = new IoExn;
    e2 = new MathExn;
    j1.Job::payload = e1;
    j2.Job::payload = e2;
    g1 = Main::run(j1);
    g2 = Main::run(j2);
  }
}
entry Main::main/0;
|}
  in
  let p = parse src in
  let base = Analysis.run_plain p insens in
  let full = Analysis.run_plain p Flavors.(Call_site { depth = 2; heap = 1 }) in
  check Alcotest.int "insens conflates" 2 (List.length (pts_of base "main" "g1"));
  check (Alcotest.list Alcotest.string) "2callH separates g1" [ "Main::main/new IoExn#2" ]
    (pts_of full "main" "g1");
  check (Alcotest.list Alcotest.string) "2callH separates g2" [ "Main::main/new MathExn#3" ]
    (pts_of full "main" "g2")

let test_exc_stats_and_roundtrip () =
  let src =
    header
    ^ {|
class Main {
  static method main/0 () {
    var e, c;
    catch (MathExn) c;
    e = new IoExn;
    throw e;
  }
}
entry Main::main/0;
|}
  in
  let p = parse src in
  (* pretty/parse round-trip preserves throw and catch *)
  let printed = Ipa_ir.Pretty.program p in
  let contains sub str =
    let n = String.length str and m = String.length sub in
    let rec go i = i + m <= n && (String.sub str i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "prints throw" true (contains "throw e;" printed);
  check Alcotest.bool "prints catch" true (contains "catch (MathExn) c;" printed);
  let p2 = parse printed in
  let r1 = Analysis.run_plain p insens and r2 = Analysis.run_plain p2 insens in
  check (Alcotest.list Alcotest.string) "roundtrip stable"
    (Ipa_testlib.canon_native r1.solution)
    (Ipa_testlib.canon_native r2.solution);
  let st = Solution.stats r1.solution in
  check Alcotest.int "exc tuples counted" 1 st.exc_tuples

let test_soundness_with_exceptions () =
  (* Context-refined exception flow stays within the insensitive one. *)
  for seed = 300 to 307 do
    let p = Ipa_testlib.random_program seed in
    let base = Analysis.run_plain p insens in
    let refined = Analysis.run_plain p obj2 in
    let collect (s : Solution.t) =
      let tbl = Hashtbl.create 16 in
      Solution.iter_exc_pts s (fun ~meth ~ctx:_ ~heap ~hctx:_ ->
          Hashtbl.replace tbl (meth, heap) ());
      tbl
    in
    let b = collect base.solution and r = collect refined.solution in
    Hashtbl.iter
      (fun k () ->
        if not (Hashtbl.mem b k) then Alcotest.failf "seed %d: exception flow grew" seed)
      r
  done

let () =
  Alcotest.run "exceptions"
    [
      ( "routing",
        [
          Alcotest.test_case "local catch" `Quick test_local_catch;
          Alcotest.test_case "chain ordering" `Quick test_chain_ordering;
          Alcotest.test_case "propagation to caller" `Quick test_propagation_to_caller;
          Alcotest.test_case "partial catch in callee" `Quick test_partial_catch_in_callee;
          Alcotest.test_case "uncaught reaches entry" `Quick test_uncaught_reaches_entry;
        ] );
      ( "precision",
        [
          Alcotest.test_case "context-sensitive exceptions" `Quick
            test_exception_context_sensitivity;
          Alcotest.test_case "stats and roundtrip" `Quick test_exc_stats_and_roundtrip;
          Alcotest.test_case "soundness" `Quick test_soundness_with_exceptions;
        ] );
    ]
