(* Tests for the synthetic benchmark generator: determinism, well-formedness,
   scaling, and that each motif induces the analysis behavior it is
   engineered for. *)

module P = Ipa_ir.Program
module Dacapo = Ipa_synthetic.Dacapo
module World = Ipa_synthetic.World
module Motifs = Ipa_synthetic.Motifs
module Analysis = Ipa_core.Analysis
module Flavors = Ipa_core.Flavors
module Precision = Ipa_core.Precision

let check = Alcotest.check

let insens = Flavors.Insensitive
let obj2 = Flavors.Object_sens { depth = 2; heap = 1 }
let call2 = Flavors.Call_site { depth = 2; heap = 1 }
let type2 = Flavors.Type_sens { depth = 2; heap = 1 }

let derivs p flavor = (Analysis.run_plain p flavor).solution.derivations

let test_determinism () =
  List.iter
    (fun (spec : Dacapo.spec) ->
      let p1 = Dacapo.build ~scale:0.03 spec in
      let p2 = Dacapo.build ~scale:0.03 spec in
      check Alcotest.string (spec.name ^ " deterministic") (Ipa_ir.Pretty.program p1)
        (Ipa_ir.Pretty.program p2))
    Dacapo.all

let test_all_build_and_analyze () =
  List.iter
    (fun (spec : Dacapo.spec) ->
      (* Builder.finish runs the Wf checker, so building is already a
         validity test; also make sure a small analysis completes. *)
      let p = Dacapo.build ~scale:0.02 spec in
      check Alcotest.bool (spec.name ^ " nonempty") true (P.n_meths p > 10);
      let r = Analysis.run_plain p insens in
      check Alcotest.bool (spec.name ^ " completes") false r.timed_out)
    Dacapo.all

let test_scale_monotone () =
  let spec = Option.get (Dacapo.find "eclipse") in
  let small = Dacapo.build ~scale:0.02 spec in
  let larger = Dacapo.build ~scale:0.06 spec in
  check Alcotest.bool "more classes" true (P.n_classes larger > P.n_classes small);
  check Alcotest.bool "more heaps" true (P.n_heaps larger > P.n_heaps small)

let test_suite_lists () =
  check Alcotest.int "nine benchmarks" 9 (List.length Dacapo.all);
  check Alcotest.int "seven hard" 7 (List.length Dacapo.hard);
  check Alcotest.int "six charted" 6 (List.length Dacapo.charted);
  check Alcotest.bool "pmd hard but not charted" true
    (List.exists (fun (s : Dacapo.spec) -> s.name = "pmd") Dacapo.hard
    && not (List.exists (fun (s : Dacapo.spec) -> s.name = "pmd") Dacapo.charted));
  check Alcotest.bool "find miss" true (Dacapo.find "quake" = None)

(* ---------- motif behavior ---------- *)

let build_motif f =
  let w = World.create ~seed:1234 in
  f w;
  World.finish w

let test_factory_boxes_precision () =
  let n = 8 in
  let p = build_motif (fun w -> Motifs.factory_boxes w ~n) in
  let base = Precision.compute (Analysis.run_plain p insens).solution in
  let full = Precision.compute (Analysis.run_plain p obj2).solution in
  (* each client has one conflated cast and two polymorphic sites insens *)
  check Alcotest.int "insens casts" n base.may_fail_casts;
  check Alcotest.int "full casts" 0 full.may_fail_casts;
  check Alcotest.bool "insens poly" true (base.poly_vcalls >= 2 * n);
  check Alcotest.int "full poly" 0 full.poly_vcalls;
  check Alcotest.bool "spurious reachable" true
    (base.reachable_methods > full.reachable_methods)

let test_bulk_boxes_separate_heuristics () =
  let p = build_motif (fun w -> Motifs.factory_boxes w ~n:6 ~junk:120) in
  let flavor = obj2 in
  let a = Ipa_core.Analysis.run_introspective p flavor Ipa_core.Heuristics.default_a in
  let b = Ipa_core.Analysis.run_introspective p flavor Ipa_core.Heuristics.default_b in
  let pa = Precision.compute a.second.solution in
  let pb = Precision.compute b.second.solution in
  (* A flags the bulky setter sites and loses the casts; B keeps them. *)
  check Alcotest.int "A loses casts" 6 pa.may_fail_casts;
  check Alcotest.int "B keeps casts" 0 pb.may_fail_casts

let test_mega_hub_blowup () =
  let p =
    build_motif (fun w -> Motifs.mega_hub w ~items:150 ~users:40 ~chain:2)
  in
  let base = derivs p insens in
  let full = derivs p obj2 in
  check Alcotest.bool "hub blows up under 2objH" true (full > 5 * base);
  (* and type-sensitivity collapses it (users allocated in Main) *)
  check Alcotest.bool "2typeH collapses" true (derivs p type2 < 2 * base)

let test_dispatch_storm_blowup () =
  let p =
    build_motif (fun w -> Motifs.dispatch_storm w ~wrappers:25 ~payload:60 ~depth:5)
  in
  let base = derivs p insens in
  let callsite = derivs p call2 in
  let objsens = derivs p obj2 in
  check Alcotest.bool "2callH blows up" true (callsite > 4 * base);
  check Alcotest.bool "2objH immune" true (objsens < 2 * base)

let test_interp_loop_blowup () =
  let small = build_motif (fun w -> Motifs.interp_loop w ~ops:20 ~vals:3 ~steps:4) in
  let large = build_motif (fun w -> Motifs.interp_loop w ~ops:40 ~vals:3 ~steps:4) in
  let s = derivs small obj2 and l = derivs large obj2 in
  (* doubling the opcode count should much more than double the cost *)
  check Alcotest.bool "superlinear" true (l > 3 * s);
  (* context-insensitively it stays roughly linear *)
  let si = derivs small insens and li = derivs large insens in
  check Alcotest.bool "insens linear-ish" true (li < 3 * si)

let test_interp_families () =
  let tight = build_motif (fun w -> Motifs.interp_loop w ~ops:30 ~vals:3 ~steps:4 ~family:1) in
  let coarse = build_motif (fun w -> Motifs.interp_loop w ~ops:30 ~vals:3 ~steps:4 ~family:5) in
  (* families coarsen type contexts but not object contexts *)
  check Alcotest.bool "type cheaper with families" true
    (derivs coarse type2 < derivs tight type2);
  let o1 = derivs tight obj2 and o2 = derivs coarse obj2 in
  check Alcotest.bool "object cost unaffected" true
    (float_of_int (abs (o1 - o2)) < 0.25 *. float_of_int o1)

let test_typed_users () =
  let plain = build_motif (fun w -> Motifs.mega_hub w ~items:120 ~users:30 ~chain:1) in
  let typed =
    build_motif (fun w -> Motifs.mega_hub w ~items:120 ~users:1 ~typed_users:30 ~chain:1)
  in
  (* typed users make even type-sensitivity pay per user *)
  check Alcotest.bool "typed users hit 2typeH" true
    (derivs typed type2 > 3 * derivs plain type2)

let test_exceptional_precision () =
  let n = 7 in
  let p = build_motif (fun w -> Motifs.exceptional w ~n) in
  let base = Precision.compute (Analysis.run_plain p insens).solution in
  let full = Precision.compute (Analysis.run_plain p obj2).solution in
  check Alcotest.int "insens conflated casts" n base.may_fail_casts;
  check Alcotest.int "full casts" 0 full.may_fail_casts;
  (* the panic path is genuinely uncaught under every analysis *)
  check Alcotest.int "insens uncaught" n base.uncaught_exceptions;
  check Alcotest.int "full uncaught" n full.uncaught_exceptions

let test_ballast_cheap () =
  let p = build_motif (fun w -> Motifs.ballast w ~n:300) in
  check Alcotest.bool "many heaps" true (P.n_heaps p >= 600);
  check Alcotest.bool "cheap everywhere" true (derivs p obj2 < 10_000)

let test_chains_and_listeners () =
  let p = build_motif (fun w -> Motifs.chains w ~n:5 ~depth:4; Motifs.listeners w ~n:6) in
  let base = Precision.compute (Analysis.run_plain p insens).solution in
  let full = Precision.compute (Analysis.run_plain p obj2).solution in
  (* listener dispatch is irreducibly polymorphic: context cannot help *)
  check Alcotest.int "poly equal" base.poly_vcalls full.poly_vcalls;
  check Alcotest.bool "at least one poly site" true (full.poly_vcalls >= 1)

let test_invalid_args () =
  let expect_invalid f =
    let w = World.create ~seed:1 in
    match f w with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid (fun w -> Motifs.chains w ~n:1 ~depth:0);
  expect_invalid (fun w -> Motifs.factory_boxes w ~n:0);
  expect_invalid (fun w -> Motifs.mega_hub w ~items:0 ~users:1 ~chain:1);
  expect_invalid (fun w -> Motifs.dispatch_storm w ~wrappers:0 ~payload:1 ~depth:1);
  expect_invalid (fun w -> Motifs.interp_loop w ~ops:1 ~vals:0 ~steps:1);
  expect_invalid (fun w -> Motifs.ballast w ~n:(-1))

let () =
  Alcotest.run "synthetic"
    [
      ( "suite",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "build and analyze" `Quick test_all_build_and_analyze;
          Alcotest.test_case "scale monotone" `Quick test_scale_monotone;
          Alcotest.test_case "lists" `Quick test_suite_lists;
        ] );
      ( "motifs",
        [
          Alcotest.test_case "factory boxes precision" `Quick test_factory_boxes_precision;
          Alcotest.test_case "bulk boxes split heuristics" `Quick
            test_bulk_boxes_separate_heuristics;
          Alcotest.test_case "mega hub blowup" `Quick test_mega_hub_blowup;
          Alcotest.test_case "dispatch storm blowup" `Quick test_dispatch_storm_blowup;
          Alcotest.test_case "interp loop blowup" `Quick test_interp_loop_blowup;
          Alcotest.test_case "interp families" `Quick test_interp_families;
          Alcotest.test_case "typed users" `Quick test_typed_users;
          Alcotest.test_case "exceptional precision" `Quick test_exceptional_precision;
          Alcotest.test_case "ballast cheap" `Quick test_ballast_cheap;
          Alcotest.test_case "chains and listeners" `Quick test_chains_and_listeners;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
        ] );
    ]
