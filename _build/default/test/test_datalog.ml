(* Tests for the generic Datalog engine: relations, rule validation,
   semi-naive evaluation, negation, external functions, guards, aggregation,
   and budgets. *)

module Relation = Ipa_datalog.Relation
module Rule = Ipa_datalog.Rule
module Engine = Ipa_datalog.Engine
module Aggregate = Ipa_datalog.Aggregate

let check = Alcotest.check
let v i = Rule.Var i
let c x = Rule.Const x

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------- Relation ---------- *)

let test_relation_basic () =
  let r = Relation.create ~name:"r" ~arity:2 in
  check Alcotest.bool "add new" true (Relation.add r [| 1; 2 |]);
  check Alcotest.bool "add dup" false (Relation.add r [| 1; 2 |]);
  check Alcotest.bool "mem" true (Relation.mem r [| 1; 2 |]);
  check Alcotest.bool "not mem" false (Relation.mem r [| 2; 1 |]);
  check Alcotest.int "size" 1 (Relation.size r);
  check Alcotest.string "name" "r" (Relation.name r);
  check Alcotest.int "arity" 2 (Relation.arity r);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation.add: r expects arity 2, got 3") (fun () ->
      ignore (Relation.add r [| 1; 2; 3 |]))

let test_relation_ranges_and_indexes () =
  let r = Relation.create ~name:"r" ~arity:2 in
  for i = 0 to 9 do
    ignore (Relation.add r [| i mod 3; i |])
  done;
  let seen = ref 0 in
  Relation.iter_range (fun _ -> incr seen) r ~lo:2 ~hi:5;
  check Alcotest.int "range width" 3 !seen;
  let hits = ref [] in
  Relation.iter_matching r ~cols:[ 0 ] ~key:[| 1 |] ~lo:0 ~hi:100 (fun t ->
      hits := t.(1) :: !hits);
  check (Alcotest.slist Alcotest.int compare) "index matches" [ 1; 4; 7 ] !hits;
  (* index stays correct for tuples added after creation *)
  ignore (Relation.add r [| 1; 99 |]);
  let hits = ref [] in
  Relation.iter_matching r ~cols:[ 0 ] ~key:[| 1 |] ~lo:0 ~hi:100 (fun t ->
      hits := t.(1) :: !hits);
  check (Alcotest.slist Alcotest.int compare) "incremental index" [ 1; 4; 7; 99 ] !hits;
  Relation.clear r;
  check Alcotest.int "cleared" 0 (Relation.size r)

(* ---------- Rule validation ---------- *)

let test_rule_validation () =
  let r = Relation.create ~name:"r" ~arity:2 in
  let s = Relation.create ~name:"s" ~arity:1 in
  let expect_invalid what f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "arity" (fun () ->
      Rule.make ~n_vars:1 ~heads:[ (s, [| v 0 |]) ] ~body:[ (r, [| v 0 |]) ] ());
  expect_invalid "unbound head" (fun () ->
      Rule.make ~n_vars:2 ~heads:[ (s, [| v 1 |]) ] ~body:[ (r, [| v 0; v 0 |]) ] ());
  expect_invalid "var range" (fun () ->
      Rule.make ~n_vars:1 ~heads:[ (s, [| v 5 |]) ] ~body:[ (r, [| v 5; v 5 |]) ] ());
  expect_invalid "no heads" (fun () ->
      Rule.make ~n_vars:1 ~heads:[] ~body:[ (r, [| v 0; v 0 |]) ] ());
  expect_invalid "unbound negation" (fun () ->
      Rule.make ~n_vars:2 ~heads:[ (s, [| v 0 |]) ]
        ~body:[ (r, [| v 0; v 0 |]) ]
        ~neg:[ (r, [| v 0; v 1 |]) ]
        ());
  (* a let binds a variable, making it usable in the head *)
  ignore
    (Rule.make ~n_vars:2 ~heads:[ (s, [| v 1 |]) ] ~body:[ (r, [| v 0; v 0 |]) ]
       ~lets:[ (1, fun env -> env.(0) + 1) ]
       ())

(* ---------- Engine: transitive closure ---------- *)

let tc_rules edge path =
  [
    Rule.make ~name:"base" ~n_vars:2 ~heads:[ (path, [| v 0; v 1 |]) ]
      ~body:[ (edge, [| v 0; v 1 |]) ] ();
    Rule.make ~name:"step" ~n_vars:3 ~heads:[ (path, [| v 0; v 2 |]) ]
      ~body:[ (edge, [| v 0; v 1 |]); (path, [| v 1; v 2 |]) ] ();
  ]

let test_tc_chain () =
  let edge = Relation.create ~name:"edge" ~arity:2 in
  let path = Relation.create ~name:"path" ~arity:2 in
  for i = 0 to 9 do
    ignore (Relation.add edge [| i; i + 1 |])
  done;
  ignore (Engine.fixpoint (tc_rules edge path));
  check Alcotest.int "path count" (11 * 10 / 2) (Relation.size path);
  check Alcotest.bool "0->10" true (Relation.mem path [| 0; 10 |]);
  check Alcotest.bool "no back" false (Relation.mem path [| 10; 0 |])

let test_tc_cycle () =
  let edge = Relation.create ~name:"edge" ~arity:2 in
  let path = Relation.create ~name:"path" ~arity:2 in
  ignore (Relation.add edge [| 0; 1 |]);
  ignore (Relation.add edge [| 1; 2 |]);
  ignore (Relation.add edge [| 2; 0 |]);
  ignore (Engine.fixpoint (tc_rules edge path));
  check Alcotest.int "complete digraph" 9 (Relation.size path)

(* Reference transitive closure for the property test. *)
let reference_tc edges n =
  let reach = Array.make_matrix n n false in
  List.iter (fun (a, b) -> reach.(a).(b) <- true) edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
      done
    done
  done;
  reach

let prop_tc_matches_reference =
  qtest "TC matches Floyd-Warshall"
    QCheck2.Gen.(list_size (int_bound 30) (pair (int_bound 7) (int_bound 7)))
    (fun edges ->
      let n = 8 in
      let edge = Relation.create ~name:"edge" ~arity:2 in
      let path = Relation.create ~name:"path" ~arity:2 in
      List.iter (fun (a, b) -> ignore (Relation.add edge [| a; b |])) edges;
      ignore (Engine.fixpoint (tc_rules edge path));
      let reach = reference_tc edges n in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if reach.(i).(j) <> Relation.mem path [| i; j |] then ok := false
        done
      done;
      !ok)

(* ---------- same-variable patterns ---------- *)

let test_repeated_variable () =
  let edge = Relation.create ~name:"edge" ~arity:2 in
  let loop = Relation.create ~name:"loop" ~arity:1 in
  ignore (Relation.add edge [| 1; 1 |]);
  ignore (Relation.add edge [| 1; 2 |]);
  ignore (Relation.add edge [| 2; 2 |]);
  let rule =
    Rule.make ~n_vars:1 ~heads:[ (loop, [| v 0 |]) ] ~body:[ (edge, [| v 0; v 0 |]) ] ()
  in
  ignore (Engine.fixpoint [ rule ]);
  check Alcotest.int "self loops" 2 (Relation.size loop)

let test_constants_in_atoms () =
  let edge = Relation.create ~name:"edge" ~arity:2 in
  let from_one = Relation.create ~name:"from1" ~arity:1 in
  ignore (Relation.add edge [| 1; 5 |]);
  ignore (Relation.add edge [| 2; 6 |]);
  ignore (Relation.add edge [| 1; 7 |]);
  let rule =
    Rule.make ~n_vars:1 ~heads:[ (from_one, [| v 0 |]) ] ~body:[ (edge, [| c 1; v 0 |]) ] ()
  in
  ignore (Engine.fixpoint [ rule ]);
  check Alcotest.int "selected" 2 (Relation.size from_one);
  check Alcotest.bool "5 in" true (Relation.mem from_one [| 5 |]);
  check Alcotest.bool "6 out" false (Relation.mem from_one [| 6 |])

(* ---------- negation (stratified) ---------- *)

let test_negation () =
  let node = Relation.create ~name:"node" ~arity:1 in
  let edge = Relation.create ~name:"edge" ~arity:2 in
  let reach = Relation.create ~name:"reach" ~arity:1 in
  let unreached = Relation.create ~name:"unreached" ~arity:1 in
  List.iter (fun n -> ignore (Relation.add node [| n |])) [ 0; 1; 2; 3; 4 ];
  ignore (Relation.add edge [| 0; 1 |]);
  ignore (Relation.add edge [| 1; 2 |]);
  ignore (Relation.add reach [| 0 |]);
  let stratum1 =
    [
      Rule.make ~n_vars:2 ~heads:[ (reach, [| v 1 |]) ]
        ~body:[ (reach, [| v 0 |]); (edge, [| v 0; v 1 |]) ]
        ();
    ]
  in
  let stratum2 =
    [
      Rule.make ~n_vars:1 ~heads:[ (unreached, [| v 0 |]) ] ~body:[ (node, [| v 0 |]) ]
        ~neg:[ (reach, [| v 0 |]) ]
        ();
    ]
  in
  ignore (Engine.run_strata [ stratum1; stratum2 ]);
  check Alcotest.int "reached" 3 (Relation.size reach);
  check Alcotest.int "unreached" 2 (Relation.size unreached);
  check Alcotest.bool "3 unreached" true (Relation.mem unreached [| 3 |])

(* ---------- lets and guards ---------- *)

let test_lets_and_guards () =
  let seed = Relation.create ~name:"seed" ~arity:1 in
  let below = Relation.create ~name:"below" ~arity:1 in
  ignore (Relation.add seed [| 0 |]);
  (* below(x+1) <- below(x), x+1 <= 5; seeded from seed(x). *)
  let rules =
    [
      Rule.make ~n_vars:1 ~heads:[ (below, [| v 0 |]) ] ~body:[ (seed, [| v 0 |]) ] ();
      Rule.make ~n_vars:2 ~heads:[ (below, [| v 1 |]) ] ~body:[ (below, [| v 0 |]) ]
        ~lets:[ (1, fun env -> env.(0) + 1) ]
        ~guards:[ (fun env -> env.(1) <= 5) ]
        ();
    ]
  in
  ignore (Engine.fixpoint rules);
  check Alcotest.int "0..5" 6 (Relation.size below);
  check Alcotest.bool "5 in" true (Relation.mem below [| 5 |]);
  check Alcotest.bool "6 out" false (Relation.mem below [| 6 |])

let test_multi_head () =
  let edge = Relation.create ~name:"edge" ~arity:2 in
  let src = Relation.create ~name:"src" ~arity:1 in
  let dst = Relation.create ~name:"dst" ~arity:1 in
  ignore (Relation.add edge [| 3; 4 |]);
  let rule =
    Rule.make ~n_vars:2
      ~heads:[ (src, [| v 0 |]); (dst, [| v 1 |]) ]
      ~body:[ (edge, [| v 0; v 1 |]) ]
      ()
  in
  ignore (Engine.fixpoint [ rule ]);
  check Alcotest.bool "src" true (Relation.mem src [| 3 |]);
  check Alcotest.bool "dst" true (Relation.mem dst [| 4 |])

let test_empty_body_rule () =
  let facts = Relation.create ~name:"facts" ~arity:1 in
  let rule = Rule.make ~n_vars:0 ~heads:[ (facts, [| c 7 |]) ] ~body:[] () in
  let derived = Engine.fixpoint [ rule ] in
  check Alcotest.int "one fact" 1 (Relation.size facts);
  check Alcotest.int "one derivation" 1 derived

let test_budget () =
  let edge = Relation.create ~name:"edge" ~arity:2 in
  let path = Relation.create ~name:"path" ~arity:2 in
  for i = 0 to 99 do
    ignore (Relation.add edge [| i; i + 1 |])
  done;
  match Engine.fixpoint ~budget:50 (tc_rules edge path) with
  | _ -> Alcotest.fail "expected Out_of_budget"
  | exception Engine.Out_of_budget -> ()

let test_derivation_count () =
  let edge = Relation.create ~name:"edge" ~arity:2 in
  let path = Relation.create ~name:"path" ~arity:2 in
  ignore (Relation.add edge [| 0; 1 |]);
  ignore (Relation.add edge [| 1; 2 |]);
  let n = Engine.fixpoint (tc_rules edge path) in
  check Alcotest.int "derivations = inserted tuples" 3 n

(* ---------- aggregation ---------- *)

let test_aggregate_count () =
  let r = Relation.create ~name:"r" ~arity:2 in
  List.iter
    (fun t -> ignore (Relation.add r t))
    [ [| 1; 10 |]; [| 1; 11 |]; [| 2; 10 |] ];
  let out = Relation.create ~name:"out" ~arity:2 in
  Aggregate.count r ~group_by:[ 0 ] ~into:out;
  check Alcotest.bool "count 1" true (Relation.mem out [| 1; 2 |]);
  check Alcotest.bool "count 2" true (Relation.mem out [| 2; 1 |]);
  check Alcotest.int "groups" 2 (Relation.size out)

let test_aggregate_sum_max () =
  let r = Relation.create ~name:"r" ~arity:2 in
  List.iter
    (fun t -> ignore (Relation.add r t))
    [ [| 1; 10 |]; [| 1; 11 |]; [| 2; 5 |] ];
  let sum = Relation.create ~name:"sum" ~arity:2 in
  Aggregate.sum r ~group_by:[ 0 ] ~value:1 ~into:sum;
  check Alcotest.bool "sum 1" true (Relation.mem sum [| 1; 21 |]);
  check Alcotest.bool "sum 2" true (Relation.mem sum [| 2; 5 |]);
  let mx = Relation.create ~name:"max" ~arity:2 in
  Aggregate.max_ r ~group_by:[ 0 ] ~value:1 ~into:mx;
  check Alcotest.bool "max 1" true (Relation.mem mx [| 1; 11 |])

let test_aggregate_validation () =
  let r = Relation.create ~name:"r" ~arity:2 in
  let bad = Relation.create ~name:"bad" ~arity:3 in
  (match Aggregate.count r ~group_by:[ 0 ] ~into:bad with
  | _ -> Alcotest.fail "expected arity error"
  | exception Invalid_argument _ -> ());
  match Aggregate.count r ~group_by:[ 5 ] ~into:(Relation.create ~name:"o" ~arity:2) with
  | _ -> Alcotest.fail "expected column error"
  | exception Invalid_argument _ -> ()

(* ---------- the textual Datalog front-end ---------- *)

module Dl = Ipa_datalog.Dl

let dl_parse_err src fragment =
  match Dl.parse src with
  | Ok _ -> Alcotest.failf "expected parse error (%s)" fragment
  | Error msg ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      m = 0 || go 0
    in
    if not (contains msg fragment) then Alcotest.failf "error %S lacks %S" msg fragment

let dl_run src =
  match Dl.parse src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok p -> (
    match Dl.run p with
    | Error msg -> Alcotest.failf "run failed: %s" msg
    | Ok outputs -> outputs)

let test_dl_transitive_closure () =
  let outputs =
    dl_run
      {|
.decl edge(2)
.decl path(2)
edge(1, 2). edge(2, 3). edge(3, 1).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
.output path
|}
  in
  match outputs with
  | [ ("path", tuples) ] -> check Alcotest.int "complete digraph" 9 (List.length tuples)
  | _ -> Alcotest.fail "unexpected outputs"

let test_dl_symbols_and_negation () =
  let outputs =
    dl_run
      {|
.decl person(1)
.decl parent(2)
.decl has_child(1)
.decl childless(1)
person("alice"). person("bob"). person("carol").
parent("alice", "bob").
has_child(X) :- parent(X, _).
childless(X) :- person(X), !has_child(X).
.output childless
|}
  in
  match outputs with
  | [ ("childless", tuples) ] ->
    check Alcotest.int "two childless" 2 (List.length tuples);
    check Alcotest.bool "bob childless" true (List.mem [ Dl.Sym "bob" ] tuples)
  | _ -> Alcotest.fail "unexpected outputs"

let test_dl_multilevel_strata () =
  (* negation of a relation that itself uses negation: three strata *)
  let outputs =
    dl_run
      {|
.decl a(1)
.decl b(1)
.decl c(1)
.decl d(1)
a(1). a(2). b(2).
c(X) :- a(X), !b(X).
d(X) :- a(X), !c(X).
.output c
.output d
|}
  in
  match outputs with
  | [ ("c", cs); ("d", ds) ] ->
    check Alcotest.bool "c = {1}" true (cs = [ [ Dl.Int 1 ] ]);
    check Alcotest.bool "d = {2}" true (ds = [ [ Dl.Int 2 ] ])
  | _ -> Alcotest.fail "unexpected outputs"

let test_dl_errors () =
  dl_parse_err ".decl a(1)\nb(1)." "undeclared relation b";
  dl_parse_err ".decl a(2)\na(1)." "expects 2 arguments";
  dl_parse_err ".decl a(1)\na(X)." "facts must be ground";
  dl_parse_err ".decl a(1)\n.decl b(1)\nb(X) :- a(Y)." "not bound";
  dl_parse_err ".decl a(1)\n.decl b(1)\nb(X) :- a(X), !a(Z)." "not bound";
  dl_parse_err ".decl a(1)\n.decl b(1)\nb(X) :- a(X), !a(_)." "'_' is not allowed";
  dl_parse_err
    ".decl u(1)\n.decl a(1)\n.decl b(1)\nu(1).\na(X) :- u(X), !b(X).\nb(X) :- u(X), !a(X)."
    "negation through recursion";
  dl_parse_err ".decl a(1)\n.output zap" ".output of undeclared relation";
  dl_parse_err ".decl a(1)\na(1) junk" "expected '.' or ':-'";
  dl_parse_err "a(1" "expected ')'"

let test_dl_run_to_string () =
  let p =
    Result.get_ok
      (Dl.parse {|
.decl e(2)
e(1, 2). e(3, "x").
.output e
|})
  in
  check (Alcotest.result Alcotest.string Alcotest.string) "rendered"
    (Ok "e(1, 2).\ne(3, \"x\").\n")
    (Dl.run_to_string p)

let test_dl_budget () =
  let p =
    Result.get_ok
      (Dl.parse
         {|
.decl edge(2)
.decl path(2)
edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5). edge(5, 6).
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
.output path
|})
  in
  match Dl.run ~budget:3 p with
  | Error msg -> check Alcotest.bool "budget error" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected budget exhaustion"

let () =
  Alcotest.run "datalog"
    [
      ( "relation",
        [
          Alcotest.test_case "basic" `Quick test_relation_basic;
          Alcotest.test_case "ranges and indexes" `Quick test_relation_ranges_and_indexes;
        ] );
      ("rule", [ Alcotest.test_case "validation" `Quick test_rule_validation ]);
      ( "engine",
        [
          Alcotest.test_case "tc chain" `Quick test_tc_chain;
          Alcotest.test_case "tc cycle" `Quick test_tc_cycle;
          prop_tc_matches_reference;
          Alcotest.test_case "repeated variable" `Quick test_repeated_variable;
          Alcotest.test_case "constants" `Quick test_constants_in_atoms;
          Alcotest.test_case "negation" `Quick test_negation;
          Alcotest.test_case "lets and guards" `Quick test_lets_and_guards;
          Alcotest.test_case "multi-head" `Quick test_multi_head;
          Alcotest.test_case "empty body" `Quick test_empty_body_rule;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "derivation count" `Quick test_derivation_count;
        ] );
      ( "dl frontend",
        [
          Alcotest.test_case "transitive closure" `Quick test_dl_transitive_closure;
          Alcotest.test_case "symbols and negation" `Quick test_dl_symbols_and_negation;
          Alcotest.test_case "multilevel strata" `Quick test_dl_multilevel_strata;
          Alcotest.test_case "errors" `Quick test_dl_errors;
          Alcotest.test_case "run_to_string" `Quick test_dl_run_to_string;
          Alcotest.test_case "budget" `Quick test_dl_budget;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "count" `Quick test_aggregate_count;
          Alcotest.test_case "sum and max" `Quick test_aggregate_sum_max;
          Alcotest.test_case "validation" `Quick test_aggregate_validation;
        ] );
    ]
