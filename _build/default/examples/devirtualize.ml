(* Devirtualization client: find virtual call sites with exactly one
   possible target, which a compiler could inline or call directly.

   Runs on a generated benchmark (the chart-like subject at reduced scale)
   and compares how many call sites each analysis devirtualizes — including
   the introspective variants, which get (nearly) the full benefit at a
   bounded cost.

   Run with: dune exec examples/devirtualize.exe *)

module Program = Ipa_ir.Program
module Int_set = Ipa_support.Int_set
module Flavors = Ipa_core.Flavors

type verdict = { mono : int; poly : int; dead : int }

(* Classify every virtual call site of the program under an analysis
   result: monomorphic (one target — devirtualizable), polymorphic, or
   unreachable. *)
let classify (r : Ipa_core.Analysis.result) =
  let p = r.solution.program in
  let targets = Ipa_core.Solution.call_targets r.solution in
  let verdict = ref { mono = 0; poly = 0; dead = 0 } in
  for invo = 0 to Program.n_invos p - 1 do
    match (Program.invo_info p invo).call with
    | Static _ -> ()
    | Virtual _ ->
      let v = !verdict in
      verdict :=
        (match Hashtbl.find_opt targets invo with
        | None -> { v with dead = v.dead + 1 }
        | Some ms when Int_set.cardinal ms = 1 -> { v with mono = v.mono + 1 }
        | Some _ -> { v with poly = v.poly + 1 })
  done;
  !verdict

let report (r : Ipa_core.Analysis.result) =
  if r.timed_out then Printf.printf "%-14s exceeded its budget\n" r.label
  else begin
    let { mono; poly; dead } = classify r in
    Printf.printf "%-14s %6.2fs   devirtualizable %4d   polymorphic %4d   unreachable %4d\n"
      r.label r.seconds mono poly dead
  end

let () =
  let spec = Option.get (Ipa_synthetic.Dacapo.find "chart") in
  let p = Ipa_synthetic.Dacapo.build ~scale:1.0 spec in
  Printf.printf "benchmark: chart (scale 1.0): %d classes, %d methods, %d virtual call sites\n\n"
    (Program.n_classes p) (Program.n_meths p)
    (let n = ref 0 in
     for i = 0 to Program.n_invos p - 1 do
       match (Program.invo_info p i).call with Virtual _ -> incr n | Static _ -> ()
     done;
     !n);
  let budget = 10_000_000 in
  report (Ipa_core.Analysis.run_plain ~budget p Flavors.Insensitive);
  let flavor = Flavors.Object_sens { depth = 2; heap = 1 } in
  let intro_a = Ipa_core.Analysis.run_introspective ~budget p flavor Ipa_core.Heuristics.default_a in
  report intro_a.second;
  let intro_b = Ipa_core.Analysis.run_introspective ~budget p flavor Ipa_core.Heuristics.default_b in
  report intro_b.second;
  report (Ipa_core.Analysis.run_plain ~budget p flavor)
