(* Quickstart: build a small program with the Builder API, run a
   context-insensitive and a 2-object-sensitive analysis, and inspect the
   points-to results.

   The program is the classic motivating example for object-sensitivity:
   two container objects mutated through a shared setter method. Context-
   insensitively the setter's [this] and [x] parameters conflate, so both
   containers appear to hold both payloads; object-sensitively the setter is
   analyzed once per receiver object and the containers stay separate.

   Run with: dune exec examples/quickstart.exe *)

module B = Ipa_ir.Builder
module Program = Ipa_ir.Program
module Int_set = Ipa_support.Int_set

let build_program () =
  let b = B.create () in
  let object_cls = B.add_class b "Object" in
  let a_cls = B.add_class b ~super:object_cls "A" in
  let b_cls = B.add_class b ~super:object_cls "B" in
  (* class Box { field val;
       method set/1 (x) { this.val = x; }
       method get/0 ()  { var t; t = this.val; return t; } } *)
  let box_cls = B.add_class b ~super:object_cls "Box" in
  let val_fld = B.add_field b ~owner:box_cls "val" in
  let set = B.add_method b ~owner:box_cls ~name:"set" ~params:[ "x" ] () in
  B.store b set ~base:(B.this b set) ~field:val_fld ~source:(B.formal b set 0);
  let get = B.add_method b ~owner:box_cls ~name:"get" ~params:[] () in
  let t = B.add_var b get "t" in
  B.load b get ~target:t ~base:(B.this b get) ~field:val_fld;
  B.return_ b get t;
  (* static method main/0:
       b1 = new Box; b2 = new Box; oa = new A; ob = new B;
       b1.set(oa); b2.set(ob);
       ra = b1.get(); rb = b2.get(); rb2 = (B) rb; *)
  let main_cls = B.add_class b ~super:object_cls "Main" in
  let main = B.add_method b ~owner:main_cls ~name:"main" ~static:true ~params:[] () in
  let v name = B.add_var b main name in
  let b1 = v "b1" and b2 = v "b2" and oa = v "oa" and ob = v "ob" in
  let ra = v "ra" and rb = v "rb" and rb2 = v "rb2" in
  ignore (B.alloc b main ~target:b1 ~cls:box_cls);
  ignore (B.alloc b main ~target:b2 ~cls:box_cls);
  ignore (B.alloc b main ~target:oa ~cls:a_cls);
  ignore (B.alloc b main ~target:ob ~cls:b_cls);
  ignore (B.vcall b main ~base:b1 ~name:"set" ~actuals:[ oa ] ());
  ignore (B.vcall b main ~base:b2 ~name:"set" ~actuals:[ ob ] ());
  ignore (B.vcall b main ~base:b1 ~name:"get" ~actuals:[] ~recv:ra ());
  ignore (B.vcall b main ~base:b2 ~name:"get" ~actuals:[] ~recv:rb ());
  B.cast b main ~target:rb2 ~source:rb ~cls:b_cls;
  B.add_entry b main;
  B.finish b

let report p label flavor =
  let result = Ipa_core.Analysis.run_plain p flavor in
  let prec = Ipa_core.Precision.compute result.solution in
  Printf.printf "--- %s ---\n" label;
  let vpt = Ipa_core.Solution.collapsed_var_pts result.solution in
  Array.iteri
    (fun var set ->
      if Int_set.cardinal set > 0 then
        Printf.printf "  %-16s -> {%s}\n"
          (Program.var_full_name p var)
          (String.concat ", "
             (List.map (Program.heap_full_name p) (Int_set.to_sorted_list set))))
    vpt;
  Printf.printf "  casts that may fail: %d\n\n" prec.may_fail_casts

let () =
  let p = build_program () in
  print_endline "The program:";
  print_endline (Ipa_ir.Pretty.program p);
  (* Context-insensitively [set] is analyzed once: its [this] points to both
     boxes and its [x] to both payloads, so each box's field receives both
     objects and the cast (B) rb is reported as possibly failing. *)
  report p "context-insensitive" Ipa_core.Flavors.Insensitive;
  (* Object-sensitively [set] is analyzed per receiver object: b1 holds only
     the A, b2 only the B, and the cast is proven safe. *)
  report p "2-object-sensitive (2objH)" (Ipa_core.Flavors.Object_sens { depth = 2; heap = 1 })
