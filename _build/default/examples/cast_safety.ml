(* Cast-safety client: use the points-to analysis to prove downcasts safe.

   The input program (in .jir concrete syntax, parsed by the front-end) is a
   small plugin registry: plugins are created by a factory, stored through a
   shared setter, retrieved, and downcast to their concrete type. A
   context-insensitive analysis conflates the registry slots and reports
   every downcast as potentially failing; the introspective 2objH analysis
   proves them all safe while remaining robustly scalable.

   Run with: dune exec examples/cast_safety.exe *)

let source = {|
class Object { }
interface Plugin {
  method init/0;
}
class Registry {
  field slot;
  method put/1 (p) { this.slot = p; }
  method get/0 () { var t; t = this.slot; return t; }
}
class RegistryFactory {
  static method make/0 () { var r; r = new Registry; return r; }
}

class AudioPlugin extends Object implements Plugin {
  method init/0 () { return this; }
}
class VideoPlugin extends Object implements Plugin {
  method init/0 () { return this; }
}
class NetworkPlugin extends Object implements Plugin {
  method init/0 () { return this; }
}

class Host {
  static method audio/0 () {
    var r, p, g, c;
    r = RegistryFactory::make();
    p = new AudioPlugin;
    r.put(p);
    g = r.get();
    c = (AudioPlugin) g;
    return c;
  }
  static method video/0 () {
    var r, p, g, c;
    r = RegistryFactory::make();
    p = new VideoPlugin;
    r.put(p);
    g = r.get();
    c = (VideoPlugin) g;
    return c;
  }
  static method network/0 () {
    var r, p, g, c;
    r = RegistryFactory::make();
    p = new NetworkPlugin;
    r.put(p);
    g = r.get();
    c = (NetworkPlugin) g;
    return c;
  }
  static method main/0 () {
    var a, v, n;
    a = Host::audio();
    v = Host::video();
    n = Host::network();
  }
}
entry Host::main/0;
|}

module Program = Ipa_ir.Program
module Int_set = Ipa_support.Int_set

(* List every reachable cast and whether the analysis proves it safe. *)
let report_casts (r : Ipa_core.Analysis.result) =
  let p = r.solution.program in
  let vpt = Ipa_core.Solution.collapsed_var_pts r.solution in
  let reachable = Ipa_core.Solution.reachable_meths r.solution in
  Printf.printf "--- %s (%.3fs) ---\n" r.label r.seconds;
  Int_set.iter
    (fun m ->
      Array.iter
        (fun (instr : Program.instr) ->
          match instr with
          | Cast { source; cast_to; _ } ->
            let may_fail =
              Int_set.exists
                (fun h ->
                  not (Program.subtype p ~sub:(Program.heap_info p h).heap_class ~super:cast_to))
                vpt.(source)
            in
            Printf.printf "  %-24s (%s) %s : %s\n" (Program.meth_full_name p m)
              (Program.class_name p cast_to)
              (Program.var_info p source).var_name
              (if may_fail then "MAY FAIL" else "safe")
          | Alloc _ | Move _ | Load _ | Store _ | Load_static _ | Store_static _ | Call _
          | Return _ | Throw _ -> ())
        (Program.meth_info p m).body)
    reachable;
  print_newline ()

let () =
  let p =
    match Ipa_frontend.Jir.parse_string source with
    | Ok p -> p
    | Error e -> failwith (Ipa_frontend.Jir.error_to_string e)
  in
  (* All registries come from one allocation site inside the factory, so the
     context-insensitive analysis merges their contents: every cast "may
     fail". *)
  report_casts (Ipa_core.Analysis.run_plain p Ipa_core.Flavors.Insensitive);
  (* Call-site-sensitivity separates the three factory invocations: every
     cast is proven safe. *)
  report_casts (Ipa_core.Analysis.run_plain p (Ipa_core.Flavors.Call_site { depth = 2; heap = 1 }));
  (* The introspective variant keeps that precision here — nothing in this
     small program trips the cost heuristics — while guaranteeing the
     analysis cannot blow up on a hostile input. *)
  let intro =
    Ipa_core.Analysis.run_introspective p
      (Ipa_core.Flavors.Call_site { depth = 2; heap = 1 })
      Ipa_core.Heuristics.default_b
  in
  report_casts intro.second
