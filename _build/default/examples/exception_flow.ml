(* Exception-flow client: where do thrown exceptions end up?

   A small job scheduler: jobs throw job-specific errors, the scheduler's
   shared [guard] method catches recoverable ones, and fatal errors escape
   to main. The example shows (a) the exception report — which handler binds
   which exception objects and what escapes uncaught — and (b) how context-
   sensitivity removes handler conflation: insensitively every handler
   appears to see every recoverable error.

   Run with: dune exec examples/exception_flow.exe *)

let source = {|
class Object { }
class Error { }
class Recoverable extends Error { }
class ParseError extends Recoverable { }
class TimeoutError extends Recoverable { }
class FatalError extends Error { }

interface Job { method run/0; }
class ParseJob extends Object implements Job {
  method run/0 () { var e; e = new ParseError; throw e; return this; }
}
class FetchJob extends Object implements Job {
  method run/0 () { var e; e = new TimeoutError; throw e; return this; }
}
class CorruptJob extends Object implements Job {
  method run/0 () { var e; e = new FatalError; throw e; return this; }
}

class Scheduler {
  method guard/1 (j) {
    var got, r;
    catch (Recoverable) got;
    r = j.run();
    return got;
  }
}

class Main {
  static method main/0 () {
    var s1, s2, s3, j1, j2, j3, e1, e2, e3, p1, t2;
    s1 = new Scheduler;
    s2 = new Scheduler;
    s3 = new Scheduler;
    j1 = new ParseJob;
    j2 = new FetchJob;
    j3 = new CorruptJob;
    e1 = s1.guard(j1);
    e2 = s2.guard(j2);
    e3 = s3.guard(j3);
    p1 = (ParseError) e1;
    t2 = (TimeoutError) e2;
  }
}
entry Main::main/0;
|}

let report label flavor p =
  let r = Ipa_core.Analysis.run_plain p flavor in
  Printf.printf "=== %s ===\n" label;
  Ipa_clients.Exception_report.print r.solution;
  print_newline ();
  r

let () =
  let p =
    match Ipa_frontend.Jir.parse_string source with
    | Ok p -> p
    | Error e -> failwith (Ipa_frontend.Jir.error_to_string e)
  in
  (* Insensitively, guard's handler conflates: it appears to bind both the
     ParseError and the TimeoutError regardless of scheduler (so the
     downcasts on the caught values cannot be proven safe), and the
     FatalError escapes (correctly — no handler admits it). Note the handler
     report is collapsed over contexts: the per-instance split shows up in
     consumers of the caught value, here the two casts. *)
  let coarse = report "context-insensitive" Ipa_core.Flavors.Insensitive p in
  (* Object-sensitively each scheduler instance sees only its own job's
     error. *)
  let fine =
    report "2-object-sensitive" (Ipa_core.Flavors.Object_sens { depth = 2; heap = 1 }) p
  in
  print_endline "=== precision delta (insens -> 2objH) ===";
  Ipa_clients.Compare.print coarse.solution fine.solution
