(* The scalability "dial": sweep the heuristic constants.

   The paper's central promise is a knob between scalability and precision:
   lower the heuristic thresholds and the analysis gets cheaper but coarser;
   raise them and it converges to the full context-sensitive analysis (and
   eventually to its blow-ups). This example sweeps Heuristic A's constants
   on the hsqldb-like benchmark — the one whose full 2objH analysis does not
   terminate — and prints cost and precision at each setting.

   Run with: dune exec examples/scalability_knob.exe *)

module Flavors = Ipa_core.Flavors
module Heuristics = Ipa_core.Heuristics

let () =
  let spec = Option.get (Ipa_synthetic.Dacapo.find "hsqldb") in
  let p = Ipa_synthetic.Dacapo.build ~scale:0.5 spec in
  let budget = 10_000_000 in
  let flavor = Flavors.Object_sens { depth = 2; heap = 1 } in
  Printf.printf "%-26s %9s %12s %7s %7s %7s\n" "setting" "time(s)" "derivations" "poly"
    "reach" "casts";
  let row label (r : Ipa_core.Analysis.result) =
    if r.timed_out then
      Printf.printf "%-26s %9s %12d %7s %7s %7s\n" label "timeout" r.solution.derivations "-" "-"
        "-"
    else begin
      let prec = Ipa_core.Precision.compute r.solution in
      Printf.printf "%-26s %9.2f %12d %7d %7d %7d\n" label r.seconds r.solution.derivations
        prec.poly_vcalls prec.reachable_methods prec.may_fail_casts
    end
  in
  row "insens" (Ipa_core.Analysis.run_plain ~budget p Flavors.Insensitive);
  (* Tighten and loosen Heuristic A around its paper constants
     (K=100, L=100, M=200). Small K/L/M = aggressive skipping = fast and
     coarse; large = nearly the full analysis. *)
  List.iter
    (fun factor ->
      let k = 100 * factor / 10 in
      let l = 100 * factor / 10 in
      let m = 200 * factor / 10 in
      let h = Heuristics.A { k = max 1 k; l = max 1 l; m = max 1 m } in
      let ir = Ipa_core.Analysis.run_introspective ~budget p flavor h in
      row (Printf.sprintf "IntroA x%.1f (K=%d)" (float_of_int factor /. 10.) (max 1 k)) ir.second)
    [ 1; 5; 10; 50; 400; 10000 ];
  row "full 2objH" (Ipa_core.Analysis.run_plain ~budget p flavor)
