examples/devirtualize.mli:
