examples/quickstart.mli:
