examples/scalability_knob.ml: Ipa_core Ipa_synthetic List Option Printf
