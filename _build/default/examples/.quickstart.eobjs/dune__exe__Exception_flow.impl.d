examples/exception_flow.ml: Ipa_clients Ipa_core Ipa_frontend Printf
