examples/cast_safety.ml: Array Ipa_core Ipa_frontend Ipa_ir Ipa_support Printf
