examples/exception_flow.mli:
