examples/quickstart.ml: Array Ipa_core Ipa_ir Ipa_support List Printf String
