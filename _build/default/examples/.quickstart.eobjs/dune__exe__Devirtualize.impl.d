examples/devirtualize.ml: Hashtbl Ipa_core Ipa_ir Ipa_support Ipa_synthetic Option Printf
