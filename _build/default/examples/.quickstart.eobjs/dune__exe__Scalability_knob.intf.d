examples/scalability_knob.mli:
