lib/ir/wf.ml: Array List Printf Program
