lib/ir/builder.mli: Program
