lib/ir/wf.mli: Program
