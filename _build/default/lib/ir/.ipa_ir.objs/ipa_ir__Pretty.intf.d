lib/ir/pretty.mli: Program
