lib/ir/builder.ml: Array Hashtbl Ipa_support List Printf Program String Wf
