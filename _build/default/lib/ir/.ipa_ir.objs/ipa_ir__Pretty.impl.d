lib/ir/pretty.ml: Array Buffer Hashtbl Int List Option Printf Program String
