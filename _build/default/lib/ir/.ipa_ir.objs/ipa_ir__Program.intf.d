lib/ir/program.mli:
