lib/ir/program.ml: Array Fun Hashtbl Ipa_support List Option Printf
