open Program

let check p =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (* Classes *)
  for c = 0 to n_classes p - 1 do
    let ci = class_info p c in
    (match ci.super with
    | Some s when (class_info p s).is_interface ->
      err "class %s extends interface %s" ci.class_name (class_name p s)
    | Some _ when ci.is_interface ->
      err "interface %s uses [super]; interfaces extend via [interfaces]" ci.class_name
    | _ -> ());
    List.iter
      (fun i ->
        if not (class_info p i).is_interface then
          err "%s implements non-interface %s" ci.class_name (class_name p i))
      ci.interfaces;
    if ci.is_interface && ci.declared <> [] then
      err "interface %s declares concrete methods" ci.class_name
  done;
  (* Fields *)
  for f = 0 to n_fields p - 1 do
    let fi = field_info p f in
    if (class_info p fi.field_owner).is_interface && not fi.is_static_field then
      err "interface %s declares instance field %s" (class_name p fi.field_owner) fi.field_name
  done;
  (* Methods and bodies *)
  for m = 0 to n_meths p - 1 do
    let mi = meth_info p m in
    let mname = meth_full_name p m in
    let owned v what =
      let vi = var_info p v in
      if vi.var_owner <> m then
        err "%s: %s variable %s belongs to %s" mname what vi.var_name
          (meth_full_name p vi.var_owner)
    in
    (match mi.this_var with Some v -> owned v "this" | None -> ());
    Array.iter (fun v -> owned v "formal") mi.formals;
    (match mi.ret_var with Some v -> owned v "return" | None -> ());
    if mi.is_abstract && Array.length mi.body > 0 then err "%s: abstract method with a body" mname;
    if mi.is_static_meth && mi.this_var <> None then err "%s: static method with [this]" mname;
    Array.iter
      (fun instr ->
        match instr with
        | Alloc { target; heap } ->
          owned target "alloc target";
          let hi = heap_info p heap in
          if hi.heap_owner <> m then err "%s: allocation site %s owned elsewhere" mname hi.heap_name;
          if (class_info p hi.heap_class).is_interface then
            err "%s: allocation of interface %s" mname (class_name p hi.heap_class)
        | Move { target; source } ->
          owned target "move target";
          owned source "move source"
        | Cast { target; source; cast_to } ->
          owned target "cast target";
          owned source "cast source";
          ignore (class_info p cast_to)
        | Load { target; base; field } ->
          owned target "load target";
          owned base "load base";
          if (field_info p field).is_static_field then
            err "%s: instance load of static field %s" mname (field_full_name p field)
        | Store { base; field; source } ->
          owned base "store base";
          owned source "store source";
          if (field_info p field).is_static_field then
            err "%s: instance store to static field %s" mname (field_full_name p field)
        | Load_static { target; field } ->
          owned target "static load target";
          if not (field_info p field).is_static_field then
            err "%s: static load of instance field %s" mname (field_full_name p field)
        | Store_static { field; source } ->
          owned source "static store source";
          if not (field_info p field).is_static_field then
            err "%s: static store to instance field %s" mname (field_full_name p field)
        | Call invo ->
          let ii = invo_info p invo in
          if ii.invo_owner <> m then err "%s: call site %s owned elsewhere" mname ii.invo_name;
          Array.iter (fun v -> owned v "call actual") ii.actuals;
          (match ii.recv with Some v -> owned v "call receiver" | None -> ());
          (match ii.call with
          | Virtual { base; signature } ->
            owned base "call base";
            let si = sig_info p signature in
            if Array.length ii.actuals <> si.arity then
              err "%s: call %s passes %d arguments to signature /%d" mname ii.invo_name
                (Array.length ii.actuals) si.arity
          | Static { callee } ->
            let callee_info = meth_info p callee in
            if callee_info.is_abstract then
              err "%s: static call to abstract %s" mname (meth_full_name p callee);
            if not callee_info.is_static_meth then
              err "%s: static call to instance method %s" mname (meth_full_name p callee);
            if Array.length ii.actuals <> Array.length callee_info.formals then
              err "%s: call %s passes %d arguments to %s/%d formals" mname ii.invo_name
                (Array.length ii.actuals) (meth_full_name p callee)
                (Array.length callee_info.formals))
        | Return { source } ->
          owned source "return source";
          if mi.ret_var = None then err "%s: return without a return variable" mname
        | Throw { source } -> owned source "throw source")
      mi.body;
    Array.iter
      (fun (clause : catch_clause) ->
        owned clause.catch_var "catch";
        if (class_info p clause.catch_type).is_interface then
          err "%s: catch of interface type %s" mname (class_name p clause.catch_type))
      mi.catches;
    if mi.is_abstract && Array.length mi.catches > 0 then
      err "%s: abstract method with catch clauses" mname
  done;
  List.iter
    (fun m ->
      if (meth_info p m).is_abstract then err "entry point %s is abstract" (meth_full_name p m))
    (entries p);
  match !errs with [] -> Ok () | es -> Error (List.rev es)
