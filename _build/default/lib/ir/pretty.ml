open Program

let var_name p v = (var_info p v).var_name

let qualified_field p f =
  let fi = field_info p f in
  Printf.sprintf "%s::%s" (class_name p fi.field_owner) fi.field_name

let call_str p (ii : invo_info) =
  let args = String.concat ", " (Array.to_list (Array.map (var_name p) ii.actuals)) in
  let callee =
    match ii.call with
    | Virtual { base; signature } ->
      Printf.sprintf "%s.%s" (var_name p base) (sig_info p signature).sig_name
    | Static { callee } ->
      let mi = meth_info p callee in
      Printf.sprintf "%s::%s" (class_name p mi.meth_owner) mi.meth_name
  in
  let prefix = match ii.recv with Some r -> var_name p r ^ " = " | None -> "" in
  Printf.sprintf "%s%s(%s);" prefix callee args

let instr p i =
  match i with
  | Alloc { target; heap } ->
    Printf.sprintf "%s = new %s;" (var_name p target) (class_name p (heap_info p heap).heap_class)
  | Move { target; source } -> Printf.sprintf "%s = %s;" (var_name p target) (var_name p source)
  | Cast { target; source; cast_to } ->
    Printf.sprintf "%s = (%s) %s;" (var_name p target) (class_name p cast_to) (var_name p source)
  | Load { target; base; field } ->
    Printf.sprintf "%s = %s.%s;" (var_name p target) (var_name p base) (qualified_field p field)
  | Store { base; field; source } ->
    Printf.sprintf "%s.%s = %s;" (var_name p base) (qualified_field p field) (var_name p source)
  | Load_static { target; field } ->
    Printf.sprintf "%s = %s;" (var_name p target) (qualified_field p field)
  | Store_static { field; source } ->
    Printf.sprintf "%s = %s;" (qualified_field p field) (var_name p source)
  | Call invo -> call_str p (invo_info p invo)
  | Return { source } -> Printf.sprintf "return %s;" (var_name p source)
  | Throw { source } -> Printf.sprintf "throw %s;" (var_name p source)

let method_decl buf p vars_of_meth m =
  let mi = meth_info p m in
  let si = sig_info p mi.meth_sig in
  let static = if mi.is_static_meth then "static " else "" in
  if mi.is_abstract then
    Buffer.add_string buf (Printf.sprintf "  method %s/%d;\n" si.sig_name si.arity)
  else begin
    let params =
      String.concat ", " (Array.to_list (Array.map (var_name p) mi.formals))
    in
    Buffer.add_string buf
      (Printf.sprintf "  %smethod %s/%d (%s) {\n" static si.sig_name si.arity params);
    (* Locals: every variable of the method that is not a formal, [this], or
       the synthetic return variable. *)
    let implicit v =
      Some v = mi.this_var || Some v = mi.ret_var || Array.exists (Int.equal v) mi.formals
    in
    let locals = List.filter (fun v -> not (implicit v)) (vars_of_meth m) in
    if locals <> [] then
      Buffer.add_string buf
        (Printf.sprintf "    var %s;\n" (String.concat ", " (List.map (var_name p) locals)));
    Array.iter
      (fun (clause : catch_clause) ->
        Buffer.add_string buf
          (Printf.sprintf "    catch (%s) %s;\n"
             (class_name p clause.catch_type)
             (var_name p clause.catch_var)))
      mi.catches;
    Array.iter (fun i -> Buffer.add_string buf ("    " ^ instr p i ^ "\n")) mi.body;
    Buffer.add_string buf "  }\n"
  end

let class_decl buf p fields_of_class meths_of_class vars_of_meth c =
  let ci = class_info p c in
  let interfaces = List.map (class_name p) ci.interfaces in
  if ci.is_interface then
    Buffer.add_string buf
      (Printf.sprintf "interface %s%s {\n" ci.class_name
         (if interfaces = [] then "" else " extends " ^ String.concat ", " interfaces))
  else begin
    let extends = match ci.super with Some s -> " extends " ^ class_name p s | None -> "" in
    let implements =
      if interfaces = [] then "" else " implements " ^ String.concat ", " interfaces
    in
    Buffer.add_string buf (Printf.sprintf "class %s%s%s {\n" ci.class_name extends implements)
  end;
  List.iter
    (fun f ->
      let fi = field_info p f in
      Buffer.add_string buf
        (Printf.sprintf "  %sfield %s;\n"
           (if fi.is_static_field then "static " else "")
           fi.field_name))
    (fields_of_class c);
  List.iter (method_decl buf p vars_of_meth) (meths_of_class c);
  Buffer.add_string buf "}\n"

(* Group ids by owner so printing is linear rather than quadratic. *)
let group_by_owner n owner_of =
  let tbl = Hashtbl.create 256 in
  for i = n - 1 downto 0 do
    let o = owner_of i in
    Hashtbl.replace tbl o (i :: Option.value ~default:[] (Hashtbl.find_opt tbl o))
  done;
  fun o -> Option.value ~default:[] (Hashtbl.find_opt tbl o)

let program p =
  let buf = Buffer.create 4096 in
  let fields_of_class = group_by_owner (n_fields p) (fun f -> (field_info p f).field_owner) in
  let meths_of_class = group_by_owner (n_meths p) (fun m -> (meth_info p m).meth_owner) in
  let vars_of_meth = group_by_owner (n_vars p) (fun v -> (var_info p v).var_owner) in
  for c = 0 to n_classes p - 1 do
    class_decl buf p fields_of_class meths_of_class vars_of_meth c;
    Buffer.add_char buf '\n'
  done;
  List.iter
    (fun m ->
      let mi = meth_info p m in
      let si = sig_info p mi.meth_sig in
      Buffer.add_string buf
        (Printf.sprintf "entry %s::%s/%d;\n" (class_name p mi.meth_owner) si.sig_name si.arity))
    (entries p);
  Buffer.contents buf
