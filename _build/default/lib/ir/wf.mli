(** Well-formedness checking for {!Program.t} values.

    Both the builder and the front-end funnel programs through this checker,
    so every program the analysis sees satisfies the invariants the solver
    relies on (variable ownership, arity agreement, instantiable allocation
    classes, acyclic hierarchy — the latter enforced by [Program.make]). *)

val check : Program.t -> (unit, string list) result
(** [check p] is [Ok ()] or [Error messages], one human-readable message per
    violation. Checked invariants:
    - a class's [super] is a class (not an interface); [interfaces] are
      interfaces;
    - interfaces declare no concrete methods, no instance fields, and are
      never instantiated or extended by [super];
    - every variable mentioned in a method's body (and its formals, [this],
      [ret_var]) is owned by that method;
    - allocation sites instantiate non-interface classes and are owned by the
      allocating method;
    - call sites: actual count matches the signature arity (virtual) or the
      callee's formal count (static); static callees are concrete static
      methods; the site is owned by the enclosing method;
    - [Return] only occurs in methods with a [ret_var];
    - catch clauses bind variables owned by the method and never catch
      interface types;
    - abstract methods have empty bodies, no body-owned sites, and no catch
      clauses;
    - entry points are concrete methods. *)
