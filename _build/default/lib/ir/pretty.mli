(** Textual rendering of programs in the [.jir] format.

    The format round-trips through [Ipa_frontend]: for programs built with
    {!Builder} (whose class order is topological by construction),
    [parse (program p)] reconstructs an equivalent program. Grammar sketch:

    {v
    program  := (class | interface | entry)*
    class    := "class" ID ["extends" ID] ["implements" ID {"," ID}] "{" member* "}"
    interface:= "interface" ID ["extends" ID {"," ID}] "{" member* "}"
    member   := ["static"] "field" ID ";"
              | ["static"] "method" ID "/" INT [params "{" stmt* "}" | ";"]
    stmt     := "var" ID {"," ID} ";"
              | ID "=" "new" ID ";"                 (alloc)
              | ID "=" "(" ID ")" ID ";"            (cast)
              | ID "=" ID ";"                       (move)
              | ID "=" ID "." fieldref ";"          (load)
              | ID "." fieldref "=" ID ";"          (store)
              | ID "=" ID "::" ID ";"               (static load)
              | ID "::" ID "=" ID ";"               (static store)
              | [ID "="] ID "." ID "(" args ")" ";" (virtual call)
              | [ID "="] ID "::" ID "(" args ")" ";"(static call)
              | "return" [ID] ";"
    fieldref := [ID "::"] ID
    entry    := "entry" ID "::" ID "/" INT ";"
    v} *)

val program : Program.t -> string
(** Render the whole program. *)

val instr : Program.t -> Program.instr -> string
(** One statement, as it appears in a method body (no indentation, with the
    trailing [";"]). Useful in error messages and tests. *)
