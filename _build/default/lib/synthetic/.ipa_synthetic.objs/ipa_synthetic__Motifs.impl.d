lib/synthetic/motifs.ml: Array Ipa_ir List Option Printf World
