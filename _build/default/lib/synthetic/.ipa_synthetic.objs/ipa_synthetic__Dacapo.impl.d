lib/synthetic/dacapo.ml: Float List Motifs World
