lib/synthetic/world.mli: Ipa_ir Ipa_support
