lib/synthetic/dacapo.mli: Ipa_ir World
