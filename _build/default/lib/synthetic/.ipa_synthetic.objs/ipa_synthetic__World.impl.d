lib/synthetic/world.ml: Ipa_ir Ipa_support Printf
