lib/synthetic/motifs.mli: World
