(** Shared scaffolding for generated benchmark programs.

    A world owns a {!Ipa_ir.Builder}, a deterministic RNG, the root [Object]
    class, and the [Main] class with the [main/0] entry point that motif
    driver code is appended to. Motifs (see {!Motifs}) add classes and code;
    {!finish} seals the program. *)

type t = {
  b : Ipa_ir.Builder.t;
  rng : Ipa_support.Splitmix.t;
  object_cls : Ipa_ir.Program.class_id;
  main_cls : Ipa_ir.Program.class_id;
  main : Ipa_ir.Program.meth_id;
  mutable counter : int;
}

val create : seed:int -> t

val fresh : t -> string -> string
(** [fresh w prefix] is a program-unique identifier ["<prefix><n>"]. *)

val main_var : t -> string -> Ipa_ir.Program.var_id
(** Declare a fresh local in [main] (the given prefix is made unique). *)

val finish : t -> Ipa_ir.Program.t
(** Seal and validate. The builder must not be used afterwards. *)
