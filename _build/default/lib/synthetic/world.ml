module Builder = Ipa_ir.Builder
module Splitmix = Ipa_support.Splitmix

type t = {
  b : Builder.t;
  rng : Splitmix.t;
  object_cls : Ipa_ir.Program.class_id;
  main_cls : Ipa_ir.Program.class_id;
  main : Ipa_ir.Program.meth_id;
  mutable counter : int;
}

let create ~seed =
  let b = Builder.create () in
  let object_cls = Builder.add_class b "Object" in
  let main_cls = Builder.add_class b ~super:object_cls "Main" in
  let main = Builder.add_method b ~owner:main_cls ~name:"main" ~static:true ~params:[] () in
  Builder.add_entry b main;
  { b; rng = Splitmix.create seed; object_cls; main_cls; main; counter = 0 }

let fresh t prefix =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s%d" prefix t.counter

let main_var t prefix = Builder.add_var t.b t.main (fresh t prefix)

let finish t = Builder.finish t.b
