(** The synthetic benchmark suite mirroring the paper's DaCapo subjects.

    Each benchmark is a deterministic (seeded) composition of {!Motifs},
    sized so the paper's qualitative behavior reproduces under the harness's
    derivation budget:

    - all nine appear in Figure 1 (insens vs 2objH);
    - the "hard" subset (bloat, chart, eclipse, hsqldb, jython, pmd, xalan —
      the rows of the paper's Figure 4) is the subject set of Figures 4-7,
      with the six charted subjects (all but pmd) in Figures 5-7;
    - hsqldb and jython are engineered not to terminate under 2objH;
    - jython also defeats 2typeH and (by quadratic frame feedback that
      first-pass metrics underestimate for Heuristic B) 2objH-IntroB;
    - bloat, hsqldb, jython and xalan defeat 2callH.

    [scale] multiplies the motif sizes ([1.0] = harness default); tests use
    small scales. *)

type spec = {
  name : string;
  seed : int;
  generate : scale:float -> World.t -> unit;
}

val all : spec list
(** antlr, bloat, chart, eclipse, hsqldb, jython, lusearch, pmd, xalan. *)

val hard : spec list
(** The Figure 4 subjects: bloat, chart, eclipse, hsqldb, jython, pmd,
    xalan. *)

val charted : spec list
(** The Figures 5-7 subjects: {!hard} without pmd. *)

val find : string -> spec option

val build : ?scale:float -> spec -> Ipa_ir.Program.t
(** Generate the program (deterministic in [name] and [scale]). *)
