let empty_slot = min_int

type t = {
  mutable slots : int array; (* [empty_slot] marks a free slot *)
  mutable count : int;
  mutable mask : int; (* capacity - 1, capacity a power of two *)
}

let create ?(capacity = 8) () =
  let rec pow2 n = if n >= capacity then n else pow2 (2 * n) in
  let cap = pow2 8 in
  { slots = Array.make cap empty_slot; count = 0; mask = cap - 1 }

let cardinal t = t.count

(* Fibonacci hashing spreads consecutive interned ids well. The multiplier is
   2^62 / phi, kept positive in OCaml's 63-bit ints. *)
let hash x = (x * 0x3105_2E60_8C61_9E55) land max_int

let mem t x =
  let mask = t.mask in
  let slots = t.slots in
  let rec probe i =
    let v = slots.(i) in
    if v = empty_slot then false
    else if v = x then true
    else probe ((i + 1) land mask)
  in
  probe (hash x land mask)

let unsafe_insert slots mask x =
  let rec probe i =
    if slots.(i) = empty_slot then slots.(i) <- x
    else probe ((i + 1) land mask)
  in
  probe (hash x land mask)

let resize t =
  let old = t.slots in
  let cap = 2 * Array.length old in
  let slots = Array.make cap empty_slot in
  let mask = cap - 1 in
  Array.iter (fun v -> if v <> empty_slot then unsafe_insert slots mask v) old;
  t.slots <- slots;
  t.mask <- mask

let add t x =
  if x < 0 then invalid_arg "Int_set.add: negative element";
  let mask = t.mask in
  let slots = t.slots in
  let rec probe i =
    let v = slots.(i) in
    if v = empty_slot then begin
      slots.(i) <- x;
      t.count <- t.count + 1;
      (* Keep the load factor under ~0.7. *)
      if 10 * t.count > 7 * (mask + 1) then resize t;
      true
    end
    else if v = x then false
    else probe ((i + 1) land mask)
  in
  probe (hash x land mask)

let iter f t =
  Array.iter (fun v -> if v <> empty_slot then f v) t.slots

let fold f t acc =
  let acc = ref acc in
  iter (fun v -> acc := f v !acc) t;
  !acc

let exists p t =
  let slots = t.slots in
  let n = Array.length slots in
  let rec loop i =
    i < n && ((slots.(i) <> empty_slot && p slots.(i)) || loop (i + 1))
  in
  loop 0

let to_sorted_list t = List.sort compare (fold (fun x acc -> x :: acc) t [])

let of_list xs =
  let t = create ~capacity:(2 * List.length xs) () in
  List.iter (fun x -> ignore (add t x)) xs;
  t

let copy t = { slots = Array.copy t.slots; count = t.count; mask = t.mask }

let subset a b = not (exists (fun x -> not (mem b x)) a)

let equal a b = a.count = b.count && subset a b

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) empty_slot;
  t.count <- 0
