let now () = Unix.gettimeofday ()

let time f =
  let start = now () in
  let result = f () in
  (result, now () -. start)
