(** Wall-clock timing for the experiment harness. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val now : unit -> float
(** Current wall-clock time in seconds (arbitrary epoch). *)
