type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Take the top 62 bits to stay non-negative in an OCaml int, then reduce.
     The modulo bias is negligible for the small bounds we use. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  raw mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Splitmix.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float_of_int (int t 1_000_000) < p *. 1_000_000.0

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Splitmix.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
