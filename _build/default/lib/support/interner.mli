(** Hash-consing of arbitrary values into dense integer ids.

    Contexts, strings, and Datalog tuples are all interned so the rest of the
    system manipulates plain ints. Ids are allocated consecutively from 0, so
    they double as array indexes. Keys are compared with structural equality;
    a key handed to [intern] must not be mutated afterwards. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused slots of the reverse table; it is never returned. *)

val intern : 'a t -> 'a -> int
(** [intern t k] is the id of [k], allocating a fresh id on first sight. *)

val find_opt : 'a t -> 'a -> int option
(** [find_opt t k] is the id of [k] if already interned. *)

val value : 'a t -> int -> 'a
(** [value t id] is the key with id [id]. Raises [Invalid_argument] for an
    id that was never allocated. *)

val count : 'a t -> int
(** Number of distinct keys interned so far. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** [iter f t] applies [f id key] in increasing id order. *)
