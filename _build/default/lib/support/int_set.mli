(** Mutable sets of non-negative integers, open addressing.

    This is the workhorse set of the points-to solver: points-to sets hold
    interned object ids and are mutated millions of times per run, so the
    implementation avoids boxing entirely (one [int array], linear probing,
    power-of-two capacity, no deletion). Negative elements are rejected —
    [min_int] marks empty slots internally and all interned ids are
    non-negative anyway. *)

type t

val create : ?capacity:int -> unit -> t

val cardinal : t -> int

val mem : t -> int -> bool

val add : t -> int -> bool
(** [add t x] inserts [x] and returns [true] iff [x] was not already present.
    Raises [Invalid_argument] on negative [x]. *)

val iter : (int -> unit) -> t -> unit
(** Iteration order is unspecified. *)

val fold : (int -> 'acc -> 'acc) -> t -> 'acc -> 'acc

val exists : (int -> bool) -> t -> bool

val to_sorted_list : t -> int list

val of_list : int list -> t

val copy : t -> t

val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b]. *)

val equal : t -> t -> bool

val clear : t -> unit
