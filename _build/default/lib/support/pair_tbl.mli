(** Interning of pairs of small non-negative ints into dense ids.

    Solver nodes are [(variable, context)] and objects are [(heap, heap
    context)]; both components are dense interned ids well below 2^31, so a
    pair packs losslessly into one OCaml int ([a lsl 31 lor b]) and the table
    avoids allocating tuple keys on the hot path. *)

type t

val create : ?capacity:int -> unit -> t

val intern : t -> int -> int -> int
(** [intern t a b] is the id of the pair [(a, b)]. Raises [Invalid_argument]
    when a component is negative or at least [2^31]. *)

val find_opt : t -> int -> int -> int option

val fst : t -> int -> int
(** First component of an interned pair. *)

val snd : t -> int -> int
(** Second component of an interned pair. *)

val count : t -> int

val iter : (int -> int -> int -> unit) -> t -> unit
(** [iter f t] applies [f id a b] in increasing id order. *)
