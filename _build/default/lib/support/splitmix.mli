(** Deterministic pseudo-random numbers (splitmix64).

    The synthetic benchmark generator must produce byte-identical programs for
    a given seed on every run and platform, so it cannot depend on
    [Stdlib.Random] (whose algorithm changed across OCaml releases). This is
    the standard splitmix64 generator on [int64] state. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] when
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0, 1\]]). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
