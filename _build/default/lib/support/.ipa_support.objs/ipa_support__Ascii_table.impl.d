lib/support/ascii_table.ml: Array List String
