lib/support/int_set.mli:
