lib/support/pair_tbl.mli:
