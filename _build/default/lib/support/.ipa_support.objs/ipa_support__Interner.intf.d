lib/support/interner.mli:
