lib/support/int_set.ml: Array List
