lib/support/splitmix.ml: Array Int64
