lib/support/splitmix.mli:
