lib/support/dynarr.mli:
