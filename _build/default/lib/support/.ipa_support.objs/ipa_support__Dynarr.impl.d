lib/support/dynarr.ml: Array List Printf
