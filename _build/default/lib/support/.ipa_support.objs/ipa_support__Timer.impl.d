lib/support/timer.ml: Unix
