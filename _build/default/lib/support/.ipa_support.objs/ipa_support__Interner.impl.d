lib/support/interner.ml: Dynarr Hashtbl Printf
