lib/support/pair_tbl.ml: Dynarr Hashtbl Printf
