lib/support/ascii_table.mli:
