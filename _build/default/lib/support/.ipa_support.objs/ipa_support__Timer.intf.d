lib/support/timer.mli:
