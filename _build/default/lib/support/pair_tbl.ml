let limit = 1 lsl 31

type t = {
  ids : (int, int) Hashtbl.t; (* packed pair -> id *)
  pairs : int Dynarr.t; (* id -> packed pair *)
}

let create ?(capacity = 64) () =
  { ids = Hashtbl.create capacity; pairs = Dynarr.create ~capacity ~dummy:0 () }

let pack a b =
  if a < 0 || b < 0 || a >= limit || b >= limit then
    invalid_arg (Printf.sprintf "Pair_tbl: component out of range (%d, %d)" a b);
  (a lsl 31) lor b

let intern t a b =
  let key = pack a b in
  match Hashtbl.find_opt t.ids key with
  | Some id -> id
  | None ->
    let id = Dynarr.push_get_index t.pairs key in
    Hashtbl.add t.ids key id;
    id

let find_opt t a b = Hashtbl.find_opt t.ids (pack a b)

let fst t id = Dynarr.get t.pairs id lsr 31

let snd t id = Dynarr.get t.pairs id land (limit - 1)

let count t = Dynarr.length t.pairs

let iter f t = Dynarr.iteri (fun id key -> f id (key lsr 31) (key land (limit - 1))) t.pairs
