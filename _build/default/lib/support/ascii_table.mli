(** Aligned plain-text tables for the experiment harness.

    The benchmark harness prints every reproduced figure/table of the paper as
    an ASCII table; this module handles column sizing and alignment. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the header and rows out in aligned columns
    separated by two spaces, with a rule under the header. [aligns] gives the
    alignment per column (default: first column left, the rest right); it is
    padded with [Right] when shorter than the widest row. Rows shorter than
    the widest row are padded with empty cells. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit
(** [print] is [render] followed by [print_string] and a newline. *)
