type 'a t = {
  ids : ('a, int) Hashtbl.t;
  values : 'a Dynarr.t;
}

let create ?(capacity = 64) ~dummy () =
  { ids = Hashtbl.create capacity; values = Dynarr.create ~capacity ~dummy () }

let intern t k =
  match Hashtbl.find_opt t.ids k with
  | Some id -> id
  | None ->
    let id = Dynarr.push_get_index t.values k in
    Hashtbl.add t.ids k id;
    id

let find_opt t k = Hashtbl.find_opt t.ids k

let value t id =
  if id < 0 || id >= Dynarr.length t.values then
    invalid_arg (Printf.sprintf "Interner.value: unknown id %d" id);
  Dynarr.get t.values id

let count t = Dynarr.length t.values

let iter f t = Dynarr.iteri f t.values
