module Program = Ipa_ir.Program
module Solution = Ipa_core.Solution

let to_edges (s : Solution.t) =
  let p = s.program in
  let edges = Hashtbl.create 256 in
  Solution.iter_cg s (fun ~invo ~caller:_ ~meth ~callee:_ ->
      let from = (Program.invo_info p invo).invo_owner in
      Hashtbl.replace edges (from, meth) ());
  List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) edges [])

let escape name = String.concat "\\\"" (String.split_on_char '"' name)

let to_dot (s : Solution.t) =
  let p = s.program in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n";
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [style=filled, fillcolor=lightblue];\n"
           (escape (Program.meth_full_name p m))))
    (Program.entries p);
  List.iter
    (fun (from, to_) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\";\n"
           (escape (Program.meth_full_name p from))
           (escape (Program.meth_full_name p to_))))
    (to_edges s);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_dot s ~path =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_dot s))
