module Program = Ipa_ir.Program
module Int_set = Ipa_support.Int_set
module Solution = Ipa_core.Solution

type delta = {
  casts_proven_safe : (Program.meth_id * Program.class_id) list;
  casts_lost : (Program.meth_id * Program.class_id) list;
  devirtualized : Program.invo_id list;
  newly_unreachable : Program.meth_id list;
  uncaught_delta : int;
}

let diff (coarse : Solution.t) (fine : Solution.t) =
  if not (coarse.program == fine.program) then
    invalid_arg "Compare.diff: solutions analyze different programs";
  let key (c : Cast_check.t) = (c.meth, c.source, c.target_type) in
  let unsafe s =
    List.filter_map
      (fun (c : Cast_check.t) -> if c.witnesses <> [] then Some (key c) else None)
      (Cast_check.analyze s)
  in
  let coarse_unsafe = unsafe coarse and fine_unsafe = unsafe fine in
  let strip = List.map (fun (m, _, ty) -> (m, ty)) in
  let casts_proven_safe =
    strip (List.filter (fun k -> not (List.mem k fine_unsafe)) coarse_unsafe)
  in
  let casts_lost =
    strip (List.filter (fun k -> not (List.mem k coarse_unsafe)) fine_unsafe)
  in
  let poly s =
    List.filter_map
      (fun (d : Devirtualize.t) ->
        match d.verdict with Polymorphic _ -> Some d.site | _ -> None)
      (Devirtualize.analyze s)
  in
  let fine_poly = poly fine in
  let devirtualized = List.filter (fun site -> not (List.mem site fine_poly)) (poly coarse) in
  let newly_unreachable =
    Int_set.fold
      (fun m acc ->
        if Int_set.mem (Solution.reachable_meths fine) m then acc else m :: acc)
      (Solution.reachable_meths coarse)
      []
  in
  let uncaught s =
    List.fold_left
      (fun acc (u : Exception_report.uncaught) -> acc + List.length u.objects)
      0 (Exception_report.uncaught s)
  in
  {
    casts_proven_safe;
    casts_lost;
    devirtualized;
    newly_unreachable = List.sort compare newly_unreachable;
    uncaught_delta = uncaught coarse - uncaught fine;
  }

let print coarse fine =
  let p = coarse.Solution.program in
  let d = diff coarse fine in
  Printf.printf "casts proven safe: %d\n" (List.length d.casts_proven_safe);
  List.iter
    (fun (m, ty) ->
      Printf.printf "  %s: (%s)\n" (Program.meth_full_name p m) (Program.class_name p ty))
    d.casts_proven_safe;
  if d.casts_lost <> [] then begin
    Printf.printf "casts LOST (second analysis is not a refinement!): %d\n"
      (List.length d.casts_lost)
  end;
  Printf.printf "call sites devirtualized: %d\n" (List.length d.devirtualized);
  List.iter
    (fun site -> Printf.printf "  %s\n" (Program.invo_info p site).invo_name)
    d.devirtualized;
  Printf.printf "methods shown unreachable: %d\n" (List.length d.newly_unreachable);
  List.iter
    (fun m -> Printf.printf "  %s\n" (Program.meth_full_name p m))
    d.newly_unreachable;
  Printf.printf "uncaught-exception reduction: %d\n" d.uncaught_delta
