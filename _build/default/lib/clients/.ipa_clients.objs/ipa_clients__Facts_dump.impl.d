lib/clients/facts_dump.ml: Array Hashtbl Ipa_core Ipa_ir Ipa_support List Out_channel Printf String
