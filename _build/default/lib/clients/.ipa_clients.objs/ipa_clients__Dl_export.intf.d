lib/clients/dl_export.mli: Ipa_ir
