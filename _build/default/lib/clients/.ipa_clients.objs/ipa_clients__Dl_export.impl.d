lib/clients/dl_export.ml: Array Buffer Ipa_ir List Printf String
