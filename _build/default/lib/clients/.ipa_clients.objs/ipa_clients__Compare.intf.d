lib/clients/compare.mli: Ipa_core Ipa_ir
