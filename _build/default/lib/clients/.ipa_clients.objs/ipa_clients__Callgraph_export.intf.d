lib/clients/callgraph_export.mli: Ipa_core Ipa_ir
