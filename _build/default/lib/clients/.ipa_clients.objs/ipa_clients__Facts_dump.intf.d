lib/clients/facts_dump.mli: Ipa_core
