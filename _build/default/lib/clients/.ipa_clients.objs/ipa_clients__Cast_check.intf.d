lib/clients/cast_check.mli: Ipa_core Ipa_ir
