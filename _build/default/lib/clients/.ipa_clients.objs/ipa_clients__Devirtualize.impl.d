lib/clients/devirtualize.ml: Hashtbl Ipa_core Ipa_ir Ipa_support List Printf String
