lib/clients/compare.ml: Cast_check Devirtualize Exception_report Ipa_core Ipa_ir Ipa_support List Printf
