lib/clients/callgraph_export.ml: Buffer Hashtbl Ipa_core Ipa_ir List Out_channel Printf String
