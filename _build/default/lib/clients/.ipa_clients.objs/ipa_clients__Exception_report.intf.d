lib/clients/exception_report.mli: Ipa_core Ipa_ir
