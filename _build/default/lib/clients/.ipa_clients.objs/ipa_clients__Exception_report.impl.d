lib/clients/exception_report.ml: Array Hashtbl Ipa_core Ipa_ir Ipa_support List Printf String
