lib/clients/devirtualize.mli: Ipa_core Ipa_ir
