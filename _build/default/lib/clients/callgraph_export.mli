(** Call-graph export: the collapsed (context-insensitive projection of the)
    call graph in Graphviz DOT and in an edge-list text format.

    Nodes are methods; an edge [m -> n] exists when some call site in [m]
    may invoke [n] under some context pair. Entry points are marked. *)

val to_dot : Ipa_core.Solution.t -> string

val to_edges : Ipa_core.Solution.t -> (Ipa_ir.Program.meth_id * Ipa_ir.Program.meth_id) list
(** Deduplicated, sorted caller/callee pairs. *)

val write_dot : Ipa_core.Solution.t -> path:string -> unit
