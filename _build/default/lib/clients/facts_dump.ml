module Program = Ipa_ir.Program
module Solution = Ipa_core.Solution
module Int_set = Ipa_support.Int_set

let namers (s : Solution.t) =
  let p = s.program in
  ( Program.var_full_name p,
    Program.heap_full_name p,
    Program.field_full_name p,
    Program.meth_full_name p,
    fun invo -> (Program.invo_info p invo).invo_name )

let ctx_str (s : Solution.t) c =
  "["
  ^ String.concat ";"
      (Array.to_list
         (Array.map (Ipa_core.Ctx.Elem.to_string s.program) (Ipa_core.Ctx.elems s.ctxs c)))
  ^ "]"

let collapsed_lines (s : Solution.t) =
  let v, h, f, m, i = namers s in
  let acc = ref [] in
  let add fmt = Printf.ksprintf (fun str -> acc := str :: !acc) fmt in
  Array.iteri
    (fun var set -> Int_set.iter (fun heap -> add "vpt %s %s" (v var) (h heap)) set)
    (Solution.collapsed_var_pts s);
  Hashtbl.iter
    (fun key set ->
      let n_fields = Program.n_fields s.program in
      let base = key / n_fields and field = key mod n_fields in
      Int_set.iter (fun heap -> add "fpt %s %s %s" (h base) (f field) (h heap)) set)
    (Solution.collapsed_fld_pts s);
  Hashtbl.iter
    (fun invo targets -> Int_set.iter (fun meth -> add "cg %s %s" (i invo) (m meth)) targets)
    (Solution.call_targets s);
  Int_set.iter (fun meth -> add "reach %s" (m meth)) (Solution.reachable_meths s);
  let exc_seen = Hashtbl.create 64 in
  Solution.iter_exc_pts s (fun ~meth ~ctx:_ ~heap ~hctx:_ ->
      Hashtbl.replace exc_seen (meth, heap) ());
  Hashtbl.iter (fun (meth, heap) () -> add "exc %s %s" (m meth) (h heap)) exc_seen;
  List.sort_uniq compare !acc

let full_lines (s : Solution.t) =
  let v, h, f, m, i = namers s in
  let c = ctx_str s in
  let acc = ref [] in
  let add fmt = Printf.ksprintf (fun str -> acc := str :: !acc) fmt in
  Solution.iter_var_pts s (fun ~var ~ctx ~heap ~hctx ->
      add "vpt %s %s %s %s" (v var) (c ctx) (h heap) (c hctx));
  Solution.iter_fld_pts s (fun ~base_heap ~base_hctx ~field ~heap ~hctx ->
      add "fpt %s %s %s %s %s" (h base_heap) (c base_hctx) (f field) (h heap) (c hctx));
  Solution.iter_static_fld_pts s (fun ~field ~heap ~hctx ->
      add "sfpt %s %s %s" (f field) (h heap) (c hctx));
  Solution.iter_cg s (fun ~invo ~caller ~meth ~callee ->
      add "cg %s %s %s %s" (i invo) (c caller) (m meth) (c callee));
  Solution.iter_reachable s (fun ~meth ~ctx -> add "reach %s %s" (m meth) (c ctx));
  Solution.iter_exc_pts s (fun ~meth ~ctx ~heap ~hctx ->
      add "exc %s %s %s %s" (m meth) (c ctx) (h heap) (c hctx));
  List.sort_uniq compare !acc

let write ?(full = false) s ~path =
  let lines = if full then full_lines s else collapsed_lines s in
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun line ->
          Out_channel.output_string oc line;
          Out_channel.output_char oc '\n')
        lines)

(* Merge walk over two sorted lists. *)
let diff a b =
  let rec go a b only_a only_b =
    match (a, b) with
    | [], [] -> (List.rev only_a, List.rev only_b)
    | x :: a', [] -> go a' [] (x :: only_a) only_b
    | [], y :: b' -> go [] b' only_a (y :: only_b)
    | x :: a', y :: b' ->
      if x = y then go a' b' only_a only_b
      else if x < y then go a' b (x :: only_a) only_b
      else go a b' only_a (y :: only_b)
  in
  go a b [] []
