(** Stable textual dumps of analysis results.

    One fact per line, entities rendered by name and contexts decoded to
    their element sequences, sorted — so dumps are diffable across runs,
    machines, and even across engines (the Datalog backend produces the same
    lines). Used for regression testing and for eyeballing what changed
    between two analyses. *)

val collapsed_lines : Ipa_core.Solution.t -> string list
(** Context-insensitive projection: [vpt var heap], [fpt heap field heap],
    [cg invo meth], [reach meth], [exc meth heap]. Sorted, deduplicated. *)

val full_lines : Ipa_core.Solution.t -> string list
(** The full context-sensitive relations, contexts decoded. Sorted. *)

val write : ?full:bool -> Ipa_core.Solution.t -> path:string -> unit

val diff : string list -> string list -> string list * string list
(** [diff a b] is [(only_in_a, only_in_b)]; inputs must be sorted. *)
