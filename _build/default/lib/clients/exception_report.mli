(** Exception-flow client: what escapes, and what does each handler see?

    Built on the analysis's escaping-exception relation: reports the
    exception objects that may reach an entry point uncaught, and the
    contents of every catch variable (collapsed over contexts). *)

type uncaught = {
  entry : Ipa_ir.Program.meth_id;
  objects : Ipa_ir.Program.heap_id list;
}

val uncaught : Ipa_core.Solution.t -> uncaught list
(** Per entry point with a non-empty escape set. *)

type handler = {
  meth : Ipa_ir.Program.meth_id;
  clause : int;  (** index in the method's catch chain *)
  catch_type : Ipa_ir.Program.class_id;
  objects : Ipa_ir.Program.heap_id list;  (** what the clause may bind *)
}

val handlers : Ipa_core.Solution.t -> handler list
(** Every catch clause of a reachable method (empty binding lists included —
    a dead handler is a finding too). *)

val print : Ipa_core.Solution.t -> unit
