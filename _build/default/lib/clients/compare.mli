(** Precision diff between two analyses of the same program.

    Answers "what did the extra context buy?" site by site: casts proven
    safe, call sites devirtualized, methods shown unreachable, exceptions
    shown caught — the per-program-element view behind the aggregate deltas
    in the paper's Figures 5-7. The first solution is conventionally the
    coarser one (e.g. insens), the second the finer one (e.g. 2objH or an
    introspective variant). *)

type delta = {
  casts_proven_safe : (Ipa_ir.Program.meth_id * Ipa_ir.Program.class_id) list;
      (** casts unsafe under the first analysis, safe under the second *)
  casts_lost : (Ipa_ir.Program.meth_id * Ipa_ir.Program.class_id) list;
      (** the reverse direction — non-empty only if the "finer" analysis is
          not actually a refinement *)
  devirtualized : Ipa_ir.Program.invo_id list;
      (** polymorphic sites that became monomorphic or unreachable *)
  newly_unreachable : Ipa_ir.Program.meth_id list;
      (** methods reachable only under the first analysis *)
  uncaught_delta : int;
      (** first's uncaught-exception sites minus second's *)
}

val diff : Ipa_core.Solution.t -> Ipa_core.Solution.t -> delta
(** Raises [Invalid_argument] when the two solutions analyze different
    programs (compared physically). *)

val print : Ipa_core.Solution.t -> Ipa_core.Solution.t -> unit
