module Program = Ipa_ir.Program
module Int_set = Ipa_support.Int_set
module Solution = Ipa_core.Solution

type uncaught = {
  entry : Program.meth_id;
  objects : Program.heap_id list;
}

let uncaught (s : Solution.t) =
  let entries = Program.entries s.program in
  let per_entry = Hashtbl.create 4 in
  Solution.iter_exc_pts s (fun ~meth ~ctx:_ ~heap ~hctx:_ ->
      if List.mem meth entries then begin
        let set =
          match Hashtbl.find_opt per_entry meth with
          | Some set -> set
          | None ->
            let set = Int_set.create () in
            Hashtbl.add per_entry meth set;
            set
        in
        ignore (Int_set.add set heap)
      end);
  List.filter_map
    (fun entry ->
      match Hashtbl.find_opt per_entry entry with
      | Some set -> Some { entry; objects = Int_set.to_sorted_list set }
      | None -> None)
    entries

type handler = {
  meth : Program.meth_id;
  clause : int;
  catch_type : Program.class_id;
  objects : Program.heap_id list;
}

let handlers (s : Solution.t) =
  let p = s.program in
  let vpt = Solution.collapsed_var_pts s in
  let reachable = Solution.reachable_meths s in
  let out = ref [] in
  for m = Program.n_meths p - 1 downto 0 do
    if Int_set.mem reachable m then
      Array.iteri
        (fun i (clause : Program.catch_clause) ->
          out :=
            {
              meth = m;
              clause = i;
              catch_type = clause.catch_type;
              objects = Int_set.to_sorted_list vpt.(clause.catch_var);
            }
            :: !out)
        (Program.meth_info p m).catches
  done;
  !out

let print (s : Solution.t) =
  let p = s.program in
  let heaps hs = String.concat ", " (List.map (Program.heap_full_name p) hs) in
  (match uncaught s with
  | [] -> print_endline "no exceptions escape the entry points"
  | us ->
    List.iter
      (fun { entry; objects } ->
        Printf.printf "UNCAUGHT at %s: {%s}\n" (Program.meth_full_name p entry) (heaps objects))
      us);
  List.iter
    (fun { meth; clause; catch_type; objects } ->
      Printf.printf "%s catch[%d] (%s): %s\n" (Program.meth_full_name p meth) clause
        (Program.class_name p catch_type)
        (match objects with [] -> "(never reached)" | hs -> "{" ^ heaps hs ^ "}"))
    (handlers s)
