(** Export a program as a standalone Datalog points-to analysis.

    Emits the program's input relations as [.dl] facts (entities rendered as
    readable symbols) together with the context-insensitive points-to rules
    written in the {!Ipa_datalog.Dl} surface language — the paper's Figure 3
    with the context columns erased, as an executable artifact:

    {v introspect export-dl prog.jir -o prog.dl && introspect datalog prog.dl v}

    reproduces the native insensitive [VarPointsTo]/[CallGraph] (asserted by
    tests). Exception flow is omitted — ordered catch-chain routing needs
    the external routing function that the pure surface language does not
    have (the {!Ipa_core.Datalog_backend} covers it with guards). *)

val facts : Ipa_ir.Program.t -> string
(** Declarations plus ground facts for every input relation, including the
    subtype and dispatch tables. *)

val insens_rules : string
(** The context-insensitive analysis rules ([.decl]s of the computed
    relations included). *)

val script : Ipa_ir.Program.t -> string
(** [insens_rules ^ facts p] plus [.output] directives for [vpt], [fpt],
    [cg] and [reach] — a complete, runnable program. *)
