module Program = Ipa_ir.Program

let insens_rules =
  {|// Context-insensitive points-to analysis: the paper's Figure 3 rules with
// the context columns erased (plus casts, static calls, static fields).
.decl vpt(2)      // variable, heap
.decl fpt(3)      // base heap, field, heap
.decl sfpt(2)     // static field, heap
.decl cg(2)       // invocation, target method
.decl reach(1)    // method

reach(M) :- entry(M).
vpt(V, H) :- reach(M), alloc(V, H, M).
vpt(T, H) :- move(T, S), vpt(S, H).
vpt(T, H) :- cast(T, C, S), vpt(S, H), heaptype(H, HT), subtype(HT, C).
vpt(T, H) :- load(T, B, F), vpt(B, BH), fpt(BH, F, H).
fpt(BH, F, H) :- store(B, F, S), vpt(B, BH), vpt(S, H).
vpt(T, H) :- loadstatic(T, F, M), reach(M), sfpt(F, H).
sfpt(F, H) :- storestatic(F, S), vpt(S, H).

cg(I, M2) :- vcall(B, Sg, I, M), reach(M), vpt(B, H), heaptype(H, T), lookup(T, Sg, M2).
cg(I, M2) :- staticcall(I, M2, M), reach(M).
reach(M2) :- cg(_, M2).
vpt(This, H) :-
  vcall(B, Sg, I, M), reach(M), vpt(B, H), heaptype(H, T), lookup(T, Sg, M2),
  thisvar(M2, This).
vpt(F, H) :- cg(I, M2), formalarg(M2, N, F), actualarg(I, N, A), vpt(A, H).
vpt(R, H) :- cg(I, M2), formalreturn(M2, Ret), actualreturn(I, R), vpt(Ret, H).
|}

let input_decls =
  {|.decl entry(1)
.decl alloc(3)        // var, heap, method
.decl move(2)         // to, from (returns are normalized to moves)
.decl cast(3)         // to, type, from
.decl load(3)         // to, base, field
.decl store(3)        // base, field, from
.decl loadstatic(3)   // to, field, method
.decl storestatic(2)  // field, from
.decl vcall(4)        // base, signature, invocation, method
.decl staticcall(3)   // invocation, callee, method
.decl formalarg(3)    // method, index, var
.decl actualarg(3)    // invocation, index, var
.decl formalreturn(2) // method, return var
.decl actualreturn(2) // invocation, receiver var
.decl thisvar(2)      // method, this var
.decl heaptype(2)     // heap, class
.decl lookup(3)       // class, signature, method
.decl subtype(2)      // sub, super
|}

let facts (p : Program.t) =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf input_decls;
  let fact name args =
    Buffer.add_string buf
      (Printf.sprintf "%s(%s).\n" name
         (String.concat ", " (List.map (Printf.sprintf "%S") args)))
  in
  let v = Program.var_full_name p in
  let h = Program.heap_full_name p in
  let f = Program.field_full_name p in
  let m = Program.meth_full_name p in
  let cls = Program.class_name p in
  let sg s =
    let si = Program.sig_info p s in
    Printf.sprintf "%s/%d" si.sig_name si.arity
  in
  let i invo = (Program.invo_info p invo).invo_name in
  List.iter (fun entry -> fact "entry" [ m entry ]) (Program.entries p);
  for meth = 0 to Program.n_meths p - 1 do
    let mi = Program.meth_info p meth in
    (match mi.this_var with Some this -> fact "thisvar" [ m meth; v this ] | None -> ());
    Array.iteri (fun n arg -> fact "formalarg" [ m meth; string_of_int n; v arg ]) mi.formals;
    (match mi.ret_var with Some ret -> fact "formalreturn" [ m meth; v ret ] | None -> ());
    Array.iter
      (fun (instr : Program.instr) ->
        match instr with
        | Alloc { target; heap } -> fact "alloc" [ v target; h heap; m meth ]
        | Move { target; source } -> fact "move" [ v target; v source ]
        | Cast { target; source; cast_to } -> fact "cast" [ v target; cls cast_to; v source ]
        | Load { target; base; field } -> fact "load" [ v target; v base; f field ]
        | Store { base; field; source } -> fact "store" [ v base; f field; v source ]
        | Load_static { target; field } -> fact "loadstatic" [ v target; f field; m meth ]
        | Store_static { field; source } -> fact "storestatic" [ f field; v source ]
        | Return { source } -> (
          match mi.ret_var with
          | Some ret -> fact "move" [ v ret; v source ]
          | None -> ())
        | Throw _ -> () (* not modeled in the surface-language export *)
        | Call invo -> (
          let ii = Program.invo_info p invo in
          Array.iteri (fun n a -> fact "actualarg" [ i invo; string_of_int n; v a ]) ii.actuals;
          (match ii.recv with Some r -> fact "actualreturn" [ i invo; v r ] | None -> ());
          match ii.call with
          | Virtual { base; signature } -> fact "vcall" [ v base; sg signature; i invo; m meth ]
          | Static { callee } -> fact "staticcall" [ i invo; m callee; m meth ]))
      mi.body
  done;
  for heap = 0 to Program.n_heaps p - 1 do
    fact "heaptype" [ h heap; cls (Program.heap_info p heap).heap_class ]
  done;
  Program.iter_dispatch p (fun c s target -> fact "lookup" [ cls c; sg s; m target ]);
  for sub = 0 to Program.n_classes p - 1 do
    for super = 0 to Program.n_classes p - 1 do
      if Program.subtype p ~sub ~super then fact "subtype" [ cls sub; cls super ]
    done
  done;
  Buffer.contents buf

let script p =
  insens_rules ^ facts p ^ ".output vpt\n.output fpt\n.output cg\n.output reach\n"
