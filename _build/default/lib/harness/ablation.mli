(** Ablation studies around the paper's design choices (§3's "mix-and-match"
    discussion and the constants' robustness claim).

    Three studies, each printing a table:

    - {b knob}: sweep the heuristic constants across orders of magnitude on
      the explosive benchmarks. The paper claims "even relatively large
      variations of these numbers make scarcely any difference" — visible
      here as a plateau around the defaults, with collapse to insens on one
      side and to the full (exploding) analysis on the other.
    - {b grid}: every context-sensitivity flavor (including 1-deep variants
      and the hybrid flavor of Kastrinis & Smaragdakis) on every benchmark —
      the scalability landscape that motivates introspection. Also shows
      hybrid tracking object-sensitivity, as the related-work section
      asserts.
    - {b components}: Heuristic A with parts disabled (only the in-flow
      condition, only the var-field condition, only the object condition),
      quantifying what each cost signal contributes. *)

val knob : Config.t -> unit

val grid : Config.t -> unit

val components : Config.t -> unit

val field_sensitivity : Config.t -> unit
(** Field-sensitive (the paper's model) vs field-based (all base objects of
    a field merged) handling: cost and precision, context-insensitive and
    2objH, on the moderate benchmarks. *)

val client_driven : Config.t -> unit
(** The §5 comparison: a query-driven refinement baseline (dependence-slice
    selection, {!Ipa_core.Client_driven}) against introspection. Per-query it
    is cheap; asked to serve {e all} cast queries at once it converges to the
    full analysis and its timeouts — the paper's argument for cost-based,
    query-agnostic selection in the all-points setting. *)

val hard_coded : Config.t -> unit
(** The §5 status quo: expert-written static skip lists (Doop/Wala-style
    "analyze these classes/methods context-insensitively"). The list tuned
    for hsqldb's registry rescues hsqldb but not jython and vice versa —
    hard-coded heuristics do not transfer, which is the motivation for
    introspection. *)

val print_all : Config.t -> unit
