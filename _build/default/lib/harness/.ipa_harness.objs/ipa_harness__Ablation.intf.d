lib/harness/ablation.mli: Config
