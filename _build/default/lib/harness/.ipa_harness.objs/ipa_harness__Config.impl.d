lib/harness/config.ml:
