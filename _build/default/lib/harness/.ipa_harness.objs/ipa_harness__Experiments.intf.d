lib/harness/experiments.mli: Config Ipa_core
