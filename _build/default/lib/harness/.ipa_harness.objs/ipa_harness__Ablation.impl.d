lib/harness/ablation.ml: Array Config Fun Ipa_core Ipa_ir Ipa_support Ipa_synthetic List Option Printf String
