lib/harness/config.mli:
