lib/harness/experiments.ml: Config Ipa_core Ipa_support Ipa_synthetic List Printf
