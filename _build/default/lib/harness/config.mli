(** Harness configuration shared by all experiments. *)

type t = {
  scale : float;  (** benchmark size multiplier (1.0 = paper-shaped runs) *)
  budget : int;
      (** solver derivation budget — the deterministic stand-in for the
          paper's 90-minute timeout. 0 disables it. *)
}

val default : t
(** [scale = 1.0], [budget = 10_000_000] — calibrated so that exactly the
    paper's non-terminating (benchmark, analysis) pairs exceed it. *)

val timeout_label : string
(** How a budget-exceeded run is rendered in tables. *)
