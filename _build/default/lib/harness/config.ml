type t = { scale : float; budget : int }

let default = { scale = 1.0; budget = 10_000_000 }

let timeout_label = "timeout"
