module Interner = Ipa_support.Interner
module Program = Ipa_ir.Program

module Elem = struct
  type kind = Heap | Invo | Type

  (* Tag in bits 32..33, id in bits 0..31. *)
  let tag_heap = 0
  let tag_invo = 1
  let tag_type = 2

  let make tag id =
    assert (id >= 0 && id < 1 lsl 32);
    (tag lsl 32) lor id

  let heap h = make tag_heap h
  let invo i = make tag_invo i
  let ty c = make tag_type c

  let kind e =
    match e lsr 32 with
    | 0 -> Heap
    | 1 -> Invo
    | 2 -> Type
    | t -> invalid_arg (Printf.sprintf "Ctx.Elem.kind: bad tag %d" t)

  let id e = e land ((1 lsl 32) - 1)

  let to_string p e =
    match kind e with
    | Heap -> Program.heap_full_name p (id e)
    | Invo -> (Program.invo_info p (id e)).invo_name
    | Type -> Program.class_name p (id e)
end

type t = int array Interner.t

let create () : t =
  let t = Interner.create ~dummy:[||] () in
  let zero = Interner.intern t [||] in
  assert (zero = 0);
  t

let empty = 0

let intern = Interner.intern

let elems = Interner.value

let push_trunc t ctx ~elem ~keep =
  if keep <= 0 then empty
  else begin
    let old = elems t ctx in
    let n = min keep (Array.length old + 1) in
    let fresh = Array.make n elem in
    Array.blit old 0 fresh 1 (n - 1);
    intern t fresh
  end

let trunc t ctx ~keep =
  if keep <= 0 then empty
  else begin
    let old = elems t ctx in
    if Array.length old <= keep then ctx else intern t (Array.sub old 0 keep)
  end

let count = Interner.count

let to_string t p ctx =
  let parts = Array.to_list (Array.map (Elem.to_string p) (elems t ctx)) in
  "[" ^ String.concat ", " parts ^ "]"
