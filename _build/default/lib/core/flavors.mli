(** The context-sensitivity flavors evaluated in the paper.

    Each flavor is a {!Strategy.t} instance over {!Ctx} tables. Depths follow
    the paper's naming: ["2objH"] is 2-object-sensitive with a 1-deep
    context-sensitive heap, etc.

    - {b Insensitive}: every constructor returns the empty context — the
      paper's first-pass configuration.
    - {b Call-site} ([kcallH]): [merge]/[merge_static] push the invocation
      site, truncated to [depth]; [record] keeps the first [heap] elements of
      the allocating context.
    - {b Object} ([kobjH]): [merge] pushes the receiver's allocation site
      onto the receiver's heap context; static calls propagate the caller
      context unchanged; [record] as above.
    - {b Type} ([ktypeH]): like object-sensitivity but each element is the
      class {e containing the allocation site} of the would-be object
      element (Smaragdakis et al., POPL'11).
    - {b Hybrid} (extension; Kastrinis & Smaragdakis, PLDI'13): virtual calls
      behave object-sensitively; static calls push the invocation site on top
      of the caller's elements (keeping [depth]+1 elements); [record] drops
      leading invocation-site elements before truncating, so heap contexts
      stay object-based. *)

type spec =
  | Insensitive
  | Call_site of { depth : int; heap : int }
  | Object_sens of { depth : int; heap : int }
  | Type_sens of { depth : int; heap : int }
  | Hybrid of { depth : int; heap : int }

val strategy : Ipa_ir.Program.t -> spec -> Strategy.t
(** Raises [Invalid_argument] on non-positive depths. *)

val to_string : spec -> string
(** Paper-style names: ["insens"], ["2objH"], ["1callH"], ["2typeH"],
    ["2hybH"], .... A heap depth other than [1] is suffixed, e.g.
    ["2objH2"]. *)

val of_string : string -> spec option
(** Inverse of {!to_string}; also accepts ["2obj"] (heap depth 0),
    ["insensitive"]. *)

val all_named : (string * spec) list
(** The flavors exercised by the benchmark harness. *)
