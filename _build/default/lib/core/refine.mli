(** The paper's [ObjectToRefine] / [SiteToRefine] input relations.

    In the first (context-insensitive) pass both relations are empty; in the
    introspective second pass they hold {e almost all} program elements — all
    but the ones a heuristic flagged as too expensive. As the paper's
    footnote 4 notes, it is efficient to represent them in complement form,
    which is what {!All_except} does. *)

type t =
  | None_
      (** Both relations empty: every element uses the default constructors
          (a plain, non-introspective analysis). *)
  | All_except of { skip_objects : Ipa_support.Int_set.t; skip_sites : Ipa_support.Int_set.t }
      (** Refine everything except the flagged elements. [skip_sites] holds
          packed [(invo, meth)] pairs (see {!pack_site}). *)

val pack_site : invo:Ipa_ir.Program.invo_id -> meth:Ipa_ir.Program.meth_id -> int
(** Packs an invocation-site/target-method pair into one int ([meth] must be
    below [2^28]). *)

val unpack_site : int -> Ipa_ir.Program.invo_id * Ipa_ir.Program.meth_id

val refine_object : t -> Ipa_ir.Program.heap_id -> bool
(** Does this allocation site use the {e refined} constructors? *)

val refine_site : t -> invo:Ipa_ir.Program.invo_id -> meth:Ipa_ir.Program.meth_id -> bool

val skipped_counts : t -> int * int
(** [(objects, sites)] flagged to keep the default context — [(0, 0)] for
    {!None_}. *)
