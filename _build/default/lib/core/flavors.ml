module Program = Ipa_ir.Program

type spec =
  | Insensitive
  | Call_site of { depth : int; heap : int }
  | Object_sens of { depth : int; heap : int }
  | Type_sens of { depth : int; heap : int }
  | Hybrid of { depth : int; heap : int }

let check_depths ~depth ~heap what =
  if depth <= 0 then invalid_arg (Printf.sprintf "Flavors.%s: depth must be positive" what);
  if heap < 0 then invalid_arg (Printf.sprintf "Flavors.%s: heap depth must be non-negative" what)

let insensitive_name = "insens"

let heap_suffix = function 0 -> "" | 1 -> "H" | h -> Printf.sprintf "H%d" h

let to_string = function
  | Insensitive -> insensitive_name
  | Call_site { depth; heap } -> Printf.sprintf "%dcall%s" depth (heap_suffix heap)
  | Object_sens { depth; heap } -> Printf.sprintf "%dobj%s" depth (heap_suffix heap)
  | Type_sens { depth; heap } -> Printf.sprintf "%dtype%s" depth (heap_suffix heap)
  | Hybrid { depth; heap } -> Printf.sprintf "%dhyb%s" depth (heap_suffix heap)

let of_string s =
  if s = insensitive_name || s = "insensitive" then Some Insensitive
  else
    (* Shape: <depth><kind>[H[<heapdepth>]] *)
    let n = String.length s in
    let rec digits i = if i < n && s.[i] >= '0' && s.[i] <= '9' then digits (i + 1) else i in
    let d_end = digits 0 in
    if d_end = 0 then None
    else
      let depth = int_of_string (String.sub s 0 d_end) in
      let rec letters i = if i < n && s.[i] >= 'a' && s.[i] <= 'z' then letters (i + 1) else i in
      let k_end = letters d_end in
      let kind = String.sub s d_end (k_end - d_end) in
      let heap =
        if k_end = n then Some 0
        else if s.[k_end] <> 'H' then None
        else if k_end + 1 = n then Some 1
        else
          let h_end = digits (k_end + 1) in
          if h_end = n && h_end > k_end + 1 then
            Some (int_of_string (String.sub s (k_end + 1) (h_end - k_end - 1)))
          else None
      in
      match (kind, heap) with
      | _, None -> None
      | _, Some heap when depth <= 0 || heap < 0 -> None
      | "call", Some heap -> Some (Call_site { depth; heap })
      | "obj", Some heap -> Some (Object_sens { depth; heap })
      | "type", Some heap -> Some (Type_sens { depth; heap })
      | "hyb", Some heap -> Some (Hybrid { depth; heap })
      | _, Some _ -> None

let all_named =
  List.map
    (fun spec -> (to_string spec, spec))
    [
      Insensitive;
      Call_site { depth = 1; heap = 1 };
      Call_site { depth = 2; heap = 1 };
      Object_sens { depth = 1; heap = 1 };
      Object_sens { depth = 2; heap = 1 };
      Type_sens { depth = 2; heap = 1 };
      Hybrid { depth = 2; heap = 1 };
    ]

let insensitive_strategy : Strategy.t =
  {
    name = insensitive_name;
    record = (fun _ ~heap:_ ~ctx:_ -> Ctx.empty);
    merge = (fun _ ~heap:_ ~hctx:_ ~invo:_ ~caller:_ -> Ctx.empty);
    merge_static = (fun _ ~invo:_ ~caller:_ -> Ctx.empty);
  }

(* Heap contexts are the first [heap] elements of the allocating method's
   calling context — the standard "context-sensitive heap" construction. *)
let record_prefix heap_depth tbl ~heap:_ ~ctx = Ctx.trunc tbl ctx ~keep:heap_depth

let call_site ~depth ~heap : Strategy.t =
  let push tbl invo caller = Ctx.push_trunc tbl caller ~elem:(Ctx.Elem.invo invo) ~keep:depth in
  {
    name = Printf.sprintf "%dcall%s" depth (heap_suffix heap);
    record = record_prefix heap;
    merge = (fun tbl ~heap:_ ~hctx:_ ~invo ~caller -> push tbl invo caller);
    merge_static = (fun tbl ~invo ~caller -> push tbl invo caller);
  }

let object_sens ~depth ~heap : Strategy.t =
  {
    name = Printf.sprintf "%dobj%s" depth (heap_suffix heap);
    record = record_prefix heap;
    merge =
      (fun tbl ~heap:h ~hctx ~invo:_ ~caller:_ ->
        Ctx.push_trunc tbl hctx ~elem:(Ctx.Elem.heap h) ~keep:depth);
    merge_static = (fun _ ~invo:_ ~caller -> caller);
  }

(* The type element of an allocation site: the class containing the site
   (i.e. the class declaring the allocating method), per Smaragdakis et al.
   POPL'11. *)
let heap_type_elem p h = Ctx.Elem.ty (Program.meth_info p (Program.heap_info p h).heap_owner).meth_owner

let type_sens p ~depth ~heap : Strategy.t =
  {
    name = Printf.sprintf "%dtype%s" depth (heap_suffix heap);
    record = record_prefix heap;
    merge =
      (fun tbl ~heap:h ~hctx ~invo:_ ~caller:_ ->
        Ctx.push_trunc tbl hctx ~elem:(heap_type_elem p h) ~keep:depth);
    merge_static = (fun _ ~invo:_ ~caller -> caller);
  }

let hybrid ~depth ~heap : Strategy.t =
  let strip_invos tbl ctx =
    let es = Ctx.elems tbl ctx in
    let n = Array.length es in
    let rec first_obj i = if i < n && Ctx.Elem.kind es.(i) = Ctx.Elem.Invo then first_obj (i + 1) else i in
    let k = first_obj 0 in
    if k = 0 then ctx else Ctx.intern tbl (Array.sub es k (n - k))
  in
  {
    name = Printf.sprintf "%dhyb%s" depth (heap_suffix heap);
    record = (fun tbl ~heap:_ ~ctx -> Ctx.trunc tbl (strip_invos tbl ctx) ~keep:heap);
    merge =
      (fun tbl ~heap:h ~hctx ~invo:_ ~caller:_ ->
        Ctx.push_trunc tbl hctx ~elem:(Ctx.Elem.heap h) ~keep:depth);
    merge_static =
      (fun tbl ~invo ~caller ->
        (* Push the call site but never displace object elements past depth:
           keep the site plus up to [depth] elements of the caller. *)
        Ctx.push_trunc tbl (strip_invos tbl caller) ~elem:(Ctx.Elem.invo invo) ~keep:(depth + 1));
  }

let strategy p = function
  | Insensitive -> insensitive_strategy
  | Call_site { depth; heap } ->
    check_depths ~depth ~heap "call_site";
    call_site ~depth ~heap
  | Object_sens { depth; heap } ->
    check_depths ~depth ~heap "object_sens";
    object_sens ~depth ~heap
  | Type_sens { depth; heap } ->
    check_depths ~depth ~heap "type_sens";
    type_sens p ~depth ~heap
  | Hybrid { depth; heap } ->
    check_depths ~depth ~heap "hybrid";
    hybrid ~depth ~heap
