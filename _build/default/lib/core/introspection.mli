(** The paper's six cost metrics (§3, "Metrics and heuristics").

    Computed over the context-insensitive projection of a points-to solution
    (in the introspective workflow, over the first-pass solution, where the
    projection is the identity):

    + {b argument in-flow} (per invocation site): cumulative size of the
      points-to sets of the call's actual arguments;
    + {b total points-to volume} (per method): cumulative size of the
      points-to sets of the method's local variables — with a {b max
      var-points-to} variant taking the maximum instead;
    + {b total field points-to} (per object): cumulative field-points-to set
      size over the object's fields — with a {b max field points-to} variant;
    + {b max var-field points-to} (per method): maximum {e max field
      points-to} among objects pointed to by the method's locals;
    + {b pointed-by-vars} (per object): number of variables pointing to it;
    + {b pointed-by-objs} (per object): number of (object, field) pairs
      pointing to it. *)

type t = {
  in_flow : int array;  (** per invocation site; 0 when unreachable *)
  meth_total_volume : int array;  (** metric 2 *)
  meth_max_var : int array;  (** metric 2, max variant *)
  obj_total_field : int array;  (** metric 3, total variant *)
  obj_max_field : int array;  (** metric 3 *)
  meth_max_var_field : int array;  (** metric 4 *)
  pointed_by_vars : int array;  (** metric 5 *)
  pointed_by_objs : int array;  (** metric 6 *)
}

val compute : Solution.t -> t
