(** Context constructors — the paper's [Record] and [Merge] functions.

    A strategy packages the constructor functions that fully determine a
    context-sensitivity flavor (paper §2, "Constructors for
    context-sensitivity"):

    - [record heap ctx]: the heap context given to an object allocated at
      [heap] by a method running in calling context [ctx];
    - [merge heap hctx invo caller]: the callee's calling context for a
      virtual call at site [invo] on a receiver object [(heap, hctx)] from
      calling context [caller];
    - [merge_static invo caller]: likewise for static calls (which have no
      receiver; not in the paper's 10-rule model but present in Doop).

    The solver is instantiated with {e two} strategies — default and refined —
    and the {!Refine} sets select which one applies at each allocation/call
    site. That is exactly the paper's [Record]/[RecordRefined] and
    [Merge]/[MergeRefined] machinery. *)

type t = {
  name : string;
  record : Ctx.t -> heap:Ipa_ir.Program.heap_id -> ctx:int -> int;
  merge :
    Ctx.t -> heap:Ipa_ir.Program.heap_id -> hctx:int -> invo:Ipa_ir.Program.invo_id -> caller:int -> int;
  merge_static : Ctx.t -> invo:Ipa_ir.Program.invo_id -> caller:int -> int;
}
