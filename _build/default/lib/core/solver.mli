(** The native points-to solver: Figure 3 of the paper as a worklist fixpoint.

    The solver computes a flow-insensitive, field-sensitive, context-sensitive
    Andersen-style points-to analysis with on-the-fly call-graph construction,
    over a pointer-assignment graph whose nodes are [(variable, context)]
    pairs, [(object, field)] pairs, and static fields. Copy edges carry
    optional cast filters.

    Context-sensitivity is fully delegated to two {!Strategy.t} values plus a
    {!Refine.t} selector — the paper's [Record]/[RecordRefined] and
    [Merge]/[MergeRefined] constructors and the [ObjectToRefine]/
    [SiteToRefine] relations. Every allocation consults [refine_object]; every
    call-graph edge consults [refine_site] with the dispatch target.

    A configurable derivation budget bounds the number of tuple insertions;
    exceeding it aborts with [Solution.Budget_exceeded] — our deterministic
    substitute for the paper's 90-minute wall-clock timeout. *)

(** Worklist discipline. The computed fixpoint is identical either way
    (asserted by property tests); only the visit order — and hence wall-clock
    constants — differs. *)
type worklist_order = Lifo | Fifo

type config = {
  default_strategy : Strategy.t;  (** for elements outside the refine sets *)
  refined_strategy : Strategy.t;  (** for elements inside the refine sets *)
  refine : Refine.t;
  budget : int;  (** max derivations; [0] means unlimited *)
  order : worklist_order;
  field_sensitive : bool;
      (** [false] degrades field handling to a field-based analysis (all base
          objects of a field collapse) — an ablation of a design choice the
          paper's model takes for granted. *)
}

val plain : Ipa_ir.Program.t -> ?budget:int -> Strategy.t -> config
(** A non-introspective configuration: [strategy] everywhere, empty refine
    sets, LIFO worklist, field-sensitive. *)

val run : Ipa_ir.Program.t -> config -> Solution.t
(** Run to fixpoint (or budget exhaustion) from the program's entry points. *)
