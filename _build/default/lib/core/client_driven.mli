(** A client-driven refinement baseline, for comparison with introspection.

    The paper's related-work section (§5) contrasts introspective
    context-sensitivity with demand- and client-driven refinement (Guyer &
    Lin; Sridharan & Bodík; Liang & Naik): those techniques pick {e what to
    refine} from the needs of a specific query, estimating {e benefit},
    where introspection is query-agnostic and estimates {e cost}. This
    module implements a simplified query-driven selector in our framework —
    demonstrating both §3's claim that the two-constructor model
    accommodates arbitrary selection policies, and §5's argument about why
    benefit-driven selection does not replace introspection for all-points
    analysis (refining for {e every} query converges to the full analysis
    and its blow-ups; see the harness study).

    The selector computes, over the context-insensitive first pass, the
    backward dependence slice of the query variables through the pointer
    assignment graph (copies, loads/stores via the points-to sets, calls via
    the call graph, exception flow), and refines exactly the call sites and
    allocation sites that slice touches. *)

type query = Ipa_ir.Program.var_id list
(** The variables whose points-to precision the client cares about (e.g. the
    sources of the casts it wants proven safe). *)

val select : Solution.t -> query -> Refine.t
(** [select base query] — [base] must be a context-insensitive solution.
    Returns the refine sets covering the query's dependence slice. *)

val selection_size : Solution.t -> Refine.t -> int * int
(** [(refined sites, refined objects)] implied by the complement sets, using
    the same candidate universes as {!Heuristics.selection_stats}. *)

val cast_queries : Solution.t -> (Ipa_ir.Program.var_id * Ipa_ir.Program.class_id) list
(** Convenience: the source variable and target type of every cast in a
    reachable method — the standard cast-safety client's query set. *)
