(** High-level drivers: plain and introspective analyses.

    This is the main entry point of the library. [run_plain] executes one
    context-sensitivity flavor directly; [run_introspective] implements the
    paper's two-pass recipe:

    + run a context-insensitive analysis;
    + compute the {!Introspection} cost metrics over its results;
    + apply a {!Heuristics} to populate the refine sets;
    + re-run with default = context-insensitive constructors and refined =
      the requested flavor's constructors.

    As in the paper's evaluation, the reported time of an introspective
    analysis is the second pass only (the first pass is a reusable,
    uniformly cheap artifact). *)

type result = {
  label : string;  (** e.g. ["2objH"] or ["2objH-IntroA"] *)
  solution : Solution.t;
  seconds : float;  (** wall-clock of the solver run *)
  timed_out : bool;  (** derivation budget exceeded; tables are partial *)
}

val run_plain : ?budget:int -> Ipa_ir.Program.t -> Flavors.spec -> result
(** [budget] is the maximum number of derivations (default unlimited). *)

type introspective = {
  base : result;  (** the context-insensitive first pass *)
  metrics : Introspection.t;
  heuristic : Heuristics.t;
  refine : Refine.t;
  selection : Heuristics.stats;
  second : result;  (** the refined second pass *)
}

val run_introspective :
  ?budget:int -> Ipa_ir.Program.t -> Flavors.spec -> Heuristics.t -> introspective
(** The [budget] applies to each pass separately. If the first pass itself
    exceeds the budget (which defeats the technique's premise), the
    heuristics run on its partial results and [base.timed_out] is set. *)

(** {1 Client-driven baseline} *)

type client_driven = {
  cd_base : result;  (** the context-insensitive first pass *)
  cd_refine : Refine.t;
  cd_second : result;
}

val run_client_driven :
  ?budget:int -> Ipa_ir.Program.t -> Flavors.spec -> Client_driven.query -> client_driven
(** The §5 comparison baseline: refine only the dependence slice of the
    query variables (see {!Client_driven}), everything else stays
    context-insensitive. *)

(** {1 Mixed context-sensitivity} *)

val run_mixed :
  ?budget:int ->
  Ipa_ir.Program.t ->
  default:Flavors.spec ->
  refined:Flavors.spec ->
  refine:Refine.t ->
  result
(** §3's general form of the machinery: any two flavors side by side, the
    refine sets choosing per allocation/call site — e.g. object-sensitivity
    for the sites in [refine] and call-site-sensitivity elsewhere.
    [run_plain] and the introspective second pass are the two special cases
    the paper evaluates. *)
