module Int_set = Ipa_support.Int_set
module Program = Ipa_ir.Program

type t =
  | A of { k : int; l : int; m : int }
  | B of { p : int; q : int }

let default_a = A { k = 100; l = 100; m = 200 }
let default_b = B { p = 10000; q = 10000 }

let name = function A _ -> "IntroA" | B _ -> "IntroB"

let to_string = function
  | A { k; l; m } -> Printf.sprintf "IntroA(K=%d,L=%d,M=%d)" k l m
  | B { p; q } -> Printf.sprintf "IntroB(P=%d,Q=%d)" p q

(* Candidate call sites are the (invo, target) pairs observed by the first
   pass; a more precise second pass can only see a subset of them. *)
let iter_site_candidates (s : Solution.t) f =
  Hashtbl.iter
    (fun invo targets -> Int_set.iter (fun meth -> f invo meth) targets)
    (Solution.call_targets s)

let select (s : Solution.t) (metrics : Introspection.t) heuristic =
  let skip_objects = Int_set.create () in
  let skip_sites = Int_set.create () in
  (match heuristic with
  | A { k; l; m } ->
    Array.iteri
      (fun h count -> if count > k then ignore (Int_set.add skip_objects h))
      metrics.pointed_by_vars;
    iter_site_candidates s (fun invo meth ->
        if metrics.in_flow.(invo) > l || metrics.meth_max_var_field.(meth) > m then
          ignore (Int_set.add skip_sites (Refine.pack_site ~invo ~meth)))
  | B { p; q } ->
    Array.iteri
      (fun h total_field ->
        if total_field * metrics.pointed_by_vars.(h) > q then
          ignore (Int_set.add skip_objects h))
      metrics.obj_total_field;
    iter_site_candidates s (fun invo meth ->
        if metrics.meth_total_volume.(meth) > p then
          ignore (Int_set.add skip_sites (Refine.pack_site ~invo ~meth))));
  Refine.All_except { skip_objects; skip_sites }

type stats = {
  sites_skipped : int;
  sites_total : int;
  objects_skipped : int;
  objects_total : int;
}

let pct x total = if total = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int total

let pct_sites st = pct st.sites_skipped st.sites_total
let pct_objects st = pct st.objects_skipped st.objects_total

let selection_stats (s : Solution.t) refine =
  let objects_skipped, sites_skipped = Refine.skipped_counts refine in
  let sites_total = ref 0 in
  iter_site_candidates s (fun _ _ -> incr sites_total);
  let reachable = Solution.reachable_meths s in
  let objects_total = ref 0 in
  for h = 0 to Program.n_heaps s.program - 1 do
    if Int_set.mem reachable (Program.heap_info s.program h).heap_owner then incr objects_total
  done;
  { sites_skipped; sites_total = !sites_total; objects_skipped; objects_total = !objects_total }

let static_policy (s : Solution.t) ~skip_class ~skip_meth =
  let p = s.program in
  let skip_objects = Int_set.create () in
  for h = 0 to Program.n_heaps p - 1 do
    if skip_class (Program.class_name p (Program.heap_info p h).heap_class) then
      ignore (Int_set.add skip_objects h)
  done;
  let skip_sites = Int_set.create () in
  iter_site_candidates s (fun invo meth ->
      let mi = Program.meth_info p meth in
      if skip_meth mi.meth_name || skip_class (Program.class_name p mi.meth_owner) then
        ignore (Int_set.add skip_sites (Refine.pack_site ~invo ~meth)));
  Refine.All_except { skip_objects; skip_sites }
