module Int_set = Ipa_support.Int_set
module Pair_tbl = Ipa_support.Pair_tbl
module Dynarr = Ipa_support.Dynarr
module Program = Ipa_ir.Program

type outcome = Complete | Budget_exceeded

type t = {
  program : Program.t;
  ctxs : Ctx.t;
  objs : Pair_tbl.t;
  var_nodes : Pair_tbl.t;
  fld_nodes : Pair_tbl.t;
  pts : Int_set.t option Dynarr.t;
  reach : Pair_tbl.t;
  cg : int Dynarr.t;
  outcome : outcome;
  derivations : int;
  mutable collapsed_vpt_cache : Int_set.t array option;
  mutable collapsed_fpt_cache : (int, Int_set.t) Hashtbl.t option;
  mutable reachable_meths_cache : Int_set.t option;
  mutable call_targets_cache : (int, Int_set.t) Hashtbl.t option;
}

module Node = struct
  let of_var_node id = id * 4
  let of_fld_node id = (id * 4) + 1
  let of_static_fld f = (f * 4) + 2
  let of_exc reach_id = (reach_id * 4) + 3

  type kind = Var_node of int | Fld_node of int | Static_fld of int | Exc_node of int

  let kind n =
    match n mod 4 with
    | 0 -> Var_node (n / 4)
    | 1 -> Fld_node (n / 4)
    | 2 -> Static_fld (n / 4)
    | _ -> Exc_node (n / 4)
end

let node_pts t n =
  if n < Dynarr.length t.pts then Dynarr.get t.pts n else None

let iter_node_objs t n f = match node_pts t n with None -> () | Some s -> Int_set.iter f s

let iter_var_pts t f =
  Pair_tbl.iter
    (fun vn var ctx ->
      iter_node_objs t (Node.of_var_node vn) (fun obj ->
          f ~var ~ctx ~heap:(Pair_tbl.fst t.objs obj) ~hctx:(Pair_tbl.snd t.objs obj)))
    t.var_nodes

let iter_fld_pts t f =
  Pair_tbl.iter
    (fun fn obj field ->
      let base_heap = Pair_tbl.fst t.objs obj in
      let base_hctx = Pair_tbl.snd t.objs obj in
      iter_node_objs t (Node.of_fld_node fn) (fun o ->
          f ~base_heap ~base_hctx ~field ~heap:(Pair_tbl.fst t.objs o)
            ~hctx:(Pair_tbl.snd t.objs o)))
    t.fld_nodes

let iter_static_fld_pts t f =
  for field = 0 to Program.n_fields t.program - 1 do
    if (Program.field_info t.program field).is_static_field then
      iter_node_objs t (Node.of_static_fld field) (fun o ->
          f ~field ~heap:(Pair_tbl.fst t.objs o) ~hctx:(Pair_tbl.snd t.objs o))
  done

let iter_reachable t f = Pair_tbl.iter (fun _ meth ctx -> f ~meth ~ctx) t.reach

let iter_exc_pts t f =
  Pair_tbl.iter
    (fun reach_id meth ctx ->
      iter_node_objs t (Node.of_exc reach_id) (fun o ->
          f ~meth ~ctx ~heap:(Pair_tbl.fst t.objs o) ~hctx:(Pair_tbl.snd t.objs o)))
    t.reach

let iter_cg t f =
  let n = Dynarr.length t.cg / 4 in
  for i = 0 to n - 1 do
    f ~invo:(Dynarr.get t.cg (4 * i))
      ~caller:(Dynarr.get t.cg ((4 * i) + 1))
      ~meth:(Dynarr.get t.cg ((4 * i) + 2))
      ~callee:(Dynarr.get t.cg ((4 * i) + 3))
  done

let collapsed_var_pts t =
  match t.collapsed_vpt_cache with
  | Some a -> a
  | None ->
    let a = Array.init (Program.n_vars t.program) (fun _ -> Int_set.create ~capacity:8 ()) in
    iter_var_pts t (fun ~var ~ctx:_ ~heap ~hctx:_ -> ignore (Int_set.add a.(var) heap));
    t.collapsed_vpt_cache <- Some a;
    a

let fld_pts_key t ~heap ~field = (heap * Program.n_fields t.program) + field

let collapsed_fld_pts t =
  match t.collapsed_fpt_cache with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 1024 in
    let add key heap =
      let s =
        match Hashtbl.find_opt h key with
        | Some s -> s
        | None ->
          let s = Int_set.create ~capacity:8 () in
          Hashtbl.add h key s;
          s
      in
      ignore (Int_set.add s heap)
    in
    iter_fld_pts t (fun ~base_heap ~base_hctx:_ ~field ~heap ~hctx:_ ->
        add (fld_pts_key t ~heap:base_heap ~field) heap);
    t.collapsed_fpt_cache <- Some h;
    h

let reachable_meths t =
  match t.reachable_meths_cache with
  | Some s -> s
  | None ->
    let s = Int_set.create () in
    iter_reachable t (fun ~meth ~ctx:_ -> ignore (Int_set.add s meth));
    t.reachable_meths_cache <- Some s;
    s

let call_targets t =
  match t.call_targets_cache with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 1024 in
    iter_cg t (fun ~invo ~caller:_ ~meth ~callee:_ ->
        let s =
          match Hashtbl.find_opt h invo with
          | Some s -> s
          | None ->
            let s = Int_set.create ~capacity:4 () in
            Hashtbl.add h invo s;
            s
        in
        ignore (Int_set.add s meth));
    t.call_targets_cache <- Some h;
    h

type stats = {
  vpt_tuples : int;
  fpt_tuples : int;
  exc_tuples : int;
  cg_edges : int;
  reach_pairs : int;
  n_contexts : int;
  n_objects : int;
}

let stats t =
  let count_nodes of_node n_ids =
    let total = ref 0 in
    for i = 0 to n_ids - 1 do
      match node_pts t (of_node i) with
      | Some s -> total := !total + Int_set.cardinal s
      | None -> ()
    done;
    !total
  in
  let vpt = count_nodes Node.of_var_node (Pair_tbl.count t.var_nodes) in
  let fpt = count_nodes Node.of_fld_node (Pair_tbl.count t.fld_nodes) in
  let sfpt = count_nodes Node.of_static_fld (Program.n_fields t.program) in
  let exc = count_nodes Node.of_exc (Pair_tbl.count t.reach) in
  {
    vpt_tuples = vpt;
    fpt_tuples = fpt + sfpt;
    exc_tuples = exc;
    cg_edges = Dynarr.length t.cg / 4;
    reach_pairs = Pair_tbl.count t.reach;
    n_contexts = Ctx.count t.ctxs;
    n_objects = Pair_tbl.count t.objs;
  }

let heap_of_obj t obj = Pair_tbl.fst t.objs obj
let hctx_of_obj t obj = Pair_tbl.snd t.objs obj
