(** The paper's three precision metrics (lower is better), plus extras.

    All metrics are computed on the context-insensitive projection of the
    analysis results, as in the paper's evaluation:

    - {b polymorphic virtual call sites} — "calls that cannot be
      devirtualized": reachable virtual call sites whose call-graph edges
      resolve to two or more distinct methods;
    - {b reachable methods};
    - {b casts that may fail}: reachable cast statements whose source may
      point to an object that is not a subtype of the cast target. *)

type t = {
  poly_vcalls : int;
  reachable_methods : int;
  may_fail_casts : int;
  call_edges : int;  (** extra: context-insensitive call-graph edges *)
  avg_var_pts : float;  (** extra: mean collapsed points-to set size over
                            variables with non-empty sets *)
  uncaught_exceptions : int;
      (** extra: exception allocation sites that may escape an entry point *)
}

val compute : Solution.t -> t
