(** Reference implementation: the paper's Figure 3 rules, executed verbatim
    on the generic Datalog engine.

    This backend exists for fidelity and cross-validation: it encodes the
    analysis exactly as the paper's logical model (input relations, computed
    relations, context constructors as external head functions, and the
    refine-set dispatch between default and refined constructors), extended —
    as Doop is — with casts, static calls and static fields so it computes
    the same relations as the native {!Solver}. Integration tests assert
    that both produce identical (context-decoded) relation contents.

    It is orders of magnitude slower than the native solver; use it on small
    and medium programs. *)

type t = {
  ctxs : Ctx.t;
  var_points_to : Ipa_datalog.Relation.t;  (** var, ctx, heap, hctx *)
  fld_points_to : Ipa_datalog.Relation.t;  (** baseHeap, baseHctx, fld, heap, hctx *)
  static_fld_points_to : Ipa_datalog.Relation.t;  (** fld, heap, hctx *)
  exc_points_to : Ipa_datalog.Relation.t;  (** meth, ctx, heap, hctx — escaping exceptions *)
  call_graph : Ipa_datalog.Relation.t;  (** invo, callerCtx, meth, calleeCtx *)
  reachable : Ipa_datalog.Relation.t;  (** meth, ctx *)
  derivations : int;
}

val run :
  Ipa_ir.Program.t ->
  default:Strategy.t ->
  refined:Strategy.t ->
  refine:Refine.t ->
  ?budget:int ->
  unit ->
  t
(** Evaluate to fixpoint. Raises [Ipa_datalog.Engine.Out_of_budget] when the
    budget (0 = unlimited) is exceeded. *)

val run_plain : Ipa_ir.Program.t -> Strategy.t -> t
(** [run] with empty refine sets and the same strategy everywhere. *)
