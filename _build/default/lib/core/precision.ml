module Int_set = Ipa_support.Int_set
module Program = Ipa_ir.Program

type t = {
  poly_vcalls : int;
  reachable_methods : int;
  may_fail_casts : int;
  call_edges : int;
  avg_var_pts : float;
  uncaught_exceptions : int;
}

let compute (s : Solution.t) : t =
  let p = s.program in
  let targets = Solution.call_targets s in
  let poly_vcalls = ref 0 in
  let call_edges = ref 0 in
  Hashtbl.iter
    (fun invo ms ->
      call_edges := !call_edges + Int_set.cardinal ms;
      match (Program.invo_info p invo).call with
      | Virtual _ -> if Int_set.cardinal ms >= 2 then incr poly_vcalls
      | Static _ -> ())
    targets;
  let reachable = Solution.reachable_meths s in
  let vpt = Solution.collapsed_var_pts s in
  let may_fail_casts = ref 0 in
  Int_set.iter
    (fun m ->
      Array.iter
        (fun (i : Program.instr) ->
          match i with
          | Cast { source; cast_to; _ } ->
            let may_fail =
              Int_set.exists
                (fun h ->
                  not
                    (Program.subtype p ~sub:(Program.heap_info p h).heap_class ~super:cast_to))
                vpt.(source)
            in
            if may_fail then incr may_fail_casts
          | Alloc _ | Move _ | Load _ | Store _ | Load_static _ | Store_static _ | Call _
          | Return _ | Throw _ -> ())
        (Program.meth_info p m).body)
    reachable;
  (* Exception objects escaping an entry point, collapsed to allocation
     sites: the program's uncaught exceptions. *)
  let entry_meths = Program.entries p in
  let uncaught = Int_set.create () in
  Solution.iter_exc_pts s (fun ~meth ~ctx:_ ~heap ~hctx:_ ->
      if List.mem meth entry_meths then ignore (Int_set.add uncaught heap));
  let nonempty = ref 0 and total = ref 0 in
  Array.iter
    (fun set ->
      let n = Int_set.cardinal set in
      if n > 0 then begin
        incr nonempty;
        total := !total + n
      end)
    vpt;
  {
    poly_vcalls = !poly_vcalls;
    reachable_methods = Int_set.cardinal reachable;
    may_fail_casts = !may_fail_casts;
    call_edges = !call_edges;
    avg_var_pts = (if !nonempty = 0 then 0.0 else float_of_int !total /. float_of_int !nonempty);
    uncaught_exceptions = Int_set.cardinal uncaught;
  }
