module Program = Ipa_ir.Program
module Relation = Ipa_datalog.Relation
module Rule = Ipa_datalog.Rule
module Engine = Ipa_datalog.Engine

type t = {
  ctxs : Ctx.t;
  var_points_to : Relation.t;
  fld_points_to : Relation.t;
  static_fld_points_to : Relation.t;
  exc_points_to : Relation.t;
  call_graph : Relation.t;
  reachable : Relation.t;
  derivations : int;
}

(* Input (EDB) relations, in the paper's naming. *)
type edb = {
  alloc : Relation.t; (* var, heap, inMeth *)
  move : Relation.t; (* to, from — includes returns normalized to moves *)
  cast : Relation.t; (* to, type, from *)
  load : Relation.t; (* to, base, fld *)
  store : Relation.t; (* base, fld, from *)
  load_static : Relation.t; (* to, fld, inMeth *)
  store_static : Relation.t; (* fld, from *)
  vcall : Relation.t; (* base, sig, invo, inMeth *)
  static_call : Relation.t; (* invo, toMeth, inMeth *)
  formal_arg : Relation.t; (* meth, i, arg *)
  actual_arg : Relation.t; (* invo, i, arg *)
  formal_return : Relation.t; (* meth, ret *)
  actual_return : Relation.t; (* invo, var *)
  this_var : Relation.t; (* meth, this *)
  heap_type : Relation.t; (* heap, type *)
  lookup : Relation.t; (* type, sig, meth *)
  throw : Relation.t; (* var, inMeth *)
  catch_var : Relation.t; (* meth, clause index, var *)
  invo_owner : Relation.t; (* invo, meth *)
}

let build_edb (p : Program.t) : edb =
  let r name arity = Relation.create ~name ~arity in
  let edb =
    {
      alloc = r "Alloc" 3;
      move = r "Move" 2;
      cast = r "Cast" 3;
      load = r "Load" 3;
      store = r "Store" 3;
      load_static = r "LoadStatic" 3;
      store_static = r "StoreStatic" 2;
      vcall = r "VCall" 4;
      static_call = r "StaticCall" 3;
      formal_arg = r "FormalArg" 3;
      actual_arg = r "ActualArg" 3;
      formal_return = r "FormalReturn" 2;
      actual_return = r "ActualReturn" 2;
      this_var = r "ThisVar" 2;
      heap_type = r "HeapType" 2;
      lookup = r "Lookup" 3;
      throw = r "Throw" 2;
      catch_var = r "CatchVar" 3;
      invo_owner = r "InvoOwner" 2;
    }
  in
  let add rel tup = ignore (Relation.add rel tup) in
  for m = 0 to Program.n_meths p - 1 do
    let mi = Program.meth_info p m in
    (match mi.this_var with Some v -> add edb.this_var [| m; v |] | None -> ());
    Array.iteri (fun i v -> add edb.formal_arg [| m; i; v |]) mi.formals;
    (match mi.ret_var with Some v -> add edb.formal_return [| m; v |] | None -> ());
    Array.iter
      (fun (instr : Program.instr) ->
        match instr with
        | Alloc { target; heap } -> add edb.alloc [| target; heap; m |]
        | Move { target; source } -> add edb.move [| target; source |]
        | Cast { target; source; cast_to } -> add edb.cast [| target; cast_to; source |]
        | Load { target; base; field } -> add edb.load [| target; base; field |]
        | Store { base; field; source } -> add edb.store [| base; field; source |]
        | Load_static { target; field } -> add edb.load_static [| target; field; m |]
        | Store_static { field; source } -> add edb.store_static [| field; source |]
        | Throw { source } -> add edb.throw [| source; m |]
        | Call invo -> (
          let ii = Program.invo_info p invo in
          add edb.invo_owner [| invo; m |];
          Array.iteri (fun i v -> add edb.actual_arg [| invo; i; v |]) ii.actuals;
          (match ii.recv with Some v -> add edb.actual_return [| invo; v |] | None -> ());
          match ii.call with
          | Virtual { base; signature } -> add edb.vcall [| base; signature; invo; m |]
          | Static { callee } -> add edb.static_call [| invo; callee; m |])
        | Return { source } -> (
          match mi.ret_var with
          | Some ret -> add edb.move [| ret; source |]
          | None -> assert false))
      mi.body;
    Array.iteri
      (fun i (clause : Program.catch_clause) -> add edb.catch_var [| m; i; clause.catch_var |])
      mi.catches
  done;
  for h = 0 to Program.n_heaps p - 1 do
    add edb.heap_type [| h; (Program.heap_info p h).heap_class |]
  done;
  Program.iter_dispatch p (fun c s m -> add edb.lookup [| c; s; m |]);
  edb

let run p ~default ~refined ~refine ?(budget = 0) () =
  let ctxs = Ctx.create () in
  let edb = build_edb p in
  let var_points_to = Relation.create ~name:"VarPointsTo" ~arity:4 in
  let fld_points_to = Relation.create ~name:"FldPointsTo" ~arity:5 in
  let static_fld_points_to = Relation.create ~name:"StaticFldPointsTo" ~arity:3 in
  let exc_points_to = Relation.create ~name:"ExcPointsTo" ~arity:4 in
  let call_graph = Relation.create ~name:"CallGraph" ~arity:4 in
  let reachable = Relation.create ~name:"Reachable" ~arity:2 in
  let interproc = Relation.create ~name:"InterProcAssign" ~arity:4 in
  List.iter
    (fun m -> ignore (Relation.add reachable [| m; Ctx.empty |]))
    (Program.entries p);
  let v = Array.init 12 (fun i -> Rule.Var i) in
  let heap_class h = (Program.heap_info p h).heap_class in
  (* Rule 1-2: inter-procedural assignments from call-graph edges. *)
  let invo, caller_ctx, meth, callee_ctx, i, to_, from = (0, 1, 2, 3, 4, 5, 6) in
  let interproc_args =
    Rule.make ~name:"interproc-args" ~n_vars:7
      ~heads:[ (interproc, [| v.(to_); v.(callee_ctx); v.(from); v.(caller_ctx) |]) ]
      ~body:
        [
          (call_graph, [| v.(invo); v.(caller_ctx); v.(meth); v.(callee_ctx) |]);
          (edb.formal_arg, [| v.(meth); v.(i); v.(to_) |]);
          (edb.actual_arg, [| v.(invo); v.(i); v.(from) |]);
        ]
      ()
  in
  let interproc_ret =
    Rule.make ~name:"interproc-ret" ~n_vars:7
      ~heads:[ (interproc, [| v.(to_); v.(caller_ctx); v.(from); v.(callee_ctx) |]) ]
      ~body:
        [
          (call_graph, [| v.(invo); v.(caller_ctx); v.(meth); v.(callee_ctx) |]);
          (edb.formal_return, [| v.(meth); v.(from) |]);
          (edb.actual_return, [| v.(invo); v.(to_) |]);
        ]
      ()
  in
  (* Rules 3-4: allocation, default and refined [Record]. *)
  let var, ctx, heap, hctx = (0, 1, 2, 3) in
  let meth4 = 4 in
  let alloc_rule nm strategy ~refined_site =
    Rule.make ~name:nm ~n_vars:5
      ~heads:[ (var_points_to, [| v.(var); v.(ctx); v.(heap); v.(hctx) |]) ]
      ~body:
        [
          (reachable, [| v.(meth4); v.(ctx) |]);
          (edb.alloc, [| v.(var); v.(heap); v.(meth4) |]);
        ]
      ~lets:[ (hctx, fun env -> (strategy : Strategy.t).record ctxs ~heap:env.(heap) ~ctx:env.(ctx)) ]
      ~guards:[ (fun env -> Refine.refine_object refine env.(heap) = refined_site) ]
      ()
  in
  let alloc_default = alloc_rule "alloc" default ~refined_site:false in
  let alloc_refined = alloc_rule "alloc-refined" refined ~refined_site:true in
  (* Rule 5: move. *)
  let move_rule =
    Rule.make ~name:"move" ~n_vars:5
      ~heads:[ (var_points_to, [| v.(0); v.(2); v.(3); v.(4) |]) ]
      ~body:[ (edb.move, [| v.(0); v.(1) |]); (var_points_to, [| v.(1); v.(2); v.(3); v.(4) |]) ]
      ()
  in
  (* Rule 6: cast with subtype filter. *)
  let cast_rule =
    Rule.make ~name:"cast" ~n_vars:6
      ~heads:[ (var_points_to, [| v.(0); v.(3); v.(4); v.(5) |]) ]
      ~body:
        [ (edb.cast, [| v.(0); v.(1); v.(2) |]); (var_points_to, [| v.(2); v.(3); v.(4); v.(5) |]) ]
      ~guards:[ (fun env -> Program.subtype p ~sub:(heap_class env.(4)) ~super:env.(1)) ]
      ()
  in
  (* Rule 7: inter-procedural assignment. *)
  let interproc_flow =
    Rule.make ~name:"interproc-flow" ~n_vars:6
      ~heads:[ (var_points_to, [| v.(0); v.(1); v.(4); v.(5) |]) ]
      ~body:
        [
          (interproc, [| v.(0); v.(1); v.(2); v.(3) |]);
          (var_points_to, [| v.(2); v.(3); v.(4); v.(5) |]);
        ]
      ()
  in
  (* Rule 8: load. *)
  let load_rule =
    Rule.make ~name:"load" ~n_vars:8
      ~heads:[ (var_points_to, [| v.(0); v.(3); v.(6); v.(7) |]) ]
      ~body:
        [
          (edb.load, [| v.(0); v.(1); v.(2) |]);
          (var_points_to, [| v.(1); v.(3); v.(4); v.(5) |]);
          (fld_points_to, [| v.(4); v.(5); v.(2); v.(6); v.(7) |]);
        ]
      ()
  in
  (* Rule 9: store. *)
  let store_rule =
    Rule.make ~name:"store" ~n_vars:8
      ~heads:[ (fld_points_to, [| v.(6); v.(7); v.(1); v.(4); v.(5) |]) ]
      ~body:
        [
          (edb.store, [| v.(0); v.(1); v.(2) |]);
          (var_points_to, [| v.(2); v.(3); v.(4); v.(5) |]);
          (var_points_to, [| v.(0); v.(3); v.(6); v.(7) |]);
        ]
      ()
  in
  (* Rules 10-11: static fields. *)
  let load_static_rule =
    Rule.make ~name:"load-static" ~n_vars:6
      ~heads:[ (var_points_to, [| v.(0); v.(3); v.(4); v.(5) |]) ]
      ~body:
        [
          (edb.load_static, [| v.(0); v.(1); v.(2) |]);
          (reachable, [| v.(2); v.(3) |]);
          (static_fld_points_to, [| v.(1); v.(4); v.(5) |]);
        ]
      ()
  in
  let store_static_rule =
    Rule.make ~name:"store-static" ~n_vars:5
      ~heads:[ (static_fld_points_to, [| v.(0); v.(3); v.(4) |]) ]
      ~body:
        [
          (edb.store_static, [| v.(0); v.(1) |]);
          (var_points_to, [| v.(1); v.(2); v.(3); v.(4) |]);
        ]
      ()
  in
  (* Rules 12-13: virtual dispatch, default and refined [Merge]. Variables:
     0 base, 1 sig, 2 invo, 3 inMeth, 4 ctx, 5 heap, 6 hctx, 7 heapT,
     8 toMeth, 9 this, 10 calleeCtx. *)
  let vcall_rule nm (strategy : Strategy.t) ~refined_site =
    Rule.make ~name:nm ~n_vars:11
      ~heads:
        [
          (call_graph, [| v.(2); v.(4); v.(8); v.(10) |]);
          (reachable, [| v.(8); v.(10) |]);
          (var_points_to, [| v.(9); v.(10); v.(5); v.(6) |]);
        ]
      ~body:
        [
          (edb.vcall, [| v.(0); v.(1); v.(2); v.(3) |]);
          (reachable, [| v.(3); v.(4) |]);
          (var_points_to, [| v.(0); v.(4); v.(5); v.(6) |]);
          (edb.heap_type, [| v.(5); v.(7) |]);
          (edb.lookup, [| v.(7); v.(1); v.(8) |]);
          (edb.this_var, [| v.(8); v.(9) |]);
        ]
      ~lets:
        [
          ( 10,
            fun env ->
              strategy.merge ctxs ~heap:env.(5) ~hctx:env.(6) ~invo:env.(2) ~caller:env.(4) );
        ]
      ~guards:
        [ (fun env -> Refine.refine_site refine ~invo:env.(2) ~meth:env.(8) = refined_site) ]
      ()
  in
  let vcall_default = vcall_rule "vcall" default ~refined_site:false in
  let vcall_refined = vcall_rule "vcall-refined" refined ~refined_site:true in
  (* Rules 14-15: static calls. Variables: 0 invo, 1 toMeth, 2 inMeth,
     3 ctx, 4 calleeCtx. *)
  let scall_rule nm (strategy : Strategy.t) ~refined_site =
    Rule.make ~name:nm ~n_vars:5
      ~heads:
        [ (call_graph, [| v.(0); v.(3); v.(1); v.(4) |]); (reachable, [| v.(1); v.(4) |]) ]
      ~body:[ (edb.static_call, [| v.(0); v.(1); v.(2) |]); (reachable, [| v.(2); v.(3) |]) ]
      ~lets:[ (4, fun env -> strategy.merge_static ctxs ~invo:env.(0) ~caller:env.(3)) ]
      ~guards:
        [ (fun env -> Refine.refine_site refine ~invo:env.(0) ~meth:env.(1) = refined_site) ]
      ()
  in
  let scall_default = scall_rule "scall" default ~refined_site:false in
  let scall_refined = scall_rule "scall-refined" refined ~refined_site:true in
  (* Exception rules. Routing through a method's ordered catch chain is an
     external decision, exactly like the context constructors: the guard
     compares [Program.catch_route] with the clause index bound from the
     CatchVar relation. Variables (throw rules): 0 x, 1 m, 2 ctx, 3 heap,
     4 hctx, 5 clause index, 6 catch var. *)
  let route_is m_var heap_var i_var env =
    Program.catch_route p env.(m_var) (heap_class env.(heap_var)) = Some env.(i_var)
  in
  let escapes m_var heap_var env =
    Program.catch_route p env.(m_var) (heap_class env.(heap_var)) = None
  in
  let throw_catch =
    Rule.make ~name:"throw-catch" ~n_vars:7
      ~heads:[ (var_points_to, [| v.(6); v.(2); v.(3); v.(4) |]) ]
      ~body:
        [
          (edb.throw, [| v.(0); v.(1) |]);
          (var_points_to, [| v.(0); v.(2); v.(3); v.(4) |]);
          (edb.catch_var, [| v.(1); v.(5); v.(6) |]);
        ]
      ~guards:[ route_is 1 3 5 ]
      ()
  in
  let throw_escape =
    Rule.make ~name:"throw-escape" ~n_vars:5
      ~heads:[ (exc_points_to, [| v.(1); v.(2); v.(3); v.(4) |]) ]
      ~body:
        [ (edb.throw, [| v.(0); v.(1) |]); (var_points_to, [| v.(0); v.(2); v.(3); v.(4) |]) ]
      ~guards:[ escapes 1 3 ]
      ()
  in
  (* Variables (call rules): 0 invo, 1 callerCtx, 2 callee, 3 calleeCtx,
     4 heap, 5 hctx, 6 caller meth, 7 clause index, 8 catch var. *)
  let call_catch =
    Rule.make ~name:"call-catch" ~n_vars:9
      ~heads:[ (var_points_to, [| v.(8); v.(1); v.(4); v.(5) |]) ]
      ~body:
        [
          (call_graph, [| v.(0); v.(1); v.(2); v.(3) |]);
          (exc_points_to, [| v.(2); v.(3); v.(4); v.(5) |]);
          (edb.invo_owner, [| v.(0); v.(6) |]);
          (edb.catch_var, [| v.(6); v.(7); v.(8) |]);
        ]
      ~guards:[ route_is 6 4 7 ]
      ()
  in
  let call_escape =
    Rule.make ~name:"call-escape" ~n_vars:7
      ~heads:[ (exc_points_to, [| v.(6); v.(1); v.(4); v.(5) |]) ]
      ~body:
        [
          (call_graph, [| v.(0); v.(1); v.(2); v.(3) |]);
          (exc_points_to, [| v.(2); v.(3); v.(4); v.(5) |]);
          (edb.invo_owner, [| v.(0); v.(6) |]);
        ]
      ~guards:[ escapes 6 4 ]
      ()
  in
  let rules =
    [
      throw_catch;
      throw_escape;
      call_catch;
      call_escape;
      interproc_args;
      interproc_ret;
      alloc_default;
      alloc_refined;
      move_rule;
      cast_rule;
      interproc_flow;
      load_rule;
      store_rule;
      load_static_rule;
      store_static_rule;
      vcall_default;
      vcall_refined;
      scall_default;
      scall_refined;
    ]
  in
  let derivations = Engine.fixpoint ~budget rules in
  {
    ctxs;
    var_points_to;
    fld_points_to;
    static_fld_points_to;
    exc_points_to;
    call_graph;
    reachable;
    derivations;
  }

let run_plain p strategy =
  run p ~default:strategy ~refined:strategy ~refine:Refine.None_ ()
