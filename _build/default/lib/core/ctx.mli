(** Contexts as interned sequences of tagged elements.

    A (calling or heap) context is a sequence of {e context elements}; an
    element is an allocation site (object-sensitivity), an invocation site
    (call-site-sensitivity), or a class (type-sensitivity) — hybrid flavors
    mix them, hence the tagging. Sequences are hash-consed into dense ids by
    a per-analysis-run {!t}; id {!empty} is the empty sequence, which also
    serves as "the" context of a context-insensitive analysis.

    Calling contexts and heap contexts share one table (a heap context is
    typically a prefix of a calling context, so sharing helps). *)

type t

(** {1 Elements} *)

module Elem : sig
  type kind = Heap | Invo | Type

  val heap : Ipa_ir.Program.heap_id -> int
  val invo : Ipa_ir.Program.invo_id -> int
  val ty : Ipa_ir.Program.class_id -> int

  val kind : int -> kind
  val id : int -> int

  val to_string : Ipa_ir.Program.t -> int -> string
end

(** {1 Tables} *)

val create : unit -> t

val empty : int
(** The id of the empty context in every table. *)

val intern : t -> int array -> int
(** [intern t elems] is the id of the element sequence. The array must not be
    mutated afterwards. *)

val elems : t -> int -> int array
(** Elements of a context, outermost (most recent) first. Do not mutate. *)

val push_trunc : t -> int -> elem:int -> keep:int -> int
(** [push_trunc t ctx ~elem ~keep] conses [elem] onto [ctx]'s elements and
    keeps the first [keep]: the universal "add one level, bounded depth"
    constructor step. [keep <= 0] yields {!empty}. *)

val trunc : t -> int -> keep:int -> int
(** [trunc t ctx ~keep] keeps the first [keep] elements of [ctx]. *)

val count : t -> int
(** Number of distinct contexts interned (including the empty one). *)

val to_string : t -> Ipa_ir.Program.t -> int -> string
(** ["[e1, e2]"] with human-readable element names. *)
