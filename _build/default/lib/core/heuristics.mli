(** The paper's refinement heuristics A and B (§3).

    - {b Heuristic A} (aggressive): refine all allocation sites except those
      with pointed-by-vars > K; refine all call sites except those whose
      in-flow > L or whose target method's max var-field points-to > M.
      Paper constants: K = 100, L = 100, M = 200.
    - {b Heuristic B} (selective): refine all call sites except those whose
      target method's total points-to volume > P; refine all allocation sites
      except those where total-field-points-to × pointed-by-vars > Q.
      Paper constants: P = Q = 10000.

    The constants are the user's scalability "dial": lower them for more
    scalability, raise them for more precision. *)

type t =
  | A of { k : int; l : int; m : int }
  | B of { p : int; q : int }

val default_a : t
(** [A {k = 100; l = 100; m = 200}] — the paper's Heuristic A. *)

val default_b : t
(** [B {p = 10000; q = 10000}] — the paper's Heuristic B. *)

val name : t -> string
(** ["IntroA"] / ["IntroB"] (regardless of constants). *)

val to_string : t -> string
(** Name plus constants, e.g. ["IntroA(K=100,L=100,M=200)"]. *)

val select : Solution.t -> Introspection.t -> t -> Refine.t
(** Compute the refine sets from first-pass results: everything is refined
    except the elements the heuristic flags. Call-site candidates are the
    (site, target) pairs of the first pass's call graph. *)

(** Selection statistics — the data of the paper's Figure 4. *)
type stats = {
  sites_skipped : int;  (** (invo, meth) pairs kept context-insensitive *)
  sites_total : int;  (** candidate pairs (first-pass call-graph edges) *)
  objects_skipped : int;
  objects_total : int;  (** allocation sites in reachable methods *)
}

val pct_sites : stats -> float
val pct_objects : stats -> float

val selection_stats : Solution.t -> Refine.t -> stats

val static_policy :
  Solution.t ->
  skip_class:(string -> bool) ->
  skip_meth:(string -> bool) ->
  Refine.t
(** A Doop/Wala-style hard-coded policy (paper §5: "allocating strings or
    exceptions context-insensitively", "extra context for collection
    classes", ...): keep context-insensitive every allocation site whose
    class name satisfies [skip_class] and every call-site/target pair whose
    target method name (or owner class name) satisfies the predicates.
    Candidate call sites come from the first-pass call graph, as in
    {!select}. Exists to reproduce the §5 observation that such policies
    are brittle: a list tuned for one program does not transfer (see the
    harness's hard-coded-policy study). *)
