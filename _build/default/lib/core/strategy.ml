type t = {
  name : string;
  record : Ctx.t -> heap:Ipa_ir.Program.heap_id -> ctx:int -> int;
  merge :
    Ctx.t -> heap:Ipa_ir.Program.heap_id -> hctx:int -> invo:Ipa_ir.Program.invo_id -> caller:int -> int;
  merge_static : Ctx.t -> invo:Ipa_ir.Program.invo_id -> caller:int -> int;
}
