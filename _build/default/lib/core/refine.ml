module Int_set = Ipa_support.Int_set

type t =
  | None_
  | All_except of { skip_objects : Int_set.t; skip_sites : Int_set.t }

let meth_bits = 28

let pack_site ~invo ~meth =
  if meth < 0 || meth >= 1 lsl meth_bits then
    invalid_arg (Printf.sprintf "Refine.pack_site: method id %d out of range" meth);
  (invo lsl meth_bits) lor meth

let unpack_site key = (key lsr meth_bits, key land ((1 lsl meth_bits) - 1))

let refine_object t heap =
  match t with
  | None_ -> false
  | All_except { skip_objects; _ } -> not (Int_set.mem skip_objects heap)

let refine_site t ~invo ~meth =
  match t with
  | None_ -> false
  | All_except { skip_sites; _ } -> not (Int_set.mem skip_sites (pack_site ~invo ~meth))

let skipped_counts = function
  | None_ -> (0, 0)
  | All_except { skip_objects; skip_sites } ->
    (Int_set.cardinal skip_objects, Int_set.cardinal skip_sites)
