module Program = Ipa_ir.Program
module Relation = Ipa_datalog.Relation
module Rule = Ipa_datalog.Rule
module Engine = Ipa_datalog.Engine
module Aggregate = Ipa_datalog.Aggregate

let v i = Rule.Var i

(* Project VarPointsTo down to distinct (var, heap) pairs — the collapsed
   relation every metric query starts from. *)
let collapsed_vpt (d : Datalog_backend.t) =
  let out = Relation.create ~name:"VarHeap" ~arity:2 in
  let rule =
    Rule.make ~name:"collapse" ~n_vars:4
      ~heads:[ (out, [| v 0; v 2 |]) ]
      ~body:[ (d.var_points_to, [| v 0; v 1; v 2; v 3 |]) ]
      ()
  in
  ignore (Engine.fixpoint [ rule ]);
  out

let to_table rel =
  let tbl = Hashtbl.create 64 in
  Relation.iter (fun t -> Hashtbl.replace tbl t.(0) t.(1)) rel;
  tbl

let in_flow (p : Program.t) (d : Datalog_backend.t) =
  (* ActualArg is an input relation of the backend; rebuild it here (the
     backend does not expose its EDB). *)
  let actual_arg = Relation.create ~name:"ActualArg" ~arity:3 in
  for invo = 0 to Program.n_invos p - 1 do
    Array.iteri
      (fun i arg -> ignore (Relation.add actual_arg [| invo; i; arg |]))
      (Program.invo_info p invo).actuals
  done;
  let var_heap = collapsed_vpt d in
  (* HeapsPerInvocationPerArg(invo, arg, heap) — note the paper's
     CallGraph(invo, _, _, _) conjunct restricting to reachable calls. *)
  let hpia = Relation.create ~name:"HeapsPerInvocationPerArg" ~arity:3 in
  let rule =
    Rule.make ~name:"hpia" ~n_vars:7
      ~heads:[ (hpia, [| v 0; v 1; v 2 |]) ]
      ~body:
        [
          (d.call_graph, [| v 0; v 3; v 4; v 5 |]);
          (actual_arg, [| v 0; v 6; v 1 |]);
          (var_heap, [| v 1; v 2 |]);
        ]
      ()
  in
  ignore (Engine.fixpoint [ rule ]);
  let result = Relation.create ~name:"InFlow" ~arity:2 in
  Aggregate.count hpia ~group_by:[ 0 ] ~into:result;
  to_table result

let meth_total_volume (p : Program.t) (d : Datalog_backend.t) =
  let var_owner = Relation.create ~name:"VarOwner" ~arity:2 in
  for var = 0 to Program.n_vars p - 1 do
    ignore (Relation.add var_owner [| var; (Program.var_info p var).var_owner |])
  done;
  let var_heap = collapsed_vpt d in
  let meth_var_heap = Relation.create ~name:"MethVarHeap" ~arity:3 in
  let rule =
    Rule.make ~name:"mvh" ~n_vars:3
      ~heads:[ (meth_var_heap, [| v 2; v 0; v 1 |]) ]
      ~body:[ (var_heap, [| v 0; v 1 |]); (var_owner, [| v 0; v 2 |]) ]
      ()
  in
  ignore (Engine.fixpoint [ rule ]);
  let result = Relation.create ~name:"Volume" ~arity:2 in
  Aggregate.count meth_var_heap ~group_by:[ 0 ] ~into:result;
  to_table result

let pointed_by_vars (_p : Program.t) (d : Datalog_backend.t) =
  let var_heap = collapsed_vpt d in
  (* group by the heap column *)
  let heap_var = Relation.create ~name:"HeapVar" ~arity:2 in
  let rule =
    Rule.make ~name:"flip" ~n_vars:2
      ~heads:[ (heap_var, [| v 1; v 0 |]) ]
      ~body:[ (var_heap, [| v 0; v 1 |]) ]
      ()
  in
  ignore (Engine.fixpoint [ rule ]);
  let result = Relation.create ~name:"PointedByVars" ~arity:2 in
  Aggregate.count heap_var ~group_by:[ 0 ] ~into:result;
  to_table result
