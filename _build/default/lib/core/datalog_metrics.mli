(** The paper's §3 metric queries, as actual Datalog.

    §3 ("Implementation") gives the in-flow metric as a Datalog query — an
    intermediate predicate plus a count aggregation:

    {v
    HeapsPerInvocationPerArg(invo, arg, heap) <-
      CallGraph(invo, _, _, _), ActualArg(invo, _, arg),
      VarPointsTo(arg, _, heap, _).
    InFlow(invo, result) <- agg<result = count()>
      (HeapsPerInvocationPerArg(invo, _, _)).
    v}

    This module executes that query (and the analogous ones for metrics 2
    and 5) on the generic Datalog engine over a {!Datalog_backend} result.
    It exists for fidelity — tests assert it agrees with the native
    {!Introspection} computation. *)

val in_flow : Ipa_ir.Program.t -> Datalog_backend.t -> (int, int) Hashtbl.t
(** Per invocation site (absent = 0): the paper's metric #1. *)

val meth_total_volume : Ipa_ir.Program.t -> Datalog_backend.t -> (int, int) Hashtbl.t
(** Per method: metric #2 (total variant), counting distinct (var, heap)
    pairs over the method's variables. *)

val pointed_by_vars : Ipa_ir.Program.t -> Datalog_backend.t -> (int, int) Hashtbl.t
(** Per heap object: metric #5. *)
