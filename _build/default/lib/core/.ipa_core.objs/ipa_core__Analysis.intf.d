lib/core/analysis.mli: Client_driven Flavors Heuristics Introspection Ipa_ir Refine Solution
