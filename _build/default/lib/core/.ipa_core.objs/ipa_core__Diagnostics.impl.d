lib/core/diagnostics.ml: Array Hashtbl Ipa_ir Ipa_support List Option Solution
