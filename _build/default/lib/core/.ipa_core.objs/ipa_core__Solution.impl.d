lib/core/solution.ml: Array Ctx Hashtbl Ipa_ir Ipa_support
