lib/core/solver.mli: Ipa_ir Refine Solution Strategy
