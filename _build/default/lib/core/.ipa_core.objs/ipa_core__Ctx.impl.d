lib/core/ctx.ml: Array Ipa_ir Ipa_support Printf String
