lib/core/diagnostics.mli: Ipa_ir Solution
