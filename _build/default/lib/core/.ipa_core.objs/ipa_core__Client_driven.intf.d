lib/core/client_driven.mli: Ipa_ir Refine Solution
