lib/core/refine.mli: Ipa_ir Ipa_support
