lib/core/strategy.mli: Ctx Ipa_ir
