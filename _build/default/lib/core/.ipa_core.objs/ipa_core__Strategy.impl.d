lib/core/strategy.ml: Ctx Ipa_ir
