lib/core/heuristics.mli: Introspection Refine Solution
