lib/core/flavors.mli: Ipa_ir Strategy
