lib/core/precision.ml: Array Hashtbl Ipa_ir Ipa_support List Solution
