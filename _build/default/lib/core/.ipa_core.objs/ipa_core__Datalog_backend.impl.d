lib/core/datalog_backend.ml: Array Ctx Ipa_datalog Ipa_ir List Refine Strategy
