lib/core/flavors.ml: Array Ctx Ipa_ir List Printf Strategy String
