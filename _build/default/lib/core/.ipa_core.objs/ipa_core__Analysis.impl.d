lib/core/analysis.ml: Client_driven Flavors Heuristics Introspection Ipa_support Printf Refine Solution Solver
