lib/core/introspection.ml: Array Hashtbl Ipa_ir Ipa_support Solution
