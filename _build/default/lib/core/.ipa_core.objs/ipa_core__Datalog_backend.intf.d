lib/core/datalog_backend.mli: Ctx Ipa_datalog Ipa_ir Refine Strategy
