lib/core/solution.mli: Ctx Hashtbl Ipa_ir Ipa_support
