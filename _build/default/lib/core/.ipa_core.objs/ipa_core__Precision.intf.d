lib/core/precision.mli: Solution
