lib/core/solver.ml: Array Ctx Ipa_ir Ipa_support List Refine Solution Strategy
