lib/core/datalog_metrics.mli: Datalog_backend Hashtbl Ipa_ir
