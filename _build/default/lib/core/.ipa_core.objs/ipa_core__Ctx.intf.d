lib/core/ctx.mli: Ipa_ir
