lib/core/datalog_metrics.ml: Array Datalog_backend Hashtbl Ipa_datalog Ipa_ir
