lib/core/introspection.mli: Solution
