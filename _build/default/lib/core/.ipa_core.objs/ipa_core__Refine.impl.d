lib/core/refine.ml: Ipa_support Printf
