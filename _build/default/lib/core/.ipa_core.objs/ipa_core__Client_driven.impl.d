lib/core/client_driven.ml: Array Hashtbl Heuristics Ipa_ir Ipa_support List Refine Solution
