lib/core/heuristics.ml: Array Hashtbl Introspection Ipa_ir Ipa_support Printf Refine Solution
