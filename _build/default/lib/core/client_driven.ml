module Program = Ipa_ir.Program
module Int_set = Ipa_support.Int_set

type query = Program.var_id list

(* Dependence nodes over the context-insensitive result: variables, field
   slots keyed as in Solution.collapsed_fld_pts, static fields, and
   per-method exception flows. Encoded into one int space. *)
type node_space = { n_vars : int; n_fld_keys : int; n_fields : int }

let var_node _sp v = v
let fld_node sp key = sp.n_vars + key
let sfld_node sp f = sp.n_vars + sp.n_fld_keys + f
let exc_node sp m = sp.n_vars + sp.n_fld_keys + sp.n_fields + m

(* Build the backward dependence edges: for each node, the nodes whose
   points-to contents flow into it. *)
let build_backward (s : Solution.t) : node_space * int list array =
  let p = s.program in
  let vpt = Solution.collapsed_var_pts s in
  let sp =
    {
      n_vars = Program.n_vars p;
      n_fld_keys = Program.n_heaps p * Program.n_fields p;
      n_fields = Program.n_fields p;
    }
  in
  let n_nodes = sp.n_vars + sp.n_fld_keys + sp.n_fields + Program.n_meths p in
  let preds = Array.make n_nodes [] in
  let edge ~src ~dst = preds.(dst) <- src :: preds.(dst) in
  let reachable = Solution.reachable_meths s in
  Int_set.iter
    (fun m ->
      let mi = Program.meth_info p m in
      Array.iter
        (fun (instr : Program.instr) ->
          match instr with
          | Alloc _ -> ()
          | Move { target; source } | Cast { target; source; _ } ->
            edge ~src:(var_node sp source) ~dst:(var_node sp target)
          | Load { target; base; field } ->
            edge ~src:(var_node sp base) ~dst:(var_node sp target);
            Int_set.iter
              (fun h ->
                edge
                  ~src:(fld_node sp (Solution.fld_pts_key s ~heap:h ~field))
                  ~dst:(var_node sp target))
              vpt.(base)
          | Store { base; field; source } ->
            Int_set.iter
              (fun h ->
                let dst = fld_node sp (Solution.fld_pts_key s ~heap:h ~field) in
                edge ~src:(var_node sp source) ~dst;
                edge ~src:(var_node sp base) ~dst)
              vpt.(base)
          | Load_static { target; field } -> edge ~src:(sfld_node sp field) ~dst:(var_node sp target)
          | Store_static { field; source } ->
            edge ~src:(var_node sp source) ~dst:(sfld_node sp field)
          | Call _ -> () (* handled from the call graph below *)
          | Return _ -> () (* normalized through ret_var moves below *)
          | Throw { source } ->
            (* thrown values reach the method's catch variables and its
               exception flow *)
            Array.iter
              (fun (clause : Program.catch_clause) ->
                edge ~src:(var_node sp source) ~dst:(var_node sp clause.catch_var))
              mi.catches;
            edge ~src:(var_node sp source) ~dst:(exc_node sp m))
        mi.body;
      Array.iter
        (fun (instr : Program.instr) ->
          match instr with
          | Return { source } -> (
            match mi.ret_var with
            | Some ret -> edge ~src:(var_node sp source) ~dst:(var_node sp ret)
            | None -> ())
          | _ -> ())
        mi.body)
    reachable;
  (* Inter-procedural edges from the collapsed call graph. *)
  Hashtbl.iter
    (fun invo targets ->
      let ii = Program.invo_info p invo in
      Int_set.iter
        (fun m ->
          let mi = Program.meth_info p m in
          Array.iteri
            (fun i actual ->
              if i < Array.length mi.formals then
                edge ~src:(var_node sp actual) ~dst:(var_node sp mi.formals.(i)))
            ii.actuals;
          (match (ii.recv, mi.ret_var) with
          | Some recv, Some ret -> edge ~src:(var_node sp ret) ~dst:(var_node sp recv)
          | _ -> ());
          (match ii.call with
          | Virtual { base; _ } -> (
            match mi.this_var with
            | Some this -> edge ~src:(var_node sp base) ~dst:(var_node sp this)
            | None -> ())
          | Static _ -> ());
          (* callee exceptions reach the caller's handlers and exc flow *)
          let caller = ii.invo_owner in
          Array.iter
            (fun (clause : Program.catch_clause) ->
              edge ~src:(exc_node sp m) ~dst:(var_node sp clause.catch_var))
            (Program.meth_info p caller).catches;
          edge ~src:(exc_node sp m) ~dst:(exc_node sp caller))
        targets)
    (Solution.call_targets s);
  (sp, preds)

let select (s : Solution.t) (query : query) : Refine.t =
  let p = s.program in
  let sp, preds = build_backward s in
  (* Backward reachability from the query variables. *)
  let n_nodes = Array.length preds in
  let in_slice = Array.make n_nodes false in
  let stack = ref (List.map (var_node sp) query) in
  List.iter (fun n -> in_slice.(n) <- true) !stack;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | n :: rest ->
      stack := rest;
      List.iter
        (fun m ->
          if not in_slice.(m) then begin
            in_slice.(m) <- true;
            stack := m :: !stack
          end)
        preds.(n)
  done;
  (* Methods touched by the slice: owners of slice variables. *)
  let slice_meths = Int_set.create () in
  for v = 0 to sp.n_vars - 1 do
    if in_slice.(v) then ignore (Int_set.add slice_meths (Program.var_info p v).var_owner)
  done;
  (* Objects to refine: heaps in the points-to sets of slice variables, and
     heaps whose field slots the slice traverses. *)
  let refine_objects = Int_set.create () in
  let vpt = Solution.collapsed_var_pts s in
  for v = 0 to sp.n_vars - 1 do
    if in_slice.(v) then Int_set.iter (fun h -> ignore (Int_set.add refine_objects h)) vpt.(v)
  done;
  for key = 0 to sp.n_fld_keys - 1 do
    if in_slice.(sp.n_vars + key) then
      ignore (Int_set.add refine_objects (key / Program.n_fields p))
  done;
  (* Call sites to refine: candidate pairs whose target contains slice
     variables (calling those methods with context is what separates the
     query's flows). *)
  let skip_sites = Int_set.create () in
  let skip_objects = Int_set.create () in
  Hashtbl.iter
    (fun invo targets ->
      Int_set.iter
        (fun m ->
          if not (Int_set.mem slice_meths m) then
            ignore (Int_set.add skip_sites (Refine.pack_site ~invo ~meth:m)))
        targets)
    (Solution.call_targets s);
  for h = 0 to Program.n_heaps p - 1 do
    if not (Int_set.mem refine_objects h) then ignore (Int_set.add skip_objects h)
  done;
  Refine.All_except { skip_objects; skip_sites }

let selection_size (s : Solution.t) refine =
  let stats = Heuristics.selection_stats s refine in
  (stats.sites_total - stats.sites_skipped, stats.objects_total - stats.objects_skipped)

let cast_queries (s : Solution.t) =
  let p = s.program in
  let reachable = Solution.reachable_meths s in
  let out = ref [] in
  Int_set.iter
    (fun m ->
      Array.iter
        (fun (instr : Program.instr) ->
          match instr with
          | Cast { source; cast_to; _ } -> out := (source, cast_to) :: !out
          | _ -> ())
        (Program.meth_info p m).body)
    reachable;
  !out
