module Interner = Ipa_support.Interner

type value =
  | Int of int
  | Sym of string

(* ---------- lexer ---------- *)

type token =
  | Tident of string (* lowercase-led: relation names *)
  | Tvar of string (* uppercase-led: variables; "_" is anonymous *)
  | Tint of int
  | Tstring of string
  | Tdirective of string (* .decl / .output *)
  | Tlparen
  | Trparen
  | Tcomma
  | Tdot
  | Tturnstile (* :- *)
  | Tbang
  | Teof

exception Err of string

let err line col fmt =
  Printf.ksprintf (fun msg -> raise (Err (Printf.sprintf "%d:%d: %s" line col msg))) fmt

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 and i = ref 0 in
  let advance () =
    if src.[!i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let is_alnum c = is_alpha c || (c >= '0' && c <= '9') in
  let word () =
    let start = !i in
    while !i < n && is_alnum src.[!i] do
      advance ()
    done;
    String.sub src start (!i - start)
  in
  while !i < n do
    let c = src.[!i] in
    let l = !line and k = !col in
    let emit t = toks := (t, l, k) :: !toks in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while not !closed do
        if !i + 1 >= n then err l k "unterminated comment";
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done
    end
    else if c = '.' && !i + 1 < n && is_alpha src.[!i + 1] then begin
      advance ();
      emit (Tdirective (word ()))
    end
    else if is_alpha c then begin
      let w = word () in
      if w = "_" || (c >= 'A' && c <= 'Z') then emit (Tvar w) else emit (Tident w)
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9')
    then begin
      let start = !i in
      advance ();
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        advance ()
      done;
      emit (Tint (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '"' then begin
      advance ();
      let start = !i in
      while !i < n && src.[!i] <> '"' do
        advance ()
      done;
      if !i >= n then err l k "unterminated string";
      emit (Tstring (String.sub src start (!i - start)));
      advance ()
    end
    else begin
      (match c with
      | '(' -> emit Tlparen
      | ')' -> emit Trparen
      | ',' -> emit Tcomma
      | '.' -> emit Tdot
      | '!' -> emit Tbang
      | ':' ->
        if !i + 1 < n && src.[!i + 1] = '-' then begin
          advance ();
          emit Tturnstile
        end
        else err l k "expected ':-'"
      | _ -> err l k "unexpected character %C" c);
      advance ()
    end
  done;
  toks := (Teof, !line, !col) :: !toks;
  Array.of_list (List.rev !toks)

(* ---------- AST ---------- *)

type term =
  | Tm_var of string
  | Tm_const of value

type atom = { rel : string; terms : term list; a_line : int; a_col : int }

type clause = {
  head : atom;
  pos : atom list;
  neg : atom list;
}

type program = {
  decls : (string * int) list;
  facts : atom list;
  clauses : clause list;
  outputs : string list;
}

(* ---------- parser ---------- *)

let parse_tokens toks =
  let cursor = ref 0 in
  let peek () = match toks.(!cursor) with t, _, _ -> t in
  let pos () = match toks.(!cursor) with _, l, c -> (l, c) in
  let advance () = if !cursor + 1 < Array.length toks then incr cursor in
  let perr fmt =
    let l, c = pos () in
    err l c fmt
  in
  let expect t what =
    if peek () = t then advance () else perr "expected %s" what
  in
  let ident () =
    match peek () with
    | Tident s ->
      advance ();
      s
    | _ -> perr "expected a relation name"
  in
  let term () =
    match peek () with
    | Tvar v ->
      advance ();
      Tm_var v
    | Tint n ->
      advance ();
      Tm_const (Int n)
    | Tstring s ->
      advance ();
      Tm_const (Sym s)
    | _ -> perr "expected a term"
  in
  let atom () =
    let a_line, a_col = pos () in
    let rel = ident () in
    expect Tlparen "'('";
    let terms = ref [ term () ] in
    while peek () = Tcomma do
      advance ();
      terms := term () :: !terms
    done;
    expect Trparen "')'";
    { rel; terms = List.rev !terms; a_line; a_col }
  in
  let decls = ref [] and facts = ref [] and clauses = ref [] and outputs = ref [] in
  let rec loop () =
    match peek () with
    | Teof -> ()
    | Tdirective "decl" ->
      advance ();
      let name = ident () in
      expect Tlparen "'('";
      let arity = match peek () with
        | Tint n ->
          advance ();
          n
        | _ -> perr "expected an arity"
      in
      expect Trparen "')'";
      decls := (name, arity) :: !decls;
      loop ()
    | Tdirective "output" ->
      advance ();
      outputs := ident () :: !outputs;
      loop ()
    | Tdirective d -> perr "unknown directive .%s" d
    | Tident _ ->
      let head = atom () in
      (match peek () with
      | Tdot ->
        advance ();
        facts := head :: !facts
      | Tturnstile ->
        advance ();
        let pos_atoms = ref [] and neg_atoms = ref [] in
        let body_atom () =
          if peek () = Tbang then begin
            advance ();
            neg_atoms := atom () :: !neg_atoms
          end
          else pos_atoms := atom () :: !pos_atoms
        in
        body_atom ();
        while peek () = Tcomma do
          advance ();
          body_atom ()
        done;
        expect Tdot "'.'";
        clauses := { head; pos = List.rev !pos_atoms; neg = List.rev !neg_atoms } :: !clauses
      | _ -> perr "expected '.' or ':-'");
      loop ()
    | _ -> perr "expected a declaration, fact, or rule"
  in
  loop ();
  {
    decls = List.rev !decls;
    facts = List.rev !facts;
    clauses = List.rev !clauses;
    outputs = List.rev !outputs;
  }

(* ---------- validation & stratification ---------- *)

let validate (p : program) =
  let arity_of rel line col =
    match List.assoc_opt rel p.decls with
    | Some a -> a
    | None -> err line col "undeclared relation %s" rel
  in
  let check_atom (a : atom) =
    let arity = arity_of a.rel a.a_line a.a_col in
    if List.length a.terms <> arity then
      err a.a_line a.a_col "%s expects %d arguments, got %d" a.rel arity (List.length a.terms)
  in
  List.iter
    (fun (name, _) ->
      if List.length (List.filter (fun (n, _) -> n = name) p.decls) > 1 then
        raise (Err (Printf.sprintf "0:0: duplicate declaration of %s" name)))
    p.decls;
  List.iter
    (fun (a : atom) ->
      check_atom a;
      List.iter
        (function
          | Tm_var _ -> err a.a_line a.a_col "facts must be ground"
          | Tm_const _ -> ())
        a.terms)
    p.facts;
  List.iter
    (fun c ->
      check_atom c.head;
      List.iter check_atom c.pos;
      List.iter check_atom c.neg;
      let bound = Hashtbl.create 8 in
      List.iter
        (fun (a : atom) ->
          List.iter
            (function Tm_var v when v <> "_" -> Hashtbl.replace bound v () | _ -> ())
            a.terms)
        c.pos;
      let need what (a : atom) =
        List.iter
          (function
            | Tm_var "_" -> err a.a_line a.a_col "'_' is not allowed in %s" what
            | Tm_var v when not (Hashtbl.mem bound v) ->
              err a.a_line a.a_col "variable %s in %s is not bound by a positive atom" v what
            | _ -> ())
          a.terms
      in
      need "the head" c.head;
      List.iter (need "a negated atom") c.neg)
    p.clauses;
  List.iter
    (fun name ->
      if not (List.mem_assoc name p.decls) then
        raise (Err (Printf.sprintf "0:0: .output of undeclared relation %s" name)))
    p.outputs

(* stratum(r): 0 for EDB-ish; for each rule, head >= every positive body
   stratum, and head > every negated body stratum. Iterate to fixpoint;
   a stratum exceeding the relation count means negative recursion. *)
let stratify (p : program) =
  let strata = Hashtbl.create 16 in
  List.iter (fun (name, _) -> Hashtbl.replace strata name 0) p.decls;
  let n_rels = List.length p.decls in
  let get r = Hashtbl.find strata r in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun c ->
        let required =
          List.fold_left (fun acc (a : atom) -> max acc (get a.rel)) 0 c.pos
          |> fun acc -> List.fold_left (fun acc (a : atom) -> max acc (get a.rel + 1)) acc c.neg
        in
        if required > get c.head.rel then begin
          if required > n_rels then
            err c.head.a_line c.head.a_col "negation through recursion at %s" c.head.rel;
          Hashtbl.replace strata c.head.rel required;
          changed := true
        end)
      p.clauses
  done;
  strata

(* ---------- evaluation ---------- *)

let parse src =
  try
    let ast = parse_tokens (tokenize src) in
    validate ast;
    ignore (stratify ast);
    Ok ast
  with Err msg -> Error msg

let run ?(budget = 0) (p : program) =
  try
    let values : value Interner.t = Interner.create ~dummy:(Int 0) () in
    let rels = Hashtbl.create 16 in
    List.iter
      (fun (name, arity) -> Hashtbl.replace rels name (Relation.create ~name ~arity))
      p.decls;
    let rel name = Hashtbl.find rels name in
    List.iter
      (fun (a : atom) ->
        let tup =
          Array.of_list
            (List.map
               (function Tm_const v -> Interner.intern values v | Tm_var _ -> assert false)
               a.terms)
        in
        ignore (Relation.add (rel a.rel) tup))
      p.facts;
    let strata_of = stratify p in
    let max_stratum = Hashtbl.fold (fun _ s acc -> max s acc) strata_of 0 in
    let compile (c : clause) =
      let var_ids = Hashtbl.create 8 in
      let fresh = ref 0 in
      let var v =
        if v = "_" then begin
          (* each anonymous variable is distinct *)
          let id = !fresh in
          incr fresh;
          Rule.Var id
        end
        else
          match Hashtbl.find_opt var_ids v with
          | Some id -> Rule.Var id
          | None ->
            let id = !fresh in
            incr fresh;
            Hashtbl.add var_ids v id;
            Rule.Var id
      in
      let term = function
        | Tm_var v -> var v
        | Tm_const c -> Rule.Const (Interner.intern values c)
      in
      let conv (a : atom) = (rel a.rel, Array.of_list (List.map term a.terms)) in
      (* convert body first so head/neg variables are bound-checked against
         the same numbering *)
      let body = List.map conv c.pos in
      let neg = List.map conv c.neg in
      let head = conv c.head in
      Rule.make ~n_vars:(max 1 !fresh) ~heads:[ head ] ~body ~neg ()
    in
    for stratum = 0 to max_stratum do
      let rules =
        List.filter_map
          (fun c -> if Hashtbl.find strata_of c.head.rel = stratum then Some (compile c) else None)
          p.clauses
      in
      if rules <> [] then ignore (Engine.fixpoint ~budget rules)
    done;
    let decode rel_name =
      let tuples =
        List.map
          (fun tup -> List.map (Interner.value values) (Array.to_list tup))
          (Relation.to_list (rel rel_name))
      in
      (rel_name, List.sort compare tuples)
    in
    Ok (List.map decode p.outputs)
  with
  | Err msg -> Error msg
  | Engine.Out_of_budget -> Error "evaluation exceeded its budget"

let value_to_string = function
  | Int n -> string_of_int n
  | Sym s -> Printf.sprintf "%S" s

let run_to_string ?budget p =
  match run ?budget p with
  | Error _ as e -> e
  | Ok outputs ->
    let buf = Buffer.create 256 in
    List.iter
      (fun (name, tuples) ->
        List.iter
          (fun tup ->
            Buffer.add_string buf
              (Printf.sprintf "%s(%s).\n" name
                 (String.concat ", " (List.map value_to_string tup))))
          tuples)
      outputs;
    Ok (Buffer.contents buf)
