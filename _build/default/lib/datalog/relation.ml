module Dynarr = Ipa_support.Dynarr

type index = {
  cols : int list;
  (* projection key -> insertion indexes of matching tuples, ascending *)
  entries : (int array, int Dynarr.t) Hashtbl.t;
}

type t = {
  rel_name : string;
  rel_arity : int;
  tuples : int array Dynarr.t;
  seen : (int array, unit) Hashtbl.t;
  mutable indexes : index list;
}

let create ~name ~arity =
  {
    rel_name = name;
    rel_arity = arity;
    tuples = Dynarr.create ~dummy:[||] ();
    seen = Hashtbl.create 64;
    indexes = [];
  }

let name t = t.rel_name
let arity t = t.rel_arity
let size t = Dynarr.length t.tuples

let project cols tup = Array.of_list (List.map (Array.get tup) cols)

let index_add idx pos tup =
  let key = project idx.cols tup in
  match Hashtbl.find_opt idx.entries key with
  | Some d -> Dynarr.push d pos
  | None ->
    let d = Dynarr.create ~capacity:4 ~dummy:0 () in
    Dynarr.push d pos;
    Hashtbl.add idx.entries key d

let add t tup =
  if Array.length tup <> t.rel_arity then
    invalid_arg
      (Printf.sprintf "Relation.add: %s expects arity %d, got %d" t.rel_name t.rel_arity
         (Array.length tup));
  if Hashtbl.mem t.seen tup then false
  else begin
    Hashtbl.add t.seen tup ();
    let pos = Dynarr.push_get_index t.tuples tup in
    List.iter (fun idx -> index_add idx pos tup) t.indexes;
    true
  end

let mem t tup = Hashtbl.mem t.seen tup

let get t i = Dynarr.get t.tuples i

let iter f t = Dynarr.iter f t.tuples

let iter_range f t ~lo ~hi =
  let hi = min hi (Dynarr.length t.tuples) in
  for i = max lo 0 to hi - 1 do
    f (Dynarr.get t.tuples i)
  done

let to_list t = Dynarr.to_list t.tuples

let clear t =
  Dynarr.clear t.tuples;
  Hashtbl.reset t.seen;
  t.indexes <- []

let find_or_create_index t cols =
  match List.find_opt (fun idx -> idx.cols = cols) t.indexes with
  | Some idx -> idx
  | None ->
    let idx = { cols; entries = Hashtbl.create 64 } in
    Dynarr.iteri (fun pos tup -> index_add idx pos tup) t.tuples;
    t.indexes <- idx :: t.indexes;
    idx

let iter_matching t ~cols ~key ~lo ~hi f =
  if cols = [] then iter_range f t ~lo ~hi
  else begin
    let idx = find_or_create_index t cols in
    match Hashtbl.find_opt idx.entries key with
    | None -> ()
    | Some positions ->
      Dynarr.iter (fun pos -> if pos >= lo && pos < hi then f (Dynarr.get t.tuples pos)) positions
  end
