let check_into what rel ~group_by ~into =
  if Relation.arity into <> List.length group_by + 1 then
    invalid_arg
      (Printf.sprintf "Aggregate.%s: %s has arity %d, expected %d" what (Relation.name into)
         (Relation.arity into)
         (List.length group_by + 1));
  List.iter
    (fun c ->
      if c < 0 || c >= Relation.arity rel then
        invalid_arg (Printf.sprintf "Aggregate.%s: column %d out of range" what c))
    group_by

let fold_groups what rel ~group_by ~into ~init ~step =
  check_into what rel ~group_by ~into;
  let groups = Hashtbl.create 64 in
  Relation.iter
    (fun tup ->
      let key = Array.of_list (List.map (Array.get tup) group_by) in
      let acc = match Hashtbl.find_opt groups key with Some a -> a | None -> init in
      Hashtbl.replace groups key (step acc tup))
    rel;
  Hashtbl.iter
    (fun key acc -> ignore (Relation.add into (Array.append key [| acc |])))
    groups

let count rel ~group_by ~into =
  fold_groups "count" rel ~group_by ~into ~init:0 ~step:(fun a _ -> a + 1)

let sum rel ~group_by ~value ~into =
  fold_groups "sum" rel ~group_by ~into ~init:0 ~step:(fun a tup -> a + tup.(value))

let max_ rel ~group_by ~value ~into =
  fold_groups "max" rel ~group_by ~into ~init:min_int ~step:(fun a tup -> max a tup.(value))
