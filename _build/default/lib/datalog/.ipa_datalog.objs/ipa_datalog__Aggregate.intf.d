lib/datalog/aggregate.mli: Relation
