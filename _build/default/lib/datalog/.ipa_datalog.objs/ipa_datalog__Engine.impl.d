lib/datalog/engine.ml: Array List Relation Rule
