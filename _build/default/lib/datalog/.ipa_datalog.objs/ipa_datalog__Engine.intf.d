lib/datalog/engine.mli: Rule
