lib/datalog/rule.mli: Relation
