lib/datalog/dl.mli:
