lib/datalog/aggregate.ml: Array Hashtbl List Printf Relation
