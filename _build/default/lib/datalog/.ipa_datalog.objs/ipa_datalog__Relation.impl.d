lib/datalog/relation.ml: Array Hashtbl Ipa_support List Printf
