lib/datalog/relation.mli:
