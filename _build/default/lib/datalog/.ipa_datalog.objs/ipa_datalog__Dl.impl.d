lib/datalog/dl.ml: Array Buffer Engine Hashtbl Ipa_support List Printf Relation Rule String
