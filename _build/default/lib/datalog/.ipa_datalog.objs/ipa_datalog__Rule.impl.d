lib/datalog/rule.ml: Array List Option Printf Relation
