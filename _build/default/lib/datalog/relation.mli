(** Extensional/intensional relations over interned-int tuples.

    Tuples are [int array]s of the relation's arity, stored append-only with
    set semantics. Hash indexes on column subsets are created on demand (the
    first join that needs one) and maintained incrementally. The engine's
    semi-naive evaluation tracks deltas as index ranges into the append-only
    tuple log — see {!mark}. *)

type t

val create : name:string -> arity:int -> t

val name : t -> string
val arity : t -> int

val size : t -> int
(** Number of distinct tuples. *)

val add : t -> int array -> bool
(** [add t tup] inserts a tuple; [true] iff it was new. The array is owned by
    the relation afterwards (do not mutate). Raises [Invalid_argument] on an
    arity mismatch. *)

val mem : t -> int array -> bool

val get : t -> int -> int array
(** [get t i] is the [i]-th inserted tuple (do not mutate). *)

val iter : (int array -> unit) -> t -> unit

val iter_range : (int array -> unit) -> t -> lo:int -> hi:int -> unit
(** Iterate tuples with insertion index in [\[lo, hi)]. *)

val to_list : t -> int array list

val clear : t -> unit
(** Remove all tuples (indexes are dropped). *)

(** {1 Indexes} *)

val iter_matching : t -> cols:int list -> key:int array -> lo:int -> hi:int -> (int array -> unit) -> unit
(** [iter_matching t ~cols ~key ~lo ~hi f] applies [f] to every tuple whose
    insertion index is in [\[lo, hi)] and whose [cols] columns equal [key]
    (positionally). [cols] must be strictly increasing. An index for [cols]
    is created on first use. An empty [cols] degrades to {!iter_range}. *)
