(** Datalog rules with multiple heads, stratified negation, external
    functions, and guards.

    A rule binds variables (numbered [0 .. n_vars-1]) by matching the
    positive body atoms left to right, then evaluates the [lets] in order
    (each may bind a fresh variable from the environment — this is how the
    paper's context constructors [Record]/[Merge] enter the rules), then
    checks the negated atoms and guards, and finally inserts every head
    tuple.

    Negated atoms must be over relations that are already fully computed
    when the rule's stratum runs (EDB or a lower stratum) — the engine does
    not verify stratification; see {!Engine}. *)

type term =
  | Var of int
  | Const of int

type atom = Relation.t * term array

type t

val make :
  ?name:string ->
  n_vars:int ->
  heads:atom list ->
  body:atom list ->
  ?neg:atom list ->
  ?lets:(int * (int array -> int)) list ->
  ?guards:(int array -> bool) list ->
  unit ->
  t
(** Validates the rule shape; raises [Invalid_argument] when:
    - an atom's term count differs from its relation's arity;
    - a variable index is outside [0 .. n_vars-1];
    - a head, negated-atom, or let-input variable is not bound by the body
      atoms or an earlier let (guards and let functions receive the full
      environment array and are trusted to read only bound slots, which is
      checked for lets via a conservative "all body vars" rule: a let may
      read anything bound before it). *)

val name : t -> string

(** {1 Engine interface} *)

val n_vars : t -> int
val heads : t -> atom array
val body : t -> atom array
val neg : t -> atom array
val lets : t -> (int * (int array -> int)) array
val guards : t -> (int array -> bool) array
