exception Out_of_budget

(* Delta bookkeeping per relation, keyed by physical identity (strata have a
   handful of relations, so an assoc list is fine). *)
type deltas = {
  mutable entries : (Relation.t * int ref * int ref) list; (* rel, prev, cur *)
}

let delta_entry d rel =
  match List.find_opt (fun (r, _, _) -> r == rel) d.entries with
  | Some e -> e
  | None ->
    let e = (rel, ref 0, ref (Relation.size rel)) in
    d.entries <- e :: d.entries;
    e

let unbound = min_int

(* Fire [rule] with body atom [driver] restricted to its delta range. *)
let fire_rule ~spend d rule ~driver =
  let body = Rule.body rule in
  let n = Rule.n_vars rule in
  let env = Array.make n unbound in
  (* Match [tup] against [terms], binding fresh variables on a trail so
     mismatches roll back cleanly. *)
  let try_match terms tup =
    let trail = ref [] in
    let ok = ref true in
    let i = ref 0 in
    let len = Array.length terms in
    while !ok && !i < len do
      (match terms.(!i) with
      | Rule.Const c -> if tup.(!i) <> c then ok := false
      | Rule.Var v ->
        if env.(v) = unbound then begin
          env.(v) <- tup.(!i);
          trail := v :: !trail
        end
        else if env.(v) <> tup.(!i) then ok := false);
      incr i
    done;
    if !ok then Some !trail
    else begin
      List.iter (fun v -> env.(v) <- unbound) !trail;
      None
    end
  in
  let finish () =
    Array.iter (fun (v, f) -> env.(v) <- f env) (Rule.lets rule);
    let instantiate terms =
      Array.map (function Rule.Const c -> c | Rule.Var v -> env.(v)) terms
    in
    let negated_holds =
      Array.exists (fun (rel, terms) -> Relation.mem rel (instantiate terms)) (Rule.neg rule)
    in
    if (not negated_holds) && Array.for_all (fun g -> g env) (Rule.guards rule) then
      Array.iter
        (fun (rel, terms) -> if Relation.add rel (instantiate terms) then spend ())
        (Rule.heads rule);
    Array.iter (fun (v, _) -> env.(v) <- unbound) (Rule.lets rule)
  in
  let rec join k =
    if k >= Array.length body then finish ()
    else if k = driver then join (k + 1)
    else begin
      let rel, terms = body.(k) in
      (* Columns already determined by the environment form the index key. *)
      let cols = ref [] in
      let key = ref [] in
      Array.iteri
        (fun i term ->
          match term with
          | Rule.Const c ->
            cols := i :: !cols;
            key := c :: !key
          | Rule.Var v ->
            if env.(v) <> unbound then begin
              cols := i :: !cols;
              key := env.(v) :: !key
            end)
        terms;
      let cols = List.rev !cols in
      let key = Array.of_list (List.rev !key) in
      Relation.iter_matching rel ~cols ~key ~lo:0 ~hi:(Relation.size rel) (fun tup ->
          match try_match terms tup with
          | Some trail ->
            join (k + 1);
            List.iter (fun v -> env.(v) <- unbound) trail
          | None -> ())
    end
  in
  if Array.length body = 0 then finish ()
  else begin
    let rel, terms = body.(driver) in
    let _, prev, cur = delta_entry d rel in
    Relation.iter_range
      (fun tup ->
        match try_match terms tup with
        | Some trail ->
          join 0;
          List.iter (fun v -> env.(v) <- unbound) trail
        | None -> ())
      rel ~lo:!prev ~hi:!cur
  end

let fixpoint ?(budget = 0) rules =
  let derivations = ref 0 in
  let spend () =
    incr derivations;
    if budget > 0 && !derivations > budget then raise Out_of_budget
  in
  let d = { entries = [] } in
  (* Register every relation appearing in the stratum. *)
  List.iter
    (fun rule ->
      Array.iter (fun (rel, _) -> ignore (delta_entry d rel)) (Rule.body rule);
      Array.iter (fun (rel, _) -> ignore (delta_entry d rel)) (Rule.heads rule))
    rules;
  (* Rules with empty bodies fire exactly once. *)
  List.iter
    (fun rule -> if Array.length (Rule.body rule) = 0 then fire_rule ~spend d rule ~driver:0)
    rules;
  let continue_ = ref true in
  while !continue_ do
    List.iter
      (fun rule ->
        let n_body = Array.length (Rule.body rule) in
        for driver = 0 to n_body - 1 do
          fire_rule ~spend d rule ~driver
        done)
      rules;
    (* Advance deltas; stop when nothing grew. *)
    continue_ := false;
    List.iter
      (fun (rel, prev, cur) ->
        let size = Relation.size rel in
        prev := !cur;
        cur := size;
        if size > !prev then continue_ := true)
      d.entries
  done;
  !derivations

let run_strata ?(budget = 0) strata =
  let remaining = ref budget in
  let total = ref 0 in
  List.iter
    (fun stratum ->
      let n = fixpoint ~budget:!remaining stratum in
      total := !total + n;
      if budget > 0 then remaining := max 1 (!remaining - n))
    strata;
  !total
