(** A textual Datalog front-end for the engine.

    Doop-style analyses are written as Datalog text; this module provides a
    small concrete syntax so the engine is usable standalone (and from the
    [introspect datalog] CLI command), with automatic stratification of
    negation:

    {v
    .decl edge(2)
    .decl path(2)
    .decl node(1)
    .decl unreached(1)

    node(1). node(2). node(3). node("isolated").
    edge(1, 2). edge(2, 3).

    path(X, Y) :- edge(X, Y).
    path(X, Z) :- edge(X, Y), path(Y, Z).
    unreached(X) :- node(X), !path(1, X).

    .output path
    .output unreached
    v}

    Variables start with an uppercase letter; constants are integers or
    double-quoted symbols; [!atom] negates (the negated relation must be
    computable in a strictly lower stratum — negative recursion is
    rejected); [_] is an anonymous variable. Comments: [// ...] and
    [/* ... */]. *)

type value =
  | Int of int
  | Sym of string

type program

val parse : string -> (program, string) result
(** Parse and validate (declared arities, bound head/negation variables,
    stratifiability). The error string contains a line:column position. *)

val run : ?budget:int -> program -> ((string * value list list) list, string) result
(** Evaluate to fixpoint and return the contents of each [.output] relation,
    in declaration order, each tuple list sorted. [Error] on budget
    exhaustion. *)

val run_to_string : ?budget:int -> program -> (string, string) result
(** [run] rendered one fact per line, e.g. [path(1, 3).]. *)
