(** Semi-naive bottom-up evaluation.

    [fixpoint rules] runs one stratum to fixpoint: repeatedly fires every
    rule with each positive body atom in turn restricted to the tuples new
    since the previous iteration (the delta), until no relation grows.
    Facts already present in the rules' relations act as the EDB.

    Stratification is the caller's responsibility: negated atoms and
    aggregation inputs must be fully computed before the stratum referencing
    them runs — evaluate strata in order with successive [fixpoint] calls
    ({!run_strata}). *)

exception Out_of_budget

val fixpoint : ?budget:int -> Rule.t list -> int
(** Returns the number of tuples derived (inserted). [budget] bounds that
    number; exceeding it raises {!Out_of_budget} ([0] = unlimited). *)

val run_strata : ?budget:int -> Rule.t list list -> int
(** [fixpoint] on each stratum in order; the budget is shared. *)
