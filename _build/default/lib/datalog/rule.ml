type term =
  | Var of int
  | Const of int

type atom = Relation.t * term array

type t = {
  rule_name : string;
  rule_n_vars : int;
  rule_heads : atom array;
  rule_body : atom array;
  rule_neg : atom array;
  rule_lets : (int * (int array -> int)) array;
  rule_guards : (int array -> bool) array;
}

let check_atom what n_vars ((rel, terms) : atom) =
  if Array.length terms <> Relation.arity rel then
    invalid_arg
      (Printf.sprintf "Rule.make: %s atom %s has %d terms, arity is %d" what (Relation.name rel)
         (Array.length terms) (Relation.arity rel));
  Array.iter
    (function
      | Var v when v < 0 || v >= n_vars ->
        invalid_arg (Printf.sprintf "Rule.make: variable %d out of range in %s" v (Relation.name rel))
      | Var _ | Const _ -> ())
    terms

let bound_by_body body lets n_vars =
  let bound = Array.make n_vars false in
  List.iter
    (fun ((_, terms) : atom) ->
      Array.iter (function Var v -> bound.(v) <- true | Const _ -> ()) terms)
    body;
  List.iter (fun (v, _) -> bound.(v) <- true) lets;
  bound

let make ?name ~n_vars ~heads ~body ?(neg = []) ?(lets = []) ?(guards = []) () =
  if n_vars < 0 then invalid_arg "Rule.make: negative n_vars";
  List.iter (check_atom "head" n_vars) heads;
  List.iter (check_atom "body" n_vars) body;
  List.iter (check_atom "negated" n_vars) neg;
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= n_vars then invalid_arg "Rule.make: let variable out of range")
    lets;
  let bound = bound_by_body body lets n_vars in
  let check_bound what ((rel, terms) : atom) =
    Array.iter
      (function
        | Var v when not bound.(v) ->
          invalid_arg
            (Printf.sprintf "Rule.make: unbound variable %d in %s atom %s" v what
               (Relation.name rel))
        | Var _ | Const _ -> ())
      terms
  in
  List.iter (check_bound "head") heads;
  List.iter (check_bound "negated") neg;
  let default_name =
    match heads with
    | (rel, _) :: _ -> Relation.name rel ^ "<-..."
    | [] -> invalid_arg "Rule.make: a rule needs at least one head"
  in
  {
    rule_name = Option.value ~default:default_name name;
    rule_n_vars = n_vars;
    rule_heads = Array.of_list heads;
    rule_body = Array.of_list body;
    rule_neg = Array.of_list neg;
    rule_lets = Array.of_list lets;
    rule_guards = Array.of_list guards;
  }

let name t = t.rule_name
let n_vars t = t.rule_n_vars
let heads t = t.rule_heads
let body t = t.rule_body
let neg t = t.rule_neg
let lets t = t.rule_lets
let guards t = t.rule_guards
