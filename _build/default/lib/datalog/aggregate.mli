(** Aggregation between strata.

    Mirrors the paper's [agg<result = count()>] construct used by the
    introspection metric queries: group the tuples of a fully-computed
    relation by a column subset and emit one tuple per group carrying the
    aggregate value. Must run after the stratum computing the input. *)

val count : Relation.t -> group_by:int list -> into:Relation.t -> unit
(** [count rel ~group_by ~into] adds, for every distinct projection of
    [group_by], the tuple [projection @ [n]] to [into], where [n] is the
    number of tuples of [rel] with that projection. [into]'s arity must be
    [length group_by + 1]. *)

val sum : Relation.t -> group_by:int list -> value:int -> into:Relation.t -> unit
(** Like {!count} but summing column [value] per group. *)

val max_ : Relation.t -> group_by:int list -> value:int -> into:Relation.t -> unit
(** Like {!sum} but taking the maximum of column [value] per group. *)
