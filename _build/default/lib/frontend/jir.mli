(** Facade: parse [.jir] source into a validated [Ipa_ir.Program.t]. *)

type error = { line : int; col : int; msg : string }

val error_to_string : error -> string

val parse_string : string -> (Ipa_ir.Program.t, error) result
(** Lex, parse, resolve, and well-formedness-check a compilation unit. *)

val parse_file : string -> (Ipa_ir.Program.t, error) result
(** [parse_string] on the contents of a file. I/O failures are reported as an
    [error] at position 0:0. *)
