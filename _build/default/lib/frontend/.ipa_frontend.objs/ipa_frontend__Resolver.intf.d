lib/frontend/resolver.mli: Ast Ipa_ir
