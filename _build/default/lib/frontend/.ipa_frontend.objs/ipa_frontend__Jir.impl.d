lib/frontend/jir.ml: Ast In_channel Lexer Parser Printf Resolver
