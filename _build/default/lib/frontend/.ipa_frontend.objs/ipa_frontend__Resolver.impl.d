lib/frontend/resolver.ml: Array Ast Hashtbl Ipa_ir List Option Printf String
