lib/frontend/jir.mli: Ipa_ir
