lib/frontend/lexer.ml: Array Ast List Printf String
