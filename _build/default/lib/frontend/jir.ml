type error = { line : int; col : int; msg : string }

let error_to_string { line; col; msg } = Printf.sprintf "%d:%d: %s" line col msg

let of_pos (p : Ast.pos) msg = { line = p.line; col = p.col; msg }

let parse_string src =
  match Parser.parse src with
  | exception Lexer.Lex_error (pos, msg) -> Error (of_pos pos msg)
  | exception Parser.Parse_error (pos, msg) -> Error (of_pos pos msg)
  | ast -> (
    match Resolver.resolve ast with
    | Ok p -> Ok p
    | Error { pos; msg } -> Error (of_pos pos msg))

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error { line = 0; col = 0; msg }
  | src -> parse_string src
