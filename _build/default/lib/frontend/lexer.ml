type token =
  | Id of string
  | Int of int
  | Kw_class
  | Kw_interface
  | Kw_extends
  | Kw_implements
  | Kw_field
  | Kw_method
  | Kw_static
  | Kw_var
  | Kw_new
  | Kw_return
  | Kw_throw
  | Kw_catch
  | Kw_entry
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Eq
  | Dot
  | Coloncolon
  | Slash
  | Eof

let token_to_string = function
  | Id s -> Printf.sprintf "identifier %S" s
  | Int n -> Printf.sprintf "integer %d" n
  | Kw_class -> "'class'"
  | Kw_interface -> "'interface'"
  | Kw_extends -> "'extends'"
  | Kw_implements -> "'implements'"
  | Kw_field -> "'field'"
  | Kw_method -> "'method'"
  | Kw_static -> "'static'"
  | Kw_var -> "'var'"
  | Kw_new -> "'new'"
  | Kw_return -> "'return'"
  | Kw_throw -> "'throw'"
  | Kw_catch -> "'catch'"
  | Kw_entry -> "'entry'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Comma -> "','"
  | Semi -> "';'"
  | Eq -> "'='"
  | Dot -> "'.'"
  | Coloncolon -> "'::'"
  | Slash -> "'/'"
  | Eof -> "end of input"

exception Lex_error of Ast.pos * string

let keyword = function
  | "class" -> Some Kw_class
  | "interface" -> Some Kw_interface
  | "extends" -> Some Kw_extends
  | "implements" -> Some Kw_implements
  | "field" -> Some Kw_field
  | "method" -> Some Kw_method
  | "static" -> Some Kw_static
  | "var" -> Some Kw_var
  | "new" -> Some Kw_new
  | "return" -> Some Kw_return
  | "throw" -> Some Kw_throw
  | "catch" -> Some Kw_catch
  | "entry" -> Some Kw_entry
  | _ -> None

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_id_char c = is_id_start c || (c >= '0' && c <= '9') || c = '$'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let col = ref 1 in
  let i = ref 0 in
  let pos () : Ast.pos = { line = !line; col = !col } in
  let advance () =
    if src.[!i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  let emit tok p = tokens := (tok, p) :: !tokens in
  let error p fmt = Printf.ksprintf (fun s -> raise (Lex_error (p, s))) fmt in
  while !i < n do
    let c = src.[!i] in
    let p = pos () in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while not !closed do
        if !i + 1 >= n then error p "unterminated block comment";
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done
    end
    else if is_id_start c then begin
      let start = !i in
      while !i < n && is_id_char src.[!i] do
        advance ()
      done;
      let word = String.sub src start (!i - start) in
      emit (match keyword word with Some k -> k | None -> Id word) p
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      emit (Int (int_of_string (String.sub src start (!i - start)))) p
    end
    else begin
      (match c with
      | '{' -> emit Lbrace p
      | '}' -> emit Rbrace p
      | '(' -> emit Lparen p
      | ')' -> emit Rparen p
      | ',' -> emit Comma p
      | ';' -> emit Semi p
      | '=' -> emit Eq p
      | '.' -> emit Dot p
      | '/' -> emit Slash p
      | ':' ->
        if !i + 1 < n && src.[!i + 1] = ':' then begin
          advance ();
          emit Coloncolon p
        end
        else error p "expected '::'"
      | _ -> error p "unexpected character %C" c);
      advance ()
    end
  done;
  emit Eof (pos ());
  Array.of_list (List.rev !tokens)
