(** Hand-written lexer for the [.jir] format.

    Menhir/ocamllex are not available in this environment, and the token set
    is small, so both lexer and parser are hand-rolled — which also gives
    precise, positioned error messages. *)

type token =
  | Id of string
  | Int of int
  | Kw_class
  | Kw_interface
  | Kw_extends
  | Kw_implements
  | Kw_field
  | Kw_method
  | Kw_static
  | Kw_var
  | Kw_new
  | Kw_return
  | Kw_throw
  | Kw_catch
  | Kw_entry
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Eq
  | Dot
  | Coloncolon
  | Slash
  | Eof

val token_to_string : token -> string

exception Lex_error of Ast.pos * string

val tokenize : string -> (token * Ast.pos) array
(** [tokenize src] is the token stream of [src], ending with [Eof]. Supports
    [//] line comments and [/* ... */] block comments. Identifiers are
    [\[A-Za-z_\]\[A-Za-z0-9_$\]*]. Raises {!Lex_error} on anything else. *)
