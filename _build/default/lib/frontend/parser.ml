open Lexer

exception Parse_error of Ast.pos * string

type state = { tokens : (token * Ast.pos) array; mutable cursor : int }

let peek st = fst st.tokens.(st.cursor)

let peek2 st =
  if st.cursor + 1 < Array.length st.tokens then fst st.tokens.(st.cursor + 1) else Eof

let pos st = snd st.tokens.(st.cursor)

let advance st = if st.cursor + 1 < Array.length st.tokens then st.cursor <- st.cursor + 1

let error st fmt = Printf.ksprintf (fun s -> raise (Parse_error (pos st, s))) fmt

let expect st tok =
  if peek st = tok then advance st
  else error st "expected %s but found %s" (token_to_string tok) (token_to_string (peek st))

let ident st =
  match peek st with
  | Id s ->
    advance st;
    s
  | t -> error st "expected an identifier but found %s" (token_to_string t)

let integer st =
  match peek st with
  | Int n ->
    advance st;
    n
  | t -> error st "expected an integer but found %s" (token_to_string t)

let comma_list st elem =
  let rec more acc = if peek st = Comma then (advance st; more (elem st :: acc)) else List.rev acc in
  more [ elem st ]

(* Argument list, after the '(' has been consumed. *)
let arguments st =
  if peek st = Rparen then begin
    advance st;
    []
  end
  else begin
    let args = comma_list st ident in
    expect st Rparen;
    args
  end

(* A statement starting with [target =]: allocation, cast, move, load,
   static load, or call with receiver. Both '=' tokens are already consumed. *)
let assignment st target : Ast.stmt =
  match peek st with
  | Kw_new ->
    advance st;
    let cls = ident st in
    Alloc { target; cls }
  | Lparen ->
    advance st;
    let cls = ident st in
    expect st Rparen;
    let source = ident st in
    Cast { target; cls; source }
  | Id _ ->
    let name = ident st in
    (match peek st with
    | Dot ->
      advance st;
      let member = ident st in
      (match peek st with
      | Lparen ->
        advance st;
        Vcall { recv = Some target; base = name; name = member; args = arguments st }
      | Coloncolon ->
        advance st;
        let field = ident st in
        Load { target; base = name; field = { fr_class = Some member; fr_name = field } }
      | _ -> Load { target; base = name; field = { fr_class = None; fr_name = member } })
    | Coloncolon ->
      advance st;
      let member = ident st in
      (match peek st with
      | Lparen ->
        advance st;
        Scall { recv = Some target; cls = name; name = member; args = arguments st }
      | _ -> Load_static { target; cls = name; field = member })
    | _ -> Move { target; source = name })
  | t -> error st "expected a statement right-hand side but found %s" (token_to_string t)

(* A statement starting with an identifier that is not followed by '='. *)
let non_assignment st name : Ast.stmt =
  match peek st with
  | Dot ->
    advance st;
    let member = ident st in
    (match peek st with
    | Lparen ->
      advance st;
      Vcall { recv = None; base = name; name = member; args = arguments st }
    | Coloncolon ->
      advance st;
      let field = ident st in
      expect st Eq;
      let source = ident st in
      Store { base = name; field = { fr_class = Some member; fr_name = field }; source }
    | Eq ->
      advance st;
      let source = ident st in
      Store { base = name; field = { fr_class = None; fr_name = member }; source }
    | t -> error st "expected '(', '::' or '=' but found %s" (token_to_string t))
  | Coloncolon ->
    advance st;
    let member = ident st in
    (match peek st with
    | Lparen ->
      advance st;
      Scall { recv = None; cls = name; name = member; args = arguments st }
    | Eq ->
      advance st;
      let source = ident st in
      Store_static { cls = name; field = member; source }
    | t -> error st "expected '(' or '=' but found %s" (token_to_string t))
  | t -> error st "expected '.', '::' or '=' after %S but found %s" name (token_to_string t)

let statement st : Ast.stmt * Ast.pos =
  let p = pos st in
  let stmt =
    match peek st with
    | Kw_var ->
      advance st;
      Ast.Decl_vars (comma_list st ident)
    | Kw_return ->
      advance st;
      (match peek st with
      | Semi -> Ast.Return None
      | Id _ -> Ast.Return (Some (ident st))
      | t -> error st "expected a variable or ';' but found %s" (token_to_string t))
    | Kw_throw ->
      advance st;
      Ast.Throw (ident st)
    | Kw_catch ->
      advance st;
      expect st Lparen;
      let cls = ident st in
      expect st Rparen;
      Ast.Catch { cls; var = ident st }
    | Id _ ->
      let name = ident st in
      if peek st = Eq && peek2 st <> Eq then begin
        advance st;
        assignment st name
      end
      else non_assignment st name
    | t -> error st "expected a statement but found %s" (token_to_string t)
  in
  expect st Semi;
  (stmt, p)

let method_member st ~static : Ast.member =
  expect st Kw_method;
  let name = ident st in
  expect st Slash;
  let arity = integer st in
  match peek st with
  | Semi ->
    advance st;
    if static then error st "abstract method %s cannot be static" name;
    Method { static; name; arity; params = None; body = [] }
  | Lparen ->
    advance st;
    let params = if peek st = Rparen then [] else comma_list st ident in
    expect st Rparen;
    if List.length params <> arity then
      error st "method %s/%d declares %d parameters" name arity (List.length params);
    expect st Lbrace;
    let body = ref [] in
    while peek st <> Rbrace do
      body := statement st :: !body
    done;
    expect st Rbrace;
    Method { static; name; arity; params = Some params; body = List.rev !body }
  | t -> error st "expected ';' or '(' but found %s" (token_to_string t)

let member st : Ast.member * Ast.pos =
  let p = pos st in
  let m =
    match peek st with
    | Kw_static ->
      advance st;
      (match peek st with
      | Kw_field ->
        advance st;
        Ast.Field { static = true; name = ident st }
      | Kw_method -> method_member st ~static:true
      | t -> error st "expected 'field' or 'method' but found %s" (token_to_string t))
    | Kw_field ->
      advance st;
      Ast.Field { static = false; name = ident st }
    | Kw_method -> method_member st ~static:false
    | t -> error st "expected a member but found %s" (token_to_string t)
  in
  (match m with Ast.Field _ -> expect st Semi | Ast.Method _ -> ());
  (m, p)

let members st =
  expect st Lbrace;
  let acc = ref [] in
  while peek st <> Rbrace do
    acc := member st :: !acc
  done;
  expect st Rbrace;
  List.rev !acc

let class_decl st ~interface : Ast.class_decl =
  let p = pos st in
  advance st;
  (* consume 'class' / 'interface' *)
  let name = ident st in
  let super = ref None in
  let interfaces = ref [] in
  if interface then begin
    if peek st = Kw_extends then begin
      advance st;
      interfaces := comma_list st ident
    end
  end
  else begin
    if peek st = Kw_extends then begin
      advance st;
      super := Some (ident st)
    end;
    if peek st = Kw_implements then begin
      advance st;
      interfaces := comma_list st ident
    end
  end;
  {
    cd_name = name;
    cd_interface = interface;
    cd_super = !super;
    cd_interfaces = !interfaces;
    cd_members = members st;
    cd_pos = p;
  }

let entry_decl st : Ast.entry_decl =
  let p = pos st in
  expect st Kw_entry;
  let cls = ident st in
  expect st Coloncolon;
  let name = ident st in
  expect st Slash;
  let arity = integer st in
  expect st Semi;
  { en_class = cls; en_name = name; en_arity = arity; en_pos = p }

let parse src : Ast.program =
  let st = { tokens = Lexer.tokenize src; cursor = 0 } in
  let decls = ref [] in
  let entry_decls = ref [] in
  while peek st <> Eof do
    match peek st with
    | Kw_class -> decls := class_decl st ~interface:false :: !decls
    | Kw_interface -> decls := class_decl st ~interface:true :: !decls
    | Kw_entry -> entry_decls := entry_decl st :: !entry_decls
    | t -> error st "expected 'class', 'interface' or 'entry' but found %s" (token_to_string t)
  done;
  { decls = List.rev !decls; entry_decls = List.rev !entry_decls }
