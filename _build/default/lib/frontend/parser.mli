(** Recursive-descent parser for the [.jir] format.

    See {!Ipa_ir.Pretty} for the grammar. The parser is purely syntactic —
    names are resolved by {!Resolver}. *)

exception Parse_error of Ast.pos * string

val parse : string -> Ast.program
(** [parse src] parses a whole compilation unit. Raises {!Parse_error} or
    {!Lexer.Lex_error}. *)
