(** Abstract syntax of the [.jir] format, produced by {!Parser} and consumed
    by {!Resolver}. Everything is by-name; positions are kept for error
    reporting. *)

type pos = { line : int; col : int }

let pos_to_string { line; col } = Printf.sprintf "%d:%d" line col

(** Field reference, optionally qualified with the owning class. *)
type fieldref = { fr_class : string option; fr_name : string }

type stmt =
  | Decl_vars of string list
  | Alloc of { target : string; cls : string }
  | Cast of { target : string; cls : string; source : string }
  | Move of { target : string; source : string }
  | Load of { target : string; base : string; field : fieldref }
  | Store of { base : string; field : fieldref; source : string }
  | Load_static of { target : string; cls : string; field : string }
  | Store_static of { cls : string; field : string; source : string }
  | Vcall of { recv : string option; base : string; name : string; args : string list }
  | Scall of { recv : string option; cls : string; name : string; args : string list }
  | Return of string option
  | Throw of string
  | Catch of { cls : string; var : string }

type member =
  | Field of { static : bool; name : string }
  | Method of {
      static : bool;
      name : string;
      arity : int;
      params : string list option;  (** [None] for an abstract declaration *)
      body : (stmt * pos) list;
    }

type class_decl = {
  cd_name : string;
  cd_interface : bool;
  cd_super : string option;
  cd_interfaces : string list;
  cd_members : (member * pos) list;
  cd_pos : pos;
}

type entry_decl = { en_class : string; en_name : string; en_arity : int; en_pos : pos }

type program = { decls : class_decl list; entry_decls : entry_decl list }
