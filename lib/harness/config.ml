type t = { scale : float; budget : int; jobs : int; cache : Cache.t }

let default =
  {
    scale = 1.0;
    budget = 10_000_000;
    jobs = Domain.recommended_domain_count ();
    cache = Cache.create ();
  }

let timeout_label = "timeout"
