(** Reproduction of every table and figure of the paper's evaluation (§4).

    Each experiment has a [compute] function returning structured results
    (used by tests at small scales) and a [print] function rendering the
    paper-style table to stdout. Timings are wall-clock seconds of the
    introspective second pass / plain run, as in the paper (the shared
    context-insensitive first pass is reported separately).

    Independent (benchmark, flavor) analyses fan out over
    {!Ipa_support.Domain_pool} with [Config.jobs] workers; every [compute]
    returns results in input order and — timing fields aside — bit-identical
    to a sequential run. Printing always happens after the parallel compute,
    on the calling domain. *)

(** One analysis execution on one benchmark. *)
type run = {
  bench : string;
  analysis : string;  (** ["insens"], ["2objH"], ["2objH-IntroA"], ... *)
  seconds : float;
  derivations : int;
  timed_out : bool;
  precision : Ipa_core.Precision.t option;  (** [None] when timed out *)
  tainted_sinks : int option;
      (** tainted sinks under [Ipa_clients.Taint.default_spec]; [None] when
          timed out, [Some 0] on workloads without taint sources *)
  counters : Ipa_core.Solution.counters;
      (** solver propagation counters for this run (see
          {!Ipa_core.Diagnostics.print_counters}) *)
}

val of_result : string -> Ipa_core.Analysis.result -> run
(** [of_result bench r] summarizes a solved analysis as a {!run} row —
    precision and tainted sinks are computed here (and skipped on budget
    exhaustion, where they would be misleading). *)

val run_to_row : run -> string list
(** Table cells: analysis, time, derivations, the three precision metrics,
    tainted sinks. *)

(** {1 Figure 1} — context-insensitive vs 2objH running time, 9 benchmarks *)

module Fig1 : sig
  val compute : Config.t -> run list
  (** Two runs (insens, 2objH) per benchmark, in benchmark order. *)

  val print_runs : run list -> unit
  val print : Config.t -> unit
end

(** {1 Figure 4} — fraction of call sites / objects NOT refined *)

module Fig4 : sig
  type row = {
    bench : string;
    a_sites_pct : float;
    b_sites_pct : float;
    a_objects_pct : float;
    b_objects_pct : float;
  }

  val compute : Config.t -> row list
  (** One row per hard benchmark; the final row is the average (named
      ["average"]). *)

  val print_rows : row list -> unit
  val print : Config.t -> unit
end

(** {1 Figures 5, 6, 7} — time + precision for introspective variants of
    2objH, 2typeH, 2callH on the charted benchmarks *)

module Figs567 : sig
  val compute : Config.t -> Ipa_core.Flavors.spec -> run list
  (** Per benchmark: insens, <flavor>-IntroA, <flavor>-IntroB, <flavor>. *)

  val print_runs : Ipa_core.Flavors.spec -> run list -> unit
  (** Expects [compute]'s layout: four runs per benchmark, benchmark order. *)

  val print : Config.t -> Ipa_core.Flavors.spec -> unit
  (** [print cfg flavor] — Figure 5 is [2objH], 6 is [2typeH], 7 is
      [2callH]. *)
end

(** {1 Taint study} — tainted sinks on a workload separable only by context
    (the {!Ipa_synthetic.Motifs.taint_pipes} motif plus ballast): insens vs
    2objH-IntroA vs 2objH-IntroB vs full 2objH. The paper-style client
    precision argument, with taint as the client. *)

module Taint_study : sig
  val clients : Config.t -> int
  (** Number of pipeline clients at this scale (one of them hot). *)

  val compute : Config.t -> run list
  (** [insens; 2objH-IntroA; 2objH-IntroB; 2objH] on the taint workload. *)

  val print_runs : Config.t -> run list -> unit
  val print : Config.t -> unit
end

(** {1 The whole evaluation as data} — computed once, printable and
    serializable (the bench harness emits it as [BENCH_solver.json]). *)

type report = {
  fig1 : run list;
  fig4 : Fig4.row list;
  fig5 : run list;  (** Figs567 with 2objH *)
  fig6 : run list;  (** Figs567 with 2typeH *)
  fig7 : run list;  (** Figs567 with 2callH *)
  taint : run list;
}

val compute_report : Config.t -> report

val print_report : Config.t -> report -> unit
(** Figures 1, 4, 5, 6, 7, then the taint study, from precomputed data. *)

val print_all : Config.t -> unit
(** [compute_report] then [print_report]. *)
