(** Reproduction of every table and figure of the paper's evaluation (§4).

    Each experiment has a [compute] function returning structured results
    (used by tests at small scales) and a [print] function rendering the
    paper-style table to stdout. Timings are wall-clock seconds of the
    introspective second pass / plain run, as in the paper (the shared
    context-insensitive first pass is reported separately). *)

(** One analysis execution on one benchmark. *)
type run = {
  bench : string;
  analysis : string;  (** ["insens"], ["2objH"], ["2objH-IntroA"], ... *)
  seconds : float;
  derivations : int;
  timed_out : bool;
  precision : Ipa_core.Precision.t option;  (** [None] when timed out *)
  tainted_sinks : int option;
      (** tainted sinks under [Ipa_clients.Taint.default_spec]; [None] when
          timed out, [Some 0] on workloads without taint sources *)
}

val run_to_row : run -> string list
(** Table cells: analysis, time, derivations, the three precision metrics,
    tainted sinks. *)

(** {1 Figure 1} — context-insensitive vs 2objH running time, 9 benchmarks *)

module Fig1 : sig
  val compute : Config.t -> run list
  (** Two runs (insens, 2objH) per benchmark, in benchmark order. *)

  val print : Config.t -> unit
end

(** {1 Figure 4} — fraction of call sites / objects NOT refined *)

module Fig4 : sig
  type row = {
    bench : string;
    a_sites_pct : float;
    b_sites_pct : float;
    a_objects_pct : float;
    b_objects_pct : float;
  }

  val compute : Config.t -> row list
  (** One row per hard benchmark; the final row is the average (named
      ["average"]). *)

  val print : Config.t -> unit
end

(** {1 Figures 5, 6, 7} — time + precision for introspective variants of
    2objH, 2typeH, 2callH on the charted benchmarks *)

module Figs567 : sig
  val compute : Config.t -> Ipa_core.Flavors.spec -> run list
  (** Per benchmark: insens, <flavor>-IntroA, <flavor>-IntroB, <flavor>. *)

  val print : Config.t -> Ipa_core.Flavors.spec -> unit
  (** [print cfg flavor] — Figure 5 is [2objH], 6 is [2typeH], 7 is
      [2callH]. *)
end

(** {1 Taint study} — tainted sinks on a workload separable only by context
    (the {!Ipa_synthetic.Motifs.taint_pipes} motif plus ballast): insens vs
    2objH-IntroA vs 2objH-IntroB vs full 2objH. The paper-style client
    precision argument, with taint as the client. *)

module Taint_study : sig
  val clients : Config.t -> int
  (** Number of pipeline clients at this scale (one of them hot). *)

  val compute : Config.t -> run list
  (** [insens; 2objH-IntroA; 2objH-IntroB; 2objH] on the taint workload. *)

  val print : Config.t -> unit
end

val print_all : Config.t -> unit
(** Figures 1, 4, 5, 6, 7, then the taint study. *)
