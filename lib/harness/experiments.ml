module Analysis = Ipa_core.Analysis
module Flavors = Ipa_core.Flavors
module Heuristics = Ipa_core.Heuristics
module Precision = Ipa_core.Precision
module Dacapo = Ipa_synthetic.Dacapo
module Table = Ipa_support.Ascii_table

type run = {
  bench : string;
  analysis : string;
  seconds : float;
  derivations : int;
  timed_out : bool;
  precision : Precision.t option;
  tainted_sinks : int option;
  counters : Ipa_core.Solution.counters;
}

let of_result bench (r : Analysis.result) =
  {
    bench;
    analysis = r.label;
    seconds = r.seconds;
    derivations = r.solution.derivations;
    timed_out = r.timed_out;
    precision = (if r.timed_out then None else Some (Precision.compute r.solution));
    (* Cheap on source-free programs: the client bails out before building
       the value-flow graph when nothing matches its spec. *)
    tainted_sinks =
      (if r.timed_out then None else Some (Ipa_clients.Taint.tainted_sink_count r.solution));
    counters = r.solution.counters;
  }

let run_to_row r =
  let time = if r.timed_out then Config.timeout_label else Printf.sprintf "%.2f" r.seconds in
  let p f = match r.precision with Some p -> string_of_int (f p) | None -> "-" in
  [
    r.analysis;
    time;
    string_of_int r.derivations;
    p (fun (p : Precision.t) -> p.poly_vcalls);
    p (fun (p : Precision.t) -> p.reachable_methods);
    p (fun (p : Precision.t) -> p.may_fail_casts);
    (match r.tainted_sinks with Some n -> string_of_int n | None -> "-");
  ]

let build (cfg : Config.t) spec = Dacapo.build ~scale:cfg.scale spec

let header =
  [ "analysis"; "time(s)"; "derivations"; "poly-vcalls"; "reach-meths"; "fail-casts"; "taint-snk" ]

(* ---------- Figure 1 ---------- *)

module Fig1 = struct
  let compute (cfg : Config.t) =
    List.concat
      (Par.map cfg
         (fun (spec : Dacapo.spec) ->
           let p = build cfg spec in
           let insens, _ = Cache.base_pass cfg.cache ~budget:cfg.budget p in
           [
             of_result spec.name insens;
             of_result spec.name
               (Analysis.run_plain ~budget:cfg.budget p (Flavors.Object_sens { depth = 2; heap = 1 }));
           ])
         Dacapo.all)

  let print_runs runs =
    print_endline "== Figure 1: insens vs 2objH running time, all benchmarks ==";
    let rows =
      List.map
        (fun r ->
          [
            r.bench;
            r.analysis;
            (if r.timed_out then Config.timeout_label else Printf.sprintf "%.2f" r.seconds);
            string_of_int r.derivations;
          ])
        runs
    in
    Table.print ~header:[ "benchmark"; "analysis"; "time(s)"; "derivations" ] rows;
    print_newline ()

  let print cfg = print_runs (compute cfg)
end

(* ---------- Figure 4 ---------- *)

module Fig4 = struct
  type row = {
    bench : string;
    a_sites_pct : float;
    b_sites_pct : float;
    a_objects_pct : float;
    b_objects_pct : float;
  }

  let compute (cfg : Config.t) =
    let rows =
      Par.map cfg
        (fun (spec : Dacapo.spec) ->
          let p = build cfg spec in
          let base, metrics = Cache.base_pass cfg.cache ~budget:cfg.budget p in
          let selection h =
            let refine = Heuristics.select base.solution metrics h in
            Heuristics.selection_stats base.solution refine
          in
          let sa = selection Heuristics.default_a in
          let sb = selection Heuristics.default_b in
          {
            bench = spec.name;
            a_sites_pct = Heuristics.pct_sites sa;
            b_sites_pct = Heuristics.pct_sites sb;
            a_objects_pct = Heuristics.pct_objects sa;
            b_objects_pct = Heuristics.pct_objects sb;
          })
        Dacapo.hard
    in
    let n = float_of_int (List.length rows) in
    let avg f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. n in
    rows
    @ [
        {
          bench = "average";
          a_sites_pct = avg (fun r -> r.a_sites_pct);
          b_sites_pct = avg (fun r -> r.b_sites_pct);
          a_objects_pct = avg (fun r -> r.a_objects_pct);
          b_objects_pct = avg (fun r -> r.b_objects_pct);
        };
      ]

  let print_rows rows =
    print_endline "== Figure 4: call sites and objects selected NOT to be refined ==";
    Table.print
      ~header:[ "benchmark"; "sites A%"; "sites B%"; "objects A%"; "objects B%" ]
      (List.map
         (fun r ->
           [
             r.bench;
             Printf.sprintf "%.1f" r.a_sites_pct;
             Printf.sprintf "%.1f" r.b_sites_pct;
             Printf.sprintf "%.1f" r.a_objects_pct;
             Printf.sprintf "%.1f" r.b_objects_pct;
           ])
         rows);
    print_newline ()

  let print cfg = print_rows (compute cfg)
end

(* ---------- Figures 5-7 ---------- *)

module Figs567 = struct
  let bench_runs (cfg : Config.t) flavor (spec : Dacapo.spec) =
    let p = build cfg spec in
    (* One shared first pass per benchmark: the insensitive row and both
       introspective variants reuse it (and any other figure's task fetches
       the same snapshot from the cache instead of re-solving). *)
    let base, metrics = Cache.base_pass cfg.cache ~budget:cfg.budget p in
    let insens = of_result spec.name base in
    let intro h =
      let ir = Analysis.run_introspective_from_base ~budget:cfg.budget p ~base ~metrics flavor h in
      of_result spec.name ir.second
    in
    let full = of_result spec.name (Analysis.run_plain ~budget:cfg.budget p flavor) in
    [ insens; intro Heuristics.default_a; intro Heuristics.default_b; full ]

  let compute (cfg : Config.t) flavor =
    List.concat (Par.map cfg (bench_runs cfg flavor) Dacapo.charted)

  let figure_number flavor =
    match (flavor : Flavors.spec) with
    | Object_sens _ -> "5"
    | Type_sens _ -> "6"
    | Call_site _ -> "7"
    | Insensitive | Hybrid _ -> "-"

  (* [compute] emits four runs per charted benchmark, in benchmark order. *)
  let print_runs flavor runs =
    Printf.printf "== Figure %s: introspective variants of %s — time and precision ==\n"
      (figure_number flavor) (Flavors.to_string flavor);
    let rec chunks = function
      | [] -> []
      | a :: b :: c :: d :: rest -> [ a; b; c; d ] :: chunks rest
      | short -> [ short ]
    in
    List.iter
      (fun group ->
        (match group with
        | r :: _ -> Printf.printf "-- %s --\n" r.bench
        | [] -> ());
        Table.print ~header (List.map run_to_row group))
      (chunks runs);
    print_newline ()

  let print cfg flavor = print_runs flavor (compute cfg flavor)
end

(* ---------- Taint study ---------- *)

module Taint_study = struct
  (* The taint analogue of the cast/devirt precision columns: a dedicated
     workload where the source-to-sink conflation is separable only by
     context, reported for insens vs the introspective variants vs full
     2objH. Not part of the Dacapo compositions (whose golden derivation
     counts are frozen). *)
  let bench_name = "taint_pipes"

  let clients (cfg : Config.t) = max 2 (int_of_float (12.0 *. cfg.scale))
  let sanitized (cfg : Config.t) = max 1 (clients cfg / 4)

  let build (cfg : Config.t) =
    let w = Ipa_synthetic.World.create ~seed:113 in
    Ipa_synthetic.Motifs.taint_pipes ~sanitized:(sanitized cfg) w ~n:(clients cfg);
    Ipa_synthetic.Motifs.ballast w ~n:(max 1 (int_of_float (40.0 *. cfg.scale)));
    Ipa_synthetic.World.finish w

  let compute (cfg : Config.t) =
    let flavor = Flavors.Object_sens { depth = 2; heap = 1 } in
    (* Four independent analyses of the same (deterministically rebuilt)
       workload; each task builds its own program so no structure is shared
       across domains. *)
    Par.map cfg
      (fun analysis ->
        let p = build cfg in
        match analysis with
        | `Insens ->
          let base, _ = Cache.base_pass cfg.cache ~budget:cfg.budget p in
          of_result bench_name base
        | `Intro h ->
          let base, metrics = Cache.base_pass cfg.cache ~budget:cfg.budget p in
          of_result bench_name
            (Analysis.run_introspective_from_base ~budget:cfg.budget p ~base ~metrics flavor h)
              .second
        | `Full -> of_result bench_name (Analysis.run_plain ~budget:cfg.budget p flavor))
      [ `Insens; `Intro Heuristics.default_a; `Intro Heuristics.default_b; `Full ]

  let print_runs cfg runs =
    Printf.printf
      "== Taint study: tainted sinks on the context-separable workload (%d clients) ==\n"
      (clients cfg);
    Table.print ~header (List.map run_to_row runs);
    print_newline ()

  let print cfg = print_runs cfg (compute cfg)
end

(* ---------- everything, once: the machine-readable report ---------- *)

type report = {
  fig1 : run list;
  fig4 : Fig4.row list;
  fig5 : run list;
  fig6 : run list;
  fig7 : run list;
  taint : run list;
}

let compute_report cfg =
  {
    fig1 = Fig1.compute cfg;
    fig4 = Fig4.compute cfg;
    fig5 = Figs567.compute cfg (Flavors.Object_sens { depth = 2; heap = 1 });
    fig6 = Figs567.compute cfg (Flavors.Type_sens { depth = 2; heap = 1 });
    fig7 = Figs567.compute cfg (Flavors.Call_site { depth = 2; heap = 1 });
    taint = Taint_study.compute cfg;
  }

let print_report cfg r =
  Fig1.print_runs r.fig1;
  Fig4.print_rows r.fig4;
  Figs567.print_runs (Flavors.Object_sens { depth = 2; heap = 1 }) r.fig5;
  Figs567.print_runs (Flavors.Type_sens { depth = 2; heap = 1 }) r.fig6;
  Figs567.print_runs (Flavors.Call_site { depth = 2; heap = 1 }) r.fig7;
  Taint_study.print_runs cfg r.taint

let print_all cfg = print_report cfg (compute_report cfg)
