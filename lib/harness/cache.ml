module Snapshot = Ipa_core.Snapshot
module Analysis = Ipa_core.Analysis
module Introspection = Ipa_core.Introspection
module Flavors = Ipa_core.Flavors
module Solver = Ipa_core.Solver
module Timer = Ipa_support.Timer

type t = {
  dir : string option;
  lock : Mutex.t;
  mem : (string, string) Hashtbl.t;  (** key -> encoded snapshot bytes *)
  mem_hits : int Atomic.t;
  disk_hits : int Atomic.t;
  misses : int Atomic.t;
  stale : int Atomic.t;
  writes : int Atomic.t;
  write_conflicts : int Atomic.t;
  disk_errors : int Atomic.t;
}

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let create ?dir () =
  let disk_errors = Atomic.make 0 in
  (* An unusable directory (unwritable parent, path through a regular
     file, ...) degrades to a memory-only cache: the failure is counted,
     never raised — a bad --cache-dir slows runs down, it cannot fail them. *)
  let dir =
    match dir with
    | None -> None
    | Some d -> (
      try
        mkdir_p d;
        if Sys.is_directory d then Some d
        else begin
          Atomic.incr disk_errors;
          None
        end
      with _ ->
        Atomic.incr disk_errors;
        None)
  in
  {
    dir;
    lock = Mutex.create ();
    mem = Hashtbl.create 16;
    mem_hits = Atomic.make 0;
    disk_hits = Atomic.make 0;
    misses = Atomic.make 0;
    stale = Atomic.make 0;
    writes = Atomic.make 0;
    write_conflicts = Atomic.make 0;
    disk_errors;
  }

let dir t = t.dir

let default_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "ipa"
  | _ -> (
    match Sys.getenv_opt "HOME" with
    | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "ipa"
    | _ -> "_ipa_cache")

type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  stale : int;
  writes : int;
  write_conflicts : int;
  disk_errors : int;
}

let stats (t : t) =
  {
    mem_hits = Atomic.get t.mem_hits;
    disk_hits = Atomic.get t.disk_hits;
    misses = Atomic.get t.misses;
    stale = Atomic.get t.stale;
    writes = Atomic.get t.writes;
    write_conflicts = Atomic.get t.write_conflicts;
    disk_errors = Atomic.get t.disk_errors;
  }

let stats_line t =
  let s = stats t in
  Printf.sprintf
    "cache: %d mem hits, %d disk hits, %d misses, %d stale, %d writes, %d write conflicts, %d disk errors"
    s.mem_hits s.disk_hits s.misses s.stale s.writes s.write_conflicts s.disk_errors

(* ---------- the two storage layers ---------- *)

let mem_find t key =
  Mutex.lock t.lock;
  let found = Hashtbl.find_opt t.mem key in
  Mutex.unlock t.lock;
  found

let mem_store t key bytes =
  Mutex.lock t.lock;
  if not (Hashtbl.mem t.mem key) then Hashtbl.add t.mem key bytes;
  Mutex.unlock t.lock

let snap_path dir key = Filename.concat dir (key ^ ".snap")

let disk_read t key =
  match t.dir with
  | None -> None
  | Some dir -> (
    let path = snap_path dir key in
    match In_channel.with_open_bin path In_channel.input_all with
    | bytes -> Some bytes
    | exception Sys_error _ ->
      (* An absent file is an ordinary miss; an unreadable present one is a
         disk-layer failure, degraded to a miss and counted. *)
      if Sys.file_exists path then Atomic.incr t.disk_errors;
      None)

let disk_drop t key =
  match t.dir with
  | None -> ()
  | Some dir -> ( try Sys.remove (snap_path dir key) with Sys_error _ -> ())

(* Single-writer publication: write a private temp file, then [link] it to
   the final name. [link] is atomic and fails with EEXIST for every racer
   after the first, so a key is written at most once and no reader ever
   sees a partial file. Any disk failure degrades to not caching. *)
let disk_publish t key bytes =
  match t.dir with
  | None -> ()
  | Some dir -> (
    match Filename.temp_file ~temp_dir:dir "ipa" ".tmp" with
    | exception Sys_error _ -> Atomic.incr t.disk_errors
    | tmp ->
      let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
      (try Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc bytes)
       with Sys_error _ ->
         Atomic.incr t.disk_errors;
         cleanup ());
      if Sys.file_exists tmp then begin
        (match Unix.link tmp (snap_path dir key) with
        | () -> Atomic.incr t.writes
        | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Atomic.incr t.write_conflicts
        | exception Unix.Unix_error _ -> Atomic.incr t.disk_errors);
        cleanup ()
      end)

let find_bytes t ~key =
  match mem_find t key with
  | Some bytes ->
    Atomic.incr t.mem_hits;
    Some bytes
  | None -> (
    match disk_read t key with
    | Some bytes ->
      Atomic.incr t.disk_hits;
      mem_store t key bytes;
      Some bytes
    | None ->
      Atomic.incr t.misses;
      None)

(* ---------- solve-through ---------- *)

let of_snapshot ~label (snap : Snapshot.t) ~seconds =
  {
    Analysis.label;
    solution = snap.solution;
    seconds;
    timed_out = snap.solution.Ipa_core.Solution.outcome = Budget_exceeded;
  }

let metrics_of ~label (snap : Snapshot.t) =
  match snap.metrics with
  | Some m -> m
  | None -> ignore label; Introspection.compute snap.solution

let solve t p ~label config =
  let program_digest = Snapshot.digest_program p in
  let key = Snapshot.config_key ~program_digest config in
  let decode bytes = Snapshot.decode ~program:p ~expect_key:key bytes in
  let from_mem () =
    match mem_find t key with
    | None -> None
    | Some bytes -> (
      match Timer.time (fun () -> decode bytes) with
      | Ok snap, seconds ->
        Atomic.incr t.mem_hits;
        Some (of_snapshot ~label snap ~seconds, metrics_of ~label snap)
      | Error _, _ ->
        (* memory holds only bytes this process encoded; a decode failure
           here is a bug, but stay on the never-wrong side: recompute *)
        Atomic.incr t.stale;
        None)
  in
  let from_disk () =
    match disk_read t key with
    | None -> None
    | Some bytes -> (
      match Timer.time (fun () -> decode bytes) with
      | Ok snap, seconds ->
        Atomic.incr t.disk_hits;
        mem_store t key bytes;
        Some (of_snapshot ~label snap ~seconds, metrics_of ~label snap)
      | Error _, _ ->
        Atomic.incr t.stale;
        disk_drop t key;
        None)
  in
  match from_mem () with
  | Some hit -> hit
  | None -> (
    match from_disk () with
    | Some hit -> hit
    | None ->
      Atomic.incr t.misses;
      let result = Analysis.run_config p ~label config in
      let metrics = Introspection.compute result.solution in
      let snap =
        {
          Snapshot.key;
          program_digest;
          label;
          seconds = result.seconds;
          solution = result.solution;
          metrics = Some metrics;
        }
      in
      let bytes = Snapshot.encode snap in
      mem_store t key bytes;
      disk_publish t key bytes;
      (result, metrics))

let base_pass t ~budget p =
  let config = Solver.plain p ~budget (Flavors.strategy p Flavors.Insensitive) in
  solve t p ~label:(Flavors.to_string Flavors.Insensitive) config

(* ---------- disk-store maintenance ---------- *)

let snap_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".snap")
    |> List.sort compare

let entries ~dir =
  List.map
    (fun file ->
      let path = Filename.concat dir file in
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error msg -> (file, 0, Error (Snapshot.Malformed msg))
      | bytes -> (file, String.length bytes, Snapshot.inspect bytes))
    (snap_files dir)

let clear ~dir =
  List.fold_left
    (fun n file ->
      match Sys.remove (Filename.concat dir file) with
      | () -> n + 1
      | exception Sys_error _ -> n)
    0 (snap_files dir)
