module Snapshot = Ipa_core.Snapshot
module Analysis = Ipa_core.Analysis
module Introspection = Ipa_core.Introspection
module Flavors = Ipa_core.Flavors
module Solver = Ipa_core.Solver
module Summary = Ipa_core.Summary
module Compositional_solver = Ipa_core.Compositional_solver
module Timer = Ipa_support.Timer

type entry = {
  bytes : string;
  mutable pins : int;  (** > 0 exempts the entry from eviction *)
  mutable tick : int;  (** last-access stamp from [clock]; larger = more recent *)
}

type t = {
  dir : string option;
  mem_budget : int option;  (** byte budget for the in-memory layer *)
  lock : Mutex.t;
  mem : (string, entry) Hashtbl.t;  (** key -> encoded snapshot bytes *)
  mutable clock : int;  (** monotone access counter (under [lock]) *)
  mutable resident : int;  (** total bytes held by [mem] (under [lock]) *)
  mem_hits : int Atomic.t;
  disk_hits : int Atomic.t;
  misses : int Atomic.t;
  stale : int Atomic.t;
  writes : int Atomic.t;
  write_conflicts : int Atomic.t;
  disk_errors : int Atomic.t;
  evictions : int Atomic.t;
}

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let create ?dir ?mem_budget () =
  (match mem_budget with
  | Some b when b < 0 -> invalid_arg "Cache.create: mem_budget must be >= 0"
  | _ -> ());
  let disk_errors = Atomic.make 0 in
  (* An unusable directory (unwritable parent, path through a regular
     file, ...) degrades to a memory-only cache: the failure is counted,
     never raised — a bad --cache-dir slows runs down, it cannot fail them. *)
  let dir =
    match dir with
    | None -> None
    | Some d -> (
      try
        mkdir_p d;
        if Sys.is_directory d then Some d
        else begin
          Atomic.incr disk_errors;
          None
        end
      with _ ->
        Atomic.incr disk_errors;
        None)
  in
  {
    dir;
    mem_budget;
    lock = Mutex.create ();
    mem = Hashtbl.create 16;
    clock = 0;
    resident = 0;
    mem_hits = Atomic.make 0;
    disk_hits = Atomic.make 0;
    misses = Atomic.make 0;
    stale = Atomic.make 0;
    writes = Atomic.make 0;
    write_conflicts = Atomic.make 0;
    disk_errors;
    evictions = Atomic.make 0;
  }

let dir t = t.dir
let mem_budget t = t.mem_budget

(* Human-friendly byte sizes for --mem-budget: a non-negative integer with
   an optional k/m/g suffix (binary multiples, case-insensitive). *)
let parse_budget s =
  let fail () = Error (Printf.sprintf "bad size %S (expected BYTES, or with a k/m/g suffix)" s) in
  let n = String.length s in
  if n = 0 then fail ()
  else
    let unit, digits =
      match Char.lowercase_ascii s.[n - 1] with
      | 'k' -> (1024, String.sub s 0 (n - 1))
      | 'm' -> (1024 * 1024, String.sub s 0 (n - 1))
      | 'g' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt digits with
    | Some v when v >= 0 && digits <> "" -> Ok (v * unit)
    | _ -> fail ()

let default_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "ipa"
  | _ -> (
    match Sys.getenv_opt "HOME" with
    | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "ipa"
    | _ -> "_ipa_cache")

type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;
  stale : int;
  writes : int;
  write_conflicts : int;
  disk_errors : int;
  evictions : int;
  resident_bytes : int;
}

let stats (t : t) =
  Mutex.lock t.lock;
  let resident_bytes = t.resident in
  Mutex.unlock t.lock;
  {
    mem_hits = Atomic.get t.mem_hits;
    disk_hits = Atomic.get t.disk_hits;
    misses = Atomic.get t.misses;
    stale = Atomic.get t.stale;
    writes = Atomic.get t.writes;
    write_conflicts = Atomic.get t.write_conflicts;
    disk_errors = Atomic.get t.disk_errors;
    evictions = Atomic.get t.evictions;
    resident_bytes;
  }

let stats_line t =
  let s = stats t in
  Printf.sprintf
    "cache: %d mem hits, %d disk hits, %d misses, %d stale, %d writes, %d write conflicts, %d disk errors, %d evictions, %d resident bytes"
    s.mem_hits s.disk_hits s.misses s.stale s.writes s.write_conflicts s.disk_errors s.evictions
    s.resident_bytes

(* ---------- the two storage layers ---------- *)

(* The in-memory layer under a budget: every hit restamps its entry with
   the (monotone) clock, and whenever the resident total exceeds the
   budget the least-recently-used unpinned entries are dropped, oldest
   stamp first, key order breaking (impossible) ties. Pinned entries are
   never dropped, so the resident total can exceed the budget only when
   pins alone force it. A dropped entry is only an in-memory copy: the
   disk layer (when configured) still holds the snapshot, so the next
   [find_bytes] degrades to a disk hit, never to a wrong answer. *)

let evict_locked t =
  match t.mem_budget with
  | None -> ()
  | Some budget ->
    while
      t.resident > budget
      &&
      let victim =
        Hashtbl.fold
          (fun key (e : entry) best ->
            if e.pins > 0 then best
            else
              (* ticks are unique (monotone under the lock), so oldest-tick
                 selection is total and deterministic *)
              match best with
              | Some (_, b) when b.tick < e.tick -> best
              | _ -> Some (key, e))
          t.mem None
      in
      match victim with
      | None -> false (* everything left is pinned *)
      | Some (key, e) ->
        Hashtbl.remove t.mem key;
        t.resident <- t.resident - String.length e.bytes;
        Atomic.incr t.evictions;
        true
    do
      ()
    done

let mem_find t key =
  Mutex.lock t.lock;
  let found =
    match Hashtbl.find_opt t.mem key with
    | None -> None
    | Some e ->
      t.clock <- t.clock + 1;
      e.tick <- t.clock;
      Some e.bytes
  in
  Mutex.unlock t.lock;
  found

let mem_store t key bytes =
  Mutex.lock t.lock;
  if not (Hashtbl.mem t.mem key) then begin
    t.clock <- t.clock + 1;
    Hashtbl.add t.mem key { bytes; pins = 0; tick = t.clock };
    t.resident <- t.resident + String.length bytes;
    evict_locked t
  end;
  Mutex.unlock t.lock

let pin t ~key =
  Mutex.lock t.lock;
  let pinned =
    match Hashtbl.find_opt t.mem key with
    | None -> false
    | Some e ->
      e.pins <- e.pins + 1;
      true
  in
  Mutex.unlock t.lock;
  pinned

let unpin t ~key =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.mem key with
  | Some e when e.pins > 0 ->
    e.pins <- e.pins - 1;
    (* the budget may have been overridden by this pin; re-enforce *)
    if e.pins = 0 then evict_locked t
  | _ -> ());
  Mutex.unlock t.lock

let resident_keys t =
  Mutex.lock t.lock;
  let keys = Hashtbl.fold (fun key _ acc -> key :: acc) t.mem [] in
  Mutex.unlock t.lock;
  List.sort compare keys

let snap_path dir key = Filename.concat dir (key ^ ".snap")

let disk_read t key =
  match t.dir with
  | None -> None
  | Some dir -> (
    let path = snap_path dir key in
    match In_channel.with_open_bin path In_channel.input_all with
    | bytes -> Some bytes
    | exception Sys_error _ ->
      (* An absent file is an ordinary miss; an unreadable present one is a
         disk-layer failure, degraded to a miss and counted. *)
      if Sys.file_exists path then Atomic.incr t.disk_errors;
      None)

let disk_drop t key =
  match t.dir with
  | None -> ()
  | Some dir -> ( try Sys.remove (snap_path dir key) with Sys_error _ -> ())

(* Single-writer publication: write a private temp file, then [link] it to
   the final name. [link] is atomic and fails with EEXIST for every racer
   after the first, so a key is written at most once and no reader ever
   sees a partial file. Any disk failure degrades to not caching. *)
let disk_publish t key bytes =
  match t.dir with
  | None -> ()
  | Some dir -> (
    match Filename.temp_file ~temp_dir:dir "ipa" ".tmp" with
    | exception Sys_error _ -> Atomic.incr t.disk_errors
    | tmp ->
      let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
      (try Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc bytes)
       with Sys_error _ ->
         Atomic.incr t.disk_errors;
         cleanup ());
      if Sys.file_exists tmp then begin
        (match Unix.link tmp (snap_path dir key) with
        | () -> Atomic.incr t.writes
        | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Atomic.incr t.write_conflicts
        | exception Unix.Unix_error _ -> Atomic.incr t.disk_errors);
        cleanup ()
      end)

let put_bytes t ~key bytes =
  mem_store t key bytes;
  disk_publish t key bytes

let find_bytes t ~key =
  match mem_find t key with
  | Some bytes ->
    Atomic.incr t.mem_hits;
    Some bytes
  | None -> (
    match disk_read t key with
    | Some bytes ->
      Atomic.incr t.disk_hits;
      mem_store t key bytes;
      Some bytes
    | None ->
      Atomic.incr t.misses;
      None)

(* ---------- solve-through ---------- *)

let of_snapshot ~label (snap : Snapshot.t) ~seconds =
  {
    Analysis.label;
    solution = snap.solution;
    seconds;
    timed_out = snap.solution.Ipa_core.Solution.outcome = Budget_exceeded;
  }

let metrics_of ~label (snap : Snapshot.t) =
  match snap.metrics with
  | Some m -> m
  | None -> ignore label; Introspection.compute snap.solution

let solve t p ~label config =
  let program_digest = Snapshot.digest_program p in
  let key = Snapshot.config_key ~program_digest config in
  let decode bytes = Snapshot.decode ~program:p ~expect_key:key bytes in
  let from_mem () =
    match mem_find t key with
    | None -> None
    | Some bytes -> (
      match Timer.time (fun () -> decode bytes) with
      | Ok snap, seconds ->
        Atomic.incr t.mem_hits;
        Some (of_snapshot ~label snap ~seconds, metrics_of ~label snap)
      | Error _, _ ->
        (* memory holds only bytes this process encoded; a decode failure
           here is a bug, but stay on the never-wrong side: recompute *)
        Atomic.incr t.stale;
        None)
  in
  let from_disk () =
    match disk_read t key with
    | None -> None
    | Some bytes -> (
      match Timer.time (fun () -> decode bytes) with
      | Ok snap, seconds ->
        Atomic.incr t.disk_hits;
        mem_store t key bytes;
        Some (of_snapshot ~label snap ~seconds, metrics_of ~label snap)
      | Error _, _ ->
        Atomic.incr t.stale;
        disk_drop t key;
        None)
  in
  match from_mem () with
  | Some hit -> hit
  | None -> (
    match from_disk () with
    | Some hit -> hit
    | None ->
      Atomic.incr t.misses;
      let result = Analysis.run_config p ~label config in
      let metrics = Introspection.compute result.solution in
      let snap =
        {
          Snapshot.key;
          program_digest;
          label;
          seconds = result.seconds;
          solution = result.solution;
          metrics = Some metrics;
        }
      in
      let bytes = Snapshot.encode snap in
      mem_store t key bytes;
      disk_publish t key bytes;
      (result, metrics))

let base_pass t ~budget p =
  let config = Solver.plain p ~budget (Flavors.strategy p Flavors.Insensitive) in
  solve t p ~label:(Flavors.to_string Flavors.Insensitive) config

(* ---------- compositional summary store ---------- *)

let summary_store t =
  {
    Compositional_solver.find_bytes = (fun key -> find_bytes t ~key);
    put_bytes = (fun key bytes -> put_bytes t ~key bytes);
  }

(* ---------- disk-store maintenance ---------- *)

type kind = Snapshot_entry | Demand_entry | Summary_entry

let kind_name = function
  | Snapshot_entry -> "snapshot"
  | Demand_entry -> "demand-slice-v1"
  | Summary_entry -> "summary-v1"

let has_prefix prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* Demand slices are ordinary snapshots under a slice-derived key; the
   evaluator marks them by label (see [Query.Demand]), which is the only
   place the distinction lives on disk. *)
let demand_label_prefix = "demand:"

let classify bytes =
  if has_prefix Summary.blob_magic bytes then
    match Summary.decode_blob bytes with Some _ -> Some Summary_entry | None -> None
  else
    match Snapshot.inspect bytes with
    | Ok info ->
      Some (if has_prefix demand_label_prefix info.info_label then Demand_entry else Snapshot_entry)
    | Error _ -> None

type disk_entry = {
  entry_file : string;
  entry_bytes : int;
  entry_kind : kind option;
  entry_describe : string;
  entry_seconds : float option;
}

let snap_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".snap")
    |> List.sort compare

let entries ~dir =
  List.map
    (fun file ->
      let path = Filename.concat dir file in
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error msg ->
        { entry_file = file; entry_bytes = 0; entry_kind = None; entry_describe = msg;
          entry_seconds = None }
      | bytes ->
        let entry_bytes = String.length bytes in
        if has_prefix Summary.blob_magic bytes then
          match Summary.decode_blob bytes with
          | Some (digest, members, _) ->
            { entry_file = file; entry_bytes; entry_kind = Some Summary_entry;
              entry_describe =
                Printf.sprintf "%d method(s), digest %s" (List.length members)
                  (String.sub digest 0 (min 12 (String.length digest)));
              entry_seconds = None }
          | None ->
            { entry_file = file; entry_bytes; entry_kind = None;
              entry_describe = "corrupt summary blob"; entry_seconds = None }
        else
          match Snapshot.inspect bytes with
          | Ok info ->
            let kind =
              if has_prefix demand_label_prefix info.info_label then Demand_entry
              else Snapshot_entry
            in
            { entry_file = file; entry_bytes; entry_kind = Some kind;
              entry_describe = info.info_label; entry_seconds = Some info.info_seconds }
          | Error e ->
            { entry_file = file; entry_bytes; entry_kind = None;
              entry_describe = Snapshot.error_to_string e; entry_seconds = None })
    (snap_files dir)

let clear ?kind ~dir () =
  match kind with
  | None ->
    List.fold_left
      (fun n file ->
        match Sys.remove (Filename.concat dir file) with
        | () -> n + 1
        | exception Sys_error _ -> n)
      0 (snap_files dir)
  | Some k ->
    List.fold_left
      (fun n e ->
        if e.entry_kind = Some k then
          match Sys.remove (Filename.concat dir e.entry_file) with
          | () -> n + 1
          | exception Sys_error _ -> n
        else n)
      0 (entries ~dir)
