(** Harness configuration shared by all experiments. *)

type t = {
  scale : float;  (** benchmark size multiplier (1.0 = paper-shaped runs) *)
  budget : int;
      (** solver derivation budget — the deterministic stand-in for the
          paper's 90-minute timeout. 0 disables it. *)
  jobs : int;
      (** worker domains for independent (benchmark, flavor) analyses;
          1 = sequential. Results are ordered and bit-identical to the
          sequential run at any job count — only the timing columns vary,
          and under contention they measure a loaded machine. *)
  cache : Cache.t;
      (** snapshot cache for the shared context-insensitive first pass.
          Memory-only by default; give it a directory ([--cache-dir]) to
          persist solves across runs. *)
}

val default : t
(** [scale = 1.0], [budget = 10_000_000] — calibrated so that exactly the
    paper's non-terminating (benchmark, analysis) pairs exceed it —
    [jobs = Domain.recommended_domain_count ()], and a fresh memory-only
    [cache]. *)

val timeout_label : string
(** How a budget-exceeded run is rendered in tables. *)
