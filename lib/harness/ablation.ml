module Analysis = Ipa_core.Analysis
module Flavors = Ipa_core.Flavors
module Heuristics = Ipa_core.Heuristics
module Precision = Ipa_core.Precision
module Dacapo = Ipa_synthetic.Dacapo
module Table = Ipa_support.Ascii_table

let obj2 = Flavors.Object_sens { depth = 2; heap = 1 }

let cell_of_result (r : Analysis.result) =
  if r.timed_out then Config.timeout_label else Printf.sprintf "%.2f" r.seconds

let precision_cells (r : Analysis.result) =
  if r.timed_out then [ "-"; "-"; "-" ]
  else
    let p = Precision.compute r.solution in
    [
      string_of_int p.poly_vcalls;
      string_of_int p.reachable_methods;
      string_of_int p.may_fail_casts;
    ]

let build_bench (cfg : Config.t) name = Dacapo.build ~scale:cfg.scale (Option.get (Dacapo.find name))

(* Each parallel task rebuilds its benchmark program rather than sharing one
   across domains; Dacapo.build is deterministic and cheap next to a solve. *)

(* ---------- knob sweep ---------- *)

let knob (cfg : Config.t) =
  let benches = [ "hsqldb"; "jython" ] in
  let scale_c factor c = max 1 (int_of_float (float_of_int c *. factor)) in
  let settings =
    [ ("insens", `Plain Flavors.Insensitive) ]
    @ List.map
        (fun factor ->
          ( Printf.sprintf "IntroA x%g" factor,
            `Intro (Heuristics.A { k = scale_c factor 100; l = scale_c factor 100; m = scale_c factor 200 }) ))
        [ 0.1; 0.5; 1.0; 5.0; 50.0; 10000.0 ]
    @ List.map
        (fun factor ->
          ( Printf.sprintf "IntroB x%g" factor,
            `Intro (Heuristics.B { p = scale_c factor 10000; q = scale_c factor 10000 }) ))
        [ 0.1; 1.0; 50.0 ]
    @ [ ("full 2objH", `Plain obj2) ]
  in
  let cells = List.concat_map (fun name -> List.map (fun s -> (name, s)) settings) benches in
  let rows =
    Par.map cfg
      (fun (name, (label, setting)) ->
        let p = build_bench cfg name in
        let r =
          match setting with
          | `Plain Flavors.Insensitive -> fst (Cache.base_pass cfg.cache ~budget:cfg.budget p)
          | `Plain flavor -> Analysis.run_plain ~budget:cfg.budget p flavor
          | `Intro h ->
            let base, metrics = Cache.base_pass cfg.cache ~budget:cfg.budget p in
            (Analysis.run_introspective_from_base ~budget:cfg.budget p ~base ~metrics obj2 h).second
        in
        (name, [ label; cell_of_result r ] @ precision_cells r))
      cells
  in
  print_endline "== Ablation: heuristic-constant sweep (2objH introspective) ==";
  List.iter
    (fun name ->
      Printf.printf "-- %s --\n" name;
      Table.print
        ~header:[ "setting"; "time(s)"; "poly-vcalls"; "reach-meths"; "fail-casts" ]
        (List.filter_map (fun (n, row) -> if n = name then Some row else None) rows))
    benches;
  print_newline ()

(* ---------- flavor grid ---------- *)

let grid (cfg : Config.t) =
  let flavors = Flavors.all_named in
  let rows =
    Par.map cfg
      (fun (spec : Dacapo.spec) ->
        let p = Dacapo.build ~scale:cfg.scale spec in
        spec.name
        :: List.map
             (fun (_, flavor) ->
               cell_of_result
                 (if flavor = Flavors.Insensitive then
                    fst (Cache.base_pass cfg.cache ~budget:cfg.budget p)
                  else Analysis.run_plain ~budget:cfg.budget p flavor))
             flavors)
      Dacapo.all
  in
  print_endline "== Ablation: flavor/benchmark scalability grid (time in s) ==";
  Table.print ~header:("benchmark" :: List.map fst flavors) rows;
  print_newline ()

(* ---------- heuristic components ---------- *)

let components (cfg : Config.t) =
  let huge = max_int / 4 in
  let variants =
    [
      ("A (full)", Heuristics.A { k = 100; l = 100; m = 200 });
      ("A in-flow only", Heuristics.A { k = huge; l = 100; m = huge });
      ("A var-field only", Heuristics.A { k = huge; l = huge; m = 200 });
      ("A objects only", Heuristics.A { k = 100; l = huge; m = huge });
    ]
  in
  let benches = [ "hsqldb"; "jython"; "xalan" ] in
  let cells = List.concat_map (fun name -> List.map (fun v -> (name, v)) variants) benches in
  let rows =
    Par.map cfg
      (fun (name, (label, h)) ->
        let p = build_bench cfg name in
        let base, metrics = Cache.base_pass cfg.cache ~budget:cfg.budget p in
        let ir = Analysis.run_introspective_from_base ~budget:cfg.budget p ~base ~metrics obj2 h in
        let sel = ir.selection in
        ( name,
          [
            label;
            cell_of_result ir.second;
            Printf.sprintf "%.1f" (Heuristics.pct_sites sel);
            Printf.sprintf "%.1f" (Heuristics.pct_objects sel);
          ]
          @ precision_cells ir.second ))
      cells
  in
  print_endline "== Ablation: Heuristic A components (2objH, hard benchmarks) ==";
  List.iter
    (fun name ->
      Printf.printf "-- %s --\n" name;
      Table.print
        ~header:
          [ "variant"; "time(s)"; "sites%"; "objects%"; "poly-vcalls"; "reach-meths"; "fail-casts" ]
        (List.filter_map (fun (n, row) -> if n = name then Some row else None) rows))
    benches;
  print_newline ()

(* ---------- field sensitivity ---------- *)

let field_sensitivity (cfg : Config.t) =
  let run p flavor field_sensitive =
    let config =
      {
        (Ipa_core.Solver.plain p ~budget:cfg.budget (Ipa_core.Flavors.strategy p flavor)) with
        field_sensitive;
      }
    in
    (* Insensitive runs go through the cache: the field-sensitive one is
       exactly the shared first pass (same key as [Cache.base_pass]), and
       the field-based one is keyed separately by the flag. *)
    let (r : Analysis.result) =
      if flavor = Flavors.Insensitive then
        fst (Cache.solve cfg.cache p ~label:(Flavors.to_string flavor) config)
      else Analysis.run_config p ~label:(Flavors.to_string flavor) config
    in
    let time = if r.timed_out then Config.timeout_label else Printf.sprintf "%.2f" r.seconds in
    let prec =
      if r.timed_out then [ "-"; "-" ]
      else
        let pr = Precision.compute r.solution in
        [ string_of_int pr.poly_vcalls; string_of_int pr.may_fail_casts ]
    in
    [ time ] @ prec
  in
  let cells =
    List.concat_map
      (fun name ->
        List.map
          (fun lf -> (name, lf))
          [ ("insens", Flavors.Insensitive); ("2objH", obj2) ])
      [ "chart"; "eclipse"; "pmd" ]
  in
  let rows =
    Par.map cfg
      (fun (name, (label, flavor)) ->
        let p = build_bench cfg name in
        (name ^ " " ^ label) :: (run p flavor true @ run p flavor false))
      cells
  in
  print_endline "== Ablation: field-sensitive vs field-based handling ==";
  Table.print
    ~header:
      [
        "benchmark/analysis";
        "fs time";
        "fs poly";
        "fs casts";
        "fb time";
        "fb poly";
        "fb casts";
      ]
    rows;
  print_newline ()

(* ---------- client-driven baseline (the §5 comparison) ---------- *)

let client_driven (cfg : Config.t) =
  (* The selectors within one benchmark share the insens base solution and
     its query list, so the unit of parallelism is the benchmark. *)
  let per_bench =
    Par.map cfg
      (fun name ->
        let p = build_bench cfg name in
        let rows = ref [] in
        let row label time derivs refined_sites refined_objs unsafe =
          rows := [ label; time; derivs; refined_sites; refined_objs; unsafe ] :: !rows
        in
        let base, metrics = Cache.base_pass cfg.cache ~budget:cfg.budget p in
        let queries = Ipa_core.Client_driven.cast_queries base.solution in
        let unsafe_of (r : Analysis.result) =
          if r.timed_out then "-"
          else
            string_of_int
              (List.length
                 (List.filter
                    (fun (src, ty) ->
                      Ipa_support.Int_set.exists
                        (fun h ->
                          not
                            (Ipa_ir.Program.subtype p
                               ~sub:(Ipa_ir.Program.heap_info p h).heap_class ~super:ty))
                        (Ipa_core.Solution.collapsed_var_pts r.solution).(src))
                    queries))
        in
        row "insens" (cell_of_result base) (string_of_int base.solution.derivations) "0" "0"
          (unsafe_of base);
        (* one representative query: the first cast *)
        (match queries with
        | (src, _) :: _ ->
          let cd = Analysis.run_client_driven_from_base ~budget:cfg.budget p ~base obj2 [ src ] in
          let sites, objs = Ipa_core.Client_driven.selection_size base.solution cd.cd_refine in
          row "query-driven (1 cast)" (cell_of_result cd.cd_second)
            (string_of_int cd.cd_second.solution.derivations)
            (string_of_int sites) (string_of_int objs) (unsafe_of cd.cd_second)
        | [] -> ());
        (* every cast at once: the all-points regime of §5 *)
        let all_vars = List.map fst queries in
        let cd_all = Analysis.run_client_driven_from_base ~budget:cfg.budget p ~base obj2 all_vars in
        let sites, objs = Ipa_core.Client_driven.selection_size base.solution cd_all.cd_refine in
        row "query-driven (all casts)" (cell_of_result cd_all.cd_second)
          (string_of_int cd_all.cd_second.solution.derivations)
          (string_of_int sites) (string_of_int objs) (unsafe_of cd_all.cd_second);
        (* the all-points limit: every variable is a query — client-driven
           selection degenerates to the full analysis (and its timeouts) *)
        let everything = List.init (Ipa_ir.Program.n_vars p) Fun.id in
        let cd_pts = Analysis.run_client_driven_from_base ~budget:cfg.budget p ~base obj2 everything in
        let sites, objs = Ipa_core.Client_driven.selection_size base.solution cd_pts.cd_refine in
        row "query-driven (all points)" (cell_of_result cd_pts.cd_second)
          (string_of_int cd_pts.cd_second.solution.derivations)
          (string_of_int sites) (string_of_int objs) (unsafe_of cd_pts.cd_second);
        let intro =
          Analysis.run_introspective_from_base ~budget:cfg.budget p ~base ~metrics obj2
            Heuristics.default_b
        in
        row "IntroB" (cell_of_result intro.second)
          (string_of_int intro.second.solution.derivations)
          "-" "-" (unsafe_of intro.second);
        let full = Analysis.run_plain ~budget:cfg.budget p obj2 in
        row "full 2objH" (cell_of_result full) (string_of_int full.solution.derivations) "-" "-"
          (unsafe_of full);
        (name, List.rev !rows))
      [ "hsqldb"; "jython" ]
  in
  print_endline
    "== Comparison: client-driven refinement vs introspection (2objH) ==";
  List.iter
    (fun (name, rows) ->
      Printf.printf "-- %s --\n" name;
      Table.print
        ~header:[ "selector"; "time(s)"; "derivations"; "sites refined"; "objs refined"; "unsafe casts" ]
        rows)
    per_bench;
  print_newline ()

(* ---------- hard-coded policies (the §5 status quo) ---------- *)

let hard_coded (cfg : Config.t) =
  let has_prefix prefixes name =
    List.exists
      (fun pre ->
        String.length name >= String.length pre && String.sub name 0 (String.length pre) = pre)
      prefixes
  in
  (* An expert-written skip list per benchmark, as a Doop/Wala user would
     configure: the classes and methods of the known expensive subsystem. *)
  let policies =
    [
      ("hub policy", [ "Hub"; "Item" ], [ "hget"; "hput"; "use"; "hstep" ]);
      ("interp policy", [ "Frame"; "Val"; "Op" ], [ "fpop"; "fpush"; "oprun"; "exec" ]);
    ]
  in
  let per_bench =
    Par.map cfg
      (fun name ->
        let p = build_bench cfg name in
        let base, metrics = Cache.base_pass cfg.cache ~budget:cfg.budget p in
        let rows = ref [] in
        let row label (r : Analysis.result) =
          rows := ([ label; cell_of_result r ] @ precision_cells r) :: !rows
        in
        List.iter
          (fun (label, class_prefixes, meth_prefixes) ->
            let refine =
              Heuristics.static_policy base.solution
                ~skip_class:(has_prefix class_prefixes)
                ~skip_meth:(has_prefix meth_prefixes)
            in
            let r =
              Analysis.run_mixed ~budget:cfg.budget p ~default:Flavors.Insensitive ~refined:obj2
                ~refine
            in
            row label r)
          policies;
        let intro =
          Analysis.run_introspective_from_base ~budget:cfg.budget p ~base ~metrics obj2
            Heuristics.default_a
        in
        row "IntroA" intro.second;
        let full = Analysis.run_plain ~budget:cfg.budget p obj2 in
        row "full 2objH" full;
        (name, List.rev !rows))
      [ "hsqldb"; "jython" ]
  in
  print_endline
    "== Comparison: hard-coded static policies vs introspection (2objH) ==";
  List.iter
    (fun (name, rows) ->
      Printf.printf "-- %s --\n" name;
      Table.print
        ~header:[ "policy"; "time(s)"; "poly-vcalls"; "reach-meths"; "fail-casts" ]
        rows)
    per_bench;
  print_newline ()

let print_all cfg =
  knob cfg;
  grid cfg;
  components cfg;
  field_sensitivity cfg;
  client_driven cfg;
  hard_coded cfg
