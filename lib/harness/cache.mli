(** Content-addressed store of solved analysis snapshots.

    The harness's unit of redundant work is the shared context-insensitive
    first pass: every introspective variant, ablation setting, and
    client-driven selector of a benchmark starts from the same solve. A
    cache maps {!Ipa_core.Snapshot.config_key} — a digest of (program,
    strategies, refine sets, budget, worklist order, field sensitivity,
    format version) — to the encoded snapshot, in two layers:

    - an in-memory table of encoded bytes, shared (mutex-guarded) across
      the {!Ipa_support.Domain_pool} workers of one process;
    - optionally, a directory of [<key>.snap] files surviving processes
      ([~/.cache/ipa] or [--cache-dir]).

    Hits {e decode} a fresh solution rather than sharing a live one, so
    no mutable structure ever crosses domains and a warm run is
    content-identical to a cold one (only the time columns change — a hit
    costs one decode). Snapshots that fail to decode (corrupted, older
    format version, key collision) count as {e stale}: the file is removed
    and the solve recomputed; a cache can slow an analysis down but never
    change its answer.

    Concurrent cold misses on one key may each solve (the work is wasted,
    not wrong — the solver is deterministic), but at most one task
    publishes the disk file: writers create a private temp file and
    [Unix.link] it to the final name, which fails for every racer after the
    first. No partially-written or doubly-written snapshot is ever
    observable. *)

type t

val create : ?dir:string -> ?mem_budget:int -> unit -> t
(** In-memory cache, plus a disk layer rooted at [dir] when given (the
    directory is created if missing). A [dir] that cannot be created or
    used — read-only parent, path through a regular file, missing mount —
    degrades to memory-only operation: no exception escapes, and the
    failure is counted in {!stats} as a disk error.

    [mem_budget] bounds the bytes held by the in-memory layer: whenever
    the resident total exceeds it, least-recently-used unpinned entries
    are evicted (oldest access first — deterministic for a given access
    order, since stamps are issued under the cache lock). Eviction only
    drops the in-memory copy; the disk layer still serves the snapshot,
    so a later lookup degrades to a disk hit. {!pin}ned entries are never
    evicted — the resident total exceeds the budget only when pins alone
    force it. No budget means nothing is ever evicted.
    Raises [Invalid_argument] when [mem_budget < 0]. *)

val dir : t -> string option

val mem_budget : t -> int option

val parse_budget : string -> (int, string) result
(** Parse a byte-size argument: a non-negative integer with an optional
    [k]/[m]/[g] suffix (binary multiples, case-insensitive), e.g.
    ["65536"], ["64k"], ["2M"]. *)

val pin : t -> key:string -> bool
(** Exempt the resident entry under [key] from eviction (a counted pin:
    [unpin] the same number of times to release). Returns [false] — and
    pins nothing — when [key] is not currently resident in memory. The
    query server pins the snapshot each live session is serving from. *)

val unpin : t -> key:string -> unit
(** Release one {!pin} on [key]; the budget is re-enforced immediately
    when the entry becomes unpinned. No-op for unknown or unpinned keys. *)

val resident_keys : t -> string list
(** The keys currently held by the in-memory layer, sorted. For tests and
    diagnostics. *)

val default_dir : unit -> string
(** [$XDG_CACHE_HOME/ipa], falling back to [$HOME/.cache/ipa], then
    [_ipa_cache] under the current directory. Nothing is written there
    unless a cache is explicitly created with it. *)

(** Hit/miss accounting, cumulative over the cache's lifetime and all
    domains using it. *)
type stats = {
  mem_hits : int;
  disk_hits : int;
  misses : int;  (** solves actually performed *)
  stale : int;  (** on-disk snapshots discarded (decode error or wrong key) *)
  writes : int;  (** snapshot files published to disk *)
  write_conflicts : int;
      (** publications that lost the single-writer race (work discarded) *)
  disk_errors : int;
      (** disk-layer failures degraded to memory-only operation (unusable
          cache directory, unreadable present snapshot, failed publish) *)
  evictions : int;  (** in-memory entries dropped to enforce the budget *)
  resident_bytes : int;  (** bytes currently held by the in-memory layer *)
}

val stats : t -> stats

val stats_line : t -> string
(** One-line rendering, e.g.
    ["cache: 3 mem hits, 9 disk hits, 12 misses, 0 stale, 12 writes, 0 write conflicts, 0 disk errors, 0 evictions, 81212 resident bytes"]. *)

val find_bytes : t -> key:string -> string option
(** Raw encoded snapshot bytes stored under [key], memory layer first,
    then disk (a disk hit is promoted to memory). Counts a memory/disk
    hit or a miss in {!stats}. Used by the query server to hot-load
    solutions by cache key; decode with {!Ipa_core.Snapshot.decode}. *)

val put_bytes : t -> key:string -> string -> unit
(** Store already-encoded snapshot bytes under [key]: memory layer
    (LRU-budgeted), then single-writer disk publication. Used by the
    demand evaluator to memoize solved slices under slice-derived keys —
    same publication discipline as {!solve}, but the caller owns the key,
    which need not be the snapshot's own [config_key]. *)

val solve :
  t ->
  Ipa_ir.Program.t ->
  label:string ->
  Ipa_core.Solver.config ->
  Ipa_core.Analysis.result * Ipa_core.Introspection.t
(** [solve t p ~label config] returns the solution of [config] on [p] and
    the introspection metrics over it, from the cache when possible. On a
    miss the solve runs, metrics are computed, and the snapshot is stored
    (memory, then disk). On a hit the returned [seconds] is the decode
    time. The result is content-identical either way. *)

val base_pass :
  t -> budget:int -> Ipa_ir.Program.t -> Ipa_core.Analysis.result * Ipa_core.Introspection.t
(** The shared first pass: [solve] with the plain context-insensitive
    configuration ([Solver.plain] with the insens strategy) and label
    ["insens"] — exactly the configuration {!Ipa_core.Analysis.run_plain}
    uses, so the key matches across every caller. *)

val summary_store : t -> Ipa_core.Compositional_solver.store
(** The cache as a {!Ipa_core.Compositional_solver.store}: summary blobs go
    through the same two layers (LRU-budgeted memory, single-writer disk
    publication) and the same hit/miss accounting as snapshots, under their
    own content-derived [summary-v1] keys. *)

(** {1 Disk-store maintenance} (the [introspect cache] subcommands) *)

(** What a cached file holds. All three share the key space and the [.snap]
    suffix; they are told apart by content — summary blobs by their
    ["IPSM"] magic, demand slices by their ["demand:"]-prefixed snapshot
    label. *)
type kind = Snapshot_entry | Demand_entry | Summary_entry

val kind_name : kind -> string
(** ["snapshot"], ["demand-slice-v1"], ["summary-v1"] — the names the CLI
    accepts for [cache clear --kind] and prints in [cache stats]. *)

val classify : string -> kind option
(** Classify raw cached bytes; [None] when they decode as neither a
    snapshot nor a summary blob. *)

type disk_entry = {
  entry_file : string;
  entry_bytes : int;  (** file size *)
  entry_kind : kind option;  (** [None] for unreadable or corrupt entries *)
  entry_describe : string;
      (** snapshot label, summary shape ([N method(s), digest ...]), or the
          decode error *)
  entry_seconds : float option;  (** original solve time; snapshots only *)
}

val entries : dir:string -> disk_entry list
(** One {!disk_entry} per [.snap] file, sorted by filename. *)

val clear : ?kind:kind -> dir:string -> unit -> int
(** Remove every [.snap] file — or, with [kind], only the entries that
    classify as that kind — and return how many were removed. *)
