(* Shared fan-out helper: run one experiment's independent tasks on a
   fresh Domain_pool sized by the config. Each solve is self-contained, so
   results (collected in input order) are bit-identical to a sequential
   run; pools are per-call because experiments are coarse enough that the
   few-ms spawn cost disappears into the first solve. *)

let map (cfg : Config.t) f xs =
  Ipa_support.Domain_pool.with_pool ~jobs:(max 1 cfg.jobs) (fun pool ->
      Ipa_support.Domain_pool.map_list pool f xs)
