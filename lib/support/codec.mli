(** Versioned, [Marshal]-free binary serialization primitives.

    The snapshot subsystem persists analysis solutions across processes and
    machines, so the encoding must be stable under compiler versions and
    immune to code motion — which rules out [Marshal]. This module provides
    the primitive layer: a buffer-backed {!Writer} and a bounds-checked
    {!Reader} over byte strings, with LEB128 varints for non-negative ints,
    zigzag varints for signed ints, length-prefixed strings, and a canonical
    (sorted, delta-compressed) encoding of {!Int_set}.

    Encodings are {e canonical}: equal values produce byte-identical
    output (sets are emitted in sorted order regardless of their internal
    representation), so whole-payload digests double as content addresses.

    Framing, versioning, and checksumming live one layer up (see
    [Ipa_core.Snapshot]); this module only promises that a reader applied to
    bytes a writer produced yields the original values, and that malformed
    or truncated bytes raise {!Corrupt} rather than returning garbage. *)

exception Corrupt of string
(** Raised by {!Reader} operations on truncated or malformed input. The
    message describes the failed read; it never escapes the snapshot layer,
    which converts it into a typed error. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t

  val u8 : t -> int -> unit
  (** One byte; the value must be in [0, 255]. *)

  val raw : t -> string -> unit
  (** Bytes emitted verbatim, no length prefix (magic numbers, digests). *)

  val uint : t -> int -> unit
  (** LEB128 varint. Raises [Invalid_argument] on negative input — ids,
      counts, and sizes are non-negative by construction, so a negative here
      is a caller bug, not data. *)

  val int : t -> int -> unit
  (** Zigzag-then-varint; any OCaml int round-trips. *)

  val bool : t -> bool -> unit

  val float : t -> float -> unit
  (** IEEE-754 bits, 8 bytes little-endian; NaN payloads survive. *)

  val string : t -> string -> unit
  (** Length-prefixed; arbitrary bytes allowed. *)

  val int_array : t -> int array -> unit
  (** Length prefix plus one {!uint} per element (elements must be
      non-negative). *)

  val int_set : t -> Int_set.t -> unit
  (** Canonical form: cardinal, then the sorted elements delta-compressed
      (first element absolute, then gaps). Independent of the set's internal
      representation. *)

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit

  val length : t -> int

  val contents : t -> string
end

module Reader : sig
  type t

  val of_string : ?pos:int -> string -> t
  (** Reads from [pos] (default 0) to the end of the string. *)

  val pos : t -> int

  val remaining : t -> int

  val at_end : t -> bool

  val u8 : t -> int

  val raw : t -> int -> string
  (** [raw r n] reads [n] bytes verbatim. *)

  val expect : t -> string -> unit
  (** Reads [String.length s] bytes and raises {!Corrupt} unless they equal
      [s] — for magic numbers and trailers. *)

  val uint : t -> int

  val int : t -> int

  val bool : t -> bool

  val float : t -> float

  val string : t -> string

  val int_array : t -> int array

  val int_set : t -> Int_set.t

  val option : t -> (t -> 'a) -> 'a option
end
