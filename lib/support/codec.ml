exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 256) () = Buffer.create capacity

  let u8 t v =
    if v < 0 || v > 0xff then invalid_arg (Printf.sprintf "Codec.Writer.u8: %d" v);
    Buffer.add_char t (Char.unsafe_chr v)

  let raw t s = Buffer.add_string t s

  (* LEB128 over the 63-bit pattern; [lsr] keeps the loop well-defined even
     for inputs with the sign bit set (zigzagged values land here). *)
  let uint_bits t v =
    let v = ref v in
    while !v lsr 7 <> 0 do
      Buffer.add_char t (Char.unsafe_chr (!v land 0x7f lor 0x80));
      v := !v lsr 7
    done;
    Buffer.add_char t (Char.unsafe_chr !v)

  let uint t v =
    if v < 0 then invalid_arg (Printf.sprintf "Codec.Writer.uint: negative %d" v);
    uint_bits t v

  let int t v = uint_bits t ((v lsl 1) lxor (v asr (Sys.int_size - 1)))

  let bool t b = Buffer.add_char t (if b then '\001' else '\000')

  let float t f = Buffer.add_int64_le t (Int64.bits_of_float f)

  let string t s =
    uint t (String.length s);
    Buffer.add_string t s

  let int_array t a =
    uint t (Array.length a);
    Array.iter (fun v -> uint t v) a

  let int_set t s =
    let elems = Int_set.to_sorted_list s in
    uint t (List.length elems);
    ignore
      (List.fold_left
         (fun prev e ->
           (match prev with
           | None -> uint t e
           | Some p -> uint t (e - p));
           Some e)
         None elems)

  let option t f = function
    | None -> bool t false
    | Some v ->
      bool t true;
      f t v

  let length t = Buffer.length t

  let contents t = Buffer.contents t
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  let of_string ?(pos = 0) src =
    if pos < 0 || pos > String.length src then invalid_arg "Codec.Reader.of_string";
    { src; pos }

  let pos t = t.pos

  let remaining t = String.length t.src - t.pos

  let at_end t = remaining t = 0

  let need t n = if remaining t < n then corrupt "truncated: need %d bytes, have %d" n (remaining t)

  let u8 t =
    need t 1;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let raw t n =
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let expect t s =
    let got = raw t (String.length s) in
    if got <> s then corrupt "expected %S, found %S" s got

  let uint t =
    let rec go shift acc =
      if shift >= Sys.int_size then corrupt "varint too long";
      let b = u8 t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let int t =
    let z = uint t in
    (z lsr 1) lxor (-(z land 1))

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | b -> corrupt "bad bool byte %d" b

  let float t =
    need t 8;
    let bits = String.get_int64_le t.src t.pos in
    t.pos <- t.pos + 8;
    Int64.float_of_bits bits

  let string t =
    let n = uint t in
    raw t n

  let int_array t =
    let n = uint t in
    if n > remaining t then corrupt "int array longer than input";
    Array.init n (fun _ -> uint t)

  let int_set t =
    let n = uint t in
    if n > remaining t then corrupt "int set longer than input";
    let s = Int_set.create ~capacity:n () in
    let prev = ref 0 in
    for i = 0 to n - 1 do
      let v = if i = 0 then uint t else !prev + uint t in
      prev := v;
      if not (Int_set.add s v) then corrupt "duplicate set element %d" v
    done;
    s

  let option t f = if bool t then Some (f t) else None
end
