(* Binary min-heap over plain ints (the solver packs a priority and a payload
   into one int, so no boxing is ever needed). *)

type t = {
  mutable data : int array;
  mutable len : int;
}

let create ?(capacity = 64) () = { data = Array.make (max capacity 1) 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0
let clear t = t.len <- 0

let push t x =
  if t.len = Array.length t.data then begin
    let data = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  let data = t.data in
  let i = ref t.len in
  t.len <- t.len + 1;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if data.(parent) > x then begin
      data.(!i) <- data.(parent);
      i := parent
    end
    else continue := false
  done;
  data.(!i) <- x

let pop_min t =
  if t.len = 0 then None
  else begin
    let data = t.data in
    let min = data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      let x = data.(t.len) in
      (* Sift the last element down from the root. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        let r = l + 1 in
        let smallest =
          if l < t.len && data.(l) < x then l else !i
        in
        let smallest =
          if r < t.len && data.(r) < (if smallest = !i then x else data.(smallest)) then r
          else smallest
        in
        if smallest = !i then continue := false
        else begin
          data.(!i) <- data.(smallest);
          i := smallest
        end
      done;
      data.(!i) <- x
    end;
    Some min
  end
