type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 8) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len

let is_empty t = t.len = 0

let check_bounds t i op =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Dynarr.%s: index %d out of bounds [0,%d)" op i t.len)

let get t i =
  check_bounds t i "get";
  t.data.(i)

let set t i x =
  check_bounds t i "set";
  t.data.(i) <- x

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let push_get_index t x =
  push t x;
  t.len - 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    let x = t.data.(t.len) in
    (* Drop the reference so the GC can reclaim the element. *)
    t.data.(t.len) <- t.dummy;
    Some x
  end

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iter_prefix f t ~n =
  if n < 0 || n > t.len then
    invalid_arg (Printf.sprintf "Dynarr.iter_prefix: prefix %d out of bounds [0,%d]" n t.len);
  (* [t.data] is re-read every iteration, so [f] may push (and trigger a
     grow) without invalidating the walk; only the first [n] elements are
     visited. *)
  for i = 0 to n - 1 do
    f t.data.(i)
  done

let drop_prefix t n =
  if n < 0 || n > t.len then
    invalid_arg (Printf.sprintf "Dynarr.drop_prefix: prefix %d out of bounds [0,%d]" n t.len);
  if n > 0 then begin
    let rest = t.len - n in
    Array.blit t.data n t.data 0 rest;
    Array.fill t.data rest n t.dummy;
    t.len <- rest
  end

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let of_list ~dummy xs =
  let t = create ~capacity:(max 1 (List.length xs)) ~dummy () in
  List.iter (push t) xs;
  t
