type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emission ---------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        emit buf v)
      kvs;
    Buffer.add_char buf '}'

let rec emit_indented buf indent = function
  | List (_ :: _ as xs) ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (String.make (indent + 2) ' ');
        emit_indented buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj (_ :: _ as kvs) ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (String.make (indent + 2) ' ');
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        emit_indented buf (indent + 2) v)
      kvs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'
  | v -> emit buf v

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  if pretty then emit_indented buf 0 v else emit buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_failure of string

type parser_state = { src : string; mutable at : int }

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Parse_failure (Printf.sprintf "offset %d: %s" st.at m))) fmt

let peek st = if st.at < String.length st.src then Some st.src.[st.at] else None

let skip_ws st =
  while
    st.at < String.length st.src
    && match st.src.[st.at] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.at <- st.at + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.at <- st.at + 1
  | Some c' -> fail st "expected %C but found %C" c c'
  | None -> fail st "expected %C but found end of input" c

let literal st word value =
  let n = String.length word in
  if st.at + n <= String.length st.src && String.sub st.src st.at n = word then begin
    st.at <- st.at + n;
    value
  end
  else fail st "expected %s" word

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.at <- st.at + 1
    | Some '\\' -> (
      st.at <- st.at + 1;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        st.at <- st.at + 1;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.at + 4 > String.length st.src then fail st "truncated \\u escape";
          let hex = String.sub st.src st.at 4 in
          st.at <- st.at + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape %S" hex
          in
          (* Encode the code point as UTF-8 (surrogates land as-is; the
             emitter only produces \u for control characters). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail st "bad escape \\%C" c);
        go ())
    | Some c ->
      st.at <- st.at + 1;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.at in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while st.at < String.length st.src && is_num_char st.src.[st.at] do
    st.at <- st.at + 1
  done;
  let text = String.sub st.src start (st.at - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
    st.at <- st.at + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.at <- st.at + 1;
      List []
    end
    else begin
      let acc = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        st.at <- st.at + 1;
        acc := parse_value st :: !acc;
        skip_ws st
      done;
      expect st ']';
      List (List.rev !acc)
    end
  | Some '{' ->
    st.at <- st.at + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.at <- st.at + 1;
      Obj []
    end
    else begin
      let entry () =
        skip_ws st;
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let acc = ref [ entry () ] in
      skip_ws st;
      while peek st = Some ',' do
        st.at <- st.at + 1;
        acc := entry () :: !acc;
        skip_ws st
      done;
      expect st '}';
      Obj (List.rev !acc)
    end
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; at = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.at < String.length s then Error (Printf.sprintf "trailing content at offset %d" st.at)
    else Ok v
  | exception Parse_failure msg -> Error msg

(* ---------- accessors ---------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_int = function Int i -> Some i | _ -> None
