type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t; (* signalled when the queue gains tasks or on shutdown *)
  queue : task Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  mutable worker_ids : Domain.id list;
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec take () =
    match Queue.take_opt t.queue with
    | Some task -> Some task
    | None ->
      if t.closed then None
      else begin
        Condition.wait t.work t.mutex;
        take ()
      end
  in
  match take () with
  | None -> Mutex.unlock t.mutex
  | Some task ->
    Mutex.unlock t.mutex;
    task ();
    worker_loop t

let create ~jobs =
  if jobs < 1 then invalid_arg "Domain_pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      worker_ids = [];
    }
  in
  (* With one job every map runs inline in the caller — the sequential
     baseline involves no domains at all. *)
  if jobs > 1 then begin
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
    t.worker_ids <- List.map Domain.get_id t.workers
  end;
  t

let jobs t = t.jobs

let on_worker t = List.mem (Domain.self ()) t.worker_ids

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let map t f items =
  let n = Array.length items in
  (* A map issued from one of the pool's own workers runs inline: blocking
     that worker on tasks only the (busy) workers could drain would
     deadlock. Results are identical either way — only wall-clock changes. *)
  if t.jobs = 1 || n <= 1 || on_worker t then begin
    if t.closed then invalid_arg "Domain_pool.map: pool is shut down";
    Array.map f items
  end
  else begin
    (* Tasks store into a fixed slot, so results come back in input order no
       matter which worker finishes first. *)
    let results = Array.make n None in
    let remaining = ref n in
    let all_done = Condition.create () in
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add
        (fun () ->
          let r = match f items.(i) with v -> Ok v | exception e -> Error e in
          Mutex.lock t.mutex;
          results.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock t.mutex)
        t.queue
    done;
    Condition.broadcast t.work;
    while !remaining > 0 do
      Condition.wait all_done t.mutex
    done;
    Mutex.unlock t.mutex;
    (* Deterministic exception propagation: the failure of the lowest index
       wins, regardless of completion order. *)
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let submit t task =
  (* Fire-and-forget: exceptions are confined to the task (a raising task
     must not kill its worker, which outlives it and serves later tasks). *)
  let guarded () = try task () with _ -> () in
  if t.jobs = 1 then begin
    if t.closed then invalid_arg "Domain_pool.submit: pool is shut down";
    guarded ()
  end
  else begin
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.submit: pool is shut down"
    end;
    Queue.add guarded t.queue;
    Condition.signal t.work;
    Mutex.unlock t.mutex
  end

let run_shards t ~shards f =
  if shards < 1 then invalid_arg "Domain_pool.run_shards: shards must be >= 1";
  map t f (Array.init shards Fun.id)

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
