(** Mutable sets of non-negative integers, adaptive representation.

    This is the workhorse set of the points-to solver: points-to sets hold
    interned object ids and are mutated millions of times per run, so the
    implementation avoids boxing entirely. Small sets — the long tail of
    tiny points-to sets — are a sorted inline [int array] scanned linearly;
    past 8 elements a set promotes to an open-addressing table (linear
    probing, power-of-two capacity, no deletion). Negative elements are
    rejected — [min_int] marks empty slots internally and all interned ids
    are non-negative anyway. *)

type t

val create : ?capacity:int -> unit -> t

val cardinal : t -> int

val mem : t -> int -> bool

val add : t -> int -> bool
(** [add t x] inserts [x] and returns [true] iff [x] was not already present.
    Raises [Invalid_argument] on negative [x]. *)

val iter : (int -> unit) -> t -> unit
(** Iteration order is unspecified (ascending while the set is small). The
    small-set path walks the inline array directly and allocates nothing. *)

val fold : (int -> 'acc -> 'acc) -> t -> 'acc -> 'acc

val exists : (int -> bool) -> t -> bool

val to_sorted_list : t -> int list

val of_list : int list -> t

val copy : t -> t

val subset : t -> t -> bool
(** [subset a b] is [true] iff every element of [a] is in [b]. *)

val equal : t -> t -> bool

val clear : t -> unit

(** {1 Instrumentation} *)

val is_small : t -> bool
(** [true] while the set is in the inline sorted-array representation.
    Exposed for tests and diagnostics. *)

val promotion_count : unit -> int
(** Number of small-to-hash promotions performed by the {e current domain}
    since it started. Domain-local, so concurrent solver runs never race;
    measure a single run by taking a delta (each run executes entirely on
    one domain). *)
