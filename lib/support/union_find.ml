(* Growable int-indexed union-find. Elements outside the allocated range are
   implicitly their own singletons, so [find] never allocates: the parent
   array only grows when a union actually involves a high index. *)

type t = {
  mutable parent : int array; (* parent.(i) = i when i is a representative *)
  mutable len : int; (* initialized prefix of [parent] *)
  mutable merged : int; (* unions performed *)
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  { parent = Array.init capacity (fun i -> i); len = 0; merged = 0 }

let ensure t n =
  if n >= Array.length t.parent then begin
    let cap = ref (2 * Array.length t.parent) in
    while n >= !cap do
      cap := 2 * !cap
    done;
    let parent = Array.init !cap (fun i -> if i < t.len then t.parent.(i) else i) in
    t.parent <- parent
  end;
  (* Entries in [len, n] were initialized to themselves at allocation. *)
  if n >= t.len then t.len <- n + 1

let rec root t i = if t.parent.(i) = i then i else root t t.parent.(i)

let find t i =
  if i < 0 then invalid_arg "Union_find.find: negative element";
  if i >= t.len then i
  else begin
    let r = root t i in
    (* Path compression: point the whole chain at the root. *)
    let rec compress j =
      if t.parent.(j) <> r then begin
        let next = t.parent.(j) in
        t.parent.(j) <- r;
        compress next
      end
    in
    compress i;
    r
  end

let union t ~winner ~loser =
  ensure t (max winner loser);
  if find t winner <> winner || find t loser <> loser then
    invalid_arg "Union_find.union: arguments must be representatives";
  if winner = loser then invalid_arg "Union_find.union: winner = loser";
  t.parent.(loser) <- winner;
  t.merged <- t.merged + 1

let merged_count t = t.merged
let is_identity t = t.merged = 0
