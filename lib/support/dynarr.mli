(** Growable arrays.

    OCaml 5.1 has no [Dynarray] in the standard library, and the solver and
    Datalog engine both need append-heavy, index-addressed storage. Elements
    are stored in a plain array that doubles on demand; a caller-supplied
    dummy value fills the unused tail, so no [Obj] tricks are needed. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty dynamic array. [dummy] is used to fill
    unused slots and is never observable through the API. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th element. Raises [Invalid_argument] when [i] is out
    of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set t i x] replaces the [i]-th element. Raises [Invalid_argument] when
    [i] is out of bounds. *)

val push : 'a t -> 'a -> unit
(** [push t x] appends [x], growing the backing store if needed. *)

val push_get_index : 'a t -> 'a -> int
(** [push_get_index t x] appends [x] and returns its index. *)

val pop : 'a t -> 'a option
(** [pop t] removes and returns the last element, or [None] when empty. *)

val clear : 'a t -> unit
(** [clear t] resets the length to zero (capacity is retained). *)

val iter : ('a -> unit) -> 'a t -> unit

val iter_prefix : ('a -> unit) -> 'a t -> n:int -> unit
(** [iter_prefix f t ~n] applies [f] to the first [n] elements in order.
    [f] may [push] onto [t] during the walk; appended elements are not
    visited. Raises [Invalid_argument] when [n] exceeds the length. *)

val drop_prefix : 'a t -> int -> unit
(** [drop_prefix t n] removes the first [n] elements, shifting the rest to
    the front (capacity is retained). Raises [Invalid_argument] when [n]
    exceeds the length. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val of_list : dummy:'a -> 'a list -> 'a t
