(** A fixed pool of OCaml 5 domains with a shared task queue.

    Built for the experiment harness: independent (benchmark, flavor)
    analyses are embarrassingly parallel, and each solve is self-contained
    (no shared mutable state crosses runs), so fanning them out across
    domains changes wall-clock only. {!map} collects results {e in input
    order}, so output built from a parallel run is bit-identical to the
    sequential one.

    A pool is reusable: call {!map} any number of times before
    {!shutdown}. Workers sleep on a condition variable between batches. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs] worker domains ([jobs = 1] spawns none —
    every map then runs inline in the caller, the exact sequential
    baseline). Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f items] applies [f] to every element on the pool and returns
    the results in input order. If any task raises, the exception of the
    {e lowest index} is re-raised in the caller after all tasks finish —
    deterministic regardless of scheduling. Empty and singleton inputs run
    inline, as does a map issued {e from a pool worker} (a long-running
    {!submit} task may keep using the pool without deadlocking it).
    Raises [Invalid_argument] after {!shutdown}. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val submit : t -> (unit -> unit) -> unit
(** [submit t task] enqueues [task] to run on some worker and returns
    immediately ([jobs = 1] runs it inline — the sequential baseline). An
    exception escaping [task] is dropped: long-running tasks (the query
    server's per-connection sessions) must do their own error handling.
    {!shutdown} drains already-submitted tasks before joining the workers.
    Raises [Invalid_argument] after {!shutdown}. *)

val on_worker : t -> bool
(** Whether the calling domain is one of this pool's workers. *)

val run_shards : t -> shards:int -> (int -> 'a) -> 'a array
(** [run_shards t ~shards f] runs [f 0 .. f (shards - 1)] on the pooled
    domains and returns the results in shard order — one synchronization
    round of a sharded solve. The pool's domains are reused across rounds,
    so a round costs a queue hand-off rather than [shards] domain spawns.
    Exception discipline is {!map}'s (lowest shard index wins). Raises
    [Invalid_argument] when [shards < 1]. *)

val shutdown : t -> unit
(** Signals the workers to exit and joins them. Idempotent. Subsequent
    {!map} calls raise [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down on the
    way out (also on exceptions). *)
