(** A binary min-heap of plain ints.

    The solver's topological worklist packs [(priority, node)] into a single
    int, so the heap never boxes; ties on priority resolve by payload, which
    keeps pop order deterministic. Duplicate pushes are allowed — callers
    dedup with their own on-list flag. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> int -> unit

val pop_min : t -> int option
(** Smallest element, or [None] when empty. *)

val clear : t -> unit
(** Drop all elements (storage is retained). *)
