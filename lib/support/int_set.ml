let empty_slot = min_int

(* Adaptive representation. The long tail of points-to sets is tiny (1-8
   objects), so small sets are a sorted inline array scanned linearly; once
   the element count exceeds [small_capacity] the set promotes to the
   open-addressing table. [mask] doubles as the representation tag: a
   negative mask marks the small (sorted-array) representation. *)
let small_capacity = 8

type t = {
  mutable slots : int array;
    (* small rep: the first [count] entries, sorted ascending;
       hash rep: [empty_slot] marks a free slot *)
  mutable count : int;
  mutable mask : int; (* hash rep: capacity - 1, capacity a power of two *)
}

(* Small->hash promotions performed by the current domain. Domain-local so
   concurrent solver runs in a Domain_pool never race on the counter; a
   caller measures a run by taking a delta, which is exact because each run
   executes entirely on one domain. *)
let promotions_key = Domain.DLS.new_key (fun () -> ref 0)

let promotion_count () = !(Domain.DLS.get promotions_key)

let create ?(capacity = 8) () =
  if capacity <= small_capacity then
    { slots = Array.make small_capacity empty_slot; count = 0; mask = -1 }
  else begin
    let rec pow2 n = if n >= capacity then n else pow2 (2 * n) in
    let cap = pow2 16 in
    { slots = Array.make cap empty_slot; count = 0; mask = cap - 1 }
  end

let cardinal t = t.count

let is_small t = t.mask < 0

(* Fibonacci hashing spreads consecutive interned ids well. The multiplier is
   2^62 / phi, kept positive in OCaml's 63-bit ints. *)
let hash x = (x * 0x3105_2E60_8C61_9E55) land max_int

let mem t x =
  if t.mask < 0 then begin
    let slots = t.slots in
    let count = t.count in
    let rec scan i =
      i < count
      &&
      let v = slots.(i) in
      v = x || (v < x && scan (i + 1))
    in
    scan 0
  end
  else begin
    let mask = t.mask in
    let slots = t.slots in
    let rec probe i =
      let v = slots.(i) in
      if v = empty_slot then false
      else if v = x then true
      else probe ((i + 1) land mask)
    in
    probe (hash x land mask)
  end

let unsafe_insert slots mask x =
  let rec probe i =
    if slots.(i) = empty_slot then slots.(i) <- x
    else probe ((i + 1) land mask)
  in
  probe (hash x land mask)

let resize t =
  let old = t.slots in
  let cap = 2 * Array.length old in
  let slots = Array.make cap empty_slot in
  let mask = cap - 1 in
  Array.iter (fun v -> if v <> empty_slot then unsafe_insert slots mask v) old;
  t.slots <- slots;
  t.mask <- mask

(* Leave the open-addressing table headroom past the boundary so the first
   hash-side resize does not follow immediately. *)
let promote t x =
  let cap = 4 * small_capacity in
  let slots = Array.make cap empty_slot in
  let mask = cap - 1 in
  for i = 0 to t.count - 1 do
    unsafe_insert slots mask t.slots.(i)
  done;
  unsafe_insert slots mask x;
  t.slots <- slots;
  t.mask <- mask;
  t.count <- t.count + 1;
  incr (Domain.DLS.get promotions_key)

let hash_add t x =
  let mask = t.mask in
  let slots = t.slots in
  let rec probe i =
    let v = slots.(i) in
    if v = empty_slot then begin
      slots.(i) <- x;
      t.count <- t.count + 1;
      (* Keep the load factor under ~0.7. *)
      if 10 * t.count > 7 * (mask + 1) then resize t;
      true
    end
    else if v = x then false
    else probe ((i + 1) land mask)
  in
  probe (hash x land mask)

let add t x =
  if x < 0 then invalid_arg "Int_set.add: negative element";
  if t.mask < 0 then begin
    let slots = t.slots in
    let count = t.count in
    (* Insertion point in the sorted prefix. *)
    let rec find i = if i < count && slots.(i) < x then find (i + 1) else i in
    let i = find 0 in
    if i < count && slots.(i) = x then false
    else if count < small_capacity then begin
      Array.blit slots i slots (i + 1) (count - i);
      slots.(i) <- x;
      t.count <- count + 1;
      true
    end
    else begin
      promote t x;
      true
    end
  end
  else hash_add t x

let iter f t =
  if t.mask < 0 then
    for i = 0 to t.count - 1 do
      f t.slots.(i)
    done
  else Array.iter (fun v -> if v <> empty_slot then f v) t.slots

let fold f t acc =
  if t.mask < 0 then begin
    let acc = ref acc in
    for i = 0 to t.count - 1 do
      acc := f t.slots.(i) !acc
    done;
    !acc
  end
  else begin
    let acc = ref acc in
    Array.iter (fun v -> if v <> empty_slot then acc := f v !acc) t.slots;
    !acc
  end

let exists p t =
  let slots = t.slots in
  let n = if t.mask < 0 then t.count else Array.length slots in
  let small = t.mask < 0 in
  let rec loop i =
    i < n && ((small || slots.(i) <> empty_slot) && p slots.(i) || loop (i + 1))
  in
  loop 0

let to_sorted_list t =
  if t.mask < 0 then List.init t.count (fun i -> t.slots.(i))
  else List.sort compare (fold (fun x acc -> x :: acc) t [])

let of_list xs =
  let t = create ~capacity:(2 * List.length xs) () in
  List.iter (fun x -> ignore (add t x)) xs;
  t

let copy t = { slots = Array.copy t.slots; count = t.count; mask = t.mask }

let subset a b = not (exists (fun x -> not (mem b x)) a)

let equal a b = a.count = b.count && subset a b

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) empty_slot;
  t.count <- 0
