(** Growable int-indexed union-find with path compression.

    Every non-negative int is implicitly a singleton; storage grows only when
    a {!union} touches a high index, so [find] on untouched elements is a
    bounds check. Union is by {e explicit} winner rather than by rank: the
    solver needs deterministic representatives (the minimum node id of a
    merged group), and merged groups are overwhelmingly small, so the
    worst-case tree depth never matters in practice — path compression on
    [find] flattens what little depth appears. *)

type t

val create : ?capacity:int -> unit -> t

val find : t -> int -> int
(** Representative of an element's class. Raises [Invalid_argument] on a
    negative element. *)

val union : t -> winner:int -> loser:int -> unit
(** Merge two classes; [winner] becomes the representative. Both arguments
    must be (distinct) representatives — raises [Invalid_argument]
    otherwise, because silently redirecting a non-root would corrupt the
    caller's notion of which class absorbed which state. *)

val merged_count : t -> int
(** Number of unions performed, i.e. elements that are no longer their own
    representative. *)

val is_identity : t -> bool
(** [true] while no union has been performed — callers can skip remapping
    work entirely. *)
