(** A minimal JSON value type with deterministic emission and a strict
    parser — enough for the lint reporters (JSON lines, SARIF), baseline
    files, and tests that validate emitted shapes. No external dependency
    and no float surprises: integers stay integers. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default (no whitespace); [~pretty:true] indents with two
    spaces. Emission is deterministic: object keys keep their given order. *)

val escape : string -> string
(** The string-body escaping used by {!to_string} (without the quotes). *)

val of_string : string -> (t, string) result
(** Strict parse of a single JSON value (trailing garbage is an error).
    [\u] escapes are decoded to UTF-8. *)

(** {1 Accessors} — shallow, [None] on shape mismatch. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_str : t -> string option
val to_int : t -> int option
