module Int_set = Ipa_support.Int_set

type class_id = int
type field_id = int
type sig_id = int
type meth_id = int
type var_id = int
type heap_id = int
type invo_id = int

type class_info = {
  class_name : string;
  super : class_id option;
  interfaces : class_id list;
  is_interface : bool;
  declared : (sig_id * meth_id) list;
}

type field_info = {
  field_name : string;
  field_owner : class_id;
  is_static_field : bool;
}

type sig_info = { sig_name : string; arity : int }
type var_info = { var_name : string; var_owner : meth_id }

type heap_info = {
  heap_name : string;
  heap_class : class_id;
  heap_owner : meth_id;
}

type call_kind =
  | Virtual of { base : var_id; signature : sig_id }
  | Static of { callee : meth_id }

type invo_info = {
  call : call_kind;
  actuals : var_id array;
  recv : var_id option;
  invo_owner : meth_id;
  invo_name : string;
}

type instr =
  | Alloc of { target : var_id; heap : heap_id }
  | Move of { target : var_id; source : var_id }
  | Cast of { target : var_id; source : var_id; cast_to : class_id }
  | Load of { target : var_id; base : var_id; field : field_id }
  | Store of { base : var_id; field : field_id; source : var_id }
  | Load_static of { target : var_id; field : field_id }
  | Store_static of { field : field_id; source : var_id }
  | Call of invo_id
  | Return of { source : var_id }
  | Throw of { source : var_id }

type catch_clause = { catch_type : class_id; catch_var : var_id }

type meth_info = {
  meth_name : string;
  meth_owner : class_id;
  meth_sig : sig_id;
  is_static_meth : bool;
  is_abstract : bool;
  this_var : var_id option;
  formals : var_id array;
  ret_var : var_id option;
  catches : catch_clause array;
  body : instr array;
}

type t = {
  classes : class_info array;
  fields : field_info array;
  sigs : sig_info array;
  meths : meth_info array;
  vars : var_info array;
  heaps : heap_info array;
  invos : invo_info array;
  entry_list : meth_id list;
  ancestors : Int_set.t array; (* class -> reflexive transitive supertypes *)
  dispatch_tbl : (int, meth_id) Hashtbl.t; (* (class lsl 20) lor sig -> meth *)
  class_by_name : (string, class_id) Hashtbl.t;
  sig_by_key : (string * int, sig_id) Hashtbl.t;
  impls_by_sig : (sig_id, meth_id list) Hashtbl.t;
  srcloc_tbl : Srcloc.t option;
}

let n_classes t = Array.length t.classes
let n_fields t = Array.length t.fields
let n_sigs t = Array.length t.sigs
let n_meths t = Array.length t.meths
let n_vars t = Array.length t.vars
let n_heaps t = Array.length t.heaps
let n_invos t = Array.length t.invos

let get (arr : 'a array) (i : int) (what : string) : 'a =
  if i < 0 || i >= Array.length arr then
    invalid_arg (Printf.sprintf "Program.%s: id %d out of range" what i);
  arr.(i)

let class_info t c = get t.classes c "class_info"
let field_info t f = get t.fields f "field_info"
let sig_info t s = get t.sigs s "sig_info"
let meth_info t m = get t.meths m "meth_info"
let var_info t v = get t.vars v "var_info"
let heap_info t h = get t.heaps h "heap_info"
let invo_info t i = get t.invos i "invo_info"

let entries t = t.entry_list

let class_name t c = (class_info t c).class_name

let meth_full_name t m =
  let mi = meth_info t m in
  let si = sig_info t mi.meth_sig in
  Printf.sprintf "%s::%s/%d" (class_name t mi.meth_owner) si.sig_name si.arity

let var_full_name t v =
  let vi = var_info t v in
  Printf.sprintf "%s$%s" (meth_full_name t vi.var_owner) vi.var_name

let heap_full_name t h = (heap_info t h).heap_name

let field_full_name t f =
  let fi = field_info t f in
  Printf.sprintf "%s::%s" (class_name t fi.field_owner) fi.field_name

let find_class t name = Hashtbl.find_opt t.class_by_name name

let find_sig t ~name ~arity = Hashtbl.find_opt t.sig_by_key (name, arity)

let find_meth t ~class_name:cname ~name ~arity =
  match (find_class t cname, find_sig t ~name ~arity) with
  | Some c, Some s ->
    List.find_map
      (fun m ->
        let mi = t.meths.(m) in
        if mi.meth_owner = c && mi.meth_sig = s then Some m else None)
      (List.init (Array.length t.meths) Fun.id)
  | _ -> None

let subtype t ~sub ~super =
  Int_set.mem (get t.ancestors sub "subtype") super

let pack_class_sig c s = (c lsl 20) lor s

let dispatch t c s =
  ignore (class_info t c);
  ignore (sig_info t s);
  Hashtbl.find_opt t.dispatch_tbl (pack_class_sig c s)

let implementations t s =
  match Hashtbl.find_opt t.impls_by_sig s with Some ms -> List.rev ms | None -> []

let iter_dispatch t f =
  Hashtbl.iter (fun key meth -> f (key lsr 20) (key land ((1 lsl 20) - 1)) meth) t.dispatch_tbl

let catch_route t m c =
  let clauses = (meth_info t m).catches in
  let n = Array.length clauses in
  let rec go i =
    if i >= n then None
    else if subtype t ~sub:c ~super:clauses.(i).catch_type then Some i
    else go (i + 1)
  in
  go 0

(* Reflexive-transitive supertype sets, with cycle detection. *)
let compute_ancestors (classes : class_info array) : Int_set.t array =
  let n = Array.length classes in
  let result : Int_set.t option array = Array.make n None in
  let in_progress = Array.make n false in
  let rec ancestors c =
    match result.(c) with
    | Some s -> s
    | None ->
      if in_progress.(c) then
        failwith (Printf.sprintf "cyclic class hierarchy at %s" classes.(c).class_name);
      in_progress.(c) <- true;
      let s = Int_set.create () in
      ignore (Int_set.add s c);
      let absorb parent = Int_set.iter (fun a -> ignore (Int_set.add s a)) (ancestors parent) in
      (match classes.(c).super with Some p -> absorb p | None -> ());
      List.iter absorb classes.(c).interfaces;
      in_progress.(c) <- false;
      result.(c) <- Some s;
      s
  in
  Array.init n ancestors

(* Dispatch: for each (class, signature), the declaration in the class or its
   nearest ancestor along the [super] chain. Interfaces carry no concrete
   declarations, so only the class chain matters. *)
let compute_dispatch (classes : class_info array) : (int, meth_id) Hashtbl.t =
  let n = Array.length classes in
  (* Effective (sig -> meth) map per class: own declarations shadow the
     super's. Memoized so the whole computation is linear in hierarchy size. *)
  let memo : (sig_id * meth_id) list option array = Array.make n None in
  let rec effective c =
    match memo.(c) with
    | Some l -> l
    | None ->
      let inherited = match classes.(c).super with None -> [] | Some p -> effective p in
      let own = classes.(c).declared in
      let l = own @ List.filter (fun (s, _) -> not (List.mem_assoc s own)) inherited in
      memo.(c) <- Some l;
      l
  in
  let tbl = Hashtbl.create 1024 in
  for c = 0 to n - 1 do
    List.iter (fun (s, m) -> Hashtbl.replace tbl (pack_class_sig c s) m) (effective c)
  done;
  tbl

let srcloc t = t.srcloc_tbl

let make ?srcloc ~classes ~fields ~sigs ~meths ~vars ~heaps ~invos ~entries () =
  let ancestors = compute_ancestors classes in
  let dispatch_tbl = compute_dispatch classes in
  let class_by_name = Hashtbl.create (Array.length classes) in
  Array.iteri (fun c ci -> Hashtbl.replace class_by_name ci.class_name c) classes;
  let sig_by_key = Hashtbl.create (Array.length sigs) in
  Array.iteri (fun s si -> Hashtbl.replace sig_by_key (si.sig_name, si.arity) s) sigs;
  let impls_by_sig = Hashtbl.create (Array.length sigs) in
  Array.iteri
    (fun m (mi : meth_info) ->
      if not mi.is_abstract then
        let prev = Option.value ~default:[] (Hashtbl.find_opt impls_by_sig mi.meth_sig) in
        Hashtbl.replace impls_by_sig mi.meth_sig (m :: prev))
    meths;
  {
    classes;
    fields;
    sigs;
    meths;
    vars;
    heaps;
    invos;
    entry_list = entries;
    ancestors;
    dispatch_tbl;
    class_by_name;
    sig_by_key;
    impls_by_sig;
    srcloc_tbl = srcloc;
  }
