(** The analyzed intermediate language.

    This is the paper's input language (§2): a simplified Jimple-like typed
    IR for an object-oriented language with [new], [move], field [load]/
    [store], and virtual method calls — extended, as in Doop, with casts,
    static calls, and static fields. A program is an immutable bundle of
    dense arrays indexed by integer ids; construct one with {!Builder} or
    parse the textual [.jir] format with [Ipa_frontend].

    Id types are plain [int]s (they index the arrays below); distinct aliases
    document intent. *)

type class_id = int
type field_id = int
type sig_id = int
type meth_id = int
type var_id = int
type heap_id = int
type invo_id = int

(** A class or interface. [declared] maps signatures to the concrete methods
    this class itself declares (abstract methods excluded). *)
type class_info = {
  class_name : string;
  super : class_id option;
  interfaces : class_id list;
  is_interface : bool;
  declared : (sig_id * meth_id) list;
}

type field_info = {
  field_name : string;
  field_owner : class_id;
  is_static_field : bool;
}

(** Method signatures: dispatch key is name plus arity (no parameter types —
    the source language is untyped at parameters, as in the paper's model). *)
type sig_info = { sig_name : string; arity : int }

type var_info = { var_name : string; var_owner : meth_id }

(** A heap abstraction: one allocation site, with the class it instantiates. *)
type heap_info = {
  heap_name : string;
  heap_class : class_id;
  heap_owner : meth_id;
}

type call_kind =
  | Virtual of { base : var_id; signature : sig_id }
  | Static of { callee : meth_id }

(** One invocation site: its kind, actual arguments, the variable receiving
    the return value (if any), and the enclosing method. *)
type invo_info = {
  call : call_kind;
  actuals : var_id array;
  recv : var_id option;
  invo_owner : meth_id;
  invo_name : string;
}

type instr =
  | Alloc of { target : var_id; heap : heap_id }
  | Move of { target : var_id; source : var_id }
  | Cast of { target : var_id; source : var_id; cast_to : class_id }
  | Load of { target : var_id; base : var_id; field : field_id }
  | Store of { base : var_id; field : field_id; source : var_id }
  | Load_static of { target : var_id; field : field_id }
  | Store_static of { field : field_id; source : var_id }
  | Call of invo_id
  | Return of { source : var_id }
  | Throw of { source : var_id }

(** An exception handler. The model is flow-insensitive, as in Doop's
    simplified configurations: a method's catch clauses guard its whole body.
    An exception object thrown in the method (or escaping one of its callees)
    is routed to the first clause whose type it is a subtype of; if none
    matches, it escapes to the method's own callers. *)
type catch_clause = { catch_type : class_id; catch_var : var_id }

type meth_info = {
  meth_name : string;
  meth_owner : class_id;
  meth_sig : sig_id;
  is_static_meth : bool;
  is_abstract : bool;
  this_var : var_id option;  (** implicit receiver, instance methods only *)
  formals : var_id array;  (** excludes [this] *)
  ret_var : var_id option;  (** canonical return variable, if the method returns *)
  catches : catch_clause array;  (** in matching order *)
  body : instr array;
}

type t

(** {1 Sizes} *)

val n_classes : t -> int
val n_fields : t -> int
val n_sigs : t -> int
val n_meths : t -> int
val n_vars : t -> int
val n_heaps : t -> int
val n_invos : t -> int

(** {1 Accessors} — all raise [Invalid_argument] on out-of-range ids. *)

val class_info : t -> class_id -> class_info
val field_info : t -> field_id -> field_info
val sig_info : t -> sig_id -> sig_info
val meth_info : t -> meth_id -> meth_info
val var_info : t -> var_id -> var_info
val heap_info : t -> heap_id -> heap_info
val invo_info : t -> invo_id -> invo_info

val entries : t -> meth_id list
(** Entry-point methods seeding reachability. *)

(** {1 Names} *)

val class_name : t -> class_id -> string
val meth_full_name : t -> meth_id -> string
(** ["Class::name/arity"]. *)

val var_full_name : t -> var_id -> string
val heap_full_name : t -> heap_id -> string
val field_full_name : t -> field_id -> string
(** ["Class::field"]. *)

(** {1 Lookups} *)

val find_class : t -> string -> class_id option
val find_meth : t -> class_name:string -> name:string -> arity:int -> meth_id option
val find_sig : t -> name:string -> arity:int -> sig_id option

(** {1 Type hierarchy and dispatch} *)

val subtype : t -> sub:class_id -> super:class_id -> bool
(** Reflexive, transitive subtyping through [super] chains and interfaces. *)

val dispatch : t -> class_id -> sig_id -> meth_id option
(** [dispatch t c s] is the concrete method invoked by a call with signature
    [s] on a receiver of dynamic class [c]: the declaration in [c] or its
    nearest ancestor class. [None] when unresolved. *)

val implementations : t -> sig_id -> meth_id list
(** All concrete methods declaring signature [s] anywhere (useful to clients
    such as devirtualizers). *)

val iter_dispatch : t -> (class_id -> sig_id -> meth_id -> unit) -> unit
(** Iterate the whole dispatch table: every (class, signature) pair that
    resolves, with its target. This is the paper's [LOOKUP] input relation. *)

val catch_route : t -> meth_id -> class_id -> int option
(** [catch_route t m c] is the index of the first catch clause of [m] whose
    type admits an exception object of class [c], or [None] if the object
    escapes [m]. *)

(** {1 Construction} — used by {!Builder}; not for direct consumption. *)

val srcloc : t -> Srcloc.t option
(** Source positions of the program's entities, when the construction path
    recorded them ({!Builder} always does; a direct {!make} may not). *)

val make :
  ?srcloc:Srcloc.t ->
  classes:class_info array ->
  fields:field_info array ->
  sigs:sig_info array ->
  meths:meth_info array ->
  vars:var_info array ->
  heaps:heap_info array ->
  invos:invo_info array ->
  entries:meth_id list ->
  unit ->
  t
(** Computes the subtyping closure and dispatch tables. Raises [Failure] on a
    cyclic class hierarchy. Callers are expected to have validated the rest
    (see {!Wf.check}). *)
