open Program

(* One rule id per check class. The numbering is part of the tool's public
   surface (baselines and docs refer to it): append new rules, never renumber. *)
let rule_foreign_var = "IPA-W001"
let rule_class_extends_interface = "IPA-W002"
let rule_interface_super = "IPA-W003"
let rule_implements_non_interface = "IPA-W004"
let rule_interface_concrete_method = "IPA-W005"
let rule_interface_instance_field = "IPA-W006"
let rule_abstract_with_body = "IPA-W007"
let rule_static_with_this = "IPA-W008"
let rule_foreign_alloc = "IPA-W009"
let rule_interface_alloc = "IPA-W010"
let rule_instance_access_static_field = "IPA-W011"
let rule_static_access_instance_field = "IPA-W012"
let rule_foreign_call_site = "IPA-W013"
let rule_call_arity = "IPA-W014"
let rule_static_call_abstract = "IPA-W015"
let rule_static_call_instance = "IPA-W016"
let rule_return_without_ret_var = "IPA-W017"
let rule_catch_interface = "IPA-W018"
let rule_abstract_with_catches = "IPA-W019"
let rule_abstract_entry = "IPA-W020"

let diagnostics p =
  let ds = ref [] in
  let sl = Program.srcloc p in
  let span get =
    match sl with
    | None -> Diagnostic.no_span
    | Some sl -> Diagnostic.span_of_pos ~file:sl.file (get sl)
  in
  let class_span c = span (fun sl -> Srcloc.class_pos sl c) in
  let field_span f = span (fun sl -> Srcloc.field_pos sl f) in
  let meth_span m = span (fun sl -> Srcloc.meth_pos sl m) in
  let instr_span m k = span (fun sl -> Srcloc.instr_pos sl m k) in
  let err ~rule ~span ~entity fmt =
    Printf.ksprintf
      (fun msg -> ds := Diagnostic.make ~rule ~severity:Error ~span ~entity msg :: !ds)
      fmt
  in
  (* Classes *)
  for c = 0 to n_classes p - 1 do
    let ci = class_info p c in
    let span = class_span c and entity = ci.class_name in
    (match ci.super with
    | Some s when (class_info p s).is_interface ->
      err ~rule:rule_class_extends_interface ~span ~entity "class %s extends interface %s"
        ci.class_name (class_name p s)
    | Some _ when ci.is_interface ->
      err ~rule:rule_interface_super ~span ~entity
        "interface %s uses [super]; interfaces extend via [interfaces]" ci.class_name
    | _ -> ());
    List.iter
      (fun i ->
        if not (class_info p i).is_interface then
          err ~rule:rule_implements_non_interface ~span ~entity "%s implements non-interface %s"
            ci.class_name (class_name p i))
      ci.interfaces;
    if ci.is_interface && ci.declared <> [] then
      err ~rule:rule_interface_concrete_method ~span ~entity "interface %s declares concrete methods"
        ci.class_name
  done;
  (* Fields *)
  for f = 0 to n_fields p - 1 do
    let fi = field_info p f in
    if (class_info p fi.field_owner).is_interface && not fi.is_static_field then
      err ~rule:rule_interface_instance_field ~span:(field_span f) ~entity:(field_full_name p f)
        "interface %s declares instance field %s" (class_name p fi.field_owner) fi.field_name
  done;
  (* Methods and bodies *)
  for m = 0 to n_meths p - 1 do
    let mi = meth_info p m in
    let mname = meth_full_name p m in
    let mspan = meth_span m in
    let owned ?span ?entity v what =
      let vi = var_info p v in
      if vi.var_owner <> m then
        err ~rule:rule_foreign_var
          ~span:(match span with Some s -> s | None -> mspan)
          ~entity:(match entity with Some e -> e | None -> mname)
          "%s: %s variable %s belongs to %s" mname what vi.var_name
          (meth_full_name p vi.var_owner)
    in
    (match mi.this_var with Some v -> owned v "this" | None -> ());
    Array.iter (fun v -> owned v "formal") mi.formals;
    (match mi.ret_var with Some v -> owned v "return" | None -> ());
    if mi.is_abstract && Array.length mi.body > 0 then
      err ~rule:rule_abstract_with_body ~span:mspan ~entity:mname "%s: abstract method with a body"
        mname;
    if mi.is_static_meth && mi.this_var <> None then
      err ~rule:rule_static_with_this ~span:mspan ~entity:mname "%s: static method with [this]"
        mname;
    Array.iteri
      (fun k instr ->
        let span = instr_span m k in
        let entity = Printf.sprintf "%s#%d" mname k in
        let owned v what = owned ~span ~entity v what in
        match instr with
        | Alloc { target; heap } ->
          owned target "alloc target";
          let hi = heap_info p heap in
          if hi.heap_owner <> m then
            err ~rule:rule_foreign_alloc ~span ~entity "%s: allocation site %s owned elsewhere"
              mname hi.heap_name;
          if (class_info p hi.heap_class).is_interface then
            err ~rule:rule_interface_alloc ~span ~entity "%s: allocation of interface %s" mname
              (class_name p hi.heap_class)
        | Move { target; source } ->
          owned target "move target";
          owned source "move source"
        | Cast { target; source; cast_to } ->
          owned target "cast target";
          owned source "cast source";
          ignore (class_info p cast_to)
        | Load { target; base; field } ->
          owned target "load target";
          owned base "load base";
          if (field_info p field).is_static_field then
            err ~rule:rule_instance_access_static_field ~span ~entity
              "%s: instance load of static field %s" mname (field_full_name p field)
        | Store { base; field; source } ->
          owned base "store base";
          owned source "store source";
          if (field_info p field).is_static_field then
            err ~rule:rule_instance_access_static_field ~span ~entity
              "%s: instance store to static field %s" mname (field_full_name p field)
        | Load_static { target; field } ->
          owned target "static load target";
          if not (field_info p field).is_static_field then
            err ~rule:rule_static_access_instance_field ~span ~entity
              "%s: static load of instance field %s" mname (field_full_name p field)
        | Store_static { field; source } ->
          owned source "static store source";
          if not (field_info p field).is_static_field then
            err ~rule:rule_static_access_instance_field ~span ~entity
              "%s: static store to instance field %s" mname (field_full_name p field)
        | Call invo ->
          let ii = invo_info p invo in
          if ii.invo_owner <> m then
            err ~rule:rule_foreign_call_site ~span ~entity "%s: call site %s owned elsewhere" mname
              ii.invo_name;
          Array.iter (fun v -> owned v "call actual") ii.actuals;
          (match ii.recv with Some v -> owned v "call receiver" | None -> ());
          (match ii.call with
          | Virtual { base; signature } ->
            owned base "call base";
            let si = sig_info p signature in
            if Array.length ii.actuals <> si.arity then
              err ~rule:rule_call_arity ~span ~entity
                "%s: call %s passes %d arguments to signature /%d" mname ii.invo_name
                (Array.length ii.actuals) si.arity
          | Static { callee } ->
            let callee_info = meth_info p callee in
            if callee_info.is_abstract then
              err ~rule:rule_static_call_abstract ~span ~entity "%s: static call to abstract %s"
                mname (meth_full_name p callee);
            if not callee_info.is_static_meth then
              err ~rule:rule_static_call_instance ~span ~entity
                "%s: static call to instance method %s" mname (meth_full_name p callee);
            if Array.length ii.actuals <> Array.length callee_info.formals then
              err ~rule:rule_call_arity ~span ~entity "%s: call %s passes %d arguments to %s/%d formals"
                mname ii.invo_name (Array.length ii.actuals) (meth_full_name p callee)
                (Array.length callee_info.formals))
        | Return { source } ->
          owned source "return source";
          if mi.ret_var = None then
            err ~rule:rule_return_without_ret_var ~span ~entity
              "%s: return without a return variable" mname
        | Throw { source } -> owned source "throw source")
      mi.body;
    Array.iter
      (fun (clause : catch_clause) ->
        owned clause.catch_var "catch";
        if (class_info p clause.catch_type).is_interface then
          err ~rule:rule_catch_interface ~span:mspan ~entity:mname "%s: catch of interface type %s"
            mname (class_name p clause.catch_type))
      mi.catches;
    if mi.is_abstract && Array.length mi.catches > 0 then
      err ~rule:rule_abstract_with_catches ~span:mspan ~entity:mname
        "%s: abstract method with catch clauses" mname
  done;
  List.iter
    (fun m ->
      if (meth_info p m).is_abstract then
        err ~rule:rule_abstract_entry ~span:(meth_span m) ~entity:(meth_full_name p m)
          "entry point %s is abstract" (meth_full_name p m))
    (entries p);
  List.rev !ds

let check p =
  match diagnostics p with
  | [] -> Ok ()
  | ds -> Error (List.map (fun (d : Diagnostic.t) -> d.message) ds)
