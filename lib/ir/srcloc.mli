(** Per-entity source positions of a program.

    Built by {!Builder} as a side table of {!Program.t}: one position per
    class, field, method, variable, allocation site, and invocation site,
    plus per-method positions for each body instruction and catch clause.
    The front-end resolver records real [file:line:col] coordinates; programs
    built without any position information (the synthetic generator) get
    deterministic "generator coordinates" — [file] is {!synthetic_file},
    an entity's line is its id + 1, and the column is 0 (real columns are
    1-based, so a 0 column always marks a generated position).

    Positions are deliberately {e not} part of a program's snapshot digest
    ({!val:Ipa_core.Snapshot.digest_program} encodes entity tables only), so
    reformatting a [.jir] file — or the presence of this table at all —
    never invalidates cached analysis solutions. *)

type pos = { line : int; col : int }

val no_pos : pos
(** [{line = 0; col = 0}] — the "unknown" position. *)

val synthetic_file : string
(** ["<synthetic>"] — the file name of generator coordinates. *)

type t = {
  file : string;
  classes : pos array;
  fields : pos array;
  meths : pos array;
  vars : pos array;
  heaps : pos array;
  invos : pos array;
  instrs : pos array array;  (** per method, per body index *)
  catches : pos array array;  (** per method, per catch-clause index *)
}

(** {1 Accessors} — total: out-of-range ids return {!no_pos}. *)

val class_pos : t -> int -> pos
val field_pos : t -> int -> pos
val meth_pos : t -> int -> pos
val var_pos : t -> int -> pos
val heap_pos : t -> int -> pos
val invo_pos : t -> int -> pos
val instr_pos : t -> int -> int -> pos
val catch_pos : t -> int -> int -> pos
