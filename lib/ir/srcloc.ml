type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

let synthetic_file = "<synthetic>"

type t = {
  file : string;
  classes : pos array;
  fields : pos array;
  meths : pos array;
  vars : pos array;
  heaps : pos array;
  invos : pos array;
  instrs : pos array array;
  catches : pos array array;
}

let get (arr : pos array) i = if i >= 0 && i < Array.length arr then arr.(i) else no_pos

let get2 (arr : pos array array) m k =
  if m >= 0 && m < Array.length arr then get arr.(m) k else no_pos

let class_pos t c = get t.classes c
let field_pos t f = get t.fields f
let meth_pos t m = get t.meths m
let var_pos t v = get t.vars v
let heap_pos t h = get t.heaps h
let invo_pos t i = get t.invos i
let instr_pos t m k = get2 t.instrs m k
let catch_pos t m k = get2 t.catches m k
