(** Programmatic construction of {!Program.t} values.

    The builder is the API used by the synthetic benchmark generator, the
    front-end resolver, and tests. It interns signatures, allocates ids, and
    accumulates method bodies; {!finish} runs the {!Wf} checker and fails on
    an ill-formed program.

    All functions raise [Invalid_argument] on ids that do not belong to this
    builder, and [Failure] on name clashes (two classes with the same name,
    two same-name fields in one class, duplicate signature in one class). *)

type t

val create : unit -> t

(** {1 Source positions}

    Optional. [set_pos] stamps the given position onto every entity
    (class, field, method, variable, allocation/invocation site, body
    instruction, catch clause) created until the next call; the front-end
    resolver calls it at each declaration and statement. When neither
    function is ever called the finished program gets deterministic
    generator coordinates (see {!Srcloc}). *)

val set_source : t -> string -> unit
(** Declare the source file name recorded in the program's {!Srcloc.t}. *)

val set_pos : t -> Srcloc.pos -> unit

(** {1 Declarations} *)

val add_class : t -> ?super:Program.class_id -> ?interfaces:Program.class_id list -> string -> Program.class_id

val add_interface : t -> ?interfaces:Program.class_id list -> string -> Program.class_id
(** Interfaces may extend other interfaces and declare abstract signatures
    (via [add_method ~abstract:true]); they cannot be instantiated. *)

val add_field : t -> owner:Program.class_id -> ?static:bool -> string -> Program.field_id

val add_method :
  t ->
  owner:Program.class_id ->
  name:string ->
  ?static:bool ->
  ?abstract:bool ->
  params:string list ->
  unit ->
  Program.meth_id
(** Declares a method with formal parameters named [params]. Instance methods
    get an implicit [this] variable. Abstract methods have no body. *)

(** {1 Method variables} *)

val this : t -> Program.meth_id -> Program.var_id
(** Raises [Failure] for static or abstract methods. *)

val formal : t -> Program.meth_id -> int -> Program.var_id
(** [formal t m i] is the [i]-th declared parameter (0-based). *)

val add_var : t -> Program.meth_id -> string -> Program.var_id
(** Declares a local. Locals, formals and [this] share a per-method
    namespace; duplicates raise [Failure]. *)

(** {1 Body statements} — appended in order to the method's body. *)

val alloc : t -> Program.meth_id -> target:Program.var_id -> cls:Program.class_id -> Program.heap_id
(** Appends [target = new cls], creating a fresh allocation site. *)

val move : t -> Program.meth_id -> target:Program.var_id -> source:Program.var_id -> unit

val cast : t -> Program.meth_id -> target:Program.var_id -> source:Program.var_id -> cls:Program.class_id -> unit

val load : t -> Program.meth_id -> target:Program.var_id -> base:Program.var_id -> field:Program.field_id -> unit

val store : t -> Program.meth_id -> base:Program.var_id -> field:Program.field_id -> source:Program.var_id -> unit

val load_static : t -> Program.meth_id -> target:Program.var_id -> field:Program.field_id -> unit

val store_static : t -> Program.meth_id -> field:Program.field_id -> source:Program.var_id -> unit

val vcall :
  t ->
  Program.meth_id ->
  base:Program.var_id ->
  name:string ->
  actuals:Program.var_id list ->
  ?recv:Program.var_id ->
  unit ->
  Program.invo_id
(** Virtual call [recv = base.name(actuals)]; the signature arity is the
    number of actuals. *)

val scall :
  t ->
  Program.meth_id ->
  callee:Program.meth_id ->
  actuals:Program.var_id list ->
  ?recv:Program.var_id ->
  unit ->
  Program.invo_id
(** Static call [recv = Owner::name(actuals)]. *)

val return_ : t -> Program.meth_id -> Program.var_id -> unit
(** Appends [return v]; allocates the method's canonical return variable on
    first use. *)

val throw : t -> Program.meth_id -> Program.var_id -> unit
(** Appends [throw v]. *)

val add_catch : t -> Program.meth_id -> cls:Program.class_id -> var:Program.var_id -> unit
(** Appends a catch clause (method-wide, matched in registration order):
    exceptions of a subtype of [cls] raised in this method or escaping its
    callees are bound to [var]. *)

val add_entry : t -> Program.meth_id -> unit

(** {1 Finalization} *)

val finish : t -> Program.t
(** Freezes the program, computes hierarchy/dispatch, and validates it with
    {!Wf.check}. Raises [Failure] listing the violations on an ill-formed
    program. The builder must not be used afterwards. *)
