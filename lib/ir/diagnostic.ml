type severity = Error | Warning | Info

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

type span = { file : string; line : int; col : int }

let no_span = { file = ""; line = 0; col = 0 }

let span_of_pos ~file (p : Srcloc.pos) = { file; line = p.line; col = p.col }

let span_to_string { file; line; col } =
  if file = "" then Printf.sprintf "%d:%d" line col else Printf.sprintf "%s:%d:%d" file line col

type t = {
  rule : string;
  severity : severity;
  span : span;
  entity : string;
  message : string;
  witnesses : string list;
}

let make ~rule ~severity ?(span = no_span) ~entity ?(witnesses = []) message =
  { rule; severity; span; entity; message; witnesses }

(* Deterministic report order: by rule id, then source position, then the
   stable entity anchor and message. Independent of discovery order, so a
   parallel rule run sorts to the same byte sequence as a sequential one. *)
let compare a b =
  let c = String.compare a.rule b.rule in
  if c <> 0 then c
  else
    let c = String.compare a.span.file b.span.file in
    if c <> 0 then c
    else
      let c = Int.compare a.span.line b.span.line in
      if c <> 0 then c
      else
        let c = Int.compare a.span.col b.span.col in
        if c <> 0 then c
        else
          let c = String.compare a.entity b.entity in
          if c <> 0 then c else String.compare a.message b.message

(* Baseline identity. Spans and messages are excluded on purpose: renumbering
   lines (or a precision change rewording a witness list) must not turn a
   known finding into a "new" one. The entity anchor is expected to make a
   finding unique within its rule. *)
let fingerprint t = Digest.to_hex (Digest.string (t.rule ^ "\x00" ^ t.entity))

let to_human t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%s: %s: %s [%s]" (span_to_string t.span) (severity_to_string t.severity)
       t.message t.rule);
  List.iter (fun w -> Buffer.add_string b ("\n    witness: " ^ w)) t.witnesses;
  Buffer.contents b
