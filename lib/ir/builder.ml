module Dynarr = Ipa_support.Dynarr
open Program

(* Mutable shadow of a method while its body is being accumulated. *)
type meth_build = {
  mb_name : string;
  mb_owner : class_id;
  mb_sig : sig_id;
  mb_static : bool;
  mb_abstract : bool;
  mb_this : var_id option;
  mb_formals : var_id array;
  mutable mb_ret : var_id option;
  mutable mb_catches : catch_clause list; (* reverse order *)
  mb_body : instr Dynarr.t;
  mb_instr_pos : Srcloc.pos Dynarr.t; (* parallel to mb_body *)
  mutable mb_catch_pos : Srcloc.pos list; (* reverse, parallel to mb_catches *)
  var_by_name : (string, var_id) Hashtbl.t;
  mutable heap_count : int;
  mutable invo_count : int;
}

type class_build = {
  cb_name : string;
  cb_super : class_id option;
  cb_interfaces : class_id list;
  cb_interface : bool;
  mutable cb_declared : (sig_id * meth_id) list; (* concrete only *)
  mutable cb_sigs : sig_id list; (* all declared sigs, incl. abstract *)
  field_by_name : (string, field_id) Hashtbl.t;
}

type t = {
  classes : class_build Dynarr.t;
  class_names : (string, unit) Hashtbl.t;
  fields : field_info Dynarr.t;
  sigs : (string * int, sig_id) Hashtbl.t;
  sig_list : sig_info Dynarr.t;
  meths : meth_build Dynarr.t;
  vars : var_info Dynarr.t;
  heaps : heap_info Dynarr.t;
  invos : invo_info Dynarr.t;
  mutable entry_list : meth_id list;
  mutable finished : bool;
  (* Source positions, parallel to the entity tables above. [cur_pos] is
     stamped onto every entity created until the next [set_pos]; entities
     created with no position at all get generator coordinates in [finish]
     when no source file was ever declared. *)
  class_pos : Srcloc.pos Dynarr.t;
  field_pos : Srcloc.pos Dynarr.t;
  meth_pos : Srcloc.pos Dynarr.t;
  var_pos : Srcloc.pos Dynarr.t;
  heap_pos : Srcloc.pos Dynarr.t;
  invo_pos : Srcloc.pos Dynarr.t;
  mutable src_file : string option;
  mutable cur_pos : Srcloc.pos option;
}

let dummy_class =
  {
    cb_name = "";
    cb_super = None;
    cb_interfaces = [];
    cb_interface = false;
    cb_declared = [];
    cb_sigs = [];
    field_by_name = Hashtbl.create 1;
  }

let dummy_field = { field_name = ""; field_owner = 0; is_static_field = false }
let dummy_sig = { sig_name = ""; arity = 0 }
let dummy_var = { var_name = ""; var_owner = 0 }
let dummy_heap = { heap_name = ""; heap_class = 0; heap_owner = 0 }

let dummy_invo =
  { call = Static { callee = 0 }; actuals = [||]; recv = None; invo_owner = 0; invo_name = "" }

let dummy_meth =
  {
    mb_name = "";
    mb_owner = 0;
    mb_sig = 0;
    mb_static = false;
    mb_abstract = false;
    mb_this = None;
    mb_formals = [||];
    mb_ret = None;
    mb_catches = [];
    mb_body = Dynarr.create ~dummy:(Return { source = 0 }) ();
    mb_instr_pos = Dynarr.create ~dummy:Srcloc.no_pos ();
    mb_catch_pos = [];
    var_by_name = Hashtbl.create 1;
    heap_count = 0;
    invo_count = 0;
  }

let create () =
  {
    classes = Dynarr.create ~dummy:dummy_class ();
    class_names = Hashtbl.create 64;
    fields = Dynarr.create ~dummy:dummy_field ();
    sigs = Hashtbl.create 64;
    sig_list = Dynarr.create ~dummy:dummy_sig ();
    meths = Dynarr.create ~dummy:dummy_meth ();
    vars = Dynarr.create ~dummy:dummy_var ();
    heaps = Dynarr.create ~dummy:dummy_heap ();
    invos = Dynarr.create ~dummy:dummy_invo ();
    entry_list = [];
    finished = false;
    class_pos = Dynarr.create ~dummy:Srcloc.no_pos ();
    field_pos = Dynarr.create ~dummy:Srcloc.no_pos ();
    meth_pos = Dynarr.create ~dummy:Srcloc.no_pos ();
    var_pos = Dynarr.create ~dummy:Srcloc.no_pos ();
    heap_pos = Dynarr.create ~dummy:Srcloc.no_pos ();
    invo_pos = Dynarr.create ~dummy:Srcloc.no_pos ();
    src_file = None;
    cur_pos = None;
  }

let set_source t file = t.src_file <- Some file

let set_pos t (p : Srcloc.pos) = t.cur_pos <- Some p

let here t = match t.cur_pos with Some p -> p | None -> Srcloc.no_pos

let check_live t = if t.finished then failwith "Builder: already finished"

let check_class t c what =
  if c < 0 || c >= Dynarr.length t.classes then
    invalid_arg (Printf.sprintf "Builder.%s: unknown class id %d" what c)

let check_meth t m what =
  if m < 0 || m >= Dynarr.length t.meths then
    invalid_arg (Printf.sprintf "Builder.%s: unknown method id %d" what m)

let check_var t v what =
  if v < 0 || v >= Dynarr.length t.vars then
    invalid_arg (Printf.sprintf "Builder.%s: unknown variable id %d" what v)

let check_field t f what =
  if f < 0 || f >= Dynarr.length t.fields then
    invalid_arg (Printf.sprintf "Builder.%s: unknown field id %d" what f)

let intern_sig t name arity =
  match Hashtbl.find_opt t.sigs (name, arity) with
  | Some s -> s
  | None ->
    let s = Dynarr.push_get_index t.sig_list { sig_name = name; arity } in
    Hashtbl.add t.sigs (name, arity) s;
    s

let add_class_gen t ~super ~interfaces ~is_interface name =
  check_live t;
  if Hashtbl.mem t.class_names name then failwith (Printf.sprintf "duplicate class %s" name);
  Hashtbl.add t.class_names name ();
  (match super with Some s -> check_class t s "add_class" | None -> ());
  List.iter (fun i -> check_class t i "add_class") interfaces;
  Dynarr.push t.class_pos (here t);
  Dynarr.push_get_index t.classes
    {
      cb_name = name;
      cb_super = super;
      cb_interfaces = interfaces;
      cb_interface = is_interface;
      cb_declared = [];
      cb_sigs = [];
      field_by_name = Hashtbl.create 4;
    }

let add_class t ?super ?(interfaces = []) name =
  add_class_gen t ~super ~interfaces ~is_interface:false name

let add_interface t ?(interfaces = []) name =
  add_class_gen t ~super:None ~interfaces ~is_interface:true name

let add_field t ~owner ?(static = false) name =
  check_live t;
  check_class t owner "add_field";
  let cb = Dynarr.get t.classes owner in
  if Hashtbl.mem cb.field_by_name name then
    failwith (Printf.sprintf "duplicate field %s::%s" cb.cb_name name);
  Dynarr.push t.field_pos (here t);
  let f =
    Dynarr.push_get_index t.fields
      { field_name = name; field_owner = owner; is_static_field = static }
  in
  Hashtbl.add cb.field_by_name name f;
  f

let fresh_var t ~owner name =
  Dynarr.push t.var_pos (here t);
  Dynarr.push_get_index t.vars { var_name = name; var_owner = owner }

let add_method t ~owner ~name ?(static = false) ?(abstract = false) ~params () =
  check_live t;
  check_class t owner "add_method";
  let cb = Dynarr.get t.classes owner in
  let s = intern_sig t name (List.length params) in
  if List.mem s cb.cb_sigs then
    failwith (Printf.sprintf "duplicate method %s::%s/%d" cb.cb_name name (List.length params));
  if abstract && static then failwith "a method cannot be both abstract and static";
  let m = Dynarr.length t.meths in
  let var_by_name = Hashtbl.create 8 in
  let declare_var vname =
    if Hashtbl.mem var_by_name vname then
      failwith (Printf.sprintf "duplicate variable %s in %s::%s" vname cb.cb_name name);
    let v = fresh_var t ~owner:m vname in
    Hashtbl.add var_by_name vname v;
    v
  in
  let mb_this = if static || abstract then None else Some (declare_var "this") in
  let mb_formals = if abstract then [||] else Array.of_list (List.map declare_var params) in
  Dynarr.push t.meth_pos (here t);
  let mb =
    {
      mb_name = name;
      mb_owner = owner;
      mb_sig = s;
      mb_static = static;
      mb_abstract = abstract;
      mb_this;
      mb_formals;
      mb_ret = None;
      mb_catches = [];
      mb_body = Dynarr.create ~dummy:(Return { source = 0 }) ();
      mb_instr_pos = Dynarr.create ~dummy:Srcloc.no_pos ();
      mb_catch_pos = [];
      var_by_name;
      heap_count = 0;
      invo_count = 0;
    }
  in
  let m' = Dynarr.push_get_index t.meths mb in
  assert (m = m');
  cb.cb_sigs <- s :: cb.cb_sigs;
  if not abstract then cb.cb_declared <- (s, m) :: cb.cb_declared;
  m

let this t m =
  check_meth t m "this";
  match (Dynarr.get t.meths m).mb_this with
  | Some v -> v
  | None -> failwith "Builder.this: static or abstract method"

let formal t m i =
  check_meth t m "formal";
  let mb = Dynarr.get t.meths m in
  if i < 0 || i >= Array.length mb.mb_formals then
    invalid_arg (Printf.sprintf "Builder.formal: method has no formal %d" i);
  mb.mb_formals.(i)

let add_var t m name =
  check_live t;
  check_meth t m "add_var";
  let mb = Dynarr.get t.meths m in
  if mb.mb_abstract then failwith "Builder.add_var: abstract method";
  if Hashtbl.mem mb.var_by_name name then
    failwith (Printf.sprintf "duplicate variable %s" name);
  let v = fresh_var t ~owner:m name in
  Hashtbl.add mb.var_by_name name v;
  v

let body_meth t m what =
  check_live t;
  check_meth t m what;
  let mb = Dynarr.get t.meths m in
  if mb.mb_abstract then failwith (Printf.sprintf "Builder.%s: abstract method" what);
  mb

let push_instr t mb instr =
  Dynarr.push mb.mb_body instr;
  Dynarr.push mb.mb_instr_pos (here t)

let meth_label t m =
  let mb = Dynarr.get t.meths m in
  Printf.sprintf "%s::%s" (Dynarr.get t.classes mb.mb_owner).cb_name mb.mb_name

let alloc t m ~target ~cls =
  let mb = body_meth t m "alloc" in
  check_var t target "alloc";
  check_class t cls "alloc";
  let name =
    Printf.sprintf "%s/new %s#%d" (meth_label t m) (Dynarr.get t.classes cls).cb_name
      mb.heap_count
  in
  mb.heap_count <- mb.heap_count + 1;
  Dynarr.push t.heap_pos (here t);
  let h = Dynarr.push_get_index t.heaps { heap_name = name; heap_class = cls; heap_owner = m } in
  push_instr t mb (Alloc { target; heap = h });
  h

let move t m ~target ~source =
  let mb = body_meth t m "move" in
  check_var t target "move";
  check_var t source "move";
  push_instr t mb (Move { target; source })

let cast t m ~target ~source ~cls =
  let mb = body_meth t m "cast" in
  check_var t target "cast";
  check_var t source "cast";
  check_class t cls "cast";
  push_instr t mb (Cast { target; source; cast_to = cls })

let load t m ~target ~base ~field =
  let mb = body_meth t m "load" in
  check_var t target "load";
  check_var t base "load";
  check_field t field "load";
  push_instr t mb (Load { target; base; field })

let store t m ~base ~field ~source =
  let mb = body_meth t m "store" in
  check_var t base "store";
  check_var t source "store";
  check_field t field "store";
  push_instr t mb (Store { base; field; source })

let load_static t m ~target ~field =
  let mb = body_meth t m "load_static" in
  check_var t target "load_static";
  check_field t field "load_static";
  push_instr t mb (Load_static { target; field })

let store_static t m ~field ~source =
  let mb = body_meth t m "store_static" in
  check_var t source "store_static";
  check_field t field "store_static";
  push_instr t mb (Store_static { field; source })

let add_invo t m mb call actuals recv kind_label =
  List.iter (fun v -> check_var t v "call actual") actuals;
  (match recv with Some v -> check_var t v "call receiver" | None -> ());
  let name = Printf.sprintf "%s/%s#%d" (meth_label t m) kind_label mb.invo_count in
  mb.invo_count <- mb.invo_count + 1;
  Dynarr.push t.invo_pos (here t);
  let i =
    Dynarr.push_get_index t.invos
      { call; actuals = Array.of_list actuals; recv; invo_owner = m; invo_name = name }
  in
  push_instr t mb (Call i);
  i

let vcall t m ~base ~name ~actuals ?recv () =
  let mb = body_meth t m "vcall" in
  check_var t base "vcall";
  let s = intern_sig t name (List.length actuals) in
  add_invo t m mb (Virtual { base; signature = s }) actuals recv ("call " ^ name)

let scall t m ~callee ~actuals ?recv () =
  let mb = body_meth t m "scall" in
  check_meth t callee "scall";
  let label = "scall " ^ (Dynarr.get t.meths callee).mb_name in
  add_invo t m mb (Static { callee }) actuals recv label

let return_ t m source =
  let mb = body_meth t m "return_" in
  check_var t source "return_";
  (match mb.mb_ret with
  | Some _ -> ()
  | None -> mb.mb_ret <- Some (fresh_var t ~owner:m "$ret"));
  push_instr t mb (Return { source })

let throw t m source =
  let mb = body_meth t m "throw" in
  check_var t source "throw";
  push_instr t mb (Throw { source })

let add_catch t m ~cls ~var =
  let mb = body_meth t m "add_catch" in
  check_class t cls "add_catch";
  check_var t var "add_catch";
  mb.mb_catches <- { catch_type = cls; catch_var = var } :: mb.mb_catches;
  mb.mb_catch_pos <- here t :: mb.mb_catch_pos

let add_entry t m =
  check_live t;
  check_meth t m "add_entry";
  if not (List.mem m t.entry_list) then t.entry_list <- m :: t.entry_list

let finish t =
  check_live t;
  t.finished <- true;
  let classes =
    Array.map
      (fun cb ->
        {
          class_name = cb.cb_name;
          super = cb.cb_super;
          interfaces = cb.cb_interfaces;
          is_interface = cb.cb_interface;
          declared = List.rev cb.cb_declared;
        })
      (Dynarr.to_array t.classes)
  in
  let meths =
    Array.map
      (fun mb ->
        {
          meth_name = mb.mb_name;
          meth_owner = mb.mb_owner;
          meth_sig = mb.mb_sig;
          is_static_meth = mb.mb_static;
          is_abstract = mb.mb_abstract;
          this_var = mb.mb_this;
          formals = mb.mb_formals;
          ret_var = mb.mb_ret;
          catches = Array.of_list (List.rev mb.mb_catches);
          body = Dynarr.to_array mb.mb_body;
        })
      (Dynarr.to_array t.meths)
  in
  (* Source positions. With a declared source file the recorded coordinates
     are kept as-is (unstamped entities stay at 0:0); without one every
     entity gets deterministic generator coordinates — line = id + 1,
     column 0 — so synthetic findings are still stably addressable. *)
  let meth_builds = Dynarr.to_array t.meths in
  let srcloc =
    let fill arr =
      match t.src_file with
      | Some _ -> arr
      | None ->
        Array.mapi
          (fun i (p : Srcloc.pos) ->
            if p = Srcloc.no_pos then { Srcloc.line = i + 1; col = 0 } else p)
          arr
    in
    let fill2 m arr =
      match t.src_file with
      | Some _ -> arr
      | None ->
        Array.mapi
          (fun k (p : Srcloc.pos) ->
            if p = Srcloc.no_pos then { Srcloc.line = m + 1; col = k + 1 } else p)
          arr
    in
    {
      Srcloc.file = (match t.src_file with Some f -> f | None -> Srcloc.synthetic_file);
      classes = fill (Dynarr.to_array t.class_pos);
      fields = fill (Dynarr.to_array t.field_pos);
      meths = fill (Dynarr.to_array t.meth_pos);
      vars = fill (Dynarr.to_array t.var_pos);
      heaps = fill (Dynarr.to_array t.heap_pos);
      invos = fill (Dynarr.to_array t.invo_pos);
      instrs = Array.mapi (fun m mb -> fill2 m (Dynarr.to_array mb.mb_instr_pos)) meth_builds;
      catches =
        Array.mapi
          (fun m mb -> fill2 m (Array.of_list (List.rev mb.mb_catch_pos)))
          meth_builds;
    }
  in
  let program =
    Program.make ~srcloc ~classes
      ~fields:(Dynarr.to_array t.fields)
      ~sigs:(Dynarr.to_array t.sig_list)
      ~meths
      ~vars:(Dynarr.to_array t.vars)
      ~heaps:(Dynarr.to_array t.heaps)
      ~invos:(Dynarr.to_array t.invos)
      ~entries:(List.rev t.entry_list) ()
  in
  match Wf.check program with
  | Ok () -> program
  | Error errs -> failwith ("ill-formed program:\n  " ^ String.concat "\n  " errs)
