(** Well-formedness checking for {!Program.t} values.

    Both the builder and the front-end funnel programs through this checker,
    so every program the analysis sees satisfies the invariants the solver
    relies on (variable ownership, arity agreement, instantiable allocation
    classes, acyclic hierarchy — the latter enforced by [Program.make]).

    Each check class carries a stable rule id ([IPA-W001] … [IPA-W020]); the
    ids appear in lint baselines and the rule catalog in
    [docs/jir-format.md], so new checks append ids and existing ones are
    never renumbered. *)

val diagnostics : Program.t -> Diagnostic.t list
(** All well-formedness violations, in a deterministic order (classes, then
    fields, then methods and their bodies, then entry points). Spans come
    from the program's {!Srcloc.t} when present; an empty list means the
    program is well-formed. Checked invariants:
    - a class's [super] is a class (not an interface); [interfaces] are
      interfaces;
    - interfaces declare no concrete methods, no instance fields, and are
      never instantiated or extended by [super];
    - every variable mentioned in a method's body (and its formals, [this],
      [ret_var]) is owned by that method;
    - allocation sites instantiate non-interface classes and are owned by the
      allocating method;
    - call sites: actual count matches the signature arity (virtual) or the
      callee's formal count (static); static callees are concrete static
      methods; the site is owned by the enclosing method;
    - [Return] only occurs in methods with a [ret_var];
    - catch clauses bind variables owned by the method and never catch
      interface types;
    - abstract methods have empty bodies, no body-owned sites, and no catch
      clauses;
    - entry points are concrete methods. *)

val check : Program.t -> (unit, string list) result
(** Compatibility wrapper over {!diagnostics}: [Ok ()] or [Error messages],
    the diagnostic messages in the same order. *)
