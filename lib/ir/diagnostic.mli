(** The uniform finding type of the lint engine and the {!Wf} checker.

    A diagnostic carries a stable rule id (["IPA-W012"], ["IPA-S001"], ...),
    a severity, a source span (see {!Srcloc}), a stable symbolic [entity]
    anchor (a method/field/class full name, possibly suffixed with a site
    index) used for baseline matching, a human-readable message, and
    optional witness strings (offending heap objects, value-flow paths). *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

type span = { file : string; line : int; col : int }

val no_span : span
val span_of_pos : file:string -> Srcloc.pos -> span

val span_to_string : span -> string
(** ["file:line:col"], or ["line:col"] when the file is unknown. *)

type t = {
  rule : string;  (** stable rule id *)
  severity : severity;
  span : span;
  entity : string;  (** stable anchor, unique within the rule *)
  message : string;
  witnesses : string list;
}

val make :
  rule:string ->
  severity:severity ->
  ?span:span ->
  entity:string ->
  ?witnesses:string list ->
  string ->
  t

val compare : t -> t -> int
(** Total deterministic order: rule id, then span, then entity, then
    message. Reports sorted with this are byte-identical regardless of the
    order rules ran in. *)

val fingerprint : t -> string
(** Hex digest of (rule id, entity) — the identity used by baseline files.
    Span- and message-independent, so renumbered lines or reworded witness
    lists do not resurface a baselined finding as new. *)

val to_human : t -> string
(** ["span: severity: message \[rule\]"], witnesses indented below. *)
