(** The lint engine: a rule registry over [.jir] programs and (optionally)
    their points-to solutions, producing {!Ipa_ir.Diagnostic.t} findings in
    a deterministic order.

    Two rule families:
    - {e syntactic} rules need only the program (IPA-W000 well-formedness,
      IPA-S001 .. IPA-S005);
    - {e solution-backed} rules ground findings in a {!Ipa_core.Solution.t}
      (IPA-P001 .. IPA-P006) and report nothing when the context has no
      solution.

    Monotone rules (P001 may-fail-cast, P004 megamorphic-call, P005
    taint-flow, and trivially every syntactic rule) have finding sets —
    keyed by (rule id, entity) — that never grow as analysis precision
    increases; P002/P003/P006 report facts a finer analysis can newly
    establish and are explicitly non-monotone. *)

module Diagnostic = Ipa_ir.Diagnostic

type ctx = {
  program : Ipa_ir.Program.t;
  solution : Ipa_core.Solution.t option;
  taint_spec : Ipa_clients.Taint.spec option;  (** [None] = the client's default spec *)
  megamorphic_threshold : int;  (** IPA-P004 fires at this many targets *)
}

val make_ctx :
  ?solution:Ipa_core.Solution.t ->
  ?taint_spec:Ipa_clients.Taint.spec ->
  ?megamorphic_threshold:int ->
  Ipa_ir.Program.t ->
  ctx
(** [megamorphic_threshold] defaults to 3. *)

type source = Syntactic | Solution_backed

type rule = {
  id : string;  (** stable: ["IPA-S001"] ... *)
  name : string;  (** kebab-case short name *)
  doc : string;  (** one-line description, shown in SARIF rule metadata *)
  severity : Diagnostic.severity;  (** default severity of its findings *)
  source : source;
  monotone : bool;  (** finding set shrinks as analysis precision grows *)
  run : ctx -> Diagnostic.t list;
}

val all_rules : rule list
(** The registry, in rule-id order. *)

val find_rule : string -> rule option

val select_rules : string option -> (rule list, string) result
(** [select_rules None] is every rule. [select_rules (Some spec)] parses a
    comma-separated list of rule ids and the family selectors [all],
    [syntactic], [semantic]; a trailing [-] excludes ([all,IPA-P006-]).
    Unknown names are an [Error]. *)

type timing = { rule_id : string; seconds : float; n_findings : int }

val run : ?jobs:int -> ?rules:rule list -> ctx -> Diagnostic.t list * timing list
(** Runs the rules (all of them by default) and returns the de-duplicated
    findings sorted by {!Diagnostic.compare} plus per-rule wall-clock
    timings (in the rules' registry order). [jobs > 1] fans rules out on a
    {!Ipa_support.Domain_pool}; the solution's lazy indexes are forced
    first, and results are collected in input order, so the findings are
    identical to a [jobs = 1] run (timings differ, findings do not). *)
