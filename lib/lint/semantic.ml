(* Solution-backed lint rules: findings grounded in a points-to solution,
   reusing the analysis clients. Rule ids IPA-P001 … IPA-P006.

   Monotonicity: rules P001 (may-fail cast), P004 (megamorphic call) and
   P005 (taint flow) report over-approximation artifacts, so their finding
   sets shrink (or stay equal) as context-sensitivity increases — the
   property the QCheck suite asserts. P002/P003/P006 report *emptiness*
   or *totality* facts that a more precise analysis can newly establish,
   so they are explicitly non-monotone. *)

module Program = Ipa_ir.Program
module Srcloc = Ipa_ir.Srcloc
module Diagnostic = Ipa_ir.Diagnostic
module Int_set = Ipa_support.Int_set
module Solution = Ipa_core.Solution
module Value_flow = Ipa_core.Value_flow
module Cast_check = Ipa_clients.Cast_check
module Devirtualize = Ipa_clients.Devirtualize
module Taint = Ipa_clients.Taint

let span_of p get =
  match Program.srcloc p with
  | None -> Diagnostic.no_span
  | Some sl -> Diagnostic.span_of_pos ~file:sl.Srcloc.file (get sl)

let instr_span p m k = span_of p (fun sl -> Srcloc.instr_pos sl m k)
let invo_span p i = span_of p (fun sl -> Srcloc.invo_pos sl i)
let meth_span p m = span_of p (fun sl -> Srcloc.meth_pos sl m)

let cast_entity p (c : Cast_check.t) = Printf.sprintf "%s#%d" (Program.meth_full_name p c.meth) c.index

(* IPA-P001: casts the analysis cannot prove safe — at least one witness
   object fails the cast. The paper's "casts that may fail" metric as
   individual findings. Monotone. *)
let may_fail_cast (s : Solution.t) =
  let p = s.program in
  List.filter_map
    (fun (c : Cast_check.t) ->
      if c.witnesses = [] then None
      else
        Some
          (Diagnostic.make ~rule:"IPA-P001" ~severity:Warning ~span:(instr_span p c.meth c.index)
             ~entity:(cast_entity p c)
             ~witnesses:(List.map (Program.heap_full_name p) c.witnesses)
             (Printf.sprintf "%s: cast of %s to %s may fail on %d of %d objects"
                (Program.meth_full_name p c.meth)
                (Program.var_info p c.source).var_name
                (Program.class_name p c.target_type)
                (List.length c.witnesses) c.total)))
    (Cast_check.analyze s)

(* IPA-P002: casts guaranteed to fail — the points-to set is non-empty and
   every object in it fails. Non-monotone: a finer analysis can shrink a
   mixed set down to only failing objects. *)
let failing_cast (s : Solution.t) =
  let p = s.program in
  List.filter_map
    (fun (c : Cast_check.t) ->
      if c.total > 0 && List.length c.witnesses = c.total then
        Some
          (Diagnostic.make ~rule:"IPA-P002" ~severity:Error ~span:(instr_span p c.meth c.index)
             ~entity:(cast_entity p c)
             ~witnesses:(List.map (Program.heap_full_name p) c.witnesses)
             (Printf.sprintf "%s: cast of %s to %s fails on every one of its %d objects"
                (Program.meth_full_name p c.meth)
                (Program.var_info p c.source).var_name
                (Program.class_name p c.target_type)
                c.total))
      else None)
    (Cast_check.analyze s)

(* IPA-P003: dereferences (field load/store, virtual-call receiver) whose
   base has an empty points-to set in a reachable method: under the
   analysis the statement only executes with a null-like base. Non-monotone
   (precision can empty a set). *)
let empty_deref (s : Solution.t) =
  let p = s.program in
  let vpt = Solution.collapsed_var_pts s in
  let reachable = Solution.reachable_meths s in
  let out = ref [] in
  for m = Program.n_meths p - 1 downto 0 do
    if Int_set.mem reachable m then
      Array.iteri
        (fun k (i : Program.instr) ->
          let flag base what =
            if Int_set.cardinal vpt.(base) = 0 then begin
              let entity = Printf.sprintf "%s#%d" (Program.meth_full_name p m) k in
              out :=
                Diagnostic.make ~rule:"IPA-P003" ~severity:Warning ~span:(instr_span p m k)
                  ~entity
                  (Printf.sprintf "%s: %s %s has an empty points-to set"
                     (Program.meth_full_name p m) what
                     (Program.var_info p base).var_name)
                :: !out
            end
          in
          match i with
          | Load { base; _ } -> flag base "load base"
          | Store { base; _ } -> flag base "store base"
          | Call invo -> (
            match (Program.invo_info p invo).call with
            | Virtual { base; _ } -> flag base "call receiver"
            | Static _ -> ())
          | _ -> ())
        (Program.meth_info p m).body
  done;
  !out

(* IPA-P004: megamorphic virtual calls — at least [threshold] distinct
   targets. Dispatch overhead and a common symptom of precision loss.
   Monotone: target sets only shrink with precision. *)
let megamorphic_call ~threshold (s : Solution.t) =
  let p = s.program in
  List.filter_map
    (fun (d : Devirtualize.t) ->
      match d.verdict with
      | Polymorphic ms when List.length ms >= threshold ->
        Some
          (Diagnostic.make ~rule:"IPA-P004" ~severity:Info ~span:(invo_span p d.site)
             ~entity:(Program.invo_info p d.site).invo_name
             ~witnesses:(List.map (Program.meth_full_name p) ms)
             (Printf.sprintf "%s: megamorphic call with %d targets"
                (Program.invo_info p d.site).invo_name (List.length ms)))
      | _ -> None)
    (Devirtualize.analyze s)

(* IPA-P005: taint-spec violations — a tainted value reaches a sink
   argument, witnessed by a value-flow path. Monotone (documented by the
   taint client: finer value-flow graphs are subgraphs). *)
let taint_flow ?spec (s : Solution.t) =
  let p = s.program in
  let r = Taint.analyze ?spec s in
  List.map
    (fun (f : Taint.finding) ->
      let ii = Program.invo_info p f.invo in
      let witnesses =
        match r.vfg with
        | Some vfg -> List.map (Value_flow.node_to_string vfg) f.path
        | None -> []
      in
      Diagnostic.make ~rule:"IPA-P005" ~severity:Error ~span:(invo_span p f.invo)
        ~entity:(Printf.sprintf "%s!%d" ii.invo_name f.arg)
        ~witnesses
        (Printf.sprintf "%s: argument %d of sink %s is tainted" ii.invo_name f.arg
           (Program.meth_full_name p f.sink)))
    r.findings

(* IPA-P006: concrete non-entry methods the *solution's* call graph never
   reaches — sharper than IPA-S001 (which over-approximates with
   name-and-arity dispatch) but analysis-dependent, hence non-monotone as
   a finding set keyed by entity. *)
let dead_method (s : Solution.t) =
  let p = s.program in
  let reachable = Solution.reachable_meths s in
  let entries = Program.entries p in
  let out = ref [] in
  for m = Program.n_meths p - 1 downto 0 do
    let mi = Program.meth_info p m in
    if (not (Int_set.mem reachable m)) && (not mi.is_abstract) && not (List.mem m entries) then
      out :=
        Diagnostic.make ~rule:"IPA-P006" ~severity:Info ~span:(meth_span p m)
          ~entity:(Program.meth_full_name p m)
          (Printf.sprintf "method %s is unreachable under this analysis"
             (Program.meth_full_name p m))
        :: !out
  done;
  !out
