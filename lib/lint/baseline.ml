(* Baseline files: the set of accepted finding fingerprints, so CI fails
   only on findings that are new relative to the committed baseline.
   Identity is Diagnostic.fingerprint — (rule id, entity) — which survives
   renumbered lines and reworded messages. The file keeps rule/entity next
   to each fingerprint so reviewers can read diffs. *)

module Diagnostic = Ipa_ir.Diagnostic
module Json = Ipa_support.Json

type t = (string, unit) Hashtbl.t

let empty () : t = Hashtbl.create 16

let mem (t : t) (d : Diagnostic.t) = Hashtbl.mem t (Diagnostic.fingerprint d)

let of_diagnostics ds : t =
  let t = empty () in
  List.iter (fun d -> Hashtbl.replace t (Diagnostic.fingerprint d) ()) ds;
  t

let to_json ds =
  let entries =
    List.map
      (fun (d : Diagnostic.t) ->
        Json.Obj
          [
            ("fingerprint", Json.Str (Diagnostic.fingerprint d));
            ("rule", Json.Str d.rule);
            ("entity", Json.Str d.entity);
          ])
      (List.sort_uniq Diagnostic.compare ds)
  in
  (* One fingerprint may cover several diagnostics (same rule+entity,
     different messages); keep the first occurrence only. *)
  let seen = Hashtbl.create 16 in
  let entries =
    List.filter
      (fun e ->
        match Json.member "fingerprint" e with
        | Some (Json.Str fp) ->
          if Hashtbl.mem seen fp then false
          else begin
            Hashtbl.add seen fp ();
            true
          end
        | _ -> true)
      entries
  in
  Json.Obj [ ("version", Json.Int 1); ("findings", Json.List entries) ]

let save path ds =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string ~pretty:true (to_json ds) ^ "\n"))

let of_json j : (t, string) result =
  match Json.member "version" j with
  | Some (Json.Int 1) -> (
    match Option.bind (Json.member "findings" j) Json.to_list with
    | None -> Error "baseline: missing findings array"
    | Some entries ->
      let t = empty () in
      let bad = ref None in
      List.iter
        (fun e ->
          match Option.bind (Json.member "fingerprint" e) Json.to_str with
          | Some fp -> Hashtbl.replace t fp ()
          | None -> bad := Some "baseline: entry without a fingerprint")
        entries;
      (match !bad with Some m -> Error m | None -> Ok t))
  | Some (Json.Int v) -> Error (Printf.sprintf "baseline: unsupported version %d" v)
  | _ -> Error "baseline: missing version"

let load path : (t, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | src -> (
    match Json.of_string src with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j -> ( match of_json j with Error e -> Error (Printf.sprintf "%s: %s" path e) | ok -> ok))

let filter_new (t : t) ds = List.filter (fun d -> not (mem t d)) ds
