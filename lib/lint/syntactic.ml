(* Syntactic lint rules: facts derivable from the program text and class
   hierarchy alone, no points-to solution required. Rule ids IPA-S001 …
   IPA-S005; see the catalog in docs/jir-format.md. *)

module Program = Ipa_ir.Program
module Srcloc = Ipa_ir.Srcloc
module Diagnostic = Ipa_ir.Diagnostic
module Int_set = Ipa_support.Int_set

let span_of p get =
  match Program.srcloc p with
  | None -> Diagnostic.no_span
  | Some sl -> Diagnostic.span_of_pos ~file:sl.Srcloc.file (get sl)

let meth_span p m = span_of p (fun sl -> Srcloc.meth_pos sl m)
let field_span p f = span_of p (fun sl -> Srcloc.field_pos sl f)
let var_span p v = span_of p (fun sl -> Srcloc.var_pos sl v)
let instr_span p m k = span_of p (fun sl -> Srcloc.instr_pos sl m k)
let catch_span p m k = span_of p (fun sl -> Srcloc.catch_pos sl m k)

(* IPA-S001: methods a name-and-arity call graph cannot reach from the entry
   points. Over-approximates any points-to call graph (every virtual call is
   assumed to reach every implementation of its signature), so a method
   flagged here is dead under every analysis flavor. *)
let unreachable_method p =
  let reached = Int_set.create () in
  let work = Queue.create () in
  let visit m = if Int_set.add reached m then Queue.add m work in
  List.iter visit (Program.entries p);
  while not (Queue.is_empty work) do
    let m = Queue.pop work in
    Array.iter
      (fun (i : Program.instr) ->
        match i with
        | Call invo -> (
          match (Program.invo_info p invo).call with
          | Static { callee } -> visit callee
          | Virtual { signature; _ } -> List.iter visit (Program.implementations p signature))
        | _ -> ())
      (Program.meth_info p m).body
  done;
  let out = ref [] in
  for m = Program.n_meths p - 1 downto 0 do
    let mi = Program.meth_info p m in
    if (not (Int_set.mem reached m)) && not mi.is_abstract then
      out :=
        Diagnostic.make ~rule:"IPA-S001" ~severity:Warning ~span:(meth_span p m)
          ~entity:(Program.meth_full_name p m)
          (Printf.sprintf "method %s is unreachable from the entry points"
             (Program.meth_full_name p m))
        :: !out
  done;
  !out

(* IPA-S002: declared local variables never referenced by any instruction or
   catch clause of their method. [this], formals, and the canonical return
   variable are exempt (they are part of the method's interface). *)
let unused_variable p =
  let used = Array.make (Program.n_vars p) false in
  let exempt = Array.make (Program.n_vars p) false in
  for m = 0 to Program.n_meths p - 1 do
    let mi = Program.meth_info p m in
    (match mi.this_var with Some v -> exempt.(v) <- true | None -> ());
    Array.iter (fun v -> exempt.(v) <- true) mi.formals;
    (match mi.ret_var with Some v -> exempt.(v) <- true | None -> ());
    Array.iter
      (fun (i : Program.instr) ->
        let u v = used.(v) <- true in
        match i with
        | Alloc { target; _ } -> u target
        | Move { target; source } -> u target; u source
        | Cast { target; source; _ } -> u target; u source
        | Load { target; base; _ } -> u target; u base
        | Store { base; source; _ } -> u base; u source
        | Load_static { target; _ } -> u target
        | Store_static { source; _ } -> u source
        | Call invo ->
          let ii = Program.invo_info p invo in
          Array.iter u ii.actuals;
          (match ii.recv with Some v -> u v | None -> ());
          (match ii.call with Virtual { base; _ } -> u base | Static _ -> ())
        | Return { source } -> u source
        | Throw { source } -> u source)
      mi.body;
    Array.iter (fun (c : Program.catch_clause) -> used.(c.catch_var) <- true) mi.catches
  done;
  let out = ref [] in
  for v = Program.n_vars p - 1 downto 0 do
    if (not used.(v)) && not exempt.(v) then
      out :=
        Diagnostic.make ~rule:"IPA-S002" ~severity:Info ~span:(var_span p v)
          ~entity:(Program.var_full_name p v)
          (Printf.sprintf "variable %s is never used" (Program.var_full_name p v))
        :: !out
  done;
  !out

(* IPA-S003: fields written but never read (or never referenced at all). A
   store to such a field cannot affect any observable value flow. *)
let write_only_field p =
  let loaded = Array.make (Program.n_fields p) false in
  let stored = Array.make (Program.n_fields p) false in
  for m = 0 to Program.n_meths p - 1 do
    Array.iter
      (fun (i : Program.instr) ->
        match i with
        | Load { field; _ } | Load_static { field; _ } -> loaded.(field) <- true
        | Store { field; _ } | Store_static { field; _ } -> stored.(field) <- true
        | _ -> ())
      (Program.meth_info p m).body
  done;
  let out = ref [] in
  for f = Program.n_fields p - 1 downto 0 do
    if not loaded.(f) then begin
      let what = if stored.(f) then "written but never read" else "never referenced" in
      out :=
        Diagnostic.make ~rule:"IPA-S003" ~severity:Info ~span:(field_span p f)
          ~entity:(Program.field_full_name p f)
          (Printf.sprintf "field %s is %s" (Program.field_full_name p f) what)
        :: !out
    end
  done;
  !out

(* IPA-S004: casts to a type with no instantiable class on either side of the
   hierarchy relation with any allocated class. Cheap hierarchy-only check:
   a cast to C can only succeed if some allocation site instantiates a
   subtype of C, so when none exists the cast fails on every non-null
   value regardless of analysis precision. *)
let impossible_cast p =
  let instantiable = Array.make (Program.n_classes p) false in
  for h = 0 to Program.n_heaps p - 1 do
    instantiable.((Program.heap_info p h).heap_class) <- true
  done;
  let feasible_target = Array.make (Program.n_classes p) false in
  for c = 0 to Program.n_classes p - 1 do
    if instantiable.(c) then
      for super = 0 to Program.n_classes p - 1 do
        if Program.subtype p ~sub:c ~super then feasible_target.(super) <- true
      done
  done;
  let out = ref [] in
  for m = Program.n_meths p - 1 downto 0 do
    let mi = Program.meth_info p m in
    Array.iteri
      (fun k (i : Program.instr) ->
        match i with
        | Cast { cast_to; _ } when not feasible_target.(cast_to) ->
          let entity = Printf.sprintf "%s#%d" (Program.meth_full_name p m) k in
          out :=
            Diagnostic.make ~rule:"IPA-S004" ~severity:Warning ~span:(instr_span p m k) ~entity
              (Printf.sprintf "%s: cast to %s can never succeed (no allocated subtype)"
                 (Program.meth_full_name p m) (Program.class_name p cast_to))
            :: !out
        | _ -> ())
      mi.body
  done;
  !out

(* IPA-S005: a catch clause shadowed by an earlier clause of a supertype —
   clause j can never match because every exception it admits is already
   routed to clause i < j. *)
let shadowed_catch p =
  let out = ref [] in
  for m = Program.n_meths p - 1 downto 0 do
    let clauses = (Program.meth_info p m).catches in
    Array.iteri
      (fun j (cj : Program.catch_clause) ->
        let shadow = ref None in
        for i = j - 1 downto 0 do
          if Program.subtype p ~sub:cj.catch_type ~super:clauses.(i).catch_type then
            shadow := Some i
        done;
        match !shadow with
        | Some i ->
          let entity = Printf.sprintf "%s@catch%d" (Program.meth_full_name p m) j in
          out :=
            Diagnostic.make ~rule:"IPA-S005" ~severity:Warning ~span:(catch_span p m j) ~entity
              (Printf.sprintf "%s: catch of %s is shadowed by earlier catch of %s"
                 (Program.meth_full_name p m)
                 (Program.class_name p cj.catch_type)
                 (Program.class_name p clauses.(i).catch_type))
            :: !out
        | None -> ())
      clauses
  done;
  !out
