(* Reporters over sorted diagnostic lists. All three formats are
   deterministic functions of the input list, so jobs=N runs emit
   byte-identical reports. *)

module Diagnostic = Ipa_ir.Diagnostic
module Json = Ipa_support.Json

let tool_name = "introspect"
let tool_version = "1.0.0"

let human (ds : Diagnostic.t list) =
  String.concat "" (List.map (fun d -> Diagnostic.to_human d ^ "\n") ds)

let json_of_diag (d : Diagnostic.t) =
  Json.Obj
    [
      ("rule", Json.Str d.rule);
      ("severity", Json.Str (Diagnostic.severity_to_string d.severity));
      ("file", if d.span.file = "" then Json.Null else Json.Str d.span.file);
      ("line", Json.Int d.span.line);
      ("col", Json.Int d.span.col);
      ("entity", Json.Str d.entity);
      ("message", Json.Str d.message);
      ("witnesses", Json.List (List.map (fun w -> Json.Str w) d.witnesses));
      ("fingerprint", Json.Str (Diagnostic.fingerprint d));
    ]

let jsonl (ds : Diagnostic.t list) =
  String.concat "" (List.map (fun d -> Json.to_string (json_of_diag d) ^ "\n") ds)

(* SARIF 2.1.0: one run, one driver, rule metadata for every rule that could
   fire (the whole registry of the invocation), one result per finding. *)
let sarif_level (s : Diagnostic.severity) =
  match s with Error -> "error" | Warning -> "warning" | Info -> "note"

let sarif ?(rules : Lint.rule list = Lint.all_rules) (ds : Diagnostic.t list) =
  let rule_meta (r : Lint.rule) =
    Json.Obj
      [
        ("id", Json.Str r.id);
        ("name", Json.Str r.name);
        ("shortDescription", Json.Obj [ ("text", Json.Str r.doc) ]);
        ( "defaultConfiguration",
          Json.Obj [ ("level", Json.Str (sarif_level r.severity)) ] );
      ]
  in
  let result (d : Diagnostic.t) =
    let location =
      if d.span.line = 0 && d.span.file = "" then []
      else
        [
          ( "locations",
            Json.List
              [
                Json.Obj
                  [
                    ( "physicalLocation",
                      Json.Obj
                        [
                          ( "artifactLocation",
                            Json.Obj
                              [ ("uri", Json.Str (if d.span.file = "" then "<unknown>" else d.span.file)) ]
                          );
                          ( "region",
                            Json.Obj
                              [
                                ("startLine", Json.Int (max 1 d.span.line));
                                ("startColumn", Json.Int (max 1 d.span.col));
                              ] );
                        ] );
                  ];
              ] );
        ]
    in
    let message =
      match d.witnesses with
      | [] -> d.message
      | ws -> d.message ^ " [" ^ String.concat "; " ws ^ "]"
    in
    Json.Obj
      ([
         ("ruleId", Json.Str d.rule);
         ("level", Json.Str (sarif_level d.severity));
         ("message", Json.Obj [ ("text", Json.Str message) ]);
       ]
      @ location
      @ [
          ( "partialFingerprints",
            Json.Obj [ ("ipaFindingId/v1", Json.Str (Diagnostic.fingerprint d)) ] );
        ])
  in
  let doc =
    Json.Obj
      [
        ("version", Json.Str "2.1.0");
        ( "$schema",
          Json.Str
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
        );
        ( "runs",
          Json.List
            [
              Json.Obj
                [
                  ( "tool",
                    Json.Obj
                      [
                        ( "driver",
                          Json.Obj
                            [
                              ("name", Json.Str tool_name);
                              ("version", Json.Str tool_version);
                              ("informationUri", Json.Str "https://example.org/introspect");
                              ("rules", Json.List (List.map rule_meta rules));
                            ] );
                      ] );
                  ("results", Json.List (List.map result ds));
                ];
            ] );
      ]
  in
  Json.to_string ~pretty:true doc ^ "\n"

type format = Human | Jsonl | Sarif

let format_of_string = function
  | "human" -> Ok Human
  | "jsonl" -> Ok Jsonl
  | "sarif" -> Ok Sarif
  | s -> Error (Printf.sprintf "unknown format %S (expected human, jsonl, or sarif)" s)

let render ?rules fmt ds =
  match fmt with Human -> human ds | Jsonl -> jsonl ds | Sarif -> sarif ?rules ds
