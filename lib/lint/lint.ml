module Program = Ipa_ir.Program
module Diagnostic = Ipa_ir.Diagnostic
module Wf = Ipa_ir.Wf
module Solution = Ipa_core.Solution
module Taint = Ipa_clients.Taint
module Domain_pool = Ipa_support.Domain_pool

type ctx = {
  program : Program.t;
  solution : Solution.t option;
  taint_spec : Taint.spec option;
  megamorphic_threshold : int;
}

let make_ctx ?solution ?taint_spec ?(megamorphic_threshold = 3) program =
  { program; solution; taint_spec; megamorphic_threshold }

type source = Syntactic | Solution_backed

type rule = {
  id : string;
  name : string;
  doc : string;
  severity : Diagnostic.severity;
  source : source;
  monotone : bool;
  run : ctx -> Diagnostic.t list;
}

let syn ~id ~name ~doc ~severity run =
  { id; name; doc; severity; source = Syntactic; monotone = true; run = (fun ctx -> run ctx.program) }

let sem ~id ~name ~doc ~severity ~monotone run =
  {
    id;
    name;
    doc;
    severity;
    source = Solution_backed;
    monotone;
    run = (fun ctx -> match ctx.solution with None -> [] | Some s -> run s);
  }

(* The registry, in id order. IPA-W000 fans out to the per-check IPA-Wnnn
   ids of the well-formedness checker; programs built through Builder or the
   front-end are always well-formed, so it only fires on handcrafted
   Program.make values — but lint must not assume its input's provenance. *)
let all_rules : rule list =
  [
    {
      id = "IPA-W000";
      name = "well-formedness";
      doc = "Structural invariants of the IR (reported under IPA-W001 .. IPA-W020).";
      severity = Error;
      source = Syntactic;
      monotone = true;
      run = (fun ctx -> Wf.diagnostics ctx.program);
    };
    syn ~id:"IPA-S001" ~name:"unreachable-method"
      ~doc:"Concrete method unreachable from the entry points under name-and-arity dispatch."
      ~severity:Warning Syntactic.unreachable_method;
    syn ~id:"IPA-S002" ~name:"unused-variable"
      ~doc:"Declared local never referenced by any instruction or catch clause."
      ~severity:Info Syntactic.unused_variable;
    syn ~id:"IPA-S003" ~name:"write-only-field"
      ~doc:"Field written but never read (or never referenced at all)."
      ~severity:Info Syntactic.write_only_field;
    syn ~id:"IPA-S004" ~name:"impossible-cast"
      ~doc:"Cast to a type with no allocated subtype anywhere in the program."
      ~severity:Warning Syntactic.impossible_cast;
    syn ~id:"IPA-S005" ~name:"shadowed-catch"
      ~doc:"Catch clause fully shadowed by an earlier clause of a supertype."
      ~severity:Warning Syntactic.shadowed_catch;
    sem ~id:"IPA-P001" ~name:"may-fail-cast"
      ~doc:"Cast with at least one points-to witness that fails it." ~severity:Warning
      ~monotone:true Semantic.may_fail_cast;
    sem ~id:"IPA-P002" ~name:"failing-cast"
      ~doc:"Cast with a non-empty points-to set in which every object fails." ~severity:Error
      ~monotone:false Semantic.failing_cast;
    sem ~id:"IPA-P003" ~name:"empty-deref"
      ~doc:"Dereference whose base has an empty points-to set in a reachable method."
      ~severity:Warning ~monotone:false Semantic.empty_deref;
    {
      id = "IPA-P004";
      name = "megamorphic-call";
      doc = "Virtual call resolving to at least the threshold number of targets.";
      severity = Info;
      source = Solution_backed;
      monotone = true;
      run =
        (fun ctx ->
          match ctx.solution with
          | None -> []
          | Some s -> Semantic.megamorphic_call ~threshold:ctx.megamorphic_threshold s);
    };
    {
      id = "IPA-P005";
      name = "taint-flow";
      doc = "Tainted value reaching a sink argument, with a value-flow witness path.";
      severity = Error;
      source = Solution_backed;
      monotone = true;
      run =
        (fun ctx ->
          match ctx.solution with
          | None -> []
          | Some s -> Semantic.taint_flow ?spec:ctx.taint_spec s);
    };
    sem ~id:"IPA-P006" ~name:"dead-method"
      ~doc:"Concrete non-entry method unreachable in the solution's call graph." ~severity:Info
      ~monotone:false Semantic.dead_method;
  ]

let find_rule id = List.find_opt (fun r -> r.id = id) all_rules

(* Rule selection: comma-separated ids and [id-] exclusions; "all",
   "syntactic", "semantic" select families. *)
let select_rules spec =
  match spec with
  | None -> Ok all_rules
  | Some spec ->
    let toks =
      String.split_on_char ',' spec |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let unknown =
      List.filter
        (fun t ->
          let t = if String.length t > 1 && t.[String.length t - 1] = '-' then String.sub t 0 (String.length t - 1) else t in
          not (List.mem t [ "all"; "syntactic"; "semantic" ]) && find_rule t = None)
        toks
    in
    if unknown <> [] then Error (Printf.sprintf "unknown rule(s): %s" (String.concat ", " unknown))
    else begin
      let excluded =
        List.filter_map
          (fun t ->
            if String.length t > 1 && t.[String.length t - 1] = '-' then
              Some (String.sub t 0 (String.length t - 1))
            else None)
          toks
      in
      let included = List.filter (fun t -> not (String.length t > 1 && t.[String.length t - 1] = '-')) toks in
      let base =
        if included = [] then all_rules
        else
          List.filter
            (fun r ->
              List.exists
                (fun t ->
                  t = "all" || t = r.id
                  || (t = "syntactic" && r.source = Syntactic)
                  || (t = "semantic" && r.source = Solution_backed))
                included)
            all_rules
      in
      Ok (List.filter (fun r -> not (List.mem r.id excluded)) base)
    end

type timing = { rule_id : string; seconds : float; n_findings : int }

(* Run the selected rules. With [jobs > 1] rules run on a domain pool;
   [Domain_pool.map] returns results in input order and every solution
   index is forced beforehand, so the output is identical to jobs=1. *)
let run ?(jobs = 1) ?(rules : rule list option) (ctx : ctx) :
    Diagnostic.t list * timing list =
  let rules = match rules with Some rs -> rs | None -> all_rules in
  (match ctx.solution with
  | Some s when jobs > 1 -> Solution.warm_indexes s
  | _ -> ());
  let timed (r : rule) =
    let t0 = Unix.gettimeofday () in
    let ds = r.run ctx in
    let dt = Unix.gettimeofday () -. t0 in
    (ds, { rule_id = r.id; seconds = dt; n_findings = List.length ds })
  in
  let results =
    if jobs <= 1 then List.map timed rules
    else Domain_pool.with_pool ~jobs (fun pool -> Domain_pool.map_list pool timed rules)
  in
  let ds = List.concat_map fst results in
  (List.sort_uniq Diagnostic.compare ds, List.map snd results)
