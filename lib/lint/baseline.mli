(** Baseline-file suppression: CI fails only on findings that are new
    relative to a committed baseline.

    A baseline is a set of {!Ipa_ir.Diagnostic.fingerprint} values — the
    (rule id, entity) identity — stored as version-1 JSON with the rule and
    entity alongside each fingerprint for reviewable diffs. Because the
    identity ignores spans and messages, renumbering lines or rewording a
    witness list does not resurface an accepted finding. *)

module Diagnostic = Ipa_ir.Diagnostic

type t

val empty : unit -> t

val of_diagnostics : Diagnostic.t list -> t

val mem : t -> Diagnostic.t -> bool

val filter_new : t -> Diagnostic.t list -> Diagnostic.t list
(** The findings not covered by the baseline, order preserved. *)

val save : string -> Diagnostic.t list -> unit
(** Writes the version-1 JSON baseline for the given findings (sorted,
    de-duplicated by fingerprint). *)

val load : string -> (t, string) result
