(** Reporters: render a sorted finding list as human text, JSON lines, or
    SARIF 2.1.0. Pure functions of their input — byte-identical output for
    identical findings, whatever concurrency produced them. *)

module Diagnostic = Ipa_ir.Diagnostic

val human : Diagnostic.t list -> string
(** One {!Diagnostic.to_human} block per finding. *)

val json_of_diag : Diagnostic.t -> Ipa_support.Json.t

val jsonl : Diagnostic.t list -> string
(** One compact JSON object per line: rule, severity, file/line/col, entity,
    message, witnesses, fingerprint. *)

val sarif : ?rules:Lint.rule list -> Diagnostic.t list -> string
(** A SARIF 2.1.0 log with a single run: driver metadata carries one
    reportingDescriptor per rule ([rules] defaults to the whole registry),
    each finding becomes a result with [ruleId], [level], [message],
    [locations] (omitted for findings with no span at all) and a
    [partialFingerprints] entry keyed ["ipaFindingId/v1"]. Pretty-printed. *)

type format = Human | Jsonl | Sarif

val format_of_string : string -> (format, string) result
(** ["human"], ["jsonl"], ["sarif"]. *)

val render : ?rules:Lint.rule list -> format -> Diagnostic.t list -> string
