type spec = {
  name : string;
  seed : int;
  generate : scale:float -> World.t -> unit;
}

(* Scale a motif size, keeping it at least 1. *)
let sc scale n = max 1 (int_of_float (Float.round (float_of_int n *. scale)))

let antlr ~scale w =
  let s = sc scale in
  Motifs.exceptional w ~n:(s 15);
  Motifs.ballast w ~n:(s 800);
  Motifs.chains w ~n:(s 60) ~depth:6;
  Motifs.factory_boxes w ~n:(s 40);
  Motifs.factory_boxes w ~n:(s 12) ~junk:(s 110);
  Motifs.listeners w ~n:(s 25);
  Motifs.dispatch_storm w ~wrappers:(s 35) ~payload:(s 450) ~depth:5

let bloat ~scale w =
  let s = sc scale in
  Motifs.exceptional w ~n:(s 15);
  Motifs.ballast w ~n:(s 5500);
  Motifs.chains w ~n:(s 40) ~depth:5;
  Motifs.factory_boxes w ~n:(s 60);
  Motifs.factory_boxes w ~n:(s 25) ~junk:(s 110);
  Motifs.dispatch_storm w ~recursive:true ~wrappers:(s 220) ~payload:(s 5200) ~depth:10;
  Motifs.mega_hub w ~items:(s 1100) ~users:(s 160) ~chain:2

let chart ~scale w =
  let s = sc scale in
  Motifs.exceptional w ~n:(s 20);
  Motifs.ballast w ~n:(s 1200);
  Motifs.chains w ~n:(s 50) ~depth:5;
  Motifs.factory_boxes w ~n:(s 80);
  Motifs.factory_boxes w ~n:(s 30) ~junk:(s 110);
  Motifs.listeners w ~n:(s 40);
  Motifs.mega_hub w ~items:(s 500) ~users:(s 60) ~chain:2;
  Motifs.dispatch_storm w ~wrappers:(s 30) ~payload:(s 450) ~depth:5

let eclipse ~scale w =
  let s = sc scale in
  Motifs.exceptional w ~n:(s 18);
  Motifs.ballast w ~n:(s 1500);
  Motifs.chains w ~n:(s 70) ~depth:6;
  Motifs.factory_boxes w ~n:(s 70);
  Motifs.factory_boxes w ~n:(s 28) ~junk:(s 110);
  Motifs.listeners w ~n:(s 30);
  Motifs.mega_hub w ~items:(s 700) ~users:(s 90) ~chain:2;
  Motifs.dispatch_storm w ~wrappers:(s 35) ~payload:(s 500) ~depth:5

let hsqldb ~scale w =
  let s = sc scale in
  Motifs.exceptional w ~n:(s 12);
  Motifs.ballast w ~n:(s 4000);
  Motifs.chains w ~n:(s 30) ~depth:4;
  Motifs.factory_boxes w ~n:(s 50);
  Motifs.factory_boxes w ~n:(s 20) ~junk:(s 110);
  Motifs.listeners w ~n:(s 20);
  Motifs.mega_hub w ~items:(s 3400) ~users:(s 340) ~chain:3

let jython ~scale w =
  let s = sc scale in
  Motifs.exceptional w ~n:(s 12);
  Motifs.ballast w ~n:(s 1000);
  Motifs.chains w ~n:(s 30) ~depth:4;
  Motifs.factory_boxes w ~n:(s 50);
  Motifs.factory_boxes w ~n:(s 20) ~junk:(s 110);
  Motifs.interp_loop w ~feedback:true ~ops:(s 1200) ~vals:3 ~steps:8 ~family:4;
  Motifs.mega_hub w ~items:(s 2200) ~users:(s 20) ~typed_users:(s 300) ~chain:1

let lusearch ~scale w =
  let s = sc scale in
  Motifs.exceptional w ~n:(s 10);
  Motifs.ballast w ~n:(s 600);
  Motifs.chains w ~n:(s 50) ~depth:5;
  Motifs.factory_boxes w ~n:(s 30);
  Motifs.factory_boxes w ~n:(s 10) ~junk:(s 110);
  Motifs.listeners w ~n:(s 20);
  Motifs.dispatch_storm w ~wrappers:(s 30) ~payload:(s 400) ~depth:5

let pmd ~scale w =
  let s = sc scale in
  Motifs.exceptional w ~n:(s 20);
  Motifs.ballast w ~n:(s 1500);
  Motifs.chains w ~n:(s 60) ~depth:6;
  Motifs.factory_boxes w ~n:(s 90);
  Motifs.factory_boxes w ~n:(s 35) ~junk:(s 110);
  Motifs.listeners w ~n:(s 30);
  Motifs.mega_hub w ~items:(s 900) ~users:(s 110) ~chain:2;
  Motifs.dispatch_storm w ~wrappers:(s 35) ~payload:(s 500) ~depth:5

let xalan ~scale w =
  let s = sc scale in
  Motifs.exceptional w ~n:(s 15);
  Motifs.ballast w ~n:(s 5500);
  Motifs.chains w ~n:(s 40) ~depth:5;
  Motifs.factory_boxes w ~n:(s 60);
  Motifs.factory_boxes w ~n:(s 25) ~junk:(s 110);
  Motifs.dispatch_storm w ~recursive:true ~wrappers:(s 220) ~payload:(s 5200) ~depth:10;
  Motifs.mega_hub w ~items:(s 1800) ~users:(s 150) ~chain:3

let all =
  [
    { name = "antlr"; seed = 0xA171; generate = antlr };
    { name = "bloat"; seed = 0xB10A; generate = bloat };
    { name = "chart"; seed = 0xC4A7; generate = chart };
    { name = "eclipse"; seed = 0xEC11; generate = eclipse };
    { name = "hsqldb"; seed = 0x45DB; generate = hsqldb };
    { name = "jython"; seed = 0x1707; generate = jython };
    { name = "lusearch"; seed = 0x105E; generate = lusearch };
    { name = "pmd"; seed = 0x93D0; generate = pmd };
    { name = "xalan"; seed = 0xAA1A; generate = xalan };
  ]

let hard_names = [ "bloat"; "chart"; "eclipse"; "hsqldb"; "jython"; "pmd"; "xalan" ]
let charted_names = [ "bloat"; "chart"; "eclipse"; "hsqldb"; "jython"; "xalan" ]

let of_names names = List.filter (fun s -> List.mem s.name names) all

let hard = of_names hard_names
let charted = of_names charted_names

let find name = List.find_opt (fun s -> s.name = name) all

let build ?(scale = 1.0) spec =
  let w = World.create ~seed:spec.seed in
  spec.generate ~scale w;
  World.finish w
