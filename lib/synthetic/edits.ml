module Program = Ipa_ir.Program
module Splitmix = Ipa_support.Splitmix

type kind = Add_alloc | Add_call | Rewrite_body

type t = { kind : kind; meth : Program.meth_id; salt : int }

let kind_name = function
  | Add_alloc -> "add-alloc"
  | Add_call -> "add-call"
  | Rewrite_body -> "rewrite-body"

let kind_of_name = function
  | "add-alloc" -> Some Add_alloc
  | "add-call" -> Some Add_call
  | "rewrite-body" -> Some Rewrite_body
  | _ -> None

let all_kinds = [ Add_alloc; Add_call; Rewrite_body ]
let monotone_kinds = [ Add_alloc; Add_call ]

(* ---------- candidate filtering ---------- *)

let concrete_classes p =
  let acc = ref [] in
  for c = Program.n_classes p - 1 downto 0 do
    if not (Program.class_info p c).is_interface then acc := c :: !acc
  done;
  Array.of_list !acc

let static_callees p =
  let acc = ref [] in
  for m = Program.n_meths p - 1 downto 0 do
    let mi = Program.meth_info p m in
    if mi.is_static_meth && not mi.is_abstract then acc := m :: !acc
  done;
  Array.of_list !acc

let candidates p kind =
  let acc = ref [] in
  for m = Program.n_meths p - 1 downto 0 do
    let mi = Program.meth_info p m in
    let ok =
      (not mi.is_abstract)
      &&
      match kind with
      | Add_alloc -> Array.length (concrete_classes p) > 0
      | Add_call -> Array.length (static_callees p) > 0
      | Rewrite_body -> Array.length mi.body > 0
    in
    if ok then acc := m :: !acc
  done;
  Array.of_list !acc

let pick ?(kinds = all_kinds) ~seed ~n p =
  if kinds = [] then invalid_arg "Edits.pick: empty kind list";
  let rng = Splitmix.create seed in
  let kinds = Array.of_list kinds in
  let rec one budget =
    if budget = 0 then None
    else
      let kind = Splitmix.choose rng kinds in
      let cands = candidates p kind in
      if Array.length cands = 0 then one (budget - 1)
      else Some { kind; meth = Splitmix.choose rng cands; salt = Splitmix.int rng 1_000_000 }
  in
  let acc = ref [] in
  for _ = 1 to n do
    match one (8 * Array.length kinds) with
    | Some e -> acc := e :: !acc
    | None -> ()
  done;
  List.rev !acc

(* ---------- application ---------- *)

(* Rebuild the program through [Program.make] with the edit spliced in.
   Entity ids are append-only (nothing is renumbered), which is what makes
   a monotone edit a [Summary.extends] of the original — and what keeps an
   edit list picked against the original valid across sequential
   application. Source locations are dropped: the edited entities have
   none, and a stale table would misattribute diagnostics. *)
let apply p e =
  let classes = Array.init (Program.n_classes p) (Program.class_info p) in
  let fields = Array.init (Program.n_fields p) (Program.field_info p) in
  let sigs = Array.init (Program.n_sigs p) (Program.sig_info p) in
  let meths = Array.init (Program.n_meths p) (Program.meth_info p) in
  let vars = ref (Array.init (Program.n_vars p) (Program.var_info p)) in
  let heaps = ref (Array.init (Program.n_heaps p) (Program.heap_info p)) in
  let invos = ref (Array.init (Program.n_invos p) (Program.invo_info p)) in
  let fresh_var owner =
    let id = Array.length !vars in
    vars :=
      Array.append !vars
        [| { Program.var_name = Printf.sprintf "ev%d" id; var_owner = owner } |];
    id
  in
  let fresh_heap owner cls =
    let id = Array.length !heaps in
    heaps :=
      Array.append !heaps
        [|
          {
            Program.heap_name = Printf.sprintf "eh%d" id;
            heap_class = cls;
            heap_owner = owner;
          };
        |]
    ;
    id
  in
  let mi = meths.(e.meth) in
  (match e.kind with
  | Add_alloc ->
    let cls_pool = concrete_classes p in
    let cls = cls_pool.(e.salt mod Array.length cls_pool) in
    let nv = fresh_var e.meth in
    let nh = fresh_heap e.meth cls in
    (* The object flows out through a [Return]: it compiles to a copy onto
       the canonical return variable, prints as plain `return ev;` (the
       synthetic [$ret] variable is not surface syntax), and when the
       method did not return before, growing [ret_var : None -> Some] is
       still a monotone extension. The fresh return variable is named
       [$ret], matching what the frontend would synthesize on re-parse. *)
    let mi =
      match mi.ret_var with
      | Some _ -> mi
      | None ->
        let id = Array.length !vars in
        vars :=
          Array.append !vars [| { Program.var_name = "$ret"; var_owner = e.meth } |];
        { mi with Program.ret_var = Some id }
    in
    meths.(e.meth) <-
      {
        mi with
        Program.body =
          Array.append mi.body
            [| Program.Alloc { target = nv; heap = nh }; Program.Return { source = nv } |];
      }
  | Add_call ->
    let callees = static_callees p in
    let callee = callees.(e.salt mod Array.length callees) in
    let callee_info = meths.(callee) in
    let own_vars =
      (* Only surface-syntax variables: the synthetic [$ret] and implicit
         [this] cannot be spelled as actuals or receivers in .jir text. *)
      let acc = ref [] in
      Array.iteri
        (fun v (vi : Program.var_info) ->
          if
            vi.var_owner = e.meth
            && Some v <> mi.this_var
            && Some v <> mi.ret_var
            && (String.length vi.var_name = 0 || vi.var_name.[0] <> '$')
            && vi.var_name <> "this"
          then acc := v :: !acc)
        !vars;
      Array.of_list (List.rev !acc)
    in
    let pick_var i =
      if Array.length own_vars > 0 then own_vars.((e.salt + i) mod Array.length own_vars)
      else fresh_var e.meth
    in
    let actuals = Array.init (Array.length callee_info.formals) pick_var in
    let recv = match callee_info.ret_var with None -> None | Some _ -> Some (pick_var 1) in
    let ni = Array.length !invos in
    invos :=
      Array.append !invos
        [|
          {
            Program.call = Program.Static { callee };
            actuals;
            recv;
            invo_owner = e.meth;
            invo_name = Printf.sprintf "ei%d" ni;
          };
        |]
    ;
    meths.(e.meth) <- { mi with Program.body = Array.append mi.body [| Program.Call ni |] }
  | Rewrite_body ->
    let cls_pool = concrete_classes p in
    let cls = cls_pool.(e.salt mod Array.length cls_pool) in
    let nv = fresh_var e.meth in
    let nh = fresh_heap e.meth cls in
    let body = Array.copy mi.body in
    (* In-place replacement of the last instruction: deliberately NOT an
       extension of the original body, so the incremental driver's
       monotonicity check must refuse the warm path and fall back cold. *)
    body.(Array.length body - 1) <- Program.Alloc { target = nv; heap = nh };
    meths.(e.meth) <- { mi with Program.body = body });
  Program.make ~classes ~fields ~sigs ~meths ~vars:!vars ~heaps:!heaps ~invos:!invos
    ~entries:(Program.entries p) ()

let apply_all p es = List.fold_left apply p es

let describe p e =
  Printf.sprintf "%s %s" (kind_name e.kind) (Program.meth_full_name p e.meth)
