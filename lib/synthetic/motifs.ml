module B = Ipa_ir.Builder

(* ---------- chains ---------- *)

let chains (w : World.t) ~n ~depth =
  let b = w.b in
  if n < 0 || depth < 1 then invalid_arg "Motifs.chains";
  for _c = 1 to n do
    let data_cls = B.add_class b ~super:w.object_cls (World.fresh w "ChainData") in
    (* Build the chain back to front so each link can allocate the next. *)
    let rec build k next_cls =
      let cls = B.add_class b ~super:w.object_cls (World.fresh w "Chain") in
      let m = B.add_method b ~owner:cls ~name:"step" ~params:[ "x" ] () in
      (match next_cls with
      | None -> B.return_ b m (B.formal b m 0)
      | Some next ->
        let nx = B.add_var b m "nx" in
        let r = B.add_var b m "r" in
        ignore (B.alloc b m ~target:nx ~cls:next);
        ignore (B.vcall b m ~base:nx ~name:"step" ~actuals:[ B.formal b m 0 ] ~recv:r ());
        B.return_ b m r);
      if k <= 0 then cls else build (k - 1) (Some cls)
    in
    let first = build (depth - 1) None in
    let h = World.main_var w "ch" in
    let d = World.main_var w "cd" in
    let r = World.main_var w "cr" in
    ignore (B.alloc b w.main ~target:h ~cls:first);
    ignore (B.alloc b w.main ~target:d ~cls:data_cls);
    ignore (B.vcall b w.main ~base:h ~name:"step" ~actuals:[ d ] ~recv:r ())
  done

(* ---------- ballast ---------- *)

let ballast (w : World.t) ~n =
  let b = w.b in
  if n < 0 then invalid_arg "Motifs.ballast";
  for _i = 1 to n do
    let cls = B.add_class b ~super:w.object_cls (World.fresh w "Bal") in
    let data = B.add_class b ~super:w.object_cls (World.fresh w "BalD") in
    let fld = B.add_field b ~owner:cls "fa" in
    let seed = B.add_method b ~owner:cls ~name:"seed" ~static:true ~params:[] () in
    let x = B.add_var b seed "x" in
    let y = B.add_var b seed "y" in
    ignore (B.alloc b seed ~target:x ~cls);
    ignore (B.alloc b seed ~target:y ~cls:data);
    B.store b seed ~base:x ~field:fld ~source:y;
    B.return_ b seed x;
    let r = World.main_var w "bz" in
    ignore (B.scall b w.main ~callee:seed ~actuals:[] ~recv:r ())
  done

(* ---------- factory_boxes ---------- *)

let factory_boxes ?(junk = 0) (w : World.t) ~n =
  let b = w.b in
  if n < 1 || junk < 0 then invalid_arg "Motifs.factory_boxes";
  let handled = B.add_interface b (World.fresh w "Handled") in
  List.iter
    (fun name -> ignore (B.add_method b ~owner:handled ~name ~abstract:true ~params:[] ()))
    [ "handle"; "special"; "rare" ];
  let junk_cls =
    if junk > 0 then Some (B.add_class b ~super:w.object_cls (World.fresh w "Junk")) else None
  in
  let box = B.add_class b ~super:w.object_cls (World.fresh w "Box") in
  let box_val = B.add_field b ~owner:box "val" in
  let set = B.add_method b ~owner:box ~name:"bset" ~params:[ "x" ] () in
  B.store b set ~base:(B.this b set) ~field:box_val ~source:(B.formal b set 0);
  (* A two-argument setter whose second argument is dead weight. "Bulk"
     clients pass a large junk set through it: the call's argument in-flow
     trips Heuristic A's L threshold (so A analyzes the site context-
     insensitively and loses this client's precision), while the box content
     stays small enough that no Heuristic B metric fires — the precision
     dial between the two heuristics. *)
  let set2 = B.add_method b ~owner:box ~name:"bset2" ~params:[ "x"; "extra" ] () in
  B.store b set2 ~base:(B.this b set2) ~field:box_val ~source:(B.formal b set2 0);
  let get = B.add_method b ~owner:box ~name:"bget" ~params:[] () in
  let gt = B.add_var b get "t" in
  B.load b get ~target:gt ~base:(B.this b get) ~field:box_val;
  B.return_ b get gt;
  let factory = B.add_class b ~super:w.object_cls (World.fresh w "BoxFactory") in
  let make = B.add_method b ~owner:factory ~name:"make" ~static:true ~params:[] () in
  let mk_b = B.add_var b make "nb" in
  ignore (B.alloc b make ~target:mk_b ~cls:box);
  B.return_ b make mk_b;
  (* A helper method that just returns [this]; the payoff is call-graph and
     reachability structure, not data flow. *)
  let self_method owner name =
    let m = B.add_method b ~owner ~name ~params:[] () in
    B.return_ b m (B.this b m);
    m
  in
  for i = 0 to n - 1 do
    let data = B.add_class b ~super:w.object_cls ~interfaces:[ handled ] (World.fresh w "Data") in
    let delegating name helper =
      ignore (self_method data helper);
      let m = B.add_method b ~owner:data ~name ~params:[] () in
      let t = B.add_var b m "t" in
      ignore (B.vcall b m ~base:(B.this b m) ~name:helper ~actuals:[] ~recv:t ());
      B.return_ b m t
    in
    delegating "handle" "handleHelper";
    delegating "special" "specialHelper";
    (* [rare] pulls in two further helpers; only client 0 calls it, so every
       other reachable copy is context-insensitive conflation. *)
    ignore (self_method data "rareHelperA");
    ignore (self_method data "rareHelperB");
    let rare = B.add_method b ~owner:data ~name:"rare" ~params:[] () in
    let ta = B.add_var b rare "ta" in
    let tb = B.add_var b rare "tb" in
    ignore (B.vcall b rare ~base:(B.this b rare) ~name:"rareHelperA" ~actuals:[] ~recv:ta ());
    ignore (B.vcall b rare ~base:(B.this b rare) ~name:"rareHelperB" ~actuals:[] ~recv:tb ());
    B.return_ b rare ta;
    let client = B.add_class b ~super:w.object_cls (World.fresh w "Client") in
    let run = B.add_method b ~owner:client ~name:"run" ~params:[] () in
    let v name = B.add_var b run name in
    let bx = v "bx" in
    let d = v "d" in
    let g = v "g" in
    let c = v "c" in
    let s = v "s" in
    ignore (B.scall b run ~callee:make ~actuals:[] ~recv:bx ());
    ignore (B.alloc b run ~target:d ~cls:data);
    (match junk_cls with
    | None -> ignore (B.vcall b run ~base:bx ~name:"bset" ~actuals:[ d ] ())
    | Some jc ->
      let e = v "e" in
      for _j = 1 to junk do
        ignore (B.alloc b run ~target:e ~cls:jc)
      done;
      ignore (B.vcall b run ~base:bx ~name:"bset2" ~actuals:[ d; e ] ()));
    ignore (B.vcall b run ~base:bx ~name:"bget" ~actuals:[] ~recv:g ());
    B.cast b run ~target:c ~source:g ~cls:data;
    ignore (B.vcall b run ~base:g ~name:"handle" ~actuals:[] ~recv:s ());
    ignore (B.vcall b run ~base:g ~name:"special" ~actuals:[] ~recv:s ());
    if i = 0 then ignore (B.vcall b run ~base:g ~name:"rare" ~actuals:[] ~recv:s ());
    (* Each client is allocated inside its own launcher class, so the
       type-sensitive context element (the class containing the receiver's
       allocation site) differs per client and type-sensitivity recovers
       most of the motif's precision, as in the paper. *)
    let launcher = B.add_class b ~super:w.object_cls (World.fresh w "Launch") in
    let go = B.add_method b ~owner:launcher ~name:"go" ~static:true ~params:[] () in
    let cl = B.add_var b go "c" in
    ignore (B.alloc b go ~target:cl ~cls:client);
    ignore (B.vcall b go ~base:cl ~name:"run" ~actuals:[] ());
    ignore (B.scall b w.main ~callee:go ~actuals:[] ())
  done

(* ---------- taint_pipes ---------- *)

let taint_pipes ?(sanitized = 0) (w : World.t) ~n =
  let b = w.b in
  if n < 1 || sanitized < 0 then invalid_arg "Motifs.taint_pipes";
  (* The shared handler box: one allocation site inside a static factory, as
     in [factory_boxes]. Context-insensitively every client's [hget] returns
     every client's handler; heap context on the factory's allocation site
     separates them. The secret itself never enters the box — it is passed
     at per-client call sites whose *dispatch* conflates, so the taint
     separation survives in the collapsed value-flow graph. *)
  let box = B.add_class b ~super:w.object_cls (World.fresh w "HandBox") in
  let slot = B.add_field b ~owner:box "slot" in
  let hput = B.add_method b ~owner:box ~name:"hput" ~params:[ "x" ] () in
  B.store b hput ~base:(B.this b hput) ~field:slot ~source:(B.formal b hput 0);
  let hget = B.add_method b ~owner:box ~name:"hget" ~params:[] () in
  let gt = B.add_var b hget "t" in
  B.load b hget ~target:gt ~base:(B.this b hget) ~field:slot;
  B.return_ b hget gt;
  let factory = B.add_class b ~super:w.object_cls (World.fresh w "PipeFactory") in
  let mk_box = B.add_method b ~owner:factory ~name:"mkBox" ~static:true ~params:[] () in
  let fb = B.add_var b mk_box "nb" in
  ignore (B.alloc b mk_box ~target:fb ~cls:box);
  B.return_ b mk_box fb;
  (* Taint vocabulary matching [Ipa_clients.Taint.default_spec]: a static
     [mkSecret/0] source returning a [Secret*] allocation, a [consume/1]
     sink, and a taint-preserving [scrub/1] sanitizer. *)
  let sink_cls = B.add_class b ~super:w.object_cls (World.fresh w "TaintSink") in
  ignore (B.add_method b ~owner:sink_cls ~name:"consume" ~params:[ "x" ] ());
  let clean_cls = B.add_class b ~super:w.object_cls (World.fresh w "CleanData") in
  let secret_cls = B.add_class b ~super:w.object_cls (World.fresh w "Secret") in
  let well = B.add_class b ~super:w.object_cls (World.fresh w "TaintWell") in
  let mk_secret = B.add_method b ~owner:well ~name:"mkSecret" ~static:true ~params:[] () in
  let ms = B.add_var b mk_secret "s" in
  ignore (B.alloc b mk_secret ~target:ms ~cls:secret_cls);
  B.return_ b mk_secret ms;
  let scrubber = B.add_class b ~super:w.object_cls (World.fresh w "Scrubber") in
  let scrub = B.add_method b ~owner:scrubber ~name:"scrub" ~static:true ~params:[ "x" ] () in
  B.return_ b scrub (B.formal b scrub 0);
  let deliverable = B.add_interface b (World.fresh w "Deliverable") in
  ignore (B.add_method b ~owner:deliverable ~name:"deliver" ~abstract:true ~params:[ "x" ] ());
  let client kind =
    (* Each client gets its own handler class whose [deliver] feeds its
       argument to a sink call site — the per-client finding. *)
    let handler =
      B.add_class b ~super:w.object_cls ~interfaces:[ deliverable ] (World.fresh w "Handler")
    in
    let deliver = B.add_method b ~owner:handler ~name:"deliver" ~params:[ "x" ] () in
    let sv = B.add_var b deliver "snk" in
    ignore (B.alloc b deliver ~target:sv ~cls:sink_cls);
    ignore (B.vcall b deliver ~base:sv ~name:"consume" ~actuals:[ B.formal b deliver 0 ] ());
    let cls = B.add_class b ~super:w.object_cls (World.fresh w "PipeClient") in
    let run = B.add_method b ~owner:cls ~name:"run" ~params:[] () in
    let v name = B.add_var b run name in
    let bx = v "bx" in
    let h = v "h" in
    let g = v "g" in
    let p = v "p" in
    ignore (B.scall b run ~callee:mk_box ~actuals:[] ~recv:bx ());
    ignore (B.alloc b run ~target:h ~cls:handler);
    ignore (B.vcall b run ~base:bx ~name:"hput" ~actuals:[ h ] ());
    ignore (B.vcall b run ~base:bx ~name:"hget" ~actuals:[] ~recv:g ());
    (match kind with
    | `Hot -> ignore (B.scall b run ~callee:mk_secret ~actuals:[] ~recv:p ())
    | `Clean -> ignore (B.alloc b run ~target:p ~cls:clean_cls)
    | `Sanitized ->
      let raw = v "raw" in
      ignore (B.scall b run ~callee:mk_secret ~actuals:[] ~recv:raw ());
      ignore (B.scall b run ~callee:scrub ~actuals:[ raw ] ~recv:p ()));
    ignore (B.vcall b run ~base:g ~name:"deliver" ~actuals:[ p ] ());
    (* Per-client launcher class, so type-sensitive contexts also separate
       the receivers (same trick as factory_boxes). *)
    let launcher = B.add_class b ~super:w.object_cls (World.fresh w "PipeLaunch") in
    let go = B.add_method b ~owner:launcher ~name:"go" ~static:true ~params:[] () in
    let cl = B.add_var b go "c" in
    ignore (B.alloc b go ~target:cl ~cls);
    ignore (B.vcall b go ~base:cl ~name:"run" ~actuals:[] ());
    ignore (B.scall b w.main ~callee:go ~actuals:[] ())
  in
  client `Hot;
  for _i = 2 to n do
    client `Clean
  done;
  for _i = 1 to sanitized do
    client `Sanitized
  done

(* ---------- listeners ---------- *)

let listeners (w : World.t) ~n =
  let b = w.b in
  if n < 1 then invalid_arg "Motifs.listeners";
  let listener = B.add_interface b (World.fresh w "Listener") in
  ignore (B.add_method b ~owner:listener ~name:"onEvent" ~abstract:true ~params:[ "e" ] ());
  let source = B.add_class b ~super:w.object_cls (World.fresh w "Source") in
  let lst_fld = B.add_field b ~owner:source "lst" in
  let register = B.add_method b ~owner:source ~name:"register" ~params:[ "l" ] () in
  B.store b register ~base:(B.this b register) ~field:lst_fld ~source:(B.formal b register 0);
  let fire = B.add_method b ~owner:source ~name:"fire" ~params:[ "e" ] () in
  let fl = B.add_var b fire "l0" in
  let fr = B.add_var b fire "r" in
  B.load b fire ~target:fl ~base:(B.this b fire) ~field:lst_fld;
  ignore (B.vcall b fire ~base:fl ~name:"onEvent" ~actuals:[ B.formal b fire 0 ] ~recv:fr ());
  B.return_ b fire fr;
  for _i = 1 to n do
    let impl =
      B.add_class b ~super:w.object_cls ~interfaces:[ listener ] (World.fresh w "Lst")
    in
    let on_event = B.add_method b ~owner:impl ~name:"onEvent" ~params:[ "e" ] () in
    B.return_ b on_event (B.formal b on_event 0);
    let ev_cls = B.add_class b ~super:w.object_cls (World.fresh w "Ev") in
    let s = World.main_var w "lsrc" in
    let l = World.main_var w "limp" in
    let e = World.main_var w "lev" in
    let r = World.main_var w "lr" in
    ignore (B.alloc b w.main ~target:s ~cls:source);
    ignore (B.alloc b w.main ~target:l ~cls:impl);
    ignore (B.vcall b w.main ~base:s ~name:"register" ~actuals:[ l ] ());
    ignore (B.alloc b w.main ~target:e ~cls:ev_cls);
    ignore (B.vcall b w.main ~base:s ~name:"fire" ~actuals:[ e ] ~recv:r ())
  done

(* ---------- exceptional ---------- *)

let exceptional (w : World.t) ~n =
  let b = w.b in
  if n < 1 then invalid_arg "Motifs.exceptional";
  let exc_base = B.add_class b ~super:w.object_cls (World.fresh w "ExcBase") in
  let fatal_base = B.add_class b ~super:w.object_cls (World.fresh w "FatalBase") in
  (* One shared guard class whose [shield] method catches everything its
     thrower argument raises: context-insensitively the parameter (and hence
     the caught set) conflates across all guard objects; receiver-based
     context separates them. *)
  let guard = B.add_class b ~super:w.object_cls (World.fresh w "Guard") in
  let shield = B.add_method b ~owner:guard ~name:"shield" ~params:[ "t" ] () in
  let got = B.add_var b shield "got" in
  let r = B.add_var b shield "r" in
  B.add_catch b shield ~cls:exc_base ~var:got;
  ignore (B.vcall b shield ~base:(B.formal b shield 0) ~name:"boom" ~actuals:[] ~recv:r ());
  B.return_ b shield got;
  for _i = 1 to n do
    let exc = B.add_class b ~super:exc_base (World.fresh w "Exc") in
    let fatal = B.add_class b ~super:fatal_base (World.fresh w "Fatal") in
    let thrower = B.add_class b ~super:w.object_cls (World.fresh w "Thrower") in
    let boom = B.add_method b ~owner:thrower ~name:"boom" ~params:[] () in
    let be = B.add_var b boom "e" in
    ignore (B.alloc b boom ~target:be ~cls:exc);
    B.throw b boom be;
    B.return_ b boom (B.this b boom);
    let panic = B.add_method b ~owner:thrower ~name:"panic" ~params:[] () in
    let pe = B.add_var b panic "e" in
    ignore (B.alloc b panic ~target:pe ~cls:fatal);
    B.throw b panic pe;
    B.return_ b panic (B.this b panic);
    let g = World.main_var w "xg" in
    let t = World.main_var w "xt" in
    let caught = World.main_var w "xc" in
    let cast = World.main_var w "xd" in
    ignore (B.alloc b w.main ~target:g ~cls:guard);
    ignore (B.alloc b w.main ~target:t ~cls:thrower);
    ignore (B.vcall b w.main ~base:g ~name:"shield" ~actuals:[ t ] ~recv:caught ());
    B.cast b w.main ~target:cast ~source:caught ~cls:exc;
    (* the fatal path has no handler anywhere: an uncaught exception *)
    ignore (B.vcall b w.main ~base:t ~name:"panic" ~actuals:[] ())
  done

(* ---------- mega_hub ---------- *)

let mega_hub ?(typed_users = 0) (w : World.t) ~items ~users ~chain =
  let b = w.b in
  if items < 1 || users < 1 || chain < 1 || typed_users < 0 then invalid_arg "Motifs.mega_hub";
  let hub = B.add_class b ~super:w.object_cls (World.fresh w "Hub") in
  let slot = B.add_field b ~owner:hub "slot" in
  let put = B.add_method b ~owner:hub ~name:"hput" ~params:[ "x" ] () in
  B.store b put ~base:(B.this b put) ~field:slot ~source:(B.formal b put 0);
  let get = B.add_method b ~owner:hub ~name:"hget" ~params:[] () in
  let gt = B.add_var b get "t" in
  B.load b get ~target:gt ~base:(B.this b get) ~field:slot;
  B.return_ b get gt;
  let n_item_classes = min 30 ((items / 40) + 1) in
  let item_classes =
    Array.init n_item_classes (fun _ -> B.add_class b ~super:w.object_cls (World.fresh w "Item"))
  in
  let setup = B.add_class b ~super:w.object_cls (World.fresh w "HubSetup") in
  let build = B.add_method b ~owner:setup ~name:"build" ~static:true ~params:[] () in
  let bh = B.add_var b build "h" in
  (* Rotate the item cursor over several variables (as chunked init methods
     would): flow-insensitively each [hput] argument then carries only a
     chunk of the population, keeping the per-call-site cost of deep
     call-site-sensitivity linear rather than quadratic in [items]. *)
  let chunk = 400 in
  let n_cursors = max 1 ((items + chunk - 1) / chunk) in
  let cursors =
    Array.init n_cursors (fun i -> B.add_var b build (Printf.sprintf "it%d" i))
  in
  ignore (B.alloc b build ~target:bh ~cls:hub);
  for k = 0 to items - 1 do
    let bi = cursors.(k / chunk) in
    ignore (B.alloc b build ~target:bi ~cls:item_classes.(k mod n_item_classes));
    ignore (B.vcall b build ~base:bh ~name:"hput" ~actuals:[ bi ] ())
  done;
  B.return_ b build bh;
  (* One shared user class: its methods are re-analyzed once per receiver
     object under object-sensitivity — pure cost, no precision. *)
  let user = B.add_class b ~super:w.object_cls (World.fresh w "HubUser") in
  let use = B.add_method b ~owner:user ~name:"use" ~params:[ "h" ] () in
  let drains = Array.init 5 (fun i -> B.add_var b use (Printf.sprintf "a%d" i)) in
  Array.iter
    (fun a -> ignore (B.vcall b use ~base:(B.formal b use 0) ~name:"hget" ~actuals:[] ~recv:a ()))
    drains;
  let ur = B.add_var b use "r" in
  ignore (B.vcall b use ~base:(B.this b use) ~name:"hstep1" ~actuals:[ drains.(0) ] ~recv:ur ());
  B.return_ b use ur;
  for k = 1 to chain do
    let m = B.add_method b ~owner:user ~name:(Printf.sprintf "hstep%d" k) ~params:[ "x" ] () in
    if k = chain then B.return_ b m (B.formal b m 0)
    else begin
      let r = B.add_var b m "r" in
      ignore
        (B.vcall b m ~base:(B.this b m)
           ~name:(Printf.sprintf "hstep%d" (k + 1))
           ~actuals:[ B.formal b m 0 ] ~recv:r ());
      B.return_ b m r
    end
  done;
  let h = World.main_var w "hub" in
  ignore (B.scall b w.main ~callee:build ~actuals:[] ~recv:h ());
  for _j = 1 to users do
    let u = World.main_var w "hu" in
    let r = World.main_var w "hr" in
    ignore (B.alloc b w.main ~target:u ~cls:user);
    ignore (B.vcall b w.main ~base:u ~name:"use" ~actuals:[ h ] ~recv:r ())
  done;
  (* "Typed" users are allocated in per-user launcher classes, so even
     type-sensitive contexts multiply over them — the knob that makes
     2typeH explode on jython while Heuristic B's volume flag on [use]
     still rescues its introspective variant. *)
  for _j = 1 to typed_users do
    let launcher = B.add_class b ~super:w.object_cls (World.fresh w "HubLaunch") in
    let go = B.add_method b ~owner:launcher ~name:"go" ~static:true ~params:[ "h" ] () in
    let u = B.add_var b go "u" in
    let r = B.add_var b go "r" in
    ignore (B.alloc b go ~target:u ~cls:user);
    ignore (B.vcall b go ~base:u ~name:"use" ~actuals:[ B.formal b go 0 ] ~recv:r ());
    B.return_ b go r;
    let res = World.main_var w "hlr" in
    ignore (B.scall b w.main ~callee:go ~actuals:[ h ] ~recv:res ())
  done

(* ---------- dispatch_storm ---------- *)

let dispatch_storm ?(recursive = false) (w : World.t) ~wrappers ~payload ~depth =
  let b = w.b in
  if wrappers < 1 || payload < 1 || depth < 1 then invalid_arg "Motifs.dispatch_storm";
  let n_payload_classes = min 25 ((payload / 25) + 1) in
  let payload_classes =
    Array.init n_payload_classes (fun _ ->
        B.add_class b ~super:w.object_cls (World.fresh w "P"))
  in
  let seed = B.add_class b ~super:w.object_cls (World.fresh w "StormSeed") in
  let mk = B.add_method b ~owner:seed ~name:"mk" ~static:true ~params:[] () in
  let p = B.add_var b mk "p" in
  for k = 0 to payload - 1 do
    ignore (B.alloc b mk ~target:p ~cls:payload_classes.(k mod n_payload_classes))
  done;
  B.return_ b mk p;
  let util = B.add_class b ~super:w.object_cls (World.fresh w "StormUtil") in
  (* Build the chain back to front. With [recursive], the innermost utility
     also re-enters the chain head with its argument (real utility chains
     bottom out in recursive normalization): the chain's formals and returns
     then form copy-edge cycles once call-site contexts saturate, which is
     the workload online cycle elimination in the solver is built for. *)
  let head = ref None in
  let rec build k =
    let m = B.add_method b ~owner:util ~name:(Printf.sprintf "su%d" k) ~static:true ~params:[ "x" ] () in
    if k = 0 then head := Some m;
    if k = depth - 1 then begin
      B.return_ b m (B.formal b m 0);
      if recursive then begin
        let r = B.add_var b m "r" in
        ignore (B.scall b m ~callee:(Option.get !head) ~actuals:[ B.formal b m 0 ] ~recv:r ());
        B.return_ b m r
      end
    end
    else begin
      let next = build (k + 1) in
      let r = B.add_var b m "r" in
      ignore (B.scall b m ~callee:next ~actuals:[ B.formal b m 0 ] ~recv:r ());
      B.return_ b m r
    end;
    m
  in
  (* The chain must exist before wrappers call [su0]; build from the last
     method backwards via recursion, returning su0. *)
  let su0 = build 0 in
  let wcls = B.add_class b ~super:w.object_cls (World.fresh w "StormW") in
  for j = 0 to wrappers - 1 do
    let wm = B.add_method b ~owner:wcls ~name:(Printf.sprintf "w%d" j) ~static:true ~params:[] () in
    let wp = B.add_var b wm "p" in
    let wr = B.add_var b wm "r" in
    ignore (B.scall b wm ~callee:mk ~actuals:[] ~recv:wp ());
    ignore (B.scall b wm ~callee:su0 ~actuals:[ wp ] ~recv:wr ());
    B.return_ b wm wr;
    (* Recursive chains are idempotent normalizers, and real callers lean on
       that: re-normalizing the result routes each wrapper's return value
       back into the chain, so the whole per-wrapper return tail joins the
       chain's copy-edge cycle instead of dangling off it. *)
    if recursive then begin
      let wr2 = B.add_var b wm "r2" in
      ignore (B.scall b wm ~callee:su0 ~actuals:[ wr ] ~recv:wr2 ());
      B.return_ b wm wr2
    end;
    let r = World.main_var w "sw" in
    ignore (B.scall b w.main ~callee:wm ~actuals:[] ~recv:r ())
  done

(* ---------- interp_loop ---------- *)

let interp_loop ?(family = 1) ?(feedback = false) (w : World.t) ~ops ~vals ~steps =
  let b = w.b in
  if ops < 1 || vals < 1 || steps < 1 || family < 1 then invalid_arg "Motifs.interp_loop";
  let opcode = B.add_interface b (World.fresh w "Opcode") in
  ignore (B.add_method b ~owner:opcode ~name:"exec" ~abstract:true ~params:[ "f" ] ());
  let frame = B.add_class b ~super:w.object_cls (World.fresh w "Frame") in
  let stack = B.add_field b ~owner:frame "stack" in
  let push = B.add_method b ~owner:frame ~name:"fpush" ~params:[ "x" ] () in
  B.store b push ~base:(B.this b push) ~field:stack ~source:(B.formal b push 0);
  let pop = B.add_method b ~owner:frame ~name:"fpop" ~params:[] () in
  let pt = B.add_var b pop "t" in
  B.load b pop ~target:pt ~base:(B.this b pop) ~field:stack;
  B.return_ b pop pt;
  (* The shared opcode base class. Every opcode inherits [oprun], which
     drains the frame: under a deep-context analysis it is re-analyzed once
     per opcode receiver while carrying the whole (opcode-count-sized) value
     population — the quadratic feedback. Its drain width (2 variables) is
     chosen so its context-insensitive points-to volume stays below Heuristic
     B's P=10000 at jython scale: B does not flag it, and the second pass
     explodes anyway, reproducing the paper's one IntroB non-termination. *)
  let op_base = B.add_class b ~super:w.object_cls (World.fresh w "OpBase") in
  let add_oprun name =
    let oprun = B.add_method b ~owner:op_base ~name ~params:[ "f" ] () in
    let d0 = B.add_var b oprun "d0" in
    let d1 = B.add_var b oprun "d1" in
    ignore (B.vcall b oprun ~base:(B.formal b oprun 0) ~name:"fpop" ~actuals:[] ~recv:d0 ());
    ignore (B.vcall b oprun ~base:(B.formal b oprun 0) ~name:"fpop" ~actuals:[] ~recv:d1 ());
    (* With [feedback], drained values go back onto the stack (a real
       interpreter pops operands and pushes results): the stack field, the
       [fpop] returns, and every context's drain variables become one big
       copy-edge cycle without adding any points-to fact — [d0] already
       comes from the stack — so precision is untouched while the solver's
       cycle elimination gets the interpreter's whole feedback loop. *)
    if feedback then ignore (B.vcall b oprun ~base:(B.formal b oprun 0) ~name:"fpush" ~actuals:[ d0 ] ())
  in
  (* Two drain methods rather than one wider one: each stays below Heuristic
     B's volume threshold P in the first pass, so B refines them and the
     second pass still explodes (the paper's IntroB non-termination on
     jython), while their combined refined cost is twice as deadly. *)
  add_oprun "oprun";
  add_oprun "oprun2";
  let interp = B.add_class b ~super:w.object_cls (World.fresh w "Interp") in
  let cur = B.add_field b ~owner:interp "cur" in
  let reg = B.add_method b ~owner:interp ~name:"reg" ~params:[ "o" ] () in
  B.store b reg ~base:(B.this b reg) ~field:cur ~source:(B.formal b reg 0);
  let step = B.add_method b ~owner:interp ~name:"istep" ~params:[ "f" ] () in
  let so = B.add_var b step "o" in
  B.load b step ~target:so ~base:(B.this b step) ~field:cur;
  ignore (B.vcall b step ~base:so ~name:"exec" ~actuals:[ B.formal b step 0 ] ());
  (* Opcodes are allocated inside per-family factory classes: object-
     sensitive contexts are per opcode object, but type-sensitive contexts
     collapse to one per family — [family] is the coarsening ratio between
     2objH and 2typeH cost on this motif. *)
  let creates = ref [] in
  let current_family = ref None in
  for k = 0 to ops - 1 do
    let op = B.add_class b ~super:op_base ~interfaces:[ opcode ] (World.fresh w "Op") in
    let val_cls = B.add_class b ~super:w.object_cls (World.fresh w "Val") in
    let exec = B.add_method b ~owner:op ~name:"exec" ~params:[ "f" ] () in
    let f = B.formal b exec 0 in
    let r = B.add_var b exec "rv" in
    for _v = 1 to vals do
      ignore (B.alloc b exec ~target:r ~cls:val_cls);
      ignore (B.vcall b exec ~base:f ~name:"fpush" ~actuals:[ r ] ())
    done;
    ignore (B.vcall b exec ~base:(B.this b exec) ~name:"oprun" ~actuals:[ f ] ());
    ignore (B.vcall b exec ~base:(B.this b exec) ~name:"oprun2" ~actuals:[ f ] ());
    if k mod family = 0 then
      current_family := Some (B.add_class b ~super:w.object_cls (World.fresh w "OpFam"));
    let fam = Option.get !current_family in
    let create =
      B.add_method b ~owner:fam ~name:(Printf.sprintf "mk%d" (k mod family)) ~static:true
        ~params:[] ()
    in
    let co = B.add_var b create "o" in
    ignore (B.alloc b create ~target:co ~cls:op);
    B.return_ b create co;
    creates := create :: !creates
  done;
  let ip = World.main_var w "interp" in
  ignore (B.alloc b w.main ~target:ip ~cls:interp);
  List.iter
    (fun create ->
      let o = World.main_var w "op" in
      ignore (B.scall b w.main ~callee:create ~actuals:[] ~recv:o ());
      ignore (B.vcall b w.main ~base:ip ~name:"reg" ~actuals:[ o ] ()))
    !creates;
  let fr = World.main_var w "frame" in
  let sd = World.main_var w "seedv" in
  let seed_cls = B.add_class b ~super:w.object_cls (World.fresh w "SeedVal") in
  ignore (B.alloc b w.main ~target:fr ~cls:frame);
  ignore (B.alloc b w.main ~target:sd ~cls:seed_cls);
  ignore (B.vcall b w.main ~base:fr ~name:"fpush" ~actuals:[ sd ] ());
  for _s = 1 to steps do
    ignore (B.vcall b w.main ~base:ip ~name:"istep" ~actuals:[ fr ] ())
  done
