(** Program motifs: the structural patterns behind the paper's observations.

    Each motif generates classes plus driver code in [main], engineered to
    exercise one regime of the precision/scalability space the paper studies:

    - {!chains} — well-behaved code: monomorphic call chains over distinct
      classes. Cheap and precise for every analysis; pads realistic baseline
      size.
    - {!factory_boxes} — the classic context-sensitivity {e win}: a factory
      allocates containers at one site, clients store distinct payloads
      through a shared setter. Context-insensitively everything conflates
      (failing casts, polymorphic dispatch, spuriously reachable methods);
      object- and call-site-sensitive analyses fully disambiguate.
    - {!listeners} — irreducibly polymorphic dispatch (a listener hub):
      polymorphic regardless of context; background noise for the
      devirtualization metric.
    - {!mega_hub} — the paper's cost pathology for object/call-site
      sensitivity: one registry object whose field holds a huge object
      population, drained by a {e shared} user class from many distinct
      receiver objects/call sites. Extra context multiplies the huge sets
      without any precision payoff ("c copies of n facts"). Type-sensitivity
      collapses it (all users allocated in one class).
    - {!dispatch_storm} — the call-site-sensitivity killer: a static utility
      chain with a large payload set called from many wrapper sites;
      object-sensitive static merges keep it cheap.
    - {!interp_loop} — the jython-like interpreter: many opcode classes (each
      allocating its receiver in its own class, so even type contexts
      multiply) exchanging values through a shared frame — a quadratic
      feedback that defeats object-, type-, and call-site-sensitivity. *)

val chains : World.t -> n:int -> depth:int -> unit

val ballast : World.t -> n:int -> unit
(** [n] tiny self-contained units (a class, a data class, one field store):
    a benign small-object population that dilutes the pathological heaps in
    the object-count denominators (Figure 4) and pads realistic program
    size at negligible analysis cost. *)

val factory_boxes : ?junk:int -> World.t -> n:int -> unit
(** [n] client/payload pairs. Precision deltas per client (context-sensitive
    vs not): 1 may-fail cast, 2 polymorphic sites, ~3 spuriously reachable
    methods (via a conflated [rare] call from the first client only).

    With [junk > 0], each client additionally threads a [junk]-sized dead
    set through a two-argument setter. The call's argument in-flow then
    exceeds Heuristic A's L threshold, so A refuses to refine the setter and
    loses these clients' precision — while every Heuristic B metric stays
    below threshold and B keeps it. This is what separates the two
    heuristics' precision in Figures 5-7. *)

val taint_pipes : ?sanitized:int -> World.t -> n:int -> unit
(** The taint client's context-sensitivity win, using the vocabulary of
    [Ipa_clients.Taint.default_spec]. [n] clients share one handler-box
    allocation site (via a static factory); each registers its own handler
    class, retrieves "its" handler back, and delivers a payload to it — the
    handler's [deliver] feeds the payload to a per-client [consume/1] sink
    site. Exactly one client's payload is a secret ([mkSecret/0] returning a
    [Secret*] object). Context-insensitively the retrieved handler conflates
    across all clients, so the secret reaches all [n] (+[sanitized]) sink
    sites; with heap context on the factory's allocation site (e.g. 2objH)
    only the hot client's sink is tainted. [sanitized] extra clients route
    their secret through [scrub/1] and must stay clean even insensitively. *)

val listeners : World.t -> n:int -> unit

val exceptional : World.t -> n:int -> unit
(** [n] guard/thrower pairs sharing one guard class. Each unit contributes,
    context-insensitively, one may-fail cast on the caught exception (context
    separates the conflated catch variable) and one genuinely uncaught
    exception escaping to the entry point. *)

val mega_hub : ?typed_users:int -> World.t -> items:int -> users:int -> chain:int -> unit
(** [items] objects stored in one hub; [users] distinct receiver objects of a
    single user class, each draining the hub through a [chain]-deep series of
    virtual self-calls. Cost for a deep-context analysis scales with
    [users × chain × items]; context-insensitively with [chain × items]. *)

val dispatch_storm :
  ?recursive:bool -> World.t -> wrappers:int -> payload:int -> depth:int -> unit
(** [wrappers] static wrapper methods each calling a [depth]-deep static
    utility chain with a [payload]-sized points-to set. Call-site contexts
    multiply the payload per wrapper; object-sensitivity is immune.

    With [recursive] (default false), the innermost utility re-enters the
    chain head — the recursive-normalization shape of real utility code —
    and each wrapper re-normalizes its result (normalization is idempotent).
    The chain's formals and returns, and each wrapper's return tail, then
    close into copy-edge cycles once contexts saturate, exercising the
    solver's online cycle elimination. *)

val interp_loop :
  ?family:int -> ?feedback:bool -> World.t -> ops:int -> vals:int -> steps:int -> unit
(** [ops] opcode classes, each pushing [vals] fresh values through a shared
    frame; [steps] dispatch calls in [main]. Feedback through the frame's
    field makes context-sensitive cost roughly quadratic in [ops].

    With [feedback] (default false), the shared drain also pushes its popped
    value back (pop-transform-push, as a real interpreter does): the frame's
    stack field and every context's drain variables become one copy-edge
    cycle — no new points-to facts, but the whole feedback loop collapses
    under the solver's cycle elimination. *)
