(** Deterministic program deltas for the incremental-analysis harness.

    An edit names a method of a {e base} program plus a salt; applying it
    rebuilds the program with the delta spliced in, never renumbering an
    existing entity. [Add_alloc] and [Add_call] are monotone extensions
    ({!Ipa_core.Summary.extends} holds), so the incremental solver can
    warm-start across them; [Rewrite_body] replaces an instruction in
    place, which the monotonicity check must refuse — it exists to exercise
    the cold-fallback path. Picking is seeded and independent of the edits'
    application order: an edit list chosen against the base program stays
    valid through sequential application. *)

type kind =
  | Add_alloc  (** append a fresh allocation, flowing into the return *)
  | Add_call  (** append a static call wired to existing locals *)
  | Rewrite_body  (** overwrite the last instruction (non-monotone) *)

type t = { kind : kind; meth : Ipa_ir.Program.meth_id; salt : int }

val kind_name : kind -> string
(** ["add-alloc"], ["add-call"], ["rewrite-body"]. *)

val kind_of_name : string -> kind option

val all_kinds : kind list

val monotone_kinds : kind list
(** The kinds the warm path accepts: {!Add_alloc} and {!Add_call}. *)

val pick : ?kinds:kind list -> seed:int -> n:int -> Ipa_ir.Program.t -> t list
(** [pick ~seed ~n p] draws [n] edits against [p], kinds uniform over
    [kinds] (default {!all_kinds}), methods uniform over each kind's
    candidates. Deterministic in [seed]. May return fewer than [n] when a
    drawn kind has no candidates. Raises [Invalid_argument] on an empty
    [kinds]. *)

val apply : Ipa_ir.Program.t -> t -> Ipa_ir.Program.t
(** Rebuild with the edit applied. The result drops source locations (the
    new entities have none). *)

val apply_all : Ipa_ir.Program.t -> t list -> Ipa_ir.Program.t
(** Left fold of {!apply}. *)

val describe : Ipa_ir.Program.t -> t -> string
(** e.g. ["add-alloc Main::main/0"]. *)
