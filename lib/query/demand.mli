(** Demand evaluation for the query engine: answer a query by solving only
    its backward constraint slice ({!Ipa_core.Demand_solver}) instead of
    requiring a fully solved snapshot.

    A value of this type owns the demand state for one (program, solve
    configuration) pair: the slice memo table (slice key -> warmed engine),
    the optional {!Ipa_harness.Cache} where solved slices are published as
    ordinary snapshots under slice-derived keys, and the counters the server
    surfaces through [metrics]. The configured budget is forced to [0]
    (unlimited) — the point of demand solving is that a slice is small
    enough to solve exactly even when the full program blows the budget.

    {b Eligibility.} [pts], [pointed-by], [alias], [callees], [callers],
    [reach] and [fieldpts] are demand-eligible: their answers depend only on
    slice-exact tables (root points-to sets, or the call graph, which every
    slice reconstructs exactly). [taint] and [stats] read whole-program
    tables and are not; {!eval} returns [None] and the caller falls back to
    the base engine. Demand answers for eligible queries are byte-identical
    to a full unbudgeted solve's (property-tested across all four flavors).

    Thread safety: one value may be shared across domains. The memo is
    mutex-guarded; racing misses may both solve (wasted, not wrong — the
    solver is deterministic) and the first publication wins, mirroring the
    cache's single-writer discipline. With [~warm:true] engines are fully
    index-warmed before publication, so shared reads are race-free. *)

type t

val create :
  ?cache:Ipa_harness.Cache.t ->
  ?warm:bool ->
  program:Ipa_ir.Program.t ->
  label:string ->
  Ipa_core.Solver.config ->
  t
(** [label] tags published slice snapshots (["demand:<label>"]). [warm]
    (default [false]) pre-builds every engine index before memo publication
    — required when the value is shared across pool domains. *)

val eligible : Query.t -> bool
(** Can this query form be answered from a slice? (Form-based; independent
    of name resolution — unresolvable names produce the same error replies
    as the base engine.) *)

type served = {
  result : (Engine.answer, string) result;
  slice_nodes : int;  (** size of the slice that served this answer *)
  hit : bool;  (** memo or cache hit — no fresh solve was needed *)
}

val eval : t -> Query.t -> served option
(** [None] when the form is not demand-eligible. Otherwise: derive the root
    set, look up the slice memo, then the cache, then slice + solve +
    publish; answer from the (warmed) slice engine. *)

type stats = {
  demand_queries : int;  (** eligible queries served through demand *)
  slice_hits : int;  (** served from the memo or a cached slice snapshot *)
  slice_nodes : int;  (** cumulative slice size over fresh slice solves *)
  slice_derivations : int;  (** cumulative derivations of fresh slice solves *)
}

val stats : t -> stats
(** Cumulative over the value's lifetime and all domains using it. *)
