module Program = Ipa_ir.Program
module Solver = Ipa_core.Solver
module Snapshot = Ipa_core.Snapshot
module Demand_solver = Ipa_core.Demand_solver
module Cache = Ipa_harness.Cache

type entry = { engine : Engine.t; nodes : int }

type t = {
  program : Program.t;
  label : string;
  config : Solver.config;
  config_key : string;
  program_digest : string;
  cache : Cache.t option;
  warm : bool;
  memo : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  (* name tables for root derivation only; answer-side resolution (and its
     error messages) stays the base engine's, so replies match byte-for-byte *)
  var_ids : (string, int) Hashtbl.t;
  field_ids : (string, int list) Hashtbl.t;
  c_queries : int Atomic.t;
  c_hits : int Atomic.t;
  c_nodes : int Atomic.t;
  c_derivations : int Atomic.t;
}

let create ?cache ?(warm = false) ~program ~label config =
  let config = { config with Solver.budget = 0 } in
  let program_digest = Snapshot.digest_program program in
  let var_ids = Hashtbl.create (Program.n_vars program) in
  for v = 0 to Program.n_vars program - 1 do
    Hashtbl.replace var_ids (Program.var_full_name program v) v
  done;
  let field_ids = Hashtbl.create (Program.n_fields program) in
  let add_field key f =
    Hashtbl.replace field_ids key
      (f :: (try Hashtbl.find field_ids key with Not_found -> []))
  in
  for f = 0 to Program.n_fields program - 1 do
    add_field (Program.field_full_name program f) f;
    add_field (Program.field_info program f).field_name f
  done;
  {
    program;
    label;
    config;
    config_key = Snapshot.config_key ~program_digest config;
    program_digest;
    cache;
    warm;
    memo = Hashtbl.create 16;
    lock = Mutex.create ();
    var_ids;
    field_ids;
    c_queries = Atomic.make 0;
    c_hits = Atomic.make 0;
    c_nodes = Atomic.make 0;
    c_derivations = Atomic.make 0;
  }

let eligible = function
  | Query.Pts _ | Query.Pointed_by _ | Query.Alias _ | Query.Callees _
  | Query.Callers _ | Query.Reach _ | Query.Fieldpts _ ->
    true
  | Query.Taint _ | Query.Stats -> false

(* Root derivation is best-effort: an unresolvable name yields fewer roots,
   and the slice engine then reports exactly the base engine's resolution
   error. A *resolvable* name always contributes its root, which is what
   the exactness contract needs. *)
let roots_of t (q : Query.t) : Demand_solver.roots option =
  let var v =
    match Hashtbl.find_opt t.var_ids v with Some id -> [ id ] | None -> []
  in
  match q with
  | Query.Pts v -> Some { Demand_solver.root_vars = var v; root_fields = [] }
  | Query.Alias (a, b) ->
    Some { Demand_solver.root_vars = var a @ var b; root_fields = [] }
  | Query.Pointed_by _ -> Some (Demand_solver.all_var_roots t.program)
  | Query.Callees _ | Query.Callers _ | Query.Reach _ ->
    (* the call graph is exact in every slice; no data roots needed *)
    Some Demand_solver.no_roots
  | Query.Fieldpts (_, f) ->
    let root_fields =
      match Hashtbl.find_opt t.field_ids f with Some [ f ] -> [ f ] | _ -> []
    in
    Some { Demand_solver.root_vars = []; root_fields }
  | Query.Taint _ | Query.Stats -> None

type served = {
  result : (Engine.answer, string) result;
  slice_nodes : int;
  hit : bool;
}

let find_memo t key =
  Mutex.lock t.lock;
  let found = Hashtbl.find_opt t.memo key in
  Mutex.unlock t.lock;
  found

let publish_memo t key entry =
  Mutex.lock t.lock;
  let published =
    match Hashtbl.find_opt t.memo key with
    | Some prior -> prior (* lost the race; keep the first publication *)
    | None ->
      Hashtbl.add t.memo key entry;
      entry
  in
  Mutex.unlock t.lock;
  published

let cached_solution t key =
  match t.cache with
  | None -> None
  | Some c -> (
    match Cache.find_bytes c ~key with
    | None -> None
    | Some bytes -> (
      match Snapshot.decode ~program:t.program ~expect_key:key bytes with
      | Ok snap -> Some snap.Snapshot.solution
      | Error _ -> None))

let eval t q =
  match roots_of t q with
  | None -> None
  | Some roots ->
    Atomic.incr t.c_queries;
    let key = Demand_solver.key ~config_key:t.config_key roots in
    let entry, hit =
      match find_memo t key with
      | Some e -> (e, true)
      | None ->
        (* slice + (decode | solve) outside the lock: concurrent misses may
           duplicate work, never diverge — the solver is deterministic *)
        let sl = Demand_solver.slice t.program roots in
        let sol, hit =
          match cached_solution t key with
          | Some sol -> (sol, true)
          | None ->
            let t0 = Unix.gettimeofday () in
            let sol = Demand_solver.run sl t.config in
            ignore (Atomic.fetch_and_add t.c_nodes sl.Demand_solver.slice_nodes);
            ignore
              (Atomic.fetch_and_add t.c_derivations
                 sol.Ipa_core.Solution.derivations);
            (match t.cache with
            | None -> ()
            | Some c ->
              let snap =
                {
                  Snapshot.key;
                  program_digest = t.program_digest;
                  label = "demand:" ^ t.label;
                  seconds = Unix.gettimeofday () -. t0;
                  solution = sol;
                  metrics = None;
                }
              in
              Cache.put_bytes c ~key (Snapshot.encode snap));
            (sol, false)
        in
        let engine = Engine.create sol in
        if t.warm then Engine.warm engine;
        (publish_memo t key { engine; nodes = sl.Demand_solver.slice_nodes }, hit)
    in
    if hit then Atomic.incr t.c_hits;
    Some { result = Engine.eval entry.engine q; slice_nodes = entry.nodes; hit }

type stats = {
  demand_queries : int;
  slice_hits : int;
  slice_nodes : int;
  slice_derivations : int;
}

let stats t =
  {
    demand_queries = Atomic.get t.c_queries;
    slice_hits = Atomic.get t.c_hits;
    slice_nodes = Atomic.get t.c_nodes;
    slice_derivations = Atomic.get t.c_derivations;
  }
