(** Evaluation of {!Query} forms over one loaded {!Ipa_core.Solution}.

    An engine wraps a solution with lazily built name-lookup tables
    (entity full name → id); relation lookups go through the solution's
    cached collapsed projections and reverse indexes
    ({!Ipa_core.Solution.inverted_var_pts}, [callee_meths], ...), so the
    first query of each kind pays the index build and later ones are
    dictionary lookups. After {!warm}, evaluation performs no internal
    mutation and an engine may be shared by concurrently evaluating
    domains (how the server fans a batch out). *)

type t

val create : Ipa_core.Solution.t -> t

val solution : t -> Ipa_core.Solution.t

val warm : t -> unit
(** Force the name tables and every lazy solution index. Required before
    sharing the engine across domains. *)

(** A successful answer. All name lists are sorted (and, where they came
    from sets, duplicate-free), so answers are canonical: batch and
    concurrent evaluation render identically. *)
type answer =
  | Names of { kind : string; items : string list }
      (** [pts]/[fieldpts] ([kind = "objects"]), [pointed-by] ("vars"),
          [callees] ("methods"), [callers] ("sites") *)
  | Truth of { holds : bool; witness : string list }
      (** [alias] (witness: common objects) and [reach] (witness: a
          shortest call path, source to target, when reachable) *)
  | Taint_report of { seeds : int; findings : (string * int * string) list }
      (** (invocation site, argument index, resolved sink method) *)
  | Stats_report of (string * int) list  (** ordered key/value pairs *)

val eval : t -> Query.t -> (answer, string) result
(** Errors name the unresolved entity (["unknown variable \"x\""], ...);
    they never raise. *)

(** {1 Rendering} — shared by the batch CLI, the server, and the tests. *)

val render_text : ?latency_us:int -> Query.t -> (answer, string) result -> string
(** One human-readable line, prefixed with the canonical query.
    [latency_us] appends [" [Nus]"]. *)

val render_json : ?latency_us:int -> Query.t -> (answer, string) result -> string
(** One JSON object per line:
    [{"q": ..., "ok": true, "kind": ..., ...}] on success,
    [{"q": ..., "ok": false, "error": ...}] on failure.
    [latency_us] adds an ["us"] field. *)

val render_error : json:bool -> q:string -> string -> string
(** An error record for a line that did not parse ([q] is the raw line). *)

val json_string : string -> string
(** JSON-escaped, double-quoted string literal (exposed for the server's
    own records). *)
