module Solution = Ipa_core.Solution
module Program = Ipa_ir.Program
module Int_set = Ipa_support.Int_set

type names = {
  vars : (string, int) Hashtbl.t;
  heaps : (string, int) Hashtbl.t;
  meths : (string, int) Hashtbl.t;
  invos : (string, int) Hashtbl.t;
  fields : (string, int list) Hashtbl.t;  (** full and bare names; bare may be ambiguous *)
}

type t = { sol : Solution.t; mutable names : names option }

let create sol = { sol; names = None }
let solution t = t.sol

let names t =
  match t.names with
  | Some n -> n
  | None ->
    let p = t.sol.Solution.program in
    let tbl size = Hashtbl.create size in
    let n =
      {
        vars = tbl (Program.n_vars p);
        heaps = tbl (Program.n_heaps p);
        meths = tbl (Program.n_meths p);
        invos = tbl (Program.n_invos p);
        fields = tbl (Program.n_fields p);
      }
    in
    for v = 0 to Program.n_vars p - 1 do
      Hashtbl.replace n.vars (Program.var_full_name p v) v
    done;
    for h = 0 to Program.n_heaps p - 1 do
      Hashtbl.replace n.heaps (Program.heap_full_name p h) h
    done;
    for m = 0 to Program.n_meths p - 1 do
      Hashtbl.replace n.meths (Program.meth_full_name p m) m
    done;
    for i = 0 to Program.n_invos p - 1 do
      Hashtbl.replace n.invos (Program.invo_info p i).invo_name i
    done;
    let add_field key f =
      Hashtbl.replace n.fields key (f :: (try Hashtbl.find n.fields key with Not_found -> []))
    in
    for f = 0 to Program.n_fields p - 1 do
      add_field (Program.field_full_name p f) f;
      add_field (Program.field_info p f).field_name f
    done;
    t.names <- Some n;
    n

let warm t =
  ignore (names t);
  Solution.warm_indexes t.sol

type answer =
  | Names of { kind : string; items : string list }
  | Truth of { holds : bool; witness : string list }
  | Taint_report of { seeds : int; findings : (string * int * string) list }
  | Stats_report of (string * int) list

(* ---------- name resolution ---------- *)

let ( let* ) = Result.bind

let resolve what tbl name =
  match Hashtbl.find_opt tbl name with
  | Some id -> Ok id
  | None -> Error (Printf.sprintf "unknown %s %S" what name)

let resolve_field t name =
  match Hashtbl.find_opt (names t).fields name with
  | Some [ f ] -> Ok f
  | Some (_ :: _ :: _ as fs) ->
    Error
      (Printf.sprintf "ambiguous field %S (candidates: %s)" name
         (String.concat ", "
            (List.sort compare
               (List.map (Program.field_full_name t.sol.Solution.program) fs))))
  | Some [] | None -> Error (Printf.sprintf "unknown field %S" name)

(* ---------- evaluation ---------- *)

let sorted_names of_id set = List.sort compare (List.map of_id (Int_set.to_sorted_list set))

let eval t (q : Query.t) : (answer, string) result =
  let s = t.sol in
  let p = s.Solution.program in
  let nm = names t in
  let var = resolve "variable" nm.vars in
  let heap = resolve "allocation site" nm.heaps in
  let meth = resolve "method" nm.meths in
  let invo = resolve "invocation site" nm.invos in
  match q with
  | Query.Pts v ->
    let* v = var v in
    Ok (Names { kind = "objects"; items = sorted_names (Program.heap_full_name p) (Solution.collapsed_var_pts s).(v) })
  | Query.Pointed_by h ->
    let* h = heap h in
    Ok (Names { kind = "vars"; items = sorted_names (Program.var_full_name p) (Solution.inverted_var_pts s).(h) })
  | Query.Alias (a, b) ->
    let* a = var a in
    let* b = var b in
    let vpt = Solution.collapsed_var_pts s in
    let common = Int_set.fold (fun h acc -> if Int_set.mem vpt.(b) h then h :: acc else acc) vpt.(a) [] in
    let witness = List.sort compare (List.map (Program.heap_full_name p) common) in
    Ok (Truth { holds = witness <> []; witness })
  | Query.Callees site ->
    let* site = invo site in
    let items =
      match Hashtbl.find_opt (Solution.call_targets s) site with
      | None -> []
      | Some targets -> sorted_names (Program.meth_full_name p) targets
    in
    Ok (Names { kind = "methods"; items })
  | Query.Callers m ->
    let* m = meth m in
    let items = sorted_names (fun i -> (Program.invo_info p i).invo_name) (Solution.caller_sites s).(m) in
    Ok (Names { kind = "sites"; items })
  | Query.Reach (src, tgt) ->
    let* src = meth src in
    let* tgt = meth tgt in
    let succs = Solution.callee_meths s in
    (* BFS with parent links for a shortest call path. *)
    let parent = Array.make (Program.n_meths p) (-1) in
    let seen = Array.make (Program.n_meths p) false in
    seen.(src) <- true;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref (src = tgt) in
    while (not !found) && not (Queue.is_empty queue) do
      let m = Queue.pop queue in
      Int_set.iter
        (fun c ->
          if not seen.(c) then begin
            seen.(c) <- true;
            parent.(c) <- m;
            if c = tgt then found := true else Queue.add c queue
          end)
        succs.(m)
    done;
    if not !found then Ok (Truth { holds = false; witness = [] })
    else begin
      let rec path m acc = if m = src then m :: acc else path parent.(m) (m :: acc) in
      Ok (Truth { holds = true; witness = List.map (Program.meth_full_name p) (path tgt []) })
    end
  | Query.Fieldpts (h, f) ->
    let* h = heap h in
    let* f = resolve_field t f in
    if (Program.field_info p f).is_static_field then
      Error (Printf.sprintf "field %S is static; its slot is not per-object" (Program.field_full_name p f))
    else begin
      let items =
        match Hashtbl.find_opt (Solution.collapsed_fld_pts s) (Solution.fld_pts_key s ~heap:h ~field:f) with
        | None -> []
        | Some set -> sorted_names (Program.heap_full_name p) set
      in
      Ok (Names { kind = "objects"; items })
    end
  | Query.Taint spec_args ->
    let spec =
      match spec_args with
      | None -> Ipa_clients.Taint.default_spec
      | Some (source, sink) ->
        { Ipa_clients.Taint.sources = [ source ]; source_classes = [ source ]; sinks = [ sink ]; sanitizers = [] }
    in
    let res = Ipa_clients.Taint.analyze ~spec s in
    Ok
      (Taint_report
         {
           seeds = res.n_seeds;
           findings =
             List.map
               (fun (f : Ipa_clients.Taint.finding) ->
                 ((Program.invo_info p f.invo).invo_name, f.arg, Program.meth_full_name p f.sink))
               res.findings;
         })
  | Query.Stats ->
    let st = Solution.stats s in
    Ok
      (Stats_report
         [
           ("vpt_tuples", st.vpt_tuples);
           ("fpt_tuples", st.fpt_tuples);
           ("exc_tuples", st.exc_tuples);
           ("cg_edges", st.cg_edges);
           ("reach_pairs", st.reach_pairs);
           ("n_contexts", st.n_contexts);
           ("n_objects", st.n_objects);
           ("derivations", s.Solution.derivations);
           ("complete", if s.Solution.outcome = Solution.Complete then 1 else 0);
         ])

(* ---------- rendering ---------- *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_list items = "[" ^ String.concat "," (List.map json_string items) ^ "]"

let truth_kind = function Query.Alias _ -> "alias" | _ -> "reach"

let render_json ?latency_us q result =
  let qs = json_string (Query.to_string q) in
  let base =
    match result with
  | Error e -> Printf.sprintf {|{"q":%s,"ok":false,"error":%s}|} qs (json_string e)
  | Ok (Names { kind; items }) ->
    Printf.sprintf {|{"q":%s,"ok":true,"kind":%s,"n":%d,"items":%s}|} qs (json_string kind)
      (List.length items) (json_list items)
  | Ok (Truth { holds; witness }) ->
    Printf.sprintf {|{"q":%s,"ok":true,"kind":%s,"holds":%b,"witness":%s}|} qs
      (json_string (truth_kind q)) holds (json_list witness)
  | Ok (Taint_report { seeds; findings }) ->
    Printf.sprintf {|{"q":%s,"ok":true,"kind":"taint","seeds":%d,"findings":[%s]}|} qs seeds
      (String.concat ","
         (List.map
            (fun (site, arg, sink) ->
              Printf.sprintf {|{"site":%s,"arg":%d,"sink":%s}|} (json_string site) arg
                (json_string sink))
            findings))
    | Ok (Stats_report kvs) ->
      Printf.sprintf {|{"q":%s,"ok":true,"kind":"stats",%s}|} qs
        (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s:%d" (json_string k) v) kvs))
  in
  match latency_us with
  | None -> base
  | Some us ->
    (* every record above closes with '}'; splice the latency in before it *)
    String.sub base 0 (String.length base - 1) ^ Printf.sprintf {|,"us":%d}|} us

let render_text ?latency_us q result =
  let qs = Query.to_string q in
  let base =
    match result with
  | Error e -> Printf.sprintf "%s: error: %s" qs e
  | Ok (Names { kind; items }) ->
    Printf.sprintf "%s: %d %s%s" qs (List.length items) kind
      (if items = [] then "" else ": " ^ String.concat ", " items)
  | Ok (Truth { holds; witness }) ->
    let label = match q with Query.Alias _ -> "witness" | _ -> "path" in
    Printf.sprintf "%s: %b%s" qs holds
      (if witness = [] then ""
       else Printf.sprintf " (%s: %s)" label
              (String.concat (match q with Query.Reach _ -> " -> " | _ -> ", ") witness))
  | Ok (Taint_report { seeds; findings }) ->
    Printf.sprintf "%s: %d finding(s), %d seed(s)%s" qs (List.length findings) seeds
      (if findings = [] then ""
       else
         ": "
         ^ String.concat "; "
             (List.map
                (fun (site, arg, sink) -> Printf.sprintf "%s arg %d -> %s" site arg sink)
                findings))
    | Ok (Stats_report kvs) ->
      Printf.sprintf "%s: %s" qs
        (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) kvs))
  in
  match latency_us with None -> base | Some us -> Printf.sprintf "%s [%dus]" base us

let render_error ~json ~q msg =
  if json then Printf.sprintf {|{"q":%s,"ok":false,"error":%s}|} (json_string q) (json_string msg)
  else Printf.sprintf "%s: error: %s" q msg
