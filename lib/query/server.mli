(** The long-running query service: JSON-lines (or plain text) over
    channels or a Unix-domain socket, with batched concurrent evaluation,
    snapshot hot-loading, per-session limits, and live metrics.

    A session reads lines and answers one record per line, in input
    order. Besides the {!Query} forms it understands four control
    commands (sharing the quoting syntax of queries):

    {v
    load path <file>     swap in the snapshot stored at <file>
    load key <key>       swap in the snapshot stored in the cache under <key>
    metrics              answer one record of server-wide counters
    demand on|off|auto   set this session's demand-solving mode
    demand [status]      report the mode and the demand counters
    quit                 end the session
    stop                 end the session and, under a socket server,
                         stop accepting connections
    v}

    Blank lines and lines starting with [#] are ignored, so query scripts
    can be commented. A malformed line (bad quoting, unknown form, wrong
    arity, unresolved name) answers with an error record and the session
    continues — structured errors, never a disconnect.

    With a {!Ipa_support.Domain_pool} of [jobs > 1], consecutive query
    lines are collected into a batch, fanned out across the pool, and
    printed in input order — output is byte-identical to a sequential
    run ({!Ipa_support.Domain_pool.map} preserves order and the engine is
    warmed before sharing). A batch is cut when the input would block, at
    [16 * jobs] pending queries, or at a control command.

    {!serve_socket} accepts concurrent connections, dispatching each to a
    pool worker ({!Ipa_support.Domain_pool.submit}); sessions on workers
    still batch-evaluate (a worker-issued map runs inline). Each session
    holds its own {e view} of the loaded snapshot, so one client's [load]
    hot-swap never disturbs another mid-query, and the view {e pins} the
    cache entry it serves from so the LRU memory budget
    ({!Ipa_harness.Cache.create}[ ~mem_budget]) cannot evict a snapshot a
    live session still reads. *)

type t

(** Demand-solving fallback policy (see {!Demand}): [Demand_off] never
    slices; [Demand_auto] serves eligible queries from slices only while
    the session's loaded solution is budget-truncated (the "no usable
    snapshot" fallback); [Demand_on] always serves eligible queries from
    slices. Demand-served answers carry [,"demand":true,"slice":N] (JSON)
    or a [ [demand slice N]] suffix (text); successful answers computed
    from a budget-truncated solution {e without} demand carry
    [,"partial":true] / [ [partial]] — the soundness marker for facts the
    slice machinery did not certify. *)
type demand_mode = Demand_off | Demand_auto | Demand_on

val demand_mode_to_string : demand_mode -> string
val demand_mode_of_string : string -> demand_mode option

(** Per-session limits, enforced with structured error replies. *)
type limits = {
  max_line : int;
      (** longest accepted input line, bytes (socket sessions discard the
          over-limit line as it streams in — memory use stays bounded —
          and answer one error record) *)
  max_queries : int option;
      (** queries + [load]s accepted per session; the line over the limit
          answers an error record and the session closes ([`Limit]).
          [quit], [stop] and [metrics] are always accepted. *)
  idle_timeout : float option;
      (** seconds a socket session may sit idle before it is closed with
          an error record ([`Timeout]); channel sessions never time out *)
}

val default_limits : limits
(** [{ max_line = 65536; max_queries = None; idle_timeout = None }]. *)

val create :
  ?cache:Ipa_harness.Cache.t ->
  ?pool:Ipa_support.Domain_pool.t ->
  ?limits:limits ->
  ?log:out_channel ->
  ?demand:Demand.t ->
  ?demand_mode:demand_mode ->
  ?query_timeout:float ->
  json:bool ->
  timings:bool ->
  program:Ipa_ir.Program.t ->
  label:string ->
  Ipa_core.Solution.t ->
  t
(** [cache] enables [load key] and snapshot pinning; [pool] enables
    batched concurrent evaluation and concurrent socket sessions (omitted
    or [jobs = 1] evaluates inline); [timings] appends per-query latency
    to each answer record. [log] receives one JSONL record per request —
    [{"seq":N,"session":N,"q":...,"ok":...[,"us":N]}] — flushed per line
    under a lock, so concurrent sessions interleave whole records.

    [demand] enables the demand-solving fallback; [demand_mode] (default
    [Demand_off]) seeds each session's mode, adjustable per session with
    the [demand] command. [query_timeout] bounds each query's wall clock
    (seconds): an over-limit evaluation is abandoned and answered with a
    structured [timeout] error record ([,"limit_s":S] in JSON). The guard
    is SIGALRM-based and applies only to sequential sessions — it is
    ignored when a [pool] is configured.

    Raises [Invalid_argument] when [limits.max_line < 1] or
    [query_timeout <= 0]. *)

(** How a session ended. [`Quit]: [quit] or end of input. [`Stop]: [stop],
    {!request_stop}, or a shutdown signal. [`Timeout]: idle timeout.
    [`Limit]: query limit. [`Disconnect]: the client vanished mid-session. *)
type outcome = [ `Quit | `Stop | `Timeout | `Limit | `Disconnect ]

val session : t -> in_channel -> out_channel -> outcome
(** Run one session to completion. Every answer line is flushed before
    the next read, so an interactive client sees answers promptly.
    Counters accumulate across sessions. *)

val serve_socket : t -> path:string -> (unit, string) result
(** Bind a Unix-domain socket at [path] and serve connections until a
    session ends with [stop], {!request_stop} is called, or SIGINT/SIGTERM
    arrives (the handlers only raise the stop flag; sessions notice within
    a fraction of a second, drain, and every exit path removes the socket
    file and restores the previous handlers). A [path] where another
    server is live — the probe connect succeeds — or that is not a socket
    is refused with [Error]; a stale socket file from an unclean shutdown
    is removed and reused. With a [pool] of [jobs > 1] connections are
    served concurrently, one pool worker per session. *)

val request_stop : t -> unit
(** Raise the stop flag: the accept loop and every blocked session wind
    down as under [stop]. Safe from any thread or signal context. *)

(** {1 Counters and metrics} (cumulative across sessions) *)

val served : t -> int
(** Lines answered — query, [load] and [metrics] records, errors included. *)

val errors : t -> int
(** Of {!served}, how many answered with an error record. *)

val loads : t -> int
(** Successful [load] commands. *)

val metrics : t -> (string * int) list
(** Everything the [metrics] command reports, in its emission order:
    [served], [errors], [loads], [sessions], [active_sessions],
    [timeouts], [line_limit_hits], [query_limit_hits], [disconnects],
    [demand_queries], [slice_nodes], [slice_hits] (all 0 without a
    {!Demand.t}), [evictions], [resident_bytes] (both 0 without a cache),
    [p50_us], [p99_us] (upper bucket bounds of a power-of-two latency
    histogram; 0 until a query is timed). The counters before the latency
    estimates are deterministic for a fixed workload regardless of
    [jobs]. *)

val metrics_line : t -> string
(** One-line plain-text rendering of {!metrics}, for end-of-serve CLI
    reporting. *)
