(** The long-running query session: JSON-lines (or plain text) over
    channels, with batched concurrent evaluation and snapshot hot-loading.

    A session reads lines and answers one record per line, in input
    order. Besides the {!Query} forms it understands three control
    commands (sharing the quoting syntax of queries):

    {v
    load path <file>     swap in the snapshot stored at <file>
    load key <key>       swap in the snapshot stored in the cache under <key>
    quit                 end the session
    stop                 end the session and, under a socket server,
                         stop accepting connections
    v}

    Blank lines and lines starting with [#] are ignored, so query scripts
    can be commented. A malformed line (bad quoting, unknown form, wrong
    arity, unresolved name) answers with an error record and the session
    continues.

    With a {!Ipa_support.Domain_pool} of [jobs > 1], consecutive query
    lines are collected into a batch, fanned out across the pool, and
    printed in input order — output is byte-identical to a sequential
    run ({!Ipa_support.Domain_pool.map} preserves order and the engine is
    warmed before sharing). A batch is cut when the input would block, at
    [16 * jobs] pending queries, or at a control command. *)

type t

val create :
  ?cache:Ipa_harness.Cache.t ->
  ?pool:Ipa_support.Domain_pool.t ->
  json:bool ->
  timings:bool ->
  program:Ipa_ir.Program.t ->
  label:string ->
  Ipa_core.Solution.t ->
  t
(** [cache] enables [load key]; [pool] enables batched concurrent
    evaluation (omitted or [jobs = 1] evaluates inline); [timings]
    appends per-query latency to each answer record. *)

val session : t -> in_channel -> out_channel -> [ `Quit | `Stop ]
(** Run one session to [quit] / [stop] / end of input ([`Quit]). Every
    answer line is flushed before the next read, so an interactive client
    sees answers promptly. Counters accumulate across sessions. *)

val serve_socket : t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (removing a stale file first) and
    serve connections sequentially until a session ends with [stop]. The
    socket file is removed on the way out. *)

(** {1 Counters} (cumulative, reported by the CLI on session end) *)

val served : t -> int
(** Lines answered — query and [load] records, including errors. *)

val errors : t -> int
(** Of {!served}, how many answered with an error record. *)

val loads : t -> int
(** Successful [load] commands. *)
