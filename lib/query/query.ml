type t =
  | Pts of string
  | Pointed_by of string
  | Alias of string * string
  | Callees of string
  | Callers of string
  | Reach of string * string
  | Fieldpts of string * string
  | Taint of (string * string) option
  | Stats

let forms =
  [ "pts"; "pointed-by"; "alias"; "callees"; "callers"; "reach"; "fieldpts"; "taint"; "stats" ]

(* ---------- lexical syntax ---------- *)

let is_space c = c = ' ' || c = '\t' || c = '\r'

let tokens line =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let acc = ref [] in
  let flush_tok () =
    acc := Buffer.contents buf :: !acc;
    Buffer.clear buf
  in
  (* [in_tok] distinguishes an empty quoted token ("") from no token. *)
  let rec go i in_tok =
    if i >= n then begin
      if in_tok then flush_tok ();
      Ok (List.rev !acc)
    end
    else
      let c = line.[i] in
      if is_space c then begin
        if in_tok then flush_tok ();
        go (i + 1) false
      end
      else if c = '"' then quoted (i + 1)
      else begin
        Buffer.add_char buf c;
        go (i + 1) true
      end
  and quoted i =
    if i >= n then Error "unterminated quote"
    else
      match line.[i] with
      | '"' -> go (i + 1) true
      | '\\' ->
        if i + 1 >= n then Error "dangling escape at end of line"
        else begin
          (match line.[i + 1] with
          | ('"' | '\\') as c -> Buffer.add_char buf c
          | c ->
            Buffer.add_char buf '\\';
            Buffer.add_char buf c);
          quoted (i + 2)
        end
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  go 0 false

let needs_quoting s =
  s = "" || String.exists (fun c -> is_space c || c = '\n' || c = '"' || c = '\\' || c = '#') s

let quote s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char buf '\\';
        Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

(* ---------- parse / print ---------- *)

let usage = function
  | "pts" -> "pts <var>"
  | "pointed-by" -> "pointed-by <heap>"
  | "alias" -> "alias <var> <var>"
  | "callees" -> "callees <site>"
  | "callers" -> "callers <method>"
  | "reach" -> "reach <method> <method>"
  | "fieldpts" -> "fieldpts <heap> <field>"
  | "taint" -> "taint [<source-pattern> <sink-pattern>]"
  | "stats" -> "stats"
  | _ -> assert false

let arity_error form got =
  Error
    (Printf.sprintf "%s takes %s, got %d: usage: %s" form
       (match form with
       | "stats" -> "no arguments"
       | "pts" | "pointed-by" | "callees" | "callers" -> "one argument"
       | "taint" -> "zero or two arguments"
       | _ -> "two arguments")
       got (usage form))

let parse line =
  match tokens line with
  | Error e -> Error e
  | Ok [] -> Error "empty query"
  | Ok (form :: args) -> (
    let n = List.length args in
    match (form, args) with
    | "pts", [ v ] -> Ok (Pts v)
    | "pointed-by", [ h ] -> Ok (Pointed_by h)
    | "alias", [ a; b ] -> Ok (Alias (a, b))
    | "callees", [ s ] -> Ok (Callees s)
    | "callers", [ m ] -> Ok (Callers m)
    | "reach", [ a; b ] -> Ok (Reach (a, b))
    | "fieldpts", [ h; f ] -> Ok (Fieldpts (h, f))
    | "taint", [] -> Ok (Taint None)
    | "taint", [ src; snk ] -> Ok (Taint (Some (src, snk)))
    | "stats", [] -> Ok Stats
    | ("pts" | "pointed-by" | "alias" | "callees" | "callers" | "reach" | "fieldpts" | "taint" | "stats"), _ ->
      arity_error form n
    | _ ->
      Error
        (Printf.sprintf "unknown query form %S (expected one of: %s)" form
           (String.concat ", " forms)))

let to_string = function
  | Pts v -> "pts " ^ quote v
  | Pointed_by h -> "pointed-by " ^ quote h
  | Alias (a, b) -> Printf.sprintf "alias %s %s" (quote a) (quote b)
  | Callees s -> "callees " ^ quote s
  | Callers m -> "callers " ^ quote m
  | Reach (a, b) -> Printf.sprintf "reach %s %s" (quote a) (quote b)
  | Fieldpts (h, f) -> Printf.sprintf "fieldpts %s %s" (quote h) (quote f)
  | Taint None -> "taint"
  | Taint (Some (src, snk)) -> Printf.sprintf "taint %s %s" (quote src) (quote snk)
  | Stats -> "stats"
