module Cache = Ipa_harness.Cache
module Domain_pool = Ipa_support.Domain_pool
module Snapshot = Ipa_core.Snapshot
module Solution = Ipa_core.Solution
module Timer = Ipa_support.Timer

type demand_mode = Demand_off | Demand_auto | Demand_on

let demand_mode_to_string = function
  | Demand_off -> "off"
  | Demand_auto -> "auto"
  | Demand_on -> "on"

let demand_mode_of_string = function
  | "off" -> Some Demand_off
  | "auto" -> Some Demand_auto
  | "on" -> Some Demand_on
  | _ -> None

(* ---------- per-session limits ---------- *)

type limits = {
  max_line : int;
  max_queries : int option;
  idle_timeout : float option;
}

let default_limits = { max_line = 65536; max_queries = None; idle_timeout = None }

(* ---------- latency histogram ----------

   Power-of-two microsecond buckets: bucket [i] counts evaluations whose
   latency fell in [2^i, 2^(i+1)) us (bucket 0 also holds sub-microsecond
   ones). Increments are atomic, so concurrent sessions record without a
   lock; quantiles are read as the upper bound of the bucket holding the
   requested rank — a <= 2x overestimate, stable enough for p50/p99
   serving dashboards. *)

module Hist = struct
  let n_buckets = 32

  type t = int Atomic.t array

  let create () : t = Array.init n_buckets (fun _ -> Atomic.make 0)

  let bucket_of us =
    let rec go b v = if v <= 1 || b = n_buckets - 1 then b else go (b + 1) (v lsr 1) in
    go 0 (max us 0)

  let record t us = Atomic.incr t.(bucket_of us)
  let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t

  let quantile_us t q =
    let total = count t in
    if total = 0 then 0
    else begin
      let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
      let cum = ref 0 and found = ref (n_buckets - 1) in
      (try
         Array.iteri
           (fun i c ->
             cum := !cum + Atomic.get c;
             if !cum >= rank then begin
               found := i;
               raise Exit
             end)
           t
       with Exit -> ());
      if !found = 0 then 1 else (1 lsl (!found + 1)) - 1
    end
end

(* ---------- the server ---------- *)

type t = {
  program : Ipa_ir.Program.t;
  cache : Cache.t option;
  pool : Domain_pool.t option;
  json : bool;
  timings : bool;
  limits : limits;
  log : out_channel option;
  log_lock : Mutex.t;
  base_engine : Engine.t;
  base_label : string;
  demand : Demand.t option;
  demand_default : demand_mode;
  query_timeout : float option;  (** sequential (pool-less) sessions only *)
  served : int Atomic.t;
  errors : int Atomic.t;
  loads : int Atomic.t;
  sessions : int Atomic.t;
  active : int Atomic.t;
  timeouts : int Atomic.t;
  line_limit_hits : int Atomic.t;
  query_limit_hits : int Atomic.t;
  disconnects : int Atomic.t;
  log_seq : int Atomic.t;
  stopping : bool Atomic.t;
  hist : Hist.t;
}

let warm_if_pooled t engine = match t.pool with Some _ -> Engine.warm engine | None -> ()

let create ?cache ?pool ?(limits = default_limits) ?log ?demand
    ?(demand_mode = Demand_off) ?query_timeout ~json ~timings ~program ~label sol =
  if limits.max_line < 1 then invalid_arg "Server.create: max_line must be >= 1";
  (match query_timeout with
  | Some s when s <= 0.0 -> invalid_arg "Server.create: query timeout must be > 0"
  | _ -> ());
  let t =
    {
      program;
      cache;
      pool;
      json;
      timings;
      limits;
      log;
      log_lock = Mutex.create ();
      base_engine = Engine.create sol;
      base_label = label;
      demand;
      demand_default = demand_mode;
      (* SIGALRM-based guard — meaningless (and unsafe) across pool
         domains; only sequential sessions honor it *)
      query_timeout = (match pool with Some _ -> None | None -> query_timeout);
      served = Atomic.make 0;
      errors = Atomic.make 0;
      loads = Atomic.make 0;
      sessions = Atomic.make 0;
      active = Atomic.make 0;
      timeouts = Atomic.make 0;
      line_limit_hits = Atomic.make 0;
      query_limit_hits = Atomic.make 0;
      disconnects = Atomic.make 0;
      log_seq = Atomic.make 0;
      stopping = Atomic.make false;
      hist = Hist.create ();
    }
  in
  warm_if_pooled t t.base_engine;
  t

let served t = Atomic.get t.served
let errors t = Atomic.get t.errors
let loads t = Atomic.get t.loads
let request_stop t = Atomic.set t.stopping true

(* Deterministic counters first, then the cache gauges (deterministic for
   a fixed workload), then the timing estimates (never deterministic). *)
let metrics t =
  let cache_stats = Option.map Cache.stats t.cache in
  let of_cache f = match cache_stats with Some s -> f s | None -> 0 in
  let demand_stats = Option.map Demand.stats t.demand in
  let of_demand f = match demand_stats with Some s -> f s | None -> 0 in
  [
    ("served", Atomic.get t.served);
    ("errors", Atomic.get t.errors);
    ("loads", Atomic.get t.loads);
    ("sessions", Atomic.get t.sessions);
    ("active_sessions", Atomic.get t.active);
    ("timeouts", Atomic.get t.timeouts);
    ("line_limit_hits", Atomic.get t.line_limit_hits);
    ("query_limit_hits", Atomic.get t.query_limit_hits);
    ("disconnects", Atomic.get t.disconnects);
    ("demand_queries", of_demand (fun (s : Demand.stats) -> s.demand_queries));
    ("slice_nodes", of_demand (fun (s : Demand.stats) -> s.slice_nodes));
    ("slice_hits", of_demand (fun (s : Demand.stats) -> s.slice_hits));
    ("evictions", of_cache (fun (s : Cache.stats) -> s.evictions));
    ("resident_bytes", of_cache (fun (s : Cache.stats) -> s.resident_bytes));
    ("p50_us", Hist.quantile_us t.hist 0.50);
    ("p99_us", Hist.quantile_us t.hist 0.99);
  ]

let render_metrics t =
  let kvs = metrics t in
  if t.json then
    Printf.sprintf {|{"q":"metrics","ok":true,"kind":"metrics",%s}|}
      (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s:%d" (Engine.json_string k) v) kvs))
  else
    Printf.sprintf "metrics: %s"
      (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) kvs))

let metrics_line t =
  let kvs = metrics t in
  Printf.sprintf "metrics: %s"
    (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) kvs))

(* ---------- JSONL request log ---------- *)

let log_record t ~session ~q ~ok ~us =
  match t.log with
  | None -> ()
  | Some oc ->
    let seq = Atomic.fetch_and_add t.log_seq 1 in
    let us_field = match us with Some u -> Printf.sprintf ",\"us\":%d" u | None -> "" in
    let line =
      Printf.sprintf {|{"seq":%d,"session":%d,"q":%s,"ok":%b%s}|} seq session
        (Engine.json_string q) ok us_field
    in
    Mutex.lock t.log_lock;
    output_string oc line;
    output_char oc '\n';
    flush oc;
    Mutex.unlock t.log_lock

(* ---------- per-session state ---------- *)

(* Each connection gets its own view of the loaded solution, so one
   session's [load] hot-swap never disturbs another mid-query. The view
   pins the cache entry it serves from ([load key]) so the LRU budget
   cannot evict a snapshot a live session still reads. *)
type view = {
  id : int;
  mutable engine : Engine.t;
  mutable label : string;
  mutable pinned : string option;
  mutable answered : int;  (** records answered in this session *)
  mutable queries : int;  (** query and [load] lines accepted (the limited kind) *)
  mutable demand : demand_mode;  (** per-session; seeded from the server default *)
}

let release_pin t view =
  match (view.pinned, t.cache) with
  | Some key, Some cache ->
    view.pinned <- None;
    Cache.unpin cache ~key
  | _ -> ()

let install t view ?key (snap : Snapshot.t) =
  let engine = Engine.create snap.solution in
  warm_if_pooled t engine;
  release_pin t view;
  (match (key, t.cache) with
  | Some key, Some cache -> if Cache.pin cache ~key then view.pinned <- Some key
  | _ -> ());
  view.engine <- engine;
  view.label <- snap.label;
  snap.label

(* Load failures carry structured (field, value) pairs — the cache key and
   the on-disk path — alongside the human message, so JSON clients can
   extract them and fall back without parsing free text. *)
let load_path t view file =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error e -> Error (e, [ ("path", file) ])
  | bytes -> (
    match Snapshot.decode ~program:t.program bytes with
    | Ok snap -> Ok (install t view snap)
    | Error e ->
      Error
        (Printf.sprintf "%s: %s" file (Snapshot.error_to_string e), [ ("path", file) ]))

let snap_fields t key =
  ("key", key)
  ::
  (match Option.bind t.cache Cache.dir with
  | Some dir -> [ ("path", Filename.concat dir (key ^ ".snap")) ]
  | None -> [])

let load_key t view key =
  match t.cache with
  | None -> Error ("no cache configured (start the server with --cache-dir)", [])
  | Some cache -> (
    match Cache.find_bytes cache ~key with
    | None -> Error (Printf.sprintf "cache miss for key %s" key, snap_fields t key)
    | Some bytes -> (
      match Snapshot.decode ~program:t.program ~expect_key:key bytes with
      | Ok snap -> Ok (install t view ~key snap)
      | Error e ->
        Error
          ( Printf.sprintf "key %s: %s" key (Snapshot.error_to_string e),
            snap_fields t key )))

(* ---------- input sources ----------

   Socket sessions read through an explicit buffered line reader over the
   raw fd: it blocks in [select] with a real timeout (retrying EINTR and
   re-checking the server's stop flag every tick), enforces the
   line-length limit while the line streams in (an over-limit line is
   discarded, not accumulated), and knows exactly what is buffered — so
   the batch cutter never confuses "nothing buffered" with "buffered but
   not yet scanned". Channel sessions (stdin, query scripts, tests) keep
   the blocking [input_line] path: no timeouts apply there. *)

type fd_reader = {
  fd : Unix.file_descr;
  mutable data : Bytes.t;
  mutable start : int;  (* consumed prefix *)
  mutable len : int;  (* end of valid data *)
  mutable dropped : int;  (* bytes discarded of an over-limit line in flight *)
  mutable at_eof : bool;
}

type input = Chan of in_channel | Fd of fd_reader

let fd_reader fd = { fd; data = Bytes.create 8192; start = 0; len = 0; dropped = 0; at_eof = false }

type read_result =
  | Line of string
  | Too_long of int  (** the over-limit line's length; its content is dropped *)
  | Timed_out
  | Eof
  | Stopped  (** the server is shutting down *)

let select_tick = 0.25

let rec fd_next_line t r =
  let scan () =
    let rec go i = if i >= r.len then None else if Bytes.get r.data i = '\n' then Some i else go (i + 1) in
    go r.start
  in
  match scan () with
  | Some nl ->
    let raw_len = nl - r.start in
    let line = Bytes.sub_string r.data r.start raw_len in
    r.start <- nl + 1;
    if r.start >= r.len then begin
      r.start <- 0;
      r.len <- 0
    end;
    if r.dropped > 0 then begin
      let total = r.dropped + raw_len in
      r.dropped <- 0;
      Too_long total
    end
    else if raw_len > t.limits.max_line then Too_long raw_len
    else Line line
  | None ->
    let buffered = r.len - r.start in
    if buffered > t.limits.max_line then begin
      (* discard the over-limit prefix; keep counting until the newline *)
      r.dropped <- r.dropped + buffered;
      r.start <- 0;
      r.len <- 0;
      fd_next_line t r
    end
    else if r.at_eof then
      if buffered = 0 then
        if r.dropped > 0 then begin
          let total = r.dropped in
          r.dropped <- 0;
          Too_long total
        end
        else Eof
      else begin
        (* final unterminated line *)
        let line = Bytes.sub_string r.data r.start buffered in
        r.start <- 0;
        r.len <- 0;
        if r.dropped > 0 then begin
          let total = r.dropped + buffered in
          r.dropped <- 0;
          Too_long total
        end
        else Line line
      end
    else begin
      (* make room, then block for more input *)
      if r.len = Bytes.length r.data then
        if r.start > 0 then begin
          Bytes.blit r.data r.start r.data 0 buffered;
          r.start <- 0;
          r.len <- buffered
        end
        else begin
          let bigger = Bytes.create (2 * Bytes.length r.data) in
          Bytes.blit r.data 0 bigger 0 r.len;
          r.data <- bigger
        end;
      let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) t.limits.idle_timeout in
      let rec wait () =
        if Atomic.get t.stopping then Stopped
        else begin
          let slice =
            match deadline with
            | None -> select_tick
            | Some d ->
              let remaining = d -. Unix.gettimeofday () in
              if remaining <= 0.0 then -1.0 else Float.min select_tick remaining
          in
          if slice < 0.0 then Timed_out
          else
            match Unix.select [ r.fd ] [] [] slice with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
            | [], _, _ -> wait ()
            | _ -> (
              match Unix.read r.fd r.data r.len (Bytes.length r.data - r.len) with
              | 0 ->
                r.at_eof <- true;
                fd_next_line t r
              | n ->
                r.len <- r.len + n;
                fd_next_line t r
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
              | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                r.at_eof <- true;
                fd_next_line t r)
        end
      in
      wait ()
    end

let next_line t input =
  match input with
  | Fd r -> fd_next_line t r
  | Chan ic -> (
    match input_line ic with
    | exception End_of_file -> Eof
    | line -> if String.length line > t.limits.max_line then Too_long (String.length line) else Line line)

(* Would another line be available without blocking? Used only to decide
   where to cut a batch: a wrong "no" under-batches (costs parallelism,
   never changes output). *)
let input_ready _t input =
  match input with
  | Chan ic -> (
    match Unix.select [ Unix.descr_of_in_channel ic ] [] [] 0.0 with
    | [ _ ], _, _ -> true
    | _ -> false
    | exception Unix.Unix_error _ -> false)
  | Fd r ->
    let has_newline () =
      let rec go i = i < r.len && (Bytes.get r.data i = '\n' || go (i + 1)) in
      go r.start
    in
    let rec ready () =
      has_newline () || r.at_eof
      ||
      match Unix.select [ r.fd ] [] [] 0.0 with
      | [], _, _ -> false
      | _ -> (
        (* select said readable, so this read cannot block *)
        if r.len = Bytes.length r.data then begin
          if r.start > 0 then begin
            let buffered = r.len - r.start in
            Bytes.blit r.data r.start r.data 0 buffered;
            r.start <- 0;
            r.len <- buffered
          end
          else begin
            let bigger = Bytes.create (2 * Bytes.length r.data) in
            Bytes.blit r.data 0 bigger 0 r.len;
            r.data <- bigger
          end
        end;
        match Unix.read r.fd r.data r.len (Bytes.length r.data - r.len) with
        | 0 ->
          r.at_eof <- true;
          true
        | n ->
          r.len <- r.len + n;
          ready ()
        | exception Unix.Unix_error _ ->
          r.at_eof <- true;
          true)
      | exception Unix.Unix_error _ -> false
    in
    ready ()

(* ---------- batched query evaluation ---------- *)

type item = { line : string; parsed : (Query.t, string) result }

let batch_cap t = match t.pool with Some p -> 16 * Domain_pool.jobs p | None -> 1

(* Every rendered JSON record closes with '}'; splice extra fields in
   before it (same trick Engine uses for latency). *)
let splice_json line extra = String.sub line 0 (String.length line - 1) ^ extra ^ "}"

exception Query_timed_out

(* Per-query wall-clock guard (sequential sessions only): SIGALRM raises
   at the next allocation safepoint, unwinding the evaluation. The timer
   is disarmed before the handler is restored, so no stray alarm fires. *)
let with_query_timeout secs f =
  match secs with
  | None -> Ok (f ())
  | Some s -> (
    let prev =
      Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Query_timed_out))
    in
    let disarm () =
      ignore
        (Unix.setitimer Unix.ITIMER_REAL { Unix.it_value = 0.0; it_interval = 0.0 });
      Sys.set_signal Sys.sigalrm prev
    in
    ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_value = s; it_interval = 0.0 });
    match Fun.protect ~finally:disarm f with
    | v -> Ok v
    | exception Query_timed_out -> Error `Timeout)

let demand_for (t : t) (view : view) =
  match t.demand with
  | None -> None
  | Some d -> (
    match view.demand with
    | Demand_off -> None
    | Demand_on -> Some d
    | Demand_auto ->
      (* fall back to slices only when the loaded solution was truncated *)
      if (Engine.solution view.engine).Solution.outcome = Solution.Budget_exceeded
      then Some d
      else None)

let eval_one t view item =
  match item.parsed with
  | Error e -> (Engine.render_error ~json:t.json ~q:item.line e, true, None)
  | Ok q -> (
    let evaluate () =
      match demand_for t view with
      | Some d -> (
        match Demand.eval d q with
        | Some (s : Demand.served) -> (s.result, Some s.slice_nodes)
        | None -> (Engine.eval view.engine q, None))
      | None -> (Engine.eval view.engine q, None)
    in
    let outcome, secs =
      Timer.time (fun () -> with_query_timeout t.query_timeout evaluate)
    in
    let us = int_of_float (secs *. 1e6) in
    let latency_us = if t.timings then Some us else None in
    match outcome with
    | Error `Timeout ->
      Atomic.incr t.timeouts;
      let limit = Option.value ~default:0.0 t.query_timeout in
      let line =
        if t.json then
          splice_json
            (Engine.render_error ~json:true ~q:item.line "timeout")
            (Printf.sprintf {|,"limit_s":%g|} limit)
        else Printf.sprintf "%s: error: timeout after %gs" item.line limit
      in
      (line, true, Some us)
    | Ok (res, demand_nodes) ->
      let render = if t.json then Engine.render_json else Engine.render_text in
      let line = render ?latency_us q res in
      let line =
        match demand_nodes with
        | Some n ->
          (* answered from a solved slice: exact for the queried facts *)
          if t.json then
            splice_json line (Printf.sprintf {|,"demand":true,"slice":%d|} n)
          else Printf.sprintf "%s [demand slice %d]" line n
        | None ->
          (* soundness marker: a successful answer computed from a
             budget-truncated solution is a lower bound, not the fixpoint *)
          if
            Result.is_ok res
            && (Engine.solution view.engine).Solution.outcome
               = Solution.Budget_exceeded
          then
            if t.json then splice_json line {|,"partial":true|}
            else line ^ " [partial]"
          else line
      in
      (line, Result.is_error res, Some us))

exception Client_gone

let emit t view oc line is_err =
  Atomic.incr t.served;
  if is_err then Atomic.incr t.errors;
  view.answered <- view.answered + 1;
  try
    output_string oc line;
    output_char oc '\n'
  with Sys_error _ -> raise Client_gone

let emit_flush t view oc line is_err =
  emit t view oc line is_err;
  try flush oc with Sys_error _ -> raise Client_gone

let flush_pending t view oc pending =
  match List.rev !pending with
  | [] -> ()
  | items ->
    pending := [];
    let rendered =
      match t.pool with
      | Some p when List.length items > 1 -> Domain_pool.map_list p (eval_one t view) items
      | _ -> List.map (eval_one t view) items
    in
    List.iter2
      (fun (item : item) (line, is_err, us) ->
        (match us with Some u -> Hist.record t.hist u | None -> ());
        log_record t ~session:view.id ~q:item.line ~ok:(not is_err) ~us;
        emit t view oc line is_err)
      items rendered;
    try flush oc with Sys_error _ -> raise Client_gone

(* ---------- the session loop ---------- *)

let respond_control t view oc ~q outcome =
  let line =
    match outcome with
    | Ok label ->
      Atomic.incr t.loads;
      if t.json then
        Printf.sprintf {|{"q":%s,"ok":true,"kind":"load","label":%s}|} (Engine.json_string q)
          (Engine.json_string label)
      else Printf.sprintf "%s: ok (%s)" q label
    | Error (e, fields) ->
      let base = Engine.render_error ~json:t.json ~q e in
      (* the human message keeps its shape; JSON replies additionally carry
         the key/path as dedicated fields so clients can fall back *)
      if t.json && fields <> [] then
        splice_json base
          (String.concat ""
             (List.map
                (fun (k, v) ->
                  Printf.sprintf ",%s:%s" (Engine.json_string k) (Engine.json_string v))
                fields))
      else base
  in
  log_record t ~session:view.id ~q ~ok:(Result.is_ok outcome) ~us:None;
  emit_flush t view oc line (Result.is_error outcome)

(* [demand on|off|auto|status]: per-session control of the demand-solving
   fallback. Like [metrics], it is not counted against the query limit. *)
let respond_demand t view oc ~line args =
  let reply ~ok body =
    log_record t ~session:view.id ~q:line ~ok ~us:None;
    emit_flush t view oc body (not ok)
  in
  let status () =
    let mode = demand_mode_to_string view.demand in
    let available = t.demand <> None in
    let st =
      Option.value
        (Option.map Demand.stats t.demand)
        ~default:
          { Demand.demand_queries = 0; slice_hits = 0; slice_nodes = 0; slice_derivations = 0 }
    in
    if t.json then
      Printf.sprintf
        {|{"q":%s,"ok":true,"kind":"demand","mode":%s,"available":%b,"demand_queries":%d,"slice_hits":%d,"slice_nodes":%d}|}
        (Engine.json_string line) (Engine.json_string mode) available
        st.Demand.demand_queries st.Demand.slice_hits st.Demand.slice_nodes
    else
      Printf.sprintf
        "%s: mode %s, available %b, demand_queries %d, slice_hits %d, slice_nodes %d"
        line mode available st.Demand.demand_queries st.Demand.slice_hits
        st.Demand.slice_nodes
  in
  match args with
  | [] | [ "status" ] -> reply ~ok:true (status ())
  | [ arg ] -> (
    match (demand_mode_of_string arg, t.demand) with
    | Some mode, Some _ ->
      view.demand <- mode;
      reply ~ok:true
        (if t.json then
           Printf.sprintf {|{"q":%s,"ok":true,"kind":"demand","mode":%s}|}
             (Engine.json_string line)
             (Engine.json_string (demand_mode_to_string mode))
         else Printf.sprintf "%s: ok (mode %s)" line (demand_mode_to_string mode))
    | Some _, None ->
      reply ~ok:false
        (Engine.render_error ~json:t.json ~q:line
           "demand solving unavailable (start with --demand)")
    | None, _ ->
      reply ~ok:false
        (Engine.render_error ~json:t.json ~q:line "usage: demand on|off|auto|status"))
  | _ ->
    reply ~ok:false
      (Engine.render_error ~json:t.json ~q:line "usage: demand on|off|auto|status")

type outcome = [ `Quit | `Stop | `Timeout | `Limit | `Disconnect ]

let run_session t input oc : outcome =
  let view =
    {
      id = Atomic.fetch_and_add t.sessions 1;
      engine = t.base_engine;
      label = t.base_label;
      pinned = None;
      answered = 0;
      queries = 0;
      demand = t.demand_default;
    }
  in
  Atomic.incr t.active;
  Fun.protect
    ~finally:(fun () ->
      release_pin t view;
      Atomic.decr t.active)
  @@ fun () ->
  let pending = ref [] in
  let n_pending = ref 0 in
  let finished = ref None in
  let finish o = finished := Some o in
  (* The query/load limit is checked before the line is accepted, so
     [quit], [stop] and [metrics] always work on an exhausted session. *)
  let admit_query line k =
    match t.limits.max_queries with
    | Some m when view.queries >= m ->
      flush_pending t view oc pending;
      n_pending := 0;
      Atomic.incr t.query_limit_hits;
      let msg = Printf.sprintf "query limit reached (%d per session); closing session" m in
      log_record t ~session:view.id ~q:line ~ok:false ~us:None;
      emit_flush t view oc (Engine.render_error ~json:t.json ~q:line msg) true;
      finish `Limit
    | _ ->
      view.queries <- view.queries + 1;
      k ()
  in
  (try
     while !finished = None do
       (* Cut the batch when it is full or the next read would block. *)
       if !n_pending > 0 && (!n_pending >= batch_cap t || not (input_ready t input)) then begin
         flush_pending t view oc pending;
         n_pending := 0
       end;
       if Atomic.get t.stopping then begin
         flush_pending t view oc pending;
         finish `Stop
       end
       else
         match next_line t input with
         | Eof ->
           flush_pending t view oc pending;
           finish `Quit
         | Stopped ->
           flush_pending t view oc pending;
           finish `Stop
         | Timed_out ->
           flush_pending t view oc pending;
           n_pending := 0;
           Atomic.incr t.timeouts;
           let msg =
             Printf.sprintf "idle timeout (%gs); closing session"
               (Option.value ~default:0.0 t.limits.idle_timeout)
           in
           log_record t ~session:view.id ~q:"<idle>" ~ok:false ~us:None;
           emit_flush t view oc (Engine.render_error ~json:t.json ~q:"<idle>" msg) true;
           finish `Timeout
         | Too_long len ->
           flush_pending t view oc pending;
           n_pending := 0;
           Atomic.incr t.line_limit_hits;
           let msg =
             Printf.sprintf "line exceeds limit (%d > %d bytes); line dropped" len
               t.limits.max_line
           in
           log_record t ~session:view.id ~q:"<oversized line>" ~ok:false ~us:None;
           emit_flush t view oc (Engine.render_error ~json:t.json ~q:"<oversized line>" msg) true
         | Line line -> (
           let line = String.trim line in
           if line = "" || line.[0] = '#' then ()
           else
             match Query.tokens line with
             | Ok [ "quit" ] ->
               flush_pending t view oc pending;
               finish `Quit
             | Ok [ "stop" ] ->
               flush_pending t view oc pending;
               finish `Stop
             | Ok [ "metrics" ] ->
               flush_pending t view oc pending;
               n_pending := 0;
               log_record t ~session:view.id ~q:"metrics" ~ok:true ~us:None;
               emit_flush t view oc (render_metrics t) false
             | Ok ("metrics" :: _) ->
               flush_pending t view oc pending;
               n_pending := 0;
               log_record t ~session:view.id ~q:line ~ok:false ~us:None;
               emit_flush t view oc (Engine.render_error ~json:t.json ~q:line "usage: metrics") true
             | Ok ("demand" :: args) ->
               flush_pending t view oc pending;
               n_pending := 0;
               respond_demand t view oc ~line args
             | Ok ("load" :: args) ->
               admit_query line (fun () ->
                   flush_pending t view oc pending;
                   n_pending := 0;
                   match args with
                   | [ "path"; file ] ->
                     respond_control t view oc
                       ~q:(Printf.sprintf "load path %s" (Query.quote file))
                       (load_path t view file)
                   | [ "key"; key ] ->
                     respond_control t view oc
                       ~q:(Printf.sprintf "load key %s" (Query.quote key))
                       (load_key t view key)
                   | _ ->
                     respond_control t view oc ~q:line
                       (Error ("usage: load path <file> | load key <key>", [])))
             | Ok _ | Error _ ->
               (* a query line; tokenizer errors resurface from [Query.parse] *)
               admit_query line (fun () ->
                   pending := { line; parsed = Query.parse line } :: !pending;
                   incr n_pending))
     done
   with
  | Client_gone ->
    Atomic.incr t.disconnects;
    finish `Disconnect
  | End_of_file | Sys_error _ ->
    Atomic.incr t.disconnects;
    finish `Disconnect);
  Option.get !finished

let session t ic oc = run_session t (Chan ic) oc

(* ---------- Unix-domain socket front end ---------- *)

(* Refuse to clobber a socket path another live server owns: a connect
   probe that succeeds means someone is accepting there. ECONNREFUSED (or
   a vanished path) means the file is a stale leftover of an unclean
   shutdown and is safe to remove. *)
let probe_socket_path path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: cannot stat: %s" path (Unix.error_message e))
  | { Unix.st_kind; _ } when st_kind <> Unix.S_SOCK ->
    (* never unlink a path that is not a socket — it is someone's file *)
    Error (Printf.sprintf "%s: exists and is not a socket" path)
  | _ -> begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> Error (Printf.sprintf "%s: another server is live on this socket" path)
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> Ok `Stale
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok `Gone
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "%s: cannot probe socket: %s" path (Unix.error_message e))
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    match verdict with
    | Ok `Stale -> (
      match Unix.unlink path with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "%s: cannot remove stale socket: %s" path (Unix.error_message e)))
    | Ok `Gone -> Ok ()
    | Error _ as e -> e
  end

let accept_tick = 0.25

let handle_connection t conn =
  let oc = Unix.out_channel_of_descr conn in
  let outcome =
    try run_session t (Fd (fd_reader conn)) oc
    with _ ->
      Atomic.incr t.disconnects;
      `Disconnect
  in
  (try flush oc with Sys_error _ -> ());
  (try Unix.close conn with Unix.Unix_error _ -> ());
  if outcome = `Stop then Atomic.set t.stopping true

let serve_socket t ~path =
  match probe_socket_path path with
  | Error _ as e -> e
  | Ok () ->
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (* Graceful shutdown: SIGINT/SIGTERM only raise the stop flag; the
       accept loop and every blocked session notice it within a tick, so
       all exit paths run the [finally] cleanup below and no stale socket
       file survives a signal. SIGPIPE must not kill the process — a write
       to a dropped connection surfaces as an error the session handles. *)
    let stop_signal _ = Atomic.set t.stopping true in
    let installed =
      List.filter_map
        (fun sg ->
          match Sys.signal sg (Sys.Signal_handle stop_signal) with
          | prev -> Some (sg, prev)
          | exception (Sys_error _ | Invalid_argument _) -> None)
        [ Sys.sigint; Sys.sigterm ]
    in
    let sigpipe =
      match Sys.signal Sys.sigpipe Sys.Signal_ignore with
      | prev -> Some prev
      | exception (Sys_error _ | Invalid_argument _) -> None
    in
    (* Bind under a temporary name and rename into place only after
       [listen]: the advertised path never exists in a bound-but-not-yet-
       listening state, so a concurrent [probe_socket_path] cannot mistake
       a starting server for a stale socket and unlink it. Rename keeps the
       binding — unix(7) sockets resolve through the path to the inode. *)
    let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
    let bound = ref None in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        (match !bound with
        | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
        | None -> ());
        List.iter (fun (sg, prev) -> try Sys.set_signal sg prev with _ -> ()) installed;
        match sigpipe with
        | Some prev -> ( try Sys.set_signal Sys.sigpipe prev with _ -> ())
        | None -> ())
    @@ fun () ->
    (try Unix.unlink tmp with Unix.Unix_error _ -> ());
    match Unix.bind sock (Unix.ADDR_UNIX tmp) with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: cannot bind: %s" path (Unix.error_message e))
    | () -> (
      bound := Some tmp;
      Unix.listen sock 64;
      match Unix.rename tmp path with
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "%s: cannot publish socket: %s" path (Unix.error_message e))
      | () ->
        bound := Some path;
        while not (Atomic.get t.stopping) do
          match Unix.select [ sock ] [] [] accept_tick with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | [], _, _ -> ()
          | _ -> (
            match Unix.accept sock with
            | exception Unix.Unix_error _ -> ()
            | conn, _ -> (
              match t.pool with
              | Some p when Domain_pool.jobs p > 1 ->
                Domain_pool.submit p (fun () -> handle_connection t conn)
              | _ -> handle_connection t conn))
        done;
        (* Drain: sessions poll the stop flag every [select_tick], so active
           connections wind down promptly; wait for the last one. *)
        while Atomic.get t.active > 0 do
          Unix.sleepf 0.01
        done;
        Ok ())
