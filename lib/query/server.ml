module Cache = Ipa_harness.Cache
module Domain_pool = Ipa_support.Domain_pool
module Snapshot = Ipa_core.Snapshot
module Timer = Ipa_support.Timer

type t = {
  program : Ipa_ir.Program.t;
  cache : Cache.t option;
  pool : Domain_pool.t option;
  json : bool;
  timings : bool;
  mutable engine : Engine.t;
  mutable label : string;
  mutable served : int;
  mutable errors : int;
  mutable loads : int;
}

let warm_if_pooled t = match t.pool with Some _ -> Engine.warm t.engine | None -> ()

let create ?cache ?pool ~json ~timings ~program ~label sol =
  let t =
    {
      program;
      cache;
      pool;
      json;
      timings;
      engine = Engine.create sol;
      label;
      served = 0;
      errors = 0;
      loads = 0;
    }
  in
  warm_if_pooled t;
  t

let served t = t.served
let errors t = t.errors
let loads t = t.loads

(* ---------- batched query evaluation ---------- *)

type item = { line : string; parsed : (Query.t, string) result }

let batch_cap t = match t.pool with Some p -> 16 * Domain_pool.jobs p | None -> 1

let eval_one t item =
  match item.parsed with
  | Error e -> (Engine.render_error ~json:t.json ~q:item.line e, true)
  | Ok q ->
    let res, secs = Timer.time (fun () -> Engine.eval t.engine q) in
    let latency_us = if t.timings then Some (int_of_float (secs *. 1e6)) else None in
    let render = if t.json then Engine.render_json else Engine.render_text in
    (render ?latency_us q res, Result.is_error res)

let flush_pending t oc pending =
  match List.rev !pending with
  | [] -> ()
  | items ->
    pending := [];
    let rendered =
      match t.pool with
      | Some p when List.length items > 1 -> Domain_pool.map_list p (eval_one t) items
      | _ -> List.map (eval_one t) items
    in
    List.iter
      (fun (line, is_err) ->
        t.served <- t.served + 1;
        if is_err then t.errors <- t.errors + 1;
        output_string oc line;
        output_char oc '\n')
      rendered;
    flush oc

(* ---------- snapshot hot-loading ---------- *)

let install t (snap : Snapshot.t) =
  t.engine <- Engine.create snap.solution;
  t.label <- snap.label;
  warm_if_pooled t;
  snap.label

let load_path t file =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error e -> Error e
  | bytes -> (
    match Snapshot.decode ~program:t.program bytes with
    | Ok snap -> Ok (install t snap)
    | Error e -> Error (Printf.sprintf "%s: %s" file (Snapshot.error_to_string e)))

let load_key t key =
  match t.cache with
  | None -> Error "no cache configured (start the server with --cache-dir)"
  | Some cache -> (
    match Cache.find_bytes cache ~key with
    | None -> Error (Printf.sprintf "cache miss for key %s" key)
    | Some bytes -> (
      match Snapshot.decode ~program:t.program ~expect_key:key bytes with
      | Ok snap -> Ok (install t snap)
      | Error e -> Error (Printf.sprintf "key %s: %s" key (Snapshot.error_to_string e))))

let respond_control t oc ~q outcome =
  t.served <- t.served + 1;
  let line =
    match outcome with
    | Ok label ->
      t.loads <- t.loads + 1;
      if t.json then
        Printf.sprintf {|{"q":%s,"ok":true,"kind":"load","label":%s}|} (Engine.json_string q)
          (Engine.json_string label)
      else Printf.sprintf "%s: ok (%s)" q label
    | Error e ->
      t.errors <- t.errors + 1;
      Engine.render_error ~json:t.json ~q e
  in
  output_string oc line;
  output_char oc '\n';
  flush oc

(* ---------- the session loop ---------- *)

let input_ready ic =
  match Unix.select [ Unix.descr_of_in_channel ic ] [] [] 0.0 with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error _ -> false

let session t ic oc =
  let pending = ref [] in
  let n_pending = ref 0 in
  let finished = ref None in
  while !finished = None do
    (* Cut the batch when it is full or the next read would block; data
       already sitting in the channel buffer (not the fd) may under-batch,
       which costs parallelism but never changes the output. *)
    if !n_pending > 0 && (!n_pending >= batch_cap t || not (input_ready ic)) then begin
      flush_pending t oc pending;
      n_pending := 0
    end;
    match input_line ic with
    | exception End_of_file ->
      flush_pending t oc pending;
      finished := Some `Quit
    | line -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match Query.tokens line with
        | Ok [ "quit" ] ->
          flush_pending t oc pending;
          finished := Some `Quit
        | Ok [ "stop" ] ->
          flush_pending t oc pending;
          finished := Some `Stop
        | Ok ("load" :: args) -> (
          flush_pending t oc pending;
          n_pending := 0;
          match args with
          | [ "path"; file ] ->
            respond_control t oc ~q:(Printf.sprintf "load path %s" (Query.quote file)) (load_path t file)
          | [ "key"; key ] ->
            respond_control t oc ~q:(Printf.sprintf "load key %s" (Query.quote key)) (load_key t key)
          | _ -> respond_control t oc ~q:line (Error "usage: load path <file> | load key <key>"))
        | Ok _ | Error _ ->
          (* a query line; tokenizer errors resurface from [Query.parse] *)
          pending := { line; parsed = Query.parse line } :: !pending;
          incr n_pending)
  done;
  Option.get !finished

(* ---------- Unix-domain socket front end ---------- *)

let serve_socket t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  let stop = ref false in
  while not !stop do
    let conn, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr conn in
    let oc = Unix.out_channel_of_descr conn in
    let outcome = try session t ic oc with End_of_file | Sys_error _ -> `Quit in
    (try flush oc with Sys_error _ -> ());
    (try Unix.close conn with Unix.Unix_error _ -> ());
    if outcome = `Stop then stop := true
  done
