(** The demand query language: one query per line over a solved analysis.

    Queries name program entities by their full names — variables as
    ["Class::meth/arity$var"], methods as ["Class::meth/arity"], fields as
    ["Class::field"] (or a bare unambiguous field name), allocation sites
    and invocation sites by their generated site names (e.g.
    ["Main::main/0/new Box#0"], ["Main::main/0/vcall#2"]). Names containing
    whitespace are double-quoted; backslash escapes a quote or a
    backslash inside quotes.

    The forms:

    {v
    pts <var>                  collapsed points-to set of a variable
    pointed-by <heap>          variables that may point to an allocation site
    alias <var> <var>          may the two variables alias? (with witnesses)
    callees <site>             call-graph targets of an invocation site
    callers <method>           invocation sites with an edge into a method
    reach <method> <method>    call-graph reachability, with a path
    fieldpts <heap> <field>    collapsed points-to set of one field slot
    taint [<source> <sink>]    taint findings (default or one-pattern spec)
    stats                      solution size statistics
    v}

    [parse] and [to_string] are mutual inverses on well-formed queries, a
    property the test suite pins. *)

type t =
  | Pts of string
  | Pointed_by of string
  | Alias of string * string
  | Callees of string
  | Callers of string
  | Reach of string * string
  | Fieldpts of string * string
  | Taint of (string * string) option
      (** [None] is the built-in default spec; [Some (source, sink)] builds
          a spec from the two glob patterns, the source pattern matched
          against both source methods and allocated classes. *)
  | Stats

val forms : string list
(** The leading keywords, in documentation order. *)

val tokens : string -> (string list, string) result
(** Split a line into whitespace-separated tokens with double-quoting
    (backslash escapes a quote or a backslash inside quotes). Errors on
    an unterminated quote or a dangling escape. Exposed for the server's
    control commands, which share the lexical syntax. *)

val quote : string -> string
(** Quote a token iff it needs it (empty, whitespace, quote or backslash). *)

val parse : string -> (t, string) result
(** Parse one query line. The error message names the offending form and
    its expected argument count. *)

val to_string : t -> string
(** Canonical rendering; inverse of {!parse}. *)
