module Program = Ipa_ir.Program
module Int_set = Ipa_support.Int_set
module Solution = Ipa_core.Solution
module Value_flow = Ipa_core.Value_flow

type spec = {
  sources : string list;
  source_classes : string list;
  sinks : string list;
  sanitizers : string list;
}

let default_spec =
  {
    sources = [ "*::mkSecret/0" ];
    source_classes = [ "Secret*" ];
    sinks = [ "*::consume/1" ];
    sanitizers = [ "*::scrub/1" ];
  }

(* Glob with '*' as "any substring"; everything else is literal. *)
let glob_match ~pat s =
  let np = String.length pat in
  let ns = String.length s in
  let rec go i j =
    if i = np then j = ns
    else if pat.[i] = '*' then go (i + 1) j || (j < ns && go i (j + 1))
    else j < ns && pat.[i] = s.[j] && go (i + 1) (j + 1)
  in
  go 0 0

let matches_any pats s = List.exists (fun pat -> glob_match ~pat s) pats

let spec_of_string text =
  let spec = ref { sources = []; source_classes = []; sinks = []; sanitizers = [] } in
  let error = ref None in
  String.split_on_char '\n' text
  |> List.iteri (fun lineno line ->
         if !error = None then begin
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
           | [] -> ()
           | [ "source"; pat ] -> spec := { !spec with sources = pat :: !spec.sources }
           | [ "source-class"; pat ] ->
             spec := { !spec with source_classes = pat :: !spec.source_classes }
           | [ "sink"; pat ] -> spec := { !spec with sinks = pat :: !spec.sinks }
           | [ "sanitizer"; pat ] -> spec := { !spec with sanitizers = pat :: !spec.sanitizers }
           | word :: _ ->
             error :=
               Some
                 (Printf.sprintf
                    "line %d: expected 'source|source-class|sink|sanitizer PATTERN', got '%s'"
                    (lineno + 1) word)
         end);
  match !error with
  | Some e -> Error e
  | None ->
    let s = !spec in
    Ok
      {
        sources = List.rev s.sources;
        source_classes = List.rev s.source_classes;
        sinks = List.rev s.sinks;
        sanitizers = List.rev s.sanitizers;
      }

let spec_of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> spec_of_string text
  | exception Sys_error msg -> Error msg

let spec_to_string spec =
  String.concat "\n"
    (List.map (fun p -> "source " ^ p) spec.sources
    @ List.map (fun p -> "source-class " ^ p) spec.source_classes
    @ List.map (fun p -> "sink " ^ p) spec.sinks
    @ List.map (fun p -> "sanitizer " ^ p) spec.sanitizers)

type finding = {
  invo : Program.invo_id;
  sink : Program.meth_id;
  arg : int;
  path : Value_flow.node list;
}

type result = {
  spec : spec;
  findings : finding list;
  n_seeds : int;
  vfg : Value_flow.t option;
}

let analyze ?(spec = default_spec) (s : Solution.t) =
  let p = s.Solution.program in
  let reachable = Solution.reachable_meths s in
  (* Taint-introduction sites, found on the program text of reachable
     methods — cheap enough to decide the fast path before building the
     value-flow graph. *)
  let source_rets = ref [] in
  let source_allocs = ref [] in
  Int_set.iter
    (fun m ->
      let mi = Program.meth_info p m in
      (if matches_any spec.sources (Program.meth_full_name p m) then
         match mi.ret_var with
         | Some rv -> source_rets := rv :: !source_rets
         | None -> ());
      if spec.source_classes <> [] then
        Array.iter
          (fun (i : Program.instr) ->
            match i with
            | Alloc { target; heap } ->
              if
                matches_any spec.source_classes
                  (Program.class_name p (Program.heap_info p heap).heap_class)
              then source_allocs := target :: !source_allocs
            | _ -> ())
          mi.body)
    reachable;
  let n_seeds = List.length !source_rets + List.length !source_allocs in
  if n_seeds = 0 then { spec; findings = []; n_seeds = 0; vfg = None }
  else begin
    let vfg = Value_flow.build s in
    let seeds = List.map (Value_flow.var_node vfg) (!source_rets @ !source_allocs) in
    let sanitizer_meths = Array.make (Program.n_meths p) false in
    if spec.sanitizers <> [] then
      Int_set.iter
        (fun m ->
          if matches_any spec.sanitizers (Program.meth_full_name p m) then
            sanitizer_meths.(m) <- true)
        reachable;
    let blocked n =
      match Value_flow.kind vfg n with
      | Value_flow.Var v -> sanitizer_meths.((Program.var_info p v).var_owner)
      | Value_flow.Exc m -> sanitizer_meths.(m)
      | Value_flow.Fld _ | Value_flow.Static_fld _ -> false
    in
    let tainted = Value_flow.reachable ~blocked vfg ~seeds in
    let targets = Solution.call_targets s in
    let findings = ref [] in
    for invo = Program.n_invos p - 1 downto 0 do
      match Hashtbl.find_opt targets invo with
      | None -> ()
      | Some meths ->
        let sink_targets =
          Int_set.fold
            (fun m acc -> if matches_any spec.sinks (Program.meth_full_name p m) then m :: acc else acc)
            meths []
        in
        (match List.sort compare sink_targets with
        | [] -> ()
        | sink :: _ ->
          let ii = Program.invo_info p invo in
          Array.iteri
            (fun arg actual ->
              let node = Value_flow.var_node vfg actual in
              if Int_set.mem tainted node then
                let path = Value_flow.find_path ~blocked vfg ~seeds ~target:node in
                findings :=
                  { invo; sink; arg; path = Option.value path ~default:[] } :: !findings)
            ii.actuals)
    done;
    { spec; findings = !findings; n_seeds; vfg = Some vfg }
  end

let tainted_sink_count ?spec s = List.length (analyze ?spec s).findings

let print (s : Solution.t) (r : result) =
  let p = s.Solution.program in
  match r.findings with
  | [] -> Printf.printf "no tainted sinks (%d taint seeds)\n" r.n_seeds
  | findings ->
    List.iter
      (fun { invo; sink; arg; path } ->
        let ii = Program.invo_info p invo in
        Printf.printf "%s (in %s): arg %d of %s is TAINTED\n" ii.invo_name
          (Program.meth_full_name p ii.invo_owner)
          arg (Program.meth_full_name p sink);
        match (path, r.vfg) with
        | _ :: _, Some vfg ->
          Printf.printf "  via %s\n"
            (String.concat " -> " (List.map (Value_flow.node_to_string vfg) path))
        | _ -> ())
      findings
