(** Devirtualization client: which virtual call sites have a unique target?

    A monomorphic site can be compiled as a direct call (and inlined); the
    fraction of such sites is the paper's "calls that cannot be
    devirtualized" precision metric seen from the optimizer's side. *)

type verdict =
  | Monomorphic of Ipa_ir.Program.meth_id  (** exactly one target *)
  | Polymorphic of Ipa_ir.Program.meth_id list  (** two or more targets *)
  | Unreachable  (** no call-graph edge: dead code under this analysis *)

type t = {
  site : Ipa_ir.Program.invo_id;
  verdict : verdict;
}

val analyze : Ipa_core.Solution.t -> t list
(** One entry per virtual call site of the program, in site order. *)

type summary = { monomorphic : int; polymorphic : int; unreachable : int }

val summarize : Ipa_core.Solution.t -> summary
