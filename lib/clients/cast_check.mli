(** Cast-safety client: which downcasts can be proven safe?

    The paper's "casts that may fail" metric, per cast site: a cast is safe
    when every object its source may point to is a subtype of the target
    type; otherwise the objects witnessing potential failure are reported. *)

type t = {
  meth : Ipa_ir.Program.meth_id;  (** enclosing method *)
  index : int;  (** body index of the cast in [meth] *)
  source : Ipa_ir.Program.var_id;
  target_type : Ipa_ir.Program.class_id;
  total : int;  (** points-to cardinality of [source] *)
  witnesses : Ipa_ir.Program.heap_id list;  (** objects that would fail; [] = safe *)
}

val analyze : Ipa_core.Solution.t -> t list
(** Every cast in a reachable method, in program order. A cast with
    [total > 0] and as many witnesses as [total] is {e guaranteed} to fail
    under the analysis, not merely unproven. *)

val unsafe_count : Ipa_core.Solution.t -> int
(** The paper's metric: casts with at least one witness. *)
