(** Interprocedural taint-reachability client.

    Sources, sinks and sanitizers are named by glob patterns ([*] matches
    any substring) over method full names (["Class::name/arity"]) and, for
    allocation-site sources, class names. Taint is forward reachability
    over the solution's {!Ipa_core.Value_flow} graph: values returned by
    source methods and objects allocated at source-class sites are tainted;
    every node of a sanitizer method cuts flow; a finding is a tainted
    actual argument of a call that resolves to a sink method. Because the
    value-flow graph of a more precise solution is a subgraph, the count of
    tainted sinks is monotone: a more context-sensitive analysis never
    reports more than a less sensitive one on the same program. *)

module Program = Ipa_ir.Program

type spec = {
  sources : string list;  (** method patterns whose return value is tainted *)
  source_classes : string list;  (** class patterns whose allocations are tainted *)
  sinks : string list;  (** method patterns whose arguments must stay clean *)
  sanitizers : string list;  (** method patterns through which taint is cut *)
}

val default_spec : spec
(** Sources [*::mkSecret/0] and allocations of [Secret*] classes, sinks
    [*::consume/1], sanitizers [*::scrub/1] — the conventions used by the
    synthetic taint motif and the bundled examples. *)

val spec_of_string : string -> (spec, string) result
(** Parse the line-based spec format: one directive per line, [#] comments
    and blank lines ignored. Directives: [source PAT], [source-class PAT],
    [sink PAT], [sanitizer PAT]. *)

val spec_of_file : string -> (spec, string) result

val spec_to_string : spec -> string

val glob_match : pat:string -> string -> bool

(** One tainted sink argument, with a value-flow witness. *)
type finding = {
  invo : Program.invo_id;
  sink : Program.meth_id;  (** resolved sink callee *)
  arg : int;  (** index of the tainted actual *)
  path : Ipa_core.Value_flow.node list;  (** seed ... sink actual *)
}

type result = {
  spec : spec;
  findings : finding list;  (** distinct (invo, arg), deterministic order *)
  n_seeds : int;  (** taint-introduction nodes found *)
  vfg : Ipa_core.Value_flow.t option;  (** [None] when no source matched *)
}

val analyze : ?spec:spec -> Ipa_core.Solution.t -> result
(** When no reachable source matches the spec, returns an empty result
    without materializing the value-flow graph. *)

val tainted_sink_count : ?spec:spec -> Ipa_core.Solution.t -> int
(** [List.length (analyze s).findings]. *)

val print : Ipa_core.Solution.t -> result -> unit
(** One line per finding, with its witness path. *)
