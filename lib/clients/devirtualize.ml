module Program = Ipa_ir.Program
module Int_set = Ipa_support.Int_set
module Solution = Ipa_core.Solution

type verdict =
  | Monomorphic of Program.meth_id
  | Polymorphic of Program.meth_id list
  | Unreachable

type t = {
  site : Program.invo_id;
  verdict : verdict;
}

let analyze (s : Solution.t) =
  let p = s.program in
  let targets = Solution.call_targets s in
  let out = ref [] in
  for invo = Program.n_invos p - 1 downto 0 do
    match (Program.invo_info p invo).call with
    | Static _ -> ()
    | Virtual _ ->
      let verdict =
        match Hashtbl.find_opt targets invo with
        | None -> Unreachable
        | Some ms -> (
          match Int_set.to_sorted_list ms with
          | [ m ] -> Monomorphic m
          | ms -> Polymorphic ms)
      in
      out := { site = invo; verdict } :: !out
  done;
  !out

type summary = { monomorphic : int; polymorphic : int; unreachable : int }

let summarize s =
  List.fold_left
    (fun acc { verdict; _ } ->
      match verdict with
      | Monomorphic _ -> { acc with monomorphic = acc.monomorphic + 1 }
      | Polymorphic _ -> { acc with polymorphic = acc.polymorphic + 1 }
      | Unreachable -> { acc with unreachable = acc.unreachable + 1 })
    { monomorphic = 0; polymorphic = 0; unreachable = 0 }
    (analyze s)
