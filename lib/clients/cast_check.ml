module Program = Ipa_ir.Program
module Int_set = Ipa_support.Int_set
module Solution = Ipa_core.Solution

type t = {
  meth : Program.meth_id;
  index : int;
  source : Program.var_id;
  target_type : Program.class_id;
  total : int;
  witnesses : Program.heap_id list;
}

let analyze (s : Solution.t) =
  let p = s.program in
  let vpt = Solution.collapsed_var_pts s in
  let reachable = Solution.reachable_meths s in
  let out = ref [] in
  for m = Program.n_meths p - 1 downto 0 do
    if Int_set.mem reachable m then
      Array.iteri
        (fun index (i : Program.instr) ->
          match i with
          | Cast { source; cast_to; _ } ->
            let witnesses =
              List.filter
                (fun h ->
                  not (Program.subtype p ~sub:(Program.heap_info p h).heap_class ~super:cast_to))
                (Int_set.to_sorted_list vpt.(source))
            in
            out :=
              {
                meth = m;
                index;
                source;
                target_type = cast_to;
                total = Int_set.cardinal vpt.(source);
                witnesses;
              }
              :: !out
          | Alloc _ | Move _ | Load _ | Store _ | Load_static _ | Store_static _ | Call _
          | Return _ | Throw _ -> ())
        (Program.meth_info p m).body
  done;
  !out

let unsafe_count s = List.length (List.filter (fun c -> c.witnesses <> []) (analyze s))
