module Builder = Ipa_ir.Builder
module Program = Ipa_ir.Program

type error = { pos : Ast.pos; msg : string }

let error_to_string { pos; msg } = Printf.sprintf "%s: %s" (Ast.pos_to_string pos) msg

exception Err of error

let err pos fmt = Printf.ksprintf (fun msg -> raise (Err { pos; msg })) fmt

let loc (p : Ast.pos) : Ipa_ir.Srcloc.pos = { line = p.line; col = p.col }

(* Emit classes so that supertypes precede subtypes (the builder requires
   parent ids up front). Kahn's algorithm; ties broken by file order, so an
   already-topological file keeps its order and printing round-trips. *)
let topo_order (decls : Ast.class_decl array) : int list =
  let n = Array.length decls in
  let index_of = Hashtbl.create n in
  Array.iteri
    (fun i (d : Ast.class_decl) ->
      if Hashtbl.mem index_of d.cd_name then err d.cd_pos "duplicate class %s" d.cd_name;
      Hashtbl.add index_of d.cd_name i)
    decls;
  let deps_of (d : Ast.class_decl) =
    let named = (match d.cd_super with Some s -> [ s ] | None -> []) @ d.cd_interfaces in
    List.map
      (fun name ->
        match Hashtbl.find_opt index_of name with
        | Some i -> i
        | None -> err d.cd_pos "unknown class or interface %s" name)
      named
  in
  let dependents = Array.make n [] in
  let indegree = Array.make n 0 in
  Array.iteri
    (fun i d ->
      List.iter
        (fun dep ->
          dependents.(dep) <- i :: dependents.(dep);
          indegree.(i) <- indegree.(i) + 1)
        (deps_of d))
    decls;
  (* A binary min-heap over declaration indexes keeps the emitted order as
     close to file order as the dependencies allow, so printing a program
     and re-parsing it preserves class order. *)
  let heap = Array.make (n + 1) 0 in
  let heap_len = ref 0 in
  let push x =
    incr heap_len;
    heap.(!heap_len) <- x;
    let i = ref !heap_len in
    while !i > 1 && heap.(!i / 2) > heap.(!i) do
      let tmp = heap.(!i / 2) in
      heap.(!i / 2) <- heap.(!i);
      heap.(!i) <- tmp;
      i := !i / 2
    done
  in
  let pop () =
    let top = heap.(1) in
    heap.(1) <- heap.(!heap_len);
    decr heap_len;
    let i = ref 1 in
    let continue_ = ref true in
    while !continue_ do
      let l = 2 * !i and r = (2 * !i) + 1 in
      let smallest = ref !i in
      if l <= !heap_len && heap.(l) < heap.(!smallest) then smallest := l;
      if r <= !heap_len && heap.(r) < heap.(!smallest) then smallest := r;
      if !smallest = !i then continue_ := false
      else begin
        let tmp = heap.(!i) in
        heap.(!i) <- heap.(!smallest);
        heap.(!smallest) <- tmp;
        i := !smallest
      end
    done;
    top
  in
  Array.iteri (fun i deg -> if deg = 0 then push i) indegree;
  let order = ref [] in
  let emitted = ref 0 in
  while !heap_len > 0 do
    let i = pop () in
    order := i :: !order;
    incr emitted;
    List.iter
      (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then push j)
      (List.rev dependents.(i))
  done;
  if !emitted < n then begin
    let stuck = ref [] in
    Array.iteri (fun i deg -> if deg > 0 then stuck := decls.(i).cd_name :: !stuck) indegree;
    let d = decls.(Hashtbl.find index_of (List.hd (List.rev !stuck))) in
    err d.cd_pos "cyclic class hierarchy involving %s" (String.concat ", " (List.rev !stuck))
  end;
  List.rev !order

type env = {
  b : Builder.t;
  class_ids : (string, Program.class_id) Hashtbl.t;
  decl_by_name : (string, Ast.class_decl) Hashtbl.t;
  (* (class id, field name) -> field id; declared fields only *)
  fields : (Program.class_id * string, Program.field_id) Hashtbl.t;
  (* field name -> owners, for unqualified references *)
  field_owners : (string, Program.field_id list) Hashtbl.t;
  (* (class id, method name, arity) -> method id *)
  meths : (Program.class_id * string * int, Program.meth_id) Hashtbl.t;
}

let class_id env pos name =
  match Hashtbl.find_opt env.class_ids name with
  | Some c -> c
  | None -> err pos "unknown class %s" name

(* Find [name/arity] declared in [cls] or inherited through supers. *)
let rec find_meth env pos cls_name name arity =
  let c = class_id env pos cls_name in
  match Hashtbl.find_opt env.meths (c, name, arity) with
  | Some m -> Some m
  | None -> (
    match (Hashtbl.find env.decl_by_name cls_name).cd_super with
    | Some super -> find_meth env pos super name arity
    | None -> None)

let resolve_field env pos (fr : Ast.fieldref) =
  match fr.fr_class with
  | Some cname -> (
    let c = class_id env pos cname in
    match Hashtbl.find_opt env.fields (c, fr.fr_name) with
    | Some f -> f
    | None -> err pos "class %s declares no field %s" cname fr.fr_name)
  | None -> (
    match Hashtbl.find_opt env.field_owners fr.fr_name with
    | Some [ f ] -> f
    | Some _ -> err pos "field name %s is ambiguous; qualify it as Class::%s" fr.fr_name fr.fr_name
    | None -> err pos "unknown field %s" fr.fr_name)

let declare_members env (d : Ast.class_decl) =
  let c = Hashtbl.find env.class_ids d.cd_name in
  List.iter
    (fun ((m : Ast.member), pos) ->
      Builder.set_pos env.b (loc pos);
      match m with
      | Field { static; name } ->
        if Hashtbl.mem env.fields (c, name) then err pos "duplicate field %s::%s" d.cd_name name;
        let f = Builder.add_field env.b ~owner:c ~static name in
        Hashtbl.add env.fields (c, name) f;
        Hashtbl.replace env.field_owners name
          (f :: Option.value ~default:[] (Hashtbl.find_opt env.field_owners name))
      | Method { static; name; arity; params; body = _ } ->
        if Hashtbl.mem env.meths (c, name, arity) then
          err pos "duplicate method %s::%s/%d" d.cd_name name arity;
        let abstract = params = None in
        if d.cd_interface && not abstract then
          err pos "interface %s declares a method body for %s" d.cd_name name;
        let params =
          match params with
          | Some ps -> ps
          | None -> List.init arity (Printf.sprintf "p%d")
        in
        let mid =
          try Builder.add_method env.b ~owner:c ~name ~static ~abstract ~params ()
          with Failure msg -> err pos "%s" msg
        in
        Hashtbl.add env.meths (c, name, arity) mid)
    d.cd_members

let resolve_body env (d : Ast.class_decl) ((m : Ast.member), mpos) =
  match m with
  | Ast.Field _ -> ()
  | Ast.Method { params = None; _ } -> ()
  | Ast.Method { static; name; arity; params = Some params; body } ->
    let c = Hashtbl.find env.class_ids d.cd_name in
    let mid = Hashtbl.find env.meths (c, name, arity) in
    let vars = Hashtbl.create 16 in
    if not static then Hashtbl.add vars "this" (Builder.this env.b mid);
    List.iteri (fun i p -> Hashtbl.add vars p (Builder.formal env.b mid i)) params;
    (* Locals are scoped to the whole method: collect declarations first. *)
    List.iter
      (fun ((s : Ast.stmt), pos) ->
        match s with
        | Decl_vars names ->
          Builder.set_pos env.b (loc pos);
          List.iter
            (fun v ->
              if Hashtbl.mem vars v then err pos "duplicate variable %s" v
              else Hashtbl.add vars v (Builder.add_var env.b mid v))
            names
        | _ -> ())
      body;
    let var pos v =
      match Hashtbl.find_opt vars v with
      | Some id -> id
      | None -> err pos "unknown variable %s in %s::%s/%d" v d.cd_name name arity
    in
    ignore mpos;
    List.iter
      (fun ((s : Ast.stmt), pos) ->
        Builder.set_pos env.b (loc pos);
        match s with
        | Decl_vars _ -> ()
        | Alloc { target; cls } ->
          ignore (Builder.alloc env.b mid ~target:(var pos target) ~cls:(class_id env pos cls))
        | Cast { target; cls; source } ->
          Builder.cast env.b mid ~target:(var pos target) ~source:(var pos source)
            ~cls:(class_id env pos cls)
        | Move { target; source } ->
          Builder.move env.b mid ~target:(var pos target) ~source:(var pos source)
        | Load { target; base; field } ->
          let f = resolve_field env pos field in
          if (Hashtbl.mem vars base) then
            Builder.load env.b mid ~target:(var pos target) ~base:(var pos base) ~field:f
          else err pos "unknown variable %s (static loads are written C::f)" base
        | Store { base; field; source } ->
          let f = resolve_field env pos field in
          Builder.store env.b mid ~base:(var pos base) ~field:f ~source:(var pos source)
        | Load_static { target; cls; field } ->
          let f = resolve_field env pos { fr_class = Some cls; fr_name = field } in
          Builder.load_static env.b mid ~target:(var pos target) ~field:f
        | Store_static { cls; field; source } ->
          let f = resolve_field env pos { fr_class = Some cls; fr_name = field } in
          Builder.store_static env.b mid ~field:f ~source:(var pos source)
        | Vcall { recv; base; name = callee; args } ->
          let recv = Option.map (var pos) recv in
          ignore
            (Builder.vcall env.b mid ~base:(var pos base) ~name:callee
               ~actuals:(List.map (var pos) args) ?recv ())
        | Scall { recv; cls; name = callee; args } -> (
          match find_meth env pos cls callee (List.length args) with
          | Some target ->
            let recv = Option.map (var pos) recv in
            ignore
              (Builder.scall env.b mid ~callee:target ~actuals:(List.map (var pos) args) ?recv ())
          | None -> err pos "unknown method %s::%s/%d" cls callee (List.length args))
        | Return None -> ()
        | Return (Some v) -> Builder.return_ env.b mid (var pos v)
        | Throw v -> Builder.throw env.b mid (var pos v)
        | Catch { cls; var = cv } ->
          Builder.add_catch env.b mid ~cls:(class_id env pos cls) ~var:(var pos cv))
      body

let resolve ?file (ast : Ast.program) : (Program.t, error) result =
  try
    let decls = Array.of_list ast.decls in
    let order = topo_order decls in
    let env =
      {
        b = Builder.create ();
        class_ids = Hashtbl.create 64;
        decl_by_name = Hashtbl.create 64;
        fields = Hashtbl.create 64;
        field_owners = Hashtbl.create 64;
        meths = Hashtbl.create 64;
      }
    in
    (match file with Some f -> Builder.set_source env.b f | None -> ());
    List.iter
      (fun i ->
        let d = decls.(i) in
        Hashtbl.add env.decl_by_name d.cd_name d;
        Builder.set_pos env.b (loc d.cd_pos);
        let interfaces = List.map (class_id env d.cd_pos) d.cd_interfaces in
        let c =
          if d.cd_interface then Builder.add_interface env.b ~interfaces d.cd_name
          else
            let super = Option.map (class_id env d.cd_pos) d.cd_super in
            Builder.add_class env.b ?super ~interfaces d.cd_name
        in
        Hashtbl.add env.class_ids d.cd_name c)
      order;
    (* Declare all members (in file order) before resolving any body, so
       bodies can reference later classes and methods. *)
    Array.iter (declare_members env) decls;
    Array.iter (fun d -> List.iter (resolve_body env d) d.cd_members) decls;
    List.iter
      (fun (e : Ast.entry_decl) ->
        match find_meth env e.en_pos e.en_class e.en_name e.en_arity with
        | Some m -> Builder.add_entry env.b m
        | None -> err e.en_pos "unknown entry %s::%s/%d" e.en_class e.en_name e.en_arity)
      ast.entry_decls;
    match Builder.finish env.b with
    | p -> Ok p
    | exception Failure msg -> Error { pos = { line = 0; col = 0 }; msg }
  with Err e -> Error e
