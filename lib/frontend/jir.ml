type error = { file : string option; line : int; col : int; msg : string }

let error_to_string { file; line; col; msg } =
  match file with
  | Some f -> Printf.sprintf "%s:%d:%d: %s" f line col msg
  | None -> Printf.sprintf "%d:%d: %s" line col msg

let of_pos ?file (p : Ast.pos) msg = { file; line = p.line; col = p.col; msg }

let parse ?file src =
  match Parser.parse src with
  | exception Lexer.Lex_error (pos, msg) -> Error (of_pos ?file pos msg)
  | exception Parser.Parse_error (pos, msg) -> Error (of_pos ?file pos msg)
  | ast -> (
    match Resolver.resolve ?file ast with
    | Ok p -> Ok p
    | Error { pos; msg } -> Error (of_pos ?file pos msg))

let parse_string src = parse src

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error { file = Some path; line = 0; col = 0; msg }
  | src -> parse ~file:path src
