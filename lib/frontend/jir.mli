(** Facade: parse [.jir] source into a validated [Ipa_ir.Program.t]. *)

type error = { file : string option; line : int; col : int; msg : string }

val error_to_string : error -> string
(** ["file:line:col: msg"], or ["line:col: msg"] when no file is known. *)

val parse_string : string -> (Ipa_ir.Program.t, error) result
(** Lex, parse, resolve, and well-formedness-check a compilation unit. The
    resulting error (and the program's {!Ipa_ir.Srcloc.t}) carries no file
    name. *)

val parse_file : string -> (Ipa_ir.Program.t, error) result
(** [parse_string] on the contents of a file; errors carry the file path.
    I/O failures (missing file, permissions) are reported as an [error] at
    position 0:0 with the path in [file] and the system message in [msg]. *)
