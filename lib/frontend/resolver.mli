(** Name resolution: {!Ast.program} to [Ipa_ir.Program.t].

    The resolver is two-phase, so forward references between classes and
    methods are allowed anywhere in a compilation unit: phase one declares
    classes (in a topological order of the hierarchy), fields and method
    signatures; phase two fills method bodies and entry points through
    [Ipa_ir.Builder], which runs the well-formedness checker. *)

type error = { pos : Ast.pos; msg : string }

val error_to_string : error -> string

val resolve : ?file:string -> Ast.program -> (Ipa_ir.Program.t, error) result
(** [resolve ?file ast] names the source file in the resulting program's
    {!Ipa_ir.Srcloc.t} (diagnostics then carry [file:line:col] spans); the
    declaration and statement positions from the AST are recorded either way.
    Resolution rules:
    - classes/interfaces: names are global, duplicates rejected; the
      hierarchy must be acyclic;
    - variables: [this], the formals, and every [var]-declared local, scoped
      to the whole method regardless of declaration position;
    - qualified field references [C::f] name the field declared exactly in
      [C]; unqualified references [f] are allowed when exactly one field of
      that name exists in the program;
    - static calls and entry points [C::m/k] find [m/k] declared in [C] or
      inherited through the [super] chain. *)
