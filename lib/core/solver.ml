module Int_set = Ipa_support.Int_set
module Pair_tbl = Ipa_support.Pair_tbl
module Dynarr = Ipa_support.Dynarr
module Union_find = Ipa_support.Union_find
module Int_heap = Ipa_support.Int_heap
module Domain_pool = Ipa_support.Domain_pool
module Program = Ipa_ir.Program
module Node = Solution.Node

type worklist_order = Lifo | Fifo | Topo

type config = {
  default_strategy : Strategy.t;
  refined_strategy : Strategy.t;
  refine : Refine.t;
  budget : int;
  order : worklist_order;
  collapse_cycles : bool;
  field_sensitive : bool;
  shards : int;
}

let plain _p ?(budget = 0) ?(shards = 1) strategy =
  {
    default_strategy = strategy;
    refined_strategy = strategy;
    refine = Refine.None_;
    budget;
    order = Topo;
    collapse_cycles = true;
    field_sensitive = true;
    shards;
  }

exception Out_of_budget

(* Static uses of a variable as the base of a load, store, or virtual call.
   Precomputed per variable; consulted whenever a (var, ctx) node gains
   objects. *)
type use =
  | Use_load of { target : int; field : int }
  | Use_store of { source : int; field : int }
  | Use_vcall of int

(* Copy edges carry a type-filter specification: a conjunction of positive
   ("is a subtype of c") and negative ("is not a subtype of c") constraints.
   Casts use a single positive constraint; exception-handler routing chains
   use one positive plus the negations of all earlier clauses. Specs are
   hash-consed into small ids; spec 0 is the empty (always-true) spec.
   Within a spec array, [c + 1] encodes a positive constraint on class [c]
   and [-(c + 1)] a negative one. *)
module Filters = struct
  type t = int array Ipa_support.Interner.t

  let create () : t =
    let t = Ipa_support.Interner.create ~dummy:[||] () in
    let zero = Ipa_support.Interner.intern t [||] in
    assert (zero = 0);
    t

  let none = 0
  let pos c = c + 1
  let neg c = -(c + 1)
  let intern = Ipa_support.Interner.intern

  let passes t p spec cls =
    spec = none
    || Array.for_all
         (fun entry ->
           if entry > 0 then Ipa_ir.Program.subtype p ~sub:cls ~super:(entry - 1)
           else not (Ipa_ir.Program.subtype p ~sub:cls ~super:(-entry - 1)))
         (Ipa_support.Interner.value t spec)
end

(* Edges are packed into one int: destination node in the high bits, the
   filter-spec id in the low 21 bits. A spec id past the field width would
   silently corrupt the destination, so overflow is a hard failure even in
   release builds (a bare [assert] would compile away under [-noassert]). *)
let filter_bits = 21
let filter_mask = (1 lsl filter_bits) - 1

let pack_edge ~dst ~spec =
  if spec < 0 || spec > filter_mask then
    invalid_arg
      (Printf.sprintf "Solver.pack_edge: filter spec %d outside the %d-bit field" spec
         filter_bits);
  (dst lsl filter_bits) lor spec

let edge_dst e = e lsr filter_bits
let edge_spec e = e land filter_mask

(* Call-graph dedup keys pack two dense pair ids side by side; both halves
   must fit in [cg_key_bits] bits (2 * 31 = 62 < Sys.int_size). *)
let cg_key_bits = 31

(* Topological worklist keys pack (rank, node) into one int: rank in the
   high bits so the heap drains low ranks (copy-graph sources) first, node
   id in the low bits as a deterministic tie-break. Node ids are pair ids
   (< 2^31) times 4, so 33 bits; ranks are clamped below 2^28, keeping the
   key within 61 bits. Nodes born after the last sweep carry the maximum
   rank and drain last. *)
let rank_bits = 33
let unranked = (1 lsl 28) - 1
let rank_cap = unranked - 1
let heap_key ~rank ~node = (rank lsl rank_bits) lor node
let heap_node key = key land ((1 lsl rank_bits) - 1)

(* Sweep trigger: a Tarjan pass costs O(nodes + edges), so it runs at most
   once per [sweep_min_attempts] insertion attempts, and only when the
   attempt/gain ratio says propagation is mostly re-delivering known
   objects — the signature of cycles and of a stale topological order. *)
let sweep_min_attempts = 4096
let sweep_ratio = 4

(* Bound on nodes visited by the insertion-time cycle walk; cycles longer
   than this are left for the next Tarjan sweep. *)
let walk_visit_budget = 32

(* FIFO consumed-prefix compaction threshold (satellite fix: the prefix used
   to grow unreclaimed for the whole solve). *)
let fifo_compact_threshold = 1024

type state = {
  p : Program.t;
  cfg : config;
  ctxs : Ctx.t;
  objs : Pair_tbl.t; (* (heap, hctx) *)
  var_nodes : Pair_tbl.t; (* (var, ctx) *)
  fld_nodes : Pair_tbl.t; (* (obj, field) *)
  (* Per-node state, indexed by the Solution.Node encoding. All of it lives
     on the node's current representative; merged-away nodes have their
     slots cleared. *)
  pts : Int_set.t option Dynarr.t;
  edges : int Dynarr.t option Dynarr.t;
  (* Dedup index over [edges]: built lazily once a node's out-degree crosses
     the linear-scan threshold; [None] while a scan of the edge list itself
     is cheaper than a set lookup. *)
  edge_seen : Int_set.t option Dynarr.t;
  pending : int Dynarr.t option Dynarr.t;
  on_list : bool Dynarr.t;
  worklist : int Dynarr.t;
  mutable worklist_head : int; (* consumed prefix, FIFO mode *)
  heap : Int_heap.t; (* Topo mode *)
  rank : int Dynarr.t; (* reverse-postorder rank from the last sweep *)
  (* Cycle elimination. [member_count n] is the number of original nodes a
     representative stands for; [use_members n] lists merged-away var nodes
     whose base uses must fire on the representative's batches. *)
  uf : Union_find.t;
  member_count : int Dynarr.t;
  use_members : int Dynarr.t option Dynarr.t;
  mutable in_merge : bool;
  mutable attempts_since_sweep : int;
  mutable gains_since_sweep : int;
  reach : Pair_tbl.t; (* (meth, ctx) *)
  cg : int Dynarr.t; (* flattened 4-tuples *)
  cg_caller : Pair_tbl.t; (* (invo, callerCtx) *)
  cg_seen : Int_set.t; (* packed (caller-pair, reach-pair) *)
  base_uses : use list array;
  filters : Filters.t;
  (* Compositional solving. [replay] substitutes compiled per-method
     constraint modules for the instruction walk of [process_body] (same
     stream, same order — byte-identity is preserved). The incremental mode
     seeds the state from a baseline fixpoint: while [seeding] is set,
     [spend] neither counts nor enforces the budget (the facts are not new),
     and bodies of methods marked in [defer_body] — the dirty components of
     an edit — are postponed, along with the base-use consumptions of their
     variables, to the counted phase that follows. *)
  replay : Summary.ops option;
  mutable seeding : bool;
  defer_body : bool array;
  deferred_bodies : int Dynarr.t; (* reach ids whose body processing waits *)
  deferred_uses : int Dynarr.t; (* flattened (var-node pair id, obj) *)
  (* Per method: the filter spec of each catch clause (the clause's type
     positively, all earlier clause types negatively) and the escape spec
     (every clause type negatively). *)
  catch_specs : (int array * int) option array;
  mutable derivations : int;
  (* Instrumentation (Solution.counters). *)
  mutable edges_added : int;
  mutable edges_deduped : int;
  mutable batches : int;
  mutable batch_objs : int;
  mutable max_batch : int;
  mutable cycles_collapsed : int;
  mutable nodes_merged : int;
  mutable repropagations_avoided : int;
  mutable sync_rounds : int;
  mutable deltas_exchanged : int;
  mutable cross_shard_edges : int;
}

let compute_base_uses (p : Program.t) : use list array =
  let uses = Array.make (Program.n_vars p) [] in
  let add v u = uses.(v) <- u :: uses.(v) in
  for m = 0 to Program.n_meths p - 1 do
    Array.iter
      (fun (i : Program.instr) ->
        match i with
        | Load { target; base; field } -> add base (Use_load { target; field })
        | Store { base; field; source } -> add base (Use_store { source; field })
        | Call invo -> (
          match (Program.invo_info p invo).call with
          | Virtual { base; _ } -> add base (Use_vcall invo)
          | Static _ -> ())
        | Alloc _ | Move _ | Cast _ | Load_static _ | Store_static _ | Return _ | Throw _ ->
          ())
      (Program.meth_info p m).body
  done;
  uses

let create ?replay ?defer p cfg =
  {
    p;
    cfg;
    replay;
    seeding = false;
    defer_body =
      (match defer with
      | Some d -> d
      | None -> Array.make (Program.n_meths p) false);
    deferred_bodies = Dynarr.create ~capacity:16 ~dummy:0 ();
    deferred_uses = Dynarr.create ~capacity:64 ~dummy:0 ();
    ctxs = Ctx.create ();
    objs = Pair_tbl.create ~capacity:1024 ();
    var_nodes = Pair_tbl.create ~capacity:1024 ();
    fld_nodes = Pair_tbl.create ~capacity:1024 ();
    pts = Dynarr.create ~capacity:1024 ~dummy:None ();
    edges = Dynarr.create ~capacity:1024 ~dummy:None ();
    edge_seen = Dynarr.create ~capacity:1024 ~dummy:None ();
    pending = Dynarr.create ~capacity:1024 ~dummy:None ();
    on_list = Dynarr.create ~capacity:1024 ~dummy:false ();
    worklist = Dynarr.create ~capacity:1024 ~dummy:0 ();
    worklist_head = 0;
    heap = Int_heap.create ~capacity:1024 ();
    rank = Dynarr.create ~capacity:1024 ~dummy:unranked ();
    uf = Union_find.create ~capacity:1024 ();
    member_count = Dynarr.create ~capacity:1024 ~dummy:1 ();
    use_members = Dynarr.create ~capacity:1024 ~dummy:None ();
    in_merge = false;
    attempts_since_sweep = 0;
    gains_since_sweep = 0;
    reach = Pair_tbl.create ~capacity:1024 ();
    cg = Dynarr.create ~capacity:4096 ~dummy:0 ();
    cg_caller = Pair_tbl.create ~capacity:1024 ();
    cg_seen = Int_set.create ~capacity:1024 ();
    base_uses = compute_base_uses p;
    filters = Filters.create ();
    catch_specs = Array.make (Program.n_meths p) None;
    derivations = 0;
    edges_added = 0;
    edges_deduped = 0;
    batches = 0;
    batch_objs = 0;
    max_batch = 0;
    cycles_collapsed = 0;
    nodes_merged = 0;
    repropagations_avoided = 0;
    sync_rounds = 0;
    deltas_exchanged = 0;
    cross_shard_edges = 0;
  }

let ensure_node st n =
  while Dynarr.length st.pts <= n do
    Dynarr.push st.pts None;
    Dynarr.push st.edges None;
    Dynarr.push st.edge_seen None;
    Dynarr.push st.pending None;
    Dynarr.push st.on_list false;
    Dynarr.push st.rank unranked;
    Dynarr.push st.member_count 1;
    Dynarr.push st.use_members None
  done

let node_pts st n =
  ensure_node st n;
  match Dynarr.get st.pts n with
  | Some s -> s
  | None ->
    let s = Int_set.create ~capacity:8 () in
    Dynarr.set st.pts n (Some s);
    s

let node_edges st n =
  ensure_node st n;
  match Dynarr.get st.edges n with
  | Some d -> d
  | None ->
    let d = Dynarr.create ~capacity:4 ~dummy:0 () in
    Dynarr.set st.edges n (Some d);
    d

let node_pending st n =
  ensure_node st n;
  match Dynarr.get st.pending n with
  | Some d -> d
  | None ->
    let d = Dynarr.create ~capacity:4 ~dummy:0 () in
    Dynarr.set st.pending n (Some d);
    d

let node_use_members st n =
  ensure_node st n;
  match Dynarr.get st.use_members n with
  | Some d -> d
  | None ->
    let d = Dynarr.create ~capacity:2 ~dummy:0 () in
    Dynarr.set st.use_members n (Some d);
    d

let spend st =
  (* Seeded facts are re-assertions of a baseline fixpoint, not new
     derivations: they are neither counted nor charged to the budget. *)
  if not st.seeding then begin
    st.derivations <- st.derivations + 1;
    if st.cfg.budget > 0 && st.derivations > st.cfg.budget then raise Out_of_budget
  end

(* [spend] one at a time so the budget aborts at exactly [budget + 1]
   derivations, as it would without collapsing. *)
let spend_n st n =
  for _ = 1 to n do
    spend st
  done

(* The caller must have resolved and ensured [n]. *)
let enqueue st n =
  if not (Dynarr.get st.on_list n) then begin
    Dynarr.set st.on_list n true;
    match st.cfg.order with
    | Topo -> Int_heap.push st.heap (heap_key ~rank:(Dynarr.get st.rank n) ~node:n)
    | Lifo | Fifo -> Dynarr.push st.worklist n
  end

let var_node st var ctx = Node.of_var_node (Pair_tbl.intern st.var_nodes var ctx)

(* Field-sensitive: one node per (object, field). With field sensitivity off
   ("field-based" analysis), all base objects collapse onto a single node per
   field, i.e. fields behave like static fields. *)
let fld_node st obj field =
  let obj = if st.cfg.field_sensitive then obj else 0 in
  Node.of_fld_node (Pair_tbl.intern st.fld_nodes obj field)

let heap_class st heap = (Program.heap_info st.p heap).heap_class

(* The per-clause and escape filter specs of a method's catch chain. *)
let catch_specs st meth =
  match st.catch_specs.(meth) with
  | Some specs -> specs
  | None ->
    let clauses = (Program.meth_info st.p meth).catches in
    let clause_specs =
      Array.mapi
        (fun i (clause : Program.catch_clause) ->
          let spec = Array.make (i + 1) 0 in
          spec.(0) <- Filters.pos clause.catch_type;
          for j = 0 to i - 1 do
            spec.(j + 1) <- Filters.neg clauses.(j).catch_type
          done;
          Filters.intern st.filters spec)
        clauses
    in
    let escape =
      if Array.length clauses = 0 then Filters.none
      else
        Filters.intern st.filters
          (Array.map (fun (c : Program.catch_clause) -> Filters.neg c.catch_type) clauses)
    in
    let specs = (clause_specs, escape) in
    st.catch_specs.(meth) <- Some specs;
    specs

let var_has_uses st vn = st.base_uses.(Pair_tbl.fst st.var_nodes vn) <> []
let edge_linear_threshold = 16

(* Everything from object insertion to call-graph growth is mutually
   recursive once merging is online: merging a group applies the merged
   variables' base uses, which can dispatch calls, which process new method
   bodies, which add edges, which can close new cycles. *)

(* Insert [obj] into [pts(node)], respecting the edge's filter spec. With
   collapsing, the insertion lands on the node's representative and counts
   one derivation per merged member, so [derivations] stays the semantic
   (uncollapsed) insertion count and budget-exceeded runs abort at the same
   point they always did. *)
let rec add_obj st node obj ~spec =
  let node = Union_find.find st.uf node in
  st.attempts_since_sweep <- st.attempts_since_sweep + 1;
  if Filters.passes st.filters st.p spec (heap_class st (Pair_tbl.fst st.objs obj)) then begin
    let s = node_pts st node in
    if Int_set.add s obj then begin
      st.gains_since_sweep <- st.gains_since_sweep + 1;
      let k = Dynarr.get st.member_count node in
      spend_n st k;
      st.repropagations_avoided <- st.repropagations_avoided + k - 1;
      Dynarr.push (node_pending st node) obj;
      enqueue st node
    end
  end

(* Duplicate copy edges used to be pushed blindly, so every pending batch
   re-propagated across them and every re-add re-flushed the full source
   set. Dedup instead: a linear scan of the edge list while the out-degree
   is small, a lazily-built seen-set once it is not. *)
and add_edge st ~src ~dst ~spec =
  let src = Union_find.find st.uf src in
  let dst = Union_find.find st.uf dst in
  if src = dst then
    (* A self copy edge can never add anything (its filtered image is a
       subset of the set itself) — count it with the duplicates. *)
    st.edges_deduped <- st.edges_deduped + 1
  else begin
    let packed = pack_edge ~dst ~spec in
    let es = node_edges st src in
    let fresh =
      match Dynarr.get st.edge_seen src with
      | Some seen -> Int_set.add seen packed
      | None ->
        let n = Dynarr.length es in
        if n < edge_linear_threshold then begin
          let rec scan i = i < n && (Dynarr.get es i = packed || scan (i + 1)) in
          not (scan 0)
        end
        else begin
          let seen = Int_set.create ~capacity:(2 * n) () in
          Dynarr.iter (fun e -> ignore (Int_set.add seen e)) es;
          Dynarr.set st.edge_seen src (Some seen);
          Int_set.add seen packed
        end
    in
    if fresh then begin
      st.edges_added <- st.edges_added + 1;
      Dynarr.push es packed;
      (match Dynarr.get st.pts src with
      | None -> ()
      | Some s -> Int_set.iter (fun obj -> add_obj st dst obj ~spec) s);
      if st.cfg.collapse_cycles && spec = Filters.none && not st.in_merge then
        try_collapse st ~src ~dst
    end
    else st.edges_deduped <- st.edges_deduped + 1
  end

(* The new unfiltered edge [src -> dst] closes a cycle iff [src] is
   reachable from [dst] over unfiltered edges. Walk a bounded DFS from
   [dst]; on a hit, merge the discovered path (it is a cycle together with
   the new edge). Longer cycles are left for the periodic Tarjan sweep. *)
and try_collapse st ~src ~dst =
  let visited = Int_set.create ~capacity:16 () in
  ignore (Int_set.add visited dst);
  let parent = Hashtbl.create 16 in
  let stack = ref [ dst ] in
  let found = ref false in
  let visits = ref 0 in
  let n_nodes = Dynarr.length st.edges in
  while (not !found) && !stack <> [] && !visits < walk_visit_budget do
    match !stack with
    | [] -> assert false
    | n :: rest ->
      stack := rest;
      incr visits;
      if n < n_nodes then begin
        match Dynarr.get st.edges n with
        | None -> ()
        | Some es ->
          let len = Dynarr.length es in
          let i = ref 0 in
          while (not !found) && !i < len do
            let packed = Dynarr.get es !i in
            incr i;
            if edge_spec packed = Filters.none then begin
              let d = Union_find.find st.uf (edge_dst packed) in
              if d = src then begin
                Hashtbl.replace parent src n;
                found := true
              end
              else if d <> n && Int_set.add visited d then begin
                Hashtbl.replace parent d n;
                stack := d :: !stack
              end
            end
          done
      end
  done;
  if !found then begin
    let members = ref [ src ] in
    let cur = ref src in
    while !cur <> dst do
      let p = Hashtbl.find parent !cur in
      members := p :: !members;
      cur := p
    done;
    merge_group st !members
  end

(* Merge a set of mutually-cycle-connected representatives into one class,
   keyed by the minimum node id (deterministic regardless of discovery
   order). Re-entrant cycle detection is suppressed for the duration: the
   edges a merge itself inserts are picked up by later walks and sweeps. *)
and merge_group st members =
  let members = List.sort_uniq compare (List.map (Union_find.find st.uf) members) in
  match members with
  | [] | [ _ ] -> ()
  | rep :: losers ->
    st.cycles_collapsed <- st.cycles_collapsed + 1;
    let saved = st.in_merge in
    st.in_merge <- true;
    List.iter (fun l -> merge_into st ~rep ~loser:l) losers;
    st.in_merge <- saved

and merge_into st ~rep ~loser =
  ensure_node st (max rep loser);
  Union_find.union st.uf ~winner:rep ~loser;
  st.nodes_merged <- st.nodes_merged + 1;
  let cr = Dynarr.get st.member_count rep in
  let cl = Dynarr.get st.member_count loser in
  Dynarr.set st.member_count rep (cr + cl);
  (* Union the points-to sets. Derivation attribution: every object new to
     one side is a semantic insertion for each member of the other side, so
     the running total still equals the uncollapsed insertion count. *)
  (match Dynarr.get st.pts loser with
  | None -> (
    match Dynarr.get st.pts rep with
    | None -> ()
    | Some pr ->
      let n = Int_set.cardinal pr in
      st.repropagations_avoided <- st.repropagations_avoided + (cl * n);
      spend_n st (cl * n))
  | Some pl ->
    let pr = node_pts st rep in
    let common = Int_set.fold (fun o acc -> if Int_set.mem pr o then acc + 1 else acc) pl 0 in
    let fresh_to_rep = Int_set.cardinal pl - common in
    let fresh_to_loser = Int_set.cardinal pr - common in
    spend_n st ((cr * fresh_to_rep) + (cl * fresh_to_loser));
    st.repropagations_avoided <-
      st.repropagations_avoided + ((cr - 1) * fresh_to_rep) + (cl * fresh_to_loser);
    if fresh_to_rep > 0 then begin
      let pending = node_pending st rep in
      Int_set.iter (fun o -> if Int_set.add pr o then Dynarr.push pending o) pl;
      enqueue st rep
    end;
    Dynarr.set st.pts loser None);
  (* Splice the loser's out-edges onto the representative. [add_edge]
     resolves, drops the resulting self-loops, dedups against the rep's
     list, and re-flushes the (now unioned) source set along each spliced
     edge — which also covers whatever sat undrained in the loser's pending
     batch. *)
  (match Dynarr.get st.edges loser with
  | None -> ()
  | Some les ->
    Dynarr.set st.edges loser None;
    Dynarr.set st.edge_seen loser None;
    Dynarr.iter
      (fun packed -> add_edge st ~src:rep ~dst:(edge_dst packed) ~spec:(edge_spec packed))
      les);
  Dynarr.set st.pending loser None;
  Dynarr.set st.on_list loser false;
  (* Base uses of merged-away var nodes keep firing on the representative's
     future batches; fire them once now over the full union so objects the
     loser had never seen are covered. Duplicate applications are no-ops. *)
  let transferred = Dynarr.create ~capacity:2 ~dummy:0 () in
  (match Node.kind loser with
  | Node.Var_node vn when var_has_uses st vn -> Dynarr.push transferred loser
  | _ -> ());
  (match Dynarr.get st.use_members loser with
  | None -> ()
  | Some ms ->
    Dynarr.set st.use_members loser None;
    Dynarr.iter (fun m -> Dynarr.push transferred m) ms);
  if Dynarr.length transferred > 0 then begin
    let rum = node_use_members st rep in
    Dynarr.iter (fun m -> Dynarr.push rum m) transferred;
    let objs =
      match Dynarr.get st.pts rep with
      | None -> []
      | Some s -> Int_set.to_sorted_list s
    in
    Dynarr.iter
      (fun m ->
        match Node.kind m with
        | Node.Var_node vn -> List.iter (fun obj -> apply_var_uses st vn obj) objs
        | _ -> assert false)
      transferred
  end

and apply_var_uses st vn obj =
  let var = Pair_tbl.fst st.var_nodes vn in
  if st.seeding && st.defer_body.((Program.var_info st.p var).var_owner) then begin
    (* All uses of a variable sit in its owner's body. If that body is
       dirty, its loads/stores/dispatches may be new — firing them while
       seeding would derive new facts uncounted. Buffer the consumption and
       fire it in the counted phase (re-derived old edges dedup there). *)
    Dynarr.push st.deferred_uses vn;
    Dynarr.push st.deferred_uses obj
  end
  else apply_var_uses_now st vn obj

and apply_var_uses_now st vn obj =
  let var = Pair_tbl.fst st.var_nodes vn in
  let ctx = Pair_tbl.snd st.var_nodes vn in
  List.iter
    (fun use ->
      match use with
      | Use_load { target; field } ->
        add_edge st ~src:(fld_node st obj field) ~dst:(var_node st target ctx)
          ~spec:Filters.none
      | Use_store { source; field } ->
        add_edge st ~src:(var_node st source ctx) ~dst:(fld_node st obj field)
          ~spec:Filters.none
      | Use_vcall invo -> dispatch_call st ~invo ~ctx obj)
    st.base_uses.(var)

and cast_spec st cls = Filters.intern st.filters [| Filters.pos cls |]

(* Route exceptional flow out of [src] through the catch chain of the
   handling method instance [(handler, ctx)]: matched objects are bound to
   the clause variables, the rest escape to the handler's own exception
   node. *)
and route_exceptions st ~src ~handler ~ctx ~handler_reach_id =
  let clauses = (Program.meth_info st.p handler).catches in
  let clause_specs, escape_spec = catch_specs st handler in
  Array.iteri
    (fun i (clause : Program.catch_clause) ->
      add_edge st ~src ~dst:(var_node st clause.catch_var ctx) ~spec:clause_specs.(i))
    clauses;
  add_edge st ~src ~dst:(Node.of_exc handler_reach_id) ~spec:escape_spec

(* Mark (meth, ctx) reachable, processing the body on first sight; returns
   the dense id of the pair. *)
and ensure_reachable st meth ctx =
  match Pair_tbl.find_opt st.reach meth ctx with
  | Some id -> id
  | None ->
    let id = Pair_tbl.intern st.reach meth ctx in
    spend st;
    if st.seeding && st.defer_body.(meth) then Dynarr.push st.deferred_bodies id
    else process_body st meth ctx ~reach_id:id;
    id

and process_body st meth ctx ~reach_id =
  match st.replay with
  | Some ops -> replay_body st ops.(meth) meth ctx ~reach_id
  | None -> process_body_instrs st meth ctx ~reach_id

(* Replay a compiled constraint module: the exact constraint stream of
   [process_body_instrs], in the same order (loads, stores and virtual
   calls emit nothing there either — they are base-use-driven). *)
and replay_body st ops meth ctx ~reach_id =
  Array.iter
    (fun (op : Summary.op) ->
      match op with
      | Summary.O_alloc { target; heap } ->
        let strat =
          if Refine.refine_object st.cfg.refine heap then st.cfg.refined_strategy
          else st.cfg.default_strategy
        in
        let hctx = strat.record st.ctxs ~heap ~ctx in
        let obj = Pair_tbl.intern st.objs heap hctx in
        add_obj st (var_node st target ctx) obj ~spec:Filters.none
      | Summary.O_copy { target; source } ->
        add_edge st ~src:(var_node st source ctx) ~dst:(var_node st target ctx)
          ~spec:Filters.none
      | Summary.O_cast { target; source; cast_to } ->
        add_edge st ~src:(var_node st source ctx) ~dst:(var_node st target ctx)
          ~spec:(cast_spec st cast_to)
      | Summary.O_load_static { target; field } ->
        add_edge st ~src:(Node.of_static_fld field) ~dst:(var_node st target ctx)
          ~spec:Filters.none
      | Summary.O_store_static { field; source } ->
        add_edge st ~src:(var_node st source ctx) ~dst:(Node.of_static_fld field)
          ~spec:Filters.none
      | Summary.O_scall { invo; callee } ->
        let strat =
          if Refine.refine_site st.cfg.refine ~invo ~meth:callee then st.cfg.refined_strategy
          else st.cfg.default_strategy
        in
        let callee_ctx = strat.merge_static st.ctxs ~invo ~caller:ctx in
        add_cg_edge st ~invo ~caller_ctx:ctx ~meth:callee ~callee_ctx
      | Summary.O_throw { source } ->
        route_exceptions st ~src:(var_node st source ctx) ~handler:meth ~ctx
          ~handler_reach_id:reach_id)
    ops

and process_body_instrs st meth ctx ~reach_id =
  let mi = Program.meth_info st.p meth in
  Array.iter
    (fun (i : Program.instr) ->
      match i with
      | Alloc { target; heap } ->
        let strat =
          if Refine.refine_object st.cfg.refine heap then st.cfg.refined_strategy
          else st.cfg.default_strategy
        in
        let hctx = strat.record st.ctxs ~heap ~ctx in
        let obj = Pair_tbl.intern st.objs heap hctx in
        add_obj st (var_node st target ctx) obj ~spec:Filters.none
      | Move { target; source } ->
        add_edge st ~src:(var_node st source ctx) ~dst:(var_node st target ctx)
          ~spec:Filters.none
      | Cast { target; source; cast_to } ->
        add_edge st ~src:(var_node st source ctx) ~dst:(var_node st target ctx)
          ~spec:(cast_spec st cast_to)
      | Load _ | Store _ -> () (* driven by base-variable points-to growth *)
      | Load_static { target; field } ->
        add_edge st ~src:(Node.of_static_fld field) ~dst:(var_node st target ctx)
          ~spec:Filters.none
      | Store_static { field; source } ->
        add_edge st ~src:(var_node st source ctx) ~dst:(Node.of_static_fld field)
          ~spec:Filters.none
      | Call invo -> (
        match (Program.invo_info st.p invo).call with
        | Virtual _ -> () (* driven by receiver points-to growth *)
        | Static { callee } ->
          let strat =
            if Refine.refine_site st.cfg.refine ~invo ~meth:callee then st.cfg.refined_strategy
            else st.cfg.default_strategy
          in
          let callee_ctx = strat.merge_static st.ctxs ~invo ~caller:ctx in
          add_cg_edge st ~invo ~caller_ctx:ctx ~meth:callee ~callee_ctx)
      | Return { source } -> (
        match mi.ret_var with
        | Some ret ->
          add_edge st ~src:(var_node st source ctx) ~dst:(var_node st ret ctx)
            ~spec:Filters.none
        | None -> assert false (* ruled out by Wf *))
      | Throw { source } ->
        route_exceptions st ~src:(var_node st source ctx) ~handler:meth ~ctx
          ~handler_reach_id:reach_id)
    mi.body

(* Record a context-sensitive call-graph edge; on first sight, make the
   callee reachable and wire up parameter and return copy edges. *)
and add_cg_edge st ~invo ~caller_ctx ~meth ~callee_ctx =
  let callee_id = ensure_reachable st meth callee_ctx in
  let caller_id = Pair_tbl.intern st.cg_caller invo caller_ctx in
  (* The seen-key packs both dense pair ids into one 62-bit int. Ids are
     interned counters, so 2^31 of either means a run astronomically past
     any budget — but guard explicitly: a silent wrap would collide two
     distinct call-graph edges and drop one unsoundly. *)
  if caller_id lsr cg_key_bits <> 0 || callee_id lsr cg_key_bits <> 0 then
    failwith
      (Printf.sprintf
         "Solver.add_cg_edge: call-graph pair id (%d, %d) exceeds the %d-bit packed key space"
         caller_id callee_id cg_key_bits);
  let key = (caller_id lsl cg_key_bits) lor callee_id in
  if Int_set.add st.cg_seen key then begin
    spend st;
    Dynarr.push st.cg invo;
    Dynarr.push st.cg caller_ctx;
    Dynarr.push st.cg meth;
    Dynarr.push st.cg callee_ctx;
    let ii = Program.invo_info st.p invo in
    let mi = Program.meth_info st.p meth in
    Array.iteri
      (fun idx actual ->
        add_edge st
          ~src:(var_node st actual caller_ctx)
          ~dst:(var_node st mi.formals.(idx) callee_ctx)
          ~spec:Filters.none)
      ii.actuals;
    (match (ii.recv, mi.ret_var) with
    | Some recv, Some ret ->
      add_edge st ~src:(var_node st ret callee_ctx) ~dst:(var_node st recv caller_ctx)
        ~spec:Filters.none
    | _ -> ());
    (* Exceptions escaping the callee flow through the caller's catch
       chain. The caller instance is necessarily reachable already. *)
    let caller_meth = ii.invo_owner in
    let caller_reach_id = Pair_tbl.intern st.reach caller_meth caller_ctx in
    route_exceptions st ~src:(Node.of_exc callee_id) ~handler:caller_meth ~ctx:caller_ctx
      ~handler_reach_id:caller_reach_id
  end

and dispatch_call st ~invo ~ctx obj =
  let ii = Program.invo_info st.p invo in
  match ii.call with
  | Static _ -> assert false
  | Virtual { base = _; signature } -> (
    let heap = Pair_tbl.fst st.objs obj in
    let hctx = Pair_tbl.snd st.objs obj in
    match Program.dispatch st.p (heap_class st heap) signature with
    | None -> () (* unresolved dispatch: a would-be runtime error *)
    | Some target ->
      let strat =
        if Refine.refine_site st.cfg.refine ~invo ~meth:target then st.cfg.refined_strategy
        else st.cfg.default_strategy
      in
      let callee_ctx = strat.merge st.ctxs ~heap ~hctx ~invo ~caller:ctx in
      add_cg_edge st ~invo ~caller_ctx:ctx ~meth:target ~callee_ctx;
      (match (Program.meth_info st.p target).this_var with
      | Some this -> add_obj st (var_node st this callee_ctx) obj ~spec:Filters.none
      | None -> ()))

let process_node st n =
  Dynarr.set st.on_list n false;
  (* The batch is the pending prefix present when processing starts; it is
     consumed exactly once, so it is iterated in place (no [to_array] copy)
     and dropped at the end. [add_obj] may append to the same pending array
     mid-batch; those objects stay for the node's next worklist round. *)
  let pending = node_pending st n in
  let n_batch = Dynarr.length pending in
  st.batches <- st.batches + 1;
  st.batch_objs <- st.batch_objs + n_batch;
  if n_batch > st.max_batch then st.max_batch <- n_batch;
  (* Propagate along the copy edges present when processing starts; edges
     added mid-batch flush the full points-to set themselves. *)
  let es = node_edges st n in
  let n_edges = Dynarr.length es in
  for e = 0 to n_edges - 1 do
    let packed = Dynarr.get es e in
    let dst = edge_dst packed in
    let spec = edge_spec packed in
    Dynarr.iter_prefix (fun obj -> add_obj st dst obj ~spec) pending ~n:n_batch
  done;
  (match Node.kind n with
  | Node.Fld_node _ | Node.Static_fld _ | Node.Exc_node _ -> ()
  | Node.Var_node vn ->
    if var_has_uses st vn then
      Dynarr.iter_prefix (fun obj -> apply_var_uses st vn obj) pending ~n:n_batch);
  (* Uses of var nodes merged into this representative fire on the same
     batch. Members merged in mid-batch were already applied over the full
     union at merge time, so missing them here loses nothing. *)
  (match Dynarr.get st.use_members n with
  | None -> ()
  | Some ms ->
    Dynarr.iter
      (fun m ->
        match Node.kind m with
        | Node.Var_node vn ->
          Dynarr.iter_prefix (fun obj -> apply_var_uses st vn obj) pending ~n:n_batch
        | _ -> assert false)
      ms);
  Dynarr.drop_prefix pending n_batch

(* ------------------------------------------------------------------ *)
(* Periodic sweep: Tarjan SCC collapse over the unfiltered copy graph,
   then a reverse-postorder re-ranking of the full copy graph for the
   topological worklist. Triggered by the re-propagation ratio. *)

let should_sweep st =
  (st.cfg.collapse_cycles || st.cfg.order = Topo)
  && st.attempts_since_sweep >= sweep_min_attempts
  && st.attempts_since_sweep > sweep_ratio * max 1 st.gains_since_sweep

(* Iterative Tarjan (explicit frame stack — copy chains can be deep) over
   the representatives' unfiltered edges; returns components of size >= 2 in
   a deterministic order. *)
let find_sccs st =
  let n_nodes = Dynarr.length st.edges in
  let index = Array.make (max 1 n_nodes) (-1) in
  let lowlink = Array.make (max 1 n_nodes) 0 in
  let on_stack = Array.make (max 1 n_nodes) false in
  let scc_stack = ref [] in
  let next_index = ref 0 in
  let sccs = ref [] in
  let frame_node = Dynarr.create ~capacity:64 ~dummy:0 () in
  let frame_edge = Dynarr.create ~capacity:64 ~dummy:0 () in
  let discover v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    on_stack.(v) <- true;
    scc_stack := v :: !scc_stack;
    Dynarr.push frame_node v;
    Dynarr.push frame_edge 0
  in
  let successor v i =
    (* The [i]-th unfiltered, resolved, non-self successor of [v], scanning
       from edge index [i]; returns (next index, successor option). *)
    match Dynarr.get st.edges v with
    | None -> (i, None)
    | Some es ->
      let len = Dynarr.length es in
      let rec scan i =
        if i >= len then (i, None)
        else begin
          let packed = Dynarr.get es i in
          if edge_spec packed <> Filters.none then scan (i + 1)
          else begin
            let d = Union_find.find st.uf (edge_dst packed) in
            if d = v || d >= n_nodes then scan (i + 1) else (i + 1, Some d)
          end
        end
      in
      scan i
  in
  for root = 0 to n_nodes - 1 do
    if Union_find.find st.uf root = root && index.(root) = -1 then begin
      discover root;
      while Dynarr.length frame_node > 0 do
        let top = Dynarr.length frame_node - 1 in
        let v = Dynarr.get frame_node top in
        let i, succ = successor v (Dynarr.get frame_edge top) in
        Dynarr.set frame_edge top i;
        match succ with
        | Some w when index.(w) = -1 -> discover w
        | Some w ->
          if on_stack.(w) && index.(w) < lowlink.(v) then lowlink.(v) <- index.(w)
        | None ->
          (* v is exhausted: pop, propagate lowlink, close the component. *)
          ignore (Dynarr.pop frame_node);
          ignore (Dynarr.pop frame_edge);
          (if Dynarr.length frame_node > 0 then begin
             let parent = Dynarr.get frame_node (Dynarr.length frame_node - 1) in
             if lowlink.(v) < lowlink.(parent) then lowlink.(parent) <- lowlink.(v)
           end);
          if lowlink.(v) = index.(v) then begin
            let comp = ref [] in
            let stop = ref false in
            while not !stop do
              match !scc_stack with
              | [] -> assert false
              | w :: rest ->
                scc_stack := rest;
                on_stack.(w) <- false;
                comp := w :: !comp;
                if w = v then stop := true
            done;
            match !comp with
            | [] | [ _ ] -> ()
            | comp -> sccs := comp :: !sccs
          end
      done
    end
  done;
  List.rev !sccs

(* Re-rank every representative by reverse postorder of the full copy graph
   (filtered edges included — they are scheduling topology even though they
   never merge), then rebuild the priority heap so queued nodes adopt their
   new ranks. Deterministic: roots ascend, edge lists scan in order. *)
let recompute_ranks st =
  let n_nodes = Dynarr.length st.edges in
  let state = Array.make (max 1 n_nodes) 0 in
  let order = Dynarr.create ~capacity:(max 16 n_nodes) ~dummy:0 () in
  let frame_node = Dynarr.create ~capacity:64 ~dummy:0 () in
  let frame_edge = Dynarr.create ~capacity:64 ~dummy:0 () in
  let successor v i =
    match Dynarr.get st.edges v with
    | None -> (i, None)
    | Some es ->
      let len = Dynarr.length es in
      let rec scan i =
        if i >= len then (i, None)
        else begin
          let d = Union_find.find st.uf (edge_dst (Dynarr.get es i)) in
          if d >= n_nodes || d = v || state.(d) <> 0 then scan (i + 1) else (i + 1, Some d)
        end
      in
      scan i
  in
  for root = 0 to n_nodes - 1 do
    if Union_find.find st.uf root = root && state.(root) = 0 then begin
      state.(root) <- 1;
      Dynarr.push frame_node root;
      Dynarr.push frame_edge 0;
      while Dynarr.length frame_node > 0 do
        let top = Dynarr.length frame_node - 1 in
        let v = Dynarr.get frame_node top in
        let i, succ = successor v (Dynarr.get frame_edge top) in
        Dynarr.set frame_edge top i;
        match succ with
        | Some w ->
          state.(w) <- 1;
          Dynarr.push frame_node w;
          Dynarr.push frame_edge 0
        | None ->
          ignore (Dynarr.pop frame_node);
          ignore (Dynarr.pop frame_edge);
          Dynarr.push order v
      done
    end
  done;
  let n_order = Dynarr.length order in
  for i = 0 to n_order - 1 do
    let v = Dynarr.get order i in
    Dynarr.set st.rank v (min rank_cap (n_order - 1 - i))
  done;
  Int_heap.clear st.heap;
  for v = 0 to n_nodes - 1 do
    if Union_find.find st.uf v = v && Dynarr.get st.on_list v then
      Int_heap.push st.heap (heap_key ~rank:(Dynarr.get st.rank v) ~node:v)
  done

let sweep st =
  if st.cfg.collapse_cycles then List.iter (fun comp -> merge_group st comp) (find_sccs st);
  if st.cfg.order = Topo then recompute_ranks st;
  st.attempts_since_sweep <- 0;
  st.gains_since_sweep <- 0

(* ------------------------------------------------------------------ *)
(* Sharded solving. A solve with [shards = K >= 2] alternates two phases:

   - a sequential *grow* phase that runs the ordinary machinery (entry
     processing, base uses, call dispatch, merges) and may create nodes and
     edges; and
   - a parallel *propagate* phase that closes the points-to sets over the
     copy graph frozen at the round boundary. Each shard drains its own
     topology-aware worklist on a pooled domain, delivering to locally-owned
     nodes directly and to foreign nodes through per-destination outboxes
     that the coordinator exchanges at synchronization sub-rounds, always in
     (source-shard, send-sequence) order. Propagation fires no base uses:
     (node, object) consumptions that would fire uses are logged, and the
     merged log — sorted, so the order is canonical and independent of K —
     drives the next grow phase.

   Tarjan sweeps and rank recomputation run on the merged global graph at
   round boundaries only, never per shard, so the per-round state sequence
   (and with it derivations, cycles_collapsed, repropagations_avoided,
   batch_objs) is a pure function of the program, not of K. Together with
   the canonical materialization this makes shards=K solutions byte-identical
   to shards=1. *)

(* Assign [weights] (one per position, in topological order) to [shards]
   contiguous blocks: position [i] goes to shard [prefix(i) * shards / total].
   Each shard's summed weight is at most ceil(total/shards) + max weight, and
   a position (= one SCC representative) is never split. *)
let partition_blocks ~weights ~shards =
  if shards < 1 then invalid_arg "Solver.partition_blocks: shards must be >= 1";
  let total =
    Array.fold_left
      (fun acc w ->
        if w <= 0 then invalid_arg "Solver.partition_blocks: weights must be positive";
        acc + w)
      0 weights
  in
  let assign = Array.make (Array.length weights) 0 in
  let prefix = ref 0 in
  Array.iteri
    (fun i w ->
      assign.(i) <- min (shards - 1) (!prefix * shards / max 1 total);
      prefix := !prefix + w)
    weights;
  assign

type shard = {
  sid : int;
  shard_heap : Int_heap.t; (* local worklist over owned representatives *)
  inbox : int Dynarr.t; (* flattened (node, obj) deltas to apply *)
  outboxes : int Dynarr.t array; (* per-destination flattened (node, obj) *)
  use_log : int Dynarr.t; (* flattened (node, obj) consumptions with uses *)
  (* Per-shard counter deltas, merged into [state] in shard order at each
     synchronization barrier. *)
  mutable s_attempts : int;
  mutable s_gains : int;
  mutable s_derivations : int;
  mutable s_reprop : int;
  mutable s_batches : int;
  mutable s_batch_objs : int;
  mutable s_max_batch : int;
  mutable s_deltas : int;
  mutable s_promotions : int;
}

let make_shard ~sid ~shards =
  {
    sid;
    shard_heap = Int_heap.create ~capacity:256 ();
    inbox = Dynarr.create ~capacity:64 ~dummy:0 ();
    outboxes = Array.init shards (fun _ -> Dynarr.create ~capacity:64 ~dummy:0 ());
    use_log = Dynarr.create ~capacity:64 ~dummy:0 ();
    s_attempts = 0;
    s_gains = 0;
    s_derivations = 0;
    s_reprop = 0;
    s_batches = 0;
    s_batch_objs = 0;
    s_max_batch = 0;
    s_deltas = 0;
    s_promotions = 0;
  }

(* The copy graph frozen at a round boundary: [repof] is the union-find
   image of every node (the parallel phase must never call [find] itself —
   path compression mutates), [owner] maps every node to its shard. *)
type frozen_partition = { owner : int array; repof : int array }

(* Partition the frozen graph: SCC representatives sorted by (reverse-
   postorder rank, id) — so each shard's block is contiguous in topological
   order — weighted by 1 + out-degree + |pts|, cut into [shards] blocks.
   Also pre-ensures every possible delivery target (node slots must not grow
   mid-parallel-phase), seeds the per-shard heaps from the on-list flags,
   and counts cross-shard copy edges. *)
let partition_state st shs =
  let shards = Array.length shs in
  let n0 = Dynarr.length st.pts in
  let max_node = ref (n0 - 1) in
  for n = 0 to n0 - 1 do
    match Dynarr.get st.edges n with
    | None -> ()
    | Some es ->
      Dynarr.iter
        (fun packed ->
          let d = edge_dst packed in
          if d > !max_node then max_node := d)
        es
  done;
  if !max_node >= 0 then ensure_node st !max_node;
  let n_nodes = Dynarr.length st.pts in
  let repof = Array.init n_nodes (fun n -> Union_find.find st.uf n) in
  let reps = Dynarr.create ~capacity:(max 16 n_nodes) ~dummy:0 () in
  for n = 0 to n_nodes - 1 do
    if repof.(n) = n then Dynarr.push reps n
  done;
  let reps = Dynarr.to_array reps in
  Array.sort
    (fun a b ->
      let ra = Dynarr.get st.rank a and rb = Dynarr.get st.rank b in
      if ra <> rb then compare ra rb else compare a b)
    reps;
  let weights =
    Array.map
      (fun n ->
        let deg = match Dynarr.get st.edges n with None -> 0 | Some es -> Dynarr.length es in
        let card = match Dynarr.get st.pts n with None -> 0 | Some s -> Int_set.cardinal s in
        1 + deg + card)
      reps
  in
  let assign = partition_blocks ~weights ~shards in
  let owner = Array.make (max 1 n_nodes) 0 in
  Array.iteri (fun i n -> owner.(n) <- assign.(i)) reps;
  for n = 0 to n_nodes - 1 do
    owner.(n) <- owner.(repof.(n))
  done;
  let cross = ref 0 in
  Array.iter
    (fun n ->
      match Dynarr.get st.edges n with
      | None -> ()
      | Some es ->
        Dynarr.iter
          (fun packed ->
            let d = repof.(edge_dst packed) in
            if d <> n && owner.(d) <> owner.(n) then incr cross)
          es)
    reps;
  st.cross_shard_edges <- !cross;
  Array.iter
    (fun n ->
      if Dynarr.get st.on_list n then
        Int_heap.push shs.(owner.(n)).shard_heap (heap_key ~rank:(Dynarr.get st.rank n) ~node:n))
    reps;
  Int_heap.clear st.heap;
  { owner; repof }

(* Deliver [obj] to the locally-owned representative [node]. The mirror of
   [add_obj]'s fresh-insertion branch, with the same derivation attribution
   ([member_count] per fresh object), accumulated shard-locally. *)
let shard_deliver st sh node obj =
  let s = node_pts st node in
  if Int_set.add s obj then begin
    sh.s_gains <- sh.s_gains + 1;
    let k = Dynarr.get st.member_count node in
    sh.s_derivations <- sh.s_derivations + k;
    sh.s_reprop <- sh.s_reprop + k - 1;
    Dynarr.push (node_pending st node) obj;
    if not (Dynarr.get st.on_list node) then begin
      Dynarr.set st.on_list node true;
      Int_heap.push sh.shard_heap (heap_key ~rank:(Dynarr.get st.rank node) ~node)
    end
  end

(* [process_node] without the graph-growing parts: propagate the pending
   batch along the frozen edges (filters evaluated at the source), routing
   foreign destinations through the outboxes, and log the consumptions whose
   base uses must fire in the next sequential grow phase. *)
let shard_process_node st part sh n =
  Dynarr.set st.on_list n false;
  let pending = node_pending st n in
  let n_batch = Dynarr.length pending in
  sh.s_batches <- sh.s_batches + 1;
  sh.s_batch_objs <- sh.s_batch_objs + n_batch;
  if n_batch > sh.s_max_batch then sh.s_max_batch <- n_batch;
  (match Dynarr.get st.edges n with
  | None -> ()
  | Some es ->
    let n_edges = Dynarr.length es in
    for e = 0 to n_edges - 1 do
      let packed = Dynarr.get es e in
      let dst = part.repof.(edge_dst packed) in
      let spec = edge_spec packed in
      if dst <> n then
        Dynarr.iter_prefix
          (fun obj ->
            sh.s_attempts <- sh.s_attempts + 1;
            if Filters.passes st.filters st.p spec (heap_class st (Pair_tbl.fst st.objs obj))
            then begin
              let o = part.owner.(dst) in
              if o = sh.sid then shard_deliver st sh dst obj
              else begin
                let ob = sh.outboxes.(o) in
                Dynarr.push ob dst;
                Dynarr.push ob obj
              end
            end)
          pending ~n:n_batch
    done);
  let has_uses =
    (match Node.kind n with Node.Var_node vn -> var_has_uses st vn | _ -> false)
    || match Dynarr.get st.use_members n with Some ms -> Dynarr.length ms > 0 | None -> false
  in
  if has_uses then
    Dynarr.iter_prefix
      (fun obj ->
        Dynarr.push sh.use_log n;
        Dynarr.push sh.use_log obj)
      pending ~n:n_batch;
  Dynarr.drop_prefix pending n_batch

(* One shard's work in one synchronization sub-round: apply the inbox (the
   concatenation of every shard's outbox for us, in source-shard order),
   then drain the local worklist to empty. Runs on a pooled domain; touches
   only owned node slots plus frozen shared state. *)
let shard_task st part sh =
  let promotions0 = Int_set.promotion_count () in
  let len = Dynarr.length sh.inbox in
  let i = ref 0 in
  while !i < len do
    let node = Dynarr.get sh.inbox !i in
    let obj = Dynarr.get sh.inbox (!i + 1) in
    i := !i + 2;
    sh.s_deltas <- sh.s_deltas + 1;
    shard_deliver st sh node obj
  done;
  Dynarr.clear sh.inbox;
  let exhausted = ref false in
  while not !exhausted do
    match Int_heap.pop_min sh.shard_heap with
    | None -> exhausted := true
    | Some key ->
      let n = heap_node key in
      if Dynarr.get st.on_list n then shard_process_node st part sh n
  done;
  sh.s_promotions <- sh.s_promotions + (Int_set.promotion_count () - promotions0)

(* Move every outbox into its destination inbox, in (source-shard, send
   sequence) order — the delta-application order is therefore deterministic.
   Returns whether anything moved (i.e. another sub-round is needed). *)
let exchange_outboxes shs =
  let k = Array.length shs in
  let any = ref false in
  for dst = 0 to k - 1 do
    let inbox = shs.(dst).inbox in
    for src = 0 to k - 1 do
      let ob = shs.(src).outboxes.(dst) in
      if Dynarr.length ob > 0 then begin
        any := true;
        Dynarr.iter (fun v -> Dynarr.push inbox v) ob;
        Dynarr.clear ob
      end
    done
  done;
  !any

(* Fold the per-shard counter deltas into the solver state, in shard order.
   The budget is deliberately not checked here: sharded propagation settles
   accounts at round boundaries (see [run_sharded]). *)
let merge_shard_counters st shs extra_promotions =
  Array.iter
    (fun sh ->
      st.derivations <- st.derivations + sh.s_derivations;
      st.batches <- st.batches + sh.s_batches;
      st.batch_objs <- st.batch_objs + sh.s_batch_objs;
      if sh.s_max_batch > st.max_batch then st.max_batch <- sh.s_max_batch;
      st.repropagations_avoided <- st.repropagations_avoided + sh.s_reprop;
      st.attempts_since_sweep <- st.attempts_since_sweep + sh.s_attempts;
      st.gains_since_sweep <- st.gains_since_sweep + sh.s_gains;
      st.deltas_exchanged <- st.deltas_exchanged + sh.s_deltas;
      extra_promotions := !extra_promotions + sh.s_promotions;
      sh.s_attempts <- 0;
      sh.s_gains <- 0;
      sh.s_derivations <- 0;
      sh.s_reprop <- 0;
      sh.s_batches <- 0;
      sh.s_batch_objs <- 0;
      sh.s_max_batch <- 0;
      sh.s_deltas <- 0;
      sh.s_promotions <- 0)
    shs

(* Apply the round's use log sequentially. The log is sorted, so the grow
   phase consumes a canonical sequence: each (node, obj) pair was consumed
   exactly once globally during propagation (points-to sets are monotone and
   an object enters a pending batch only on first insertion), making the
   sorted log — and hence everything the grow phase does — independent of
   the shard count. Nodes are re-resolved through the union-find because an
   earlier entry of the same grow phase may have merged them; uses already
   fired over the full union at merge time are no-ops here. *)
let apply_use_log st shs =
  let total = Array.fold_left (fun acc sh -> acc + (Dynarr.length sh.use_log / 2)) 0 shs in
  if total > 0 then begin
    let entries = Array.make total (0, 0) in
    let j = ref 0 in
    Array.iter
      (fun sh ->
        let log = sh.use_log in
        let len = Dynarr.length log in
        let i = ref 0 in
        while !i < len do
          entries.(!j) <- (Dynarr.get log !i, Dynarr.get log (!i + 1));
          incr j;
          i := !i + 2
        done;
        Dynarr.clear log)
      shs;
    Array.sort compare entries;
    Array.iter
      (fun (node, obj) ->
        let node = Union_find.find st.uf node in
        (match Node.kind node with
        | Node.Var_node vn when var_has_uses st vn -> apply_var_uses st vn obj
        | _ -> ());
        match Dynarr.get st.use_members node with
        | None -> ()
        | Some ms ->
          Dynarr.iter
            (fun m ->
              match Node.kind m with
              | Node.Var_node vn -> apply_var_uses st vn obj
              | _ -> assert false)
            ms)
      entries
  end

(* ------------------------------------------------------------------ *)
(* Materialization. Collapse (and the worklist discipline) must be invisible
   above the solver, bit for bit: the solution is renumbered into a
   canonical order — contexts by their element sequences, pair tables by
   their (renumbered) components, call-graph edges sorted — and every
   merged node gets its own copy of the representative's points-to set. The
   resulting tables are a pure function of the semantic fixpoint,
   independent of propagation order, worklist discipline, or collapsing. *)

let cmp_int_arrays a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i = la then 0
      else
        let c = compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

(* Renumber a pair table by sorting on a caller-supplied (already renumbered)
   key; keys are injective, so the order is total and the permutation
   canonical. Returns the rebuilt table and the old-id -> new-id map. *)
let renumber_pairs tbl key_of =
  let n = Pair_tbl.count tbl in
  let keys = Array.init n key_of in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare keys.(a) keys.(b)) order;
  let map = Array.make (max 1 n) 0 in
  Array.iteri (fun new_id old_id -> map.(old_id) <- new_id) order;
  let tbl' = Pair_tbl.create ~capacity:(max 16 n) () in
  Array.iter
    (fun old_id ->
      let k1, k2 = keys.(old_id) in
      let id = Pair_tbl.intern tbl' k1 k2 in
      assert (id = map.(old_id)))
    order;
  (tbl', map)

let materialize st outcome ~set_promotions =
  (* Contexts first: every other table's canonical key depends on them. The
     empty context sorts first (shortest sequence), so it keeps id 0. *)
  let n_ctxs = Ctx.count st.ctxs in
  let ctx_order = Array.init n_ctxs (fun i -> i) in
  Array.sort (fun a b -> cmp_int_arrays (Ctx.elems st.ctxs a) (Ctx.elems st.ctxs b)) ctx_order;
  let ctx_map = Array.make (max 1 n_ctxs) 0 in
  Array.iteri (fun new_id old_id -> ctx_map.(old_id) <- new_id) ctx_order;
  let ctxs' = Ctx.create () in
  Array.iter
    (fun old_id ->
      let id = Ctx.intern ctxs' (Array.copy (Ctx.elems st.ctxs old_id)) in
      assert (id = ctx_map.(old_id)))
    ctx_order;
  let objs', obj_map =
    renumber_pairs st.objs (fun id ->
        (Pair_tbl.fst st.objs id, ctx_map.(Pair_tbl.snd st.objs id)))
  in
  let var_nodes', var_map =
    renumber_pairs st.var_nodes (fun id ->
        (Pair_tbl.fst st.var_nodes id, ctx_map.(Pair_tbl.snd st.var_nodes id)))
  in
  let fld_nodes', fld_map =
    renumber_pairs st.fld_nodes (fun id ->
        (* Field-based mode stores a literal 0 as every base object; keep it
           (it is not an object id there). *)
        let obj = Pair_tbl.fst st.fld_nodes id in
        let obj' = if st.cfg.field_sensitive then obj_map.(obj) else obj in
        (obj', Pair_tbl.snd st.fld_nodes id))
  in
  let reach', reach_map =
    renumber_pairs st.reach (fun id ->
        (Pair_tbl.fst st.reach id, ctx_map.(Pair_tbl.snd st.reach id)))
  in
  let n_cg = Dynarr.length st.cg / 4 in
  let quads =
    Array.init n_cg (fun i ->
        ( Dynarr.get st.cg (4 * i),
          ctx_map.(Dynarr.get st.cg ((4 * i) + 1)),
          Dynarr.get st.cg ((4 * i) + 2),
          ctx_map.(Dynarr.get st.cg ((4 * i) + 3)) ))
  in
  Array.sort compare quads;
  let cg' = Dynarr.create ~capacity:(max 16 (4 * n_cg)) ~dummy:0 () in
  Array.iter
    (fun (invo, caller, meth, callee) ->
      Dynarr.push cg' invo;
      Dynarr.push cg' caller;
      Dynarr.push cg' meth;
      Dynarr.push cg' callee)
    quads;
  let remap_node n =
    match Node.kind n with
    | Node.Var_node vn -> Node.of_var_node var_map.(vn)
    | Node.Fld_node fn -> Node.of_fld_node fld_map.(fn)
    | Node.Static_fld f -> Node.of_static_fld f
    | Node.Exc_node r -> Node.of_exc reach_map.(r)
  in
  (* Expand representatives: every original node gets the (renumbered)
     points-to set of its representative. Sets are shared within a merged
     class — the solution is read-only above the solver. Slots are written
     sparsely, so the array length is max populated slot + 1: canonical. *)
  let n_old = Dynarr.length st.pts in
  let remapped_sets = Hashtbl.create 64 in
  let remap_set rep s =
    match Hashtbl.find_opt remapped_sets rep with
    | Some s' -> s'
    | None ->
      let s' = Int_set.of_list (List.map (fun o -> obj_map.(o)) (Int_set.to_sorted_list s)) in
      Hashtbl.add remapped_sets rep s';
      s'
  in
  let pts' = Dynarr.create ~capacity:(max 16 n_old) ~dummy:None () in
  let slots = Array.make (max 1 n_old) (-1) in
  let max_slot = ref (-1) in
  for n = 0 to n_old - 1 do
    let r = Union_find.find st.uf n in
    match (if r < n_old then Dynarr.get st.pts r else None) with
    | None -> ()
    | Some s ->
      if Int_set.cardinal s > 0 then begin
        let n' = remap_node n in
        ignore (remap_set r s);
        slots.(n) <- n';
        if n' > !max_slot then max_slot := n'
      end
  done;
  for _ = 0 to !max_slot do
    Dynarr.push pts' None
  done;
  for n = 0 to n_old - 1 do
    if slots.(n) >= 0 then begin
      let r = Union_find.find st.uf n in
      match Dynarr.get st.pts r with
      | Some s -> Dynarr.set pts' slots.(n) (Some (remap_set r s))
      | None -> assert false
    end
  done;
  {
    Solution.program = st.p;
    ctxs = ctxs';
    objs = objs';
    var_nodes = var_nodes';
    fld_nodes = fld_nodes';
    pts = pts';
    reach = reach';
    cg = cg';
    outcome;
    derivations = st.derivations;
    counters =
      {
        Solution.edges_added = st.edges_added;
        edges_deduped = st.edges_deduped;
        batches = st.batches;
        batch_objs = st.batch_objs;
        max_batch = st.max_batch;
        set_promotions;
        cycles_collapsed = st.cycles_collapsed;
        nodes_merged = st.nodes_merged;
        repropagations_avoided = st.repropagations_avoided;
        shards = max 1 st.cfg.shards;
        sync_rounds = st.sync_rounds;
        deltas_exchanged = st.deltas_exchanged;
        cross_shard_edges = st.cross_shard_edges;
        (* Owned by Compositional_solver, which patches them onto the
           returned solution; a direct solve reports zeros. *)
        sccs_summarized = 0;
        summaries_reused = 0;
        sccs_resolved = 0;
      };
    collapsed_vpt_cache = None;
    collapsed_fpt_cache = None;
    reachable_meths_cache = None;
    call_targets_cache = None;
    inverted_vpt_cache = None;
    inverted_fpt_cache = None;
    callee_meths_cache = None;
    caller_sites_cache = None;
  }

(* Process worklist entries until the fixpoint, honoring the configured
   order. An entry may be stale: the node may have been merged away (or its
   representative already drained) since it was queued. *)
let drain st =
  let pop_and_process st n =
    let r = Union_find.find st.uf n in
    if Dynarr.get st.on_list r then process_node st r;
    if should_sweep st then sweep st
  in
  match st.cfg.order with
  | Lifo ->
    while Dynarr.length st.worklist > 0 do
      match Dynarr.pop st.worklist with
      | Some n -> pop_and_process st n
      | None -> assert false
    done
  | Fifo ->
    while st.worklist_head < Dynarr.length st.worklist do
      let n = Dynarr.get st.worklist st.worklist_head in
      st.worklist_head <- st.worklist_head + 1;
      (* Reclaim the consumed prefix once it dominates the array. *)
      if
        st.worklist_head >= fifo_compact_threshold
        && 2 * st.worklist_head >= Dynarr.length st.worklist
      then begin
        Dynarr.drop_prefix st.worklist st.worklist_head;
        st.worklist_head <- 0
      end;
      pop_and_process st n
    done
  | Topo ->
    let exhausted = ref false in
    while not !exhausted do
      match Int_heap.pop_min st.heap with
      | None -> exhausted := true
      | Some key -> pop_and_process st (heap_node key)
    done

type seed = { base : Solution.t; defer : bool array }

(* Replay a previously materialized solution into fresh solver state:
   re-intern its contexts and objects (context elements name heaps, invos
   and classes by raw program id, all stable across a monotone program
   extension), mark its reachable pairs — processing each clean body,
   whose constraints dedup against the seeds — and re-assert every
   recorded points-to fact. Runs with [st.seeding] set, so none of it is
   counted or budgeted; only work enabled by deferred (dirty) bodies is
   derived later, in the counted phase. *)
let apply_seeds st (base : Solution.t) =
  let n_ctxs = Ctx.count base.ctxs in
  let ctx_of = Array.make (max 1 n_ctxs) 0 in
  for i = 0 to n_ctxs - 1 do
    ctx_of.(i) <- Ctx.intern st.ctxs (Array.copy (Ctx.elems base.ctxs i))
  done;
  let n_objs = Pair_tbl.count base.objs in
  let obj_of = Array.make (max 1 n_objs) 0 in
  for i = 0 to n_objs - 1 do
    obj_of.(i) <-
      Pair_tbl.intern st.objs (Pair_tbl.fst base.objs i) ctx_of.(Pair_tbl.snd base.objs i)
  done;
  for i = 0 to Pair_tbl.count base.reach - 1 do
    ignore (ensure_reachable st (Pair_tbl.fst base.reach i) ctx_of.(Pair_tbl.snd base.reach i))
  done;
  for n = 0 to Dynarr.length base.pts - 1 do
    match Dynarr.get base.pts n with
    | None -> ()
    | Some s ->
      let node =
        match Node.kind n with
        | Node.Var_node vn ->
          var_node st (Pair_tbl.fst base.var_nodes vn) ctx_of.(Pair_tbl.snd base.var_nodes vn)
        | Node.Fld_node fn ->
          (* Field-based mode stores a literal 0 as every base object. *)
          let obj = Pair_tbl.fst base.fld_nodes fn in
          let obj' = if st.cfg.field_sensitive then obj_of.(obj) else obj in
          fld_node st obj' (Pair_tbl.snd base.fld_nodes fn)
        | Node.Static_fld f -> Node.of_static_fld f
        | Node.Exc_node r -> (
          match
            Pair_tbl.find_opt st.reach (Pair_tbl.fst base.reach r)
              ctx_of.(Pair_tbl.snd base.reach r)
          with
          | Some id -> Node.of_exc id
          | None -> assert false (* every base reach pair was seeded above *))
      in
      (* Seeds carry no filter: each object already passed whatever filter
         guarded its original derivation. *)
      List.iter
        (fun o -> add_obj st node obj_of.(o) ~spec:Filters.none)
        (Int_set.to_sorted_list s)
  done

let run_sequential ?replay ?seed p cfg =
  let st = create ?replay ?defer:(Option.map (fun s -> s.defer) seed) p cfg in
  let promotions_before = Int_set.promotion_count () in
  let outcome =
    try
      (match seed with
      | None -> ()
      | Some { base; _ } ->
        (* Phase 1, uncounted: rebuild the base fixpoint. Clean bodies are
           re-processed as they become reachable; dirty bodies — and the
           base-variable uses owned by them — are buffered instead of
           fired, because their instructions may be new. *)
        st.seeding <- true;
        apply_seeds st base;
        if st.cfg.collapse_cycles || cfg.order = Topo then sweep st;
        drain st;
        st.seeding <- false;
        (* Phase 2, counted: everything the edit enables. Re-derivations of
           facts already seeded dedup to nothing; only genuinely new flow
           spends derivations. *)
        for i = 0 to Dynarr.length st.deferred_bodies - 1 do
          let id = Dynarr.get st.deferred_bodies i in
          process_body st (Pair_tbl.fst st.reach id) (Pair_tbl.snd st.reach id) ~reach_id:id
        done;
        let n_uses = Dynarr.length st.deferred_uses / 2 in
        for i = 0 to n_uses - 1 do
          apply_var_uses st
            (Dynarr.get st.deferred_uses (2 * i))
            (Dynarr.get st.deferred_uses ((2 * i) + 1))
        done);
      List.iter (fun m -> ignore (ensure_reachable st m Ctx.empty)) (Program.entries p);
      (* Rank the seeded graph (and collapse its static cycles) before the
         first pop, so the heap starts in topological order. *)
      if st.cfg.collapse_cycles || cfg.order = Topo then sweep st;
      drain st;
      Solution.Complete
    with Out_of_budget -> Solution.Budget_exceeded
  in
  let set_promotions = Int_set.promotion_count () - promotions_before in
  materialize st outcome ~set_promotions

(* The bulk-synchronous sharded solve. The sequential path above is left
   completely untouched (it is the semantics reference — byte-identical
   output is the contract, and its budget abort point is pinned by tests);
   this path alternates sequential grow phases with parallel propagation
   rounds as described at [partition_blocks]. The worklist [order] knob is
   ignored: sharded propagation is always topology-aware per shard. *)
let run_sharded ?replay p cfg =
  let shards = cfg.shards in
  let st = create ?replay p { cfg with order = Topo } in
  let promotions_before = Int_set.promotion_count () in
  let extra_promotions = ref 0 in
  let outcome =
    try
      (* The solve owns a pool scoped to its own lifetime: harness-level
         pools fan out whole solves, and a worker of one pool must not block
         waiting on tasks queued to the same pool (nested-map deadlock). The
         domains are reused across every sub-round of the solve. *)
      Domain_pool.with_pool ~jobs:shards (fun pool ->
          List.iter (fun m -> ignore (ensure_reachable st m Ctx.empty)) (Program.entries p);
          let shs = Array.init shards (fun sid -> make_shard ~sid ~shards) in
          let running = ref true in
          while !running do
            (* Round boundary: Tarjan collapse + rank recomputation on the
               merged global graph — never per shard, so the collapse
               counters do not depend on the shard count. *)
            sweep st;
            if Int_heap.is_empty st.heap then running := false
            else begin
              let part = partition_state st shs in
              let draining = ref true in
              while !draining do
                ignore (Domain_pool.run_shards pool ~shards (fun sid -> shard_task st part shs.(sid)));
                st.sync_rounds <- st.sync_rounds + 1;
                merge_shard_counters st shs extra_promotions;
                draining := exchange_outboxes shs
              done;
              (* Propagation spends at the barrier rather than per insertion;
                 a sharded solve can therefore overshoot the budget within a
                 round, but the abort point is still deterministic and
                 independent of the shard count (rounds are). *)
              if st.cfg.budget > 0 && st.derivations > st.cfg.budget then raise Out_of_budget;
              apply_use_log st shs
            end
          done);
      Solution.Complete
    with Out_of_budget -> Solution.Budget_exceeded
  in
  let set_promotions = Int_set.promotion_count () - promotions_before + !extra_promotions in
  materialize st outcome ~set_promotions

let run ?replay p cfg =
  if cfg.shards > 1 then run_sharded ?replay p cfg else run_sequential ?replay p cfg

(* Incremental solving is sequential: the sharded path is a bulk-synchronous
   refactoring of the same fixpoint and would accept seeds just as well, but
   the warm phase is small by construction (that is the point), so the
   orchestration lives above, in [Compositional_solver]. *)
let run_incremental ?replay ~seed p cfg = run_sequential ?replay ~seed p cfg
