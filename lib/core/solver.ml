module Int_set = Ipa_support.Int_set
module Pair_tbl = Ipa_support.Pair_tbl
module Dynarr = Ipa_support.Dynarr
module Program = Ipa_ir.Program
module Node = Solution.Node

type worklist_order = Lifo | Fifo

type config = {
  default_strategy : Strategy.t;
  refined_strategy : Strategy.t;
  refine : Refine.t;
  budget : int;
  order : worklist_order;
  field_sensitive : bool;
}

let plain _p ?(budget = 0) strategy =
  {
    default_strategy = strategy;
    refined_strategy = strategy;
    refine = Refine.None_;
    budget;
    order = Lifo;
    field_sensitive = true;
  }

exception Out_of_budget

(* Static uses of a variable as the base of a load, store, or virtual call.
   Precomputed per variable; consulted whenever a (var, ctx) node gains
   objects. *)
type use =
  | Use_load of { target : int; field : int }
  | Use_store of { source : int; field : int }
  | Use_vcall of int

(* Copy edges carry a type-filter specification: a conjunction of positive
   ("is a subtype of c") and negative ("is not a subtype of c") constraints.
   Casts use a single positive constraint; exception-handler routing chains
   use one positive plus the negations of all earlier clauses. Specs are
   hash-consed into small ids; spec 0 is the empty (always-true) spec.
   Within a spec array, [c + 1] encodes a positive constraint on class [c]
   and [-(c + 1)] a negative one. *)
module Filters = struct
  type t = int array Ipa_support.Interner.t

  let create () : t =
    let t = Ipa_support.Interner.create ~dummy:[||] () in
    let zero = Ipa_support.Interner.intern t [||] in
    assert (zero = 0);
    t

  let none = 0
  let pos c = c + 1
  let neg c = -(c + 1)
  let intern = Ipa_support.Interner.intern

  let passes t p spec cls =
    spec = none
    || Array.for_all
         (fun entry ->
           if entry > 0 then Ipa_ir.Program.subtype p ~sub:cls ~super:(entry - 1)
           else not (Ipa_ir.Program.subtype p ~sub:cls ~super:(-entry - 1)))
         (Ipa_support.Interner.value t spec)
end

(* Edges are packed into one int: destination node in the high bits, the
   filter-spec id in the low 21 bits. *)
let filter_bits = 21
let filter_mask = (1 lsl filter_bits) - 1

let pack_edge ~dst ~spec =
  assert (spec <= filter_mask);
  (dst lsl filter_bits) lor spec

let edge_dst e = e lsr filter_bits
let edge_spec e = e land filter_mask

(* Call-graph dedup keys pack two dense pair ids side by side; both halves
   must fit in [cg_key_bits] bits (2 * 31 = 62 < Sys.int_size). *)
let cg_key_bits = 31

type state = {
  p : Program.t;
  cfg : config;
  ctxs : Ctx.t;
  objs : Pair_tbl.t; (* (heap, hctx) *)
  var_nodes : Pair_tbl.t; (* (var, ctx) *)
  fld_nodes : Pair_tbl.t; (* (obj, field) *)
  (* Per-node state, indexed by the Solution.Node encoding. *)
  pts : Int_set.t option Dynarr.t;
  edges : int Dynarr.t option Dynarr.t;
  (* Dedup index over [edges]: built lazily once a node's out-degree crosses
     the linear-scan threshold; [None] while a scan of the edge list itself
     is cheaper than a set lookup. *)
  edge_seen : Int_set.t option Dynarr.t;
  pending : int Dynarr.t option Dynarr.t;
  on_list : bool Dynarr.t;
  worklist : int Dynarr.t;
  mutable worklist_head : int; (* consumed prefix, FIFO mode *)
  reach : Pair_tbl.t; (* (meth, ctx) *)
  cg : int Dynarr.t; (* flattened 4-tuples *)
  cg_caller : Pair_tbl.t; (* (invo, callerCtx) *)
  cg_seen : Int_set.t; (* packed (caller-pair, reach-pair) *)
  base_uses : use list array;
  filters : Filters.t;
  (* Per method: the filter spec of each catch clause (the clause's type
     positively, all earlier clause types negatively) and the escape spec
     (every clause type negatively). *)
  catch_specs : (int array * int) option array;
  mutable derivations : int;
  (* Instrumentation (Solution.counters). *)
  mutable edges_added : int;
  mutable edges_deduped : int;
  mutable batches : int;
  mutable batch_objs : int;
  mutable max_batch : int;
}

let compute_base_uses (p : Program.t) : use list array =
  let uses = Array.make (Program.n_vars p) [] in
  let add v u = uses.(v) <- u :: uses.(v) in
  for m = 0 to Program.n_meths p - 1 do
    Array.iter
      (fun (i : Program.instr) ->
        match i with
        | Load { target; base; field } -> add base (Use_load { target; field })
        | Store { base; field; source } -> add base (Use_store { source; field })
        | Call invo -> (
          match (Program.invo_info p invo).call with
          | Virtual { base; _ } -> add base (Use_vcall invo)
          | Static _ -> ())
        | Alloc _ | Move _ | Cast _ | Load_static _ | Store_static _ | Return _ | Throw _ ->
          ())
      (Program.meth_info p m).body
  done;
  uses

let create p cfg =
  {
    p;
    cfg;
    ctxs = Ctx.create ();
    objs = Pair_tbl.create ~capacity:1024 ();
    var_nodes = Pair_tbl.create ~capacity:1024 ();
    fld_nodes = Pair_tbl.create ~capacity:1024 ();
    pts = Dynarr.create ~capacity:1024 ~dummy:None ();
    edges = Dynarr.create ~capacity:1024 ~dummy:None ();
    edge_seen = Dynarr.create ~capacity:1024 ~dummy:None ();
    pending = Dynarr.create ~capacity:1024 ~dummy:None ();
    on_list = Dynarr.create ~capacity:1024 ~dummy:false ();
    worklist = Dynarr.create ~capacity:1024 ~dummy:0 ();
    worklist_head = 0;
    reach = Pair_tbl.create ~capacity:1024 ();
    cg = Dynarr.create ~capacity:4096 ~dummy:0 ();
    cg_caller = Pair_tbl.create ~capacity:1024 ();
    cg_seen = Int_set.create ~capacity:1024 ();
    base_uses = compute_base_uses p;
    filters = Filters.create ();
    catch_specs = Array.make (Program.n_meths p) None;
    derivations = 0;
    edges_added = 0;
    edges_deduped = 0;
    batches = 0;
    batch_objs = 0;
    max_batch = 0;
  }

let ensure_node st n =
  while Dynarr.length st.pts <= n do
    Dynarr.push st.pts None;
    Dynarr.push st.edges None;
    Dynarr.push st.edge_seen None;
    Dynarr.push st.pending None;
    Dynarr.push st.on_list false
  done

let node_pts st n =
  ensure_node st n;
  match Dynarr.get st.pts n with
  | Some s -> s
  | None ->
    let s = Int_set.create ~capacity:8 () in
    Dynarr.set st.pts n (Some s);
    s

let node_edges st n =
  ensure_node st n;
  match Dynarr.get st.edges n with
  | Some d -> d
  | None ->
    let d = Dynarr.create ~capacity:4 ~dummy:0 () in
    Dynarr.set st.edges n (Some d);
    d

let node_pending st n =
  ensure_node st n;
  match Dynarr.get st.pending n with
  | Some d -> d
  | None ->
    let d = Dynarr.create ~capacity:4 ~dummy:0 () in
    Dynarr.set st.pending n (Some d);
    d

let spend st =
  st.derivations <- st.derivations + 1;
  if st.cfg.budget > 0 && st.derivations > st.cfg.budget then raise Out_of_budget

let var_node st var ctx = Node.of_var_node (Pair_tbl.intern st.var_nodes var ctx)

(* Field-sensitive: one node per (object, field). With field sensitivity off
   ("field-based" analysis), all base objects collapse onto a single node per
   field, i.e. fields behave like static fields. *)
let fld_node st obj field =
  let obj = if st.cfg.field_sensitive then obj else 0 in
  Node.of_fld_node (Pair_tbl.intern st.fld_nodes obj field)

let heap_class st heap = (Program.heap_info st.p heap).heap_class

(* The per-clause and escape filter specs of a method's catch chain. *)
let catch_specs st meth =
  match st.catch_specs.(meth) with
  | Some specs -> specs
  | None ->
    let clauses = (Program.meth_info st.p meth).catches in
    let clause_specs =
      Array.mapi
        (fun i (clause : Program.catch_clause) ->
          let spec = Array.make (i + 1) 0 in
          spec.(0) <- Filters.pos clause.catch_type;
          for j = 0 to i - 1 do
            spec.(j + 1) <- Filters.neg clauses.(j).catch_type
          done;
          Filters.intern st.filters spec)
        clauses
    in
    let escape =
      if Array.length clauses = 0 then Filters.none
      else
        Filters.intern st.filters
          (Array.map (fun (c : Program.catch_clause) -> Filters.neg c.catch_type) clauses)
    in
    let specs = (clause_specs, escape) in
    st.catch_specs.(meth) <- Some specs;
    specs

(* Insert [obj] into [pts(node)], respecting the edge's filter spec. *)
let add_obj st node obj ~spec =
  if Filters.passes st.filters st.p spec (heap_class st (Pair_tbl.fst st.objs obj)) then begin
    let s = node_pts st node in
    if Int_set.add s obj then begin
      spend st;
      Dynarr.push (node_pending st node) obj;
      if not (Dynarr.get st.on_list node) then begin
        Dynarr.set st.on_list node true;
        Dynarr.push st.worklist node
      end
    end
  end

(* Duplicate copy edges used to be pushed blindly, so every pending batch
   re-propagated across them and every re-add re-flushed the full source
   set. Dedup instead: a linear scan of the edge list while the out-degree
   is small, a lazily-built seen-set once it is not. *)
let edge_linear_threshold = 16

let add_edge st ~src ~dst ~spec =
  let packed = pack_edge ~dst ~spec in
  let es = node_edges st src in
  let fresh =
    match Dynarr.get st.edge_seen src with
    | Some seen -> Int_set.add seen packed
    | None ->
      let n = Dynarr.length es in
      if n < edge_linear_threshold then begin
        let rec scan i = i < n && (Dynarr.get es i = packed || scan (i + 1)) in
        not (scan 0)
      end
      else begin
        let seen = Int_set.create ~capacity:(2 * n) () in
        Dynarr.iter (fun e -> ignore (Int_set.add seen e)) es;
        Dynarr.set st.edge_seen src (Some seen);
        Int_set.add seen packed
      end
  in
  if fresh then begin
    st.edges_added <- st.edges_added + 1;
    Dynarr.push es packed;
    match Dynarr.get st.pts src with
    | None -> ()
    | Some s -> Int_set.iter (fun obj -> add_obj st dst obj ~spec) s
  end
  else st.edges_deduped <- st.edges_deduped + 1

let cast_spec st cls = Filters.intern st.filters [| Filters.pos cls |]

(* Route exceptional flow out of [src] through the catch chain of the
   handling method instance [(handler, ctx)]: matched objects are bound to
   the clause variables, the rest escape to the handler's own exception
   node. *)
let route_exceptions st ~src ~handler ~ctx ~handler_reach_id =
  let clauses = (Program.meth_info st.p handler).catches in
  let clause_specs, escape_spec = catch_specs st handler in
  Array.iteri
    (fun i (clause : Program.catch_clause) ->
      add_edge st ~src ~dst:(var_node st clause.catch_var ctx) ~spec:clause_specs.(i))
    clauses;
  add_edge st ~src ~dst:(Node.of_exc handler_reach_id) ~spec:escape_spec

(* Mark (meth, ctx) reachable, processing the body on first sight; returns
   the dense id of the pair. *)
let rec ensure_reachable st meth ctx =
  match Pair_tbl.find_opt st.reach meth ctx with
  | Some id -> id
  | None ->
    let id = Pair_tbl.intern st.reach meth ctx in
    spend st;
    process_body st meth ctx ~reach_id:id;
    id

and process_body st meth ctx ~reach_id =
  let mi = Program.meth_info st.p meth in
  Array.iter
    (fun (i : Program.instr) ->
      match i with
      | Alloc { target; heap } ->
        let strat =
          if Refine.refine_object st.cfg.refine heap then st.cfg.refined_strategy
          else st.cfg.default_strategy
        in
        let hctx = strat.record st.ctxs ~heap ~ctx in
        let obj = Pair_tbl.intern st.objs heap hctx in
        add_obj st (var_node st target ctx) obj ~spec:Filters.none
      | Move { target; source } ->
        add_edge st ~src:(var_node st source ctx) ~dst:(var_node st target ctx)
          ~spec:Filters.none
      | Cast { target; source; cast_to } ->
        add_edge st ~src:(var_node st source ctx) ~dst:(var_node st target ctx)
          ~spec:(cast_spec st cast_to)
      | Load _ | Store _ -> () (* driven by base-variable points-to growth *)
      | Load_static { target; field } ->
        add_edge st ~src:(Node.of_static_fld field) ~dst:(var_node st target ctx)
          ~spec:Filters.none
      | Store_static { field; source } ->
        add_edge st ~src:(var_node st source ctx) ~dst:(Node.of_static_fld field)
          ~spec:Filters.none
      | Call invo -> (
        match (Program.invo_info st.p invo).call with
        | Virtual _ -> () (* driven by receiver points-to growth *)
        | Static { callee } ->
          let strat =
            if Refine.refine_site st.cfg.refine ~invo ~meth:callee then st.cfg.refined_strategy
            else st.cfg.default_strategy
          in
          let callee_ctx = strat.merge_static st.ctxs ~invo ~caller:ctx in
          add_cg_edge st ~invo ~caller_ctx:ctx ~meth:callee ~callee_ctx)
      | Return { source } -> (
        match mi.ret_var with
        | Some ret ->
          add_edge st ~src:(var_node st source ctx) ~dst:(var_node st ret ctx)
            ~spec:Filters.none
        | None -> assert false (* ruled out by Wf *))
      | Throw { source } ->
        route_exceptions st ~src:(var_node st source ctx) ~handler:meth ~ctx
          ~handler_reach_id:reach_id)
    mi.body

(* Record a context-sensitive call-graph edge; on first sight, make the
   callee reachable and wire up parameter and return copy edges. *)
and add_cg_edge st ~invo ~caller_ctx ~meth ~callee_ctx =
  let callee_id = ensure_reachable st meth callee_ctx in
  let caller_id = Pair_tbl.intern st.cg_caller invo caller_ctx in
  (* The seen-key packs both dense pair ids into one 62-bit int. Ids are
     interned counters, so 2^31 of either means a run astronomically past
     any budget — but guard explicitly: a silent wrap would collide two
     distinct call-graph edges and drop one unsoundly. *)
  if caller_id lsr cg_key_bits <> 0 || callee_id lsr cg_key_bits <> 0 then
    failwith
      (Printf.sprintf
         "Solver.add_cg_edge: call-graph pair id (%d, %d) exceeds the %d-bit packed key space"
         caller_id callee_id cg_key_bits);
  let key = (caller_id lsl cg_key_bits) lor callee_id in
  if Int_set.add st.cg_seen key then begin
    spend st;
    Dynarr.push st.cg invo;
    Dynarr.push st.cg caller_ctx;
    Dynarr.push st.cg meth;
    Dynarr.push st.cg callee_ctx;
    let ii = Program.invo_info st.p invo in
    let mi = Program.meth_info st.p meth in
    Array.iteri
      (fun idx actual ->
        add_edge st
          ~src:(var_node st actual caller_ctx)
          ~dst:(var_node st mi.formals.(idx) callee_ctx)
          ~spec:Filters.none)
      ii.actuals;
    (match (ii.recv, mi.ret_var) with
    | Some recv, Some ret ->
      add_edge st ~src:(var_node st ret callee_ctx) ~dst:(var_node st recv caller_ctx)
        ~spec:Filters.none
    | _ -> ());
    (* Exceptions escaping the callee flow through the caller's catch
       chain. The caller instance is necessarily reachable already. *)
    let caller_meth = ii.invo_owner in
    let caller_reach_id = Pair_tbl.intern st.reach caller_meth caller_ctx in
    route_exceptions st ~src:(Node.of_exc callee_id) ~handler:caller_meth ~ctx:caller_ctx
      ~handler_reach_id:caller_reach_id
  end

let dispatch_call st ~invo ~ctx obj =
  let ii = Program.invo_info st.p invo in
  match ii.call with
  | Static _ -> assert false
  | Virtual { base = _; signature } -> (
    let heap = Pair_tbl.fst st.objs obj in
    let hctx = Pair_tbl.snd st.objs obj in
    match Program.dispatch st.p (heap_class st heap) signature with
    | None -> () (* unresolved dispatch: a would-be runtime error *)
    | Some target ->
      let strat =
        if Refine.refine_site st.cfg.refine ~invo ~meth:target then st.cfg.refined_strategy
        else st.cfg.default_strategy
      in
      let callee_ctx = strat.merge st.ctxs ~heap ~hctx ~invo ~caller:ctx in
      add_cg_edge st ~invo ~caller_ctx:ctx ~meth:target ~callee_ctx;
      (match (Program.meth_info st.p target).this_var with
      | Some this -> add_obj st (var_node st this callee_ctx) obj ~spec:Filters.none
      | None -> ()))

let process_node st n =
  Dynarr.set st.on_list n false;
  (* The batch is the pending prefix present when processing starts; it is
     consumed exactly once, so it is iterated in place (no [to_array] copy)
     and dropped at the end. [add_obj] may append to the same pending array
     mid-batch; those objects stay for the node's next worklist round. *)
  let pending = node_pending st n in
  let n_batch = Dynarr.length pending in
  st.batches <- st.batches + 1;
  st.batch_objs <- st.batch_objs + n_batch;
  if n_batch > st.max_batch then st.max_batch <- n_batch;
  (* Propagate along the copy edges present when processing starts; edges
     added mid-batch flush the full points-to set themselves. *)
  let es = node_edges st n in
  let n_edges = Dynarr.length es in
  for e = 0 to n_edges - 1 do
    let packed = Dynarr.get es e in
    let dst = edge_dst packed in
    let spec = edge_spec packed in
    Dynarr.iter_prefix (fun obj -> add_obj st dst obj ~spec) pending ~n:n_batch
  done;
  (match Node.kind n with
  | Node.Fld_node _ | Node.Static_fld _ | Node.Exc_node _ -> ()
  | Node.Var_node vn ->
    let var = Pair_tbl.fst st.var_nodes vn in
    let ctx = Pair_tbl.snd st.var_nodes vn in
    let uses = st.base_uses.(var) in
    if uses <> [] then
      Dynarr.iter_prefix
        (fun obj ->
          List.iter
            (fun use ->
              match use with
              | Use_load { target; field } ->
                add_edge st ~src:(fld_node st obj field) ~dst:(var_node st target ctx)
                  ~spec:Filters.none
              | Use_store { source; field } ->
                add_edge st ~src:(var_node st source ctx) ~dst:(fld_node st obj field)
                  ~spec:Filters.none
              | Use_vcall invo -> dispatch_call st ~invo ~ctx obj)
            uses)
        pending ~n:n_batch);
  Dynarr.drop_prefix pending n_batch

let run p cfg =
  let st = create p cfg in
  let promotions_before = Int_set.promotion_count () in
  let outcome =
    try
      List.iter (fun m -> ignore (ensure_reachable st m Ctx.empty)) (Program.entries p);
      (match cfg.order with
      | Lifo ->
        while Dynarr.length st.worklist > 0 do
          match Dynarr.pop st.worklist with
          | Some n -> process_node st n
          | None -> assert false
        done
      | Fifo ->
        while st.worklist_head < Dynarr.length st.worklist do
          let n = Dynarr.get st.worklist st.worklist_head in
          st.worklist_head <- st.worklist_head + 1;
          process_node st n
        done);
      Solution.Complete
    with Out_of_budget -> Solution.Budget_exceeded
  in
  {
    Solution.program = p;
    ctxs = st.ctxs;
    objs = st.objs;
    var_nodes = st.var_nodes;
    fld_nodes = st.fld_nodes;
    pts = st.pts;
    reach = st.reach;
    cg = st.cg;
    outcome;
    derivations = st.derivations;
    counters =
      {
        Solution.edges_added = st.edges_added;
        edges_deduped = st.edges_deduped;
        batches = st.batches;
        batch_objs = st.batch_objs;
        max_batch = st.max_batch;
        set_promotions = Int_set.promotion_count () - promotions_before;
      };
    collapsed_vpt_cache = None;
    collapsed_fpt_cache = None;
    reachable_meths_cache = None;
    call_targets_cache = None;
    inverted_vpt_cache = None;
    inverted_fpt_cache = None;
    callee_meths_cache = None;
    caller_sites_cache = None;
  }
