module Dynarr = Ipa_support.Dynarr
module Codec = Ipa_support.Codec
module Writer = Codec.Writer
module Reader = Codec.Reader
module Program = Ipa_ir.Program

(* ---------- call-graph condensation ---------- *)

type scc = {
  scc_id : int;
  members : int array; (* meth ids, ascending *)
  callees : int array; (* scc ids of CHA-possible callees, ascending, self excluded *)
}

type condensation = { sccs : scc array; scc_of_meth : int array }

(* CHA over-approximation of the call graph: a static call targets its
   declared callee; a virtual call targets every concrete method the
   signature can dispatch to anywhere in the hierarchy. The solver's
   on-the-fly call graph is a subset, so SCCs here are unions of semantic
   SCCs — safe for both summary boundaries and dirtiness propagation. *)
let call_targets p =
  let sig_targets = Array.make (Program.n_sigs p) [] in
  Program.iter_dispatch p (fun _cls s m ->
      if not (List.mem m sig_targets.(s)) then sig_targets.(s) <- m :: sig_targets.(s));
  let targets = Array.make (Program.n_meths p) [] in
  for m = 0 to Program.n_meths p - 1 do
    let acc = ref [] in
    Array.iter
      (fun (i : Program.instr) ->
        match i with
        | Call invo -> (
          match (Program.invo_info p invo).call with
          | Static { callee } -> acc := callee :: !acc
          | Virtual { signature; _ } -> acc := sig_targets.(signature) @ !acc)
        | _ -> ())
      (Program.meth_info p m).body;
    targets.(m) <- List.sort_uniq compare !acc
  done;
  targets

(* Iterative Tarjan over methods, emitting every component (singletons
   included) in close order — callees before callers, i.e. the array is a
   bottom-up topological order of the condensation. Deterministic: roots
   ascend, successor lists are sorted. *)
let condense p =
  let n = Program.n_meths p in
  let succs = call_targets p in
  let index = Array.make (max 1 n) (-1) in
  let lowlink = Array.make (max 1 n) 0 in
  let on_stack = Array.make (max 1 n) false in
  let scc_stack = ref [] in
  let next_index = ref 0 in
  let comps = Dynarr.create ~capacity:(max 16 n) ~dummy:[||] () in
  let frame_node = Dynarr.create ~capacity:64 ~dummy:0 () in
  let frame_succ = Dynarr.create ~capacity:64 ~dummy:[] () in
  let discover v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    on_stack.(v) <- true;
    scc_stack := v :: !scc_stack;
    Dynarr.push frame_node v;
    Dynarr.push frame_succ succs.(v)
  in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      discover root;
      while Dynarr.length frame_node > 0 do
        let top = Dynarr.length frame_node - 1 in
        let v = Dynarr.get frame_node top in
        match Dynarr.get frame_succ top with
        | w :: rest when index.(w) = -1 ->
          Dynarr.set frame_succ top rest;
          discover w
        | w :: rest ->
          Dynarr.set frame_succ top rest;
          if on_stack.(w) && index.(w) < lowlink.(v) then lowlink.(v) <- index.(w)
        | [] ->
          ignore (Dynarr.pop frame_node);
          ignore (Dynarr.pop frame_succ);
          (if Dynarr.length frame_node > 0 then begin
             let parent = Dynarr.get frame_node (Dynarr.length frame_node - 1) in
             if lowlink.(v) < lowlink.(parent) then lowlink.(parent) <- lowlink.(v)
           end);
          if lowlink.(v) = index.(v) then begin
            let comp = ref [] in
            let stop = ref false in
            while not !stop do
              match !scc_stack with
              | [] -> assert false
              | w :: rest ->
                scc_stack := rest;
                on_stack.(w) <- false;
                comp := w :: !comp;
                if w = v then stop := true
            done;
            let members = Array.of_list !comp in
            Array.sort compare members;
            Dynarr.push comps members
          end
      done
    end
  done;
  let n_sccs = Dynarr.length comps in
  let scc_of_meth = Array.make (max 1 n) 0 in
  for sid = 0 to n_sccs - 1 do
    Array.iter (fun m -> scc_of_meth.(m) <- sid) (Dynarr.get comps sid)
  done;
  let sccs =
    Array.init n_sccs (fun sid ->
        let members = Dynarr.get comps sid in
        let callee_sccs = ref [] in
        Array.iter
          (fun m ->
            List.iter
              (fun callee ->
                let c = scc_of_meth.(callee) in
                if c <> sid && not (List.mem c !callee_sccs) then callee_sccs := c :: !callee_sccs)
              succs.(m))
          members;
        let callees = Array.of_list !callee_sccs in
        Array.sort compare callees;
        { scc_id = sid; members; callees })
  in
  { sccs; scc_of_meth }

(* Dirtiness closure: the given components plus every call-graph ancestor
   (transitive caller) — the components whose facts can depend on a changed
   callee. Reverse-BFS over the condensation's callee edges. *)
let dirty_closure cond seeds =
  let n = Array.length cond.sccs in
  let callers = Array.make (max 1 n) [] in
  Array.iter
    (fun scc -> Array.iter (fun c -> callers.(c) <- scc.scc_id :: callers.(c)) scc.callees)
    cond.sccs;
  let dirty = Array.make (max 1 n) false in
  let rec mark sid =
    if not dirty.(sid) then begin
      dirty.(sid) <- true;
      List.iter mark callers.(sid)
    end
  in
  List.iter mark seeds;
  dirty

(* ---------- content digest ---------- *)

(* The digest is computed over entity *names*, never raw ids: two programs
   that contain the same methods (same bodies, same referenced classes,
   fields, heaps and callees by name) produce the same per-SCC digests even
   when the surrounding program assigns different ids. That is what lets an
   edited program reuse the untouched components' cache entries. *)
let digest p cond sid =
  let b = Buffer.create 1024 in
  let add s =
    Buffer.add_string b s;
    Buffer.add_char b '\n'
  in
  let var v = add (Program.var_full_name p v) in
  let var_opt = function None -> add "-" | Some v -> var v in
  let members = Array.copy cond.sccs.(sid).members in
  let names = Array.map (fun m -> (Program.meth_full_name p m, m)) members in
  Array.sort compare names;
  Array.iter
    (fun (full_name, m) ->
      let mi = Program.meth_info p m in
      add "meth";
      add full_name;
      add (Program.class_name p mi.meth_owner);
      add (if mi.is_static_meth then "static" else "instance");
      add (if mi.is_abstract then "abstract" else "concrete");
      var_opt mi.this_var;
      Array.iter var mi.formals;
      add "|";
      var_opt mi.ret_var;
      Array.iter
        (fun (c : Program.catch_clause) ->
          add "catch";
          add (Program.class_name p c.catch_type);
          var c.catch_var)
        mi.catches;
      Array.iter
        (fun (i : Program.instr) ->
          match i with
          | Alloc { target; heap } ->
            add "alloc";
            var target;
            add (Program.heap_full_name p heap);
            add (Program.class_name p (Program.heap_info p heap).heap_class)
          | Move { target; source } ->
            add "move";
            var target;
            var source
          | Cast { target; source; cast_to } ->
            add "cast";
            var target;
            var source;
            add (Program.class_name p cast_to)
          | Load { target; base; field } ->
            add "load";
            var target;
            var base;
            add (Program.field_full_name p field)
          | Store { base; field; source } ->
            add "store";
            var base;
            add (Program.field_full_name p field);
            var source
          | Load_static { target; field } ->
            add "loadS";
            var target;
            add (Program.field_full_name p field)
          | Store_static { field; source } ->
            add "storeS";
            add (Program.field_full_name p field);
            var source
          | Call invo ->
            let ii = Program.invo_info p invo in
            (match ii.call with
            | Static { callee } ->
              add "scall";
              add (Program.meth_full_name p callee)
            | Virtual { base; signature } ->
              let si = Program.sig_info p signature in
              add "vcall";
              var base;
              add (Printf.sprintf "%s/%d" si.sig_name si.arity));
            Array.iter var ii.actuals;
            add "|";
            var_opt ii.recv
          | Return { source } ->
            add "return";
            var source
          | Throw { source } ->
            add "throw";
            var source)
        mi.body)
    names;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---------- boundary abstraction ---------- *)

type boundary = {
  b_formals : int;  (** formal/this parameters crossing into the component *)
  b_returns : int;  (** members returning a value to callers *)
  b_catches : int;  (** catch clauses guarding member bodies *)
  b_escaping_throws : int;  (** throw sites whose object can leave the component *)
  b_escaping_loads : int;  (** loads whose base may hold a non-local object *)
  b_escaping_stores : int;  (** stores whose base may hold a non-local object *)
  b_local_loads : int;
  b_local_stores : int;
  b_allocs : int;
  b_virtual_sites : int;  (** dispatch sites — context-selection boundary *)
  b_external_calls : int;  (** static calls leaving the component *)
}

(* A small intra-component may-escape analysis over the member bodies:
   a variable is [local] while every value it can hold was allocated inside
   the component and never passed through the heap, a call boundary, or a
   formal. Loads and stores on a local base are invisible to callers; the
   rest are the component's escaping heap effect. Fixpoint over the
   members' copy edges (order-insensitive: the lattice is two-valued). *)
let boundary p cond sid =
  let members = cond.sccs.(sid).members in
  let in_scc m = m < Array.length cond.scc_of_meth && cond.scc_of_meth.(m) = sid in
  let local : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let is_local v = match Hashtbl.find_opt local v with Some b -> b | None -> true in
  let changed = ref true in
  let taint v = if is_local v then (Hashtbl.replace local v false; changed := true) in
  (* Sources of external values. *)
  Array.iter
    (fun m ->
      let mi = Program.meth_info p m in
      (match mi.this_var with Some v -> taint v | None -> ());
      Array.iter taint mi.formals;
      Array.iter (fun (c : Program.catch_clause) -> taint c.catch_var) mi.catches)
    members;
  while !changed do
    changed := false;
    Array.iter
      (fun m ->
        let mi = Program.meth_info p m in
        Array.iter
          (fun (i : Program.instr) ->
            match i with
            | Move { target; source } | Cast { target; source; _ } ->
              if not (is_local source) then taint target
            | Load { target; _ } | Load_static { target; _ } ->
              (* heap-mediated: another component may have stored there *)
              taint target
            | Call invo -> (
              let ii = Program.invo_info p invo in
              let internal =
                match ii.call with
                | Static { callee } -> in_scc callee
                | Virtual _ -> false
              in
              match ii.recv with
              | Some r when not internal -> taint r
              | Some r -> (
                (* intra-component call: the result is local iff the callee
                   only returns local values *)
                match ii.call with
                | Static { callee } -> (
                  match (Program.meth_info p callee).ret_var with
                  | Some rv when not (is_local rv) -> taint r
                  | _ -> ())
                | Virtual _ -> taint r)
              | None -> ())
            | Alloc _ | Store _ | Store_static _ | Return _ | Throw _ -> ())
          mi.body)
      members
  done;
  let b_formals = ref 0
  and b_returns = ref 0
  and b_catches = ref 0
  and b_escaping_throws = ref 0
  and b_escaping_loads = ref 0
  and b_escaping_stores = ref 0
  and b_local_loads = ref 0
  and b_local_stores = ref 0
  and b_allocs = ref 0
  and b_virtual_sites = ref 0
  and b_external_calls = ref 0 in
  Array.iter
    (fun m ->
      let mi = Program.meth_info p m in
      b_formals :=
        !b_formals + Array.length mi.formals + (match mi.this_var with Some _ -> 1 | None -> 0);
      if mi.ret_var <> None then incr b_returns;
      b_catches := !b_catches + Array.length mi.catches;
      Array.iter
        (fun (i : Program.instr) ->
          match i with
          | Alloc _ -> incr b_allocs
          | Load { base; _ } ->
            if is_local base then incr b_local_loads else incr b_escaping_loads
          | Store { base; _ } ->
            if is_local base then incr b_local_stores else incr b_escaping_stores
          | Load_static _ -> incr b_escaping_loads
          | Store_static _ -> incr b_escaping_stores
          | Throw _ ->
            (* routed through the member's catch chain; it escapes unless a
               clause catches everything — conservatively always boundary *)
            incr b_escaping_throws
          | Call invo -> (
            match (Program.invo_info p invo).call with
            | Virtual _ -> incr b_virtual_sites
            | Static { callee } -> if not (in_scc callee) then incr b_external_calls)
          | Move _ | Cast _ | Return _ -> ())
        mi.body)
    members;
  {
    b_formals = !b_formals;
    b_returns = !b_returns;
    b_catches = !b_catches;
    b_escaping_throws = !b_escaping_throws;
    b_escaping_loads = !b_escaping_loads;
    b_escaping_stores = !b_escaping_stores;
    b_local_loads = !b_local_loads;
    b_local_stores = !b_local_stores;
    b_allocs = !b_allocs;
    b_virtual_sites = !b_virtual_sites;
    b_external_calls = !b_external_calls;
  }

type t = { summary_scc : int; summary_digest : string; summary_boundary : boundary }

(* ---------- cache blob codec ---------- *)

(* Distinct magic from snapshots ("IPSN") and a trailing copy of the digest
   so the cache can classify and audit entries without decoding. *)
let blob_magic = "IPSM"
let blob_version = 1

let encode_blob ~digest:dg members_names b =
  let w = Writer.create ~capacity:256 () in
  Writer.raw w blob_magic;
  Writer.uint w blob_version;
  Writer.string w dg;
  Writer.uint w (List.length members_names);
  List.iter (Writer.string w) members_names;
  Writer.uint w b.b_formals;
  Writer.uint w b.b_returns;
  Writer.uint w b.b_catches;
  Writer.uint w b.b_escaping_throws;
  Writer.uint w b.b_escaping_loads;
  Writer.uint w b.b_escaping_stores;
  Writer.uint w b.b_local_loads;
  Writer.uint w b.b_local_stores;
  Writer.uint w b.b_allocs;
  Writer.uint w b.b_virtual_sites;
  Writer.uint w b.b_external_calls;
  Writer.contents w

let decode_blob bytes =
  let n = String.length blob_magic in
  if String.length bytes < n || String.sub bytes 0 n <> blob_magic then None
  else
    try
      let r = Reader.of_string ~pos:n bytes in
      let v = Reader.uint r in
      if v <> blob_version then None
      else begin
        let dg = Reader.string r in
        let n_members = Reader.uint r in
        let members = List.init n_members (fun _ -> Reader.string r) in
        let b_formals = Reader.uint r in
        let b_returns = Reader.uint r in
        let b_catches = Reader.uint r in
        let b_escaping_throws = Reader.uint r in
        let b_escaping_loads = Reader.uint r in
        let b_escaping_stores = Reader.uint r in
        let b_local_loads = Reader.uint r in
        let b_local_stores = Reader.uint r in
        let b_allocs = Reader.uint r in
        let b_virtual_sites = Reader.uint r in
        let b_external_calls = Reader.uint r in
        Some
          ( dg,
            members,
            {
              b_formals;
              b_returns;
              b_catches;
              b_escaping_throws;
              b_escaping_loads;
              b_escaping_stores;
              b_local_loads;
              b_local_stores;
              b_allocs;
              b_virtual_sites;
              b_external_calls;
            } )
      end
    with Codec.Corrupt _ -> None

(* ---------- compiled constraint modules ---------- *)

(* One op per constraint-emitting instruction, in body order. Replaying a
   module produces the exact call sequence [Solver.process_body] makes for
   the instruction walk: [Load]/[Store]/virtual [Call] emit nothing (they
   are driven by base-variable points-to growth), [Return] compiles to the
   copy onto the method's canonical return variable. *)
type op =
  | O_alloc of { target : int; heap : int }
  | O_copy of { target : int; source : int }
  | O_cast of { target : int; source : int; cast_to : int }
  | O_load_static of { target : int; field : int }
  | O_store_static of { field : int; source : int }
  | O_scall of { invo : int; callee : int }
  | O_throw of { source : int }

type ops = op array array

let compile_meth p m : op array =
  let mi = Program.meth_info p m in
  let acc = Dynarr.create ~capacity:(Array.length mi.body) ~dummy:(O_throw { source = 0 }) () in
  Array.iter
    (fun (i : Program.instr) ->
      match i with
      | Alloc { target; heap } -> Dynarr.push acc (O_alloc { target; heap })
      | Move { target; source } -> Dynarr.push acc (O_copy { target; source })
      | Cast { target; source; cast_to } -> Dynarr.push acc (O_cast { target; source; cast_to })
      | Load _ | Store _ -> ()
      | Load_static { target; field } -> Dynarr.push acc (O_load_static { target; field })
      | Store_static { field; source } -> Dynarr.push acc (O_store_static { field; source })
      | Call invo -> (
        match (Program.invo_info p invo).call with
        | Virtual _ -> ()
        | Static { callee } -> Dynarr.push acc (O_scall { invo; callee }))
      | Return { source } -> (
        match mi.ret_var with
        | Some ret -> Dynarr.push acc (O_copy { target = ret; source })
        | None -> assert false (* ruled out by Wf *))
      | Throw { source } -> Dynarr.push acc (O_throw { source }))
    mi.body;
  Dynarr.to_array acc

let compile p : ops = Array.init (Program.n_meths p) (compile_meth p)

(* ---------- monotone-extension check ---------- *)

(* [extends ~old_p ~new_p] holds when [new_p] is a structural superset of
   [old_p] with stable ids: every entity array of [old_p] is an identical
   prefix of [new_p]'s (method bodies may gain appended instructions, a
   missing return variable may appear), dispatch is preserved on every old
   (class, signature) pair, and the entry set only grows. Under these
   conditions every constraint of the old program is present unchanged in
   the new one and all retained ids (hence context elements) are stable, so
   the old fixpoint is a sound seed for the new solve. *)
let extends ~old_p ~new_p =
  let open Program in
  n_classes old_p <= n_classes new_p
  && n_fields old_p <= n_fields new_p
  && n_sigs old_p <= n_sigs new_p
  && n_meths old_p <= n_meths new_p
  && n_vars old_p <= n_vars new_p
  && n_heaps old_p <= n_heaps new_p
  && n_invos old_p <= n_invos new_p
  && (let ok = ref true in
      for c = 0 to n_classes old_p - 1 do
        let a = class_info old_p c and b = class_info new_p c in
        if
          a.class_name <> b.class_name || a.super <> b.super || a.interfaces <> b.interfaces
          || a.is_interface <> b.is_interface
        then ok := false
      done;
      for f = 0 to n_fields old_p - 1 do
        if field_info old_p f <> field_info new_p f then ok := false
      done;
      for s = 0 to n_sigs old_p - 1 do
        if sig_info old_p s <> sig_info new_p s then ok := false
      done;
      for v = 0 to n_vars old_p - 1 do
        if var_info old_p v <> var_info new_p v then ok := false
      done;
      for h = 0 to n_heaps old_p - 1 do
        if heap_info old_p h <> heap_info new_p h then ok := false
      done;
      for i = 0 to n_invos old_p - 1 do
        if invo_info old_p i <> invo_info new_p i then ok := false
      done;
      for m = 0 to n_meths old_p - 1 do
        let a = meth_info old_p m and b = meth_info new_p m in
        let body_prefix =
          Array.length a.body <= Array.length b.body
          && (let pre = ref true in
              Array.iteri (fun i ia -> if b.body.(i) <> ia then pre := false) a.body;
              !pre)
        in
        let ret_ok =
          match (a.ret_var, b.ret_var) with
          | None, _ -> true (* a return variable may appear *)
          | Some x, Some y -> x = y
          | Some _, None -> false
        in
        if
          not
            (a.meth_name = b.meth_name && a.meth_owner = b.meth_owner
           && a.meth_sig = b.meth_sig
            && a.is_static_meth = b.is_static_meth
            && a.is_abstract = b.is_abstract && a.this_var = b.this_var
            && a.formals = b.formals && a.catches = b.catches && ret_ok && body_prefix)
        then ok := false
      done;
      (* New classes and overrides must not redirect any old dispatch. *)
      (if !ok then
         for c = 0 to n_classes old_p - 1 do
           for s = 0 to n_sigs old_p - 1 do
             if dispatch old_p c s <> dispatch new_p c s then ok := false
           done
         done);
      !ok)
  && List.for_all (fun e -> List.mem e (entries new_p)) (entries old_p)

(* ---------- name-based id realignment ---------- *)

(* Entity ids are assignment-order artifacts: the frontend numbers entities
   by first appearance in the file, so inserting an instruction mid-file
   shifts every later id even though nothing else changed. Since every
   entity kind carries a program-unique name (classes by name, fields and
   methods by qualified name, variables by [Meth$var], heaps and invocation
   sites by their builder labels), a parsed edit can be renumbered back
   onto the baseline's ids — after which [extends] sees the edit for the
   monotone extension it is. *)
let align ~old_p ~new_p =
  let ( let* ) = Option.bind in
  (* [build n_old old_name n_new new_name] maps each new id to the old id
     of the same name, or to a fresh id past the old range (in new-id
     order). [None] when names are not unique, or an old name has no new
     counterpart (the edit deleted something — not alignable, and not a
     monotone extension either way). *)
  let build n_old old_name n_new new_name =
    if n_new < n_old then None
    else begin
      let tbl = Hashtbl.create (max 16 n_old) in
      let dup = ref false in
      for i = 0 to n_old - 1 do
        let nm = old_name i in
        if Hashtbl.mem tbl nm then dup := true else Hashtbl.add tbl nm i
      done;
      let map = Array.make (max 1 n_new) (-1) in
      let next = ref n_old in
      let matched = ref 0 in
      let seen = Hashtbl.create (max 16 n_new) in
      for i = 0 to n_new - 1 do
        let nm = new_name i in
        if Hashtbl.mem seen nm then dup := true else Hashtbl.add seen nm ();
        match Hashtbl.find_opt tbl nm with
        | Some oid ->
          map.(i) <- oid;
          incr matched
        | None ->
          map.(i) <- !next;
          incr next
      done;
      if (not !dup) && !matched = n_old then Some map else None
    end
  in
  let open Program in
  let* cmap =
    build (n_classes old_p) (class_name old_p) (n_classes new_p) (class_name new_p)
  in
  let* fmap =
    build (n_fields old_p) (field_full_name old_p) (n_fields new_p) (field_full_name new_p)
  in
  let sig_key p s =
    let si = sig_info p s in
    Printf.sprintf "%s/%d" si.sig_name si.arity
  in
  let* smap = build (n_sigs old_p) (sig_key old_p) (n_sigs new_p) (sig_key new_p) in
  let* mmap =
    build (n_meths old_p) (meth_full_name old_p) (n_meths new_p) (meth_full_name new_p)
  in
  let* vmap =
    build (n_vars old_p) (var_full_name old_p) (n_vars new_p) (var_full_name new_p)
  in
  let* hmap =
    build (n_heaps old_p) (heap_full_name old_p) (n_heaps new_p) (heap_full_name new_p)
  in
  let invo_key p i = (invo_info p i).invo_name in
  let* imap = build (n_invos old_p) (invo_key old_p) (n_invos new_p) (invo_key new_p) in
  let identity m =
    let id = ref true in
    Array.iteri (fun i x -> if x <> i then id := false) m;
    !id
  in
  if
    identity cmap && identity fmap && identity smap && identity mmap && identity vmap
    && identity hmap && identity imap
  then Some new_p
  else begin
    let permute n map info remap =
      let a = Array.make (max 1 n) (remap (info 0)) in
      for i = 0 to n - 1 do
        a.(map.(i)) <- remap (info i)
      done;
      Array.sub a 0 n
    in
    let remap_instr (ins : instr) =
      match ins with
      | Alloc { target; heap } -> Alloc { target = vmap.(target); heap = hmap.(heap) }
      | Move { target; source } -> Move { target = vmap.(target); source = vmap.(source) }
      | Cast { target; source; cast_to } ->
        Cast { target = vmap.(target); source = vmap.(source); cast_to = cmap.(cast_to) }
      | Load { target; base; field } ->
        Load { target = vmap.(target); base = vmap.(base); field = fmap.(field) }
      | Store { base; field; source } ->
        Store { base = vmap.(base); field = fmap.(field); source = vmap.(source) }
      | Load_static { target; field } ->
        Load_static { target = vmap.(target); field = fmap.(field) }
      | Store_static { field; source } ->
        Store_static { field = fmap.(field); source = vmap.(source) }
      | Call i -> Call imap.(i)
      | Return { source } -> Return { source = vmap.(source) }
      | Throw { source } -> Throw { source = vmap.(source) }
    in
    let classes =
      permute (n_classes new_p) cmap (class_info new_p) (fun ci ->
          {
            ci with
            super = Option.map (fun c -> cmap.(c)) ci.super;
            interfaces = List.map (fun c -> cmap.(c)) ci.interfaces;
            declared = List.map (fun (s, m) -> (smap.(s), mmap.(m))) ci.declared;
          })
    in
    let fields =
      permute (n_fields new_p) fmap (field_info new_p) (fun fi ->
          { fi with field_owner = cmap.(fi.field_owner) })
    in
    let sigs = permute (n_sigs new_p) smap (sig_info new_p) (fun si -> si) in
    let meths =
      permute (n_meths new_p) mmap (meth_info new_p) (fun mi ->
          {
            mi with
            meth_owner = cmap.(mi.meth_owner);
            meth_sig = smap.(mi.meth_sig);
            this_var = Option.map (fun v -> vmap.(v)) mi.this_var;
            formals = Array.map (fun v -> vmap.(v)) mi.formals;
            ret_var = Option.map (fun v -> vmap.(v)) mi.ret_var;
            catches =
              Array.map
                (fun (cc : catch_clause) ->
                  { catch_type = cmap.(cc.catch_type); catch_var = vmap.(cc.catch_var) })
                mi.catches;
            body = Array.map remap_instr mi.body;
          })
    in
    let vars =
      permute (n_vars new_p) vmap (var_info new_p) (fun vi ->
          { vi with var_owner = mmap.(vi.var_owner) })
    in
    let heaps =
      permute (n_heaps new_p) hmap (heap_info new_p) (fun hi ->
          { hi with heap_class = cmap.(hi.heap_class); heap_owner = mmap.(hi.heap_owner) })
    in
    let invos =
      permute (n_invos new_p) imap (invo_info new_p) (fun ii ->
          {
            ii with
            call =
              (match ii.call with
              | Virtual { base; signature } ->
                Virtual { base = vmap.(base); signature = smap.(signature) }
              | Static { callee } -> Static { callee = mmap.(callee) });
            actuals = Array.map (fun v -> vmap.(v)) ii.actuals;
            recv = Option.map (fun v -> vmap.(v)) ii.recv;
            invo_owner = mmap.(ii.invo_owner);
          })
    in
    let entries = List.map (fun m -> mmap.(m)) (Program.entries new_p) in
    Some (Program.make ~classes ~fields ~sigs ~meths ~vars ~heaps ~invos ~entries ())
  end
