module Int_set = Ipa_support.Int_set
module Program = Ipa_ir.Program

type t = {
  in_flow : int array;
  meth_total_volume : int array;
  meth_max_var : int array;
  obj_total_field : int array;
  obj_max_field : int array;
  meth_max_var_field : int array;
  pointed_by_vars : int array;
  pointed_by_objs : int array;
}

let compute (s : Solution.t) : t =
  let p = s.program in
  let vpt = Solution.collapsed_var_pts s in
  let fpt = Solution.collapsed_fld_pts s in
  let in_flow = Array.make (Program.n_invos p) 0 in
  let meth_total_volume = Array.make (Program.n_meths p) 0 in
  let meth_max_var = Array.make (Program.n_meths p) 0 in
  let obj_total_field = Array.make (Program.n_heaps p) 0 in
  let obj_max_field = Array.make (Program.n_heaps p) 0 in
  let meth_max_var_field = Array.make (Program.n_meths p) 0 in
  (* Metrics 5 and 6 are cardinalities of the solution's shared reverse
     indexes (per heap: pointing vars, pointing field slots), so the query
     engine and these metrics build them once between them. *)
  let pointed_by_vars = Array.map Int_set.cardinal (Solution.inverted_var_pts s) in
  let pointed_by_objs = Array.map Int_set.cardinal (Solution.inverted_fld_pts s) in
  (* Var-based metric 2 (both variants). *)
  Array.iteri
    (fun var set ->
      let size = Int_set.cardinal set in
      if size > 0 then begin
        let m = (Program.var_info p var).var_owner in
        meth_total_volume.(m) <- meth_total_volume.(m) + size;
        if size > meth_max_var.(m) then meth_max_var.(m) <- size
      end)
    vpt;
  (* Field-based metric 3 (both variants). *)
  let n_fields = Program.n_fields p in
  Hashtbl.iter
    (fun key set ->
      let base = key / n_fields in
      let size = Int_set.cardinal set in
      obj_total_field.(base) <- obj_total_field.(base) + size;
      if size > obj_max_field.(base) then obj_max_field.(base) <- size)
    fpt;
  (* Metric 1: in-flow, for invocation sites present in the call graph. The
     Datalog query counts distinct (arg, heap) pairs, so duplicate actual
     variables contribute once. *)
  Hashtbl.iter
    (fun invo _targets ->
      let seen = Int_set.create ~capacity:4 () in
      Array.iter
        (fun arg ->
          if Int_set.add seen arg then in_flow.(invo) <- in_flow.(invo) + Int_set.cardinal vpt.(arg))
        (Program.invo_info p invo).actuals)
    (Solution.call_targets s);
  (* Metric 4: per method, the max obj_max_field over objects pointed to by
     its variables. *)
  Array.iteri
    (fun var set ->
      let m = (Program.var_info p var).var_owner in
      Int_set.iter
        (fun h ->
          if obj_max_field.(h) > meth_max_var_field.(m) then
            meth_max_var_field.(m) <- obj_max_field.(h))
        set)
    vpt;
  {
    in_flow;
    meth_total_volume;
    meth_max_var;
    obj_total_field;
    obj_max_field;
    meth_max_var_field;
    pointed_by_vars;
    pointed_by_objs;
  }
