(** Cost diagnostics over analysis results.

    When a context-sensitive analysis is slow, the blow-up is almost always
    concentrated: a handful of methods re-analyzed under huge numbers of
    contexts, or carrying huge points-to sets per context (the paper's §1
    cost anatomy: "c copies of n facts"). This module aggregates a solution
    into per-method and per-object hotspot reports — effectively the
    introspection metrics of §3 lifted to the {e context-sensitive} result,
    useful for understanding what a heuristic should have flagged. *)

type meth_row = {
  meth : Ipa_ir.Program.meth_id;
  contexts : int;  (** reachable contexts of the method *)
  vpt_tuples : int;  (** context-sensitive var-points-to tuples in its vars *)
  max_var_tuples : int;  (** largest single (var, ctx) points-to set *)
}

type obj_row = {
  heap : Ipa_ir.Program.heap_id;
  heap_contexts : int;  (** distinct heap contexts of this allocation site *)
  pointed_by_nodes : int;  (** (var, ctx) nodes whose set contains it *)
}

type t = {
  methods : meth_row list;  (** sorted by [vpt_tuples], descending *)
  objects : obj_row list;  (** sorted by [pointed_by_nodes], descending *)
}

val compute : Solution.t -> t

val top_methods : ?limit:int -> Solution.t -> meth_row list
val top_objects : ?limit:int -> Solution.t -> obj_row list

val print : ?limit:int -> Solution.t -> unit
(** Render both hotspot tables, then the solver counters, to stdout. *)

val print_counters : Solution.t -> unit
(** Render the solver's propagation counters ({!Solution.counters}): copy
    edges added vs. deduped, worklist batch statistics, and small-set
    promotions. *)
