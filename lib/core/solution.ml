module Int_set = Ipa_support.Int_set
module Pair_tbl = Ipa_support.Pair_tbl
module Dynarr = Ipa_support.Dynarr
module Program = Ipa_ir.Program

type outcome = Complete | Budget_exceeded

type counters = {
  edges_added : int;
  edges_deduped : int;
  batches : int;
  batch_objs : int;
  max_batch : int;
  set_promotions : int;
  cycles_collapsed : int;
  nodes_merged : int;
  repropagations_avoided : int;
  shards : int;
  sync_rounds : int;
  deltas_exchanged : int;
  cross_shard_edges : int;
  sccs_summarized : int;
  summaries_reused : int;
  sccs_resolved : int;
}

let zero_counters =
  {
    edges_added = 0;
    edges_deduped = 0;
    batches = 0;
    batch_objs = 0;
    max_batch = 0;
    set_promotions = 0;
    cycles_collapsed = 0;
    nodes_merged = 0;
    repropagations_avoided = 0;
    shards = 0;
    sync_rounds = 0;
    deltas_exchanged = 0;
    cross_shard_edges = 0;
    sccs_summarized = 0;
    summaries_reused = 0;
    sccs_resolved = 0;
  }

type t = {
  program : Program.t;
  ctxs : Ctx.t;
  objs : Pair_tbl.t;
  var_nodes : Pair_tbl.t;
  fld_nodes : Pair_tbl.t;
  pts : Int_set.t option Dynarr.t;
  reach : Pair_tbl.t;
  cg : int Dynarr.t;
  outcome : outcome;
  derivations : int;
  counters : counters;
  mutable collapsed_vpt_cache : Int_set.t array option;
  mutable collapsed_fpt_cache : (int, Int_set.t) Hashtbl.t option;
  mutable reachable_meths_cache : Int_set.t option;
  mutable call_targets_cache : (int, Int_set.t) Hashtbl.t option;
  mutable inverted_vpt_cache : Int_set.t array option;
  mutable inverted_fpt_cache : Int_set.t array option;
  mutable callee_meths_cache : Int_set.t array option;
  mutable caller_sites_cache : Int_set.t array option;
}

module Node = struct
  let of_var_node id = id * 4
  let of_fld_node id = (id * 4) + 1
  let of_static_fld f = (f * 4) + 2
  let of_exc reach_id = (reach_id * 4) + 3

  type kind = Var_node of int | Fld_node of int | Static_fld of int | Exc_node of int

  let kind n =
    match n mod 4 with
    | 0 -> Var_node (n / 4)
    | 1 -> Fld_node (n / 4)
    | 2 -> Static_fld (n / 4)
    | _ -> Exc_node (n / 4)
end

let node_pts t n =
  if n < Dynarr.length t.pts then Dynarr.get t.pts n else None

let iter_node_objs t n f = match node_pts t n with None -> () | Some s -> Int_set.iter f s

let iter_var_pts t f =
  Pair_tbl.iter
    (fun vn var ctx ->
      iter_node_objs t (Node.of_var_node vn) (fun obj ->
          f ~var ~ctx ~heap:(Pair_tbl.fst t.objs obj) ~hctx:(Pair_tbl.snd t.objs obj)))
    t.var_nodes

let iter_fld_pts t f =
  Pair_tbl.iter
    (fun fn obj field ->
      let base_heap = Pair_tbl.fst t.objs obj in
      let base_hctx = Pair_tbl.snd t.objs obj in
      iter_node_objs t (Node.of_fld_node fn) (fun o ->
          f ~base_heap ~base_hctx ~field ~heap:(Pair_tbl.fst t.objs o)
            ~hctx:(Pair_tbl.snd t.objs o)))
    t.fld_nodes

let iter_static_fld_pts t f =
  for field = 0 to Program.n_fields t.program - 1 do
    if (Program.field_info t.program field).is_static_field then
      iter_node_objs t (Node.of_static_fld field) (fun o ->
          f ~field ~heap:(Pair_tbl.fst t.objs o) ~hctx:(Pair_tbl.snd t.objs o))
  done

let iter_reachable t f = Pair_tbl.iter (fun _ meth ctx -> f ~meth ~ctx) t.reach

let iter_exc_pts t f =
  Pair_tbl.iter
    (fun reach_id meth ctx ->
      iter_node_objs t (Node.of_exc reach_id) (fun o ->
          f ~meth ~ctx ~heap:(Pair_tbl.fst t.objs o) ~hctx:(Pair_tbl.snd t.objs o)))
    t.reach

let iter_cg t f =
  let n = Dynarr.length t.cg / 4 in
  for i = 0 to n - 1 do
    f ~invo:(Dynarr.get t.cg (4 * i))
      ~caller:(Dynarr.get t.cg ((4 * i) + 1))
      ~meth:(Dynarr.get t.cg ((4 * i) + 2))
      ~callee:(Dynarr.get t.cg ((4 * i) + 3))
  done

let collapsed_var_pts t =
  match t.collapsed_vpt_cache with
  | Some a -> a
  | None ->
    let a = Array.init (Program.n_vars t.program) (fun _ -> Int_set.create ~capacity:8 ()) in
    iter_var_pts t (fun ~var ~ctx:_ ~heap ~hctx:_ -> ignore (Int_set.add a.(var) heap));
    t.collapsed_vpt_cache <- Some a;
    a

let fld_pts_key t ~heap ~field = (heap * Program.n_fields t.program) + field

let collapsed_fld_pts t =
  match t.collapsed_fpt_cache with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 1024 in
    let add key heap =
      let s =
        match Hashtbl.find_opt h key with
        | Some s -> s
        | None ->
          let s = Int_set.create ~capacity:8 () in
          Hashtbl.add h key s;
          s
      in
      ignore (Int_set.add s heap)
    in
    iter_fld_pts t (fun ~base_heap ~base_hctx:_ ~field ~heap ~hctx:_ ->
        add (fld_pts_key t ~heap:base_heap ~field) heap);
    t.collapsed_fpt_cache <- Some h;
    h

let reachable_meths t =
  match t.reachable_meths_cache with
  | Some s -> s
  | None ->
    let s = Int_set.create () in
    iter_reachable t (fun ~meth ~ctx:_ -> ignore (Int_set.add s meth));
    t.reachable_meths_cache <- Some s;
    s

let call_targets t =
  match t.call_targets_cache with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 1024 in
    iter_cg t (fun ~invo ~caller:_ ~meth ~callee:_ ->
        let s =
          match Hashtbl.find_opt h invo with
          | Some s -> s
          | None ->
            let s = Int_set.create ~capacity:4 () in
            Hashtbl.add h invo s;
            s
        in
        ignore (Int_set.add s meth));
    t.call_targets_cache <- Some h;
    h

(* ---------- reverse indexes ---------- *)

let inverted_var_pts t =
  match t.inverted_vpt_cache with
  | Some a -> a
  | None ->
    let a = Array.init (Program.n_heaps t.program) (fun _ -> Int_set.create ~capacity:4 ()) in
    Array.iteri
      (fun var set -> Int_set.iter (fun h -> ignore (Int_set.add a.(h) var)) set)
      (collapsed_var_pts t);
    t.inverted_vpt_cache <- Some a;
    a

let inverted_fld_pts t =
  match t.inverted_fpt_cache with
  | Some a -> a
  | None ->
    let a = Array.init (Program.n_heaps t.program) (fun _ -> Int_set.create ~capacity:4 ()) in
    Hashtbl.iter
      (fun key set -> Int_set.iter (fun h -> ignore (Int_set.add a.(h) key)) set)
      (collapsed_fld_pts t);
    t.inverted_fpt_cache <- Some a;
    a

let callee_meths t =
  match t.callee_meths_cache with
  | Some a -> a
  | None ->
    let a = Array.init (Program.n_meths t.program) (fun _ -> Int_set.create ~capacity:4 ()) in
    iter_cg t (fun ~invo ~caller:_ ~meth ~callee:_ ->
        ignore (Int_set.add a.((Program.invo_info t.program invo).invo_owner) meth));
    t.callee_meths_cache <- Some a;
    a

let caller_sites t =
  match t.caller_sites_cache with
  | Some a -> a
  | None ->
    let a = Array.init (Program.n_meths t.program) (fun _ -> Int_set.create ~capacity:4 ()) in
    iter_cg t (fun ~invo ~caller:_ ~meth ~callee:_ -> ignore (Int_set.add a.(meth) invo));
    t.caller_sites_cache <- Some a;
    a

let warm_indexes t =
  ignore (collapsed_var_pts t);
  ignore (collapsed_fld_pts t);
  ignore (reachable_meths t);
  ignore (call_targets t);
  ignore (inverted_var_pts t);
  ignore (inverted_fld_pts t);
  ignore (callee_meths t);
  ignore (caller_sites t)

type stats = {
  vpt_tuples : int;
  fpt_tuples : int;
  exc_tuples : int;
  cg_edges : int;
  reach_pairs : int;
  n_contexts : int;
  n_objects : int;
}

let stats t =
  let count_nodes of_node n_ids =
    let total = ref 0 in
    for i = 0 to n_ids - 1 do
      match node_pts t (of_node i) with
      | Some s -> total := !total + Int_set.cardinal s
      | None -> ()
    done;
    !total
  in
  let vpt = count_nodes Node.of_var_node (Pair_tbl.count t.var_nodes) in
  let fpt = count_nodes Node.of_fld_node (Pair_tbl.count t.fld_nodes) in
  let sfpt = count_nodes Node.of_static_fld (Program.n_fields t.program) in
  let exc = count_nodes Node.of_exc (Pair_tbl.count t.reach) in
  {
    vpt_tuples = vpt;
    fpt_tuples = fpt + sfpt;
    exc_tuples = exc;
    cg_edges = Dynarr.length t.cg / 4;
    reach_pairs = Pair_tbl.count t.reach;
    n_contexts = Ctx.count t.ctxs;
    n_objects = Pair_tbl.count t.objs;
  }

let heap_of_obj t obj = Pair_tbl.fst t.objs obj
let hctx_of_obj t obj = Pair_tbl.snd t.objs obj

(* --- soundness validator ---

   Checks the invariants clients (value-flow graph, taint, precision
   metrics) rely on. Everything except the entry-point check holds by
   solver construction even on a partial (budget-exceeded) fixpoint:
   filters are applied at insertion time, reach pairs are interned before
   any body edge exists, and call-graph edges are derived from receiver
   objects already recorded in the base variable's points-to set. *)

let self_check t =
  let p = t.program in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let n_ctxs = Ctx.count t.ctxs in
  let n_objs = Pair_tbl.count t.objs in
  let check_obj what obj =
    if obj < 0 || obj >= n_objs then
      err "%s: points to object id %d, but only %d objects interned" what obj n_objs
    else begin
      let heap = Pair_tbl.fst t.objs obj in
      let hctx = Pair_tbl.snd t.objs obj in
      if heap >= Program.n_heaps p then err "%s: object %d has invalid heap %d" what obj heap;
      if hctx >= n_ctxs then err "%s: object %d has uninterned heap context %d" what obj hctx
    end
  in
  (* Every populated pts slot decodes to a live node and holds valid objects. *)
  for n = 0 to Dynarr.length t.pts - 1 do
    match Dynarr.get t.pts n with
    | None -> ()
    | Some set ->
      let what =
        match Node.kind n with
        | Node.Var_node id ->
          if id >= Pair_tbl.count t.var_nodes then begin
            err "pts: var node %d not interned" id;
            None
          end
          else begin
            let var = Pair_tbl.fst t.var_nodes id in
            let ctx = Pair_tbl.snd t.var_nodes id in
            if var >= Program.n_vars p then err "pts: var node %d has invalid var %d" id var;
            if ctx >= n_ctxs then err "pts: var node %d has uninterned context %d" id ctx;
            if var < Program.n_vars p && ctx < n_ctxs then begin
              let owner = (Program.var_info p var).var_owner in
              if Pair_tbl.find_opt t.reach owner ctx = None then
                err "pts: var %s has points-to under a context in which its method %s is not reachable"
                  (Program.var_full_name p var) (Program.meth_full_name p owner)
            end;
            Some (Printf.sprintf "var node %s" (Program.var_full_name p var))
          end
        | Node.Fld_node id ->
          if id >= Pair_tbl.count t.fld_nodes then begin
            err "pts: field node %d not interned" id;
            None
          end
          else begin
            let base_obj = Pair_tbl.fst t.fld_nodes id in
            let field = Pair_tbl.snd t.fld_nodes id in
            check_obj "fld node base" base_obj;
            if field >= Program.n_fields p then
              err "pts: field node %d has invalid field %d" id field
            else if (Program.field_info p field).is_static_field then
              err "pts: field node %d keyed by static field %s" id
                (Program.field_full_name p field);
            Some (Printf.sprintf "field node #%d" id)
          end
        | Node.Static_fld f ->
          if f >= Program.n_fields p then begin
            err "pts: static field node has invalid field %d" f;
            None
          end
          else begin
            if not (Program.field_info p f).is_static_field then
              err "pts: static-field node keyed by instance field %s"
                (Program.field_full_name p f);
            Some (Printf.sprintf "static field %s" (Program.field_full_name p f))
          end
        | Node.Exc_node id ->
          if id >= Pair_tbl.count t.reach then begin
            err "pts: exception node %d not a reachable-method instance" id;
            None
          end
          else Some (Printf.sprintf "exc node of %s" (Program.meth_full_name p (Pair_tbl.fst t.reach id)))
      in
      (match what with
      | None -> ()
      | Some what -> Int_set.iter (fun obj -> check_obj what obj) set)
  done;
  (* The remaining checks decode node and object ids unguarded (via the
     collapsed projections), so bail out early on structural corruption. *)
  if !errs <> [] then List.rev !errs
  else begin
  (* Declared-type filters: a variable defined only by casts (resp. only by
     a single catch clause) may point only to objects admitted by the
     corresponding filter spec. Mirrors the solver's insertion-time specs. *)
  let n_vars = Program.n_vars p in
  let cast_targets = Array.make n_vars [] in
  let catch_defs = Array.make n_vars [] in
  let other_def = Array.make n_vars false in
  let mark v = other_def.(v) <- true in
  for m = 0 to Program.n_meths p - 1 do
    let mi = Program.meth_info p m in
    (match mi.this_var with Some v -> mark v | None -> ());
    Array.iter mark mi.formals;
    Array.iteri (fun idx (c : Program.catch_clause) ->
        catch_defs.(c.catch_var) <- (m, idx) :: catch_defs.(c.catch_var))
      mi.catches;
    Array.iter
      (fun (i : Program.instr) ->
        match i with
        | Alloc { target; _ } | Move { target; _ } | Load { target; _ }
        | Load_static { target; _ } ->
          mark target
        | Cast { target; cast_to; _ } -> cast_targets.(target) <- cast_to :: cast_targets.(target)
        | Call invo -> (
          match (Program.invo_info p invo).recv with Some v -> mark v | None -> ())
        | Return { source } -> (
          match mi.ret_var with Some rv when rv <> source -> mark rv | _ -> ())
        | Store _ | Store_static _ | Throw _ -> ())
      mi.body
  done;
  let vpt = collapsed_var_pts t in
  for v = 0 to n_vars - 1 do
    if (not other_def.(v)) && Int_set.cardinal vpt.(v) > 0 then begin
      (match (cast_targets.(v), catch_defs.(v)) with
      | [], [] | _ :: _, _ :: _ -> ()
      | targets, [] ->
        Int_set.iter
          (fun h ->
            let cls = (Program.heap_info p h).heap_class in
            if not (List.exists (fun c -> Program.subtype p ~sub:cls ~super:c) targets) then
              err "filter: cast-only var %s points to %s, not a subtype of any cast target"
                (Program.var_full_name p v) (Program.heap_full_name p h))
          vpt.(v)
      | [], [ (m, idx) ] ->
        let clauses = (Program.meth_info p m).catches in
        Int_set.iter
          (fun h ->
            let cls = (Program.heap_info p h).heap_class in
            if not (Program.subtype p ~sub:cls ~super:clauses.(idx).catch_type) then
              err "filter: catch var %s points to %s, not a subtype of its clause type"
                (Program.var_full_name p v) (Program.heap_full_name p h);
            for j = 0 to idx - 1 do
              if Program.subtype p ~sub:cls ~super:clauses.(j).catch_type then
                err "filter: catch var %s points to %s, already admitted by earlier clause %d"
                  (Program.var_full_name p v) (Program.heap_full_name p h) j
            done)
          vpt.(v)
      | [], _ :: _ :: _ -> ())
    end
  done;
  (* Call-graph edges: both endpoints reachable, and the callee is a legal
     dispatch target — for virtual calls, witnessed by a pointed-to
     receiver object of the base variable. *)
  iter_cg t (fun ~invo ~caller ~meth ~callee ->
      if invo >= Program.n_invos p then err "cg: invalid invocation id %d" invo
      else begin
        let ii = Program.invo_info p invo in
        if caller >= n_ctxs then err "cg: %s has uninterned caller context %d" ii.invo_name caller;
        if callee >= n_ctxs then err "cg: %s has uninterned callee context %d" ii.invo_name callee;
        if meth >= Program.n_meths p then err "cg: %s targets invalid method %d" ii.invo_name meth
        else begin
          if Pair_tbl.find_opt t.reach ii.invo_owner caller = None then
            err "cg: caller instance of %s (in %s) not reachable" ii.invo_name
              (Program.meth_full_name p ii.invo_owner);
          if Pair_tbl.find_opt t.reach meth callee = None then
            err "cg: Reachable not closed under edge %s -> %s" ii.invo_name
              (Program.meth_full_name p meth);
          match ii.call with
          | Static { callee = c } ->
            if meth <> c then
              err "cg: static call %s resolved to %s instead of its declared callee" ii.invo_name
                (Program.meth_full_name p meth)
          | Virtual { base; signature } ->
            if (Program.meth_info p meth).is_abstract then
              err "cg: %s targets abstract method %s" ii.invo_name (Program.meth_full_name p meth);
            let witnessed =
              Int_set.exists
                (fun h ->
                  Program.dispatch p (Program.heap_info p h).heap_class signature = Some meth)
                vpt.(base)
            in
            if not witnessed then
              err "cg: %s -> %s has no pointed-to receiver dispatching there" ii.invo_name
                (Program.meth_full_name p meth)
        end
      end);
  (* Entry points seed reachability — only guaranteed on a complete run. *)
  if t.outcome = Complete then
    List.iter
      (fun e ->
        if Pair_tbl.find_opt t.reach e Ctx.empty = None then
          err "reach: entry point %s not reachable under the empty context"
            (Program.meth_full_name p e))
      (Program.entries p);
  List.rev !errs
  end

let self_check_exn t =
  match self_check t with
  | [] -> ()
  | errs ->
    failwith
      (Printf.sprintf "Solution.self_check: %d violation(s):\n%s" (List.length errs)
         (String.concat "\n" errs))
