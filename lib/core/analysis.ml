module Timer = Ipa_support.Timer

type result = {
  label : string;
  solution : Solution.t;
  seconds : float;
  timed_out : bool;
}

let run_config p ~label config =
  let solution, seconds = Timer.time (fun () -> Solver.run p config) in
  { label; solution; seconds; timed_out = solution.Solution.outcome = Budget_exceeded }

let run_plain ?(budget = 0) ?(shards = 1) p flavor =
  let strategy = Flavors.strategy p flavor in
  run_config p ~label:(Flavors.to_string flavor) (Solver.plain p ~budget ~shards strategy)

(* The configuration of every second pass: context-insensitive constructors
   by default, the requested flavor's constructors on refined elements. *)
let second_pass_config ?(budget = 0) ?(shards = 1) p flavor refine =
  {
    Solver.default_strategy = Flavors.strategy p Flavors.Insensitive;
    refined_strategy = Flavors.strategy p flavor;
    refine;
    budget;
    order = Solver.Topo;
    collapse_cycles = true;
    field_sensitive = true;
    shards;
  }

type introspective = {
  base : result;
  metrics : Introspection.t;
  heuristic : Heuristics.t;
  refine : Refine.t;
  selection : Heuristics.stats;
  second : result;
}

let run_introspective_from_base ?(budget = 0) ?(shards = 1) p ~base ~metrics flavor heuristic =
  let refine = Heuristics.select base.solution metrics heuristic in
  let selection = Heuristics.selection_stats base.solution refine in
  let config = second_pass_config ~budget ~shards p flavor refine in
  let label = Printf.sprintf "%s-%s" (Flavors.to_string flavor) (Heuristics.name heuristic) in
  let second = run_config p ~label config in
  { base; metrics; heuristic; refine; selection; second }

let run_introspective ?(budget = 0) ?(shards = 1) p flavor heuristic =
  let base = run_plain ~budget ~shards p Flavors.Insensitive in
  let metrics = Introspection.compute base.solution in
  run_introspective_from_base ~budget ~shards p ~base ~metrics flavor heuristic

type client_driven = {
  cd_base : result;
  cd_refine : Refine.t;
  cd_second : result;
}

let run_client_driven_from_base ?(budget = 0) ?(shards = 1) p ~base flavor query =
  let cd_refine = Client_driven.select base.solution query in
  let config = second_pass_config ~budget ~shards p flavor cd_refine in
  let label = Printf.sprintf "%s-query" (Flavors.to_string flavor) in
  let cd_second = run_config p ~label config in
  { cd_base = base; cd_refine; cd_second }

let run_client_driven ?(budget = 0) ?(shards = 1) p flavor query =
  let base = run_plain ~budget ~shards p Flavors.Insensitive in
  run_client_driven_from_base ~budget ~shards p ~base flavor query

let run_compositional ?store ?(jobs = 1) ?(budget = 0) p flavor =
  let strategy = Flavors.strategy p flavor in
  let config = Solver.plain p ~budget strategy in
  let (solution, report), seconds =
    Timer.time (fun () -> Compositional_solver.solve ?store ~jobs p config)
  in
  let label = Printf.sprintf "%s-compositional" (Flavors.to_string flavor) in
  ( { label; solution; seconds; timed_out = solution.Solution.outcome = Budget_exceeded },
    report )

let run_incremental ?store ?(jobs = 1) p ~base_program ~base_solution flavor =
  let strategy = Flavors.strategy p flavor in
  let config = Solver.plain p strategy in
  let (solution, report), seconds =
    Timer.time (fun () ->
        Compositional_solver.solve_incremental ?store ~jobs ~base_program ~base_solution p
          config)
  in
  let label = Printf.sprintf "%s-incremental" (Flavors.to_string flavor) in
  ( { label; solution; seconds; timed_out = solution.Solution.outcome = Budget_exceeded },
    report )

let run_mixed ?(budget = 0) ?(shards = 1) p ~default ~refined ~refine =
  let config =
    {
      Solver.default_strategy = Flavors.strategy p default;
      refined_strategy = Flavors.strategy p refined;
      refine;
      budget;
      order = Solver.Topo;
      collapse_cycles = true;
      field_sensitive = true;
      shards;
    }
  in
  let label = Printf.sprintf "%s+%s" (Flavors.to_string default) (Flavors.to_string refined) in
  run_config p ~label config
