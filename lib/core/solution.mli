(** Analysis results: the computed relations of the paper's model —
    [VarPointsTo], [FldPointsTo], [CallGraph], [Reachable] — plus bookkeeping.

    A value of this type is produced by {!Solver.run}. The record fields are
    the raw interned tables (treat them as read-only); the functions below
    provide decoded iteration and cached context-insensitive ("collapsed")
    projections, which is what precision/introspection metrics consume. *)

module Int_set = Ipa_support.Int_set
module Pair_tbl = Ipa_support.Pair_tbl
module Dynarr = Ipa_support.Dynarr

type outcome =
  | Complete
  | Budget_exceeded
      (** The derivation budget ran out — the deterministic analogue of the
          paper's 90-minute timeout. Tables hold the partial fixpoint. *)

(** Cheap solver instrumentation: how much propagation work the run did
    beyond the derivation count. Filled by {!Solver.run}; all zeros on
    solutions built elsewhere. *)
type counters = {
  edges_added : int;  (** distinct copy edges registered *)
  edges_deduped : int;  (** duplicate [add_edge] requests skipped *)
  batches : int;  (** worklist batches processed *)
  batch_objs : int;  (** objects consumed across all batches *)
  max_batch : int;  (** largest single pending batch *)
  set_promotions : int;
      (** {!Ipa_support.Int_set} small-to-hash promotions during the run *)
  cycles_collapsed : int;
      (** copy-edge cycles merged by online cycle elimination *)
  nodes_merged : int;  (** nodes absorbed into a representative *)
  repropagations_avoided : int;
      (** semantic insertions that needed no physical pending push — work the
          collapse saved relative to an uncollapsed solve *)
  shards : int;
      (** worklist shards the solve ran with; 1 for a sequential solve *)
  sync_rounds : int;
      (** cross-shard synchronization barriers (0 when [shards = 1]) *)
  deltas_exchanged : int;
      (** (target-node, object) deltas delivered through shard outboxes *)
  cross_shard_edges : int;
      (** copy edges crossing a shard boundary in the last partition *)
  sccs_summarized : int;
      (** call-graph components freshly summarized by a compositional solve *)
  summaries_reused : int;
      (** components whose summary came out of the content-addressed cache *)
  sccs_resolved : int;
      (** components (re-)solved: all of them on a cold compositional solve,
          only the dirty closure on an incremental one *)
}

val zero_counters : counters

type t = {
  program : Ipa_ir.Program.t;
  ctxs : Ctx.t;
  objs : Pair_tbl.t;  (** (heap, hctx) pairs, id = "object" *)
  var_nodes : Pair_tbl.t;  (** (var, ctx) pairs *)
  fld_nodes : Pair_tbl.t;  (** (object, field) pairs *)
  pts : Int_set.t option Dynarr.t;  (** node id -> objects; see {!Node} *)
  reach : Pair_tbl.t;  (** (meth, ctx) pairs, all reachable *)
  cg : int Dynarr.t;  (** call-graph edges, 4 ints each: invo, callerCtx, meth, calleeCtx *)
  outcome : outcome;
  derivations : int;  (** tuple insertions performed *)
  counters : counters;  (** propagation instrumentation; see {!counters} *)
  mutable collapsed_vpt_cache : Int_set.t array option;
  mutable collapsed_fpt_cache : (int, Int_set.t) Hashtbl.t option;
  mutable reachable_meths_cache : Int_set.t option;
  mutable call_targets_cache : (int, Int_set.t) Hashtbl.t option;
  mutable inverted_vpt_cache : Int_set.t array option;
  mutable inverted_fpt_cache : Int_set.t array option;
  mutable callee_meths_cache : Int_set.t array option;
  mutable caller_sites_cache : Int_set.t array option;
}

(** Node-id encoding shared with the solver: a node is a variable under a
    context, a field of an object, a static field, or the exception node of
    a reachable method instance (keyed by its dense id in [reach]). *)
module Node : sig
  val of_var_node : int -> int
  val of_fld_node : int -> int
  val of_static_fld : Ipa_ir.Program.field_id -> int
  val of_exc : int -> int

  type kind = Var_node of int | Fld_node of int | Static_fld of int | Exc_node of int

  val kind : int -> kind
end

(** {1 Iteration over the full context-sensitive relations} *)

val iter_var_pts :
  t -> (var:int -> ctx:int -> heap:int -> hctx:int -> unit) -> unit

val iter_fld_pts :
  t -> (base_heap:int -> base_hctx:int -> field:int -> heap:int -> hctx:int -> unit) -> unit

val iter_static_fld_pts : t -> (field:int -> heap:int -> hctx:int -> unit) -> unit

val iter_reachable : t -> (meth:int -> ctx:int -> unit) -> unit

val iter_exc_pts : t -> (meth:int -> ctx:int -> heap:int -> hctx:int -> unit) -> unit
(** Exception objects escaping each reachable method instance (uncaught
    within it and its callees). *)

val iter_cg : t -> (invo:int -> caller:int -> meth:int -> callee:int -> unit) -> unit

(** {1 Collapsed (context-insensitive) projections — cached} *)

val collapsed_var_pts : t -> Int_set.t array
(** Per variable, the set of heap ids it may point to in any context. The
    array is cached; do not mutate it or its sets. *)

val collapsed_fld_pts : t -> (int, Int_set.t) Hashtbl.t
(** Keyed by [base_heap * n_fields + field]; values are heap-id sets. *)

val fld_pts_key : t -> heap:int -> field:int -> int

val reachable_meths : t -> Int_set.t

val call_targets : t -> (int, Int_set.t) Hashtbl.t
(** Per invocation site (virtual and static), the set of target methods in
    the call graph. Sites with no edge are absent. *)

(** {1 Reverse indexes — lazy, memoized}

    Demand clients (the query engine, {!Introspection}) ask the collapsed
    relations "backwards": who points at this object, who calls this
    method. Each index below is built on first use from the corresponding
    forward projection and cached on the solution; like the collapsed
    caches, treat the returned structures as read-only. *)

val inverted_var_pts : t -> Int_set.t array
(** Per heap id, the set of variables whose collapsed points-to set
    contains it — the inverse of {!collapsed_var_pts}. *)

val inverted_fld_pts : t -> Int_set.t array
(** Per heap id, the set of field slots (keyed as in {!fld_pts_key})
    whose collapsed field-points-to set contains it. *)

val callee_meths : t -> Int_set.t array
(** Per method, the set of methods it calls somewhere in the collapsed
    call graph (adjacency for forward reachability queries). *)

val caller_sites : t -> Int_set.t array
(** Per method, the set of invocation sites with a call-graph edge into
    it (the reverse call-graph adjacency; the calling method is the
    site's [invo_owner]). *)

val warm_indexes : t -> unit
(** Force every lazy projection and reverse index above. After warming, a
    solution can be read concurrently from several domains: all cached
    structures are built and no further internal mutation occurs (the
    query server calls this before fanning queries out). *)

(** {1 Size statistics} *)

type stats = {
  vpt_tuples : int;  (** context-sensitive var-points-to tuples *)
  fpt_tuples : int;  (** field-points-to tuples (incl. static) *)
  exc_tuples : int;  (** escaping-exception tuples *)
  cg_edges : int;
  reach_pairs : int;
  n_contexts : int;
  n_objects : int;
}

val stats : t -> stats

val heap_of_obj : t -> int -> int
(** Allocation site of an interned object. *)

val hctx_of_obj : t -> int -> int

(** {1 Soundness validation} *)

val self_check : t -> string list
(** Statically validate the invariants clients rely on; each returned string
    describes one violation (empty list = sound). Checked: every populated
    pts node id decodes to a live var/field/exception node holding interned
    objects; points-to respects the declared-type filters of cast-only and
    catch-only variables; every call-graph edge's callee is a legal dispatch
    target for its invocation (witnessed by a pointed-to receiver on virtual
    calls); [Reachable] is closed under call-graph edges; and, on a
    {!Complete} run, every entry point is reachable under the empty context.
    All but the entry check hold by construction even on a
    {!Budget_exceeded} partial fixpoint. Intended for tests and the CLI —
    cost is roughly one pass over the solution's tables. *)

val self_check_exn : t -> unit
(** Raises [Failure] listing every violation; no-op when sound. *)
