module Program = Ipa_ir.Program
module Int_set = Ipa_support.Int_set
module Table = Ipa_support.Ascii_table

type meth_row = {
  meth : Program.meth_id;
  contexts : int;
  vpt_tuples : int;
  max_var_tuples : int;
}

type obj_row = {
  heap : Program.heap_id;
  heap_contexts : int;
  pointed_by_nodes : int;
}

type t = {
  methods : meth_row list;
  objects : obj_row list;
}

let compute (s : Solution.t) : t =
  let p = s.program in
  let n_meths = Program.n_meths p in
  let contexts = Array.make n_meths 0 in
  let vpt = Array.make n_meths 0 in
  let max_var = Array.make n_meths 0 in
  Solution.iter_reachable s (fun ~meth ~ctx:_ -> contexts.(meth) <- contexts.(meth) + 1);
  (* Per (var, ctx) set sizes, attributed to the owning method. *)
  let per_node = Hashtbl.create 1024 in
  Solution.iter_var_pts s (fun ~var ~ctx ~heap:_ ~hctx:_ ->
      let key = (var, ctx) in
      Hashtbl.replace per_node key (1 + Option.value ~default:0 (Hashtbl.find_opt per_node key)));
  Hashtbl.iter
    (fun (var, _ctx) count ->
      let m = (Program.var_info p var).var_owner in
      vpt.(m) <- vpt.(m) + count;
      if count > max_var.(m) then max_var.(m) <- count)
    per_node;
  let methods =
    List.filter (fun r -> r.vpt_tuples > 0 || r.contexts > 0)
      (List.init n_meths (fun m ->
           { meth = m; contexts = contexts.(m); vpt_tuples = vpt.(m); max_var_tuples = max_var.(m) }))
  in
  let methods =
    List.sort (fun a b -> compare (b.vpt_tuples, b.contexts) (a.vpt_tuples, a.contexts)) methods
  in
  let n_heaps = Program.n_heaps p in
  let hctxs = Array.make n_heaps 0 in
  let seen_hctx = Array.make n_heaps None in
  let pointed = Array.make n_heaps 0 in
  Solution.iter_var_pts s (fun ~var:_ ~ctx:_ ~heap ~hctx ->
      pointed.(heap) <- pointed.(heap) + 1;
      let seen =
        match seen_hctx.(heap) with
        | Some set -> set
        | None ->
          let set = Int_set.create ~capacity:4 () in
          seen_hctx.(heap) <- Some set;
          set
      in
      if Int_set.add seen hctx then hctxs.(heap) <- hctxs.(heap) + 1);
  let objects =
    List.filter (fun r -> r.pointed_by_nodes > 0)
      (List.init n_heaps (fun h ->
           { heap = h; heap_contexts = hctxs.(h); pointed_by_nodes = pointed.(h) }))
  in
  let objects =
    List.sort (fun a b -> compare b.pointed_by_nodes a.pointed_by_nodes) objects
  in
  { methods; objects }

let take limit xs = List.filteri (fun i _ -> i < limit) xs

let print_counters (s : Solution.t) =
  let c = s.counters in
  print_endline "-- solver propagation counters --";
  let pct part whole =
    if whole = 0 then "-" else Printf.sprintf "%.1f%%" (100.0 *. float_of_int part /. float_of_int whole)
  in
  Table.print
    ~header:[ "counter"; "value"; "note" ]
    [
      [ "copy edges added"; string_of_int c.edges_added; "" ];
      [
        "copy edges deduped";
        string_of_int c.edges_deduped;
        pct c.edges_deduped (c.edges_added + c.edges_deduped) ^ " of requests";
      ];
      [ "worklist batches"; string_of_int c.batches; "" ];
      [
        "objects per batch";
        (if c.batches = 0 then "-"
         else Printf.sprintf "%.2f" (float_of_int c.batch_objs /. float_of_int c.batches));
        Printf.sprintf "max %d" c.max_batch;
      ];
      [ "small-set promotions"; string_of_int c.set_promotions; "past 8 elements" ];
      [ "cycles collapsed"; string_of_int c.cycles_collapsed; "online cycle elimination" ];
      [ "nodes merged"; string_of_int c.nodes_merged; "absorbed into representatives" ];
      [
        "repropagations avoided";
        string_of_int c.repropagations_avoided;
        pct c.repropagations_avoided s.derivations ^ " of derivations";
      ];
      [ "solver shards"; string_of_int c.shards; (if c.shards <= 1 then "sequential" else "") ];
      [ "sync rounds"; string_of_int c.sync_rounds; "cross-shard barriers" ];
      [
        "deltas exchanged";
        string_of_int c.deltas_exchanged;
        pct c.deltas_exchanged c.batch_objs ^ " of batch objects";
      ];
      [ "cross-shard edges"; string_of_int c.cross_shard_edges; "in the last partition" ];
      [ "sccs summarized"; string_of_int c.sccs_summarized; "compositional solve" ];
      [
        "summaries reused";
        string_of_int c.summaries_reused;
        pct c.summaries_reused (c.sccs_summarized + c.summaries_reused) ^ " of components";
      ];
      [
        "sccs re-solved";
        string_of_int c.sccs_resolved;
        "dirty closure on an incremental solve";
      ];
    ]

let top_methods ?(limit = 15) s = take limit (compute s).methods
let top_objects ?(limit = 15) s = take limit (compute s).objects

let print ?(limit = 15) s =
  let p = s.Solution.program in
  let d = compute s in
  print_endline "-- hottest methods (context-sensitive var-points-to tuples) --";
  Table.print
    ~header:[ "method"; "contexts"; "vpt tuples"; "max var set" ]
    (List.map
       (fun r ->
         [
           Program.meth_full_name p r.meth;
           string_of_int r.contexts;
           string_of_int r.vpt_tuples;
           string_of_int r.max_var_tuples;
         ])
       (take limit d.methods));
  print_endline "-- hottest allocation sites (pointed-by (var,ctx) nodes) --";
  Table.print
    ~header:[ "allocation site"; "heap contexts"; "pointed-by nodes" ]
    (List.map
       (fun r ->
         [
           Program.heap_full_name p r.heap;
           string_of_int r.heap_contexts;
           string_of_int r.pointed_by_nodes;
         ])
       (take limit d.objects));
  print_counters s
