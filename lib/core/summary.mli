(** Per-SCC method summaries for compositional and incremental solving.

    The call graph is over-approximated by CHA (a static call targets its
    declared callee, a virtual call every concrete implementation of its
    signature), condensed with Tarjan into strongly connected components
    emitted bottom-up (callees before callers). Each component gets:

    - a {e content digest} over the names (never the raw ids) of its entity
      slice — methods, bodies, referenced classes/fields/heaps/callees — so
      an edit dirties exactly the components whose slice changed;
    - a {e boundary abstraction} counting the flows that cross the
      component's interface (formals, returns, escaping throws, heap
      operations on possibly-non-local bases, dispatch sites), backed by a
      small intra-component may-escape fixpoint; and
    - a {e compiled constraint module} ([ops]) whose replay emits the exact
      constraint stream of [Solver.process_body], which is what lets the
      compositional solve certify byte-identity with the monolithic one.

    Summaries are content-addressed: [Harness.Cache] stores the encoded
    boundary under a key derived from the digest and the configuration
    fingerprint ([summary-v1]). *)

module Program := Ipa_ir.Program

(** {1 Condensation} *)

type scc = {
  scc_id : int;
  members : int array;  (** meth ids, ascending *)
  callees : int array;  (** callee scc ids, ascending, self excluded *)
}

type condensation = {
  sccs : scc array;
      (** bottom-up topological order: a component precedes its callers *)
  scc_of_meth : int array;
}

val condense : Program.t -> condensation

val dirty_closure : condensation -> int list -> bool array
(** [dirty_closure cond seeds] marks the seed components plus every
    transitive caller — the components whose facts may depend on a change
    inside a seed. *)

(** {1 Content digests} *)

val digest : Program.t -> condensation -> int -> string
(** [digest p cond scc_id] is a hex digest of the component's entity slice,
    computed over entity names so it is stable across id renumberings. *)

(** {1 Boundary abstraction} *)

type boundary = {
  b_formals : int;
  b_returns : int;
  b_catches : int;
  b_escaping_throws : int;
  b_escaping_loads : int;
  b_escaping_stores : int;
  b_local_loads : int;
  b_local_stores : int;
  b_allocs : int;
  b_virtual_sites : int;
  b_external_calls : int;
}

val boundary : Program.t -> condensation -> int -> boundary
(** The component's boundary effect; see the module docstring. *)

type t = { summary_scc : int; summary_digest : string; summary_boundary : boundary }

(** {1 Cache blob codec} *)

val blob_magic : string
(** ["IPSM"] — distinct from snapshot framing, so [Harness.Cache] can
    classify entries without decoding them. *)

val encode_blob : digest:string -> string list -> boundary -> string
(** [encode_blob ~digest member_names boundary] frames a summary for the
    content-addressed cache. *)

val decode_blob : string -> (string * string list * boundary) option
(** Inverse of {!encode_blob}; [None] on foreign or corrupt bytes. *)

(** {1 Compiled constraint modules} *)

type op =
  | O_alloc of { target : int; heap : int }
  | O_copy of { target : int; source : int }
  | O_cast of { target : int; source : int; cast_to : int }
  | O_load_static of { target : int; field : int }
  | O_store_static of { field : int; source : int }
  | O_scall of { invo : int; callee : int }
  | O_throw of { source : int }

type ops = op array array
(** One module per method, indexed by meth id. *)

val compile : Program.t -> ops
(** Compile every method body. Loads, stores and virtual calls compile to
    nothing (the solver drives them from base-variable points-to growth);
    [Return] compiles to the copy onto the canonical return variable. *)

(** {1 Monotone extension} *)

val extends : old_p:Program.t -> new_p:Program.t -> bool
(** Whether [new_p] is a structural, id-stable superset of [old_p]: old
    entity arrays are identical prefixes (method bodies may gain appended
    instructions; an absent return variable may appear), dispatch is
    preserved on every old (class, signature) pair, and entries only grow.
    This is the soundness precondition for seeding a solve of [new_p] with
    a fixpoint of [old_p]. *)

val align : old_p:Program.t -> new_p:Program.t -> Program.t option
(** Renumber [new_p] so entities sharing a name with [old_p] keep the old
    ids, with genuinely new entities packed after them (in their original
    relative order). Frontend-assigned ids are file-order artifacts — an
    instruction inserted mid-file shifts every later id — but names are
    program-unique and stable, so alignment recovers the id-stability that
    {!extends} (and therefore warm seeding) requires. Returns [new_p]
    itself when the maps are already the identity; [None] when names are
    not unique or an [old_p] name has no counterpart (a deletion — not a
    monotone extension anyway). The aligned program drops source
    locations. *)
