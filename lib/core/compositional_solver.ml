module Domain_pool = Ipa_support.Domain_pool
module Program = Ipa_ir.Program

type store = {
  find_bytes : string -> string option;
  put_bytes : string -> string -> unit;
}

type report = {
  n_sccs : int;
  sccs_summarized : int;
  summaries_reused : int;
  sccs_resolved : int;
  dirty_sccs : int list;
  incremental : bool;
  fallback : string option;
}

(* Mirrors the demand-slice key discipline (demand-slice-v1): a plain hex
   MD5 over a kind tag, the configuration fingerprint, and the component's
   content digest. The program digest is deliberately absent — that is the
   whole point: a component whose slice did not change keeps its key across
   program edits. *)
let summary_key ~fingerprint digest =
  Digest.to_hex (Digest.string (Printf.sprintf "summary-v1\n%s\n%s" fingerprint digest))

let member_names p (scc : Summary.scc) =
  Array.to_list (Array.map (Program.meth_full_name p) scc.members)

(* Digest every component (parallel), probe the store sequentially so hit
   and miss counts are deterministic, then compute boundaries for the
   misses (parallel) and publish them sequentially. Returns the per-scc
   digests plus (freshly summarized, reused) counts. *)
let extract ?store ~jobs p cfg (cond : Summary.condensation) =
  let fingerprint = Snapshot.config_fingerprint cfg in
  let n = Array.length cond.sccs in
  let ids = Array.init n (fun i -> i) in
  let digests =
    Domain_pool.with_pool ~jobs (fun pool ->
        Domain_pool.map pool (fun sid -> Summary.digest p cond sid) ids)
  in
  match store with
  | None ->
    (* No store: every component is (re)summarized implicitly by the solve
       itself; nothing is cached, nothing is reused. *)
    (digests, n, 0)
  | Some store ->
    let misses = ref [] in
    let reused = ref 0 in
    Array.iter
      (fun sid ->
        let key = summary_key ~fingerprint digests.(sid) in
        match store.find_bytes key with
        | Some bytes -> (
          match Summary.decode_blob bytes with
          | Some (d, _, _) when d = digests.(sid) -> incr reused
          | Some _ | None ->
            (* Foreign, corrupt, or colliding entry: recompute. *)
            misses := sid :: !misses)
        | None -> misses := sid :: !misses)
      ids;
    let misses = Array.of_list (List.rev !misses) in
    let boundaries =
      Domain_pool.with_pool ~jobs (fun pool ->
          Domain_pool.map pool (fun sid -> Summary.boundary p cond sid) misses)
    in
    Array.iteri
      (fun i sid ->
        let blob =
          Summary.encode_blob ~digest:digests.(sid)
            (member_names p cond.sccs.(sid))
            boundaries.(i)
        in
        store.put_bytes (summary_key ~fingerprint digests.(sid)) blob)
      misses;
    (digests, Array.length misses, !reused)

let patch_counters (sol : Solution.t) ~sccs_summarized ~summaries_reused ~sccs_resolved =
  {
    sol with
    Solution.counters =
      { sol.Solution.counters with sccs_summarized; summaries_reused; sccs_resolved };
  }

let solve ?store ?(jobs = 1) p cfg =
  let cond = Summary.condense p in
  let n_sccs = Array.length cond.sccs in
  let _digests, summarized, reused = extract ?store ~jobs p cfg cond in
  (* The solve replays each body's compiled constraint module instead of
     walking instructions: the constraint stream is identical by
     construction, so the solution — counters, derivations, tables — is
     byte-identical to the monolithic [Solver.run]. *)
  let sol = Solver.run ~replay:(Summary.compile p) p cfg in
  let sol =
    patch_counters sol ~sccs_summarized:summarized ~summaries_reused:reused
      ~sccs_resolved:n_sccs
  in
  ( sol,
    {
      n_sccs;
      sccs_summarized = summarized;
      summaries_reused = reused;
      sccs_resolved = n_sccs;
      dirty_sccs = [];
      incremental = false;
      fallback = None;
    } )

let cold_fallback ?store ?jobs p cfg reason =
  let sol, r = solve ?store ?jobs p cfg in
  (sol, { r with fallback = Some reason })

let solve_incremental ?store ?(jobs = 1) ~base_program ~base_solution p cfg =
  if cfg.Solver.budget > 0 then
    (* A budget aborts mid-fixpoint at a derivation count the warm phase
       cannot reproduce (its seeds spend nothing): warm and cold would
       diverge. Incremental solving is for unbudgeted runs. *)
    cold_fallback ?store ~jobs p cfg "budgeted"
  else if base_solution.Solution.outcome <> Solution.Complete then
    cold_fallback ?store ~jobs p cfg "partial baseline"
  else if not (Summary.extends ~old_p:base_program ~new_p:p) then
    (* Seeding is sound only under a monotone, id-stable extension: the
       base fixpoint must be a subset of the edited program's. *)
    cold_fallback ?store ~jobs p cfg "non-monotone delta"
  else begin
    let cond_old = Summary.condense base_program in
    let cond = Summary.condense p in
    let n_sccs = Array.length cond.sccs in
    let digests, summarized, reused = extract ?store ~jobs p cfg cond in
    let old_ids = Array.init (Array.length cond_old.sccs) (fun i -> i) in
    let old_digests =
      Domain_pool.with_pool ~jobs (fun pool ->
          Domain_pool.map pool (fun sid -> Summary.digest base_program cond_old sid) old_ids)
    in
    let old_set = Hashtbl.create (max 16 (Array.length old_digests)) in
    Array.iter (fun d -> Hashtbl.replace old_set d ()) old_digests;
    let dirty0 = ref [] in
    for sid = n_sccs - 1 downto 0 do
      if not (Hashtbl.mem old_set digests.(sid)) then dirty0 := sid :: !dirty0
    done;
    let dirty = Summary.dirty_closure cond !dirty0 in
    let dirty_sccs = ref [] in
    for sid = n_sccs - 1 downto 0 do
      if dirty.(sid) then dirty_sccs := sid :: !dirty_sccs
    done;
    (* Defer the bodies whose instructions may differ from what the base
       was solved under: members of digest-changed components, plus every
       method the base program did not have (a new method can share a
       digest with an old duplicate, which would otherwise mask it).
       Transitive callers stay clean — their bodies are unchanged; only
       facts flowing through them change, and the solve re-derives those. *)
    let defer = Array.make (Program.n_meths p) false in
    List.iter
      (fun sid -> Array.iter (fun m -> defer.(m) <- true) cond.sccs.(sid).members)
      !dirty0;
    for m = Program.n_meths base_program to Program.n_meths p - 1 do
      defer.(m) <- true
    done;
    let sol =
      Solver.run_incremental ~replay:(Summary.compile p)
        ~seed:{ Solver.base = base_solution; defer }
        p cfg
    in
    let sccs_resolved = List.length !dirty_sccs in
    let sol =
      patch_counters sol ~sccs_summarized:summarized ~summaries_reused:reused ~sccs_resolved
    in
    ( sol,
      {
        n_sccs;
        sccs_summarized = summarized;
        summaries_reused = reused;
        sccs_resolved;
        dirty_sccs = !dirty_sccs;
        incremental = true;
        fallback = None;
      } )
  end
