(** The collapsed value-flow graph of a solved program.

    A directed graph whose nodes are the places analysis clients reason
    about — variables, [(allocation site, field)] slots, static fields, and
    per-method escaping-exception slots — and whose edges are the one-step
    value flows the solved program admits: moves and casts, field loads and
    stores resolved through the solution's points-to relation, parameter
    passing and returns resolved through the solution's call graph, and
    throw/catch routing. Everything is computed on the context-insensitive
    projection of a {!Solution.t}: a more precise solution (smaller
    points-to sets, fewer call-graph edges, fewer reachable methods) yields
    a subgraph, so any forward-reachability client is monotone in analysis
    precision.

    This is shared infrastructure for inter-procedural value-flow clients
    (taint tracking, escape reasoning, slicing); it is deliberately
    client-agnostic. *)

type t

(** Nodes are dense non-negative ints; use {!kind} to decode. *)
type node = int

type kind =
  | Var of Ipa_ir.Program.var_id
  | Fld of { heap : Ipa_ir.Program.heap_id; field : Ipa_ir.Program.field_id }
      (** instance field slot of one allocation site *)
  | Static_fld of Ipa_ir.Program.field_id
  | Exc of Ipa_ir.Program.meth_id
      (** exceptions escaping the method (uncaught within it) *)

val build : Solution.t -> t
(** Materialize the graph from a solved program. Only instructions of
    methods reachable in the solution contribute edges. *)

val solution : t -> Solution.t

(** {1 Nodes} *)

val var_node : t -> Ipa_ir.Program.var_id -> node
val fld_node : t -> heap:Ipa_ir.Program.heap_id -> field:Ipa_ir.Program.field_id -> node
val static_fld_node : t -> Ipa_ir.Program.field_id -> node
val exc_node : t -> Ipa_ir.Program.meth_id -> node

val kind : t -> node -> kind
val node_to_string : t -> node -> string
(** Human-readable label, e.g. ["Main::main/x"] or ["Box::set/new Box#0.val"]. *)

val n_nodes : t -> int
(** Size of the node id space (most ids have no incident edge). *)

val n_edges : t -> int
(** Distinct edges materialized. *)

(** {1 Traversal} *)

val iter_succs : t -> node -> (node -> unit) -> unit

val iter_edges : t -> (src:node -> dst:node -> unit) -> unit

val reachable : ?blocked:(node -> bool) -> t -> seeds:node list -> Ipa_support.Int_set.t
(** Forward closure of [seeds] over the edges. Nodes satisfying [blocked]
    are never entered (nor seeded): flow is cut both into and through them. *)

val find_path : ?blocked:(node -> bool) -> t -> seeds:node list -> target:node -> node list option
(** A shortest edge-path [s; ...; target] from some seed, respecting
    [blocked]; [None] when the target is unreachable. [Some [target]] when
    the target itself is a seed. *)
