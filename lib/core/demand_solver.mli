(** Demand-driven solving: answer a points-to query from a backward
    constraint slice instead of a full solve (Khedker/Mycroft-style lazy
    pointer analysis, adapted to the paper's model).

    Given a set of {e roots} — variables and/or fields the query mentions —
    {!slice} computes, by a worklist over the program's def-use structure,
    the set of variables, fields and per-method exception flows whose
    points-to contents can reach a root. Call-graph construction stays
    on-the-fly and {e complete}: every [Call] instruction is kept and every
    virtual call's receiver variable is transitively root-relevant, so the
    restricted solve discovers exactly the contexts, reachable methods and
    call-graph edges of the full solve. Everything else (allocations, copies,
    loads, stores, returns, throws that cannot flow into a root) is pruned.

    {b Soundness contract.} For any variable or field {e inside} the slice
    ([var_relevant]/[field_relevant]), the restricted solution's points-to
    set equals the full solve's, byte-for-byte after rendering (asserted by
    property tests across all four flavors). For entities {e outside} the
    slice the tables are a lower bound only — callers must treat such facts
    as partial and either widen the root set or fall back to a full solve.
    The call graph and reachable-method set are exact regardless.

    Slices are pure functions of (program, roots); {!key} digests a slice
    together with a solve-configuration key so solved slices can be
    content-addressed in [Harness.Cache] next to full snapshots. *)

module Program = Ipa_ir.Program

type roots = {
  root_vars : Program.var_id list;
  root_fields : Program.field_id list;
}

val no_roots : roots
(** The empty root set. Still a useful slice: it keeps every call (and the
    receiver data-flow feeding dispatch), so the call graph, contexts and
    reachability it induces are exact — enough for callee queries. *)

val all_var_roots : Program.t -> roots
(** Every variable is a root; the slice degenerates to the whole program.
    The honest encoding for inverted (pointed-by) demands. *)

val root_key : roots -> string
(** Canonical rendering of a root set (sorted, deduplicated). *)

type t = {
  original : Program.t;
  pruned : Program.t;  (** same entity arrays, bodies filtered to the slice *)
  relevant_vars : bool array;
  relevant_fields : bool array;
  slice_nodes : int;
      (** marked vars + fields + per-method exception flows — the slice's
          size measure surfaced through metrics and reply framing *)
  kept_instrs : int;
  total_instrs : int;
  root_key : string;  (** canonical digest component for the root set *)
}

val slice : Program.t -> roots -> t
(** Compute the backward closure and build the pruned program. Cost is one
    pass to index def-use structure plus the closure worklist — no solving. *)

val var_relevant : t -> Program.var_id -> bool
(** Is this variable's points-to set exact in the restricted solution? *)

val field_relevant : t -> Program.field_id -> bool
(** Are all [(_, field)] slots exact in the restricted solution? *)

val key : config_key:string -> roots -> string
(** Content address for the solved slice: digest of the full-solve snapshot
    [config_key] (program digest + strategy + budget + order + field
    sensitivity) and the canonical root set. Derivable from the roots alone
    — no slicing needed to probe a memo or cache. Distinct from every
    full-solve snapshot key, stable across sessions. *)

val run : t -> Solver.config -> Solution.t
(** Solve the pruned program with the given configuration and return the
    solution re-anchored on the {e original} program (ids are shared, so all
    tables, projections and renderings line up; [Solution.self_check]
    passes). Callers who want exact answers should pass [budget = 0] — the
    point of slicing is that the slice is small enough to afford it. *)
