module Program = Ipa_ir.Program

type roots = {
  root_vars : Program.var_id list;
  root_fields : Program.field_id list;
}

let no_roots = { root_vars = []; root_fields = [] }

let root_key roots =
  let canon ids =
    List.sort_uniq compare ids |> List.map string_of_int |> String.concat ","
  in
  Printf.sprintf "v:%s;f:%s" (canon roots.root_vars) (canon roots.root_fields)

let all_var_roots p =
  { root_vars = List.init (Program.n_vars p) Fun.id; root_fields = [] }

type t = {
  original : Program.t;
  pruned : Program.t;
  relevant_vars : bool array;
  relevant_fields : bool array;
  slice_nodes : int;
  kept_instrs : int;
  total_instrs : int;
  root_key : string;
}

(* A variable's backward defs, independent of instruction position: the
   value sources that the closure must chase when the variable is marked. *)
type def =
  | Copy_from of Program.var_id  (* move / cast / return-into-ret_var *)
  | Load_from of Program.var_id * Program.field_id
  | Static_load_from of Program.field_id

(* Inter-procedural roles a variable can play; resolved against the CHA
   may-call relation (a sound superset of the on-the-fly call graph). *)
type role = Formal_of of Program.meth_id * int | Catch_in of Program.meth_id

let slice p roots =
  let n_vars = Program.n_vars p
  and n_fields = Program.n_fields p
  and n_meths = Program.n_meths p
  and n_invos = Program.n_invos p in
  (* CHA: signature -> set of concrete dispatch targets, from the paper's
     LOOKUP relation. Sound superset of the solver's on-the-fly targets. *)
  let sig_targets = Hashtbl.create 64 in
  Program.iter_dispatch p (fun _cls s m ->
      let cur = try Hashtbl.find sig_targets s with Not_found -> [] in
      if not (List.memq m cur) then Hashtbl.replace sig_targets s (m :: cur));
  let may_targets i =
    match (Program.invo_info p i).call with
    | Static { callee } -> [ callee ]
    | Virtual { signature; _ } -> (
      try Hashtbl.find sig_targets signature with Not_found -> [])
  in
  (* One pass to index the def-use structure backwards. *)
  let defs : def list array = Array.make n_vars [] in
  let roles : role list array = Array.make n_vars [] in
  let recv_invos : Program.invo_id list array = Array.make n_vars [] in
  let field_stores : (Program.var_id option * Program.var_id) list array =
    Array.make n_fields []
  in
  let throws : Program.var_id list array = Array.make n_meths [] in
  let rev_calls : Program.invo_id list array = Array.make n_meths [] in
  let meth_callees : Program.meth_id list array = Array.make n_meths [] in
  for i = 0 to n_invos - 1 do
    let ii = Program.invo_info p i in
    (match ii.recv with
    | Some r -> recv_invos.(r) <- i :: recv_invos.(r)
    | None -> ());
    List.iter
      (fun m ->
        rev_calls.(m) <- i :: rev_calls.(m);
        if not (List.memq m meth_callees.(ii.invo_owner)) then
          meth_callees.(ii.invo_owner) <- m :: meth_callees.(ii.invo_owner))
      (may_targets i)
  done;
  for m = 0 to n_meths - 1 do
    let mi = Program.meth_info p m in
    Array.iteri (fun idx f -> roles.(f) <- Formal_of (m, idx) :: roles.(f)) mi.formals;
    Array.iter
      (fun (c : Program.catch_clause) ->
        roles.(c.catch_var) <- Catch_in m :: roles.(c.catch_var))
      mi.catches;
    Array.iter
      (fun (instr : Program.instr) ->
        match instr with
        | Alloc _ | Call _ -> ()
        | Move { target; source } | Cast { target; source; _ } ->
          defs.(target) <- Copy_from source :: defs.(target)
        | Load { target; base; field } ->
          defs.(target) <- Load_from (base, field) :: defs.(target)
        | Load_static { target; field } ->
          defs.(target) <- Static_load_from field :: defs.(target)
        | Store { base; field; source } ->
          field_stores.(field) <- (Some base, source) :: field_stores.(field)
        | Store_static { field; source } ->
          field_stores.(field) <- (None, source) :: field_stores.(field)
        | Return { source } -> (
          match mi.ret_var with
          | Some r -> defs.(r) <- Copy_from source :: defs.(r)
          | None -> ())
        | Throw { source } -> throws.(m) <- source :: throws.(m))
      mi.body
  done;
  (* Backward closure over three node families: variables, fields (field-
     based granularity: one mark covers every (object, field) slot), and
     per-method exception flows. *)
  let vrel = Array.make n_vars false in
  let frel = Array.make n_fields false in
  let erel = Array.make n_meths false in
  let vq = Queue.create () and fq = Queue.create () and eq = Queue.create () in
  let mark_var v = if not vrel.(v) then (vrel.(v) <- true; Queue.add v vq) in
  let mark_field f = if not frel.(f) then (frel.(f) <- true; Queue.add f fq) in
  let mark_exc m = if not erel.(m) then (erel.(m) <- true; Queue.add m eq) in
  List.iter mark_var roots.root_vars;
  List.iter mark_field roots.root_fields;
  (* Keep dispatch exact: every virtual receiver is transitively relevant,
     so the restricted solve builds the full solve's call graph, contexts
     and reachable set. This is what makes in-slice answers exact rather
     than merely sound-on-the-slice. *)
  for i = 0 to n_invos - 1 do
    match (Program.invo_info p i).call with
    | Virtual { base; _ } -> mark_var base
    | Static _ -> ()
  done;
  let drained = ref false in
  while not !drained do
    if not (Queue.is_empty vq) then (
      let v = Queue.pop vq in
      List.iter
        (function
          | Copy_from s -> mark_var s
          | Load_from (b, f) ->
            mark_var b;
            mark_field f
          | Static_load_from f -> mark_field f)
        defs.(v);
      List.iter
        (function
          | Formal_of (m, idx) ->
            List.iter
              (fun i ->
                let actuals = (Program.invo_info p i).actuals in
                if idx < Array.length actuals then mark_var actuals.(idx))
              rev_calls.(m)
          | Catch_in m -> mark_exc m)
        roles.(v);
      List.iter
        (fun i ->
          List.iter
            (fun m ->
              match (Program.meth_info p m).ret_var with
              | Some r -> mark_var r
              | None -> ())
            (may_targets i))
        recv_invos.(v))
    else if not (Queue.is_empty fq) then (
      let f = Queue.pop fq in
      List.iter
        (fun (base, source) ->
          mark_var source;
          match base with Some b -> mark_var b | None -> ())
        field_stores.(f))
    else if not (Queue.is_empty eq) then (
      let m = Queue.pop eq in
      List.iter mark_var throws.(m);
      List.iter mark_exc meth_callees.(m))
    else drained := true
  done;
  let count a = Array.fold_left (fun n b -> if b then n + 1 else n) 0 a in
  let slice_nodes = count vrel + count frel + count erel in
  (* Rebuild the program with the same entity arrays and filtered bodies:
     ids are shared, so the restricted solution's tables line up with the
     original program and snapshots decode against its digest. *)
  let kept = ref 0 and total = ref 0 in
  let keep m (instr : Program.instr) =
    match instr with
    | Alloc { target; _ }
    | Move { target; _ }
    | Cast { target; _ }
    | Load { target; _ }
    | Load_static { target; _ } ->
      vrel.(target)
    | Store { field; _ } | Store_static { field; _ } -> frel.(field)
    | Call _ -> true
    | Return _ -> (
      match (Program.meth_info p m).ret_var with Some r -> vrel.(r) | None -> false)
    | Throw _ -> erel.(m)
  in
  let meths =
    Array.init n_meths (fun m ->
        let mi = Program.meth_info p m in
        let body =
          Array.of_list
            (List.filter
               (fun i ->
                 incr total;
                 let k = keep m i in
                 if k then incr kept;
                 k)
               (Array.to_list mi.body))
        in
        { mi with body })
  in
  let pruned =
    Program.make
      ?srcloc:(Program.srcloc p)
      ~classes:(Array.init (Program.n_classes p) (Program.class_info p))
      ~fields:(Array.init n_fields (Program.field_info p))
      ~sigs:(Array.init (Program.n_sigs p) (Program.sig_info p))
      ~meths
      ~vars:(Array.init n_vars (Program.var_info p))
      ~heaps:(Array.init (Program.n_heaps p) (Program.heap_info p))
      ~invos:(Array.init n_invos (Program.invo_info p))
      ~entries:(Program.entries p) ()
  in
  {
    original = p;
    pruned;
    relevant_vars = vrel;
    relevant_fields = frel;
    slice_nodes;
    kept_instrs = !kept;
    total_instrs = !total;
    root_key = root_key roots;
  }

let var_relevant t v = t.relevant_vars.(v)
let field_relevant t f = t.relevant_fields.(f)

let key ~config_key roots =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "demand-slice-v1\n%s\n%s" config_key (root_key roots)))

let run t config =
  let sol = Solver.run t.pruned config in
  { sol with Solution.program = t.original }
