(** Solution snapshots: a versioned, content-addressed on-wire form of a
    {!Solution.t} plus its {!Introspection} metrics.

    The introspective pipeline is two-pass, and the first
    (context-insensitive) pass is identical across every heuristic variant
    of a benchmark. A snapshot makes that pass a reusable artifact: the
    solved tables, counters, and metrics serialize to a self-describing
    byte string keyed by a digest of everything that determines the result —
    the program, the solver configuration (strategy names, refine sets,
    budget, worklist order, field sensitivity), and the snapshot format
    version.

    {2 Wire format}

    {v
    "IPSN" | version varint | payload length varint | MD5(payload) | payload
    v}

    The payload holds the key, the program digest, the label and solve time,
    the solution tables (contexts, interned pair tables, points-to sets,
    call graph, outcome, derivation count, solver counters), the optional
    metrics, and a trailer magic. Every table is emitted in dense-id order
    and every set in sorted order, so encoding is canonical: equal solutions
    produce byte-identical snapshots, and [encode ∘ decode] is the identity
    on bytes.

    The version varint sits {e outside} the checksummed payload, so a format
    change surfaces as {!Version_mismatch} rather than a checksum failure.
    Any other single-byte corruption is caught by the MD5 (payload bytes),
    the magic (header), or the length field (truncation); decoding never
    raises and never returns a silently wrong solution.

    {2 Invalidation / version bump policy}

    Bump {!version} whenever decoded bytes could mean something different:
    a change to this wire format, to the meaning of any serialized field
    (e.g. counter semantics), or to solver behavior that changes results for
    the same configuration. Cached snapshots from other versions then fail
    with {!Version_mismatch} and are recomputed; nothing is ever reused
    across versions. *)

type t = {
  key : string;  (** content address: {!config_key} of the producing run *)
  program_digest : string;  (** {!digest_program} of the analyzed program *)
  label : string;  (** e.g. ["insens"], ["2objH-IntroB"] *)
  seconds : float;  (** wall-clock of the original solve *)
  solution : Solution.t;
  metrics : Introspection.t option;
      (** first-pass cost metrics, stored so cached base passes skip
          recomputation *)
}

val version : int
(** Current snapshot format version (see the bump policy above). *)

val digest_program : Ipa_ir.Program.t -> string
(** MD5 (hex) over a canonical encoding of the whole program: every table
    in id order, including class hierarchy, method bodies, and entry
    points. Programs with equal structure digest equally regardless of how
    they were built. *)

val config_key :
  program_digest:string -> Solver.config -> string
(** MD5 (hex) over the snapshot version, the program digest, both strategy
    names, the refine sets (sorted), the budget, the worklist order, and
    field sensitivity — everything that determines a solve's outcome. Used
    as the cache address and stored inside the snapshot. *)

val config_fingerprint : Solver.config -> string
(** {!config_key} minus the program digest: the configuration identity that
    must match for per-SCC summaries or fixpoint seeds produced under one
    program to be reusable under an edited one. *)

type error =
  | Bad_magic  (** not a snapshot at all *)
  | Version_mismatch of { found : int; expected : int }
  | Truncated  (** shorter than the header-declared payload length *)
  | Checksum_mismatch  (** payload bytes corrupted *)
  | Program_mismatch of { found : string; expected : string }
      (** snapshot of a structurally different program *)
  | Key_mismatch of { found : string; expected : string }
      (** valid snapshot, but of a different configuration than requested *)
  | Malformed of string
      (** checksum passed but the payload does not parse — a format bug or
          an unversioned format change; never silently decoded *)

val error_to_string : error -> string

val encode : t -> string

val decode :
  program:Ipa_ir.Program.t -> ?expect_key:string -> string -> (t, error) result
(** Reconstructs the solution against [program] (which must digest to the
    stored program digest). All lazy caches of the returned solution start
    empty; everything else — including counters and derivation counts — is
    content-identical to the encoded solution. *)

(** Header-plus-prefix inspection, for cache listings: validates magic,
    version, and checksum, then reads the identifying fields without
    needing the program. *)
type info = {
  info_key : string;
  info_program_digest : string;
  info_label : string;
  info_seconds : float;
}

val inspect : string -> (info, error) result
