(** The native points-to solver: Figure 3 of the paper as a worklist fixpoint.

    The solver computes a flow-insensitive, field-sensitive, context-sensitive
    Andersen-style points-to analysis with on-the-fly call-graph construction,
    over a pointer-assignment graph whose nodes are [(variable, context)]
    pairs, [(object, field)] pairs, and static fields. Copy edges carry
    optional cast filters.

    Context-sensitivity is fully delegated to two {!Strategy.t} values plus a
    {!Refine.t} selector — the paper's [Record]/[RecordRefined] and
    [Merge]/[MergeRefined] constructors and the [ObjectToRefine]/
    [SiteToRefine] relations. Every allocation consults [refine_object]; every
    call-graph edge consults [refine_site] with the dispatch target.

    {b Online cycle elimination.} When [collapse_cycles] is on, nodes on a
    cycle of {e unfiltered} copy edges (filtered edges never merge — their
    endpoints are not pointer-equivalent) are collapsed onto a single
    representative via a union-find: one points-to set, one spliced edge
    list, one pending batch. Cycles are detected by a bounded walk on edge
    insertion plus periodic Tarjan sweeps triggered by a re-propagation-ratio
    heuristic. Collapse is invisible above the solver: materialization
    expands representatives back to the original nodes and renumbers all
    tables canonically, so the returned {!Solution.t} is a pure function of
    the semantic fixpoint — byte-identical across worklist orders and with
    collapsing on or off (asserted by differential tests), and [derivations]
    still counts {e semantic} (uncollapsed) insertions, so budgets behave
    identically.

    A configurable derivation budget bounds the number of tuple insertions;
    exceeding it aborts with [Solution.Budget_exceeded] — our deterministic
    substitute for the paper's 90-minute wall-clock timeout.

    {b Sharded solving.} With [shards = K >= 2] a single solve is split
    across [K] OCaml domains. Constraint nodes are partitioned by copy-graph
    SCC condensation: union-find representatives, sorted by reverse-postorder
    rank, are cut into [K] contiguous blocks balanced by estimated weight
    (1 + out-degree + points-to cardinality), so an SCC is never split and
    intra-shard propagation follows the topological order. Each shard drains
    its own priority worklist; values crossing a shard boundary travel in
    per-destination outboxes of (target-node, object) deltas exchanged at
    synchronization sub-rounds in (source-shard, send-sequence) order.
    Graph growth (base uses, call dispatch, merges) is deferred to sequential
    grow phases between propagation rounds, driven by a sorted consumption
    log, and Tarjan sweeps run on the merged global graph at round boundaries
    only — so the solve is deterministic and the returned solution (tables,
    snapshots, cache keys, query answers) is byte-identical to [shards = 1].
    Budget-limited runs abort at round rather than insertion granularity, so
    only {e complete} sharded runs are bit-comparable to sequential ones. *)

(** Worklist discipline. The computed fixpoint is identical in all cases
    (asserted by property tests); only the visit order — and hence wall-clock
    constants — differs. [Topo] is a priority worklist keyed by reverse
    postorder of the current copy graph, recomputed on sweeps, so sources
    drain before sinks; [Lifo]/[Fifo] are the plain stacks kept for ablation
    and differential testing. *)
type worklist_order = Lifo | Fifo | Topo

type config = {
  default_strategy : Strategy.t;  (** for elements outside the refine sets *)
  refined_strategy : Strategy.t;  (** for elements inside the refine sets *)
  refine : Refine.t;
  budget : int;  (** max derivations; [0] means unlimited *)
  order : worklist_order;
  collapse_cycles : bool;
      (** merge unfiltered-copy-edge cycles onto union-find representatives *)
  field_sensitive : bool;
      (** [false] degrades field handling to a field-based analysis (all base
          objects of a field collapse) — an ablation of a design choice the
          paper's model takes for granted. *)
  shards : int;
      (** number of solver shards (domains) for this single solve; [<= 1]
          runs the sequential solver. When [>= 2], [order] is ignored —
          sharded propagation is always topology-aware per shard. *)
}

val plain : Ipa_ir.Program.t -> ?budget:int -> ?shards:int -> Strategy.t -> config
(** A non-introspective configuration: [strategy] everywhere, empty refine
    sets, topological worklist, cycle elimination on, field-sensitive,
    [shards] worklist shards (default 1, i.e. sequential). *)

val run : ?replay:Summary.ops -> Ipa_ir.Program.t -> config -> Solution.t
(** Run to fixpoint (or budget exhaustion) from the program's entry points.

    With [?replay], method bodies are not walked: each body's constraints
    come from the given compiled module stream (see {!Summary.compile}),
    which emits the exact same constraints in the exact same order — the
    solve is byte-identical, including counters and derivation counts. The
    hook exists so {!Compositional_solver} can drive the solve from cached
    per-SCC artifacts without re-touching program bodies. *)

(** A warm-start seed for {!run_incremental}: a previously materialized
    complete solution of a program that the current one monotonically
    extends ({!Summary.extends}), plus a per-method mask of {e dirty}
    bodies — methods whose instructions may differ from what [base] was
    solved under (all methods of edited SCCs, and every method new to the
    program). *)
type seed = { base : Solution.t; defer : bool array }

val run_incremental :
  ?replay:Summary.ops -> seed:seed -> Ipa_ir.Program.t -> config -> Solution.t
(** Re-solve after an edit, warm-starting from [seed.base]. Phase 1 replays
    the base solution into fresh solver state without counting: contexts,
    objects and reachable pairs are re-interned (context elements name
    program entities by raw id, which a monotone extension keeps stable),
    every recorded points-to fact is re-asserted, and consequences are
    re-drained — deduping to nothing — except that dirty bodies and the
    base-variable uses they own are buffered rather than fired. Phase 2
    then processes the buffered work with counting on, so [derivations]
    measures only what the edit enabled. The returned solution is
    byte-identical to a cold solve of the edited program (modulo counters
    and the derivation count — asserted by differential tests). Always
    sequential; requires an unbudgeted config and a [Complete] base (the
    caller — {!Compositional_solver} — falls back to a cold solve
    otherwise). *)

val partition_blocks : weights:int array -> shards:int -> int array
(** The sharded solver's pure partitioner, exposed for tests. Assigns each
    position of [weights] (positive, in topological order; one position per
    SCC representative, so components are never split) to a shard: the
    result is monotone non-decreasing position-to-shard, values in
    [\[0, shards)], and each shard's summed weight is at most
    [ceil(total / shards) + max weight]. Raises [Invalid_argument] on
    [shards < 1] or a non-positive weight. *)

(** {1 Packed copy-edge representation}

    Exposed for tests and diagnostics: destination node in the high bits,
    filter-spec id in the low {!filter_bits} bits. *)

val filter_bits : int
val filter_mask : int

val pack_edge : dst:int -> spec:int -> int
(** Raises [Invalid_argument] when [spec] does not fit in {!filter_bits} bits
    (a silent wrap would corrupt the destination field). *)

val edge_dst : int -> int
val edge_spec : int -> int
