(** High-level drivers: plain and introspective analyses.

    This is the main entry point of the library. [run_plain] executes one
    context-sensitivity flavor directly; [run_introspective] implements the
    paper's two-pass recipe:

    + run a context-insensitive analysis;
    + compute the {!Introspection} cost metrics over its results;
    + apply a {!Heuristics} to populate the refine sets;
    + re-run with default = context-insensitive constructors and refined =
      the requested flavor's constructors.

    As in the paper's evaluation, the reported time of an introspective
    analysis is the second pass only (the first pass is a reusable,
    uniformly cheap artifact). *)

type result = {
  label : string;  (** e.g. ["2objH"] or ["2objH-IntroA"] *)
  solution : Solution.t;
  seconds : float;  (** wall-clock of the solver run *)
  timed_out : bool;  (** derivation budget exceeded; tables are partial *)
}

val run_plain : ?budget:int -> ?shards:int -> Ipa_ir.Program.t -> Flavors.spec -> result
(** [budget] is the maximum number of derivations (default unlimited);
    [shards] splits the solve across that many domains (default 1,
    sequential) with byte-identical results — see {!Solver.run}. *)

val run_config : Ipa_ir.Program.t -> label:string -> Solver.config -> result
(** Run an arbitrary solver configuration, timing it and stamping the
    result with [label]. The building block of every driver above and of
    the snapshot cache (which must re-run {e exactly} the configuration it
    keyed). *)

val second_pass_config :
  ?budget:int -> ?shards:int -> Ipa_ir.Program.t -> Flavors.spec -> Refine.t -> Solver.config
(** The configuration of an introspective (or client-driven) second pass:
    context-insensitive constructors by default, [flavor]'s constructors on
    the elements selected by [refine], LIFO worklist, field-sensitive.
    Exposed so callers can compute the pass's cache key. *)

type introspective = {
  base : result;  (** the context-insensitive first pass *)
  metrics : Introspection.t;
  heuristic : Heuristics.t;
  refine : Refine.t;
  selection : Heuristics.stats;
  second : result;  (** the refined second pass *)
}

val run_introspective :
  ?budget:int -> ?shards:int -> Ipa_ir.Program.t -> Flavors.spec -> Heuristics.t -> introspective
(** The [budget] applies to each pass separately. If the first pass itself
    exceeds the budget (which defeats the technique's premise), the
    heuristics run on its partial results and [base.timed_out] is set. *)

val run_introspective_from_base :
  ?budget:int ->
  ?shards:int ->
  Ipa_ir.Program.t ->
  base:result ->
  metrics:Introspection.t ->
  Flavors.spec ->
  Heuristics.t ->
  introspective
(** {!run_introspective} with the first pass supplied by the caller — the
    shared context-insensitive solve and its metrics are identical across
    every heuristic variant of a program, so harness drivers compute (or
    fetch from the snapshot cache) the pair once and reuse it. [base] must
    be a context-insensitive run of the same program. *)

(** {1 Client-driven baseline} *)

type client_driven = {
  cd_base : result;  (** the context-insensitive first pass *)
  cd_refine : Refine.t;
  cd_second : result;
}

val run_client_driven :
  ?budget:int ->
  ?shards:int ->
  Ipa_ir.Program.t ->
  Flavors.spec ->
  Client_driven.query ->
  client_driven
(** The §5 comparison baseline: refine only the dependence slice of the
    query variables (see {!Client_driven}), everything else stays
    context-insensitive. *)

val run_client_driven_from_base :
  ?budget:int ->
  ?shards:int ->
  Ipa_ir.Program.t ->
  base:result ->
  Flavors.spec ->
  Client_driven.query ->
  client_driven
(** {!run_client_driven} with the caller-supplied (possibly cached)
    context-insensitive first pass. *)

(** {1 Compositional and incremental solving} *)

val run_compositional :
  ?store:Compositional_solver.store ->
  ?jobs:int ->
  ?budget:int ->
  Ipa_ir.Program.t ->
  Flavors.spec ->
  result * Compositional_solver.report
(** [run_plain] via {!Compositional_solver.solve}: summaries are published
    to (and reused from) [store], component digesting and boundary
    computation fan out over [jobs] domains, and the solution is
    byte-identical to the monolithic run except the compositional counters.
    The label is suffixed ["-compositional"]. *)

val run_incremental :
  ?store:Compositional_solver.store ->
  ?jobs:int ->
  Ipa_ir.Program.t ->
  base_program:Ipa_ir.Program.t ->
  base_solution:Solution.t ->
  Flavors.spec ->
  result * Compositional_solver.report
(** Warm re-solve of an edited program from a baseline solve of
    [base_program] under the same flavor — see
    {!Compositional_solver.solve_incremental}. Unbudgeted by construction
    (a budget would force the cold fallback). The label is suffixed
    ["-incremental"]. *)

(** {1 Mixed context-sensitivity} *)

val run_mixed :
  ?budget:int ->
  ?shards:int ->
  Ipa_ir.Program.t ->
  default:Flavors.spec ->
  refined:Flavors.spec ->
  refine:Refine.t ->
  result
(** §3's general form of the machinery: any two flavors side by side, the
    refine sets choosing per allocation/call site — e.g. object-sensitivity
    for the sites in [refine] and call-site-sensitivity elsewhere.
    [run_plain] and the introspective second pass are the two special cases
    the paper evaluates. *)
