module Program = Ipa_ir.Program
module Int_set = Ipa_support.Int_set

type node = int

type kind =
  | Var of Program.var_id
  | Fld of { heap : Program.heap_id; field : Program.field_id }
  | Static_fld of Program.field_id
  | Exc of Program.meth_id

(* Node id layout: variables first, then static fields, then per-method
   exception slots, then the (heap, field) plane. The plane is sparse —
   adjacency lives in a hashtable, so unused slots cost nothing. *)
type t = {
  sol : Solution.t;
  n_vars : int;
  n_fields : int;
  n_meths : int;
  base_static : int;
  base_exc : int;
  base_fld : int;
  n_nodes : int;
  succs : (int, int list ref) Hashtbl.t;
  mutable n_edges : int;
}

let solution t = t.sol
let n_nodes t = t.n_nodes
let n_edges t = t.n_edges

let var_node _t (v : Program.var_id) : node = v
let static_fld_node t (f : Program.field_id) : node = t.base_static + f
let exc_node t (m : Program.meth_id) : node = t.base_exc + m

let fld_node t ~(heap : Program.heap_id) ~(field : Program.field_id) : node =
  t.base_fld + (heap * t.n_fields) + field

let kind t (n : node) : kind =
  if n < 0 || n >= t.n_nodes then invalid_arg "Value_flow.kind";
  if n < t.base_static then Var n
  else if n < t.base_exc then Static_fld (n - t.base_static)
  else if n < t.base_fld then Exc (n - t.base_exc)
  else
    let off = n - t.base_fld in
    Fld { heap = off / t.n_fields; field = off mod t.n_fields }

let node_to_string t (n : node) =
  let p = t.sol.Solution.program in
  match kind t n with
  | Var v -> Program.var_full_name p v
  | Fld { heap; field } ->
    Printf.sprintf "%s.%s" (Program.heap_full_name p heap)
      (Program.field_info p field).field_name
  | Static_fld f -> Program.field_full_name p f
  | Exc m -> Program.meth_full_name p m ^ "/<exc>"

let iter_succs t n f =
  match Hashtbl.find_opt t.succs n with
  | None -> ()
  | Some l -> List.iter f !l

let iter_edges t f =
  Hashtbl.iter (fun src l -> List.iter (fun dst -> f ~src ~dst) !l) t.succs

(* --- construction --- *)

let add_edge t seen src dst =
  let key = (src * t.n_nodes) + dst in
  if not (Hashtbl.mem seen key) then begin
    Hashtbl.add seen key ();
    (match Hashtbl.find_opt t.succs src with
    | Some l -> l := dst :: !l
    | None -> Hashtbl.add t.succs src (ref [ dst ]));
    t.n_edges <- t.n_edges + 1
  end

(* Route a value of allocation class [cls] thrown out of (or escaping into)
   method [m]: either into a catch variable of [m] or onward to [m]'s own
   escaping-exception slot. *)
let route_exc t seen ~src ~into_meth:m cls =
  let p = t.sol.Solution.program in
  let mi = Program.meth_info p m in
  match Program.catch_route p m cls with
  | Some idx -> add_edge t seen src (var_node t mi.catches.(idx).catch_var)
  | None -> add_edge t seen src (exc_node t m)

let build (sol : Solution.t) =
  let p = sol.Solution.program in
  let n_vars = Program.n_vars p in
  let n_fields = Program.n_fields p in
  let n_meths = Program.n_meths p in
  let base_static = n_vars in
  let base_exc = base_static + n_fields in
  let base_fld = base_exc + n_meths in
  let t =
    {
      sol;
      n_vars;
      n_fields;
      n_meths;
      base_static;
      base_exc;
      base_fld;
      n_nodes = base_fld + (Program.n_heaps p * n_fields);
      succs = Hashtbl.create 1024;
      n_edges = 0;
    }
  in
  let seen = Hashtbl.create 4096 in
  let vpt = Solution.collapsed_var_pts sol in
  let reachable = Solution.reachable_meths sol in
  let targets = Solution.call_targets sol in
  (* Heap classes escaping each reachable method as exceptions, collapsed
     over contexts — drives routing of callee exceptions at call sites. *)
  let exc_heaps : (int, Int_set.t) Hashtbl.t = Hashtbl.create 64 in
  Solution.iter_exc_pts sol (fun ~meth ~ctx:_ ~heap ~hctx:_ ->
      let set =
        match Hashtbl.find_opt exc_heaps meth with
        | Some s -> s
        | None ->
          let s = Int_set.create () in
          Hashtbl.add exc_heaps meth s;
          s
      in
      ignore (Int_set.add set heap));
  let do_meth m =
    let mi = Program.meth_info p m in
    Array.iter
      (fun (i : Program.instr) ->
        match i with
        | Alloc _ -> () (* allocation introduces a value; clients seed it *)
        | Move { target; source } | Cast { target; source; _ } ->
          add_edge t seen (var_node t source) (var_node t target)
        | Load { target; base; field } ->
          Int_set.iter
            (fun heap -> add_edge t seen (fld_node t ~heap ~field) (var_node t target))
            vpt.(base)
        | Store { base; field; source } ->
          Int_set.iter
            (fun heap -> add_edge t seen (var_node t source) (fld_node t ~heap ~field))
            vpt.(base)
        | Load_static { target; field } ->
          add_edge t seen (static_fld_node t field) (var_node t target)
        | Store_static { field; source } ->
          add_edge t seen (var_node t source) (static_fld_node t field)
        | Return { source } -> (
          match mi.ret_var with
          | Some rv when rv <> source -> add_edge t seen (var_node t source) (var_node t rv)
          | _ -> ())
        | Throw { source } ->
          Int_set.iter
            (fun heap ->
              route_exc t seen ~src:(var_node t source) ~into_meth:m
                (Program.heap_info p heap).heap_class)
            vpt.(source)
        | Call invo -> (
          match Hashtbl.find_opt targets invo with
          | None -> ()
          | Some meths ->
            let ii = Program.invo_info p invo in
            Int_set.iter
              (fun callee ->
                let ci = Program.meth_info p callee in
                let n_args = min (Array.length ii.actuals) (Array.length ci.formals) in
                for k = 0 to n_args - 1 do
                  add_edge t seen (var_node t ii.actuals.(k)) (var_node t ci.formals.(k))
                done;
                (match (ii.call, ci.this_var) with
                | Virtual { base; _ }, Some this ->
                  add_edge t seen (var_node t base) (var_node t this)
                | _ -> ());
                (match (ci.ret_var, ii.recv) with
                | Some rv, Some recv -> add_edge t seen (var_node t rv) (var_node t recv)
                | _ -> ());
                match Hashtbl.find_opt exc_heaps callee with
                | None -> ()
                | Some heaps ->
                  Int_set.iter
                    (fun heap ->
                      route_exc t seen ~src:(exc_node t callee) ~into_meth:m
                        (Program.heap_info p heap).heap_class)
                    heaps)
              meths))
      mi.body
  in
  Int_set.iter do_meth reachable;
  t

(* --- traversal --- *)

let no_block (_ : node) = false

let reachable ?(blocked = no_block) t ~seeds =
  let seen = Int_set.create () in
  let queue = Queue.create () in
  List.iter
    (fun s -> if (not (blocked s)) && Int_set.add seen s then Queue.add s queue)
    seeds;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    iter_succs t n (fun m ->
        if (not (blocked m)) && Int_set.add seen m then Queue.add m queue)
  done;
  seen

let find_path ?(blocked = no_block) t ~seeds ~target =
  if blocked target then None
  else
    let parent : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let seen = Int_set.create () in
    let queue = Queue.create () in
    let found = ref false in
    List.iter
      (fun s ->
        if (not (blocked s)) && Int_set.add seen s then begin
          Queue.add s queue;
          if s = target then found := true
        end)
      seeds;
    while (not !found) && not (Queue.is_empty queue) do
      let n = Queue.pop queue in
      iter_succs t n (fun m ->
          if (not !found) && (not (blocked m)) && Int_set.add seen m then begin
            Hashtbl.add parent m n;
            if m = target then found := true else Queue.add m queue
          end)
    done;
    if not !found then None
    else
      let rec walk n acc =
        match Hashtbl.find_opt parent n with
        | None -> n :: acc
        | Some up -> walk up (n :: acc)
      in
      Some (walk target [])
