module Codec = Ipa_support.Codec
module Writer = Codec.Writer
module Reader = Codec.Reader
module Dynarr = Ipa_support.Dynarr
module Pair_tbl = Ipa_support.Pair_tbl
module Program = Ipa_ir.Program

(* Version 2: solver cycle-elimination counters joined [Solution.counters]
   (cycles_collapsed, nodes_merged, repropagations_avoided), and the
   configuration key grew the worklist order's [Topo] case plus the
   [collapse_cycles] flag.
   Version 3: sharded-solve counters joined [Solution.counters] (shards,
   sync_rounds, deltas_exchanged, cross_shard_edges). The configuration key
   deliberately does NOT include the shard count: a sharded solve is
   byte-identical to a sequential one, so both share a cache entry.
   Version 4: compositional-solve counters joined [Solution.counters]
   (sccs_summarized, summaries_reused, sccs_resolved). Like the shard
   count, they are bookkeeping about how the fixpoint was reached, not part
   of it, so the configuration key is unchanged in structure (only the
   version constant above rotates the key space). *)
let version = 4
let magic = "IPSN"
let trailer = "NSPI"

let corrupt fmt = Printf.ksprintf (fun msg -> raise (Codec.Corrupt msg)) fmt

type t = {
  key : string;
  program_digest : string;
  label : string;
  seconds : float;
  solution : Solution.t;
  metrics : Introspection.t option;
}

(* ---------- program digest ---------- *)

let encode_instr w (i : Program.instr) =
  match i with
  | Alloc { target; heap } ->
    Writer.u8 w 0;
    Writer.uint w target;
    Writer.uint w heap
  | Move { target; source } ->
    Writer.u8 w 1;
    Writer.uint w target;
    Writer.uint w source
  | Cast { target; source; cast_to } ->
    Writer.u8 w 2;
    Writer.uint w target;
    Writer.uint w source;
    Writer.uint w cast_to
  | Load { target; base; field } ->
    Writer.u8 w 3;
    Writer.uint w target;
    Writer.uint w base;
    Writer.uint w field
  | Store { base; field; source } ->
    Writer.u8 w 4;
    Writer.uint w base;
    Writer.uint w field;
    Writer.uint w source
  | Load_static { target; field } ->
    Writer.u8 w 5;
    Writer.uint w target;
    Writer.uint w field
  | Store_static { field; source } ->
    Writer.u8 w 6;
    Writer.uint w field;
    Writer.uint w source
  | Call invo ->
    Writer.u8 w 7;
    Writer.uint w invo
  | Return { source } ->
    Writer.u8 w 8;
    Writer.uint w source
  | Throw { source } ->
    Writer.u8 w 9;
    Writer.uint w source

let encode_program w p =
  let uint = Writer.uint w in
  let str = Writer.string w in
  let id_opt = Writer.option w Writer.uint in
  let id_list l =
    uint (List.length l);
    List.iter uint l
  in
  uint (Program.n_classes p);
  for c = 0 to Program.n_classes p - 1 do
    let ci = Program.class_info p c in
    str ci.class_name;
    id_opt ci.super;
    id_list ci.interfaces;
    Writer.bool w ci.is_interface;
    uint (List.length ci.declared);
    List.iter
      (fun (s, m) ->
        uint s;
        uint m)
      ci.declared
  done;
  uint (Program.n_fields p);
  for f = 0 to Program.n_fields p - 1 do
    let fi = Program.field_info p f in
    str fi.field_name;
    uint fi.field_owner;
    Writer.bool w fi.is_static_field
  done;
  uint (Program.n_sigs p);
  for s = 0 to Program.n_sigs p - 1 do
    let si = Program.sig_info p s in
    str si.sig_name;
    uint si.arity
  done;
  uint (Program.n_vars p);
  for v = 0 to Program.n_vars p - 1 do
    let vi = Program.var_info p v in
    str vi.var_name;
    uint vi.var_owner
  done;
  uint (Program.n_heaps p);
  for h = 0 to Program.n_heaps p - 1 do
    let hi = Program.heap_info p h in
    str hi.heap_name;
    uint hi.heap_class;
    uint hi.heap_owner
  done;
  uint (Program.n_invos p);
  for i = 0 to Program.n_invos p - 1 do
    let ii = Program.invo_info p i in
    (match ii.call with
    | Virtual { base; signature } ->
      Writer.u8 w 0;
      uint base;
      uint signature
    | Static { callee } ->
      Writer.u8 w 1;
      uint callee);
    Writer.int_array w ii.actuals;
    id_opt ii.recv;
    uint ii.invo_owner;
    str ii.invo_name
  done;
  uint (Program.n_meths p);
  for m = 0 to Program.n_meths p - 1 do
    let mi = Program.meth_info p m in
    str mi.meth_name;
    uint mi.meth_owner;
    uint mi.meth_sig;
    Writer.bool w mi.is_static_meth;
    Writer.bool w mi.is_abstract;
    id_opt mi.this_var;
    Writer.int_array w mi.formals;
    id_opt mi.ret_var;
    uint (Array.length mi.catches);
    Array.iter
      (fun (c : Program.catch_clause) ->
        uint c.catch_type;
        uint c.catch_var)
      mi.catches;
    uint (Array.length mi.body);
    Array.iter (encode_instr w) mi.body
  done;
  id_list (Program.entries p)

let digest_program p =
  let w = Writer.create ~capacity:4096 () in
  encode_program w p;
  Digest.to_hex (Digest.string (Writer.contents w))

(* ---------- configuration key ---------- *)

let config_key ~program_digest (c : Solver.config) =
  let w = Writer.create () in
  Writer.raw w "IPAK";
  Writer.uint w version;
  Writer.string w program_digest;
  Writer.string w c.default_strategy.Strategy.name;
  Writer.string w c.refined_strategy.Strategy.name;
  (match c.refine with
  | Refine.None_ -> Writer.u8 w 0
  | Refine.All_except { skip_objects; skip_sites } ->
    Writer.u8 w 1;
    Writer.int_set w skip_objects;
    Writer.int_set w skip_sites);
  Writer.uint w c.budget;
  Writer.u8 w (match c.order with Solver.Lifo -> 0 | Solver.Fifo -> 1 | Solver.Topo -> 2);
  Writer.bool w c.collapse_cycles;
  Writer.bool w c.field_sensitive;
  Digest.to_hex (Digest.string (Writer.contents w))

(* The program-independent part of [config_key]: what must match between
   two solves for one's summaries (or fixpoint seeds) to be meaningful to
   the other. Incremental re-analysis compares fingerprints, not keys — the
   program digest necessarily differs across an edit. *)
let config_fingerprint c = config_key ~program_digest:"" c

(* ---------- solution ---------- *)

let encode_pair_tbl w tbl =
  Writer.uint w (Pair_tbl.count tbl);
  Pair_tbl.iter
    (fun _ a b ->
      Writer.uint w a;
      Writer.uint w b)
    tbl

let decode_pair_tbl r =
  let n = Reader.uint r in
  let tbl = Pair_tbl.create ~capacity:(max 16 n) () in
  for id = 0 to n - 1 do
    let a = Reader.uint r in
    let b = Reader.uint r in
    let got = Pair_tbl.intern tbl a b in
    if got <> id then corrupt "pair table out of order (id %d became %d)" id got
  done;
  tbl

let encode_ctxs w ctxs =
  Writer.uint w (Ctx.count ctxs);
  for id = 1 to Ctx.count ctxs - 1 do
    Writer.int_array w (Ctx.elems ctxs id)
  done

let decode_ctxs r =
  let n = Reader.uint r in
  if n < 1 then corrupt "empty context table";
  let t = Ctx.create () in
  for id = 1 to n - 1 do
    let got = Ctx.intern t (Reader.int_array r) in
    if got <> id then corrupt "context table out of order (id %d became %d)" id got
  done;
  t

let encode_solution w (s : Solution.t) =
  encode_ctxs w s.ctxs;
  encode_pair_tbl w s.objs;
  encode_pair_tbl w s.var_nodes;
  encode_pair_tbl w s.fld_nodes;
  encode_pair_tbl w s.reach;
  Writer.uint w (Dynarr.length s.pts);
  Dynarr.iter (fun set -> Writer.option w Writer.int_set set) s.pts;
  Writer.uint w (Dynarr.length s.cg);
  Dynarr.iter (fun v -> Writer.uint w v) s.cg;
  Writer.u8 w (match s.outcome with Solution.Complete -> 0 | Solution.Budget_exceeded -> 1);
  Writer.uint w s.derivations;
  let c = s.counters in
  Writer.uint w c.edges_added;
  Writer.uint w c.edges_deduped;
  Writer.uint w c.batches;
  Writer.uint w c.batch_objs;
  Writer.uint w c.max_batch;
  Writer.uint w c.set_promotions;
  Writer.uint w c.cycles_collapsed;
  Writer.uint w c.nodes_merged;
  Writer.uint w c.repropagations_avoided;
  Writer.uint w c.shards;
  Writer.uint w c.sync_rounds;
  Writer.uint w c.deltas_exchanged;
  Writer.uint w c.cross_shard_edges;
  Writer.uint w c.sccs_summarized;
  Writer.uint w c.summaries_reused;
  Writer.uint w c.sccs_resolved

let decode_solution r program : Solution.t =
  let ctxs = decode_ctxs r in
  let objs = decode_pair_tbl r in
  let var_nodes = decode_pair_tbl r in
  let fld_nodes = decode_pair_tbl r in
  let reach = decode_pair_tbl r in
  let n_pts = Reader.uint r in
  let pts = Dynarr.create ~capacity:(max 16 n_pts) ~dummy:None () in
  for _ = 1 to n_pts do
    Dynarr.push pts (Reader.option r Reader.int_set)
  done;
  let n_cg = Reader.uint r in
  let cg = Dynarr.create ~capacity:(max 16 n_cg) ~dummy:0 () in
  for _ = 1 to n_cg do
    Dynarr.push cg (Reader.uint r)
  done;
  let outcome =
    match Reader.u8 r with
    | 0 -> Solution.Complete
    | 1 -> Solution.Budget_exceeded
    | b -> corrupt "bad outcome byte %d" b
  in
  let derivations = Reader.uint r in
  let edges_added = Reader.uint r in
  let edges_deduped = Reader.uint r in
  let batches = Reader.uint r in
  let batch_objs = Reader.uint r in
  let max_batch = Reader.uint r in
  let set_promotions = Reader.uint r in
  let cycles_collapsed = Reader.uint r in
  let nodes_merged = Reader.uint r in
  let repropagations_avoided = Reader.uint r in
  let shards = Reader.uint r in
  let sync_rounds = Reader.uint r in
  let deltas_exchanged = Reader.uint r in
  let cross_shard_edges = Reader.uint r in
  let sccs_summarized = Reader.uint r in
  let summaries_reused = Reader.uint r in
  let sccs_resolved = Reader.uint r in
  {
    Solution.program;
    ctxs;
    objs;
    var_nodes;
    fld_nodes;
    pts;
    reach;
    cg;
    outcome;
    derivations;
    counters =
      {
        edges_added;
        edges_deduped;
        batches;
        batch_objs;
        max_batch;
        set_promotions;
        cycles_collapsed;
        nodes_merged;
        repropagations_avoided;
        shards;
        sync_rounds;
        deltas_exchanged;
        cross_shard_edges;
        sccs_summarized;
        summaries_reused;
        sccs_resolved;
      };
    collapsed_vpt_cache = None;
    collapsed_fpt_cache = None;
    reachable_meths_cache = None;
    call_targets_cache = None;
    inverted_vpt_cache = None;
    inverted_fpt_cache = None;
    callee_meths_cache = None;
    caller_sites_cache = None;
  }

(* ---------- metrics ---------- *)

let encode_metrics w (m : Introspection.t) =
  Writer.int_array w m.in_flow;
  Writer.int_array w m.meth_total_volume;
  Writer.int_array w m.meth_max_var;
  Writer.int_array w m.obj_total_field;
  Writer.int_array w m.obj_max_field;
  Writer.int_array w m.meth_max_var_field;
  Writer.int_array w m.pointed_by_vars;
  Writer.int_array w m.pointed_by_objs

let decode_metrics r : Introspection.t =
  let in_flow = Reader.int_array r in
  let meth_total_volume = Reader.int_array r in
  let meth_max_var = Reader.int_array r in
  let obj_total_field = Reader.int_array r in
  let obj_max_field = Reader.int_array r in
  let meth_max_var_field = Reader.int_array r in
  let pointed_by_vars = Reader.int_array r in
  let pointed_by_objs = Reader.int_array r in
  {
    in_flow;
    meth_total_volume;
    meth_max_var;
    obj_total_field;
    obj_max_field;
    meth_max_var_field;
    pointed_by_vars;
    pointed_by_objs;
  }

(* ---------- framing ---------- *)

type error =
  | Bad_magic
  | Version_mismatch of { found : int; expected : int }
  | Truncated
  | Checksum_mismatch
  | Program_mismatch of { found : string; expected : string }
  | Key_mismatch of { found : string; expected : string }
  | Malformed of string

let error_to_string = function
  | Bad_magic -> "not a snapshot (bad magic)"
  | Version_mismatch { found; expected } ->
    Printf.sprintf "snapshot format version %d, this build reads version %d" found expected
  | Truncated -> "snapshot truncated"
  | Checksum_mismatch -> "snapshot checksum mismatch (corrupted payload)"
  | Program_mismatch { found; expected } ->
    Printf.sprintf "snapshot is of a different program (digest %s, expected %s)" found expected
  | Key_mismatch { found; expected } ->
    Printf.sprintf "snapshot is of a different configuration (key %s, expected %s)" found expected
  | Malformed msg -> Printf.sprintf "malformed snapshot payload: %s" msg

let encode t =
  let w = Writer.create ~capacity:4096 () in
  Writer.string w t.key;
  Writer.string w t.program_digest;
  Writer.string w t.label;
  Writer.float w t.seconds;
  encode_solution w t.solution;
  Writer.option w encode_metrics t.metrics;
  Writer.raw w trailer;
  let payload = Writer.contents w in
  let out = Writer.create ~capacity:(String.length payload + 32) () in
  Writer.raw out magic;
  Writer.uint out version;
  Writer.uint out (String.length payload);
  Writer.raw out (Digest.string payload);
  Writer.raw out payload;
  Writer.contents out

(* Header validation shared by [decode] and [inspect]: returns the verified
   payload. The version varint lives outside the checksum so format bumps
   are reported as such, not as corruption. *)
let checked_payload bytes =
  let len = String.length bytes in
  let mlen = min len (String.length magic) in
  if String.sub bytes 0 mlen <> String.sub magic 0 mlen then Error Bad_magic
  else if len < String.length magic then Error Truncated
  else
    match
      let r = Reader.of_string ~pos:(String.length magic) bytes in
      let v = Reader.uint r in
      if v <> version then Error (Version_mismatch { found = v; expected = version })
      else begin
        let plen = Reader.uint r in
        let sum = Reader.raw r 16 in
        if Reader.remaining r < plen then Error Truncated
        else if Reader.remaining r > plen then Error (Malformed "trailing bytes after payload")
        else begin
          let payload = Reader.raw r plen in
          if Digest.string payload <> sum then Error Checksum_mismatch else Ok payload
        end
      end
    with
    | result -> result
    | exception Codec.Corrupt _ -> Error Truncated

let decode ~program ?expect_key bytes =
  match checked_payload bytes with
  | Error e -> Error e
  | Ok payload -> (
    try
      let r = Reader.of_string payload in
      let key = Reader.string r in
      let program_digest = Reader.string r in
      let expected_digest = digest_program program in
      if program_digest <> expected_digest then
        Error (Program_mismatch { found = program_digest; expected = expected_digest })
      else
        match expect_key with
        | Some ek when ek <> key -> Error (Key_mismatch { found = key; expected = ek })
        | _ ->
          let label = Reader.string r in
          let seconds = Reader.float r in
          let solution = decode_solution r program in
          let metrics = Reader.option r decode_metrics in
          Reader.expect r trailer;
          if not (Reader.at_end r) then Error (Malformed "unconsumed payload bytes")
          else Ok { key; program_digest; label; seconds; solution; metrics }
    with
    | Codec.Corrupt msg -> Error (Malformed msg)
    | Invalid_argument msg -> Error (Malformed msg))

type info = {
  info_key : string;
  info_program_digest : string;
  info_label : string;
  info_seconds : float;
}

let inspect bytes =
  match checked_payload bytes with
  | Error e -> Error e
  | Ok payload -> (
    try
      let r = Reader.of_string payload in
      let info_key = Reader.string r in
      let info_program_digest = Reader.string r in
      let info_label = Reader.string r in
      let info_seconds = Reader.float r in
      Ok { info_key; info_program_digest; info_label; info_seconds }
    with
    | Codec.Corrupt msg -> Error (Malformed msg)
    | Invalid_argument msg -> Error (Malformed msg))
