(** Compositional solving over the call-graph condensation, and incremental
    re-analysis after program edits.

    A {e compositional} solve processes the program per strongly connected
    component of the (CHA-approximated) call graph, bottom-up: each
    component is digested, its boundary summary is looked up in — or
    published to — a content-addressed store ({!Summary}), and the solve
    itself replays the components' compiled constraint modules instead of
    walking method bodies. The constraint stream is identical by
    construction, so the returned {!Solution.t} is byte-identical to the
    monolithic {!Solver.run} for the same configuration (asserted by
    differential tests), with the compositional counters patched in.

    An {e incremental} solve additionally diffs the component digests
    against a baseline program, closes the dirty set over transitive
    callers, and warm-starts {!Solver.run_incremental} from the baseline
    solution with only the digest-changed bodies deferred — so the warm
    derivation count measures the edit, not the program. When the edit is
    not a monotone extension (or the config is budgeted, or the baseline
    incomplete), it falls back to a cold compositional solve and says so in
    the report. *)

(** A content-addressed byte store — in practice [Harness.Cache.summary_store],
    but any keyed blob store works (tests use an in-memory table). *)
type store = {
  find_bytes : string -> string option;
  put_bytes : string -> string -> unit;
}

type report = {
  n_sccs : int;  (** components in the condensation of the solved program *)
  sccs_summarized : int;  (** boundary summaries computed and published *)
  summaries_reused : int;  (** store hits: components whose digest matched *)
  sccs_resolved : int;
      (** components (re-)solved: all of them on a cold solve, the dirty
          closure on an incremental one *)
  dirty_sccs : int list;  (** ascending; empty on a cold solve *)
  incremental : bool;  (** whether the warm path actually ran *)
  fallback : string option;
      (** why the warm path was refused, when it was ([incremental = false]
          and a baseline was offered) *)
}

val summary_key : fingerprint:string -> string -> string
(** [summary_key ~fingerprint digest] is the store key of a component
    summary: hex MD5 over the [summary-v1] tag, the
    {!Snapshot.config_fingerprint}, and the component's content digest. No
    program digest — an unchanged component keeps its key across edits. *)

val solve :
  ?store:store ->
  ?jobs:int ->
  Ipa_ir.Program.t ->
  Solver.config ->
  Solution.t * report
(** Cold compositional solve. Digests components and computes missing
    boundary summaries in parallel ([jobs] domains; store probes and
    publishes stay sequential, so reuse counts are deterministic), then
    solves by replay. The solution equals [Solver.run p cfg] byte-for-byte
    except the three compositional counters. *)

val solve_incremental :
  ?store:store ->
  ?jobs:int ->
  base_program:Ipa_ir.Program.t ->
  base_solution:Solution.t ->
  Ipa_ir.Program.t ->
  Solver.config ->
  Solution.t * report
(** Re-solve an edited program, warm-starting from [base_solution] (which
    must be the solve of [base_program] under the same [cfg]). The solution
    is byte-identical to a cold solve of the edited program modulo counters
    and derivation count; [Solution.derivations] counts only edit-enabled
    work. Falls back to {!solve} — reporting [fallback = Some reason] —
    when [cfg] is budgeted, the baseline is not [Complete], or the edit is
    not a monotone extension ({!Summary.extends}). *)
