(* Query-subsystem battery:
   - parser: parse/to_string round-trips (including names with spaces,
     quotes, backslashes and hashes — allocation-site names contain
     spaces), a QCheck round-trip over arbitrary printable names, and the
     exact error messages for bad arity / unknown forms / bad quoting;
   - engine: answers cross-checked against direct [Solution] lookups (and
     independent recomputations of the reverse indexes) on the quickstart
     boxes program under insens and 2objH, plus the taint delegation;
   - server: a scripted session over temp files — answers in order, a
     malformed query mid-session answers an error record without killing
     the session, [load path] hot-swaps the solution mid-session, [quit]
     stops answering, and a jobs=4 pooled session is byte-identical to the
     sequential one. *)

module Program = Ipa_ir.Program
module Solution = Ipa_core.Solution
module Analysis = Ipa_core.Analysis
module Flavors = Ipa_core.Flavors
module Snapshot = Ipa_core.Snapshot
module Int_set = Ipa_support.Int_set
module Query = Ipa_query.Query
module Engine = Ipa_query.Engine
module Server = Ipa_query.Server
module T = Ipa_testlib

let check = Alcotest.check

let query_t : Query.t Alcotest.testable =
  Alcotest.testable (fun ppf q -> Format.pp_print_string ppf (Query.to_string q)) ( = )

let parse_result = Alcotest.(result query_t string)

(* ---------- parser ---------- *)

let test_parse_roundtrip () =
  let cases =
    [
      Query.Pts "Main::main/0$ra";
      Query.Pts "name with spaces";
      Query.Pts "quo\"te\\slash";
      Query.Pts "Main::main/new Box#0";
      Query.Pts "";
      Query.Pointed_by "Main::main/new Box#0";
      Query.Alias ("Main::main/0$ra", "Main::main/0$rb");
      Query.Callees "Main::main/call set#0";
      Query.Callers "Box::get/0";
      Query.Reach ("Main::main/0", "Box::get/0");
      Query.Fieldpts ("Main::main/new Box#0", "Box::val");
      Query.Taint None;
      Query.Taint (Some ("Secret", "*::consume/1"));
      Query.Stats;
    ]
  in
  List.iter
    (fun q -> check parse_result (Query.to_string q) (Ok q) (Query.parse (Query.to_string q)))
    cases

let prop_roundtrip =
  let gen =
    QCheck2.Gen.(pair (int_range 0 6) (pair (small_string ~gen:printable) (small_string ~gen:printable)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"parse/to_string round-trip" gen (fun (form, (a, b)) ->
         let q =
           match form with
           | 0 -> Query.Pts a
           | 1 -> Query.Pointed_by a
           | 2 -> Query.Alias (a, b)
           | 3 -> Query.Callees a
           | 4 -> Query.Reach (a, b)
           | 5 -> Query.Fieldpts (a, b)
           | _ -> Query.Taint (Some (a, b))
         in
         Query.parse (Query.to_string q) = Ok q))

let test_parse_errors () =
  let err line msg = check parse_result line (Error msg) (Query.parse line) in
  err "pts" "pts takes one argument, got 0: usage: pts <var>";
  err "pts a b" "pts takes one argument, got 2: usage: pts <var>";
  err "alias x" "alias takes two arguments, got 1: usage: alias <var> <var>";
  err "stats x" "stats takes no arguments, got 1: usage: stats";
  err "taint a" "taint takes zero or two arguments, got 1: usage: taint [<source-pattern> <sink-pattern>]";
  err "reach a b c" "reach takes two arguments, got 3: usage: reach <method> <method>";
  err "frobnicate x"
    "unknown query form \"frobnicate\" (expected one of: pts, pointed-by, alias, callees, callers, reach, fieldpts, taint, stats)";
  err "pts \"unterminated" "unterminated quote";
  err "pts \"dangling\\" "dangling escape at end of line";
  err "" "empty query"

(* ---------- engine vs direct solution lookups ---------- *)

let solve flavor =
  let p = T.parse_exn T.boxes_src in
  (p, (Analysis.run_plain p flavor).solution)

let insens = Flavors.Insensitive
let twoobj = Flavors.Object_sens { depth = 2; heap = 1 }

let names_of what = function
  | Ok (Engine.Names { items; _ }) -> items
  | Ok _ -> Alcotest.failf "%s: expected a name-list answer" what
  | Error e -> Alcotest.failf "%s: %s" what e

let truth_of what = function
  | Ok (Engine.Truth { holds; witness }) -> (holds, witness)
  | Ok _ -> Alcotest.failf "%s: expected a truth answer" what
  | Error e -> Alcotest.failf "%s: %s" what e

let sorted l = List.sort compare l

(* Every variable / heap / invocation site / method of the program,
   cross-checked against the solution tables the engine is supposed to be
   reading (the reverse directions recomputed independently of the
   engine's inverted indexes). *)
let test_engine_cross_check () =
  List.iter
    (fun flavor ->
      let p, s = solve flavor in
      let eng = Engine.create s in
      let vpt = Solution.collapsed_var_pts s in
      for v = 0 to Program.n_vars p - 1 do
        let expect =
          sorted (List.map (Program.heap_full_name p) (Int_set.to_sorted_list vpt.(v)))
        in
        check
          Alcotest.(list string)
          (Program.var_full_name p v) expect
          (names_of "pts" (Engine.eval eng (Query.Pts (Program.var_full_name p v))))
      done;
      for h = 0 to Program.n_heaps p - 1 do
        let expect = ref [] in
        Array.iteri
          (fun v set -> if Int_set.mem set h then expect := Program.var_full_name p v :: !expect)
          vpt;
        check
          Alcotest.(list string)
          (Program.heap_full_name p h) (sorted !expect)
          (names_of "pointed-by"
             (Engine.eval eng (Query.Pointed_by (Program.heap_full_name p h))))
      done;
      let callers = Array.make (Program.n_meths p) [] in
      let callees = Hashtbl.create 16 in
      Solution.iter_cg s (fun ~invo ~caller:_ ~meth ~callee:_ ->
          let name = (Program.invo_info p invo).invo_name in
          if not (List.mem name callers.(meth)) then callers.(meth) <- name :: callers.(meth);
          let ms = try Hashtbl.find callees invo with Not_found -> [] in
          let mname = Program.meth_full_name p meth in
          if not (List.mem mname ms) then Hashtbl.replace callees invo (mname :: ms));
      for i = 0 to Program.n_invos p - 1 do
        let name = (Program.invo_info p i).invo_name in
        let expect = sorted (try Hashtbl.find callees i with Not_found -> []) in
        check
          Alcotest.(list string)
          name expect
          (names_of "callees" (Engine.eval eng (Query.Callees name)))
      done;
      for m = 0 to Program.n_meths p - 1 do
        check
          Alcotest.(list string)
          (Program.meth_full_name p m) (sorted callers.(m))
          (names_of "callers"
             (Engine.eval eng (Query.Callers (Program.meth_full_name p m))))
      done)
    [ insens; twoobj ]

let test_engine_alias () =
  let q = Query.Alias ("Main::main/0$ra", "Main::main/0$rb") in
  let _, s0 = solve insens in
  let holds, witness = truth_of "alias insens" (Engine.eval (Engine.create s0) q) in
  check Alcotest.bool "insens: ra/rb alias" true holds;
  check
    Alcotest.(list string)
    "insens witness" [ "Main::main/new A#2"; "Main::main/new B#3" ] witness;
  let _, s2 = solve twoobj in
  let holds, witness = truth_of "alias 2objH" (Engine.eval (Engine.create s2) q) in
  check Alcotest.bool "2objH: ra/rb do not alias" false holds;
  check Alcotest.(list string) "2objH witness empty" [] witness

let test_engine_reach () =
  let _, s = solve insens in
  let eng = Engine.create s in
  let holds, path = truth_of "reach" (Engine.eval eng (Query.Reach ("Main::main/0", "Box::get/0"))) in
  check Alcotest.bool "main reaches get" true holds;
  check Alcotest.(list string) "direct call path" [ "Main::main/0"; "Box::get/0" ] path;
  let holds, path = truth_of "reach rev" (Engine.eval eng (Query.Reach ("Box::get/0", "Main::main/0"))) in
  check Alcotest.bool "get does not reach main" false holds;
  check Alcotest.(list string) "no path" [] path;
  let holds, path = truth_of "reach self" (Engine.eval eng (Query.Reach ("Main::main/0", "Main::main/0"))) in
  check Alcotest.bool "self-reach" true holds;
  check Alcotest.(list string) "trivial path" [ "Main::main/0" ] path

let test_engine_fieldpts () =
  let box0 = "Main::main/new Box#0" in
  let _, s0 = solve insens in
  let eng0 = Engine.create s0 in
  (* insens conflates [this] in set/1, so both boxes hold both objects *)
  let expect = [ "Main::main/new A#2"; "Main::main/new B#3" ] in
  check
    Alcotest.(list string)
    "insens box0.val" expect
    (names_of "fieldpts" (Engine.eval eng0 (Query.Fieldpts (box0, "Box::val"))));
  (* a bare unambiguous field name resolves like the qualified one *)
  check
    Alcotest.(list string)
    "bare field name" expect
    (names_of "fieldpts" (Engine.eval eng0 (Query.Fieldpts (box0, "val"))));
  let _, s2 = solve twoobj in
  check
    Alcotest.(list string)
    "2objH box0.val" [ "Main::main/new A#2" ]
    (names_of "fieldpts" (Engine.eval (Engine.create s2) (Query.Fieldpts (box0, "val"))))

let test_engine_stats () =
  let _, s = solve insens in
  let st = Solution.stats s in
  match Engine.eval (Engine.create s) Query.Stats with
  | Ok (Engine.Stats_report kvs) ->
    check Alcotest.(option int) "vpt" (Some st.vpt_tuples) (List.assoc_opt "vpt_tuples" kvs);
    check Alcotest.(option int) "cg" (Some st.cg_edges) (List.assoc_opt "cg_edges" kvs);
    check Alcotest.(option int) "derivations" (Some s.Solution.derivations)
      (List.assoc_opt "derivations" kvs);
    check Alcotest.(option int) "complete" (Some 1) (List.assoc_opt "complete" kvs)
  | _ -> Alcotest.fail "stats: expected a stats report"

let test_engine_errors () =
  let _, s = solve insens in
  let eng = Engine.create s in
  let err q msg =
    match Engine.eval eng q with
    | Error e -> check Alcotest.string (Query.to_string q) msg e
    | Ok _ -> Alcotest.failf "%s: expected an error" (Query.to_string q)
  in
  err (Query.Pts "nope") "unknown variable \"nope\"";
  err (Query.Pointed_by "nope") "unknown allocation site \"nope\"";
  err (Query.Callees "nope") "unknown invocation site \"nope\"";
  err (Query.Reach ("Main::main/0", "nope")) "unknown method \"nope\"";
  err (Query.Fieldpts ("Main::main/new Box#0", "nope")) "unknown field \"nope\""

let taint_src =
  {|
class Object { }
class Secret { }
class Sink {
  method consume/1 (x) { }
}
class Well {
  static method mkSecret/0 () { var s; s = new Secret; return s; }
}
class Main {
  static method main/0 () {
    var p, k;
    p = Well::mkSecret();
    k = new Sink;
    k.consume(p);
  }
}
entry Main::main/0;
|}

let test_engine_taint () =
  let p = T.parse_exn taint_src in
  let s = (Analysis.run_plain p insens).solution in
  let eng = Engine.create s in
  let direct = Ipa_clients.Taint.analyze s in
  let expect =
    List.map
      (fun (f : Ipa_clients.Taint.finding) ->
        ((Program.invo_info p f.invo).invo_name, f.arg, Program.meth_full_name p f.sink))
      direct.findings
  in
  (match Engine.eval eng (Query.Taint None) with
  | Ok (Engine.Taint_report { seeds; findings }) ->
    check Alcotest.int "seeds" direct.n_seeds seeds;
    check Alcotest.bool "findings match direct client" true (findings = expect);
    check Alcotest.bool "found the flow" true (findings <> [])
  | _ -> Alcotest.fail "taint: expected a report");
  match Engine.eval eng (Query.Taint (Some ("Secret", "*::consume/1"))) with
  | Ok (Engine.Taint_report { findings; _ }) ->
    check Alcotest.bool "explicit spec finds the same sink" true
      (List.map (fun (site, _, _) -> site) findings = List.map (fun (s, _, _) -> s) expect)
  | _ -> Alcotest.fail "taint spec: expected a report"

(* ---------- server sessions ---------- *)

let read_lines path =
  String.split_on_char '\n' (String.trim (In_channel.with_open_text path In_channel.input_all))

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let run_session ?cache ?pool ~json server_of script =
  T.with_temp_dir (fun dir ->
      let script_path = Filename.concat dir "script.txt" in
      let out_path = Filename.concat dir "out.txt" in
      Out_channel.with_open_text script_path (fun oc -> Out_channel.output_string oc script);
      let server = server_of ?cache ?pool ~json () in
      let outcome =
        In_channel.with_open_text script_path (fun ic ->
            Out_channel.with_open_text out_path (fun oc -> Server.session server ic oc))
      in
      (server, outcome, read_lines out_path))

let boxes_server ?cache ?pool ~json () =
  let p, s = solve insens in
  Server.create ?cache ?pool ~json ~timings:false ~program:p ~label:"insens" s

let test_server_scripted_session () =
  let script =
    String.concat "\n"
      [
        "# a comment, then a blank line";
        "";
        "stats";
        "pts Main::main/0$ra";
        "pts \"oops";  (* malformed mid-session: must answer, not die *)
        "alias Main::main/0$ra Main::main/0$rb";
        "quit";
        "pts Main::main/0$rb";  (* after quit: must NOT be answered *)
      ]
  in
  let server, outcome, lines = run_session ~json:true boxes_server script in
  check Alcotest.bool "session ended by quit" true (outcome = `Quit);
  check Alcotest.int "four answers" 4 (List.length lines);
  check Alcotest.int "served" 4 (Server.served server);
  check Alcotest.int "one error" 1 (Server.errors server);
  let third = List.nth lines 2 in
  check Alcotest.bool "error record for the malformed line" true
    (String.starts_with ~prefix:{|{"q":"pts \"oops"|} third
    && contains ~sub:"unterminated quote" third)

let test_server_stop () =
  let _, outcome, lines = run_session ~json:false boxes_server "stats\nstop\n" in
  check Alcotest.bool "session ended by stop" true (outcome = `Stop);
  check Alcotest.int "one answer" 1 (List.length lines)

let test_server_load_path () =
  T.with_temp_dir (fun dir ->
      let p, s2 = solve twoobj in
      let snap_path = Filename.concat dir "boxes_2objH.snap" in
      let bytes =
        Snapshot.encode
          {
            Snapshot.key = "test-load";
            program_digest = Snapshot.digest_program p;
            label = "2objH";
            seconds = 0.0;
            solution = s2;
            metrics = None;
          }
      in
      Out_channel.with_open_bin snap_path (fun oc -> Out_channel.output_string oc bytes);
      let script =
        String.concat "\n"
          [
            "alias Main::main/0$ra Main::main/0$rb";
            Printf.sprintf "load path %s" (Query.quote snap_path);
            "alias Main::main/0$ra Main::main/0$rb";
            "load path /nonexistent.snap";
          ]
      in
      let server, _, lines = run_session ~json:false boxes_server script in
      check Alcotest.int "four answers" 4 (List.length lines);
      check Alcotest.bool "insens answer first" true
        (String.starts_with ~prefix:"alias Main::main/0$ra Main::main/0$rb: true"
           (List.nth lines 0));
      check Alcotest.bool "load acknowledged with the snapshot label" true
        (String.ends_with ~suffix:": ok (2objH)" (List.nth lines 1));
      check Alcotest.bool "2objH answer after the hot-swap" true
        (String.starts_with ~prefix:"alias Main::main/0$ra Main::main/0$rb: false"
           (List.nth lines 2));
      check Alcotest.bool "failed load answers an error record" true
        (contains ~sub:"error:" (List.nth lines 3));
      check Alcotest.int "one successful load" 1 (Server.loads server))

(* The acceptance property: a pooled server answers a long mixed script
   byte-identically to the sequential one. *)
let test_server_jobs_identical () =
  let p, _ = solve insens in
  let queries =
    List.concat
      [
        List.init (Program.n_vars p) (fun v ->
            Printf.sprintf "pts %s" (Query.quote (Program.var_full_name p v)));
        List.init (Program.n_heaps p) (fun h ->
            Printf.sprintf "pointed-by %s" (Query.quote (Program.heap_full_name p h)));
        List.init (Program.n_meths p) (fun m ->
            Printf.sprintf "callers %s" (Query.quote (Program.meth_full_name p m)));
        [ "alias Main::main/0$ra Main::main/0$rb"; "not a query"; "stats" ];
      ]
  in
  let script = String.concat "\n" queries in
  let _, _, seq_lines = run_session ~json:true boxes_server script in
  let _, _, par_lines =
    Ipa_support.Domain_pool.with_pool ~jobs:4 (fun pool ->
        run_session ~pool ~json:true boxes_server script)
  in
  check Alcotest.(list string) "jobs=4 output identical to jobs=1" seq_lines par_lines

let test_server_load_key () =
  T.with_temp_dir (fun dir ->
      let p, s = solve insens in
      let key = "deadbeefdeadbeefdeadbeefdeadbeef" in
      let bytes =
        Snapshot.encode
          {
            Snapshot.key;
            program_digest = Snapshot.digest_program p;
            label = "insens";
            seconds = 0.0;
            solution = s;
            metrics = None;
          }
      in
      Out_channel.with_open_bin
        (Filename.concat dir (key ^ ".snap"))
        (fun oc -> Out_channel.output_string oc bytes);
      let cache = Ipa_harness.Cache.create ~dir () in
      let script =
        String.concat "\n"
          [ Printf.sprintf "load key %s" key; "load key 0000"; "pts Main::main/0$ra" ]
      in
      let server, _, lines = run_session ~cache ~json:false boxes_server script in
      check Alcotest.bool "cache hit loads" true
        (String.ends_with ~suffix:": ok (insens)" (List.nth lines 0));
      check Alcotest.bool "cache miss answers an error" true
        (contains ~sub:"cache miss for key 0000" (List.nth lines 1));
      check Alcotest.bool "queries keep working" true
        (String.starts_with ~prefix:"pts Main::main/0$ra: 2 objects" (List.nth lines 2));
      check Alcotest.int "one load" 1 (Server.loads server))

let () =
  Alcotest.run "query"
    [
      ( "parser",
        [
          Alcotest.test_case "round-trips" `Quick test_parse_roundtrip;
          prop_roundtrip;
          Alcotest.test_case "error messages" `Quick test_parse_errors;
        ] );
      ( "engine",
        [
          Alcotest.test_case "cross-check vs solution lookups" `Quick test_engine_cross_check;
          Alcotest.test_case "alias insens vs 2objH" `Quick test_engine_alias;
          Alcotest.test_case "reach with path" `Quick test_engine_reach;
          Alcotest.test_case "fieldpts" `Quick test_engine_fieldpts;
          Alcotest.test_case "stats" `Quick test_engine_stats;
          Alcotest.test_case "unknown-name errors" `Quick test_engine_errors;
          Alcotest.test_case "taint delegation" `Quick test_engine_taint;
        ] );
      ( "server",
        [
          Alcotest.test_case "scripted session, malformed mid-session" `Quick
            test_server_scripted_session;
          Alcotest.test_case "stop" `Quick test_server_stop;
          Alcotest.test_case "load path hot-swap" `Quick test_server_load_path;
          Alcotest.test_case "load key via cache" `Quick test_server_load_key;
          Alcotest.test_case "jobs=4 identical to jobs=1" `Quick test_server_jobs_identical;
        ] );
    ]
